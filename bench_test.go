// Benchmark harness: one testing.B benchmark per evaluation table (see
// DESIGN.md §3 and EXPERIMENTS.md). Each benchmark executes a
// representative configuration of its experiment and reports the paper's
// quantities — messages and signatures sent by correct processors, and
// phases — as custom metrics, so `go test -bench=. -benchmem` regenerates
// the evaluation in one run. The full parameter sweeps (and the bound
// assertions) live in internal/experiments, executed by cmd/baexp and the
// experiments tests.
package byzex_test

import (
	"context"
	"strconv"
	"testing"

	"byzex/internal/adversary"
	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/lowerbound"
	"byzex/internal/protocol"
	"byzex/internal/protocols/alg1"
	"byzex/internal/protocols/alg2"
	"byzex/internal/protocols/alg3"
	"byzex/internal/protocols/alg4"
	"byzex/internal/protocols/alg5"
	"byzex/internal/protocols/dolevstrong"
	"byzex/internal/protocols/ic"
	"byzex/internal/protocols/lsp"
	"byzex/internal/protocols/strawman"
	"byzex/internal/sig"
)

// runBA executes one agreement instance per iteration and reports the
// information-exchange metrics.
func runBA(b *testing.B, p protocol.Protocol, n, t int, adv adversary.Adversary, scheme sig.Scheme) {
	b.Helper()
	ctx := context.Background()
	var msgs, sigs, phases int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Run(ctx, core.Config{
			Protocol: p, N: n, T: t, Value: ident.V1,
			Adversary: adv, Scheme: scheme, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		msgs = res.Sim.Report.MessagesCorrect
		sigs = res.Sim.Report.SignaturesCorrect
		phases = res.Phases
	}
	b.ReportMetric(float64(msgs), "msgs")
	b.ReportMetric(float64(sigs), "sigs")
	b.ReportMetric(float64(phases), "phases")
}

// BenchmarkE1Alg1 — Theorem 3: Algorithm 1 at n=2t+1 (worst case is the
// fault-free value-1 run: every processor relays exactly once).
func BenchmarkE1Alg1(b *testing.B) {
	for _, t := range []int{4, 8, 16} {
		b.Run(benchName("t", t), func(b *testing.B) {
			runBA(b, alg1.Protocol{}, 2*t+1, t, nil, nil)
			b.ReportMetric(float64(core.Alg1MsgUpperBound(t)), "bound")
		})
	}
}

// BenchmarkE2Alg2 — Theorem 4: Algorithm 2 with its 2t+1 proof phases.
func BenchmarkE2Alg2(b *testing.B) {
	for _, t := range []int{4, 8, 16} {
		b.Run(benchName("t", t), func(b *testing.B) {
			runBA(b, alg2.Protocol{}, 2*t+1, t, nil, nil)
			b.ReportMetric(float64(core.Alg2MsgUpperBound(t)), "bound")
		})
	}
}

// BenchmarkE3Alg3 — Lemma 1 / Theorem 5: Algorithm 3 across the s dial.
func BenchmarkE3Alg3(b *testing.B) {
	const n, t = 256, 4
	for _, s := range []int{2, 8, 16, 32} {
		b.Run(benchName("s", s), func(b *testing.B) {
			runBA(b, alg3.Protocol{S: s}, n, t, nil, nil)
			b.ReportMetric(float64(core.Alg3MsgUpperBound(n, t, s)), "bound")
		})
	}
}

// BenchmarkE4Alg4 — Theorem 6: the O(N^1.5) grid exchange.
func BenchmarkE4Alg4(b *testing.B) {
	for _, m := range []int{4, 8, 16} {
		b.Run(benchName("m", m), func(b *testing.B) {
			runBA(b, alg4.Protocol{}, m*m, m/2, adversary.Silent{}, nil)
			b.ReportMetric(float64(core.Alg4MsgUpperBound(m)), "bound")
		})
	}
}

// BenchmarkE5Alg5 — Lemma 5 / Theorem 7: the O(n+t²) algorithm at s=t.
func BenchmarkE5Alg5(b *testing.B) {
	for _, cfg := range []struct{ n, t int }{{64, 3}, {256, 3}, {1024, 3}, {256, 4}} {
		b.Run(benchName("n", cfg.n)+benchName("/t", cfg.t), func(b *testing.B) {
			runBA(b, alg5.Protocol{S: cfg.t}, cfg.n, cfg.t, nil, nil)
			b.ReportMetric(float64(core.Alg5MsgUpperBound(cfg.n, cfg.t, cfg.t)), "bound")
		})
	}
}

// BenchmarkE6SigLowerBound — Theorem 1: the signature audit over H and G
// plus the replay attack against the sub-threshold strawman.
func BenchmarkE6SigLowerBound(b *testing.B) {
	ctx := context.Background()
	b.Run("audit-alg1-t8", func(b *testing.B) {
		var minAP, most int
		for i := 0; i < b.N; i++ {
			audit, err := lowerbound.AuditSignatures(ctx, alg1.Protocol{}, 17, 8, nil)
			if err != nil {
				b.Fatal(err)
			}
			minAP = audit.MinAPSize
			most = audit.HSignatures
			if audit.GSignatures > most {
				most = audit.GSignatures
			}
		}
		b.ReportMetric(float64(minAP), "minAP")
		b.ReportMetric(float64(most), "sigs")
		b.ReportMetric(float64(core.SigLowerBound(17, 8)), "bound")
	})
	b.Run("replay-breaks-strawman", func(b *testing.B) {
		broke := 0
		for i := 0; i < b.N; i++ {
			out, err := lowerbound.ReplayAttack(ctx, strawman.Broadcast{}, 9, 3, nil)
			if err != nil {
				b.Fatal(err)
			}
			if out.Broke() {
				broke++
			}
		}
		if broke != b.N {
			b.Fatalf("attack broke %d/%d runs", broke, b.N)
		}
	})
}

// BenchmarkE7Unauth — Corollary 1: the unauthenticated baseline against
// the n(t+1)/4 message bound.
func BenchmarkE7Unauth(b *testing.B) {
	for _, cfg := range []struct{ n, t int }{{7, 2}, {10, 3}, {13, 4}} {
		b.Run(benchName("t", cfg.t), func(b *testing.B) {
			runBA(b, lsp.Protocol{}, cfg.n, cfg.t, nil, sig.NewPlain(cfg.n))
			b.ReportMetric(float64(core.MsgLowerBoundUnauth(cfg.n, cfg.t)), "lower-bound")
		})
	}
}

// BenchmarkE8MsgLowerBound — Theorem 2: the starvation audit.
func BenchmarkE8MsgLowerBound(b *testing.B) {
	ctx := context.Background()
	for _, cfg := range []struct{ n, t int }{{9, 4}, {17, 8}} {
		b.Run(benchName("t", cfg.t), func(b *testing.B) {
			var minRecv, total int
			for i := 0; i < b.N; i++ {
				audit, err := lowerbound.StarvationAudit(ctx, alg1.Protocol{}, cfg.n, cfg.t, nil)
				if err != nil {
					b.Fatal(err)
				}
				minRecv, total = audit.MinReceived, audit.TotalMessages
			}
			b.ReportMetric(float64(minRecv), "min-into-B")
			b.ReportMetric(float64(total), "msgs")
			b.ReportMetric(float64(core.MsgLowerBound(cfg.n, cfg.t)), "bound")
		})
	}
}

// BenchmarkE9Tradeoff — the introduction's phase/message trade-off via
// Algorithm 3 with s = ⌈t/(2α)⌉ at n ≫ t.
func BenchmarkE9Tradeoff(b *testing.B) {
	const n, t = 1024, 8
	for _, alpha := range []int{1, 2, 4} {
		s := (t + 2*alpha - 1) / (2 * alpha)
		b.Run(benchName("alpha", alpha), func(b *testing.B) {
			runBA(b, alg3.Protocol{S: s}, n, t, nil, nil)
			b.ReportMetric(float64(core.TradeoffPhases(t, alpha)), "paper-phases")
		})
	}
}

// BenchmarkE10Baselines — the head-to-head message comparison against the
// Dolev-Strong baseline.
func BenchmarkE10Baselines(b *testing.B) {
	const n, t = 256, 4
	b.Run("dolev-strong", func(b *testing.B) { runBA(b, dolevstrong.Protocol{}, n, t, nil, nil) })
	b.Run("alg3-s16", func(b *testing.B) { runBA(b, alg3.Protocol{S: 16}, n, t, nil, nil) })
	b.Run("alg5-s4", func(b *testing.B) { runBA(b, alg5.Protocol{S: 4}, n, t, nil, nil) })
}

// BenchmarkAblationPoW — what Algorithm 5's proof-of-work gating buys:
// identical runs with the gate on and off; the "msgs" metric is the
// finding (the ungated variant re-activates every subtree every block).
func BenchmarkAblationPoW(b *testing.B) {
	const n, t, s = 200, 3, 3
	b.Run("gated", func(b *testing.B) { runBA(b, alg5.Protocol{S: s}, n, t, nil, nil) })
	b.Run("ungated", func(b *testing.B) { runBA(b, alg5.Protocol{S: s, DisablePoW: true}, n, t, nil, nil) })
}

// BenchmarkAblationExchange — the §5 Θ(Nt) relay exchange against the
// Theorem 6 O(N^1.5) grid, across the crossover at t ≈ √N.
func BenchmarkAblationExchange(b *testing.B) {
	for _, cfg := range []struct{ m, t int }{{8, 2}, {8, 16}, {16, 4}, {16, 32}} {
		n := cfg.m * cfg.m
		b.Run(benchName("grid/N", n)+benchName("/t", cfg.t), func(b *testing.B) {
			runBA(b, alg4.Protocol{}, n, cfg.t, nil, nil)
		})
		b.Run(benchName("relay/N", n)+benchName("/t", cfg.t), func(b *testing.B) {
			runBA(b, alg4.RelayProtocol{}, n, cfg.t, nil, nil)
		})
	}
}

// BenchmarkAblationSchemes — signing-substrate cost: the same Algorithm 2
// run over HMAC vs Ed25519 (wall-clock only; the exchange counts are
// identical by construction).
func BenchmarkAblationSchemes(b *testing.B) {
	const t = 4
	n := 2*t + 1
	b.Run("hmac", func(b *testing.B) { runBA(b, alg2.Protocol{}, n, t, nil, sig.NewHMAC(n, 1)) })
	b.Run("ed25519", func(b *testing.B) {
		scheme, err := sig.NewEd25519(n, nil)
		if err != nil {
			b.Fatal(err)
		}
		runBA(b, alg2.Protocol{}, n, t, nil, scheme)
	})
}

// BenchmarkICOverhead — interactive consistency as n parallel instances:
// the message cost is exactly n × the base protocol's.
func BenchmarkICOverhead(b *testing.B) {
	const n, t = 7, 2
	b.Run("base", func(b *testing.B) { runBA(b, dolevstrong.Protocol{}, n, t, nil, nil) })
	b.Run("ic", func(b *testing.B) { runBA(b, ic.Protocol{Base: dolevstrong.Protocol{}}, n, t, nil, nil) })
}

func benchName(k string, v int) string {
	return k + "=" + strconv.Itoa(v)
}
