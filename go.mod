module byzex

go 1.22
