package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"byzex/internal/cli"
	"byzex/internal/ident"
	"byzex/internal/service"
)

// churnChildPrefix is prepended to the re-exec argv of the churn child.
// Empty for the real binary (the env marker is enough); the package test
// sets it to the -test.run filter that selects the helper body, so the test
// binary can act as its own server process.
var churnChildPrefix []string

// churnBanner is the child's one-line readiness report. The parent parses
// every number the drill asserts on out of this single line, so a child that
// dies before serving can never be mistaken for a slow one.
var churnBanner = regexp.MustCompile(`churn-serve: watermark=(\d+) replayed=(\d+) recovery=(\S+) listening on (\S+)`)

// runChurnServe is the child body of the churn drill: a journaled server in
// its own process, so the parent can SIGKILL it mid-load. It mirrors
// baserve's serve path (same flag surface via cli.RegisterServeFlags) but
// reports recovery timing in a machine-parseable banner: recovery covers the
// journal scan plus the byte-identical replay of every pending admission —
// the restart-to-listening budget the churn benchmark measures.
func runChurnServe(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("baload-churn-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	sf := cli.RegisterServeFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	tmpl, _, err := sf.Template().Resolve()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	svcCfg, err := sf.ServiceConfig(tmpl)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	recoverStart := time.Now()
	jw, rec, err := sf.OpenJournal(tmpl)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if jw == nil {
		fmt.Fprintln(stderr, "churn serve requires -journal-dir")
		return 2
	}
	svcCfg.Journal = jw
	svcCfg.FirstInstance = rec.FirstInstance()
	svcCfg.BaseStats = rec.BaseStats()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	svc, err := service.New(ctx, svcCfg)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	replayed, err := rec.Replay(svc, tmpl)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	jw.SetReplayed(uint64(replayed))
	recovery := time.Since(recoverStart)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	fmt.Fprintf(stdout, "churn-serve: watermark=%d replayed=%d recovery=%s listening on %s\n",
		rec.Watermark, replayed, recovery, ln.Addr())

	if err := service.Serve(ctx, ln, svc); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	svc.Close()
	if err := jw.Close(); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	fmt.Fprintf(stdout, "churn-serve: drained %s\n", svc.Stats().String())
	return 0
}

// churnConfig is everything the parent loop needs from the flag surface.
type churnConfig struct {
	cycles    int      // kill/restart cycles (child generations = cycles+1)
	acksPer   int      // acknowledged submissions per generation before the signal
	conns     int      // closed-loop connection fan-out
	mod       int      // value modulus
	bound     int      // max tolerated replay count per restart; <=0 = no gate
	serveArgs []string // child flag surface (template + journal + pipeline)
}

// churnBound derives the replay gate from the serving flags: a restart may
// replay at most one checkpoint budget plus everything that can legally be
// in flight past the delivered watermark (queued batches, per-shard
// executions, and one outstanding submission per loader connection).
func churnBound(sf *cli.ServeFlags, shards, conns int) int {
	if *sf.CheckpointEvery <= 0 {
		return 0
	}
	batch := *sf.Batch
	if *sf.BatchMax > batch {
		batch = *sf.BatchMax
	}
	if batch < 1 {
		batch = 1
	}
	return *sf.CheckpointEvery + *sf.Queue + shards*batch + conns
}

// churnConfigFrom rebuilds the child's flag surface from the parsed serving
// flags; the parent-only command flags (-c, -addr, -churn*) stay behind.
func churnConfigFrom(sf *cli.ServeFlags, cycles, acks, conns, mod int) churnConfig {
	shards := *sf.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	serveArgs := []string{
		"-protocol", *sf.Protocol, "-adversary", *sf.Adversary, "-scheme", *sf.Scheme,
		"-n", strconv.Itoa(*sf.N), "-t", strconv.Itoa(*sf.T), "-s", strconv.Itoa(*sf.S),
		"-seed", strconv.FormatInt(*sf.Seed, 10),
		"-shards", strconv.Itoa(*sf.Shards), "-queue", strconv.Itoa(*sf.Queue),
		"-batch", strconv.Itoa(*sf.Batch), "-linger", sf.Linger.String(),
		"-journal-dir", *sf.JournalDir, "-fsync", *sf.Fsync,
		"-checkpoint-every", strconv.Itoa(*sf.CheckpointEvery),
		"-checkpoint-interval", sf.CheckpointInterval.String(),
	}
	if *sf.Faults != "" {
		serveArgs = append(serveArgs, "-faults", *sf.Faults)
	}
	if *sf.Adaptive {
		serveArgs = append(serveArgs, "-adaptive",
			"-batch-min", strconv.Itoa(*sf.BatchMin), "-batch-max", strconv.Itoa(*sf.BatchMax))
	}
	if *sf.Transport != "memory" {
		serveArgs = append(serveArgs, "-transport", *sf.Transport)
		if *sf.WarmMesh {
			serveArgs = append(serveArgs, "-warm-mesh")
		}
		if *sf.LinkDelay > 0 {
			serveArgs = append(serveArgs, "-link-delay", sf.LinkDelay.String())
		}
		if *sf.WireVersion != 0 {
			serveArgs = append(serveArgs, "-wire-version", strconv.Itoa(*sf.WireVersion))
		}
	}
	return churnConfig{
		cycles: cycles, acksPer: acks, conns: conns, mod: mod,
		bound:     churnBound(sf, shards, conns),
		serveArgs: serveArgs,
	}
}

// runChurn is the parent loop of the kill/restart drill: it forks a
// journaled server, loads it over the wire until the cycle's quota of
// acknowledged submissions, SIGKILLs it mid-load, restarts it over the same
// journal directory, and asserts the restart replayed no more than the
// checkpoint budget allows. Recovery time and replay throughput are emitted
// as benchmark-format lines (`BenchmarkChurn...`) so `make bench-journal`
// archives them alongside the scan benchmarks. The final generation is
// drained cleanly (SIGTERM) so the drill leaves a checkpointed journal.
func runChurn(cfg churnConfig, stdout, stderr *os.File) int {
	dir, err := os.MkdirTemp("", "baload-churn-*")
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	defer func() { _ = os.RemoveAll(dir) }()

	maxReplayed := 0
	for cycle := 0; cycle <= cfg.cycles; cycle++ {
		outPath := filepath.Join(dir, fmt.Sprintf("gen-%d-out", cycle))
		outF, err := os.Create(outPath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		child := exec.Command(os.Args[0], churnChildPrefix...)
		child.Env = append(os.Environ(),
			"BALOAD_CHURN_SERVE=1",
			"BALOAD_CHURN_ARGS="+strings.Join(cfg.serveArgs, "\x1f"),
		)
		child.Stdout = outF
		child.Stderr = outF
		if err := child.Start(); err != nil {
			_ = outF.Close()
			fmt.Fprintln(stderr, err)
			return 1
		}
		banner, err := awaitChurnBanner(outPath, 30*time.Second)
		if err != nil {
			_ = child.Process.Kill()
			_, _ = child.Process.Wait()
			_ = outF.Close()
			fmt.Fprintf(stderr, "churn: generation %d never came up: %v\n", cycle, err)
			return 1
		}
		watermark, _ := strconv.Atoi(banner[1])
		replayed, _ := strconv.Atoi(banner[2])
		recovery, err := time.ParseDuration(banner[3])
		if err != nil {
			recovery = 0
		}
		addr := banner[4]

		if cycle > 0 {
			if replayed > maxReplayed {
				maxReplayed = replayed
			}
			rate := 0.0
			if sec := recovery.Seconds(); sec > 0 {
				rate = float64(replayed) / sec
			}
			// Benchmark-format: benchjson turns the custom units into
			// archived metrics next to the journal scan rows.
			fmt.Fprintf(stdout, "BenchmarkChurnRecovery/cycle=%d \t1\t%d ns/op\t%d replayed\t%.0f replayed/s\n",
				cycle, recovery.Nanoseconds(), replayed, rate)
			if cfg.bound > 0 && replayed > cfg.bound {
				_ = child.Process.Kill()
				_, _ = child.Process.Wait()
				_ = outF.Close()
				fmt.Fprintf(stderr, "churn: FAIL generation %d replayed %d admissions, bound %d (watermark %d)\n",
					cycle, replayed, cfg.bound, watermark)
				return 1
			}
		}

		final := cycle == cfg.cycles
		sig := syscall.SIGKILL
		if final {
			sig = syscall.SIGTERM
		}
		acked, loadErr := churnLoad(addr, cfg.conns, cfg.mod, cfg.acksPer, func() error {
			return child.Process.Signal(sig)
		})
		waitErr := child.Wait()
		_ = outF.Close()
		if loadErr != nil {
			fmt.Fprintf(stderr, "churn: generation %d acknowledged only %d/%d: %v\n", cycle, acked, cfg.acksPer, loadErr)
			return 1
		}
		if final {
			if waitErr != nil {
				out, _ := os.ReadFile(outPath)
				fmt.Fprintf(stderr, "churn: final drain failed: %v\n%s", waitErr, out)
				return 1
			}
			fmt.Fprintf(stdout, "churn: %d kill/restart cycles, max replayed %d (bound %d), final watermark %d+%d\n",
				cfg.cycles, maxReplayed, cfg.bound, watermark, acked)
		}
	}
	return 0
}

// churnLoad drives closed-loop submissions and fires sig once target acks
// have landed — while the loaders are still mid-flight, so a SIGKILL always
// finds admitted-but-undelivered work and a SIGTERM drains under live
// traffic. Loader errors after the signal are the expected severed
// connections; an error is returned only when the target was never reached.
func churnLoad(addr string, conns, mod, target int, sig func() error) (int, error) {
	var (
		acked    atomic.Int64
		stopped  atomic.Bool
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	setErr := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	getErr := func() error {
		errMu.Lock()
		defer errMu.Unlock()
		return firstErr
	}
	if mod < 1 {
		mod = 1
	}
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := service.DialClient(addr)
			if err != nil {
				setErr(err)
				return
			}
			defer func() { _ = cl.Close() }()
			for i := 0; !stopped.Load(); i++ {
				if _, err := cl.Submit(ident.Value((c + i) % mod)); err != nil {
					setErr(err)
					return
				}
				acked.Add(1)
			}
		}(c)
	}
	deadline := time.Now().Add(60 * time.Second)
	for int(acked.Load()) < target && time.Now().Before(deadline) {
		if getErr() != nil {
			break // the server is gone; no point waiting out the deadline
		}
		time.Sleep(time.Millisecond)
	}
	sigErr := sig()
	stopped.Store(true)
	wg.Wait()
	got := int(acked.Load())
	if sigErr != nil {
		return got, sigErr
	}
	if got < target {
		return got, fmt.Errorf("only %d/%d acknowledged (first loader error: %v)", got, target, getErr())
	}
	return got, nil
}

// awaitChurnBanner polls the child's output file for the readiness banner.
func awaitChurnBanner(path string, timeout time.Duration) ([]string, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		b, _ := os.ReadFile(path)
		if m := churnBanner.FindStringSubmatch(string(b)); m != nil {
			return m, nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	b, _ := os.ReadFile(path)
	return nil, fmt.Errorf("banner never appeared in:\n%s", b)
}
