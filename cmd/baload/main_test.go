package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs baload's run() with stdout/stderr redirected to temp files
// (run takes *os.File, matching main's os.Stdout/os.Stderr) and returns the
// exit code plus both outputs.
func capture(t *testing.T, args []string) (code int, stdout, stderr string) {
	t.Helper()
	dir := t.TempDir()
	outF, err := os.Create(filepath.Join(dir, "stdout"))
	if err != nil {
		t.Fatal(err)
	}
	errF, err := os.Create(filepath.Join(dir, "stderr"))
	if err != nil {
		t.Fatal(err)
	}
	code = run(args, outF, errF)
	_ = outF.Close()
	_ = errF.Close()
	outB, _ := os.ReadFile(outF.Name())
	errB, _ := os.ReadFile(errF.Name())
	return code, string(outB), string(errB)
}

// TestSelfhostShardedVerify is the end-to-end exercise of the sharded
// serving path in one process: baload starts its own server with 4 shards
// and adaptive batching, drives a closed loop against it over real loopback
// TCP, then re-executes every observed instance serially and compares —
// the seed = base + id replay contract surviving shards and batching.
func TestSelfhostShardedVerify(t *testing.T) {
	code, stdout, stderr := capture(t, []string{
		"-selfhost", "-protocol", "alg1-multi", "-t", "3",
		"-shards", "4", "-adaptive", "-batch", "8",
		"-c", "8", "-requests", "4", "-mod", "64",
		"-verify", "-seed", "5",
	})
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "selfhost:") {
		t.Fatalf("no selfhost banner:\n%s", stdout)
	}
	if !strings.Contains(stdout, "instances match serial core.Run exactly") {
		t.Fatalf("verification did not run:\n%s", stdout)
	}
	if !strings.Contains(stdout, "shards=4") {
		t.Fatalf("shard count not surfaced:\n%s", stdout)
	}
}

// TestSelfhostFaultPlan drives the self-hosted server with an in-budget
// fault plan: instances must still decide and verify serially (the plan is
// part of the template on both sides).
func TestSelfhostFaultPlan(t *testing.T) {
	code, stdout, stderr := capture(t, []string{
		"-selfhost", "-protocol", "alg1", "-t", "3",
		"-faults", "crash=6@3", "-shards", "2",
		"-c", "4", "-requests", "2",
		"-seed", "11",
	})
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "amortized:") {
		t.Fatalf("no load summary:\n%s", stdout)
	}
}

// TestBadFlags pins the typed failure paths.
func TestBadFlags(t *testing.T) {
	if code, _, _ := capture(t, []string{"-protocol", "no-such", "-selfhost"}); code == 0 {
		t.Fatal("unknown protocol accepted")
	}
	if code, _, _ := capture(t, []string{"-faults", "bogus", "-selfhost"}); code == 0 {
		t.Fatal("bad fault spec accepted")
	}
}

// TestOpenLoopSelfhost drives the open loop end to end in one process:
// Poisson arrivals against a self-hosted server, a generous SLO gate that
// must pass, and a metrics endpoint scrapable mid-run semantics (the
// exporter is exercised directly in internal/obs; here we pin the flag
// wiring and the banner).
func TestOpenLoopSelfhost(t *testing.T) {
	code, stdout, stderr := capture(t, []string{
		"-selfhost", "-protocol", "alg1-multi", "-t", "3",
		"-shards", "4", "-batch", "8", "-adaptive",
		"-c", "8", "-mod", "64",
		"-rate", "300", "-duration", "500ms", "-seed", "9",
		"-slo-p99", "5s",
		"-verify",
	})
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "offered:") {
		t.Fatalf("no open-loop banner:\n%s", stdout)
	}
	if !strings.Contains(stdout, "slo: ok") {
		t.Fatalf("SLO gate did not report:\n%s", stdout)
	}
	if !strings.Contains(stdout, "instances match serial core.Run exactly") {
		t.Fatalf("verification did not run:\n%s", stdout)
	}
}

// TestSLOGateFails pins the gate's contract: an unmeetable bound exits
// non-zero and says why on stderr.
func TestSLOGateFails(t *testing.T) {
	code, stdout, stderr := capture(t, []string{
		"-selfhost", "-protocol", "alg1", "-t", "2",
		"-c", "2",
		"-rate", "200", "-duration", "300ms", "-seed", "3",
		"-slo-p99", "1ns",
	})
	if code == 0 {
		t.Fatalf("impossible SLO passed\nstdout:\n%s", stdout)
	}
	if !strings.Contains(stderr, "slo: FAIL") {
		t.Fatalf("no SLO failure report:\n%s", stderr)
	}
}

// TestSLORequiresOpenLoop pins the flag-surface guard: -slo-p99 without
// -rate is a usage error (closed-loop latency cannot gate an SLO).
func TestSLORequiresOpenLoop(t *testing.T) {
	code, _, stderr := capture(t, []string{"-selfhost", "-slo-p99", "10ms"})
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr, "-slo-p99 requires the open loop") {
		t.Fatalf("no usage message:\n%s", stderr)
	}
}
