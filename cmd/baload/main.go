// Command baload drives a closed-loop load against a baserve: each
// connection keeps exactly one request outstanding, retrying backpressure
// rejections, and the run ends with throughput, latency percentiles, and
// the amortized correct-sender message/signature cost per decided value.
//
//	baload -addr 127.0.0.1:9440 -c 100 -requests 3
//	baload -addr 127.0.0.1:9440 -c 16 -verify -protocol alg1 -n 7 -t 3
//	baload -selfhost -protocol alg1-multi -t 3 -shards 4 -adaptive -c 32
//
// With -selfhost, baload starts the service in-process on a loopback port
// (configured by the same template and serving flags baserve takes, notably
// -shards and -adaptive), drives the load against it, then drains it — a
// one-command end-to-end exercise of the sharded serving path.
//
// With -verify, every distinct instance observed in the replies is
// re-executed serially with core.Run on the (seed, packed value) the server
// reported; the template flags must match the server's. Any divergence in
// the decided value or the correct-sender message/signature counts is a
// verification failure and the exit code is non-zero.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"sort"
	"strings"

	"byzex/internal/cli"
	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/service"
	"byzex/internal/transport"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("baload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "127.0.0.1:9440", "baserve address")
		conns    = fs.Int("c", 16, "concurrent connections (closed loop)")
		requests = fs.Int("requests", 8, "successful submissions per connection")
		mod      = fs.Int("mod", 2, "values cycle over [0,mod); keep 2 for binary protocols")
		verify   = fs.Bool("verify", false, "re-run every observed instance serially and compare")

		// Self-host mode: run the service in-process instead of dialing out.
		selfhost = fs.Bool("selfhost", false, "start an in-process server on 127.0.0.1:0 from the template flags and load it")
		shards   = fs.Int("shards", 0, "selfhost: shard workers (default GOMAXPROCS)")
		batch    = fs.Int("batch", 1, "selfhost: fixed batch size")
		adaptive = fs.Bool("adaptive", false, "selfhost: adaptive batching in [1, max(-batch,16)]")
		queue    = fs.Int("queue", 64, "selfhost: admission queue depth")
		trans    = fs.String("transport", "memory", "selfhost: substrate per instance: memory|tcp")
		warmMesh = fs.Bool("warm-mesh", false, "selfhost: with -transport tcp, one long-lived mesh per shard")

		// Template flags, consulted with -verify (must match the serving
		// baserve; the per-instance seed comes from each reply) and with
		// -selfhost (they configure the in-process server).
		protoName = fs.String("protocol", "alg1", "server's protocol: "+strings.Join(cli.ProtocolNames(), "|"))
		n         = fs.Int("n", 0, "server's processor count (default 2t+1)")
		t         = fs.Int("t", 2, "server's fault bound")
		s         = fs.Int("s", 0, "server's set/tree size parameter")
		advName   = fs.String("adversary", "none", "server's adversary")
		schemeStr = fs.String("scheme", "hmac", "server's signature scheme")
		faultSpec = fs.String("faults", "", "server's fault-injection spec (see internal/faultnet)")
		seed      = fs.Int64("seed", 1, "server's base seed (selfhost)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *mod < 1 {
		*mod = 1
	}

	tmpl, warn, err := cli.Template{
		Protocol: *protoName, Adversary: *advName, Scheme: *schemeStr,
		Faults: *faultSpec, N: *n, T: *t, S: *s, Seed: *seed,
	}.Resolve()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if warn != "" {
		fmt.Fprintf(stderr, "warning: %s\n", warn)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var hosted *service.Service
	if *selfhost {
		svcCfg := service.Config{
			Template:   tmpl,
			Shards:     *shards,
			QueueDepth: *queue,
			BatchSize:  *batch,
		}
		switch *trans {
		case "memory":
			if *warmMesh {
				fmt.Fprintln(stderr, "-warm-mesh requires -transport tcp")
				return 1
			}
		case "tcp":
			if *warmMesh {
				pool := service.NewWarmTCP(tmpl.N, transport.Net{})
				svcCfg.NewShardRun = pool.NewShardRun
				svcCfg.CloseShardRun = pool.CloseShard
			} else {
				svcCfg.Run = service.RunTCP(transport.Net{})
			}
		default:
			fmt.Fprintf(stderr, "unknown transport %q\n", *trans)
			return 1
		}
		if *adaptive {
			bmax := *batch
			if bmax < 2 {
				bmax = 16
			}
			svcCfg.BatchMin, svcCfg.BatchMax = 1, bmax
		}
		hosted, err = service.New(ctx, svcCfg)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		served := make(chan error, 1)
		go func() { served <- service.Serve(ctx, ln, hosted) }()
		defer func() {
			cancel()
			<-served
			hosted.Close()
		}()
		*addr = ln.Addr().String()
		fmt.Fprintf(stdout, "selfhost: %s n=%d t=%d shards=%d listening on %s\n",
			*protoName, tmpl.N, tmpl.T, hosted.Stats().Shards, *addr)
	}

	load, err := service.RunLoad(ctx, service.LoadConfig{
		Addr:     *addr,
		Conns:    *conns,
		Requests: *requests,
		ValueFor: func(c, i int) ident.Value { return ident.Value((c + i) % *mod) },
	})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	fmt.Fprintf(stdout, "submitted: %d ok, %d backpressure retries, %d distinct instances\n",
		load.Submitted, load.Rejected, len(load.Instances))
	fmt.Fprintf(stdout, "throughput: %.1f values/s over %v\n", load.Throughput(), load.Elapsed.Round(load.Elapsed/1000+1))
	fmt.Fprintf(stdout, "latency: p50=%v p90=%v p99=%v\n",
		load.Percentile(50), load.Percentile(90), load.Percentile(99))
	fmt.Fprintf(stdout, "amortized: %.2f msgs/value %.2f sigs/value (%d values, %d msgs, %d sigs)\n",
		load.AmortizedMsgsPerValue(), amortizedSigs(load), load.ValuesServed, load.MsgsTotal, load.SigsTotal)
	if hosted != nil {
		st := hosted.Stats()
		fmt.Fprintf(stdout, "server: %s\n", st.String())
	}

	if !*verify {
		return 0
	}
	if bad := verifyInstances(stdout, stderr, tmpl, load.Instances); bad > 0 {
		fmt.Fprintf(stderr, "verify: %d/%d instances diverged from serial re-execution\n", bad, len(load.Instances))
		return 1
	}
	fmt.Fprintf(stdout, "verify: %d instances match serial core.Run exactly\n", len(load.Instances))
	return 0
}

// verifyInstances re-runs each served instance with core.Run on the same
// seed and packed value and counts divergences.
func verifyInstances(stdout, stderr *os.File, tmpl core.Config, instances map[uint64]service.Reply) int {
	ids := make([]uint64, 0, len(instances))
	for id := range instances {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	bad := 0
	for _, id := range ids {
		reply := instances[id]
		cfg := tmpl
		cfg.Value = reply.Packed
		cfg.Seed = reply.Seed
		serial, err := core.Run(context.Background(), cfg)
		if err != nil {
			fmt.Fprintf(stderr, "verify: instance %d: serial run: %v\n", id, err)
			bad++
			continue
		}
		decided, err := serial.Decision(cfg.Transmitter, cfg.Value)
		if err != nil {
			fmt.Fprintf(stderr, "verify: instance %d: %v\n", id, err)
			bad++
			continue
		}
		if decided != reply.Decided {
			fmt.Fprintf(stderr, "verify: instance %d: served decision %v, serial %v\n", id, reply.Decided, decided)
			bad++
			continue
		}
		if serial.Sim.Report.MessagesCorrect != reply.Msgs || serial.Sim.Report.SignaturesCorrect != reply.Sigs {
			fmt.Fprintf(stderr, "verify: instance %d: served msgs/sigs %d/%d, serial %d/%d\n",
				id, reply.Msgs, reply.Sigs, serial.Sim.Report.MessagesCorrect, serial.Sim.Report.SignaturesCorrect)
			bad++
		}
	}
	return bad
}

func amortizedSigs(ls *service.LoadStats) float64 {
	if ls.ValuesServed == 0 {
		return 0
	}
	return float64(ls.SigsTotal) / float64(ls.ValuesServed)
}
