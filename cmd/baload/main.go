// Command baload drives load against a baserve, in either of two modes:
//
// Closed loop (default): each of -c connections keeps exactly one request
// outstanding, retrying backpressure rejections. Offered load adapts to the
// server — good for throughput ceilings, blind to overload latency.
//
// Open loop (-rate): submissions arrive as a Poisson process at -rate
// arrivals per second for -duration, fanned out over -c connections,
// whether or not earlier requests finished. Latency is measured from each
// request's scheduled arrival (coordinated-omission-free) and queue-full
// rejections are shed, not retried. A fixed -seed reproduces the arrival
// schedule exactly. -slo-p99 turns the run into a gate: if the p99 latency
// exceeds the bound (or any arrival fails outright), the exit code is
// non-zero — the `make slo` contract.
//
//	baload -addr 127.0.0.1:9440 -c 100 -requests 3
//	baload -addr 127.0.0.1:9440 -c 16 -verify -protocol alg1 -n 7 -t 3
//	baload -selfhost -protocol alg1-multi -t 3 -shards 4 -adaptive -c 32
//	baload -selfhost -protocol alg1-multi -t 3 -rate 500 -duration 5s -slo-p99 50ms
//
// With -selfhost, baload starts the service in-process on a loopback port —
// configured by the same serving flags baserve takes (cli.RegisterServeFlags:
// -shards, -adaptive, -warm-mesh, -faults, -trace, -metrics-addr, ...) —
// drives the load against it, then drains it: a one-command end-to-end
// exercise of the sharded serving path, ops plane included.
//
// With -verify, every distinct instance observed in the replies is
// re-executed serially with core.Run on the (seed, packed value) the server
// reported; the template flags must match the server's. Any divergence in
// the decided value or the correct-sender message/signature counts is a
// verification failure and the exit code is non-zero.
//
// With -churn N (requires -journal-dir), baload becomes the journal churn
// drill: it forks a journaled server as a child process, drives closed-loop
// load until -churn-acks acknowledgements, SIGKILLs the child mid-load,
// restarts it over the same journal directory, and repeats N times (the
// final generation drains cleanly via SIGTERM). Each restart's replay count
// is gated against the checkpoint budget (-checkpoint-every plus legal
// in-flight work), and recovery time per restart is printed in benchmark
// format for `make bench-journal` to archive:
//
//	baload -churn 3 -churn-acks 48 -c 8 -protocol alg1 -t 1 \
//	    -journal-dir /tmp/churn -fsync always -checkpoint-every 16
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"sort"
	"strings"
	"time"

	"byzex/internal/cli"
	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/obs"
	"byzex/internal/service"
)

func main() {
	// The churn drill re-execs this binary as its server child; the env
	// marker routes the child straight into the serve body.
	if os.Getenv("BALOAD_CHURN_SERVE") == "1" {
		os.Exit(runChurnServe(strings.Split(os.Getenv("BALOAD_CHURN_ARGS"), "\x1f"), os.Stdout, os.Stderr))
	}
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("baload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	sf := cli.RegisterServeFlags(fs)
	var (
		addr     = fs.String("addr", "127.0.0.1:9440", "baserve address")
		conns    = fs.Int("c", 16, "connection fan-out (closed loop: one outstanding request each; open loop: in-flight bound)")
		requests = fs.Int("requests", 8, "closed loop: successful submissions per connection")
		mod      = fs.Int("mod", 2, "values cycle over [0,mod); keep 2 for binary protocols")
		verify   = fs.Bool("verify", false, "re-run every observed instance serially and compare")
		selfhost = fs.Bool("selfhost", false, "start an in-process server on 127.0.0.1:0 from the serving flags and load it")

		// Open-loop mode and its SLO gate.
		rate     = fs.Float64("rate", 0, "open loop: Poisson arrival rate in submissions/s (0 = closed loop)")
		duration = fs.Duration("duration", 2*time.Second, "open loop: arrival window")
		sloP99   = fs.Duration("slo-p99", 0, "open loop: exit non-zero unless p99 latency <= this bound (0 = no gate)")

		// Kill/restart drill over a journaled child server.
		churn     = fs.Int("churn", 0, "journal churn drill: fork a journaled server, SIGKILL and restart it this many times under load (requires -journal-dir)")
		churnAcks = fs.Int("churn-acks", 64, "churn: acknowledged submissions per server generation before the signal")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *mod < 1 {
		*mod = 1
	}
	if *rate == 0 && *sloP99 > 0 {
		fmt.Fprintln(stderr, "-slo-p99 requires the open loop (-rate): closed-loop latency hides overload")
		return 2
	}
	if *churn > 0 {
		if *sf.JournalDir == "" {
			fmt.Fprintln(stderr, "-churn requires -journal-dir: the drill measures journal recovery")
			return 2
		}
		if *selfhost || *rate > 0 || *verify {
			fmt.Fprintln(stderr, "-churn is its own drill; drop -selfhost/-rate/-verify")
			return 2
		}
		return runChurn(churnConfigFrom(sf, *churn, *churnAcks, *conns, *mod), stdout, stderr)
	}

	tmpl, warn, err := sf.Template().Resolve()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if warn != "" {
		fmt.Fprintf(stderr, "warning: %s\n", warn)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var hosted *service.Service
	if *selfhost {
		svcCfg, err := sf.ServiceConfig(tmpl)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		spool, closeSpool, err := sf.OpenSpool()
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if spool != nil {
			svcCfg.Trace = spool
			defer func() {
				if err := closeSpool(); err != nil {
					fmt.Fprintln(stderr, err)
				}
			}()
		}
		jw, rec, err := sf.OpenJournal(tmpl)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if jw != nil {
			svcCfg.Journal = jw
			svcCfg.FirstInstance = rec.FirstInstance()
			svcCfg.BaseStats = rec.BaseStats()
		}
		hosted, err = service.New(ctx, svcCfg)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if jw != nil {
			replayed, err := rec.Replay(hosted, tmpl)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			jw.SetReplayed(uint64(replayed))
			fmt.Fprintf(stdout, "journal: %s fsync=%s watermark=%d replayed=%d\n",
				*sf.JournalDir, *sf.Fsync, rec.Watermark, replayed)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		served := make(chan error, 1)
		go func() { served <- service.Serve(ctx, ln, hosted) }()
		defer func() {
			cancel()
			<-served
			hosted.Close()
			if jw != nil {
				if err := jw.Close(); err != nil {
					fmt.Fprintln(stderr, err)
				}
			}
		}()
		if *sf.MetricsAddr != "" {
			exp := obs.NewExporter()
			exp.Register(obs.NewServiceCollector(hosted))
			if spool != nil {
				exp.Register(obs.NewSpoolCollector(spool))
			}
			if jw != nil {
				exp.Register(obs.NewJournalCollector(jw))
			}
			mln, err := net.Listen("tcp", *sf.MetricsAddr)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			go func() { _ = obs.Serve(ctx, mln, exp) }()
			fmt.Fprintf(stdout, "metrics: http://%s/metrics\n", mln.Addr())
		}
		*addr = ln.Addr().String()
		fmt.Fprintf(stdout, "selfhost: %s n=%d t=%d shards=%d listening on %s\n",
			*sf.Protocol, tmpl.N, tmpl.T, hosted.Stats().Shards, *addr)
	}

	var load *service.LoadStats
	if *rate > 0 {
		load, err = service.RunOpenLoad(ctx, service.OpenLoadConfig{
			Addr:     *addr,
			Conns:    *conns,
			Rate:     *rate,
			Duration: *duration,
			Seed:     *sf.Seed,
			ValueFor: func(i int) ident.Value { return ident.Value(i % *mod) },
		})
	} else {
		load, err = service.RunLoad(ctx, service.LoadConfig{
			Addr:     *addr,
			Conns:    *conns,
			Requests: *requests,
			ValueFor: func(c, i int) ident.Value { return ident.Value((c + i) % *mod) },
		})
	}
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	if *rate > 0 {
		fmt.Fprintf(stdout, "offered: %d arrivals at %.0f/s over %v (seed %d)\n",
			load.Offered, *rate, *duration, *sf.Seed)
		fmt.Fprintf(stdout, "submitted: %d ok, %d shed, %d distinct instances\n",
			load.Submitted, load.Rejected, len(load.Instances))
	} else {
		fmt.Fprintf(stdout, "submitted: %d ok, %d backpressure retries, %d distinct instances\n",
			load.Submitted, load.Rejected, len(load.Instances))
	}
	fmt.Fprintf(stdout, "throughput: %.1f values/s over %v\n", load.Throughput(), load.Elapsed.Round(load.Elapsed/1000+1))
	fmt.Fprintf(stdout, "latency: p50=%v p90=%v p99=%v\n",
		load.Percentile(50), load.Percentile(90), load.Percentile(99))
	fmt.Fprintf(stdout, "amortized: %.2f msgs/value %.2f sigs/value (%d values, %d msgs, %d sigs)\n",
		load.AmortizedMsgsPerValue(), amortizedSigs(load), load.ValuesServed, load.MsgsTotal, load.SigsTotal)
	if hosted != nil {
		st := hosted.Stats()
		fmt.Fprintf(stdout, "server: %s\n", st.String())
	}

	if *sloP99 > 0 {
		p99 := load.Percentile(99)
		if load.Submitted == 0 || p99 > *sloP99 {
			fmt.Fprintf(stderr, "slo: FAIL p99=%v > bound %v (%d/%d arrivals served)\n",
				p99, *sloP99, load.Submitted, load.Offered)
			return 1
		}
		fmt.Fprintf(stdout, "slo: ok p99=%v <= %v\n", p99, *sloP99)
	}

	if !*verify {
		return 0
	}
	if bad := verifyInstances(stdout, stderr, tmpl, load.Instances); bad > 0 {
		fmt.Fprintf(stderr, "verify: %d/%d instances diverged from serial re-execution\n", bad, len(load.Instances))
		return 1
	}
	fmt.Fprintf(stdout, "verify: %d instances match serial core.Run exactly\n", len(load.Instances))
	return 0
}

// verifyInstances re-runs each served instance with core.Run on the same
// seed and packed value and counts divergences.
func verifyInstances(stdout, stderr *os.File, tmpl core.Config, instances map[uint64]service.Reply) int {
	ids := make([]uint64, 0, len(instances))
	for id := range instances {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	bad := 0
	for _, id := range ids {
		reply := instances[id]
		cfg := tmpl
		cfg.Value = reply.Packed
		cfg.Seed = reply.Seed
		serial, err := core.Run(context.Background(), cfg)
		if err != nil {
			fmt.Fprintf(stderr, "verify: instance %d: serial run: %v\n", id, err)
			bad++
			continue
		}
		decided, err := serial.Decision(cfg.Transmitter, cfg.Value)
		if err != nil {
			fmt.Fprintf(stderr, "verify: instance %d: %v\n", id, err)
			bad++
			continue
		}
		if decided != reply.Decided {
			fmt.Fprintf(stderr, "verify: instance %d: served decision %v, serial %v\n", id, reply.Decided, decided)
			bad++
			continue
		}
		if serial.Sim.Report.MessagesCorrect != reply.Msgs || serial.Sim.Report.SignaturesCorrect != reply.Sigs {
			fmt.Fprintf(stderr, "verify: instance %d: served msgs/sigs %d/%d, serial %d/%d\n",
				id, reply.Msgs, reply.Sigs, serial.Sim.Report.MessagesCorrect, serial.Sim.Report.SignaturesCorrect)
			bad++
		}
	}
	return bad
}

func amortizedSigs(ls *service.LoadStats) float64 {
	if ls.ValuesServed == 0 {
		return 0
	}
	return float64(ls.SigsTotal) / float64(ls.ValuesServed)
}
