package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"byzex/internal/journal"
)

// TestHelperChurnServe is not a test: it is the churn drill's child server
// body, selected by the parent's re-exec of the test binary. The env marker
// keeps a plain `go test` run from ever entering it.
func TestHelperChurnServe(t *testing.T) {
	if os.Getenv("BALOAD_CHURN_SERVE") != "1" {
		t.Skip("churn-drill helper process only")
	}
	args := strings.Split(os.Getenv("BALOAD_CHURN_ARGS"), "\x1f")
	os.Exit(runChurnServe(args, os.Stdout, os.Stderr))
}

// TestChurnDrill runs the full -churn mode in miniature: two SIGKILL/restart
// cycles over one journal directory plus the final clean drain, with the
// test binary acting as its own server child. It pins the drill's contract:
// exit 0, one benchmark-format recovery line per restart (parseable by
// benchjson's `name iters value unit...` shape), every restart's replay
// count within the checkpoint-budget bound, and a journal left fully
// checkpointed — a third boot would replay nothing.
func TestChurnDrill(t *testing.T) {
	if testing.Short() {
		t.Skip("churn drill forks the test binary")
	}
	// Route the re-exec into the helper above instead of baload's main.
	churnChildPrefix = []string{"-test.run", "^TestHelperChurnServe$"}
	defer func() { churnChildPrefix = nil }()

	journalDir := filepath.Join(t.TempDir(), "journal")
	code, stdout, stderr := capture(t, []string{
		"-churn", "2", "-churn-acks", "16", "-c", "4",
		"-protocol", "alg1", "-t", "1", "-seed", "7", "-shards", "2",
		"-journal-dir", journalDir, "-fsync", "always", "-checkpoint-every", "8",
	})
	if code != 0 {
		t.Fatalf("churn drill exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}

	benchLine := regexp.MustCompile(`(?m)^BenchmarkChurnRecovery/cycle=(\d+) \t1\t(\d+) ns/op\t(\d+) replayed\t\d+ replayed/s$`)
	lines := benchLine.FindAllStringSubmatch(stdout, -1)
	if len(lines) != 2 {
		t.Fatalf("want 2 recovery benchmark lines, got %d:\n%s", len(lines), stdout)
	}
	// The acceptance bound: a restart replays at most one checkpoint budget
	// plus legal in-flight work (queue + shards*batch + conns); the drill
	// itself gates on this, re-derive it here so a silently-wrong bound in
	// the drill cannot pass the test.
	const bound = 8 + 64 + 2*1 + 4
	for _, m := range lines {
		replayed, _ := strconv.Atoi(m[3])
		if replayed > bound {
			t.Fatalf("cycle %s replayed %d > bound %d", m[1], replayed, bound)
		}
	}
	if !strings.Contains(stdout, "churn: 2 kill/restart cycles") {
		t.Fatalf("summary line missing:\n%s", stdout)
	}

	// The final generation drained: the journal hands a third boot nothing.
	rec, err := journal.Recover(journalDir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Checkpoint == nil || len(rec.Pending) != 0 {
		t.Fatalf("post-drill journal: checkpoint=%v pending=%d", rec.Checkpoint, len(rec.Pending))
	}
}

// TestChurnFlagValidation pins the typed rejections of the drill surface.
func TestChurnFlagValidation(t *testing.T) {
	if code, _, stderr := capture(t, []string{"-churn", "1"}); code != 2 ||
		!strings.Contains(stderr, "-churn requires -journal-dir") {
		t.Fatalf("churn without journal: code %d, stderr %q", code, stderr)
	}
	if code, _, stderr := capture(t, []string{
		"-churn", "1", "-journal-dir", t.TempDir(), "-selfhost",
	}); code != 2 || !strings.Contains(stderr, "-churn is its own drill") {
		t.Fatalf("churn with selfhost: code %d, stderr %q", code, stderr)
	}
}
