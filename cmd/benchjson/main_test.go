package main

import "testing"

func TestParseLine(t *testing.T) {
	rec, ok := parseLine("BenchmarkE2Alg2/t=16-4   5   33538743 ns/op   17994868 B/op   154355 allocs/op   1056 msgs")
	if !ok {
		t.Fatal("line not parsed")
	}
	if rec.Name != "BenchmarkE2Alg2/t=16-4" || rec.Iterations != 5 {
		t.Fatalf("header: %+v", rec)
	}
	if rec.NsPerOp != 33538743 || rec.BytesPerOp != 17994868 || rec.AllocsPerOp != 154355 {
		t.Fatalf("std metrics: %+v", rec)
	}
	if rec.Metrics["msgs"] != 1056 {
		t.Fatalf("custom metric: %+v", rec.Metrics)
	}

	for _, junk := range []string{
		"goos: linux",
		"PASS",
		"ok  	byzex	1.2s",
		"BenchmarkBad notanumber 5 ns/op",
		"",
	} {
		if _, ok := parseLine(junk); ok {
			t.Fatalf("parsed junk line %q", junk)
		}
	}
}
