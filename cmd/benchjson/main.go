// Command benchjson converts `go test -bench` output read from stdin into a
// JSON document on stdout, so benchmark runs can be archived and diffed
// without external tooling. Each benchmark line becomes one record carrying
// ns/op, B/op, allocs/op and any custom b.ReportMetric metrics.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson -label after > BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Record is one parsed benchmark result.
type Record struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Document is the emitted file layout. Baseline, when present, carries the
// results of an earlier run (see -baseline) so one file holds a before/after
// comparison.
type Document struct {
	Label         string   `json:"label,omitempty"`
	BaselineLabel string   `json:"baseline_label,omitempty"`
	Baseline      []Record `json:"baseline,omitempty"`
	Results       []Record `json:"results"`
}

func main() {
	label := flag.String("label", "", "label stored alongside the results (e.g. baseline, after)")
	baseline := flag.String("baseline", "", "path to a previous benchjson document to embed as the baseline")
	flag.Parse()

	doc := Document{Label: *label}
	if *baseline != "" {
		buf, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		var base Document
		if err := json.Unmarshal(buf, &base); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: parsing %s: %v\n", *baseline, err)
			os.Exit(1)
		}
		doc.BaselineLabel = base.Label
		doc.Baseline = base.Results
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		// Mirror the line so the tool can sit inside a pipe without hiding
		// the human-readable output.
		fmt.Fprintln(os.Stderr, line)
		if rec, ok := parseLine(line); ok {
			doc.Results = append(doc.Results, rec)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine parses one `Benchmark...` result line:
//
//	BenchmarkFoo/n=8-4  100  12345 ns/op  67 B/op  8 allocs/op  3.0 msgs
func parseLine(line string) (Record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Record{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Record{}, false
	}
	rec := Record{Name: fields[0], Iterations: iters}
	// The remainder alternates value, unit.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Record{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			rec.NsPerOp = v
		case "B/op":
			rec.BytesPerOp = v
		case "allocs/op":
			rec.AllocsPerOp = v
		default:
			if rec.Metrics == nil {
				rec.Metrics = make(map[string]float64)
			}
			rec.Metrics[unit] = v
		}
	}
	return rec, rec.NsPerOp > 0 || rec.Metrics != nil
}
