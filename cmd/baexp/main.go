// Command baexp regenerates every evaluation table of the paper
// (experiments E1..E14; see DESIGN.md for the index) and prints them as
// aligned text. It exits non-zero if any measured count violates the
// corresponding bound.
//
// Usage:
//
//	baexp             # run all experiments
//	baexp -only E5    # run a single experiment
//	baexp -parallel 8 # bound sweep concurrency (default: one worker per CPU)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"byzex/internal/experiments"
)

func main() {
	only := flag.String("only", "", "run a single experiment (E1..E14)")
	format := flag.String("format", "text", "output format: text|csv")
	parallel := flag.Int("parallel", runtime.NumCPU(),
		"max concurrent runs per experiment sweep (tables are byte-identical at any value)")
	flag.Parse()

	experiments.SetParallelism(*parallel)

	ctx := context.Background()
	funcs := map[string]func(context.Context) (*experiments.Table, error){
		"E1":  experiments.E1Alg1,
		"E2":  experiments.E2Alg2,
		"E3":  experiments.E3Alg3,
		"E4":  experiments.E4Alg4,
		"E5":  experiments.E5Alg5,
		"E6":  experiments.E6Theorem1,
		"E7":  experiments.E7Unauth,
		"E8":  experiments.E8Theorem2,
		"E9":  experiments.E9Tradeoff,
		"E10": experiments.E10Baselines,
		"E11": experiments.E11Ablations,
		"E12": experiments.E12MessageSize,
		"E13": experiments.E13Alg5Breakdown,
		"E14": experiments.E14Scaling,
	}

	failed := false
	if *only != "" {
		f, ok := funcs[strings.ToUpper(*only)]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *only)
			os.Exit(2)
		}
		tbl, err := f(ctx)
		if tbl != nil {
			fmt.Println(render(tbl, *format))
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	tables, err := experiments.All(ctx)
	for _, tbl := range tables {
		fmt.Println(render(tbl, *format))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

// render formats a table per the -format flag.
func render(tbl *experiments.Table, format string) string {
	if format == "csv" {
		return tbl.CSV()
	}
	return tbl.Render()
}
