// Command baexp regenerates every evaluation table of the paper
// (experiments E1..E14; see DESIGN.md for the index) and prints them as
// aligned text. It exits non-zero if any measured count violates the
// corresponding bound.
//
// Usage:
//
//	baexp             # run all experiments
//	baexp -only E5    # run a single experiment
//	baexp -parallel 8 # bound sweep concurrency (default: one worker per CPU)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"byzex/internal/cli"
	"byzex/internal/experiments"
	"byzex/internal/trace"
)

func main() {
	only := flag.String("only", "", "run a single experiment (E1..E14)")
	format := flag.String("format", "text", "output format: text|csv")
	parallel := flag.Int("parallel", runtime.NumCPU(),
		"max concurrent runs per experiment sweep (tables are byte-identical at any value)")
	tracePath := flag.String("trace", "",
		"write the merged execution trace of all sweep runs (JSONL) to this file; merged in cell order, so byte-identical at any -parallel value")
	cpuProf := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProf := flag.String("memprofile", "", "write a pprof heap profile to this file")
	flag.Parse()

	experiments.SetParallelism(*parallel)

	prof, err := cli.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var traceSink *trace.JSONL
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() { _ = f.Close() }()
		traceSink = trace.NewJSONL(f)
		experiments.SetTrace(traceSink)
	}
	finish := func(code int) {
		if traceSink != nil {
			if err := traceSink.Flush(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				code = 1
			}
		}
		if err := prof.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			code = 1
		}
		if code != 0 {
			os.Exit(code)
		}
	}

	ctx := context.Background()
	funcs := map[string]func(context.Context) (*experiments.Table, error){
		"E1":  experiments.E1Alg1,
		"E2":  experiments.E2Alg2,
		"E3":  experiments.E3Alg3,
		"E4":  experiments.E4Alg4,
		"E5":  experiments.E5Alg5,
		"E6":  experiments.E6Theorem1,
		"E7":  experiments.E7Unauth,
		"E8":  experiments.E8Theorem2,
		"E9":  experiments.E9Tradeoff,
		"E10": experiments.E10Baselines,
		"E11": experiments.E11Ablations,
		"E12": experiments.E12MessageSize,
		"E13": experiments.E13Alg5Breakdown,
		"E14": experiments.E14Scaling,
	}

	if *only != "" {
		f, ok := funcs[strings.ToUpper(*only)]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *only)
			finish(2)
		}
		tbl, err := f(ctx)
		if tbl != nil {
			fmt.Println(render(tbl, *format))
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			finish(1)
		}
		finish(0)
		return
	}

	tables, err := experiments.All(ctx)
	for _, tbl := range tables {
		fmt.Println(render(tbl, *format))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		finish(1)
	}
	finish(0)
}

// render formats a table per the -format flag.
func render(tbl *experiments.Table, format string) string {
	if format == "csv" {
		return tbl.CSV()
	}
	return tbl.Render()
}
