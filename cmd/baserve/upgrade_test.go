package main

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/journal"
	"byzex/internal/protocols/alg1"
	"byzex/internal/service"
	"byzex/internal/transport"
	"byzex/internal/wire"
)

// startChildServe forks the test binary as a real baserve process (the
// TestHelperServeProcess body), so the drill can signal it like an operator
// would. Returns the command and the path of its combined output.
func startChildServe(t *testing.T, dir, name string, args []string) (*exec.Cmd, string) {
	t.Helper()
	outF, err := os.Create(filepath.Join(dir, name+"-out"))
	if err != nil {
		t.Fatal(err)
	}
	child := exec.Command(os.Args[0], "-test.run", "^TestHelperServeProcess$")
	child.Env = append(os.Environ(),
		"BASERVE_CRASH_HELPER=1",
		"BASERVE_CRASH_ARGS="+strings.Join(args, "\x1f"),
	)
	child.Stdout = outF
	child.Stderr = outF
	if err := child.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = outF.Close()
		_ = child.Process.Kill()
		_, _ = child.Process.Wait()
	})
	return child, outF.Name()
}

// TestServeRollingUpgrade is the scripted fleet upgrade: two journaled
// baserve processes run side by side on the TCP transport, the "old" one
// pinned to the previous frame version. Under continuous load to its
// sibling, the old server is drained (SIGTERM — checkpoint, prune, exit 0)
// and restarted over the same journal directory emitting the current frame
// version. The drill pins that (1) the sibling serves without interruption
// through the roll, (2) the upgraded server's instance ids continue exactly
// where the drain checkpoint left them — no id, and so no per-instance
// seed, is reused across a version change — and (3) a warm mesh carries a
// peer across the same version change in-process, so the upgrade needs no
// flag day at either granularity. Wired as `make upgrade` (part of check),
// runs under -race.
func TestServeRollingUpgrade(t *testing.T) {
	if testing.Short() {
		t.Skip("upgrade drill forks the test binary")
	}
	dir := t.TempDir()
	journalA := filepath.Join(dir, "journal-a")

	// The fleet: A emits the previous frame version and journals with a
	// small mid-run checkpoint budget (live compaction runs in the real
	// binary, not just the unit tests); B emits the current version.
	argsA := []string{
		"-protocol", "alg1", "-t", "1", "-seed", "31",
		"-addr", "127.0.0.1:0", "-shards", "2",
		"-transport", "tcp", "-wire-version", strconv.Itoa(int(wire.FrameVersionMin)),
		"-journal-dir", journalA, "-fsync", "always", "-checkpoint-every", "4",
	}
	argsB := []string{
		"-protocol", "alg1", "-t", "1", "-seed", "47",
		"-addr", "127.0.0.1:0", "-shards", "2",
		"-transport", "tcp", "-wire-version", strconv.Itoa(int(wire.FrameVersion)),
	}
	childA, outA := startChildServe(t, dir, "a-gen1", argsA)
	_, outB := startChildServe(t, dir, "b", argsB)
	waitForBanner(t, outA, `journal: \S+ fsync=always watermark=(0) replayed=0`)
	addrA := waitForBanner(t, outA, `listening on (\S+)`)
	addrB := waitForBanner(t, outB, `listening on (\S+)`)

	// Continuous load to B for the whole drill: the roll must not dent it.
	var (
		ackedB  atomic.Int64
		stopB   atomic.Bool
		wgB     sync.WaitGroup
		loadErr atomic.Value
	)
	wgB.Add(1)
	go func() {
		defer wgB.Done()
		cl, err := service.DialClient(addrB)
		if err != nil {
			loadErr.Store(err)
			return
		}
		defer func() { _ = cl.Close() }()
		for i := 0; !stopB.Load(); i++ {
			if _, err := cl.Submit(ident.Value(i % 2)); err != nil {
				loadErr.Store(err)
				return
			}
			ackedB.Add(1)
		}
	}()

	// Old-version A takes traffic past its checkpoint budget, so at least
	// one live checkpoint lands before the drain writes the final one.
	clA, err := service.DialClient(addrA)
	if err != nil {
		t.Fatal(err)
	}
	const ackedA = 6
	for i := 0; i < ackedA; i++ {
		if _, err := clA.Submit(ident.Value(i % 2)); err != nil {
			t.Fatalf("submit %d to old-version server: %v", i, err)
		}
	}
	_ = clA.Close()

	// Roll A: drain the old binary the way an operator does.
	ackedBeforeRoll := ackedB.Load()
	if err := childA.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := childA.Wait(); err != nil {
		out, _ := os.ReadFile(outA)
		t.Fatalf("old-version server drain: %v\n%s", err, out)
	}
	if out, _ := os.ReadFile(outA); !strings.Contains(string(out), "drained after") ||
		strings.Contains(string(out), "checkpoint write(s) failed") {
		t.Fatalf("old-version drain banner:\n%s", out)
	}

	// Between generations the journal is the handoff: the drain checkpoint
	// covers everything, old segments are pruned, nothing is pending.
	rec, err := journal.Recover(journalA)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Checkpoint == nil || len(rec.Pending) != 0 {
		t.Fatalf("drain handoff: checkpoint=%v pending=%d", rec.Checkpoint, len(rec.Pending))
	}
	if rec.Watermark != ackedA {
		t.Fatalf("drain watermark %d, want %d", rec.Watermark, ackedA)
	}

	// Generation 2: same journal directory, current frame version.
	argsA2 := append(argsA[:len(argsA):len(argsA)], "-wire-version", strconv.Itoa(int(wire.FrameVersion)))
	_, outA2 := startChildServe(t, dir, "a-gen2", argsA2)
	wm := waitForBanner(t, outA2, `journal: \S+ fsync=always watermark=(\d+) replayed=0`)
	if wm != strconv.Itoa(ackedA) {
		t.Fatalf("upgraded server watermark %s, want %d", wm, ackedA)
	}
	addrA2 := waitForBanner(t, outA2, `listening on (\S+)`)

	// Instance ids continue exactly past the old generation's watermark.
	clA2, err := service.DialClient(addrA2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		rep, err := clA2.Submit(ident.Value(i % 2))
		if err != nil {
			t.Fatalf("post-upgrade submit %d: %v", i, err)
		}
		if rep.InstanceID != uint64(ackedA+i) {
			t.Fatalf("post-upgrade instance id %d, want %d", rep.InstanceID, ackedA+i)
		}
		if rep.Seed != 31+int64(rep.InstanceID) {
			t.Fatalf("post-upgrade seed %d for id %d", rep.Seed, rep.InstanceID)
		}
	}
	_ = clA2.Close()

	// B never stopped: its acknowledged count moved while A was down.
	deadline := time.Now().Add(15 * time.Second)
	for ackedB.Load() <= ackedBeforeRoll {
		if err, _ := loadErr.Load().(error); err != nil {
			t.Fatalf("sibling load interrupted during the roll: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("sibling served nothing during the roll (stuck at %d)", ackedBeforeRoll)
		}
		time.Sleep(time.Millisecond)
	}
	stopB.Store(true)
	wgB.Wait()
	if err, _ := loadErr.Load().(error); err != nil {
		t.Fatalf("sibling load interrupted during the roll: %v", err)
	}

	// The same roll at mesh granularity: one warm mesh, one peer on the old
	// frame version, agreement before and after that peer upgrades mid-mesh.
	ctx := context.Background()
	m, err := transport.NewMesh(ctx, 3, transport.Net{PhaseTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for _, step := range []struct {
		name string
		ver  byte
	}{
		{"old-peer", wire.FrameVersionMin},
		{"upgraded-peer", wire.FrameVersion},
	} {
		if err := m.SetPeerWireVersion(1, step.ver); err != nil {
			t.Fatalf("%s: %v", step.name, err)
		}
		res, err := m.Run(ctx, meshUpgradeConfig(int64(60+int(step.ver))))
		if err != nil {
			t.Fatalf("%s epoch: %v", step.name, err)
		}
		for id, d := range res.Decisions {
			if res.Faulty.Has(id) {
				continue
			}
			if !d.Decided || d.Value != ident.V1 {
				t.Fatalf("%s: %v decided (%v,%v), want %v", step.name, id, d.Value, d.Decided, ident.V1)
			}
		}
	}
	if err := m.SetPeerWireVersion(1, wire.FrameVersion+1); err == nil {
		t.Fatal("future frame version accepted for a peer")
	}
}

// meshUpgradeConfig is one agreement epoch for the in-process mesh segment
// of the upgrade drill.
func meshUpgradeConfig(seed int64) core.Config {
	return core.Config{Protocol: alg1.Protocol{}, N: 3, T: 1, Value: ident.V1, Seed: seed}
}
