package main

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/journal"
	"byzex/internal/protocols/alg1"
	"byzex/internal/service"
	"byzex/internal/trace"
)

// TestHelperServeProcess is not a test: it is the child body of the crash
// drill. The drill re-executes the test binary with this run filter and the
// env below, so the server can be SIGKILLed — a drain path (SIGINT inside
// the test process) can never exercise torn-write recovery.
func TestHelperServeProcess(t *testing.T) {
	if os.Getenv("BASERVE_CRASH_HELPER") != "1" {
		t.Skip("crash-drill helper process only")
	}
	args := strings.Split(os.Getenv("BASERVE_CRASH_ARGS"), "\x1f")
	os.Exit(run(args, os.Stdout, os.Stderr))
}

// TestServeCrashRecovery is the durability acceptance drill: a journaled
// baserve is SIGKILLed mid-load, and a restart over the same journal
// directory must (1) never reuse an instance id — the recovered watermark
// clears every journaled admission, (2) replay every pending admission
// successfully (the replay trace events carry the original ids), and
// (3) serve on, with live instances numbered past the watermark. Every
// journaled recipe is also re-run serially through core.Run, pinning that
// the replayed instances are reproducible outside the server. Runs under
// -race via `make crash`.
func TestServeCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("crash drill forks the test binary")
	}
	dir := t.TempDir()
	journalDir := filepath.Join(dir, "journal")

	// Generation 1: a real child process, so SIGKILL is available.
	serveArgs := []string{
		"-protocol", "alg1", "-t", "3", "-seed", "21",
		"-addr", "127.0.0.1:0", "-shards", "2",
		"-journal-dir", journalDir, "-fsync", "always",
	}
	outF, err := os.Create(filepath.Join(dir, "child-stdout"))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = outF.Close() }()
	child := exec.Command(os.Args[0], "-test.run", "^TestHelperServeProcess$")
	child.Env = append(os.Environ(),
		"BASERVE_CRASH_HELPER=1",
		"BASERVE_CRASH_ARGS="+strings.Join(serveArgs, "\x1f"),
	)
	child.Stdout = outF
	child.Stderr = outF
	if err := child.Start(); err != nil {
		t.Fatal(err)
	}
	killed := false
	defer func() {
		if !killed {
			_ = child.Process.Kill()
			_ = child.Wait()
		}
	}()
	waitForBanner(t, outF.Name(), `journal: \S+ fsync=always watermark=(0) replayed=0`)
	addr := waitForBanner(t, outF.Name(), `listening on (\S+)`)

	// Load it from several connections and SIGKILL mid-flight: every OK
	// reply is a journaled admission (fsync=always), and whatever was
	// admitted-but-undelivered at the kill is the pending set.
	const minAcked = 10
	var (
		acked   atomic.Int64
		stopped atomic.Bool
		wg      sync.WaitGroup
	)
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := service.DialClient(addr)
			if err != nil {
				return
			}
			defer func() { _ = cl.Close() }()
			for i := 0; !stopped.Load(); i++ {
				if _, err := cl.Submit(ident.Value((c + i) % 2)); err != nil {
					return // the kill severs the connection
				}
				acked.Add(1)
			}
		}(c)
	}
	deadline := time.Now().Add(15 * time.Second)
	for acked.Load() < minAcked {
		if time.Now().After(deadline) {
			t.Fatalf("only %d submissions acknowledged before the deadline", acked.Load())
		}
		time.Sleep(time.Millisecond)
	}
	if err := child.Process.Kill(); err != nil { // SIGKILL: no drain, no checkpoint
		t.Fatal(err)
	}
	killed = true
	_ = child.Wait()
	stopped.Store(true)
	wg.Wait()

	// The journal is the crash's ground truth: no checkpoint was ever
	// written, so every journaled admission is pending, and the watermark
	// clears all of them.
	rec, err := journal.Recover(journalDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Pending) == 0 || rec.Checkpoint != nil {
		t.Fatalf("crash journal: %d pending, checkpoint=%v", len(rec.Pending), rec.Checkpoint)
	}
	if got := int64(len(rec.Pending)); got < acked.Load() {
		t.Fatalf("journal holds %d admissions, %d were acknowledged", got, acked.Load())
	}
	for _, a := range rec.Pending {
		if a.ID >= rec.Watermark {
			t.Fatalf("journaled id %d not cleared by watermark %d", a.ID, rec.Watermark)
		}
	}

	// Each journaled recipe must re-execute deterministically outside the
	// server: seed = template seed + id, value = PackValues(values).
	tmpl := core.Config{Protocol: alg1.Protocol{}, N: 7, T: 3, Seed: 21}
	ctx := context.Background()
	for _, a := range rec.Pending[:min(len(rec.Pending), 8)] {
		cfg := tmpl
		cfg.Value = service.PackValues(a.Values)
		cfg.Seed = tmpl.Seed + int64(a.ID)
		serial, err := core.Run(ctx, cfg)
		if err != nil {
			t.Fatalf("serial run of journaled admission %d: %v", a.ID, err)
		}
		if dec, err := serial.Decision(cfg.Transmitter, cfg.Value); err != nil || dec != cfg.Value {
			t.Fatalf("journaled admission %d does not commit serially: %v %v", a.ID, dec, err)
		}
	}

	// Generation 2: restart over the same journal directory, in-process so
	// the SIGINT drain path stays testable. The recovery banner must appear
	// before the listener opens, and must report the full pending set.
	tracePath := filepath.Join(dir, "recovery.jsonl")
	done, stdoutPath, stderrPath := startServe(t, append(serveArgs[:len(serveArgs):len(serveArgs)],
		"-trace", tracePath))
	replayedStr := waitForBanner(t, stdoutPath, `journal: \S+ fsync=always watermark=\d+ replayed=(\d+)`)
	if replayedStr != strconv.Itoa(len(rec.Pending)) {
		t.Fatalf("recovery banner replayed=%s, journal had %d pending", replayedStr, len(rec.Pending))
	}
	out, _ := os.ReadFile(stdoutPath)
	if strings.Index(string(out), "journal:") > strings.Index(string(out), "listening on") {
		t.Fatalf("listener opened before recovery finished:\n%s", out)
	}
	addr2 := waitForBanner(t, stdoutPath, `listening on (\S+)`)

	// Live traffic resumes past the watermark: no id — and therefore no
	// per-instance seed — is ever reused across the crash.
	cl, err := service.DialClient(addr2)
	if err != nil {
		t.Fatal(err)
	}
	const live = 5
	for i := 0; i < live; i++ {
		rep, err := cl.Submit(ident.Value(i % 2))
		if err != nil {
			t.Fatalf("post-recovery submit %d: %v", i, err)
		}
		if rep.InstanceID != rec.Watermark+uint64(i) {
			t.Fatalf("post-recovery instance id %d, want %d", rep.InstanceID, rec.Watermark+uint64(i))
		}
		if rep.Seed != tmpl.Seed+int64(rep.InstanceID) {
			t.Fatalf("post-recovery seed %d for id %d", rep.Seed, rep.InstanceID)
		}
	}
	_ = cl.Close()

	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			errOut, _ := os.ReadFile(stderrPath)
			t.Fatalf("recovered server exit %d\nstderr:\n%s", code, errOut)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("recovered server did not drain after SIGINT")
	}

	// The trace pins the replay: one replay event per pending admission,
	// carrying the original instance id, all successful.
	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = f.Close() }()
	events, err := trace.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	replayedIDs := make(map[int]bool)
	for _, e := range events {
		if e.Kind != trace.KindReplay {
			continue
		}
		if !e.Flag {
			t.Fatalf("replayed instance %d failed", e.Signers)
		}
		replayedIDs[e.Signers] = true
	}
	if len(replayedIDs) != len(rec.Pending) {
		t.Fatalf("trace shows %d replayed instances, journal had %d pending", len(replayedIDs), len(rec.Pending))
	}
	for _, a := range rec.Pending {
		if !replayedIDs[int(a.ID)] {
			t.Fatalf("journaled admission %d never replayed", a.ID)
		}
	}

	// The drain checkpointed: a third boot would have nothing to replay.
	final, err := journal.Recover(journalDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(final.Pending) != 0 || final.Checkpoint == nil {
		t.Fatalf("post-drain journal: %d pending, checkpoint=%v", len(final.Pending), final.Checkpoint)
	}
	if final.Watermark != rec.Watermark+live {
		t.Fatalf("final watermark %d, want %d", final.Watermark, rec.Watermark+live)
	}
	if got := final.Checkpoint.Stats.Instances; got != uint64(len(rec.Pending)+live) {
		t.Fatalf("final checkpoint instances %d, want %d", got, len(rec.Pending)+live)
	}
}
