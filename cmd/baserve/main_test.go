package main

import (
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"byzex/internal/ident"
	"byzex/internal/service"
	"byzex/internal/trace"
)

// startServe runs baserve's run() in a goroutine with stdout/stderr
// captured in temp files and returns the exit-code channel plus the output
// paths. Callers drain the server by sending SIGINT to the test process —
// run() installs the same NotifyContext the real binary uses, so this
// exercises the production drain path.
func startServe(t *testing.T, args []string) (done <-chan int, stdoutPath, stderrPath string) {
	t.Helper()
	dir := t.TempDir()
	outF, err := os.Create(filepath.Join(dir, "stdout"))
	if err != nil {
		t.Fatal(err)
	}
	errF, err := os.Create(filepath.Join(dir, "stderr"))
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan int, 1)
	go func() {
		code := run(args, outF, errF)
		_ = outF.Close()
		_ = errF.Close()
		ch <- code
	}()
	return ch, outF.Name(), errF.Name()
}

// waitForBanner polls path until pattern's first capture group appears.
func waitForBanner(t *testing.T, path, pattern string) string {
	t.Helper()
	re := regexp.MustCompile(pattern)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		b, _ := os.ReadFile(path)
		if m := re.FindStringSubmatch(string(b)); m != nil {
			return m[1]
		}
		time.Sleep(5 * time.Millisecond)
	}
	b, _ := os.ReadFile(path)
	t.Fatalf("banner %q never appeared in:\n%s", pattern, b)
	return ""
}

// TestServeOpsPlaneEndToEnd is the ops-plane acceptance in one process:
// baserve with -metrics-addr and a spooled -trace, real submissions over
// the wire, a typed stats reply, a live /metrics scrape whose counters
// match, then a SIGINT drain that leaves a parseable JSONL trace on disk.
func TestServeOpsPlaneEndToEnd(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "run.jsonl")
	done, stdoutPath, stderrPath := startServe(t, []string{
		"-protocol", "alg1-multi", "-t", "3",
		"-addr", "127.0.0.1:0", "-metrics-addr", "127.0.0.1:0",
		"-batch", "4", "-shards", "2",
		"-trace", tracePath, "-trace-ring", "8",
	})
	metricsAddr := waitForBanner(t, stdoutPath, `metrics: http://([^/\s]+)/metrics`)
	addr := waitForBanner(t, stdoutPath, `listening on (\S+)`)

	cl, err := service.DialClient(addr)
	if err != nil {
		t.Fatal(err)
	}
	const values = 12
	for i := 0; i < values; i++ {
		if _, err := cl.Submit(ident.Value(i)); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Submitted != values || st.ValuesDecided != values {
		t.Fatalf("typed wire stats: %+v", st)
	}

	resp, err := http.Get("http://" + metricsAddr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	exposition := string(body)
	for _, want := range []string{
		"byzex_service_submitted_total 12",
		"byzex_service_values_decided_total 12",
		`byzex_trace_events_total{kind="instance-done"}`,
		"byzex_trace_spool_dropped_total",
	} {
		if !strings.Contains(exposition, want) {
			t.Errorf("scrape missing %q:\n%s", want, exposition)
		}
	}
	_ = cl.Close()

	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			errOut, _ := os.ReadFile(stderrPath)
			t.Fatalf("exit %d\nstderr:\n%s", code, errOut)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not drain after SIGINT")
	}

	out, _ := os.ReadFile(stdoutPath)
	if !strings.Contains(string(out), "drained after") || !strings.Contains(string(out), "trace: "+tracePath) {
		t.Fatalf("drain summary missing:\n%s", out)
	}

	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = f.Close() }()
	events, err := trace.ReadJSONL(f)
	if err != nil {
		t.Fatalf("spooled trace unreadable: %v", err)
	}
	var dones int
	for _, e := range events {
		if e.Kind == trace.KindInstanceDone {
			dones++
		}
	}
	if dones == 0 {
		t.Fatalf("spooled trace has no instance-done events (%d events)", len(events))
	}
}

// TestServeBadFlags pins the typed failure paths of the shared surface.
func TestServeBadFlags(t *testing.T) {
	dir := t.TempDir()
	outF, _ := os.Create(filepath.Join(dir, "o"))
	errF, _ := os.Create(filepath.Join(dir, "e"))
	defer func() { _ = outF.Close(); _ = errF.Close() }()
	if code := run([]string{"-warm-mesh"}, outF, errF); code == 0 {
		t.Fatal("-warm-mesh without -transport tcp accepted")
	}
	if code := run([]string{"-protocol", "no-such"}, outF, errF); code == 0 {
		t.Fatal("unknown protocol accepted")
	}
}
