// Command baserve runs the multi-instance Byzantine Agreement service:
// it listens on a TCP address, admits values over a newline-delimited
// protocol (see internal/service), and serves each batch of values as one
// agreement instance over the chosen substrate.
//
// Flags mirror basim for the protocol template; the serving knobs are
// shared with baload's selfhost mode via cli.RegisterServeFlags:
//
//	baserve -protocol alg1 -n 7 -t 3 -addr :9000
//	baserve -protocol alg1-multi -t 3 -batch 16 -linger 2ms -shards 8
//	baserve -protocol alg1-multi -t 3 -adaptive -batch-max 32
//	baserve -protocol dolev-strong -n 16 -t 4 -transport tcp -warm-mesh
//	baserve -protocol alg1-multi -t 3 -metrics-addr 127.0.0.1:9441 -trace run.jsonl
//
// -shards sets the number of concurrent instance executors; -adaptive
// replaces the fixed -batch size with a controller that grows the batch
// under backlog and shrinks it when idle (window [-batch-min, -batch-max]).
//
// The ops plane: -metrics-addr serves a Prometheus text /metrics endpoint
// (service gauges plus trace counters, one consistent snapshot per scrape);
// -trace spools the execution trace to disk as instances deliver, with
// admission-scoped events held in a bounded ring (-trace-ring), so tracing
// survives sustained load with constant memory.
//
// Durability: -journal-dir write-ahead journals every admission before it
// is acknowledged (-fsync picks per-record sync or a group-commit
// interval). On restart over the same directory, pending admissions are
// replayed byte-identically with their original ids before the listener
// opens — a recovered server never reuses an instance seed — and the
// recovery banner reports the watermark and replay count.
// -checkpoint-every / -checkpoint-interval bound the replay window while
// serving: checkpoints are cut at the delivered watermark on a record
// budget or timer, and fully delivered segments are pruned live.
//
// SIGINT/SIGTERM drains: admitted values still decide, new submissions are
// rejected with "ERR draining", the journal checkpoints (watermark +
// stats, old segments pruned), and the process exits once the queue is
// empty.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"byzex/internal/cli"
	"byzex/internal/journal"
	"byzex/internal/obs"
	"byzex/internal/service"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("baserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	sf := cli.RegisterServeFlags(fs)
	var (
		addr    = fs.String("addr", "127.0.0.1:9440", "listen address")
		verbose = fs.Bool("v", false, "print the trace summary table on drain")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	tmpl, warn, err := sf.Template().Resolve()
	if err != nil {
		return fail(stderr, err)
	}
	if warn != "" {
		fmt.Fprintf(stderr, "warning: %s\n", warn)
	}
	svcCfg, err := sf.ServiceConfig(tmpl)
	if err != nil {
		return fail(stderr, err)
	}
	spool, closeSpool, err := sf.OpenSpool()
	if err != nil {
		return fail(stderr, err)
	}
	if spool != nil {
		svcCfg.Trace = spool
	}
	jw, rec, err := sf.OpenJournal(tmpl)
	if err != nil {
		return fail(stderr, err)
	}
	if jw != nil {
		svcCfg.Journal = jw
		svcCfg.FirstInstance = rec.FirstInstance()
		svcCfg.BaseStats = rec.BaseStats()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	svc, err := service.New(ctx, svcCfg)
	if err != nil {
		return fail(stderr, err)
	}

	// Recovery happens before the listener opens: pending admissions are
	// re-executed with their original ids (byte-identical instances) while
	// no live submission can interleave with the replay's dispatch path.
	if jw != nil {
		replayed, err := rec.Replay(svc, tmpl)
		if err != nil {
			return fail(stderr, err)
		}
		jw.SetReplayed(uint64(replayed))
		fmt.Fprintf(stdout, "journal: %s fsync=%s watermark=%d replayed=%d\n",
			*sf.JournalDir, *sf.Fsync, rec.Watermark, replayed)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fail(stderr, err)
	}

	// The metrics endpoint shares the process but not the serving listener:
	// scrapes stay cheap (zero-alloc renders of existing counters) and a
	// slow scraper cannot occupy a serving connection slot.
	var metricsDone chan error
	if *sf.MetricsAddr != "" {
		exp := obs.NewExporter()
		exp.Register(obs.NewServiceCollector(svc))
		if spool != nil {
			exp.Register(obs.NewSpoolCollector(spool))
		}
		if jw != nil {
			exp.Register(obs.NewJournalCollector(jw))
		}
		mln, err := net.Listen("tcp", *sf.MetricsAddr)
		if err != nil {
			return fail(stderr, err)
		}
		metricsDone = make(chan error, 1)
		go func() { metricsDone <- obs.Serve(ctx, mln, exp) }()
		fmt.Fprintf(stdout, "metrics: http://%s/metrics\n", mln.Addr())
	}

	batchDesc := fmt.Sprintf("batch=%d", svcCfg.BatchSize)
	if svcCfg.BatchMax > 1 {
		batchDesc = fmt.Sprintf("batch=adaptive[%d..%d]", svcCfg.BatchMin, svcCfg.BatchMax)
	}
	fmt.Fprintf(stdout, "baserve: %s n=%d t=%d %s shards=%d listening on %s\n",
		*sf.Protocol, tmpl.N, tmpl.T, batchDesc, svc.Stats().Shards, ln.Addr())

	start := time.Now()
	if err := service.Serve(ctx, ln, svc); err != nil {
		return fail(stderr, err)
	}
	svc.Close()
	if metricsDone != nil {
		if err := <-metricsDone; err != nil {
			return fail(stderr, err)
		}
	}

	var jstats journal.Stats
	if jw != nil {
		// The service checkpointed during Close (and swallowed any error to
		// finish the drain); the writer's counters say whether any checkpoint
		// — including that final one — failed, and the writer's Close
		// surfaces the journal's true final state. Snapshot before Close so
		// the banner below can report a failed final checkpoint even when
		// Close itself errors the process out.
		jw.StatsInto(&jstats)
		if jstats.CheckpointFailures > 0 {
			fmt.Fprintf(stdout, "journal: warning: %d checkpoint write(s) failed; the next restart replays from the last good checkpoint\n",
				jstats.CheckpointFailures)
		}
		if err := jw.Close(); err != nil {
			return fail(stderr, err)
		}
	}

	st := svc.Stats()
	fmt.Fprintf(stdout, "drained after %v: %s\n", time.Since(start).Round(time.Millisecond), st.String())
	if spool != nil {
		if err := closeSpool(); err != nil {
			return fail(stderr, err)
		}
		spst := spool.Stats() // post-close: Flushed includes the ring tail
		fmt.Fprintf(stdout, "trace: %s (%d events, %d spooled, %d admission-scoped dropped)\n",
			*sf.TracePath, spst.Events, spst.Flushed, spst.Dropped)
		if *verbose {
			fmt.Fprint(stdout, spst.Summary.Table())
		}
	} else if *verbose {
		fmt.Fprintf(stdout, "amortized: %.2f msgs/value %.2f sigs/value\n",
			st.AmortizedMessagesPerValue(), st.AmortizedSignaturesPerValue())
	}
	return 0
}

func fail(stderr *os.File, err error) int {
	fmt.Fprintln(stderr, err)
	return 1
}
