// Command baserve runs the multi-instance Byzantine Agreement service:
// it listens on a TCP address, admits values over a newline-delimited
// protocol (see internal/service), and serves each batch of values as one
// agreement instance over the chosen substrate.
//
// Flags mirror basim for the protocol template; the serving knobs are new:
//
//	baserve -protocol alg1 -n 7 -t 3 -addr :9000
//	baserve -protocol alg1-multi -t 3 -batch 16 -linger 2ms -shards 8
//	baserve -protocol alg1-multi -t 3 -adaptive -batch-max 32
//	baserve -protocol dolev-strong -n 16 -t 4 -transport tcp
//
// -shards sets the number of concurrent instance executors; -adaptive
// replaces the fixed -batch size with a controller that grows the batch
// under backlog and shrinks it when idle (window [-batch-min, -batch-max]).
//
// SIGINT/SIGTERM drains: admitted values still decide, new submissions are
// rejected with "ERR draining", and the process exits once the queue is
// empty.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"byzex/internal/cli"
	"byzex/internal/service"
	"byzex/internal/trace"
	"byzex/internal/transport"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("baserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		protoName = fs.String("protocol", "alg1", "protocol: "+strings.Join(cli.ProtocolNames(), "|"))
		n         = fs.Int("n", 0, "number of processors (default 2t+1)")
		t         = fs.Int("t", 2, "fault bound")
		s         = fs.Int("s", 0, "set/tree size parameter for alg3/alg5 (default t)")
		advName   = fs.String("adversary", "none", "adversary: "+strings.Join(cli.AdversaryNames(), "|"))
		faultSpec = fs.String("faults", "", `fault-injection spec applied to every instance, e.g. "crash=1@2" (see internal/faultnet)`)
		schemeStr = fs.String("scheme", "hmac", "signature scheme: hmac|ed25519|plain")
		trans     = fs.String("transport", "memory", "substrate per instance: memory|tcp")
		warmMesh  = fs.Bool("warm-mesh", false, "with -transport tcp: one long-lived mesh per shard, reused across instances")
		linkDelay = fs.Duration("link-delay", 0, "with -transport tcp: modeled one-way link latency per phase")
		seed      = fs.Int64("seed", 1, "base seed; instance i runs with seed+i")
		addr      = fs.String("addr", "127.0.0.1:9440", "listen address")
		batch     = fs.Int("batch", 1, "max values coalesced into one instance (fixed batching)")
		adaptive  = fs.Bool("adaptive", false, "adaptive batching inside [-batch-min, -batch-max] instead of fixed -batch")
		batchMin  = fs.Int("batch-min", 1, "adaptive window lower bound")
		batchMax  = fs.Int("batch-max", 0, "adaptive window upper bound (default -batch, or 16)")
		linger    = fs.Duration("linger", 0, "how long to wait for a batch to fill")
		queue     = fs.Int("queue", 64, "admission queue depth")
		shards    = fs.Int("shards", 0, "shard workers executing instances concurrently (default GOMAXPROCS)")
		inflight  = fs.Int("inflight", 0, "deprecated alias for -shards")
		tracePath = fs.String("trace", "", "write the service execution trace (JSONL) to this file on drain")
		verbose   = fs.Bool("v", false, "print the trace summary table on drain")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	tmpl, warn, err := cli.Template{
		Protocol: *protoName, Adversary: *advName, Scheme: *schemeStr,
		Faults: *faultSpec, N: *n, T: *t, S: *s, Seed: *seed,
	}.Resolve()
	if err != nil {
		return fail(stderr, err)
	}
	if warn != "" {
		fmt.Fprintf(stderr, "warning: %s\n", warn)
	}

	runFn := service.RunSim
	var warmPool *service.WarmTCP
	switch *trans {
	case "memory":
		if *warmMesh {
			return fail(stderr, fmt.Errorf("-warm-mesh requires -transport tcp"))
		}
	case "tcp":
		netCfg := transport.Net{LinkDelay: *linkDelay}
		if *warmMesh {
			warmPool = service.NewWarmTCP(tmpl.N, netCfg)
		} else {
			runFn = service.RunTCP(netCfg)
		}
	default:
		return fail(stderr, fmt.Errorf("unknown transport %q", *trans))
	}

	var (
		traceBuf *trace.Buffer
		sink     trace.Sink
	)
	if *tracePath != "" {
		traceBuf = trace.NewBuffer()
		sink = traceBuf
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	svcCfg := service.Config{
		Template:    tmpl,
		Run:         runFn,
		Shards:      *shards,
		MaxInFlight: *inflight,
		QueueDepth:  *queue,
		BatchSize:   *batch,
		Linger:      *linger,
		Trace:       sink,
	}
	if warmPool != nil {
		svcCfg.NewShardRun = warmPool.NewShardRun
		svcCfg.CloseShardRun = warmPool.CloseShard
	}
	if *adaptive {
		bmax := *batchMax
		if bmax < 1 {
			bmax = *batch
		}
		if bmax < 2 {
			bmax = 16
		}
		svcCfg.BatchMin, svcCfg.BatchMax = *batchMin, bmax
	}
	svc, err := service.New(ctx, svcCfg)
	if err != nil {
		return fail(stderr, err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fail(stderr, err)
	}
	batchDesc := fmt.Sprintf("batch=%d", *batch)
	if *adaptive {
		batchDesc = fmt.Sprintf("batch=adaptive[%d..%d]", svcCfg.BatchMin, svcCfg.BatchMax)
	}
	fmt.Fprintf(stdout, "baserve: %s n=%d t=%d %s shards=%d listening on %s\n",
		*protoName, tmpl.N, tmpl.T, batchDesc, svc.Stats().Shards, ln.Addr())

	start := time.Now()
	if err := service.Serve(ctx, ln, svc); err != nil {
		return fail(stderr, err)
	}
	svc.Close()

	st := svc.Stats()
	fmt.Fprintf(stdout, "drained after %v: %s\n", time.Since(start).Round(time.Millisecond), st.String())
	if traceBuf != nil {
		sum := trace.Summarize(traceBuf.Events())
		f, err := os.Create(*tracePath)
		if err != nil {
			return fail(stderr, err)
		}
		if err := trace.WriteJSONL(f, traceBuf.Events()); err != nil {
			_ = f.Close()
			return fail(stderr, err)
		}
		if err := f.Close(); err != nil {
			return fail(stderr, err)
		}
		fmt.Fprintf(stdout, "trace: %s (%d events)\n", *tracePath, traceBuf.Len())
		if *verbose {
			fmt.Fprint(stdout, sum.Table())
		}
	} else if *verbose {
		fmt.Fprintf(stdout, "amortized: %.2f msgs/value %.2f sigs/value\n",
			st.AmortizedMessagesPerValue(), st.AmortizedSignaturesPerValue())
	}
	return 0
}

func fail(stderr *os.File, err error) int {
	fmt.Fprintln(stderr, err)
	return 1
}
