// Command baattack demonstrates the paper's lower-bound constructions as
// executable attacks, and searches for the cheapest executions any
// in-budget adversary can force. Against the deliberately-cheap strawman
// protocols the attacks break agreement; against the paper's algorithms
// (and Dolev-Strong) they report "bound respected: attack not applicable".
//
// With -search the command runs the internal/search optimizer instead of a
// single scripted attack: it minimizes correct-sender signatures and/or
// messages over the strategy × seed × fault-plan space and reports the gap
// between the best-found cost and the Theorem 1/2 bounds
// (core.SigLowerBound / core.MsgLowerBound). `-protocol all` sweeps the
// whole registry into a gap-to-bound atlas; the gap gate fails loudly (exit
// 1) when a correct protocol is broken or undercut, or when a strawman
// survives unbroken. -bench emits the table in `go test -bench` format for
// cmd/benchjson (make bench-search archives it as BENCH_009.json).
//
// Usage:
//
//	baattack -attack replay   -protocol strawman-broadcast -n 9 -t 3
//	baattack -attack omission -protocol strawman-broadcast -n 8 -t 2
//	baattack -attack replay   -protocol alg1 -t 4
//	baattack -attack starve   -protocol alg1 -t 4   # Theorem 2 audit
//	baattack -search -protocol all -budget 240 -seed 1
//	baattack -search -protocol alg1 -n 5 -t 2 -objective msgs
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"

	"byzex/internal/cli"
	"byzex/internal/ident"
	"byzex/internal/lowerbound"
	"byzex/internal/runner"
	"byzex/internal/search"
	"byzex/internal/trace"
)

func main() {
	var (
		attack    = flag.String("attack", "replay", "attack: replay|omission|starve|audit")
		protoName = flag.String("protocol", "strawman-broadcast", `target protocol ("all" sweeps the registry, -search only)`)
		n         = flag.Int("n", 0, "number of processors (default 2t+1)")
		t         = flag.Int("t", 3, "fault bound")
		s         = flag.Int("s", 0, "parameter for alg3/alg5 (default t)")
		seed      = flag.Int64("seed", 1, "search seed; a fixed seed reproduces the gap table byte-identically")
		tracePath = flag.String("trace", "", "write the execution trace of the attack's runs (JSONL) to this file")
		cpuProf   = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a pprof heap profile to this file")
	)
	sf := cli.RegisterSearchFlags(flag.CommandLine)
	flag.Parse()
	if *n == 0 {
		*n = 2**t + 1
	}
	if *s == 0 {
		*s = *t
	}

	prof, err := cli.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		fail(err)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fail(err)
		}
	}()

	ctx := context.Background()
	// The attacks drive core.Run internally; a sink on the context reaches
	// every one of those runs without lowerbound needing trace plumbing.
	var traceSink *trace.JSONL
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fail(err)
		}
		defer func() { _ = f.Close() }()
		traceSink = trace.NewJSONL(f)
		defer func() {
			if err := traceSink.Flush(); err != nil {
				fail(err)
			}
		}()
		ctx = trace.NewContext(ctx, traceSink)
	}

	if *sf.Search {
		runSearch(ctx, sf, *protoName, *n, *t, *s, *seed, traceSink)
		return
	}

	proto, err := cli.Protocol(*protoName, cli.Params{N: *n, T: *t, S: *s})
	if err != nil {
		fail(err)
	}
	switch *attack {
	case "audit":
		audit, err := lowerbound.AuditSignatures(ctx, proto, *n, *t, nil)
		if err != nil {
			fail(err)
		}
		fmt.Printf("Theorem 1 audit of %s (n=%d, t=%d)\n", proto.Name(), *n, *t)
		fmt.Printf("  signatures in H (v=0): %d\n", audit.HSignatures)
		fmt.Printf("  signatures in G (v=1): %d\n", audit.GSignatures)
		fmt.Printf("  lower bound n(t+1)/4:  %d\n", audit.Bound)
		fmt.Printf("  min |A(p)| = |A(%v)| = %d (need ≥ %d)\n", audit.MinAP, audit.MinAPSize, *t+1)
		if audit.Satisfied() {
			fmt.Println("  verdict: bound respected")
		} else {
			fmt.Println("  verdict: VULNERABLE — run -attack replay")
		}
	case "replay":
		out, err := lowerbound.ReplayAttack(ctx, proto, *n, *t, nil)
		if errors.Is(err, lowerbound.ErrBoundRespected) {
			fmt.Printf("%s respects Theorem 1's bound: %v\n", proto.Name(), err)
			return
		}
		if err != nil {
			fail(err)
		}
		fmt.Printf("Theorem 1 replay attack on %s (n=%d, t=%d)\n", proto.Name(), *n, *t)
		fmt.Printf("  victim: %v, coalition A(p): %v\n", out.Victim, out.Faulty.Sorted())
		printDecisions(out)
	case "omission":
		out, err := lowerbound.OmissionAttack(ctx, proto, *n, *t, nil)
		if errors.Is(err, lowerbound.ErrBoundRespected) {
			fmt.Printf("%s respects the omission bound: %v\n", proto.Name(), err)
			return
		}
		if err != nil {
			fail(err)
		}
		fmt.Printf("Theorem 2 omission attack on %s (n=%d, t=%d)\n", proto.Name(), *n, *t)
		fmt.Printf("  victim: %v, coalition: %v\n", out.Victim, out.Faulty.Sorted())
		printDecisions(out)
	case "starve":
		audit, err := lowerbound.StarvationAudit(ctx, proto, *n, *t, nil)
		if err != nil {
			fail(err)
		}
		fmt.Printf("Theorem 2 starvation audit of %s (n=%d, t=%d)\n", proto.Name(), *n, *t)
		fmt.Printf("  starved coalition B: %v (each ignoring first %d messages)\n", audit.B.Sorted(), audit.IgnoreFirst)
		ids := audit.B.Sorted()
		for _, q := range ids {
			fmt.Printf("  messages into %v from correct processors: %d (need ≥ %d)\n", q, audit.PerMember[q], audit.RequiredPerMember)
		}
		fmt.Printf("  total messages by correct processors: %d (Theorem 2 bound %d)\n", audit.TotalMessages, audit.Bound)
		if audit.Satisfied() {
			fmt.Println("  verdict: bound respected")
		} else {
			fmt.Println("  verdict: VULNERABLE")
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown attack %q\n", *attack)
		os.Exit(2)
	}
}

// runSearch is the -search mode: one search per (protocol, objective),
// rendered as the gap-to-bound atlas and gated by search.CheckRows.
func runSearch(ctx context.Context, sf *cli.SearchFlags, protoName string, n, t, s int, seed int64, traceSink *trace.JSONL) {
	var objectives []search.Objective
	if *sf.Objective != "both" {
		obj, err := search.ParseObjective(*sf.Objective)
		if err != nil {
			fail(err)
		}
		objectives = []search.Objective{obj}
	}
	var targets []search.Target
	if protoName == "all" {
		targets = search.Targets()
	} else {
		targets = []search.Target{{
			Name:   protoName,
			N:      n,
			T:      t,
			S:      s,
			Scheme: search.SchemeFor(protoName),
			Class:  search.ClassOf(protoName),
		}}
	}
	cfg := search.AtlasConfig{
		Objectives: objectives,
		Budget:     *sf.Budget,
		Seed:       seed,
		Pool:       runner.New(*sf.Parallel),
	}
	if traceSink != nil {
		cfg.Trace = traceSink
	}
	rows, err := search.RunTargets(ctx, targets, cfg)
	if err != nil {
		fail(err)
	}
	if len(rows) == 0 {
		fail(fmt.Errorf("no rows: the sigs objective needs an authenticated scheme (%s is unauthenticated)", protoName))
	}
	if *sf.Bench {
		fmt.Print(search.BenchLines(rows))
	} else {
		fmt.Printf("Adversary search vs the Theorem 1/2 bounds (budget=%d per row, seed=%d)\n", *sf.Budget, seed)
		fmt.Print(search.RenderRows(rows))
		fmt.Printf("provenance: seed-arms=strategies+canonical-plans, halving<=2/5 budget, anneal width=4 temp=0.35 x0.92 floor=0.02\n")
	}
	if err := search.CheckRows(rows); err != nil {
		fail(err)
	}
}

func printDecisions(out *lowerbound.AttackOutcome) {
	ids := make([]int, 0, len(out.Decisions))
	for id := range out.Decisions {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, id := range ids {
		fmt.Printf("  p%d decided %v\n", id, out.Decisions[ident.ProcID(id)])
	}
	if out.Broke() {
		fmt.Printf("  RESULT: Byzantine Agreement violated — %v\n", out.Violation)
	} else {
		fmt.Println("  RESULT: protocol survived")
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
