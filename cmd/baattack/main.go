// Command baattack demonstrates the paper's lower-bound constructions as
// executable attacks. Against the deliberately-cheap strawman protocols the
// attacks break agreement; against the paper's algorithms (and Dolev-
// Strong) they report "bound respected: attack not applicable".
//
// Usage:
//
//	baattack -attack replay   -protocol strawman-broadcast -n 9 -t 3
//	baattack -attack omission -protocol strawman-broadcast -n 8 -t 2
//	baattack -attack replay   -protocol alg1 -t 4
//	baattack -attack starve   -protocol alg1 -t 4   # Theorem 2 audit
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"

	"byzex/internal/cli"
	"byzex/internal/ident"
	"byzex/internal/lowerbound"
	"byzex/internal/trace"
)

func main() {
	var (
		attack    = flag.String("attack", "replay", "attack: replay|omission|starve|audit")
		protoName = flag.String("protocol", "strawman-broadcast", "target protocol")
		n         = flag.Int("n", 0, "number of processors (default 2t+1)")
		t         = flag.Int("t", 3, "fault bound")
		s         = flag.Int("s", 0, "parameter for alg3/alg5 (default t)")
		tracePath = flag.String("trace", "", "write the execution trace of the attack's runs (JSONL) to this file")
		cpuProf   = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a pprof heap profile to this file")
	)
	flag.Parse()
	if *n == 0 {
		*n = 2**t + 1
	}
	if *s == 0 {
		*s = *t
	}

	proto, err := cli.Protocol(*protoName, cli.Params{N: *n, T: *t, S: *s})
	if err != nil {
		fail(err)
	}

	prof, err := cli.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		fail(err)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fail(err)
		}
	}()

	ctx := context.Background()
	// The attacks drive core.Run internally; a sink on the context reaches
	// every one of those runs without lowerbound needing trace plumbing.
	var traceSink *trace.JSONL
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fail(err)
		}
		defer func() { _ = f.Close() }()
		traceSink = trace.NewJSONL(f)
		defer func() {
			if err := traceSink.Flush(); err != nil {
				fail(err)
			}
		}()
		ctx = trace.NewContext(ctx, traceSink)
	}
	switch *attack {
	case "audit":
		audit, err := lowerbound.AuditSignatures(ctx, proto, *n, *t, nil)
		if err != nil {
			fail(err)
		}
		fmt.Printf("Theorem 1 audit of %s (n=%d, t=%d)\n", proto.Name(), *n, *t)
		fmt.Printf("  signatures in H (v=0): %d\n", audit.HSignatures)
		fmt.Printf("  signatures in G (v=1): %d\n", audit.GSignatures)
		fmt.Printf("  lower bound n(t+1)/4:  %d\n", audit.Bound)
		fmt.Printf("  min |A(p)| = |A(%v)| = %d (need ≥ %d)\n", audit.MinAP, audit.MinAPSize, *t+1)
		if audit.Satisfied() {
			fmt.Println("  verdict: bound respected")
		} else {
			fmt.Println("  verdict: VULNERABLE — run -attack replay")
		}
	case "replay":
		out, err := lowerbound.ReplayAttack(ctx, proto, *n, *t, nil)
		if errors.Is(err, lowerbound.ErrBoundRespected) {
			fmt.Printf("%s respects Theorem 1's bound: %v\n", proto.Name(), err)
			return
		}
		if err != nil {
			fail(err)
		}
		fmt.Printf("Theorem 1 replay attack on %s (n=%d, t=%d)\n", proto.Name(), *n, *t)
		fmt.Printf("  victim: %v, coalition A(p): %v\n", out.Victim, out.Faulty.Sorted())
		printDecisions(out)
	case "omission":
		out, err := lowerbound.OmissionAttack(ctx, proto, *n, *t, nil)
		if errors.Is(err, lowerbound.ErrBoundRespected) {
			fmt.Printf("%s respects the omission bound: %v\n", proto.Name(), err)
			return
		}
		if err != nil {
			fail(err)
		}
		fmt.Printf("Theorem 2 omission attack on %s (n=%d, t=%d)\n", proto.Name(), *n, *t)
		fmt.Printf("  victim: %v, coalition: %v\n", out.Victim, out.Faulty.Sorted())
		printDecisions(out)
	case "starve":
		audit, err := lowerbound.StarvationAudit(ctx, proto, *n, *t, nil)
		if err != nil {
			fail(err)
		}
		fmt.Printf("Theorem 2 starvation audit of %s (n=%d, t=%d)\n", proto.Name(), *n, *t)
		fmt.Printf("  starved coalition B: %v (each ignoring first %d messages)\n", audit.B.Sorted(), audit.IgnoreFirst)
		ids := audit.B.Sorted()
		for _, q := range ids {
			fmt.Printf("  messages into %v from correct processors: %d (need ≥ %d)\n", q, audit.PerMember[q], audit.RequiredPerMember)
		}
		fmt.Printf("  total messages by correct processors: %d (Theorem 2 bound %d)\n", audit.TotalMessages, audit.Bound)
		if audit.Satisfied() {
			fmt.Println("  verdict: bound respected")
		} else {
			fmt.Println("  verdict: VULNERABLE")
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown attack %q\n", *attack)
		os.Exit(2)
	}
}

func printDecisions(out *lowerbound.AttackOutcome) {
	ids := make([]int, 0, len(out.Decisions))
	for id := range out.Decisions {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, id := range ids {
		fmt.Printf("  p%d decided %v\n", id, out.Decisions[ident.ProcID(id)])
	}
	if out.Broke() {
		fmt.Printf("  RESULT: Byzantine Agreement violated — %v\n", out.Violation)
	} else {
		fmt.Println("  RESULT: protocol survived")
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
