// Command batrace validates and summarizes a structured execution trace
// written by `basim -trace`, `baexp -trace` or `baattack -trace`: it parses
// the JSONL stream (rejecting malformed lines and unknown event kinds) and
// prints the per-phase message/signature attribution table.
//
// Usage:
//
//	basim -protocol alg1 -t 4 -trace run.jsonl
//	batrace run.jsonl
//	batrace -counts run.jsonl   # also print per-kind event counts
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"byzex/internal/trace"
)

func main() {
	counts := flag.Bool("counts", false, "print per-kind event counts")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: batrace [-counts] <trace.jsonl>")
		os.Exit(2)
	}
	path := flag.Arg(0)

	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	events, err := trace.ReadJSONL(f)
	_ = f.Close()
	if err != nil {
		fail(err)
	}

	fmt.Printf("%s: %d events\n", path, len(events))
	if *counts {
		byKind := make(map[string]int)
		for _, e := range events {
			byKind[e.Kind.String()]++
		}
		names := make([]string, 0, len(byKind))
		for name := range byKind {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("  %-12s %d\n", name, byKind[name])
		}
	}
	fmt.Print(trace.Summarize(events).Table())
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
