// Command batrace validates and summarizes a structured execution trace
// written by `basim -trace`, `baexp -trace` or `baattack -trace`: it parses
// the JSONL stream (rejecting malformed lines and unknown event kinds) and
// prints the per-phase message/signature attribution table.
//
// Usage:
//
//	basim -protocol alg1 -t 4 -trace run.jsonl -metrics run-metrics.json
//	batrace run.jsonl
//	batrace -counts run.jsonl                  # also print per-kind event counts
//	batrace -report run-metrics.json run.jsonl # cross-check against the run's metrics
//
// With -report, the trace's per-phase attribution is checked against the
// metrics.Report the run collected; any disagreement means the trace wiring
// and the metrics wiring diverged, and batrace exits non-zero so CI fails.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"byzex/internal/metrics"
	"byzex/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("batrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	counts := fs.Bool("counts", false, "print per-kind event counts")
	reportPath := fs.String("report", "", "metrics.Report JSON to cross-check the trace against")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: batrace [-counts] [-report metrics.json] <trace.jsonl>")
		return 2
	}
	path := fs.Arg(0)

	f, err := os.Open(path)
	if err != nil {
		return fail(stderr, err)
	}
	events, err := trace.ReadJSONL(f)
	_ = f.Close()
	if err != nil {
		return fail(stderr, err)
	}

	fmt.Fprintf(stdout, "%s: %d events\n", path, len(events))
	if *counts {
		byKind := make(map[string]int)
		for _, e := range events {
			byKind[e.Kind.String()]++
		}
		names := make([]string, 0, len(byKind))
		for name := range byKind {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(stdout, "  %-12s %d\n", name, byKind[name])
		}
	}
	sum := trace.Summarize(events)
	fmt.Fprint(stdout, sum.Table())

	if *reportPath != "" {
		report, err := readReport(*reportPath)
		if err != nil {
			return fail(stderr, err)
		}
		if err := sum.CheckReport(report); err != nil {
			fmt.Fprintf(stderr, "batrace: trace disagrees with metrics: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "report: consistent with %s\n", *reportPath)
	}
	return 0
}

func readReport(path string) (metrics.Report, error) {
	var report metrics.Report
	data, err := os.ReadFile(path)
	if err != nil {
		return report, err
	}
	if err := json.Unmarshal(data, &report); err != nil {
		return report, fmt.Errorf("batrace: parsing %s: %w", path, err)
	}
	return report, nil
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, err)
	return 1
}
