package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"byzex/internal/core"
	"byzex/internal/metrics"
	"byzex/internal/protocols/alg1"
	"byzex/internal/trace"
)

// writeRun produces a real trace JSONL and the matching metrics report,
// returning both paths and the report for tampering.
func writeRun(t *testing.T) (tracePath, reportPath string, report metrics.Report) {
	t.Helper()
	buf := trace.NewBuffer()
	res, err := core.Run(context.Background(), core.Config{
		Protocol: alg1.Protocol{}, N: 7, T: 3, Value: 1, Seed: 11, Trace: buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	report = res.Sim.Report

	dir := t.TempDir()
	tracePath = filepath.Join(dir, "run.jsonl")
	f, err := os.Create(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteJSONL(f, buf.Events()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	reportPath = filepath.Join(dir, "metrics.json")
	writeReport(t, reportPath, report)
	return tracePath, reportPath, report
}

func writeReport(t *testing.T, path string, report metrics.Report) {
	t.Helper()
	data, err := json.Marshal(report)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestRunReportConsistent(t *testing.T) {
	tracePath, reportPath, _ := writeRun(t)
	var stdout, stderr bytes.Buffer
	if rc := run([]string{"-report", reportPath, tracePath}, &stdout, &stderr); rc != 0 {
		t.Fatalf("exit %d, stderr: %s", rc, stderr.String())
	}
	if !strings.Contains(stdout.String(), "consistent with") {
		t.Fatalf("missing consistency line in output:\n%s", stdout.String())
	}
}

func TestRunReportMismatchExitsNonZero(t *testing.T) {
	tracePath, reportPath, report := writeRun(t)
	// Tamper: claim one fewer correct message than the trace attributes.
	report.MessagesCorrect--
	if len(report.PerPhase) > 1 {
		report.PerPhase[1].MessagesCorrect--
	}
	writeReport(t, reportPath, report)

	var stdout, stderr bytes.Buffer
	rc := run([]string{"-report", reportPath, tracePath}, &stdout, &stderr)
	if rc == 0 {
		t.Fatalf("tampered report accepted; stdout:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "disagrees with metrics") {
		t.Fatalf("mismatch not diagnosed on stderr: %s", stderr.String())
	}
}

func TestRunWithoutReportStillSummarizes(t *testing.T) {
	tracePath, _, _ := writeRun(t)
	var stdout, stderr bytes.Buffer
	if rc := run([]string{"-counts", tracePath}, &stdout, &stderr); rc != 0 {
		t.Fatalf("exit %d, stderr: %s", rc, stderr.String())
	}
	if !strings.Contains(stdout.String(), "events") {
		t.Fatalf("missing event count:\n%s", stdout.String())
	}
}

func TestRunUsage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if rc := run(nil, &stdout, &stderr); rc != 2 {
		t.Fatalf("no-args exit %d, want 2", rc)
	}
}
