// Command basim runs a single Byzantine Agreement instance and prints the
// decisions and the information-exchange metrics.
//
// Usage examples:
//
//	basim -protocol alg1 -t 4                         # n defaults to 2t+1
//	basim -protocol alg5 -n 256 -t 4 -s 4 -value 1
//	basim -protocol alg3 -n 100 -t 3 -s 12 -adversary split-brain
//	basim -protocol dolev-strong -n 16 -t 4 -transport tcp
//	basim -protocol alg2 -t 3 -dump run.json          # JSON transcript
//	basim -protocol alg1 -t 2 -transport tcp -faults "crash=1@2;drop=0->2@1-3"
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"byzex/internal/cli"
	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/metrics"
	"byzex/internal/trace"
	"byzex/internal/transport"
)

func main() {
	var (
		protoName = flag.String("protocol", "alg5", "protocol: "+strings.Join(cli.ProtocolNames(), "|"))
		n         = flag.Int("n", 0, "number of processors (default 2t+1)")
		t         = flag.Int("t", 2, "fault bound")
		s         = flag.Int("s", 0, "set/tree size parameter for alg3/alg5 (default t)")
		value     = flag.Int64("value", 1, "transmitter's value")
		advName   = flag.String("adversary", "none", "adversary: "+strings.Join(cli.AdversaryNames(), "|"))
		faultSpec = flag.String("faults", "", `fault-injection spec, e.g. "crash=1@2;drop=0->2@1-3" (see internal/faultnet)`)
		schemeStr = flag.String("scheme", "hmac", "signature scheme: hmac|ed25519|plain")
		trans     = flag.String("transport", "memory", "transport: memory|tcp")
		seed      = flag.Int64("seed", 1, "deterministic seed")
		verbose   = flag.Bool("v", false, "print per-phase message counts")
		dump      = flag.String("dump", "", "write the full message transcript (JSON) to this file (memory transport only)")
		tracePath = flag.String("trace", "", "write the structured execution trace (JSONL) to this file")
		metricsTo = flag.String("metrics", "", "write the metrics report (JSON) to this file, for batrace -report")
		cpuProf   = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a pprof heap profile to this file")
	)
	flag.Parse()

	if *n == 0 {
		*n = 2**t + 1
	}
	params := cli.Params{N: *n, T: *t, S: *s, Seed: *seed}

	proto, err := cli.Protocol(*protoName, params)
	if err != nil {
		fail(err)
	}
	adv, err := cli.Adversary(*advName, params)
	if err != nil {
		fail(err)
	}
	scheme, err := cli.Scheme(*schemeStr, params)
	if err != nil {
		fail(err)
	}
	plan, err := cli.FaultPlan(*faultSpec, *seed)
	if err != nil {
		fail(err)
	}
	// The processors a fault plan touches are judged faulty so the agreement
	// printout discounts them (they run correct code, they're merely unheard).
	// An over-budget plan is allowed — watching a protocol stall is the point
	// of some experiments — but flagged up front.
	var faultyOverride ident.Set
	if plan != nil {
		if adv == nil {
			faultyOverride = plan.Affected(*n)
		}
		if err := plan.CheckBudget(*n, *t); err != nil {
			fmt.Fprintf(os.Stderr, "warning: %v — expect a stall or crash error, not agreement\n", err)
		}
	}

	prof, err := cli.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		fail(err)
	}
	// sink stays a nil interface when tracing is off — assigning a nil
	// *trace.Buffer directly into core.Config.Trace would defeat the
	// producers' nil checks.
	var (
		traceBuf *trace.Buffer
		sink     trace.Sink
	)
	if *tracePath != "" {
		traceBuf = trace.NewBuffer()
		sink = traceBuf
	}

	ctx := context.Background()
	start := time.Now()
	var report metrics.Report

	switch *trans {
	case "memory":
		res, err := core.Run(ctx, core.Config{
			Protocol: proto, N: *n, T: *t, Value: ident.Value(*value),
			Scheme: scheme, Adversary: adv, Seed: *seed, Record: *dump != "",
			Trace: sink, Faults: plan, FaultyOverride: faultyOverride,
		})
		if err != nil {
			fail(err)
		}
		report = res.Sim.Report
		printOutcome(res.Faulty, decisions(res), res.Sim.Report.String(), ident.Value(*value))
		if *verbose {
			fmt.Print(res.Sim.Report.Table())
		}
		if *dump != "" {
			f, err := os.Create(*dump)
			if err != nil {
				fail(err)
			}
			if err := res.History.Export(f); err != nil {
				fail(err)
			}
			if err := f.Close(); err != nil {
				fail(err)
			}
			fmt.Printf("transcript: %s (%d phases)\n", *dump, res.History.NumPhases())
		}
	case "tcp":
		res, err := transport.RunCluster(ctx, core.Config{
			Protocol: proto, N: *n, T: *t, Value: ident.Value(*value),
			Scheme: scheme, Adversary: adv, Seed: *seed,
			Trace: sink, Faults: plan, FaultyOverride: faultyOverride,
		}, transport.Net{})
		if err != nil {
			fail(err)
		}
		report = res.Report
		dec := make(map[ident.ProcID]string, len(res.Decisions))
		for id, d := range res.Decisions {
			dec[id] = fmt.Sprint(d.Value)
		}
		printOutcome(res.Faulty, dec, res.Report.String(), ident.Value(*value))
	default:
		fail(fmt.Errorf("unknown transport %q", *trans))
	}

	if traceBuf != nil {
		if err := writeTrace(*tracePath, traceBuf, report, *verbose); err != nil {
			fail(err)
		}
	}
	if *metricsTo != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*metricsTo, append(data, '\n'), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("metrics report: %s\n", *metricsTo)
	}
	if err := prof.Stop(); err != nil {
		fail(err)
	}
	fmt.Printf("elapsed: %v\n", time.Since(start).Round(time.Millisecond))
}

// writeTrace persists the trace as JSONL and cross-checks its per-phase
// attribution against the run's metrics — a trace that disagrees with the
// collector means the instrumentation drifted and is an error, not output.
func writeTrace(path string, buf *trace.Buffer, report metrics.Report, verbose bool) error {
	sum := trace.Summarize(buf.Events())
	if err := sum.CheckReport(report); err != nil {
		return fmt.Errorf("trace disagrees with metrics: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteJSONL(f, buf.Events()); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("trace: %s (%d events, consistent with metrics)\n", path, buf.Len())
	if verbose {
		fmt.Print(sum.Table())
	}
	return nil
}

func decisions(res *core.Result) map[ident.ProcID]string {
	out := make(map[ident.ProcID]string, len(res.Sim.Decisions))
	for id, d := range res.Sim.Decisions {
		if d.Decided {
			out[id] = fmt.Sprint(d.Value)
		} else {
			out[id] = "undecided"
		}
	}
	return out
}

func printOutcome(faulty ident.Set, dec map[ident.ProcID]string, report string, txValue ident.Value) {
	counts := make(map[string]int)
	for id, v := range dec {
		if faulty.Has(id) {
			continue
		}
		counts[v]++
	}
	fmt.Printf("faulty: %v\n", faulty.Sorted())
	fmt.Printf("transmitter value: %v\n", txValue)
	fmt.Printf("correct decisions: %v\n", counts)
	fmt.Printf("metrics: %s\n", report)
	if len(counts) == 1 {
		fmt.Println("agreement: OK")
	} else {
		fmt.Println("agreement: VIOLATED")
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
