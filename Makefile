# byzex build / verification entry points.
#
#   make check       - tier-1 gate: lint, build everything, full test suite,
#                      plus -race on the concurrency-heavy packages
#   make lint        - gofmt -l (fails on unformatted files) + go vet ./...
#   make bench       - tier-1 benchmarks; archives machine-readable results in BENCH_001.json
#   make bench-trace - tracing-overhead benchmark; archives results in BENCH_002.json
#   make test        - plain test run (no race detector)
#   make bench-service - serving-layer benchmarks; archives BENCH_003.json
#                      (batch amortization) and BENCH_004.json (shard scaling)
#   make bench-transport - warm-mesh + frame-path benchmarks; archives
#                      BENCH_005.json (warm vs cold mesh, zero-alloc frame
#                      path, warm-TCP shard scaling)
#   make baexp       - regenerate every evaluation table
#   make trace-smoke - end-to-end trace pipeline check (basim -trace → batrace)
#   make faults      - fault-injection scenario matrix under -race (part of check)
#   make slo         - open-loop SLO gate: Poisson load against a self-hosted
#                      server must meet a generous p99 (part of check)
#   make bench-ops   - ops-plane benchmarks (open-loop latency, zero-alloc
#                      metrics scrape); archives BENCH_006.json
#   make bench-journal - durability benchmarks (fsync policies, recovery scan,
#                      segment rotation, compacted-recovery flatness, plus the
#                      live churn drill); archives BENCH_008.json
#   make crash       - crash-recovery drill: SIGKILL a journaled server
#                      mid-load, restart it, verify replay (part of check)
#   make upgrade     - rolling-upgrade drill: roll a two-server fleet across
#                      wire frame versions under load (part of check)
#   make search      - adversary-search gate vs the Theorem 1/2 bounds
#                      (best-found below bound or a broken correct protocol
#                      fails; strawmen must be found broken); SEARCH_BUDGET=n
#                      sets the budget (make check uses a short one)
#   make bench-search - run the gate at the full budget and archive the
#                      per-protocol gap-to-bound atlas as BENCH_009.json
#   make fuzz        - run every fuzz target on a short fixed budget

GO ?= go
GOFMT ?= gofmt

.PHONY: check lint test bench bench-trace bench-service bench-transport bench-ops bench-journal bench-search search baexp trace-smoke faults slo crash upgrade fuzz

check: lint faults
	$(GO) build ./...
	$(GO) test ./...
	$(GO) test -race -count=1 ./internal/service/ ./internal/runner/ ./internal/transport/ ./internal/obs/ ./internal/journal/ ./internal/search/
	$(MAKE) crash
	$(MAKE) upgrade
	$(MAKE) slo
	$(MAKE) search SEARCH_BUDGET=48

# The durability gate: a journaled server is SIGKILLed mid-load (a forked
# child process — an in-process drain can never tear a write), then restarted
# over the same journal directory. The drill asserts the recovered watermark
# clears every journaled id, every pending admission replays byte-identically
# (trace-pinned), and live traffic resumes with fresh ids past the watermark.
crash:
	$(GO) test -race -count=1 ./cmd/baserve/ -run 'TestServeCrashRecovery'

# The rolling-upgrade gate: two journaled baserve processes on the TCP
# transport, one pinned to the previous frame version; it is drained and
# restarted at the current version while its sibling serves uninterrupted,
# and instance ids continue exactly past the drain checkpoint. The same roll
# is repeated at warm-mesh granularity (SetPeerWireVersion mid-mesh).
upgrade:
	$(GO) test -race -count=1 ./cmd/baserve/ -run 'TestServeRollingUpgrade'

# The serving SLO gate: a short open-loop run (Poisson arrivals, latency
# measured from each scheduled arrival, rejections shed) against a
# self-hosted sharded server. -slo-p99 makes the run exit non-zero on a
# violation; the bound is deliberately generous — this catches
# pipeline-level latency regressions (a stuck sequencer, an accidental
# closed-loop retry), not machine noise.
slo:
	$(GO) run ./cmd/baload -selfhost -protocol alg1-multi -t 3 \
		-shards 4 -batch 8 -adaptive -c 16 -mod 64 \
		-rate 400 -duration 3s -seed 1 -slo-p99 2s

# Formatting and static-analysis gate. gofmt -l prints offending files; the
# shell turns any output into a failure so CI catches drift.
lint:
	@out="$$($(GOFMT) -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...

# The fault-injection gate: every numbered algorithm against every fault
# family (crash/drop/dup/reorder/delay/partition) over real TCP, in-budget
# plans must agree and replay byte-identically, over-budget plans must fail
# typed. Also run standalone for a quick transport-layer signal.
faults:
	$(GO) test -race -count=1 ./internal/transport/ -run 'TestScenarioMatrix|TestCrashAtPhaseK|TestOverBudgetFaultsFailTyped'

test:
	$(GO) test ./...

# The tier-1 benchmarks: the per-experiment harness at the repo root plus the
# engine and signature micro-benchmarks. Fixed -benchtime keeps run-to-run
# iteration counts comparable; benchjson mirrors the text output to stderr
# and writes the parsed JSON, embedding the recorded seed numbers
# (BENCH_BASELINE.json) for a before/after diff in one file.
bench:
	$(GO) build -o /tmp/benchjson ./cmd/benchjson
	{ $(GO) test -bench 'BenchmarkE2Alg2|BenchmarkE5Alg5' -benchtime=5x -benchmem -run '^$$' . ; \
	  $(GO) test -bench 'BenchmarkEngineBroadcast|BenchmarkEngineHotPath' -benchtime=20x -benchmem -run '^$$' ./internal/sim/ ; \
	  $(GO) test -bench 'BenchmarkChainVerify' -benchmem -run '^$$' ./internal/sig/ ; } \
	| /tmp/benchjson -label current -baseline BENCH_BASELINE.json > BENCH_001.json

# Tracing overhead, archived separately from the engine baseline: the
# disabled case must track BenchmarkEngineBroadcast/n=64, and allocs/op must
# be identical across disabled/nop/ring (the no-op sink path adds zero
# allocations).
bench-trace:
	$(GO) build -o /tmp/benchjson ./cmd/benchjson
	$(GO) test -bench 'BenchmarkTraceOverhead' -benchtime=20x -benchmem -run '^$$' ./internal/sim/ \
	| /tmp/benchjson -label current > BENCH_002.json

baexp:
	$(GO) run ./cmd/baexp

# Amortized serving cost: messages/signatures per decided value at batch
# sizes 1/4/16 under a saturated service (BENCH_003), then the sharding sweep
# on the latency-modeled substrate — shard count × fixed/adaptive batching,
# values/s and msgs/value (BENCH_004).
bench-service:
	$(GO) build -o /tmp/benchjson ./cmd/benchjson
	$(GO) test -bench 'BenchmarkServiceThroughput' -benchtime=200x -benchmem -run '^$$' ./internal/service/ \
	| /tmp/benchjson -label current > BENCH_003.json
	$(GO) test -bench 'BenchmarkServiceSharded' -benchtime=300x -benchmem -run '^$$' -timeout 20m ./internal/service/ \
	| /tmp/benchjson -label current > BENCH_004.json

# The warm-mesh tentpole numbers (BENCH_005): one instance per iteration over
# a cold (dial + teardown) versus warm (reused) mesh, the steady-state frame
# path on a real loopback socket (allocs/op must report 0), and the real-TCP
# shard sweep over warm meshes with a modeled 2ms link delay — values/s must
# rise monotonically from 1 to 8 shards.
bench-transport:
	$(GO) build -o /tmp/benchjson ./cmd/benchjson
	{ $(GO) test -bench 'BenchmarkMeshWarmVsCold|BenchmarkFramePath' -benchtime=200x -benchmem -run '^$$' ./internal/transport/ ; \
	  $(GO) test -bench 'BenchmarkServiceWarmTCP' -benchtime=300x -benchmem -run '^$$' -timeout 20m ./internal/service/ ; } \
	| /tmp/benchjson -label current > BENCH_005.json

# The ops-plane numbers (BENCH_006): sustained open-loop serving over the
# real wire (offered/s vs values/s, coordinated-omission-free p50/p99, shed
# fraction) and the metrics scrape path (allocs/op must report 0 — a tight
# scrape loop adds no GC pressure to a loaded server).
bench-ops:
	$(GO) build -o /tmp/benchjson ./cmd/benchjson
	{ $(GO) test -bench 'BenchmarkServiceOpenLoop' -benchtime=4000x -benchmem -run '^$$' ./internal/service/ ; \
	  $(GO) test -bench 'BenchmarkMetricsScrape' -benchtime=20000x -benchmem -run '^$$' ./internal/obs/ ; } \
	| /tmp/benchjson -label current > BENCH_006.json

# The durability numbers (BENCH_008): the fsync trade-off (per-record sync
# versus group commit, with syncs/op reported so the realized commit batch is
# visible), the recovery scan over a 10k-record journal, segment-size
# sensitivity of the append path, compacted recovery staying flat as the
# total journaled volume grows 10k→100k (records-scanned bounded by the
# checkpoint cadence), replay throughput, and the live kill/restart churn
# drill (recovery time and replayed count per restart). The churn drill runs
# as its own command first — it is a gate (replay count must stay within the
# checkpoint budget), and a pipe would mask its exit code.
bench-journal:
	$(GO) build -o /tmp/benchjson ./cmd/benchjson
	$(GO) build -o /tmp/baload ./cmd/baload
	rm -rf /tmp/byzex-churn-journal
	/tmp/baload -churn 3 -churn-acks 48 -c 8 -protocol alg1 -t 1 -shards 2 \
		-journal-dir /tmp/byzex-churn-journal -fsync always -checkpoint-every 16 \
		> /tmp/byzex-churn-bench.txt
	{ $(GO) test -bench 'BenchmarkJournal' -benchtime=200x -benchmem -run '^$$' ./internal/journal/ ; \
	  cat /tmp/byzex-churn-bench.txt ; } \
	| /tmp/benchjson -label current > BENCH_008.json

# The adversary-search gate: the search minimizes correct-sender signatures
# and messages per registry protocol and exits 1 when a correct protocol is
# broken or undercuts its Theorem 1/2 bound, or a strawman survives
# unbroken. The command runs standalone — a pipe would mask its exit code.
# A fixed -seed makes the output reproduce byte-identically. `make check`
# runs it at a short budget; `make bench-search` at the full default.
SEARCH_BUDGET ?= 240
search:
	$(GO) build -o /tmp/baattack ./cmd/baattack
	/tmp/baattack -search -protocol all -objective both \
		-budget $(SEARCH_BUDGET) -seed 1 -bench > /tmp/byzex-search-bench.txt

# The gap-to-bound atlas (BENCH_009): archive best-found vs
# core.SigLowerBound / core.MsgLowerBound from a full-budget search run.
bench-search: search
	$(GO) build -o /tmp/benchjson ./cmd/benchjson
	/tmp/benchjson -label current < /tmp/byzex-search-bench.txt > BENCH_009.json

# Short fixed-budget fuzzing of every decoder that touches attacker-supplied
# bytes: the wire codec (seeded from captured real-run envelopes) and the
# signature-chain unmarshalers. `go test -fuzz` accepts one target per run.
fuzz:
	$(GO) test ./internal/wire/ -run '^$$' -fuzz 'FuzzFrameBodyDecode$$' -fuzztime 20s
	$(GO) test ./internal/wire/ -run '^$$' -fuzz 'FuzzReaderPrimitives$$' -fuzztime 10s
	$(GO) test ./internal/sig/ -run '^$$' -fuzz 'FuzzUnmarshalSignedValue$$' -fuzztime 10s
	$(GO) test ./internal/sig/ -run '^$$' -fuzz 'FuzzUnmarshalSignedBytes$$' -fuzztime 10s
	$(GO) test ./internal/sig/ -run '^$$' -fuzz 'FuzzChainVerifyNeverAcceptsUnsigned$$' -fuzztime 10s

# End-to-end smoke of the trace pipeline: run basim with -trace (which
# itself fails if the trace disagrees with metrics.Report), then parse and
# summarize the JSONL with batrace. Exercises both transports.
trace-smoke:
	$(GO) build -o /tmp/basim ./cmd/basim
	$(GO) build -o /tmp/batrace ./cmd/batrace
	/tmp/basim -protocol alg1 -t 3 -adversary split-brain -trace /tmp/byzex-smoke-mem.jsonl -metrics /tmp/byzex-smoke-mem-metrics.json
	/tmp/batrace -counts -report /tmp/byzex-smoke-mem-metrics.json /tmp/byzex-smoke-mem.jsonl
	/tmp/basim -protocol dolev-strong -n 8 -t 2 -transport tcp -adversary silent -trace /tmp/byzex-smoke-tcp.jsonl
	/tmp/batrace /tmp/byzex-smoke-tcp.jsonl
