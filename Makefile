# byzex build / verification entry points.
#
#   make check   - tier-1 gate: build everything, vet, full test suite under -race
#   make bench   - tier-1 benchmarks; archives machine-readable results in BENCH_001.json
#   make test    - plain test run (no race detector)
#   make baexp   - regenerate every evaluation table

GO ?= go

.PHONY: check test bench baexp

check:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

test:
	$(GO) test ./...

# The tier-1 benchmarks: the per-experiment harness at the repo root plus the
# engine and signature micro-benchmarks. Fixed -benchtime keeps run-to-run
# iteration counts comparable; benchjson mirrors the text output to stderr
# and writes the parsed JSON, embedding the recorded seed numbers
# (BENCH_BASELINE.json) for a before/after diff in one file.
bench:
	$(GO) build -o /tmp/benchjson ./cmd/benchjson
	{ $(GO) test -bench 'BenchmarkE2Alg2|BenchmarkE5Alg5' -benchtime=5x -benchmem -run '^$$' . ; \
	  $(GO) test -bench 'BenchmarkEngineBroadcast|BenchmarkEngineHotPath' -benchtime=20x -benchmem -run '^$$' ./internal/sim/ ; \
	  $(GO) test -bench 'BenchmarkChainVerify' -benchmem -run '^$$' ./internal/sig/ ; } \
	| /tmp/benchjson -label current -baseline BENCH_BASELINE.json > BENCH_001.json

baexp:
	$(GO) run ./cmd/baexp
