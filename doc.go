// Package byzex is a from-scratch reproduction of Dolev & Reischuk,
// "Bounds on Information Exchange for Byzantine Agreement" (PODC 1982;
// J. ACM 32(1), 1985): the message/signature lower bounds (Theorems 1-2) as
// executable audits and attacks, and the message-optimal authenticated
// agreement algorithms (Algorithms 1-5, Theorems 3-7) over a synchronous
// message-passing simulator and a real TCP transport.
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for
// paper-vs-measured results, and the examples/ directory for runnable
// entry points. The public API lives in internal/core; the per-theorem
// benchmark harness is bench_test.go in this directory.
package byzex
