// Sensorvector: Interactive Consistency — the original motivation of the
// Byzantine Agreement literature (Pease–Shostak–Lamport's fault-tolerant
// clock/sensor synchronization). Each of n nodes holds a private reading;
// after running n parallel Byzantine Agreement instances (package ic over
// any base protocol from this module), every correct node holds the SAME
// vector of all n readings, with correct nodes' slots guaranteed accurate,
// even while Byzantine nodes lie differently to different peers.
//
// Run with:
//
//	go run ./examples/sensorvector
package main

import (
	"context"
	"fmt"
	"log"

	"byzex/internal/adversary"
	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/protocols/dolevstrong"
	"byzex/internal/protocols/ic"
)

func main() {
	const (
		n = 7
		t = 2
	)

	// Node 0's reading is configurable; nodes 1..n-1 contribute
	// ic.OwnInput(id, ·) (a deterministic stand-in for a sensor readout).
	// The transmitter of the outer run equivocates via split-brain — the
	// hardest single-fault behaviour.
	adv := adversary.SplitBrain{LowValue: ident.V0, HighValue: ident.V1, SplitAt: n / 2}
	res, err := core.Run(context.Background(), core.Config{
		Protocol:  ic.Protocol{Base: dolevstrong.Protocol{}},
		N:         n,
		T:         t,
		Value:     ident.V1,
		Adversary: adv,
		Seed:      23,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("per-node agreed sensor vectors (slot k = node k's reading):")
	var ref []ident.Value
	for id, nd := range res.Nodes {
		pid := ident.ProcID(id)
		if res.Faulty.Has(pid) {
			fmt.Printf("  node %d: (Byzantine)\n", id)
			continue
		}
		vec, ok := nd.(ic.VectorHolder).Vector()
		if !ok {
			log.Fatalf("node %d holds an incomplete vector", id)
		}
		fmt.Printf("  node %d: %v\n", id, vec)
		if ref == nil {
			ref = vec
		} else {
			for k := range vec {
				if vec[k] != ref[k] {
					log.Fatalf("interactive consistency violated at slot %d", k)
				}
			}
		}
	}

	fmt.Println("\nall correct nodes hold identical vectors;")
	fmt.Println("slots of correct nodes are their true readings; the Byzantine")
	fmt.Println("transmitter's slot is merely *consistent* across all nodes.")
	fmt.Printf("\ncost: %s (= n parallel instances of %s)\n",
		res.Sim.Report.String(), dolevstrong.Protocol{}.Name())
}
