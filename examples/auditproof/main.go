// Auditproof: Algorithm 2's distinguishing feature is that after 3t+3
// phases every correct processor holds a *one-message proof for the outside
// world* — the agreed value carrying at least t signatures of other
// processors. An external auditor who trusts the signature scheme (but none
// of the processors individually) can verify the outcome from any single
// correct processor's proof, and no coalition of faulty processors can
// fabricate a proof for a different value.
//
// Run with:
//
//	go run ./examples/auditproof
package main

import (
	"context"
	"fmt"
	"log"

	"byzex/internal/adversary"
	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/protocols/alg2"
	"byzex/internal/sig"
)

func main() {
	const t = 3
	const n = 2*t + 1

	// Real public-key signatures: the auditor only needs the public keys.
	scheme, err := sig.NewEd25519(n, nil)
	if err != nil {
		log.Fatal(err)
	}

	// The transmitter equivocates (split-brain), so the agreement value is
	// whatever the correct processors converge on — the proof pins it down
	// for the auditor.
	res, err := core.Run(context.Background(), core.Config{
		Protocol:  alg2.Protocol{},
		N:         n,
		T:         t,
		Value:     ident.V1,
		Scheme:    scheme,
		Adversary: adversary.SplitBrain{LowValue: ident.V0, HighValue: ident.V1, SplitAt: n / 2},
		Seed:      3,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== processors publish their proofs ===")
	group := ident.Range(n)
	var agreed *ident.Value
	for id, node := range res.Nodes {
		pid := ident.ProcID(id)
		if res.Faulty.Has(pid) {
			fmt.Printf("p%d: (faulty — no trustworthy proof)\n", id)
			continue
		}
		holder, ok := node.(alg2.ProofHolder)
		if !ok {
			log.Fatalf("p%d does not expose a proof", id)
		}
		proof, has := holder.Proof()
		if !has {
			log.Fatalf("p%d holds no proof — violates Theorem 4", id)
		}

		// The external auditor verifies the proof with nothing but the
		// public verifier: value + ≥ t+1 distinct processor signatures.
		if err := alg2.VerifyProof(proof, group, t, scheme); err != nil {
			log.Fatalf("auditor rejected p%d's proof: %v", id, err)
		}
		fmt.Printf("p%d: proof for %v with %d signatures — auditor accepts\n",
			id, proof.Value, proof.Chain.DistinctCount())
		if agreed == nil {
			v := proof.Value
			agreed = &v
		} else if *agreed != proof.Value {
			log.Fatalf("two proofs for different values — impossible by Theorem 4")
		}
	}

	// A forged proof for the other value must not verify.
	fmt.Println("\n=== a faulty coalition tries to forge a proof for the other value ===")
	forged := sig.SignedValue{Value: 1 - *agreed}
	for q := range res.Faulty {
		signer, _ := scheme.Signer(q)
		forged = forged.CoSign(signer)
	}
	if err := alg2.VerifyProof(forged, group, t, scheme); err != nil {
		fmt.Printf("auditor rejects the forgery: %v\n", err)
	} else {
		log.Fatal("forgery accepted — signature scheme broken")
	}
}
