// Configrollout: distribute one configuration decision from a coordinator
// to a large fleet (n ≫ t) using Algorithm 3, exploring the paper's
// phase/message trade-off from the introduction: t+3+t/α phases against
// O(αn) messages, tuned through the set-size parameter s.
//
// This is the scenario the paper's introduction motivates: in a real
// distributed system the overhead of a message often dominates its size,
// so a fleet-wide rollout wants the *fewest messages*, while a latency-
// sensitive rollout wants the fewest phases. Algorithm 3 exposes the dial.
//
// Run with:
//
//	go run ./examples/configrollout
package main

import (
	"context"
	"fmt"
	"log"

	"byzex/internal/adversary"
	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/protocols/alg3"
)

func main() {
	const (
		fleet = 1000 // processors
		t     = 4    // tolerated Byzantine faults
	)

	fmt.Printf("rolling out a config decision to %d nodes, tolerating %d Byzantine faults\n\n", fleet, t)
	fmt.Printf("%8s  %8s  %10s  %10s  %12s\n", "s", "phases", "messages", "msgs/node", "paper bound")

	for _, s := range []int{1, 2, 4, 8, 16, 32} {
		res, decision, err := core.RunAndCheck(context.Background(), core.Config{
			Protocol: alg3.Protocol{S: s},
			N:        fleet,
			T:        t,
			Value:    ident.V1,
			// A crash-faulty coalition knocks out some set roots mid-run;
			// the active processors cover their members directly.
			Adversary: adversary.Crash{CrashAfter: t + 4},
			Seed:      7,
		})
		if err != nil {
			log.Fatalf("s=%d: %v", s, err)
		}
		if decision != ident.V1 {
			log.Fatalf("s=%d: fleet decided %v, want %v", s, decision, ident.V1)
		}
		r := res.Sim.Report
		fmt.Printf("%8d  %8d  %10d  %10.2f  %12d\n",
			s, res.Phases, r.MessagesCorrect,
			float64(r.MessagesCorrect)/float64(fleet),
			core.Alg3MsgUpperBound(fleet, t, s))
	}

	fmt.Println("\nsmall s  -> few phases, more messages (active processors talk to many roots)")
	fmt.Println("large s  -> long chains, fewer messages per node; s=4t matches Theorem 5's O(n+t³)")
}
