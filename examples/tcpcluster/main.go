// Tcpcluster: run Byzantine Agreement over a real TCP mesh on localhost —
// every processor is a goroutine with its own listener, frames flow over
// actual sockets, and a split-brain transmitter tries to partition the
// cluster. The same protocol state machines drive both the in-memory
// simulator and this transport.
//
// Run with:
//
//	go run ./examples/tcpcluster
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"byzex/internal/adversary"
	"byzex/internal/ident"
	"byzex/internal/protocols/dolevstrong"
	"byzex/internal/transport"
)

func main() {
	const (
		n = 9
		t = 3
	)

	adv := adversary.SplitBrain{LowValue: ident.V0, HighValue: ident.V1, SplitAt: n / 2}

	fmt.Printf("starting %d TCP processors (transmitter is Byzantine and equivocates)...\n", n)
	start := time.Now()
	res, err := transport.Run(context.Background(), transport.Config{
		N:            n,
		T:            t,
		Value:        ident.V1,
		Protocol:     dolevstrong.Protocol{},
		Adversary:    adv,
		Faulty:       ident.NewSet(0),
		PhaseTimeout: 10 * time.Second,
		Seed:         17,
	})
	if err != nil {
		log.Fatal(err)
	}

	counts := make(map[ident.Value]int)
	for id, d := range res.Decisions {
		if res.Faulty.Has(id) {
			continue
		}
		if !d.Decided {
			log.Fatalf("p%d undecided", id)
		}
		counts[d.Value]++
	}
	fmt.Printf("correct decisions: %v (in %v)\n", counts, time.Since(start).Round(time.Millisecond))
	fmt.Printf("traffic: %s\n", res.Report.String())
	if len(counts) == 1 {
		fmt.Println("agreement holds despite the equivocating transmitter")
	} else {
		log.Fatal("AGREEMENT VIOLATED")
	}
}
