// Quickstart: reach Byzantine Agreement among 7 processors, 2 of which are
// Byzantine, using Algorithm 5 (the paper's O(n+t²)-message algorithm).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"byzex/internal/adversary"
	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/protocols/alg5"
)

func main() {
	const (
		n = 7 // processors
		t = 2 // tolerated faults
	)

	// The transmitter (processor 0) wants everybody to agree on value 1,
	// while two Byzantine processors try to interfere (here: a silent
	// coalition; try adversary.SplitBrain or adversary.Garbage too).
	res, decision, err := core.RunAndCheck(context.Background(), core.Config{
		Protocol:  alg5.Protocol{S: t},
		N:         n,
		T:         t,
		Value:     ident.V1,
		Adversary: adversary.Silent{},
		Seed:      42,
	})
	if err != nil {
		log.Fatalf("agreement failed: %v", err)
	}

	fmt.Printf("all %d correct processors decided: %v\n", n-res.Faulty.Len(), decision)
	fmt.Printf("faulty processors: %v\n", res.Faulty.Sorted())
	fmt.Printf("cost: %s\n", res.Sim.Report.String())
	fmt.Printf("paper bound (Theorem 7): O(n + t²) messages — closed form here: %d\n",
		core.Alg5MsgUpperBound(n, t, t))
}
