// Package obs is the serving layer's observability plane: a dependency-free
// Prometheus text-format exporter that turns the counters the repo already
// maintains (service.Stats, trace.Spool's live Summary) into an HTTP
// /metrics endpoint a standard scraper can poll.
//
// Two properties drive the design, both inherited from the serving layer's
// own contracts:
//
//   - Consistent snapshots. Each collector reads its source through one
//     snapshot call (service.Service.StatsInto, trace.Spool.StatsInto), so
//     every sample in one scrape comes from a single acquisition of the
//     source's own mutex — a scrape never shows a submitted counter from
//     one moment and a decided counter from another.
//
//   - Zero allocation on the scrape path. Metric descriptors precompute
//     their exposition bytes (HELP/TYPE header, sample-name prefix, label
//     prefixes) at construction; a scrape appends those plus
//     strconv-rendered values into one reusable buffer. After the first
//     scrape sizes the buffer, rendering allocates nothing, so a tight
//     scrape loop cannot add GC pressure to a loaded server — the same
//     discipline as the transport's zero-alloc frame path.
//
// The package speaks Prometheus text exposition format version 0.0.4
// (`# HELP` / `# TYPE` comments followed by samples) because it is trivially
// greppable, curl-able and supported by every scraper; no client library is
// imported.
package obs

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
)

// ContentType is the Prometheus text exposition format content type the
// exporter serves.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Desc describes one metric family: name, type and help text. The exposition
// bytes are precomputed so emitting a sample is an append, never a format.
type Desc struct {
	name   string
	header []byte // "# HELP name help\n# TYPE name typ\n"
	line   []byte // "name " — the unlabeled sample prefix
}

// NewDesc returns a descriptor for a metric family. typ must be "gauge" or
// "counter" (the only types the exporter emits); the name must be a valid
// Prometheus metric name. Both are programmer inputs, so violations panic at
// construction rather than producing a malformed exposition at scrape time.
func NewDesc(name, typ, help string) *Desc {
	if typ != "gauge" && typ != "counter" {
		panic("obs: metric type must be gauge or counter: " + typ)
	}
	if !validName(name) {
		panic("obs: invalid metric name: " + name)
	}
	var h []byte
	h = append(h, "# HELP "...)
	h = append(h, name...)
	h = append(h, ' ')
	h = append(h, escapeHelp(help)...)
	h = append(h, "\n# TYPE "...)
	h = append(h, name...)
	h = append(h, ' ')
	h = append(h, typ...)
	h = append(h, '\n')
	return &Desc{name: name, header: h, line: append([]byte(name), ' ')}
}

// Label returns the precomputed sample prefix for one label value of the
// family: `name{key="value"} `. Collectors build labels once (at
// construction or lazily on first sight) and reuse them every scrape.
func (d *Desc) Label(key, value string) Label {
	var p []byte
	p = append(p, d.name...)
	p = append(p, '{')
	p = append(p, key...)
	p = append(p, `="`...)
	p = append(p, escapeLabel(value)...)
	p = append(p, `"} `...)
	return Label{prefix: p}
}

// Label is one precomputed labeled-sample prefix (see Desc.Label).
type Label struct {
	prefix []byte
}

func validName(name string) bool {
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return name != ""
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(s)
}

// Writer accumulates one scrape's exposition text in a reusable buffer. Emit
// methods append the family header (callers emit each family exactly once
// per scrape) and the samples; nothing allocates once the buffer has grown
// to the exposition's steady-state size.
type Writer struct {
	buf []byte
}

// Reset empties the buffer, keeping its storage.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// Bytes returns the accumulated exposition. The slice is the writer's
// backing storage — valid until the next Reset.
func (w *Writer) Bytes() []byte { return w.buf }

// Int emits an unlabeled family with one integer sample.
func (w *Writer) Int(d *Desc, v int64) {
	w.buf = append(w.buf, d.header...)
	w.buf = append(w.buf, d.line...)
	w.buf = strconv.AppendInt(w.buf, v, 10)
	w.buf = append(w.buf, '\n')
}

// Uint emits an unlabeled family with one unsigned-integer sample.
func (w *Writer) Uint(d *Desc, v uint64) {
	w.buf = append(w.buf, d.header...)
	w.buf = append(w.buf, d.line...)
	w.buf = strconv.AppendUint(w.buf, v, 10)
	w.buf = append(w.buf, '\n')
}

// Float emits an unlabeled family with one float sample (shortest exact
// representation, the Prometheus convention for seconds).
func (w *Writer) Float(d *Desc, v float64) {
	w.buf = append(w.buf, d.header...)
	w.buf = append(w.buf, d.line...)
	w.buf = strconv.AppendFloat(w.buf, v, 'g', -1, 64)
	w.buf = append(w.buf, '\n')
}

// Family emits a family header alone; follow with LabelUint samples.
func (w *Writer) Family(d *Desc) {
	w.buf = append(w.buf, d.header...)
}

// LabelUint emits one labeled sample of the most recent Family.
func (w *Writer) LabelUint(l Label, v uint64) {
	w.buf = append(w.buf, l.prefix...)
	w.buf = strconv.AppendUint(w.buf, v, 10)
	w.buf = append(w.buf, '\n')
}

// Collector contributes one source's families to a scrape. Collect runs
// under the exporter's mutex, so a collector may keep reusable snapshot
// holders without its own locking; it must take its source's values through
// a single snapshot call so the scrape is consistent (see the package doc).
type Collector interface {
	Collect(w *Writer)
}

// Exporter renders registered collectors as one Prometheus text exposition
// and serves it over HTTP. Safe for concurrent scrapes (they serialize on
// the exporter's mutex, sharing one render buffer).
type Exporter struct {
	mu sync.Mutex
	w  Writer
	cs []Collector
}

// NewExporter returns an empty exporter.
func NewExporter() *Exporter { return &Exporter{} }

// Register appends a collector. Not safe concurrently with scrapes —
// register everything before serving.
func (e *Exporter) Register(c Collector) { e.cs = append(e.cs, c) }

// Render returns the current exposition. The returned slice is the
// exporter's reusable buffer: valid until the next Render/WriteTo/ServeHTTP,
// which is the point — steady-state scrapes allocate nothing. Concurrent
// scrapers must not read the returned slice after another scrape may have
// started; they use WriteTo (or HTTP), which copies out under the mutex.
func (e *Exporter) Render() []byte {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.renderLocked()
}

// WriteTo renders the exposition and writes it to w while the mutex is
// held, so the buffer cannot be re-rendered mid-write — the safe form for
// concurrent scrapers. Implements io.WriterTo.
func (e *Exporter) WriteTo(w io.Writer) (int64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	n, err := w.Write(e.renderLocked())
	return int64(n), err
}

func (e *Exporter) renderLocked() []byte {
	e.w.Reset()
	for _, c := range e.cs {
		c.Collect(&e.w)
	}
	return e.w.Bytes()
}

// ServeHTTP implements http.Handler: any GET renders the exposition. The
// render buffer is written while the mutex is held, so concurrent scrapes
// never interleave.
func (e *Exporter) ServeHTTP(rw http.ResponseWriter, req *http.Request) {
	e.mu.Lock()
	defer e.mu.Unlock()
	body := e.renderLocked()
	rw.Header().Set("Content-Type", ContentType)
	rw.Header().Set("Content-Length", strconv.Itoa(len(body)))
	_, _ = rw.Write(body)
}

// Serve serves the exporter at /metrics (and the bare exposition at /) on ln
// until ctx is done or ln fails; it returns nil on graceful shutdown —
// the same lifecycle contract as service.Serve, so baserve runs both under
// one errgroup-less goroutine pair.
func Serve(ctx context.Context, ln net.Listener, e *Exporter) error {
	mux := http.NewServeMux()
	mux.Handle("/", e)
	mux.Handle("/metrics", e)
	srv := &http.Server{Handler: mux}
	if ctx.Done() != nil {
		stop := context.AfterFunc(ctx, func() { _ = srv.Close() })
		defer stop()
	}
	err := srv.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) || ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
		return nil
	}
	return err
}
