package obs_test

import (
	"context"
	"io"
	"testing"

	"byzex/internal/obs"
	"byzex/internal/service"
	"byzex/internal/trace"
)

// BenchmarkMetricsScrape measures one full exposition render over a live
// service and spool — the cost a scraper imposes per poll. allocs/op must
// report 0: the scrape path reuses the exporter's buffer and the
// collectors' snapshot holders, so monitoring cannot add GC pressure to a
// loaded server. Archived as BENCH_006.json by `make bench-ops`.
func BenchmarkMetricsScrape(b *testing.B) {
	sp := trace.NewSpool(io.Discard, 1024)
	svc, err := service.New(context.Background(), service.Config{
		Template:   template(99),
		Shards:     4,
		QueueDepth: 64,
		Trace:      sp,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	for i := 0; i < 8; i++ {
		if _, err := svc.SubmitWait(context.Background(), 1); err != nil {
			b.Fatal(err)
		}
	}
	exp := obs.NewExporter()
	exp.Register(obs.NewServiceCollector(svc))
	exp.Register(obs.NewSpoolCollector(sp))
	body := exp.Render() // warm-up sizes the buffer and label caches
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exp.Render()
	}
}
