package obs_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"

	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/journal"
	"byzex/internal/obs"
	"byzex/internal/protocols/alg1"
	"byzex/internal/service"
	"byzex/internal/trace"
)

func template(seed int64) core.Config {
	return core.Config{Protocol: alg1.Protocol{}, N: 7, T: 3, Seed: seed}
}

// parseExposition validates the Prometheus text format strictly enough to
// catch renderer bugs — every sample's family must have been declared by a
// preceding HELP+TYPE pair, no family may be declared twice, every sample
// line must be `name[{labels}] value` — and returns the samples keyed by
// their full name (labels included).
func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	declared := make(map[string]string) // family -> type
	var pendingHelp string
	current := ""
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: HELP without text: %q", ln+1, line)
			}
			pendingHelp = name
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			name, typ := fields[0], fields[1]
			if typ != "gauge" && typ != "counter" {
				t.Fatalf("line %d: unknown type %q", ln+1, typ)
			}
			if name != pendingHelp {
				t.Fatalf("line %d: TYPE %s not preceded by its HELP (saw %q)", ln+1, name, pendingHelp)
			}
			if _, dup := declared[name]; dup {
				t.Fatalf("line %d: family %s declared twice", ln+1, name)
			}
			declared[name] = typ
			current = name
		case line == "":
			t.Fatalf("line %d: blank line in exposition", ln+1)
		default:
			idx := strings.LastIndexByte(line, ' ')
			if idx < 0 {
				t.Fatalf("line %d: malformed sample: %q", ln+1, line)
			}
			name, valText := line[:idx], line[idx+1:]
			family, _, _ := strings.Cut(name, "{")
			if family != current {
				t.Fatalf("line %d: sample %s outside its family block (current %s)", ln+1, name, current)
			}
			if _, ok := declared[family]; !ok {
				t.Fatalf("line %d: sample %s has no HELP/TYPE", ln+1, name)
			}
			v, err := strconv.ParseFloat(valText, 64)
			if err != nil {
				t.Fatalf("line %d: bad value %q: %v", ln+1, valText, err)
			}
			if _, dup := samples[name]; dup {
				t.Fatalf("line %d: duplicate sample %s", ln+1, name)
			}
			samples[name] = v
		}
	}
	return samples
}

// newObservedService builds a service traced through a spool, with both
// collectors registered — the baserve wiring in miniature.
func newObservedService(t *testing.T, cfg service.Config, ringCap int) (*service.Service, *trace.Spool, *obs.Exporter) {
	t.Helper()
	sp := trace.NewSpool(io.Discard, ringCap)
	cfg.Trace = sp
	svc, err := service.New(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	exp := obs.NewExporter()
	exp.Register(obs.NewServiceCollector(svc))
	exp.Register(obs.NewSpoolCollector(sp))
	return svc, sp, exp
}

// TestScrapeMatchesStatsAndSummary is the tentpole's self-check acceptance:
// the rendered exposition's counters must equal the same run's
// service.Stats and the spool's live trace Summary — the exporter is a
// view, never a second bookkeeper.
func TestScrapeMatchesStatsAndSummary(t *testing.T) {
	const values = 60
	svc, sp, exp := newObservedService(t, service.Config{
		Template:    template(11),
		MaxInFlight: 4,
		QueueDepth:  values,
	}, 8)
	var wg sync.WaitGroup
	for i := 0; i < values; i++ {
		ch, err := svc.Submit(ident.Value(i % 2))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() { defer wg.Done(); <-ch }()
	}
	wg.Wait()
	svc.Close()

	got := parseExposition(t, string(exp.Render()))
	st := svc.Stats()
	sum := sp.Stats().Summary
	checks := []struct {
		sample string
		want   float64
	}{
		{"byzex_service_submitted_total", float64(st.Submitted)},
		{"byzex_service_values_decided_total", float64(st.ValuesDecided)},
		{"byzex_service_instances_total", float64(st.Instances)},
		{"byzex_service_queue_high_water", float64(st.QueueHighWater)},
		{"byzex_service_shards", float64(st.Shards)},
		{"byzex_service_batch_target", float64(st.BatchTarget)},
		{`byzex_service_rejected_total{reason="full"}`, float64(st.RejectedFull)},
		{`byzex_trace_events_total{kind="enqueue"}`, float64(sum.Enqueued)},
		{`byzex_trace_events_total{kind="instance-done"}`, float64(sum.InstancesDone)},
		{"byzex_trace_spool_dropped_total", float64(sp.Stats().Dropped)},
	}
	for _, c := range checks {
		v, ok := got[c.sample]
		if !ok {
			t.Fatalf("exposition missing %s", c.sample)
		}
		if v != c.want {
			t.Errorf("%s = %v, want %v", c.sample, v, c.want)
		}
	}
	// Cross-plane agreement: the trace stream and the service stats counted
	// the same traffic.
	if got["byzex_service_submitted_total"] != got[`byzex_trace_events_total{kind="enqueue"}`] {
		t.Errorf("submitted %v != enqueue events %v",
			got["byzex_service_submitted_total"], got[`byzex_trace_events_total{kind="enqueue"}`])
	}
	if got["byzex_service_instances_total"] != got[`byzex_trace_events_total{kind="instance-done"}`] {
		t.Errorf("instances %v != instance-done events %v",
			got["byzex_service_instances_total"], got[`byzex_trace_events_total{kind="instance-done"}`])
	}
	// Per-shard instance counts partition the total.
	var perShard float64
	for i := 0; i < st.Shards; i++ {
		perShard += got[fmt.Sprintf(`byzex_service_shard_instances_total{shard="%d"}`, i)]
	}
	if perShard != float64(st.Instances) {
		t.Errorf("shard instances sum to %v, want %v", perShard, st.Instances)
	}
}

// TestScrapeUnderLoad is the concurrency acceptance: scrapes proceed while
// 100 submissions are in flight, and every intermediate exposition parses
// cleanly (run under -race via make check).
func TestScrapeUnderLoad(t *testing.T) {
	const inflight = 100
	svc, _, exp := newObservedService(t, service.Config{
		Template:    template(13),
		MaxInFlight: 4,
		QueueDepth:  inflight,
	}, 32)

	done := make(chan struct{})
	var scrapers sync.WaitGroup
	for s := 0; s < 4; s++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			// Concurrent scrapers use WriteTo: the copy-out happens under
			// the exporter's mutex (Render's shared buffer is single-scraper).
			var buf bytes.Buffer
			for {
				select {
				case <-done:
					return
				default:
				}
				buf.Reset()
				if _, err := exp.WriteTo(&buf); err != nil {
					t.Error(err)
					return
				}
				parseExposition(t, buf.String())
			}
		}()
	}

	var wg sync.WaitGroup
	for i := 0; i < inflight; i++ {
		ch, err := svc.Submit(ident.Value(i % 2))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() { defer wg.Done(); <-ch }()
	}
	wg.Wait()
	close(done)
	scrapers.Wait()
	svc.Close()

	got := parseExposition(t, string(exp.Render()))
	if got["byzex_service_submitted_total"] != inflight {
		t.Fatalf("final scrape saw %v submissions, want %d", got["byzex_service_submitted_total"], inflight)
	}
}

// TestServeEndpoint covers the HTTP plane end to end: obs.Serve on a real
// listener, a plain GET of /metrics, correct content type, parseable body —
// what `curl <metrics-addr>/metrics` sees during a baload run.
func TestServeEndpoint(t *testing.T) {
	svc, _, exp := newObservedService(t, service.Config{
		Template:   template(17),
		QueueDepth: 8,
	}, 8)
	defer svc.Close()
	if _, err := svc.SubmitWait(context.Background(), 1); err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- obs.Serve(ctx, ln, exp) }()

	resp, err := http.Get("http://" + ln.Addr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("content type %q, want %q", ct, obs.ContentType)
	}
	got := parseExposition(t, string(body))
	if got["byzex_service_submitted_total"] != 1 {
		t.Fatalf("scraped submitted=%v, want 1", got["byzex_service_submitted_total"])
	}

	cancel()
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve returned %v after cancel, want nil", err)
	}
}

// TestRenderZeroAlloc pins the scrape-path contract: after the first render
// sizes the buffer and the label caches, a scrape allocates nothing.
func TestRenderZeroAlloc(t *testing.T) {
	svc, _, exp := newObservedService(t, service.Config{
		Template:   template(19),
		QueueDepth: 8,
	}, 8)
	defer svc.Close()
	if _, err := svc.SubmitWait(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	exp.Render() // warm-up: buffer + shard labels
	allocs := testing.AllocsPerRun(200, func() {
		exp.Render()
	})
	if allocs > 0 {
		t.Fatalf("Render allocates %.1f/op after warm-up, want 0", allocs)
	}
}

// TestDescValidation pins the construction-time guards.
func TestDescValidation(t *testing.T) {
	for _, bad := range []func(){
		func() { obs.NewDesc("byzex_ok_total", "histogram", "h") },
		func() { obs.NewDesc("0bad", "gauge", "h") },
		func() { obs.NewDesc("bad-name", "counter", "h") },
		func() { obs.NewDesc("", "gauge", "h") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid Desc did not panic")
				}
			}()
			bad()
		}()
	}
	// Escaping: label values with quotes and newlines stay one well-formed line.
	d := obs.NewDesc("byzex_escape_test", "gauge", "line one\nline \\ two")
	l := d.Label("k", "va\"l\nue\\")
	var w obs.Writer
	w.Family(d)
	w.LabelUint(l, 3)
	got := parseExposition(t, string(w.Bytes()))
	if got[`byzex_escape_test{k="va\"l\nue\\"}`] != 3 {
		t.Fatalf("escaped sample not found: %q", w.Bytes())
	}
}

// TestJournalScrape pins the durability plane on /metrics: a journaled
// service's scrape must expose the writer's record/checkpoint/sync/segment
// counters, equal to the journal's own Stats — the collector is a view over
// journal.Writer, never a second bookkeeper.
func TestJournalScrape(t *testing.T) {
	jw, rec, err := journal.Open(t.TempDir(), journal.Options{Template: template(17)})
	if err != nil {
		t.Fatal(err)
	}
	svc, _, exp := newObservedService(t, service.Config{
		Template:      template(17),
		Journal:       jw,
		FirstInstance: rec.FirstInstance(),
		MaxInFlight:   4,
		QueueDepth:    16,
	}, 8)
	exp.Register(obs.NewJournalCollector(jw))
	jw.SetReplayed(0)

	const values = 10
	var wg sync.WaitGroup
	for i := 0; i < values; i++ {
		ch, err := svc.Submit(ident.Value(i % 2))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() { defer wg.Done(); <-ch }()
	}
	wg.Wait()
	svc.Close()
	if err := jw.Err(); err != nil {
		t.Fatal(err)
	}

	got := parseExposition(t, string(exp.Render()))
	js := jw.Stats()
	if js.Records != values || js.Checkpoints != 1 {
		t.Fatalf("writer stats %+v", js)
	}
	for sample, want := range map[string]float64{
		"byzex_journal_records_total":         float64(js.Records),
		"byzex_journal_checkpoints_total":     float64(js.Checkpoints),
		"byzex_journal_bytes_total":           float64(js.Bytes),
		"byzex_journal_syncs_total":           float64(js.Syncs),
		"byzex_journal_segments":              float64(js.Segments),
		"byzex_journal_pruned_segments_total": float64(js.Pruned),
		"byzex_journal_replayed_total":        0,
		// The failure families exist (and read zero) on a healthy journal,
		// so an alert on them can be written before the first incident.
		"byzex_journal_checkpoint_failures_total": 0,
		"byzex_journal_prune_failures_total":      0,
	} {
		v, ok := got[sample]
		if !ok {
			t.Fatalf("exposition missing %s", sample)
		}
		if v != want {
			t.Errorf("%s = %v, want %v", sample, v, want)
		}
	}
	if got["byzex_journal_records_total"] != got["byzex_service_submitted_total"] {
		t.Errorf("journal records %v != submitted %v (singleton batches)",
			got["byzex_journal_records_total"], got["byzex_service_submitted_total"])
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
}
