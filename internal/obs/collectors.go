package obs

import (
	"strconv"

	"byzex/internal/journal"
	"byzex/internal/service"
	"byzex/internal/trace"
)

// The serving-layer families. Counter versus gauge follows the Stats field
// semantics: monotone totals are counters; queue depth, shard count and the
// batching controller's current target are gauges (QueueHighWater is a
// high-water mark — monotone, but not a sum, so it is exported as a gauge
// per Prometheus convention for watermarks).
var (
	dSubmitted = NewDesc("byzex_service_submitted_total", "counter",
		"Values admitted into the service's bounded queue.")
	dRejected = NewDesc("byzex_service_rejected_total", "counter",
		"Submissions rejected, by reason (full: queue at capacity; draining: service shutting down).")
	dInstances = NewDesc("byzex_service_instances_total", "counter",
		"Agreement instances delivered.")
	dInstancesFailed = NewDesc("byzex_service_instances_failed_total", "counter",
		"Delivered instances that failed to reach agreement.")
	dValuesDecided = NewDesc("byzex_service_values_decided_total", "counter",
		"Values resolved by committed instances (the amortization denominator).")
	dQueueDepth = NewDesc("byzex_service_queue_depth", "gauge",
		"Admission-queue depth at scrape time.")
	dQueueHighWater = NewDesc("byzex_service_queue_high_water", "gauge",
		"Deepest the admission queue has been.")
	dMsgsCorrect = NewDesc("byzex_service_messages_correct_total", "counter",
		"Correct-sender messages summed over delivered instances.")
	dSigsCorrect = NewDesc("byzex_service_signatures_correct_total", "counter",
		"Correct-sender signatures summed over delivered instances.")
	dBytesCorrect = NewDesc("byzex_service_bytes_correct_total", "counter",
		"Correct-sender payload bytes summed over delivered instances.")
	dLatencyMax = NewDesc("byzex_service_latency_max_seconds", "gauge",
		"Largest submit-to-delivery latency of any resolved value.")
	dLatencySum = NewDesc("byzex_service_latency_seconds_total", "counter",
		"Submit-to-delivery latency summed over resolved values; divide by byzex_service_values_decided_total for the mean.")
	dShards = NewDesc("byzex_service_shards", "gauge",
		"Configured shard-worker count.")
	dShardInstances = NewDesc("byzex_service_shard_instances_total", "counter",
		"Instances delivered per shard worker (the load-balance gauge).")
	dBatchTarget = NewDesc("byzex_service_batch_target", "gauge",
		"The batching controller's current target batch size.")
	dBatchGrows = NewDesc("byzex_service_batch_grows_total", "counter",
		"Adaptive batching target increases.")
	dBatchShrinks = NewDesc("byzex_service_batch_shrinks_total", "counter",
		"Adaptive batching target decreases.")

	labelRejectedFull     = dRejected.Label("reason", "full")
	labelRejectedDraining = dRejected.Label("reason", "draining")
)

// ServiceCollector exports one service's Stats. The snapshot holder and the
// per-shard labels are cached on the collector, so steady-state collection
// is allocation-free.
type ServiceCollector struct {
	svc    *service.Service
	stats  service.Stats
	shards []Label
}

// NewServiceCollector returns a collector over svc.
func NewServiceCollector(svc *service.Service) *ServiceCollector {
	return &ServiceCollector{svc: svc}
}

// Collect implements Collector: one StatsInto snapshot, then appends.
func (c *ServiceCollector) Collect(w *Writer) {
	c.svc.StatsInto(&c.stats)
	st := &c.stats
	w.Uint(dSubmitted, st.Submitted)
	w.Family(dRejected)
	w.LabelUint(labelRejectedFull, st.RejectedFull)
	w.LabelUint(labelRejectedDraining, st.RejectedDraining)
	w.Uint(dInstances, st.Instances)
	w.Uint(dInstancesFailed, st.InstancesFailed)
	w.Uint(dValuesDecided, st.ValuesDecided)
	w.Int(dQueueDepth, int64(st.QueueDepth))
	w.Int(dQueueHighWater, int64(st.QueueHighWater))
	w.Uint(dMsgsCorrect, st.MessagesCorrect)
	w.Uint(dSigsCorrect, st.SignaturesCorrect)
	w.Uint(dBytesCorrect, st.BytesCorrect)
	w.Float(dLatencyMax, st.MaxLatency.Seconds())
	w.Float(dLatencySum, st.TotalLatency.Seconds())
	w.Int(dShards, int64(st.Shards))
	w.Family(dShardInstances)
	for len(c.shards) < len(st.ShardInstances) {
		c.shards = append(c.shards, dShardInstances.Label("shard", strconv.Itoa(len(c.shards))))
	}
	for i, n := range st.ShardInstances {
		w.LabelUint(c.shards[i], n)
	}
	w.Int(dBatchTarget, int64(st.BatchTarget))
	w.Uint(dBatchGrows, st.BatchGrows)
	w.Uint(dBatchShrinks, st.BatchShrinks)
}

// The journal families. All monotone except the live segment count.
var (
	dJournalRecords = NewDesc("byzex_journal_records_total", "counter",
		"Admission records appended to the write-ahead journal.")
	dJournalCheckpoints = NewDesc("byzex_journal_checkpoints_total", "counter",
		"Checkpoint records appended to the journal.")
	dJournalBytes = NewDesc("byzex_journal_bytes_total", "counter",
		"Framed bytes written to journal segments (headers included).")
	dJournalSyncs = NewDesc("byzex_journal_syncs_total", "counter",
		"Journal fsync calls; records/syncs is the realized group-commit batch size.")
	dJournalSegments = NewDesc("byzex_journal_segments", "gauge",
		"Live journal segment files.")
	dJournalPruned = NewDesc("byzex_journal_pruned_segments_total", "counter",
		"Journal segment files deleted by checkpoints.")
	dJournalReplayed = NewDesc("byzex_journal_replayed_total", "counter",
		"Instances re-executed from the journal at the last recovery.")
	dJournalCheckpointFailures = NewDesc("byzex_journal_checkpoint_failures_total", "counter",
		"Checkpoint writes that failed (including the drain checkpoint, whose error the service swallows).")
	dJournalPruneFailures = NewDesc("byzex_journal_prune_failures_total", "counter",
		"Failed segment prunes; retried on the flusher tick and at the next checkpoint.")
)

// JournalCollector exports a journal writer's Stats. Same shape as the
// service collector: one cached snapshot per scrape, allocation-free in
// steady state.
type JournalCollector struct {
	w     *journal.Writer
	stats journal.Stats
}

// NewJournalCollector returns a collector over w.
func NewJournalCollector(w *journal.Writer) *JournalCollector {
	return &JournalCollector{w: w}
}

// Collect implements Collector: one StatsInto snapshot, then appends.
func (c *JournalCollector) Collect(w *Writer) {
	c.w.StatsInto(&c.stats)
	st := &c.stats
	w.Uint(dJournalRecords, st.Records)
	w.Uint(dJournalCheckpoints, st.Checkpoints)
	w.Uint(dJournalBytes, st.Bytes)
	w.Uint(dJournalSyncs, st.Syncs)
	w.Uint(dJournalSegments, st.Segments)
	w.Uint(dJournalPruned, st.Pruned)
	w.Uint(dJournalReplayed, st.Replayed)
	w.Uint(dJournalCheckpointFailures, st.CheckpointFailures)
	w.Uint(dJournalPruneFailures, st.PruneFailures)
}

// The trace families. Per-kind event counts use the wire names batrace
// reports, so a scrape and `batrace -counts` read the same vocabulary.
var (
	dTraceEvents = NewDesc("byzex_trace_events_total", "counter",
		"Trace events emitted, by kind (counted before any spool drop).")
	dSpoolFlushed = NewDesc("byzex_trace_spool_flushed_total", "counter",
		"Trace events written through to the spool's JSONL output.")
	dSpoolDropped = NewDesc("byzex_trace_spool_dropped_total", "counter",
		"Admission-scoped trace events dropped by the spool's bounded ring.")
	dSpoolRingLen = NewDesc("byzex_trace_spool_ring_events", "gauge",
		"Admission-scoped events currently retained in the spool ring.")
	dSpoolRingCap = NewDesc("byzex_trace_spool_ring_capacity", "gauge",
		"Fixed capacity of the spool's admission-scoped ring.")
	dVerifyHits = NewDesc("byzex_trace_verify_hits_total", "counter",
		"Signature links accepted from the verified-prefix cache.")
	dVerifyMisses = NewDesc("byzex_trace_verify_misses_total", "counter",
		"Signature links verified with real cryptography.")
	dTraceBatchGrows = NewDesc("byzex_trace_batch_grows_total", "counter",
		"Adaptive batching target increases observed in the trace stream.")
	dTraceBatchShrinks = NewDesc("byzex_trace_batch_shrinks_total", "counter",
		"Adaptive batching target decreases observed in the trace stream.")
	dFaults = NewDesc("byzex_trace_faults_total", "counter",
		"Fault-plan actions observed in the trace stream, by kind.")

	kindLabels = func() [trace.NumKinds]Label {
		var out [trace.NumKinds]Label
		for k := 1; k < trace.NumKinds; k++ {
			out[k] = dTraceEvents.Label("kind", trace.Kind(k).String())
		}
		return out
	}()
	labelFaultDrop    = dFaults.Label("kind", "drop")
	labelFaultDelay   = dFaults.Label("kind", "delay")
	labelFaultDup     = dFaults.Label("kind", "dup")
	labelFaultReorder = dFaults.Label("kind", "reorder")
	labelFaultCrash   = dFaults.Label("kind", "crash")
)

// SpoolCollector exports a trace spool's live counters: per-kind event
// totals, the bounded-ring gauges and drop counter, and the Summary-derived
// counters (signature-cache hits and misses, batch-adapt moves, fault
// actions). Totals count every emitted event — the spool aggregates before
// it drops — so they match trace.Summarize over the full stream.
type SpoolCollector struct {
	spool *trace.Spool
	stats trace.SpoolStats
}

// NewSpoolCollector returns a collector over sp.
func NewSpoolCollector(sp *trace.Spool) *SpoolCollector {
	return &SpoolCollector{spool: sp}
}

// Collect implements Collector: one StatsInto snapshot, then appends.
func (c *SpoolCollector) Collect(w *Writer) {
	c.spool.StatsInto(&c.stats)
	st := &c.stats
	w.Family(dTraceEvents)
	for k := 1; k < trace.NumKinds; k++ {
		w.LabelUint(kindLabels[k], st.Kinds[k])
	}
	w.Uint(dSpoolFlushed, st.Flushed)
	w.Uint(dSpoolDropped, st.Dropped)
	w.Int(dSpoolRingLen, int64(st.RingLen))
	w.Int(dSpoolRingCap, int64(st.RingCap))
	w.Uint(dVerifyHits, uint64(st.Summary.VerifyHits))
	w.Uint(dVerifyMisses, uint64(st.Summary.VerifyMisses))
	w.Uint(dTraceBatchGrows, uint64(st.Summary.BatchGrows))
	w.Uint(dTraceBatchShrinks, uint64(st.Summary.BatchShrinks))
	w.Family(dFaults)
	w.LabelUint(labelFaultDrop, uint64(st.Summary.FaultDrops))
	w.LabelUint(labelFaultDelay, uint64(st.Summary.FaultDelays))
	w.LabelUint(labelFaultDup, uint64(st.Summary.FaultDups))
	w.LabelUint(labelFaultReorder, uint64(st.Summary.FaultReorders))
	w.LabelUint(labelFaultCrash, uint64(st.Summary.FaultCrashes))
}
