package lowerbound_test

import (
	"context"
	"fmt"
	"log"

	"byzex/internal/lowerbound"
	"byzex/internal/protocols/alg1"
	"byzex/internal/protocols/strawman"
)

// ExampleReplayAttack mounts Theorem 1's indistinguishability construction
// against a protocol that spends fewer than t+1 signature exchanges per
// processor: the coalition A(p) behaves toward the victim as in the
// value-0 history and toward everyone else as in the value-1 history, and
// Byzantine Agreement breaks.
func ExampleReplayAttack() {
	out, err := lowerbound.ReplayAttack(context.Background(), strawman.Broadcast{}, 9, 3, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("coalition size:", out.Faulty.Len())
	fmt.Println("agreement broken:", out.Broke())
	// Output:
	// coalition size: 1
	// agreement broken: true
}

// ExampleStarvationAudit measures Theorem 2's requirement on a correct
// protocol: each starved coalition member still receives at least ⌈1+t/2⌉
// messages from the correct processors.
func ExampleStarvationAudit() {
	audit, err := lowerbound.StarvationAudit(context.Background(),
		alg1.Protocol{}, 9, 4, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("bound respected:", audit.Satisfied())
	// Output:
	// bound respected: true
}
