package lowerbound

import (
	"context"
	"fmt"

	"byzex/internal/adversary"
	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/protocol"
	"byzex/internal/sig"
)

// MsgAudit is the Theorem 2 measurement: the starved coalition B and the
// number of messages the correct processors were forced to send into it.
type MsgAudit struct {
	N, T int
	// B is the starved coalition (size ⌊1+t/2⌋).
	B ident.Set
	// IgnoreFirst is how many leading messages each member discarded
	// (⌈t/2⌉).
	IgnoreFirst int
	// PerMember counts messages from correct senders received by each B
	// member over the whole run.
	PerMember map[ident.ProcID]int
	// MinReceived is the smallest per-member count; Theorem 2 requires it
	// to reach ⌈1+t/2⌉ for any correct protocol.
	MinReceived int
	// RequiredPerMember is ⌈1+t/2⌉.
	RequiredPerMember int
	// TotalMessages counts all messages sent by correct processors in the
	// starvation history H'.
	TotalMessages int
	// Bound is the paper's max{(n-1)/2, (1+t/2)²}.
	Bound int
}

// Satisfied reports whether every starved member still received enough
// messages (the structural requirement Theorem 2 proves for correct
// protocols).
func (a *MsgAudit) Satisfied() bool { return a.MinReceived >= a.RequiredPerMember }

// starveSet picks B: the ⌊1+t/2⌋ highest non-transmitter identities.
func starveSet(n, t int, transmitter ident.ProcID) ident.Set {
	size := 1 + t/2
	out := make(ident.Set)
	for id := n - 1; id >= 0 && out.Len() < size; id-- {
		p := ident.ProcID(id)
		if p == transmitter {
			continue
		}
		out.Add(p)
	}
	return out
}

// StarvationAudit runs the Theorem 2 history H': the transmitter correctly
// sends 1 (the value no processor adopts without receiving messages), the
// coalition B ignores its first ⌈t/2⌉ incoming messages and never talks
// within B, and everything else is correct. It returns how many messages
// the correct processors sent to each member of B. Agreement among the
// correct processors must still hold (H' is a valid t-faulty history), and
// correct protocols must satisfy MinReceived ≥ ⌈1+t/2⌉.
func StarvationAudit(ctx context.Context, p protocol.Protocol, n, t int, scheme sig.Scheme) (*MsgAudit, error) {
	if scheme == nil {
		scheme = sig.NewHMAC(n, 0xD01Ef)
	}
	const transmitter = ident.ProcID(0)
	b := starveSet(n, t, transmitter)
	ignore := (t + 1) / 2
	adv := adversary.StarveB{B: b, IgnoreFirst: ignore}
	res, err := core.Run(ctx, core.Config{
		Protocol: p, N: n, T: t, Value: ident.V1, Scheme: scheme,
		Adversary: adv, FaultyOverride: b, Record: true,
	})
	if err != nil {
		return nil, err
	}
	// H' is a valid t-faulty history: the correct processors must agree on
	// the transmitter's value.
	if _, err := res.Decision(transmitter, ident.V1); err != nil {
		return nil, fmt.Errorf("lowerbound: starvation history broke the protocol itself: %w", err)
	}

	audit := &MsgAudit{
		N: n, T: t,
		B:                 b,
		IgnoreFirst:       ignore,
		PerMember:         make(map[ident.ProcID]int, b.Len()),
		RequiredPerMember: 1 + (t+1)/2,
		TotalMessages:     res.History.Messages(),
		Bound:             core.MsgLowerBound(n, t),
	}
	for q := range b {
		count := 0
		for _, ph := range res.History.Phases {
			for _, e := range ph {
				if e.To == q && !b.Has(e.From) {
					count++
				}
			}
		}
		audit.PerMember[q] = count
	}
	audit.MinReceived = -1
	for _, c := range audit.PerMember {
		if audit.MinReceived < 0 || c < audit.MinReceived {
			audit.MinReceived = c
		}
	}
	return audit, nil
}

// OmissionAttack mounts the companion "H”" construction: take the
// processors that send to a chosen victim in the fault-free value-1 run; if
// there are at most t of them, corrupt exactly that coalition and have it
// run the protocol correctly while withholding everything from the victim.
// The correct victim then sees an empty history and falls to the default
// decision while everybody else decides 1.
//
// Returns ErrBoundRespected if every processor receives messages from more
// than t distinct senders (so no coalition fits the fault budget).
func OmissionAttack(ctx context.Context, p protocol.Protocol, n, t int, scheme sig.Scheme) (*AttackOutcome, error) {
	if scheme == nil {
		scheme = sig.NewHMAC(n, 0xD01Ef)
	}
	resG, err := recordRun(ctx, p, n, t, ident.V1, scheme)
	if err != nil {
		return nil, err
	}
	// Choose the victim with the fewest distinct senders, excluding the
	// transmitter.
	victim := ident.None
	var coalition ident.Set
	for id := 1; id < n; id++ {
		q := ident.ProcID(id)
		senders := make(ident.Set)
		for _, ph := range resG.History.Phases {
			for _, e := range ph {
				if e.To == q {
					senders.Add(e.From)
				}
			}
		}
		if victim == ident.None || senders.Len() < coalition.Len() {
			victim, coalition = q, senders
		}
	}
	if coalition.Len() > t {
		return nil, fmt.Errorf("%w: every processor hears from > t senders (min %d)", ErrBoundRespected, coalition.Len())
	}

	adv := adversary.OmitTowards{FaultySet: coalition, Victims: ident.NewSet(victim)}
	res, err := core.Run(ctx, core.Config{
		Protocol: p, N: n, T: t, Value: ident.V1, Scheme: scheme,
		Adversary: adv, FaultyOverride: coalition,
	})
	if err != nil {
		return nil, err
	}
	return outcome(res, victim, ident.V1, 0), nil
}
