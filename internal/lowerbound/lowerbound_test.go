package lowerbound_test

import (
	"context"
	"errors"
	"testing"

	"byzex/internal/core"
	"byzex/internal/lowerbound"
	"byzex/internal/protocol"
	"byzex/internal/protocols/alg1"
	"byzex/internal/protocols/alg2"
	"byzex/internal/protocols/alg3"
	"byzex/internal/protocols/alg5"
	"byzex/internal/protocols/dolevstrong"
	"byzex/internal/protocols/lsp"
	"byzex/internal/protocols/phaseking"
	"byzex/internal/protocols/strawman"
	"byzex/internal/sig"
)

var bg = context.Background()

func TestAuditCorrectProtocolsSatisfyTheorem1(t *testing.T) {
	cases := []struct {
		p    protocol.Protocol
		n, t int
	}{
		{alg1.Protocol{}, 9, 4},
		{alg1.Protocol{}, 17, 8},
		{alg2.Protocol{}, 9, 4},
		{dolevstrong.Protocol{}, 9, 4},
		{dolevstrong.Protocol{}, 16, 5},
		{alg3.Protocol{S: 4}, 33, 3},
		{alg5.Protocol{S: 2}, 25, 2},
	}
	for _, tc := range cases {
		audit, err := lowerbound.AuditSignatures(bg, tc.p, tc.n, tc.t, nil)
		if err != nil {
			t.Fatalf("%s: %v", tc.p.Name(), err)
		}
		if !audit.Satisfied() {
			t.Errorf("%s n=%d t=%d: min |A(p)| = %d < t+1 = %d (A(%v))",
				tc.p.Name(), tc.n, tc.t, audit.MinAPSize, tc.t+1, audit.MinAP)
		}
		// Theorem 1: one of the two fault-free histories carries at least
		// n(t+1)/4 signatures.
		most := audit.HSignatures
		if audit.GSignatures > most {
			most = audit.GSignatures
		}
		if most < audit.Bound {
			t.Errorf("%s n=%d t=%d: max(H,G) signatures %d < bound %d",
				tc.p.Name(), tc.n, tc.t, most, audit.Bound)
		}
	}
}

func TestAPSumImpliesSignatureVolume(t *testing.T) {
	// The proof's intermediate step: Σ_p |A(p)| ≥ n(t+1) forces the total
	// signature-exchange volume. We verify the sum over all non-transmitter
	// processors for a correct protocol.
	n, tt := 9, 4
	audit, err := lowerbound.AuditSignatures(bg, alg1.Protocol{}, n, tt, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Re-derive per-processor A(p) sizes from the audit: MinAPSize ≥ t+1
	// already implies the sum bound (n-1)(t+1); the theorem's n(t+1)
	// includes the transmitter's own exchanges, which we spot-check via
	// the total signature counts instead.
	if audit.MinAPSize < tt+1 {
		t.Fatalf("min |A(p)| = %d", audit.MinAPSize)
	}
	if audit.HSignatures+audit.GSignatures < (n-1)*(tt+1)/2 {
		t.Fatalf("combined signature volume %d below the sum bound %d",
			audit.HSignatures+audit.GSignatures, (n-1)*(tt+1)/2)
	}
}

func TestAuditUnauthenticatedBaselines(t *testing.T) {
	// Corollary 1's reading: every unauthenticated message carries the
	// sender's implicit signature, so the A(p) audit applies to LSP and
	// Phase King too — correct protocols must exchange with ≥ t+1 partners.
	cases := []struct {
		p    protocol.Protocol
		n, t int
	}{
		{lsp.Protocol{}, 7, 2},
		{lsp.Protocol{}, 10, 3},
		{phaseking.Protocol{}, 9, 2},
		{phaseking.Protocol{}, 13, 3},
	}
	for _, tc := range cases {
		audit, err := lowerbound.AuditSignatures(bg, tc.p, tc.n, tc.t, sig.NewPlain(tc.n))
		if err != nil {
			t.Fatalf("%s: %v", tc.p.Name(), err)
		}
		if !audit.Satisfied() {
			t.Errorf("%s n=%d t=%d: min |A(p)| = %d < %d",
				tc.p.Name(), tc.n, tc.t, audit.MinAPSize, tc.t+1)
		}
	}
}

func TestAuditDeterministic(t *testing.T) {
	a1, err := lowerbound.AuditSignatures(bg, alg1.Protocol{}, 9, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := lowerbound.AuditSignatures(bg, alg1.Protocol{}, 9, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a1.MinAP != a2.MinAP || a1.HSignatures != a2.HSignatures || a1.GSignatures != a2.GSignatures {
		t.Fatal("audits differ across identical invocations")
	}
}

func TestStarvationAuditAgainstAlg3AndAlg5(t *testing.T) {
	// The general-n algorithms under the B-set construction: Theorem 2's
	// per-member requirement must hold there too.
	cases := []struct {
		p    protocol.Protocol
		n, t int
	}{
		{alg3.Protocol{S: 4}, 33, 3},
		{alg5.Protocol{S: 2}, 25, 2},
	}
	for _, tc := range cases {
		audit, err := lowerbound.StarvationAudit(bg, tc.p, tc.n, tc.t, nil)
		if err != nil {
			t.Fatalf("%s: %v", tc.p.Name(), err)
		}
		if !audit.Satisfied() {
			t.Errorf("%s: starved member received %d < %d",
				tc.p.Name(), audit.MinReceived, audit.RequiredPerMember)
		}
	}
}

func TestReplayAttackNotApplicableToCorrectProtocols(t *testing.T) {
	_, err := lowerbound.ReplayAttack(bg, alg1.Protocol{}, 9, 4, nil)
	if !errors.Is(err, lowerbound.ErrBoundRespected) {
		t.Fatalf("alg1 should respect the bound, got %v", err)
	}
}

func TestReplayAttackBreaksStrawmanBroadcast(t *testing.T) {
	// The broadcast strawman spends only n-1 signatures; Theorem 1's
	// construction must break it for any t ≥ 1.
	for _, tc := range []struct{ n, t int }{
		{5, 1}, {9, 3}, {16, 4},
	} {
		out, err := lowerbound.ReplayAttack(bg, strawman.Broadcast{}, tc.n, tc.t, nil)
		if err != nil {
			t.Fatalf("n=%d t=%d: %v", tc.n, tc.t, err)
		}
		if !out.Broke() {
			t.Errorf("n=%d t=%d: attack failed to break the strawman", tc.n, tc.t)
		}
		if !errors.Is(out.Violation, core.ErrDisagreement) && !errors.Is(out.Violation, core.ErrValidity) {
			t.Errorf("n=%d t=%d: unexpected violation %v", tc.n, tc.t, out.Violation)
		}
	}
}

func TestReplayAttackBreaksThinRelay(t *testing.T) {
	// Committee relays of width ≤ t-1 leave |A(p)| ≤ t for processors
	// outside the committee.
	out, err := lowerbound.ReplayAttack(bg, strawman.ThinRelay{RelayWidth: 2}, 12, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Broke() {
		t.Error("thin relay survived the replay attack")
	}
}

func TestStarvationAuditCorrectProtocols(t *testing.T) {
	cases := []struct {
		p    protocol.Protocol
		n, t int
	}{
		{alg1.Protocol{}, 9, 4},
		{alg1.Protocol{}, 13, 6},
		{alg2.Protocol{}, 9, 4},
		{dolevstrong.Protocol{}, 9, 4},
	}
	for _, tc := range cases {
		audit, err := lowerbound.StarvationAudit(bg, tc.p, tc.n, tc.t, nil)
		if err != nil {
			t.Fatalf("%s: %v", tc.p.Name(), err)
		}
		if !audit.Satisfied() {
			t.Errorf("%s n=%d t=%d: starved member received %d < %d messages",
				tc.p.Name(), tc.n, tc.t, audit.MinReceived, audit.RequiredPerMember)
		}
		if audit.TotalMessages < audit.Bound {
			t.Errorf("%s n=%d t=%d: %d total messages < Theorem 2 bound %d",
				tc.p.Name(), tc.n, tc.t, audit.TotalMessages, audit.Bound)
		}
	}
}

func TestOmissionAttackBreaksStrawman(t *testing.T) {
	out, err := lowerbound.OmissionAttack(bg, strawman.Broadcast{}, 8, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Broke() {
		t.Error("broadcast strawman survived the omission attack")
	}
}

func TestOmissionAttackNotApplicableToDolevStrong(t *testing.T) {
	// In Dolev-Strong every processor hears from everybody; no coalition of
	// ≤ t senders can isolate a victim.
	_, err := lowerbound.OmissionAttack(bg, dolevstrong.Protocol{}, 9, 3, nil)
	if !errors.Is(err, lowerbound.ErrBoundRespected) {
		t.Fatalf("expected bound respected, got %v", err)
	}
}
