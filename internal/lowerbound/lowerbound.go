// Package lowerbound makes the paper's two lower-bound theorems executable.
//
// Theorem 1 (Ω(nt) signatures, authenticated): in the fault-free histories
// H (value 0) and G (value 1), every processor p must exchange signatures
// with at least t+1 processors — the set A(p) — or else the coalition A(p)
// can behave toward p as in H and toward everybody else as in G, making two
// correct processors decide differently. AuditSignatures measures min
// |A(p)| and the signature totals; ReplayAttack mounts the construction
// against protocols that violate the bound.
//
// Theorem 2 (Ω(n + t²) messages, general): a coalition B of ⌊1+t/2⌋
// processors that ignore the first ⌈t/2⌉ messages they receive (and never
// talk to each other) must nevertheless each be sent ⌈1+t/2⌉ messages by
// the correct processors, or else one of them could be correct-but-starved
// and decide the default. StarvationAudit measures the per-member counts;
// OmissionAttack mounts the companion starvation construction.
package lowerbound

import (
	"context"
	"fmt"

	"byzex/internal/adversary"
	"byzex/internal/core"
	"byzex/internal/history"
	"byzex/internal/ident"
	"byzex/internal/protocol"
	"byzex/internal/sig"
)

// SigAudit is the Theorem 1 measurement over the two fault-free histories.
type SigAudit struct {
	N, T int
	// HSignatures and GSignatures are the signature totals sent by correct
	// processors in the value-0 and value-1 histories.
	HSignatures, GSignatures int
	// Bound is the paper's n(t+1)/4.
	Bound int
	// MinAP is the processor with the smallest signature-exchange set, and
	// MinAPSize that set's cardinality. Correct protocols need
	// MinAPSize ≥ t+1.
	MinAP     ident.ProcID
	MinAPSize int
	// APSet is the minimal A(p) itself.
	APSet ident.Set

	h, g *history.History
}

// Satisfied reports whether the audited protocol respects Theorem 1's
// structural requirement (every A(p) has more than t members).
func (a *SigAudit) Satisfied() bool { return a.MinAPSize >= a.T+1 }

// recordRun executes one fault-free recorded run.
func recordRun(ctx context.Context, p protocol.Protocol, n, t int, v ident.Value, scheme sig.Scheme) (*core.Result, error) {
	res, _, err := core.RunAndCheck(ctx, core.Config{
		Protocol: p, N: n, T: t, Value: v, Scheme: scheme, Record: true,
	})
	if err != nil {
		return nil, fmt.Errorf("lowerbound: fault-free run v=%v: %w", v, err)
	}
	return res, nil
}

// AuditSignatures runs the protocol fault-free with both values under one
// shared signature scheme and computes the Theorem 1 quantities.
func AuditSignatures(ctx context.Context, p protocol.Protocol, n, t int, scheme sig.Scheme) (*SigAudit, error) {
	if scheme == nil {
		scheme = sig.NewHMAC(n, 0xD01Ef)
	}
	resH, err := recordRun(ctx, p, n, t, ident.V0, scheme)
	if err != nil {
		return nil, err
	}
	resG, err := recordRun(ctx, p, n, t, ident.V1, scheme)
	if err != nil {
		return nil, err
	}
	h, g := resH.History, resG.History
	minP, minSet, err := history.MinAP(h, g)
	if err != nil {
		return nil, err
	}
	return &SigAudit{
		N: n, T: t,
		HSignatures: h.Signatures(),
		GSignatures: g.Signatures(),
		Bound:       core.SigLowerBound(n, t),
		MinAP:       minP,
		MinAPSize:   minSet.Len(),
		APSet:       minSet,
		h:           h, g: g,
	}, nil
}

// AttackOutcome describes a mounted lower-bound attack.
type AttackOutcome struct {
	// Victim is the processor the construction isolates.
	Victim ident.ProcID
	// Faulty is the corrupted coalition.
	Faulty ident.Set
	// Violation is the Byzantine Agreement condition that broke (nil means
	// the protocol survived the attack).
	Violation error
	// Decisions are the correct processors' decisions for inspection.
	Decisions map[ident.ProcID]ident.Value
}

// Broke reports whether the attack violated Byzantine Agreement.
func (o *AttackOutcome) Broke() bool { return o.Violation != nil }

// ReplayAttack mounts Theorem 1's indistinguishability construction against
// the protocol: it finds a processor p with |A(p)| ≤ t over the fault-free
// histories H and G, corrupts exactly A(p), and has each member replay its
// H-sends toward p and its G-sends toward everybody else. If the protocol
// really needed fewer than t+1 signature partners per processor, p decides
// H's value while the rest decide G's.
//
// It returns ErrBoundRespected if every A(p) is large enough to make the
// construction inapplicable (the expected result for correct protocols).
func ReplayAttack(ctx context.Context, p protocol.Protocol, n, t int, scheme sig.Scheme) (*AttackOutcome, error) {
	if scheme == nil {
		scheme = sig.NewHMAC(n, 0xD01Ef)
	}
	audit, err := AuditSignatures(ctx, p, n, t, scheme)
	if err != nil {
		return nil, err
	}
	if audit.Satisfied() {
		return nil, fmt.Errorf("%w: min |A(p)| = %d > t = %d", ErrBoundRespected, audit.MinAPSize, t)
	}

	victim := audit.MinAP
	coalition := audit.APSet
	schedules := make(map[ident.ProcID]*adversary.ReplaySchedule, coalition.Len())
	for q := range coalition {
		sched := &adversary.ReplaySchedule{
			Victim:   victim,
			ToVictim: make(map[int][]adversary.ReplayEdge),
			ToOthers: make(map[int][]adversary.ReplayEdge),
		}
		for phase, edges := range audit.h.SentBy(q) {
			for _, e := range edges {
				if e.To != victim {
					continue
				}
				sched.ToVictim[phase] = append(sched.ToVictim[phase], replayEdge(e))
			}
		}
		for phase, edges := range audit.g.SentBy(q) {
			for _, e := range edges {
				if e.To == victim {
					continue
				}
				sched.ToOthers[phase] = append(sched.ToOthers[phase], replayEdge(e))
			}
		}
		schedules[q] = sched
	}

	adv := adversary.Replay{FaultySet: coalition, Schedules: schedules}
	// Correct processors (including the transmitter, when it is not in the
	// coalition) live in the G-world: the transmitter's value is G's.
	res, err := core.Run(ctx, core.Config{
		Protocol: p, N: n, T: t, Value: ident.V1, Scheme: scheme,
		Adversary: adv, FaultyOverride: coalition,
	})
	if err != nil {
		return nil, err
	}
	return outcome(res, victim, ident.V1, ident.ProcID(0)), nil
}

// ErrBoundRespected is returned by the attack constructors when the audited
// protocol satisfies the bound and the construction cannot be mounted.
var ErrBoundRespected = fmt.Errorf("lowerbound: protocol respects the bound; attack not applicable")

func replayEdge(e history.Edge) adversary.ReplayEdge {
	return adversary.ReplayEdge{
		To:       e.To,
		Label:    e.Label,
		Signers:  e.Signers,
		SigTotal: e.SigTotal,
	}
}

// outcome checks the two agreement conditions over a finished run.
func outcome(res *core.Result, victim ident.ProcID, txValue ident.Value, transmitter ident.ProcID) *AttackOutcome {
	out := &AttackOutcome{
		Victim:    victim,
		Faulty:    res.Faulty,
		Decisions: make(map[ident.ProcID]ident.Value),
	}
	var (
		first   ident.Value
		haveAny bool
	)
	// Walk processors in id order: Decisions is a map, and the violation
	// message names the first divergent processor, which must not depend on
	// iteration order.
	for i := 0; i < len(res.Sim.Decisions); i++ {
		id := ident.ProcID(i)
		d := res.Sim.Decisions[id]
		if res.Faulty.Has(id) {
			continue
		}
		if !d.Decided {
			out.Violation = fmt.Errorf("%w: %v", core.ErrNoDecision, id)
			continue
		}
		out.Decisions[id] = d.Value
		if !haveAny {
			first, haveAny = d.Value, true
		} else if d.Value != first && out.Violation == nil {
			out.Violation = fmt.Errorf("%w: %v decided %v, others %v", core.ErrDisagreement, id, d.Value, first)
		}
	}
	if out.Violation == nil && haveAny && !res.Faulty.Has(transmitter) && first != txValue {
		out.Violation = fmt.Errorf("%w: decided %v, transmitter sent %v", core.ErrValidity, first, txValue)
	}
	return out
}
