package metrics_test

import (
	"strings"
	"testing"

	"byzex/internal/ident"
	"byzex/internal/metrics"
)

func TestCorrectFaultySplit(t *testing.T) {
	c := metrics.NewCollector(ident.NewSet(2))
	c.OnSend(1, 0, 2, 2, 100)
	c.OnSend(1, 2, 5, 3, 50) // faulty
	c.OnSend(2, 1, 1, 1, 10)

	r := c.Report()
	if r.MessagesCorrect != 2 || r.MessagesFaulty != 1 {
		t.Fatalf("messages %d/%d", r.MessagesCorrect, r.MessagesFaulty)
	}
	if r.SignaturesCorrect != 3 || r.SignaturesFaulty != 5 {
		t.Fatalf("signatures %d/%d", r.SignaturesCorrect, r.SignaturesFaulty)
	}
	if r.BytesCorrect != 110 {
		t.Fatalf("bytes %d", r.BytesCorrect)
	}
	if r.MaxMessageBytes != 100 {
		t.Fatalf("max message %d", r.MaxMessageBytes)
	}
	if r.MessagesTotal() != 3 || r.SignaturesTotal() != 8 {
		t.Fatal("totals wrong")
	}
	if r.Phases != 2 {
		t.Fatalf("phases %d", r.Phases)
	}
	// DistinctSigners accumulates only over correct senders: 2 (p0) + 1 (p1);
	// the faulty sender's 3 distinct signers are excluded.
	if r.DistinctSigners != 3 {
		t.Fatalf("distinct signers %d, want 3", r.DistinctSigners)
	}
}

func TestPerPhaseSeries(t *testing.T) {
	c := metrics.NewCollector(nil)
	c.OnSend(3, 0, 1, 1, 5)
	c.OnSend(3, 1, 0, 0, 5)
	c.OnSend(5, 0, 2, 2, 5)
	r := c.Report()
	if len(r.PerPhase) != 6 {
		t.Fatalf("per-phase length %d", len(r.PerPhase))
	}
	if r.PerPhase[3].MessagesCorrect != 2 || r.PerPhase[5].SignaturesCorrect != 2 {
		t.Fatal("per-phase counters wrong")
	}
	if r.PerPhase[4].MessagesCorrect != 0 {
		t.Fatal("phantom phase counts")
	}
}

func TestReportSnapshotIsolated(t *testing.T) {
	c := metrics.NewCollector(nil)
	c.OnSend(1, 0, 0, 0, 1)
	r1 := c.Report()
	c.OnSend(2, 0, 0, 0, 1)
	if r1.MessagesCorrect != 1 || len(r1.PerPhase) != 2 {
		t.Fatal("snapshot mutated by later sends")
	}
}

func TestRendering(t *testing.T) {
	c := metrics.NewCollector(nil)
	c.OnSend(1, 0, 1, 1, 42)
	r := c.Report()
	if s := r.String(); !strings.Contains(s, "msgs(correct)=1") || !strings.Contains(s, "signers=1") {
		t.Fatalf("summary %q", s)
	}
	if tbl := r.Table(); !strings.Contains(tbl, "phase") || !strings.Contains(tbl, "1") {
		t.Fatalf("table %q", tbl)
	}
}
