// Package metrics collects the quantities the paper reasons about: the
// number of messages sent (split by correct vs. faulty senders, since the
// paper's bounds count only messages sent by correct processors), the number
// of signatures those messages carry, the number of phases used, and byte
// volumes for engineering context.
package metrics

import (
	"fmt"
	"strings"

	"byzex/internal/ident"
)

// Collector accumulates counters during a run. It is not safe for concurrent
// use by itself; the in-memory engine is single-threaded and the TCP
// transport serializes updates through a mutex at its layer.
type Collector struct {
	faulty ident.Set

	report Report
}

// NewCollector creates a collector that classifies senders against the given
// faulty set (which may be nil or empty for fault-free runs).
func NewCollector(faulty ident.Set) *Collector {
	return &Collector{faulty: faulty}
}

// OnSend records one message from `from` carrying sigTotal signatures (chain
// links, counted with multiplicity), sigDistinct distinct signer identities,
// and the given payload size in bytes, sent during the given phase.
func (c *Collector) OnSend(phase int, from ident.ProcID, sigTotal, sigDistinct, bytes int) {
	r := &c.report
	r.ensurePhase(phase)
	pp := &r.PerPhase[phase]
	if c.faulty.Has(from) {
		r.MessagesFaulty++
		r.SignaturesFaulty += sigTotal
		pp.MessagesFaulty++
	} else {
		r.MessagesCorrect++
		r.SignaturesCorrect += sigTotal
		r.BytesCorrect += bytes
		r.DistinctSigners += sigDistinct
		pp.MessagesCorrect++
		pp.SignaturesCorrect += sigTotal
	}
	if bytes > r.MaxMessageBytes {
		r.MaxMessageBytes = bytes
	}
	if phase > r.Phases {
		r.Phases = phase
	}
}

// Report returns a snapshot of the accumulated counters.
func (c *Collector) Report() Report {
	out := c.report
	out.PerPhase = append([]PhaseCounters(nil), c.report.PerPhase...)
	return out
}

// PhaseCounters carries per-phase message counts for time-series plots.
type PhaseCounters struct {
	MessagesCorrect   int
	MessagesFaulty    int
	SignaturesCorrect int
}

// Report is the immutable result of a run's accounting.
type Report struct {
	// MessagesCorrect counts messages sent by correct processors — the
	// quantity bounded by Theorems 2, 3, 4, Lemma 1 and Lemma 5.
	MessagesCorrect int
	// MessagesFaulty counts messages sent by faulty processors (reported for
	// context; the paper's bounds do not constrain the adversary's own
	// traffic).
	MessagesFaulty int
	// SignaturesCorrect counts signatures appended to messages sent by
	// correct processors — the quantity bounded by Theorem 1.
	SignaturesCorrect int
	// SignaturesFaulty counts signatures on messages from faulty senders.
	SignaturesFaulty int
	// BytesCorrect is the total payload volume sent by correct processors.
	BytesCorrect int
	// DistinctSigners sums, over messages sent by correct processors, the
	// number of distinct signer identities each message carried — the raw
	// material of Theorem 1's A(p) sets, aggregated.
	DistinctSigners int
	// MaxMessageBytes is the largest single payload observed.
	MaxMessageBytes int
	// Phases is the highest phase during which any message was sent.
	Phases int
	// PerPhase holds counters indexed by phase (index 0 unused).
	PerPhase []PhaseCounters

	// SigCacheHits counts chain links accepted from the run's
	// verified-prefix cache; SigCacheMisses counts links that paid a real
	// cryptographic verification (see sig.CachedVerifier). Their sum is the
	// number of link checks the run requested; hits are the ones the cache
	// made free.
	SigCacheHits int
	// SigCacheMisses counts cryptographically verified chain links.
	SigCacheMisses int
}

func (r *Report) ensurePhase(phase int) {
	for len(r.PerPhase) <= phase {
		r.PerPhase = append(r.PerPhase, PhaseCounters{})
	}
}

// MessagesTotal returns messages from all senders.
func (r Report) MessagesTotal() int { return r.MessagesCorrect + r.MessagesFaulty }

// SignaturesTotal returns signatures from all senders.
func (r Report) SignaturesTotal() int { return r.SignaturesCorrect + r.SignaturesFaulty }

// String renders a compact single-line summary.
func (r Report) String() string {
	return fmt.Sprintf("phases=%d msgs(correct)=%d msgs(faulty)=%d sigs(correct)=%d signers=%d bytes=%d maxmsg=%dB sigcache=%d/%d",
		r.Phases, r.MessagesCorrect, r.MessagesFaulty, r.SignaturesCorrect, r.DistinctSigners, r.BytesCorrect, r.MaxMessageBytes,
		r.SigCacheHits, r.SigCacheHits+r.SigCacheMisses)
}

// Table renders the per-phase counters as an aligned text table.
func (r Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6s %12s %12s %12s\n", "phase", "msgs-correct", "msgs-faulty", "sigs-correct")
	for ph := 1; ph < len(r.PerPhase); ph++ {
		pp := r.PerPhase[ph]
		if pp.MessagesCorrect == 0 && pp.MessagesFaulty == 0 {
			continue
		}
		fmt.Fprintf(&b, "%6d %12d %12d %12d\n", ph, pp.MessagesCorrect, pp.MessagesFaulty, pp.SignaturesCorrect)
	}
	return b.String()
}
