package trace_test

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"byzex/internal/ident"
	"byzex/internal/trace"
)

func sampleEvents() []trace.Event {
	return []trace.Event{
		{Kind: trace.KindCorrupt, From: 2, To: ident.None},
		{Kind: trace.KindPhaseStart, Phase: 1, From: ident.None, To: ident.None},
		{Kind: trace.KindSend, Phase: 1, From: 0, To: 1, Sigs: 3, Signers: 2, Bytes: 40},
		{Kind: trace.KindSend, Phase: 1, From: 2, To: 1, Sigs: 1, Signers: 1, Bytes: 10, Flag: true},
		{Kind: trace.KindOmit, Phase: 1, From: 2, To: 3, Sigs: 1, Signers: 1, Bytes: 10},
		{Kind: trace.KindPhaseEnd, Phase: 1, From: ident.None, To: ident.None},
		{Kind: trace.KindPhaseStart, Phase: 2, From: ident.None, To: ident.None},
		{Kind: trace.KindDeliver, Phase: 2, From: 0, To: 1, Sigs: 3, Signers: 2, Bytes: 40},
		{Kind: trace.KindVerifyHit, Sigs: 2, From: ident.None, To: ident.None},
		{Kind: trace.KindVerifyMiss, Sigs: 1, From: ident.None, To: ident.None},
		{Kind: trace.KindRush, Phase: 2, From: 2, To: ident.None, Sigs: 4},
		{Kind: trace.KindPhaseEnd, Phase: 2, From: ident.None, To: ident.None},
		{Kind: trace.KindDecide, Phase: 3, From: 0, To: ident.None, Value: ident.V1, Flag: true},
		{Kind: trace.KindDecide, Phase: 3, From: 2, To: ident.None, Flag: false},
	}
}

func TestKindNames(t *testing.T) {
	kinds := []trace.Kind{
		trace.KindCorrupt, trace.KindPhaseStart, trace.KindPhaseEnd,
		trace.KindSend, trace.KindOmit, trace.KindDeliver,
		trace.KindVerifyHit, trace.KindVerifyMiss, trace.KindRush, trace.KindDecide,
		trace.KindEnqueue, trace.KindReject, trace.KindInstanceStart, trace.KindInstanceDone,
	}
	seen := make(map[string]bool)
	for _, k := range kinds {
		name := k.String()
		if name == "unknown" || name == "" {
			t.Fatalf("kind %d has no name", k)
		}
		if seen[name] {
			t.Fatalf("duplicate kind name %q", name)
		}
		seen[name] = true
	}
	if trace.Kind(0).String() != "unknown" || trace.Kind(200).String() != "unknown" {
		t.Fatal("out-of-range kinds must stringify as unknown")
	}
}

func TestBufferAndDrain(t *testing.T) {
	src := trace.NewBuffer()
	for _, e := range sampleEvents() {
		src.Emit(e)
	}
	if src.Len() != len(sampleEvents()) {
		t.Fatalf("Len = %d, want %d", src.Len(), len(sampleEvents()))
	}
	dst := trace.NewBuffer()
	src.DrainTo(dst)
	if src.Len() != 0 {
		t.Fatal("DrainTo must empty the source")
	}
	got := dst.Events()
	want := sampleEvents()
	if len(got) != len(want) {
		t.Fatalf("drained %d events, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("event %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestRingWrapAround(t *testing.T) {
	r := trace.NewRing(3)
	events := sampleEvents()
	for _, e := range events {
		r.Emit(e)
	}
	got := r.Events()
	if len(got) != 3 {
		t.Fatalf("ring holds %d events, want 3", len(got))
	}
	want := events[len(events)-3:]
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("ring event %d: %+v != %+v", i, got[i], want[i])
		}
	}
	if r.Dropped() != len(events)-3 {
		t.Fatalf("Dropped = %d, want %d", r.Dropped(), len(events)-3)
	}

	// Degenerate capacities clamp to 1.
	tiny := trace.NewRing(0)
	tiny.Emit(events[0])
	tiny.Emit(events[1])
	if got := tiny.Events(); len(got) != 1 || got[0] != events[1] {
		t.Fatalf("capacity-clamped ring: %+v", got)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	want := sampleEvents()
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, want); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "\n"); n != len(want) {
		t.Fatalf("wrote %d lines, want %d", n, len(want))
	}
	got, err := trace.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d events, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("event %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestJSONLRejectsBadInput(t *testing.T) {
	if _, err := trace.ReadJSONL(strings.NewReader("not json\n")); err == nil {
		t.Fatal("malformed line accepted")
	}
	if _, err := trace.ReadJSONL(strings.NewReader(`{"kind":"teleport"}` + "\n")); err == nil {
		t.Fatal("unknown kind accepted")
	}
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, []trace.Event{{Kind: trace.Kind(99)}}); err == nil {
		t.Fatal("unknown kind encoded")
	}
}

func TestContextCarriesSink(t *testing.T) {
	if trace.FromContext(context.Background()) != nil {
		t.Fatal("fresh context must carry no sink")
	}
	b := trace.NewBuffer()
	ctx := trace.NewContext(context.Background(), b)
	if trace.FromContext(ctx) != trace.Sink(b) {
		t.Fatal("sink not recovered from context")
	}
}

func TestSummarize(t *testing.T) {
	s := trace.Summarize(sampleEvents())
	if s.Events != len(sampleEvents()) {
		t.Fatalf("Events = %d", s.Events)
	}
	if s.Corrupted != 1 || s.Decided != 1 || s.Undecided != 1 {
		t.Fatalf("corrupted/decided/undecided = %d/%d/%d", s.Corrupted, s.Decided, s.Undecided)
	}
	if s.VerifyHits != 2 || s.VerifyMisses != 1 {
		t.Fatalf("verify hits/misses = %d/%d", s.VerifyHits, s.VerifyMisses)
	}
	p1 := s.PerPhase[1]
	if p1.MessagesCorrect != 1 || p1.MessagesFaulty != 1 || p1.SignaturesCorrect != 3 ||
		p1.SignaturesFaulty != 1 || p1.DistinctSigners != 2 || p1.BytesCorrect != 40 || p1.Omitted != 1 {
		t.Fatalf("phase 1 summary: %+v", p1)
	}
	p2 := s.PerPhase[2]
	if p2.Delivered != 1 || p2.Rushed != 4 {
		t.Fatalf("phase 2 summary: %+v", p2)
	}
	tot := s.Totals()
	if tot.MessagesCorrect != 1 || tot.MessagesFaulty != 1 || tot.Delivered != 1 {
		t.Fatalf("totals: %+v", tot)
	}
	table := s.Table()
	for _, needle := range []string{"msgs-correct", "total", "corrupted=1"} {
		if !strings.Contains(table, needle) {
			t.Fatalf("table missing %q:\n%s", needle, table)
		}
	}
}

func TestEmitDoesNotAllocate(t *testing.T) {
	// The overhead contract: Event is flat, so emitting through the Sink
	// interface must not allocate for the Nop and (steady-state) Ring sinks.
	e := sampleEvents()[2]
	var nop trace.Sink = trace.Nop{}
	if n := testing.AllocsPerRun(1000, func() { nop.Emit(e) }); n != 0 {
		t.Fatalf("Nop.Emit allocates %.1f per op", n)
	}
	var ring trace.Sink = trace.NewRing(64)
	if n := testing.AllocsPerRun(1000, func() { ring.Emit(e) }); n != 0 {
		t.Fatalf("Ring.Emit allocates %.1f per op", n)
	}
}

func TestJSONLStickyError(t *testing.T) {
	w := &failingWriter{}
	j := trace.NewJSONL(w)
	for i := 0; i < 10000; i++ { // enough to overflow the bufio buffer
		j.Emit(sampleEvents()[2])
	}
	if err := j.Flush(); err == nil {
		t.Fatal("write failure not surfaced")
	}
	if w.writes > 1 {
		t.Fatalf("sink kept writing after failure: %d writes", w.writes)
	}
}

type failingWriter struct{ writes int }

func (w *failingWriter) Write(p []byte) (int, error) {
	w.writes++
	return 0, errors.New("disk full")
}
