package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"byzex/internal/ident"
)

// eventJSON is the wire form of one event: every field is always present, so
// the encoding of a given event is byte-for-byte deterministic and parsers
// need no presence logic.
type eventJSON struct {
	Kind    string `json:"kind"`
	Phase   int    `json:"phase"`
	From    int32  `json:"from"`
	To      int32  `json:"to"`
	Sigs    int    `json:"sigs"`
	Signers int    `json:"signers"`
	Bytes   int    `json:"bytes"`
	Value   int64  `json:"value"`
	Flag    bool   `json:"flag"`
}

// kindByName is the inverse of kindNames, built once at init.
var kindByName = func() map[string]Kind {
	out := make(map[string]Kind, len(kindNames))
	for k, n := range kindNames {
		out[n] = k
	}
	return out
}()

// marshalEvent renders one event as a JSON object (no trailing newline).
func marshalEvent(e Event) ([]byte, error) {
	name, ok := kindNames[e.Kind]
	if !ok {
		return nil, fmt.Errorf("trace: unknown event kind %d", e.Kind)
	}
	return json.Marshal(eventJSON{
		Kind:    name,
		Phase:   e.Phase,
		From:    int32(e.From),
		To:      int32(e.To),
		Sigs:    e.Sigs,
		Signers: e.Signers,
		Bytes:   e.Bytes,
		Value:   int64(e.Value),
		Flag:    e.Flag,
	})
}

// JSONL is a sink that streams events as one JSON object per line — the
// offline-analysis format behind `basim -trace` and `baexp -trace`. Errors
// are sticky: the first write or encode failure is retained and subsequent
// events are dropped, so hot paths never need to check an error per event.
type JSONL struct {
	w   *bufio.Writer
	err error
}

// NewJSONL returns a sink writing JSON lines to w (buffered; call Flush when
// done).
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{w: bufio.NewWriter(w)}
}

// Emit implements Sink.
func (j *JSONL) Emit(e Event) {
	if j.err != nil {
		return
	}
	line, err := marshalEvent(e)
	if err != nil {
		j.err = err
		return
	}
	if _, err := j.w.Write(line); err != nil {
		j.err = err
		return
	}
	j.err = j.w.WriteByte('\n')
}

// Flush writes buffered output and returns the first error encountered by
// any Emit or flush.
func (j *JSONL) Flush() error {
	if j.err != nil {
		return j.err
	}
	j.err = j.w.Flush()
	return j.err
}

// WriteJSONL renders events to w in JSONL form.
func WriteJSONL(w io.Writer, events []Event) error {
	j := NewJSONL(w)
	for _, e := range events {
		j.Emit(e)
	}
	return j.Flush()
}

// ReadJSONL parses a JSONL trace back into events, validating every line.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ej eventJSON
		if err := json.Unmarshal(line, &ej); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		kind, ok := kindByName[ej.Kind]
		if !ok {
			return nil, fmt.Errorf("trace: line %d: unknown kind %q", lineNo, ej.Kind)
		}
		out = append(out, Event{
			Kind:    kind,
			Phase:   ej.Phase,
			From:    ident.ProcID(ej.From),
			To:      ident.ProcID(ej.To),
			Sigs:    ej.Sigs,
			Signers: ej.Signers,
			Bytes:   ej.Bytes,
			Value:   ident.Value(ej.Value),
			Flag:    ej.Flag,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading JSONL: %w", err)
	}
	return out, nil
}
