package trace

import (
	"fmt"
	"strings"

	"byzex/internal/metrics"
)

// PhaseSummary aggregates one phase's events.
type PhaseSummary struct {
	// MessagesCorrect / MessagesFaulty count sends by sender class, keyed
	// by the sending phase — the same attribution metrics.Report uses.
	MessagesCorrect int
	MessagesFaulty  int
	// SignaturesCorrect / SignaturesFaulty count signature links (with
	// multiplicity) on those sends.
	SignaturesCorrect int
	SignaturesFaulty  int
	// DistinctSigners sums the distinct-signer counts of correct sends.
	DistinctSigners int
	// BytesCorrect is the payload volume of correct sends.
	BytesCorrect int
	// Delivered counts envelopes handed to Step during this phase.
	Delivered int
	// Omitted counts sends suppressed by adversary send filters.
	Omitted int
	// Rushed counts envelopes peeked by rushing adversaries this phase.
	Rushed int
}

// Summary is the aggregate view of a trace: the per-phase attribution table
// plus run-wide counters.
type Summary struct {
	// PerPhase is indexed by phase; index 0 collects phase-less events.
	PerPhase []PhaseSummary
	// Events is the total number of events summarized.
	Events int
	// VerifyHits / VerifyMisses total the signature-cache events.
	VerifyHits   int
	VerifyMisses int
	// Corrupted counts KindCorrupt events (the faulty set size).
	Corrupted int
	// Decided / Undecided count the decision events.
	Decided   int
	Undecided int
	// Serving-layer counters (see the service event kinds in trace.go).
	// Enqueued / Rejected count admissions into and rejections from a
	// service's bounded queue; InstancesStarted / InstancesDone count
	// dispatched and completed agreement instances; ValuesDecided sums the
	// batch sizes of completed instances (the amortization denominator).
	Enqueued         int
	Rejected         int
	InstancesStarted int
	InstancesDone    int
	ValuesDecided    int
	// BatchGrows / BatchShrinks count the adaptive batching controller's
	// target moves (KindBatchAdapt with Flag true / false); BatchTargetPeak
	// is the largest target the controller reached (0 when batching never
	// adapted).
	BatchGrows      int
	BatchShrinks    int
	BatchTargetPeak int
	// Replayed counts journaled admissions re-submitted during crash
	// recovery (KindReplay); Checkpoints counts journal checkpoints written
	// on drain (KindCheckpoint).
	Replayed    int
	Checkpoints int
	// Fault-injection counters (see the fault-* event kinds in trace.go):
	// frames dropped, delayed, duplicated and reordered by the plan, and
	// processors halted by crash-at-phase-k rules. The scenario tests
	// assert these equal faultnet.Plan.ExpectedCounters for the run.
	FaultDrops    int
	FaultDelays   int
	FaultDups     int
	FaultReorders int
	FaultCrashes  int
	// Adversary-search counters (see the search-* event kinds in trace.go):
	// candidate evaluations, incumbent improvements, and candidates that
	// broke an agreement condition. SearchBestCost is the cost carried by
	// the last KindSearchBest event — the best-found objective value.
	SearchEvals      int
	SearchBests      int
	SearchViolations int
	SearchBestCost   int
}

// Summarize folds a stream of events into a Summary.
func Summarize(events []Event) *Summary {
	s := &Summary{}
	for _, e := range events {
		s.Add(e)
	}
	return s
}

// Add folds one event into the summary — the incremental form of Summarize,
// used by live aggregators (Spool) that cannot afford to retain the event
// stream. Summarize(events) is exactly a fresh Summary with every event
// Added in order.
func (s *Summary) Add(e Event) {
	s.Events++
	ph := e.Phase
	if ph < 0 {
		ph = 0
	}
	for len(s.PerPhase) <= ph {
		s.PerPhase = append(s.PerPhase, PhaseSummary{})
	}
	pp := &s.PerPhase[ph]
	switch e.Kind {
	case KindSend:
		if e.Flag {
			pp.MessagesFaulty++
			pp.SignaturesFaulty += e.Sigs
		} else {
			pp.MessagesCorrect++
			pp.SignaturesCorrect += e.Sigs
			pp.DistinctSigners += e.Signers
			pp.BytesCorrect += e.Bytes
		}
	case KindOmit:
		pp.Omitted++
	case KindDeliver:
		pp.Delivered++
	case KindRush:
		pp.Rushed += e.Sigs
	case KindVerifyHit:
		s.VerifyHits += e.Sigs
	case KindVerifyMiss:
		s.VerifyMisses += e.Sigs
	case KindCorrupt:
		s.Corrupted++
	case KindDecide:
		if e.Flag {
			s.Decided++
		} else {
			s.Undecided++
		}
	case KindEnqueue:
		s.Enqueued++
	case KindReject:
		s.Rejected++
	case KindInstanceStart:
		s.InstancesStarted++
	case KindInstanceDone:
		s.InstancesDone++
		s.ValuesDecided += e.Sigs
	case KindBatchAdapt:
		if e.Flag {
			s.BatchGrows++
		} else {
			s.BatchShrinks++
		}
		if e.Sigs > s.BatchTargetPeak {
			s.BatchTargetPeak = e.Sigs
		}
	case KindFaultDrop:
		s.FaultDrops++
	case KindFaultDelay:
		s.FaultDelays++
	case KindFaultDup:
		s.FaultDups++
	case KindFaultReorder:
		s.FaultReorders++
	case KindFaultCrash:
		s.FaultCrashes++
	case KindReplay:
		s.Replayed++
	case KindCheckpoint:
		s.Checkpoints++
	case KindSearchEval:
		s.SearchEvals++
	case KindSearchBest:
		s.SearchBests++
		s.SearchBestCost = e.Sigs
	case KindSearchViolation:
		s.SearchViolations++
	}
}

// Totals sums the per-phase counters.
func (s *Summary) Totals() PhaseSummary {
	var out PhaseSummary
	for _, pp := range s.PerPhase {
		out.MessagesCorrect += pp.MessagesCorrect
		out.MessagesFaulty += pp.MessagesFaulty
		out.SignaturesCorrect += pp.SignaturesCorrect
		out.SignaturesFaulty += pp.SignaturesFaulty
		out.DistinctSigners += pp.DistinctSigners
		out.BytesCorrect += pp.BytesCorrect
		out.Delivered += pp.Delivered
		out.Omitted += pp.Omitted
		out.Rushed += pp.Rushed
	}
	return out
}

// Table renders the per-phase message/signature attribution table.
func (s *Summary) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6s %12s %12s %12s %12s %10s %9s %7s\n",
		"phase", "msgs-correct", "msgs-faulty", "sigs-correct", "bytes-corr", "delivered", "omitted", "rushed")
	for ph := 1; ph < len(s.PerPhase); ph++ {
		pp := s.PerPhase[ph]
		if pp == (PhaseSummary{}) {
			continue
		}
		fmt.Fprintf(&b, "%6d %12d %12d %12d %12d %10d %9d %7d\n",
			ph, pp.MessagesCorrect, pp.MessagesFaulty, pp.SignaturesCorrect,
			pp.BytesCorrect, pp.Delivered, pp.Omitted, pp.Rushed)
	}
	tot := s.Totals()
	fmt.Fprintf(&b, "%6s %12d %12d %12d %12d %10d %9d %7d\n",
		"total", tot.MessagesCorrect, tot.MessagesFaulty, tot.SignaturesCorrect,
		tot.BytesCorrect, tot.Delivered, tot.Omitted, tot.Rushed)
	fmt.Fprintf(&b, "corrupted=%d decided=%d undecided=%d sigcache=%d/%d\n",
		s.Corrupted, s.Decided, s.Undecided, s.VerifyHits, s.VerifyHits+s.VerifyMisses)
	if s.Enqueued+s.Rejected+s.InstancesStarted+s.InstancesDone > 0 {
		fmt.Fprintf(&b, "service: enqueued=%d rejected=%d instances=%d/%d values=%d\n",
			s.Enqueued, s.Rejected, s.InstancesDone, s.InstancesStarted, s.ValuesDecided)
	}
	if s.BatchGrows+s.BatchShrinks > 0 {
		fmt.Fprintf(&b, "batching: grows=%d shrinks=%d peak-target=%d\n",
			s.BatchGrows, s.BatchShrinks, s.BatchTargetPeak)
	}
	if s.FaultDrops+s.FaultDelays+s.FaultDups+s.FaultReorders+s.FaultCrashes > 0 {
		fmt.Fprintf(&b, "faults: drops=%d delays=%d dups=%d reorders=%d crashes=%d\n",
			s.FaultDrops, s.FaultDelays, s.FaultDups, s.FaultReorders, s.FaultCrashes)
	}
	if s.Replayed+s.Checkpoints > 0 {
		fmt.Fprintf(&b, "journal: replayed=%d checkpoints=%d\n", s.Replayed, s.Checkpoints)
	}
	if s.SearchEvals > 0 {
		fmt.Fprintf(&b, "search: evals=%d improvements=%d violations=%d best=%d\n",
			s.SearchEvals, s.SearchBests, s.SearchViolations, s.SearchBestCost)
	}
	return b.String()
}

// CheckReport verifies that the trace's send attribution agrees with the
// metrics collected during the same run: per-phase message and signature
// counters, run totals, byte volume and distinct-signer totals must all
// match. A mismatch means the trace wiring and the metrics wiring diverged —
// the invariant the trace-smoke target and the conformance tests pin down.
func (s *Summary) CheckReport(r metrics.Report) error {
	phases := len(s.PerPhase)
	if len(r.PerPhase) > phases {
		phases = len(r.PerPhase)
	}
	for ph := 1; ph < phases; ph++ {
		var tp PhaseSummary
		if ph < len(s.PerPhase) {
			tp = s.PerPhase[ph]
		}
		var rp metrics.PhaseCounters
		if ph < len(r.PerPhase) {
			rp = r.PerPhase[ph]
		}
		if tp.MessagesCorrect != rp.MessagesCorrect {
			return fmt.Errorf("trace: phase %d msgs-correct %d != report %d", ph, tp.MessagesCorrect, rp.MessagesCorrect)
		}
		if tp.MessagesFaulty != rp.MessagesFaulty {
			return fmt.Errorf("trace: phase %d msgs-faulty %d != report %d", ph, tp.MessagesFaulty, rp.MessagesFaulty)
		}
		if tp.SignaturesCorrect != rp.SignaturesCorrect {
			return fmt.Errorf("trace: phase %d sigs-correct %d != report %d", ph, tp.SignaturesCorrect, rp.SignaturesCorrect)
		}
	}
	tot := s.Totals()
	switch {
	case tot.MessagesCorrect != r.MessagesCorrect:
		return fmt.Errorf("trace: total msgs-correct %d != report %d", tot.MessagesCorrect, r.MessagesCorrect)
	case tot.MessagesFaulty != r.MessagesFaulty:
		return fmt.Errorf("trace: total msgs-faulty %d != report %d", tot.MessagesFaulty, r.MessagesFaulty)
	case tot.SignaturesCorrect != r.SignaturesCorrect:
		return fmt.Errorf("trace: total sigs-correct %d != report %d", tot.SignaturesCorrect, r.SignaturesCorrect)
	case tot.SignaturesFaulty != r.SignaturesFaulty:
		return fmt.Errorf("trace: total sigs-faulty %d != report %d", tot.SignaturesFaulty, r.SignaturesFaulty)
	case tot.BytesCorrect != r.BytesCorrect:
		return fmt.Errorf("trace: total bytes-correct %d != report %d", tot.BytesCorrect, r.BytesCorrect)
	case tot.DistinctSigners != r.DistinctSigners:
		return fmt.Errorf("trace: total distinct-signers %d != report %d", tot.DistinctSigners, r.DistinctSigners)
	}
	return nil
}
