package trace_test

import (
	"bytes"
	"testing"

	"byzex/internal/ident"
	"byzex/internal/trace"
)

func enqueueEvent(depth int) trace.Event {
	return trace.Event{Kind: trace.KindEnqueue, From: ident.None, To: ident.None, Sigs: depth, Value: 1}
}

func instanceEvents(id int) []trace.Event {
	return []trace.Event{
		{Kind: trace.KindInstanceStart, From: ident.None, To: ident.None, Signers: id, Sigs: 1, Value: 7},
		{Kind: trace.KindSend, Phase: 1, From: 0, To: 1, Sigs: 1, Signers: 1, Bytes: 10},
		{Kind: trace.KindInstanceDone, From: ident.None, To: ident.None, Signers: id, Sigs: 1, Value: 7, Flag: true},
	}
}

// TestSpoolFlushAtDelivery pins the write-through contract: instance-scoped
// events are on the underlying writer (not just buffered) as soon as their
// instance-done lands, while admission-scoped events stay in the ring until
// Close.
func TestSpoolFlushAtDelivery(t *testing.T) {
	var out bytes.Buffer
	sp := trace.NewSpool(&out, 8)

	sp.Emit(enqueueEvent(1))
	for _, e := range instanceEvents(0) {
		sp.Emit(e)
	}
	got, err := trace.ReadJSONL(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("after instance-done the file holds %d events, want 3 (flush at delivery)", len(got))
	}
	for _, e := range got {
		if e.Kind.AdmissionScoped() {
			t.Fatalf("admission-scoped %v written before Close", e.Kind)
		}
	}

	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	all, err := trace.ReadJSONL(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 {
		t.Fatalf("after Close the file holds %d events, want 4 (ring tail appended)", len(all))
	}
	if last := all[3]; last.Kind != trace.KindEnqueue {
		t.Fatalf("ring tail not appended last: %v", last.Kind)
	}
}

// TestSpoolDropAccounting is the satellite acceptance test: admission-scoped
// events beyond the ring capacity are dropped, counted, and reflected in the
// snapshot — never buffered.
func TestSpoolDropAccounting(t *testing.T) {
	var out bytes.Buffer
	const ringCap, emitted = 4, 100
	sp := trace.NewSpool(&out, ringCap)
	for i := 0; i < emitted; i++ {
		sp.Emit(enqueueEvent(i))
	}
	st := sp.Stats()
	if st.Dropped != emitted-ringCap {
		t.Fatalf("dropped %d, want %d", st.Dropped, emitted-ringCap)
	}
	if st.RingLen != ringCap || st.RingCap != ringCap {
		t.Fatalf("ring %d/%d, want %d/%d", st.RingLen, st.RingCap, ringCap, ringCap)
	}
	if st.Events != emitted {
		t.Fatalf("events %d, want %d (drops still counted)", st.Events, emitted)
	}
	if st.Summary.Enqueued != emitted {
		t.Fatalf("live summary enqueued %d, want %d (aggregation precedes dropping)", st.Summary.Enqueued, emitted)
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	// Only the surviving window reaches the file.
	all, err := trace.ReadJSONL(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != ringCap {
		t.Fatalf("file holds %d admission events, want the %d-event window", len(all), ringCap)
	}
	if all[0].Sigs != emitted-ringCap {
		t.Fatalf("window starts at depth %d, want %d (oldest surviving)", all[0].Sigs, emitted-ringCap)
	}
}

// TestSpoolSummaryMatchesSummarize pins the live aggregate: a spool's
// summary equals Summarize over the full emitted stream, drops included.
func TestSpoolSummaryMatchesSummarize(t *testing.T) {
	var out bytes.Buffer
	sp := trace.NewSpool(&out, 2)
	var stream []trace.Event
	for i := 0; i < 20; i++ {
		stream = append(stream, enqueueEvent(i))
		stream = append(stream, instanceEvents(i)...)
	}
	stream = append(stream, trace.Event{Kind: trace.KindBatchAdapt, Signers: 1, Sigs: 2, Flag: true})
	stream = append(stream, trace.Event{Kind: trace.KindVerifyHit, Sigs: 3})
	for _, e := range stream {
		sp.Emit(e)
	}
	want := trace.Summarize(stream)
	st := sp.Stats()
	if st.Summary.Events != want.Events ||
		st.Summary.Enqueued != want.Enqueued ||
		st.Summary.InstancesDone != want.InstancesDone ||
		st.Summary.BatchGrows != want.BatchGrows ||
		st.Summary.VerifyHits != want.VerifyHits {
		t.Fatalf("live summary diverged from Summarize:\nlive %+v\nwant %+v", st.Summary, *want)
	}
	if got := st.Summary.Totals(); got != want.Totals() {
		t.Fatalf("totals diverged: %+v vs %+v", got, want.Totals())
	}
	if st.Kinds[trace.KindEnqueue] != 20 || st.Kinds[trace.KindSend] != 20 || st.Kinds[trace.KindBatchAdapt] != 1 {
		t.Fatalf("per-kind counts wrong: %v", st.Kinds)
	}
}

// TestSpoolAdmissionEmitAllocsFree pins the sustained-load memory story: once
// the phase table exists, spooling an admission-scoped event allocates
// nothing, so a server emitting millions of enqueues holds memory constant.
func TestSpoolAdmissionEmitAllocsFree(t *testing.T) {
	var out bytes.Buffer
	sp := trace.NewSpool(&out, 64)
	sp.Emit(enqueueEvent(0)) // settle the phase-0 slot
	allocs := testing.AllocsPerRun(1000, func() {
		sp.Emit(enqueueEvent(1))
	})
	if allocs > 0 {
		t.Fatalf("admission-scoped Emit allocates %.1f/op, want 0", allocs)
	}
}

// TestSpoolSnapshotReusesStorage pins the scrape path: repeated StatsInto
// into the same holder allocates nothing.
func TestSpoolSnapshotReusesStorage(t *testing.T) {
	var out bytes.Buffer
	sp := trace.NewSpool(&out, 16)
	for _, e := range instanceEvents(0) {
		sp.Emit(e)
	}
	var st trace.SpoolStats
	sp.StatsInto(&st) // first call sizes PerPhase
	allocs := testing.AllocsPerRun(1000, func() {
		sp.StatsInto(&st)
	})
	if allocs > 0 {
		t.Fatalf("StatsInto allocates %.1f/op after warm-up, want 0", allocs)
	}
}
