package trace_test

import (
	"context"
	"testing"

	"byzex/internal/cli"
	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/trace"
)

// TestTraceMatchesReportEveryProtocol is the acceptance gate for the tracing
// layer: for every protocol in the registry (cli.Protocols), the per-phase
// message/signature attribution recovered from the trace must equal the
// counters metrics.Collector accumulated during the same run — under a
// fault-free run, a silent coalition, and a rushing split-brain where the
// fault bound allows one.
func TestTraceMatchesReportEveryProtocol(t *testing.T) {
	configs := map[string]struct {
		n, t  int
		plain bool
	}{
		"alg1":               {5, 2, false},
		"alg1-multi":         {5, 2, false},
		"alg2":               {5, 2, false},
		"alg3":               {12, 2, false},
		"alg4":               {16, 2, false},
		"alg4-relay":         {9, 2, false},
		"alg5":               {20, 2, false},
		"alg5-nopow":         {20, 2, false},
		"ic":                 {5, 1, false},
		"dolev-strong":       {6, 2, false},
		"lsp":                {7, 2, true},
		"phase-king":         {9, 2, true},
		"strawman-broadcast": {5, 1, false},
		"strawman-thinrelay": {8, 2, false},
	}
	protos, err := cli.Protocols(cli.Params{N: 8, T: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range cli.ProtocolNames() {
		if _, ok := protos[name]; !ok {
			t.Fatalf("Protocols() missing %q", name)
		}
		cfg, ok := configs[name]
		if !ok {
			t.Fatalf("no test config for protocol %q", name)
		}
		params := cli.Params{N: cfg.n, T: cfg.t, Seed: 1}
		proto, err := cli.Protocol(name, params)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		schemeName := "hmac"
		if cfg.plain {
			schemeName = "plain"
		}
		scheme, err := cli.Scheme(schemeName, params)
		if err != nil {
			t.Fatal(err)
		}

		scenarios := []struct {
			scenario string
			advName  string
			rushing  bool
		}{
			{"fault-free", "none", false},
			{"silent", "silent", false},
			{"split-brain-rushing", "split-brain", true},
		}
		for _, sc := range scenarios {
			adv, err := cli.Adversary(sc.advName, params)
			if err != nil {
				t.Fatal(err)
			}
			buf := trace.NewBuffer()
			res, err := core.Run(context.Background(), core.Config{
				Protocol: proto, N: cfg.n, T: cfg.t, Value: ident.V1,
				Scheme: scheme, Adversary: adv, Seed: 7,
				Rushing: sc.rushing, Trace: buf,
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", name, sc.scenario, err)
			}
			sum := trace.Summarize(buf.Events())
			if err := sum.CheckReport(res.Sim.Report); err != nil {
				t.Errorf("%s/%s: %v", name, sc.scenario, err)
			}
			// The trace's own bookkeeping must match the run shape too.
			if sum.Corrupted != res.Faulty.Len() {
				t.Errorf("%s/%s: %d corrupt events, faulty set has %d", name, sc.scenario, sum.Corrupted, res.Faulty.Len())
			}
			if sum.Decided+sum.Undecided != cfg.n {
				t.Errorf("%s/%s: %d decision events, want %d", name, sc.scenario, sum.Decided+sum.Undecided, cfg.n)
			}
			if sum.VerifyHits != res.Sim.Report.SigCacheHits || sum.VerifyMisses != res.Sim.Report.SigCacheMisses {
				t.Errorf("%s/%s: verify events %d/%d, report sigcache %d/%d", name, sc.scenario,
					sum.VerifyHits, sum.VerifyMisses, res.Sim.Report.SigCacheHits, res.Sim.Report.SigCacheMisses)
			}
		}
	}
}

// TestTraceDisabledIsFree pins the zero-overhead contract end to end: a full
// run with no sink performs exactly as many allocations as the same run
// with the Nop sink — i.e. the emission paths themselves allocate nothing.
func TestTraceDisabledIsFree(t *testing.T) {
	run := func(sink trace.Sink) {
		proto, err := cli.Protocol("dolev-strong", cli.Params{N: 6, T: 2, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.Config{Protocol: proto, N: 6, T: 2, Value: ident.V1, Seed: 1, Trace: sink}
		if _, err := core.Run(context.Background(), cfg); err != nil {
			t.Fatal(err)
		}
	}
	const rounds = 10
	disabled := testing.AllocsPerRun(rounds, func() { run(nil) })
	nop := testing.AllocsPerRun(rounds, func() { run(trace.Nop{}) })
	if nop != disabled {
		t.Fatalf("Nop-sink run allocates %.0f, disabled run %.0f — emission path allocates", nop, disabled)
	}
}
