// Package trace is the structured execution-tracing layer: a low-overhead
// stream of logical-time events (phase boundaries, sends, deliveries,
// signature-cache hits and misses, decisions, adversary corruption and
// rushing) emitted by the simulation engine, the TCP transport and the
// signature layer, and consumed by pluggable sinks.
//
// The paper's results are all about counting what happens inside an
// execution; a trace makes the counting inspectable. Every event carries the
// phase it belongs to and the processors involved — never a wall-clock
// timestamp — so traces of a deterministic run are themselves deterministic:
// the same configuration and seed produce byte-identical JSONL at any
// parallelism level.
//
// Overhead contract: with no sink configured the producers pay one nil check
// per potential event and allocate nothing. Event is a flat value struct
// (no pointers, no slices), so emitting through the Sink interface does not
// allocate either; Nop and Ring sinks are allocation-free per event.
package trace

import (
	"context"

	"byzex/internal/ident"
)

// Kind classifies an event.
type Kind uint8

// Event kinds, in rough lifecycle order of a run.
const (
	// KindCorrupt marks a processor as corrupted by the adversary (one
	// event per member of the faulty set, in ascending id order, before
	// phase 1).
	KindCorrupt Kind = iota + 1
	// KindPhaseStart / KindPhaseEnd bracket one lock-step phase.
	KindPhaseStart
	KindPhaseEnd
	// KindSend is a message accepted by the substrate. Phase is the sending
	// phase; Sigs/Signers/Bytes mirror the envelope's signature and payload
	// accounting; Flag marks a faulty sender.
	KindSend
	// KindOmit is a send suppressed by an adversary's send filter (the
	// split-brain and starvation wrappers): the Byzantine processor ran
	// protocol logic that wanted to send, and the adversary withheld it.
	KindOmit
	// KindDeliver is one envelope handed to a processor's Step. Phase is
	// the delivery phase (the sending phase plus one).
	KindDeliver
	// KindVerifyHit / KindVerifyMiss report signature-chain verification:
	// Sigs links accepted from the verified-prefix cache, or Sigs links
	// paying real cryptography. Phase is 0 (the signature layer does not
	// know phases).
	KindVerifyHit
	KindVerifyMiss
	// KindRush is a rushing adversary peek: the faulty processor From saw
	// Sigs envelopes of the current phase's correct traffic before acting.
	KindRush
	// KindDecide is a processor's final output: Value and Flag (decided).
	KindDecide
	// KindEnqueue / KindReject / KindInstanceStart / KindInstanceDone are
	// serving-layer events (package service); none of them carries a phase
	// (Phase is 0 — instances have internal phases of their own). Field
	// reuse, in the package's established style:
	//
	//   enqueue:        Sigs = admission-queue depth after the enqueue,
	//                   Value = the submitted value.
	//   reject:         Sigs = queue depth at rejection, Flag = true when
	//                   rejected because the service is draining (false:
	//                   queue full).
	//   instance-start: Signers = instance id, Sigs = batch size,
	//                   Value = the packed batch value the instance agrees on.
	//   instance-done:  Signers = instance id, Sigs = batch size,
	//                   Bytes = messages sent by correct processors during
	//                   the instance (the amortization numerator),
	//                   Value = decided value, Flag = agreement reached.
	//
	// The instance-scoped events (instance-start, the instance's internal
	// events when per-instance tracing is on, instance-done) are emitted by
	// the service's delivery stage in strict instance-id order, so that part
	// of a merged trace is byte-identical at any shard count. The
	// admission-scoped events (enqueue, reject, batch-adapt) carry live queue
	// gauges and interleave by wall time — they describe the offered load,
	// not the deterministic executions (Kind.AdmissionScoped).
	KindEnqueue
	KindReject
	KindInstanceStart
	KindInstanceDone
	// KindFaultDrop / KindFaultDelay / KindFaultDup / KindFaultReorder
	// report a fault-plan action (package faultnet) applied to the frame
	// From sent to To during sending phase Phase; fault-delay carries the
	// hold duration in Sigs. The events are derived from the plan — a pure
	// function of the seed — not from observed arrivals, so fault traces
	// stay byte-identical across replays and can be checked against
	// Plan.ExpectedCounters exactly.
	KindFaultDrop
	KindFaultDelay
	KindFaultDup
	KindFaultReorder
	// KindFaultCrash reports processor From halting at the start of phase
	// Phase under a crash-at-phase-k rule.
	KindFaultCrash
	// KindBatchAdapt reports the serving layer's adaptive batching
	// controller moving its target batch size: Signers = previous target,
	// Sigs = new target, Bytes = the admission-queue depth that triggered
	// the decision, Flag = true when the target grew (backlog), false when
	// it shrank (idle). Like enqueue/reject it is admission-scoped: the
	// controller reacts to live load, so these events are not part of the
	// deterministic replay contract.
	KindBatchAdapt
	// KindReplay reports one journaled admission re-submitted during crash
	// recovery: Signers = the instance id being replayed, Sigs = the batch
	// size, Flag = true when the replayed instance completed successfully.
	// Replay runs before live traffic is admitted, so these events are
	// deterministic given the journal contents.
	KindReplay
	// KindCheckpoint reports a journal checkpoint attempt — mid-run (live
	// compaction, from the delivery path) or on drain: Signers = the
	// delivered watermark persisted, Sigs = instances completed at that
	// point, Flag = true when the checkpoint write succeeded.
	// Admission-scoped: checkpoints record live progress.
	KindCheckpoint
	// KindSearchEval reports one candidate evaluation by the adversary
	// search (package search): Signers = the evaluation index, Sigs = the
	// measured objective cost (0 when infeasible), Flag = true when the
	// candidate was feasible. The search is deterministic in its seed, so
	// these events are part of the byte-identical replay contract.
	KindSearchEval
	// KindSearchBest reports a new search incumbent: Signers = the
	// evaluation index that produced it, Sigs = the improved cost.
	KindSearchBest
	// KindSearchViolation reports a candidate that broke an agreement
	// condition: Signers = the evaluation index. For correct protocols this
	// event is fatal to the gap gate; for strawmen it is the expected find.
	KindSearchViolation
)

// NumKinds bounds the Kind space: valid kinds are 1 <= k < NumKinds. Fixed
// per-kind counter arrays (Spool, the metrics exporter) are sized by it.
const NumKinds = int(KindSearchViolation) + 1

// kindNames maps kinds to their wire names (see jsonl.go).
var kindNames = map[Kind]string{
	KindCorrupt:         "corrupt",
	KindPhaseStart:      "phase-start",
	KindPhaseEnd:        "phase-end",
	KindSend:            "send",
	KindOmit:            "omit",
	KindDeliver:         "deliver",
	KindVerifyHit:       "verify-hit",
	KindVerifyMiss:      "verify-miss",
	KindRush:            "rush",
	KindDecide:          "decide",
	KindEnqueue:         "enqueue",
	KindReject:          "reject",
	KindInstanceStart:   "instance-start",
	KindInstanceDone:    "instance-done",
	KindFaultDrop:       "fault-drop",
	KindFaultDelay:      "fault-delay",
	KindFaultDup:        "fault-dup",
	KindFaultReorder:    "fault-reorder",
	KindFaultCrash:      "fault-crash",
	KindBatchAdapt:      "batch-adapt",
	KindReplay:          "replay",
	KindCheckpoint:      "checkpoint",
	KindSearchEval:      "search-eval",
	KindSearchBest:      "search-best",
	KindSearchViolation: "search-violation",
}

// AdmissionScoped reports whether k is a serving-layer admission-side event
// (enqueue, reject, batch-adapt). Those events carry live queue gauges and
// interleave by wall time, so they are excluded from the byte-identical
// merged-trace contract the instance-scoped events keep at any shard count.
func (k Kind) AdmissionScoped() bool {
	return k == KindEnqueue || k == KindReject || k == KindBatchAdapt || k == KindCheckpoint
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return "unknown"
}

// Event is one structured trace record. It is a flat value type by design:
// emitting one never allocates, and events can be compared with ==.
type Event struct {
	// Kind classifies the event.
	Kind Kind
	// Phase is the logical phase the event belongs to (0 when unknown).
	Phase int
	// From is the acting or sending processor (ident.None when n/a).
	From ident.ProcID
	// To is the recipient (ident.None when n/a).
	To ident.ProcID
	// Sigs counts signature links (send/omit: SigTotal; verify: links;
	// rush: envelopes peeked).
	Sigs int
	// Signers counts distinct signer identities on a send.
	Signers int
	// Bytes is the payload size of a send.
	Bytes int
	// Value is the decided value on a KindDecide event.
	Value ident.Value
	// Flag is event-specific: faulty sender (send), decided (decide).
	Flag bool
}

// Sink consumes events. Emit is called from the goroutine executing the
// traced run; a sink used by a single run needs no locking (the engine is
// single-threaded, and the TCP transport gives each peer a private recorder
// and merges deterministically afterwards). Emit must not retain interior
// state of the event beyond the call — trivially true since Event is flat.
type Sink interface {
	Emit(Event)
}

// Nop is the explicit no-op sink: tracing machinery enabled, output
// discarded. Producers treat a nil Sink the same way; Nop exists so the
// "sink wired but silent" path can be benchmarked separately from the nil
// fast path.
type Nop struct{}

// Emit implements Sink.
func (Nop) Emit(Event) {}

// Buffer is an unbounded in-memory sink that retains every event in emission
// order. It is the merge unit for parallel sweeps: each worker writes its
// own Buffer, and the buffers are drained into the final sink in submission
// order, keeping merged traces deterministic. Not safe for concurrent use.
type Buffer struct {
	events []Event
}

// NewBuffer returns an empty Buffer.
func NewBuffer() *Buffer { return &Buffer{} }

// Emit implements Sink.
func (b *Buffer) Emit(e Event) { b.events = append(b.events, e) }

// Events returns the recorded events in emission order. The slice is the
// buffer's backing storage; callers must not mutate it while emitting.
func (b *Buffer) Events() []Event { return b.events }

// Len returns how many events the buffer holds.
func (b *Buffer) Len() int { return len(b.events) }

// DrainTo emits every buffered event into dst in order and empties the
// buffer.
func (b *Buffer) DrainTo(dst Sink) {
	for _, e := range b.events {
		dst.Emit(e)
	}
	b.events = b.events[:0]
}

// Reset empties the buffer, keeping the backing storage — the serving
// layer's shard workers reuse one buffer per shard across instances.
func (b *Buffer) Reset() { b.events = b.events[:0] }

// Ring is a fixed-capacity sink keeping the most recent events. Emitting
// into a full ring overwrites the oldest event and never allocates — the
// sink of choice for always-on tracing of long runs and for tests that only
// need the tail.
type Ring struct {
	buf     []Event
	next    int
	wrapped bool
	dropped int
}

// NewRing returns a ring holding at most capacity events (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Emit implements Sink.
func (r *Ring) Emit(e Event) {
	if r.wrapped {
		r.dropped++
	}
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.wrapped = true
	}
}

// Events returns the retained events, oldest first, as a fresh slice.
func (r *Ring) Events() []Event {
	if !r.wrapped {
		return append([]Event(nil), r.buf[:r.next]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Dropped returns how many events were overwritten.
func (r *Ring) Dropped() int { return r.dropped }

// Len returns how many events the ring currently retains.
func (r *Ring) Len() int {
	if r.wrapped {
		return len(r.buf)
	}
	return r.next
}

// Cap returns the ring's fixed capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// ctxKey keys the sink carried by a context.
type ctxKey struct{}

// NewContext returns a context carrying s. core.Run and transport.RunCluster
// fall back to the context sink when their config carries none, which lets
// orchestration layers (the experiment sweeps, the lower-bound attacks)
// inject per-worker sinks without threading a field through every call.
func NewContext(ctx context.Context, s Sink) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the sink carried by ctx, or nil.
func FromContext(ctx context.Context) Sink {
	s, _ := ctx.Value(ctxKey{}).(Sink)
	return s
}
