// Bounded trace spooling for long-running serving processes.
//
// The serving layer's original -trace wiring buffered every event in memory
// and wrote the file on drain — fine for a benchmark, fatal for a server
// under sustained load (the buffer grows without bound for as long as the
// process lives). A Spool keeps -trace alive for arbitrarily long runs by
// splitting the stream along the boundary the trace contract already draws
// (Kind.AdmissionScoped):
//
//   - Instance-scoped events (instance-start, per-instance internals,
//     instance-done) are written through to a JSONL writer as they arrive
//     and flushed to the underlying file at every instance-done, so the
//     on-disk trace is complete up to the last delivered instance and the
//     process retains nothing. These events arrive in instance-id order
//     (the service's delivery stage emits them), so the spooled file keeps
//     the byte-identical-at-any-shard-count property.
//
//   - Admission-scoped events (enqueue, reject, batch-adapt) carry live
//     queue gauges and arrive at the offered-load rate — potentially
//     millions over a long run. They go to a fixed-capacity ring; overwrites
//     are counted, not buffered. Close appends the ring's surviving tail to
//     the file, newest window last, and the drop counter is exported
//     through the metrics endpoint (byzex_trace_spool_dropped_total).
//
// A Spool also folds every event — including the ones the ring later
// drops — into a live Summary and per-kind counters, so a metrics scrape
// can report trace totals without retaining or replaying the stream.
package trace

import (
	"io"
	"sync"
)

// Spool is the bounded sink behind `baserve -trace` (see the package-level
// spooling notes above). It is safe for concurrent Emit; snapshots for the
// metrics exporter are taken under the same mutex Emit holds, so a scrape
// observes a consistent cut of all counters.
type Spool struct {
	mu      sync.Mutex
	out     *JSONL
	ring    *Ring
	sum     Summary
	kinds   [NumKinds]uint64
	flushed uint64
	closed  bool
}

// NewSpool returns a spool writing instance-scoped events to w (JSONL,
// flushed at every instance-done) and retaining at most ringCap
// admission-scoped events (minimum 1).
func NewSpool(w io.Writer, ringCap int) *Spool {
	return &Spool{out: NewJSONL(w), ring: NewRing(ringCap)}
}

// Emit implements Sink. Admission-scoped events go to the ring (overwrites
// are counted as drops); everything else is written through to the JSONL
// output. Events emitted after Close are counted but not written.
func (sp *Spool) Emit(e Event) {
	sp.mu.Lock()
	sp.sum.Add(e)
	if k := int(e.Kind); k > 0 && k < NumKinds {
		sp.kinds[k]++
	}
	if sp.closed {
		sp.mu.Unlock()
		return
	}
	if e.Kind.AdmissionScoped() {
		sp.ring.Emit(e)
	} else {
		sp.out.Emit(e)
		sp.flushed++
		if e.Kind == KindInstanceDone {
			// Instance boundary: make the file durable up to here. The
			// JSONL error is sticky; Close surfaces it.
			_ = sp.out.Flush()
		}
	}
	sp.mu.Unlock()
}

// Close appends the ring's retained admission-scoped tail to the output
// (oldest surviving event first), flushes, and returns the first error any
// write encountered. Further Emits still count but write nothing.
func (sp *Spool) Close() error {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.closed {
		return sp.out.Flush()
	}
	sp.closed = true
	for _, e := range sp.ring.Events() {
		sp.out.Emit(e)
		sp.flushed++
	}
	return sp.out.Flush()
}

// SpoolStats is one consistent snapshot of a spool's counters.
type SpoolStats struct {
	// Events counts every event emitted, whether flushed, retained or
	// dropped.
	Events uint64
	// Flushed counts events written through to the JSONL output.
	Flushed uint64
	// RingLen / RingCap gauge the admission-scoped ring; Dropped counts
	// ring overwrites — the spool-drop counter the metrics endpoint
	// exports.
	RingLen int
	RingCap int
	Dropped uint64
	// Kinds counts events per Kind (indexed by Kind value; index 0 unused).
	Kinds [NumKinds]uint64
	// Summary is the live aggregate of every event emitted, dropped or not
	// — the same totals Summarize would compute over the full stream.
	Summary Summary
}

// StatsInto snapshots the spool into out, reusing out's storage
// (out.Summary.PerPhase) so steady-state snapshots allocate nothing — the
// metrics scrape path's contract.
func (sp *Spool) StatsInto(out *SpoolStats) {
	perPhase := out.Summary.PerPhase
	sp.mu.Lock()
	out.Events = uint64(sp.sum.Events)
	out.Flushed = sp.flushed
	out.RingLen = sp.ring.Len()
	out.RingCap = sp.ring.Cap()
	out.Dropped = uint64(sp.ring.Dropped())
	out.Kinds = sp.kinds
	out.Summary = sp.sum
	out.Summary.PerPhase = append(perPhase[:0], sp.sum.PerPhase...)
	sp.mu.Unlock()
}

// Stats returns a fresh snapshot (allocates; scrape paths use StatsInto).
func (sp *Spool) Stats() SpoolStats {
	var out SpoolStats
	sp.StatsInto(&out)
	return out
}
