package sig_test

import (
	"fmt"
	"log"

	"byzex/internal/ident"
	"byzex/internal/sig"
)

// ExampleChain demonstrates the relay pattern every algorithm in this
// module uses: a value signed by the transmitter, co-signed by relays, and
// verified by a receiver — with truncation detected.
func ExampleChain() {
	scheme := sig.NewHMAC(3, 42)
	transmitter, _ := scheme.Signer(0)
	relay, _ := scheme.Signer(1)

	// The transmitter signs its value; the relay extends the chain.
	msg := sig.NewSignedValue(transmitter, ident.V1)
	msg = msg.CoSign(relay)

	if err := msg.Verify(scheme); err != nil {
		log.Fatal(err)
	}
	fmt.Println("chain valid, signers:", msg.Chain.Signers())

	// Swapping the value invalidates every signature.
	forged := msg
	forged.Value = ident.V0
	fmt.Println("forgery detected:", forged.Verify(scheme) != nil)
	// Output:
	// chain valid, signers: [p0 p1]
	// forgery detected: true
}

// ExamplePlainScheme shows the unauthenticated model of Corollary 1: tags
// are forgeable by construction, so forwarded information is never
// verifiable.
func ExamplePlainScheme() {
	scheme := sig.NewPlain(4)
	// Anybody can fabricate processor 2's tag.
	forgedTag := []byte{0, 0, 0, 2}
	fmt.Println("forged tag accepted:", scheme.Verify(2, []byte("anything"), forgedTag))
	// Output:
	// forged tag accepted: true
}
