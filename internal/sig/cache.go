package sig

import (
	"crypto/sha256"
	"encoding/binary"
	"sync"
	"sync/atomic"

	"byzex/internal/ident"
	"byzex/internal/trace"
)

// CachedVerifier wraps a Verifier with a verified-prefix cache for signature
// chains. The paper's relay-style algorithms re-verify a chain on every hop,
// and since link i signs over links 0..i-1 a chain of length L costs O(L²)
// signature checks over its lifetime. The cache remembers which exact chain
// prefixes have already verified over which exact body, so a relayed chain
// only pays crypto for the links appended since the last time it was seen —
// O(L) over the chain's lifetime.
//
// Soundness. A cache entry is the rolling digest
//
//	k₀ = SHA-256(0x00 ‖ body)
//	kᵢ = SHA-256(0x01 ‖ kᵢ₋₁ ‖ signerᵢ ‖ len(sigᵢ) ‖ sigᵢ)
//
// so an entry commits to the body, every signer identity, and every
// signature's exact bytes — the full signing input of every link in the
// prefix plus the link's own signature. Tampering with any byte of a cached
// prefix (a forged or truncated link, a swapped signer, a different body)
// changes the digest and misses the cache, forcing real cryptographic
// verification. Equal digests imply (by SHA-256 collision resistance)
// byte-identical (body, prefix) pairs, for which the verification outcome is
// identical by determinism of Verify. Only successful verifications are
// inserted, so the cache can never convert a rejection into an acceptance.
//
// The cache is safe for concurrent use; single-signature Verify calls pass
// through to the wrapped Verifier uncached (hashing the message would cost
// as much as verifying it).
type CachedVerifier struct {
	Verifier

	mu       sync.RWMutex
	verified map[[sha256.Size]byte]struct{}

	hits   atomic.Int64
	misses atomic.Int64

	// sink receives KindVerifyHit/KindVerifyMiss events (nil disables).
	sink trace.Sink
}

var _ Verifier = (*CachedVerifier)(nil)

// NewCachedVerifier wraps v with an empty verified-prefix cache. The cache
// is scoped to v: never reuse a CachedVerifier across signature schemes (two
// schemes can disagree about the same bytes).
func NewCachedVerifier(v Verifier) *CachedVerifier {
	return &CachedVerifier{
		Verifier: v,
		verified: make(map[[sha256.Size]byte]struct{}),
	}
}

// Stats returns how many chain links were accepted from the cache (hits) and
// how many were cryptographically verified (misses).
func (cv *CachedVerifier) Stats() (hits, misses int64) {
	return cv.hits.Load(), cv.misses.Load()
}

// SetTrace attaches a sink that receives one KindVerifyHit event per chain
// verification that skipped links via the cache and one KindVerifyMiss event
// per verification that paid cryptography (Sigs carries the link counts).
// Call before the run starts; the sink itself must be safe for whatever
// concurrency the verifier sees (the single-threaded engine needs none).
func (cv *CachedVerifier) SetTrace(s trace.Sink) { cv.sink = s }

// prefixKeys returns the rolling digest for every prefix length 1..len(c):
// keys[i] commits to body and links 0..i.
func prefixKeys(body []byte, c Chain) [][sha256.Size]byte {
	h := sha256.New()
	h.Write([]byte{0x00})
	h.Write(body)
	var prev [sha256.Size]byte
	h.Sum(prev[:0])

	keys := make([][sha256.Size]byte, len(c))
	var u32 [4]byte
	for i, l := range c {
		h.Reset()
		h.Write([]byte{0x01})
		h.Write(prev[:])
		binary.BigEndian.PutUint32(u32[:], uint32(l.Signer))
		h.Write(u32[:])
		binary.BigEndian.PutUint32(u32[:], uint32(len(l.Sig)))
		h.Write(u32[:])
		h.Write(l.Sig)
		h.Sum(prev[:0])
		keys[i] = prev
	}
	return keys
}

// verifyChain checks c over body, skipping the longest prefix already known
// to verify. Chain.Verify dispatches here when handed a *CachedVerifier.
func (cv *CachedVerifier) verifyChain(c Chain, body []byte) error {
	if len(c) == 0 {
		return nil
	}
	keys := prefixKeys(body, c)

	// Longest verified prefix. Insertions are monotone (a prefix is only
	// inserted after all shorter ones), so scanning from the full length
	// down and stopping at the first hit is exact.
	start := 0
	cv.mu.RLock()
	for i := len(keys); i >= 1; i-- {
		if _, ok := cv.verified[keys[i-1]]; ok {
			start = i
			break
		}
	}
	cv.mu.RUnlock()
	cv.hits.Add(int64(start))
	if cv.sink != nil && start > 0 {
		cv.sink.Emit(trace.Event{Kind: trace.KindVerifyHit, From: ident.None, To: ident.None, Sigs: start})
	}

	checked := 0
	for i := start; i < len(c); i++ {
		cv.misses.Add(1)
		checked++
		if !cv.Verifier.Verify(c[i].Signer, signingInput(body, c[:i]), c[i].Sig) {
			if cv.sink != nil {
				cv.sink.Emit(trace.Event{Kind: trace.KindVerifyMiss, From: c[i].Signer, To: ident.None, Sigs: checked})
			}
			return linkError(i, c[i].Signer)
		}
	}
	if cv.sink != nil && checked > 0 {
		cv.sink.Emit(trace.Event{Kind: trace.KindVerifyMiss, From: ident.None, To: ident.None, Sigs: checked})
	}
	if start < len(c) {
		cv.mu.Lock()
		for i := start; i < len(c); i++ {
			cv.verified[keys[i]] = struct{}{}
		}
		cv.mu.Unlock()
	}
	return nil
}
