package sig

import "byzex/internal/wire"

// SignedBytes is an arbitrary byte-string body carrying a signature chain.
// Algorithm 4 exchanges signed strings (not agreement values), and
// Algorithm 5's "strings" are signed [index, processor list] bodies, so the
// chain machinery must work over raw bodies as well as values.
type SignedBytes struct {
	Body  []byte
	Chain Chain
}

// NewSignedBytes signs body as the first link of a fresh chain.
func NewSignedBytes(s Signer, body []byte) SignedBytes {
	return SignedBytes{Body: body, Chain: Append(s, body, nil)}
}

// CoSign returns a copy with s's signature appended.
func (sb SignedBytes) CoSign(s Signer) SignedBytes {
	return SignedBytes{Body: sb.Body, Chain: Append(s, sb.Body, sb.Chain)}
}

// Verify checks the chain cryptographically and that it is non-empty.
func (sb SignedBytes) Verify(v Verifier) error {
	if len(sb.Chain) == 0 {
		return ErrEmptyChain
	}
	return sb.Chain.Verify(v, sb.Body)
}

// Encode appends the canonical encoding to w.
func (sb SignedBytes) Encode(w *wire.Writer) {
	w.BytesField(sb.Body)
	sb.Chain.Encode(w)
}

// DecodeSignedBytes reads a SignedBytes previously written with Encode. The
// body aliases the reader's buffer under the same lifetime contract as
// DecodeChain: transports keep payload bytes alive for as long as the
// decoding node can reference them.
func DecodeSignedBytes(r *wire.Reader) SignedBytes {
	body := r.BytesField()
	c := DecodeChain(r)
	return SignedBytes{Body: body, Chain: c}
}

// Marshal returns the standalone canonical encoding.
func (sb SignedBytes) Marshal() []byte {
	w := wire.NewWriter(16 + len(sb.Body) + len(sb.Chain)*48)
	sb.Encode(w)
	return w.Bytes()
}

// UnmarshalSignedBytes decodes a standalone encoding produced by Marshal.
func UnmarshalSignedBytes(b []byte) (SignedBytes, error) {
	r := wire.NewReader(b)
	sb := DecodeSignedBytes(r)
	if err := r.Finish(); err != nil {
		return SignedBytes{}, err
	}
	return sb, nil
}
