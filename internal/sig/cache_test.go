package sig_test

import (
	"errors"
	"sync"
	"testing"

	"byzex/internal/ident"
	"byzex/internal/sig"
)

func buildChain(scheme sig.Scheme, body []byte, links int) sig.Chain {
	var c sig.Chain
	for i := 0; i < links; i++ {
		s, _ := scheme.Signer(ident.ProcID(i))
		c = sig.Append(s, body, c)
	}
	return c
}

// TestCachedVerifierCounts: the first verification pays one miss per link;
// re-verifying the same chain is all hits; extending the chain pays only for
// the new link.
func TestCachedVerifierCounts(t *testing.T) {
	scheme := sig.NewHMAC(8, 1)
	body := sig.ValueBody(ident.V1)
	c := buildChain(scheme, body, 4)
	cv := sig.NewCachedVerifier(scheme)

	if err := c.Verify(cv, body); err != nil {
		t.Fatal(err)
	}
	if h, m := cv.Stats(); h != 0 || m != 4 {
		t.Fatalf("first pass: hits=%d misses=%d, want 0/4", h, m)
	}
	if err := c.Verify(cv, body); err != nil {
		t.Fatal(err)
	}
	if h, m := cv.Stats(); h != 4 || m != 4 {
		t.Fatalf("second pass: hits=%d misses=%d, want 4/4", h, m)
	}

	s4, _ := scheme.Signer(4)
	ext := sig.Append(s4, body, c)
	if err := ext.Verify(cv, body); err != nil {
		t.Fatal(err)
	}
	if h, m := cv.Stats(); h != 8 || m != 5 {
		t.Fatalf("after extend: hits=%d misses=%d, want 8/5", h, m)
	}
}

// TestCachedVerifierRejectsTamperedPrefix is the soundness test: after a
// chain verifies (and its prefixes are cached), corrupting a link inside the
// previously-cached prefix must still be rejected — the tampered bytes miss
// the cache and hit real cryptography.
func TestCachedVerifierRejectsTamperedPrefix(t *testing.T) {
	scheme := sig.NewHMAC(8, 1)
	body := sig.ValueBody(ident.V1)
	c := buildChain(scheme, body, 4)
	cv := sig.NewCachedVerifier(scheme)
	if err := c.Verify(cv, body); err != nil {
		t.Fatal(err)
	}

	tamper := func(mutate func(sig.Chain)) sig.Chain {
		bad := make(sig.Chain, len(c))
		for i, l := range c {
			bad[i] = sig.Link{Signer: l.Signer, Sig: append([]byte(nil), l.Sig...)}
		}
		mutate(bad)
		return bad
	}

	cases := []struct {
		name string
		bad  sig.Chain
	}{
		{"flip a signature byte in link 1", tamper(func(c sig.Chain) { c[1].Sig[0] ^= 0xff })},
		{"swap the signer of link 0", tamper(func(c sig.Chain) { c[0].Signer = 5 })},
		{"truncate link 2's signature", tamper(func(c sig.Chain) { c[2].Sig = c[2].Sig[:len(c[2].Sig)-1] })},
	}
	for _, tc := range cases {
		if err := tc.bad.Verify(cv, body); err == nil {
			t.Errorf("%s: tampered chain accepted", tc.name)
		}
	}
	// The intact chain still verifies afterwards (rejections poison nothing).
	if err := c.Verify(cv, body); err != nil {
		t.Fatalf("intact chain after tamper attempts: %v", err)
	}
	// A different body over the same links must also re-verify, not hit.
	otherBody := sig.ValueBody(ident.V0)
	if err := c.Verify(cv, otherBody); err == nil {
		t.Error("chain accepted over a body it never signed")
	}
}

// TestCachedVerifierFailedVerifyNotCached: a rejected chain leaves no cache
// entries behind that could later mask the forgery.
func TestCachedVerifierFailedVerifyNotCached(t *testing.T) {
	scheme := sig.NewHMAC(8, 1)
	body := sig.ValueBody(ident.V1)
	c := buildChain(scheme, body, 3)
	bad := make(sig.Chain, len(c))
	copy(bad, c)
	bad[0] = sig.Link{Signer: c[0].Signer, Sig: append([]byte(nil), c[0].Sig...)}
	bad[0].Sig[0] ^= 1

	cv := sig.NewCachedVerifier(scheme)
	if err := bad.Verify(cv, body); err == nil {
		t.Fatal("tampered chain accepted cold")
	}
	if err := bad.Verify(cv, body); err == nil {
		t.Fatal("tampered chain accepted on retry")
	}
	if h, _ := cv.Stats(); h != 0 {
		t.Fatalf("rejected chain produced %d cache hits", h)
	}
}

// TestCachedVerifierSingleSigPassthrough: plain Verify calls bypass the cache.
func TestCachedVerifierSingleSigPassthrough(t *testing.T) {
	scheme := sig.NewHMAC(4, 1)
	cv := sig.NewCachedVerifier(scheme)
	signer, _ := scheme.Signer(2)
	msg := []byte("message")
	tag := signer.Sign(msg)
	if !cv.Verify(2, msg, tag) {
		t.Fatal("valid signature rejected")
	}
	if cv.Verify(1, msg, tag) {
		t.Fatal("signature accepted for the wrong signer")
	}
	if h, m := cv.Stats(); h != 0 || m != 0 {
		t.Fatalf("single-signature Verify touched the chain counters: %d/%d", h, m)
	}
}

// TestCachedVerifierConcurrent hammers one shared cache from many goroutines
// mixing good chains, extensions and forgeries — run under -race this checks
// the locking; the assertions check that concurrency never changes answers.
func TestCachedVerifierConcurrent(t *testing.T) {
	scheme := sig.NewHMAC(16, 1)
	body := sig.ValueBody(ident.V1)
	full := buildChain(scheme, body, 12)
	forged := make(sig.Chain, len(full))
	for i, l := range full {
		forged[i] = sig.Link{Signer: l.Signer, Sig: append([]byte(nil), l.Sig...)}
	}
	forged[6].Sig[3] ^= 0x40

	cv := sig.NewCachedVerifier(scheme)
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				prefix := full[:1+(g+iter)%len(full)]
				if err := prefix.Verify(cv, body); err != nil {
					errc <- err
					return
				}
				if err := forged.Verify(cv, body); err == nil {
					errc <- errors.New("forged chain accepted")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	h, m := cv.Stats()
	if h == 0 || m == 0 {
		t.Fatalf("expected both hits and misses, got %d/%d", h, m)
	}
}
