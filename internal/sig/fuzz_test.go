package sig_test

import (
	"testing"

	"byzex/internal/ident"
	"byzex/internal/sig"
)

// FuzzUnmarshalSignedValue checks that arbitrary bytes never panic the
// decoder and that anything it accepts re-marshals canonically.
func FuzzUnmarshalSignedValue(f *testing.F) {
	scheme := sig.NewHMAC(4, 1)
	s0, _ := scheme.Signer(0)
	s1, _ := scheme.Signer(1)
	sv := sig.NewSignedValue(s0, ident.V1).CoSign(s1)
	f.Add(sv.Marshal())
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		decoded, err := sig.UnmarshalSignedValue(data)
		if err != nil {
			return
		}
		// Accepted input must round-trip to identical bytes (canonical
		// encoding — anything else would let one signed message have two
		// wire forms).
		re := decoded.Marshal()
		if string(re) != string(data) {
			t.Fatalf("non-canonical acceptance: %x -> %x", data, re)
		}
	})
}

// FuzzUnmarshalSignedBytes is the SignedBytes counterpart.
func FuzzUnmarshalSignedBytes(f *testing.F) {
	scheme := sig.NewHMAC(4, 1)
	s0, _ := scheme.Signer(0)
	f.Add(sig.NewSignedBytes(s0, []byte("body")).Marshal())
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		decoded, err := sig.UnmarshalSignedBytes(data)
		if err != nil {
			return
		}
		if string(decoded.Marshal()) != string(data) {
			t.Fatalf("non-canonical acceptance")
		}
	})
}

// FuzzChainVerifyNeverAcceptsUnsigned feeds structurally valid but
// unsigned chains to Verify: it must reject everything not produced by a
// real signer.
func FuzzChainVerifyNeverAcceptsUnsigned(f *testing.F) {
	f.Add([]byte("body"), []byte("sig-bytes"), int64(0))
	f.Fuzz(func(t *testing.T, body, sigBytes []byte, signer int64) {
		scheme := sig.NewHMAC(4, 1)
		c := sig.Chain{{Signer: ident.ProcID(signer % 4), Sig: sigBytes}}
		if err := c.Verify(scheme, body); err == nil {
			t.Fatalf("accepted fabricated signature %x", sigBytes)
		}
	})
}
