package sig

import (
	"errors"
	"fmt"

	"byzex/internal/ident"
	"byzex/internal/wire"
)

// Chain-related errors.
var (
	// ErrEmptyChain indicates a chain with no links where one was required.
	ErrEmptyChain = errors.New("sig: empty chain")
	// ErrDuplicateSigner indicates the same processor signed twice in a
	// chain that requires distinct signers.
	ErrDuplicateSigner = errors.New("sig: duplicate signer in chain")
)

// Link is one signature in a chain: a signer identity plus its signature
// bytes. The i-th link signs the canonical encoding of the body together
// with links 0..i-1, so a chain commits to its order and cannot be
// truncated-and-extended undetectably.
type Link struct {
	Signer ident.ProcID
	Sig    []byte
}

// Chain is an ordered sequence of signatures over a message body. The
// paper's algorithms append signatures as messages are relayed; a "correct
// 1-message" in Algorithm 1, an "increasing message" in Algorithm 2, and a
// "valid message" in Algorithm 5 are all bodies with chains satisfying
// protocol-specific structural predicates on top of cryptographic validity.
type Chain []Link

// signingInput builds the byte string that link number `upto` signs: the
// body followed by the canonical encoding of the preceding links.
func signingInput(body []byte, prefix Chain) []byte {
	w := wire.NewWriter(len(body) + 8 + len(prefix)*40)
	w.BytesField(body)
	w.Uint(uint64(len(prefix)))
	for _, l := range prefix {
		w.Proc(l.Signer)
		w.BytesField(l.Sig)
	}
	return w.Bytes()
}

// Append extends the chain with a signature by s over body. It returns a new
// chain; the receiver is not modified (chains flow between goroutines in the
// TCP transport, so we copy at the boundary per the style guide).
func Append(s Signer, body []byte, c Chain) Chain {
	out := make(Chain, len(c), len(c)+1)
	copy(out, c)
	return append(out, Link{Signer: s.ID(), Sig: s.Sign(signingInput(body, out))})
}

// Verify checks every link of the chain cryptographically. It does not
// impose structural predicates (distinctness, ordering); protocols layer
// those on top. When v is a *CachedVerifier, links covered by an
// already-verified prefix are accepted from the cache (see cache.go for the
// soundness argument).
func (c Chain) Verify(v Verifier, body []byte) error {
	if cv, ok := v.(*CachedVerifier); ok {
		return cv.verifyChain(c, body)
	}
	for i, l := range c {
		if !v.Verify(l.Signer, signingInput(body, c[:i]), l.Sig) {
			return linkError(i, l.Signer)
		}
	}
	return nil
}

// linkError reports a failed link verification.
func linkError(i int, signer ident.ProcID) error {
	return fmt.Errorf("%w: link %d signer %v", ErrBadSignature, i, signer)
}

// Signers returns the chain's signer identities in chain order.
func (c Chain) Signers() []ident.ProcID {
	out := make([]ident.ProcID, len(c))
	for i, l := range c {
		out[i] = l.Signer
	}
	return out
}

// Has reports whether id appears among the chain's signers.
func (c Chain) Has(id ident.ProcID) bool {
	for _, l := range c {
		if l.Signer == id {
			return true
		}
	}
	return false
}

// Distinct reports whether all signers in the chain are distinct.
func (c Chain) Distinct() bool {
	seen := make(ident.Set, len(c))
	for _, l := range c {
		if !seen.Add(l.Signer) {
			return false
		}
	}
	return true
}

// DistinctCount returns the number of distinct signers in the chain.
func (c Chain) DistinctCount() int {
	seen := make(ident.Set, len(c))
	for _, l := range c {
		seen.Add(l.Signer)
	}
	return seen.Len()
}

// Clone returns a deep-enough copy of the chain (links share signature
// bytes, which are never mutated).
func (c Chain) Clone() Chain {
	out := make(Chain, len(c))
	copy(out, c)
	return out
}

// Encode appends the chain's canonical encoding to w.
func (c Chain) Encode(w *wire.Writer) {
	w.Uint(uint64(len(c)))
	for _, l := range c {
		w.Proc(l.Signer)
		w.BytesField(l.Sig)
	}
}

// DecodeChain reads a chain previously written with Encode. Sig slices alias
// the reader's buffer rather than copying: every transport honours the
// sim.Node lifetime contract — the in-memory engine never recycles payload
// bytes, and the TCP mesh retires delivered frame buffers until the epoch's
// nodes are unreachable — so the alias outlives every use of the chain.
func DecodeChain(r *wire.Reader) Chain {
	n := r.Len()
	if r.Err() != nil {
		return nil
	}
	out := make(Chain, 0, n)
	for i := 0; i < n; i++ {
		signer := r.Proc()
		sigBytes := r.BytesField()
		if r.Err() != nil {
			return nil
		}
		out = append(out, Link{Signer: signer, Sig: sigBytes})
	}
	return out
}

// SignedValue is the ubiquitous "value plus signature chain" message body
// used by most of the paper's algorithms. Helpers here keep the per-protocol
// codecs small.
type SignedValue struct {
	Value ident.Value
	Chain Chain
}

// ValueBody returns the canonical body bytes for a bare agreement value;
// chains over values sign these bytes.
func ValueBody(v ident.Value) []byte {
	w := wire.NewWriter(8)
	w.Value(v)
	return w.Bytes()
}

// NewSignedValue signs value v as the first link of a fresh chain.
func NewSignedValue(s Signer, v ident.Value) SignedValue {
	return SignedValue{Value: v, Chain: Append(s, ValueBody(v), nil)}
}

// CoSign returns a copy of sv with s's signature appended.
func (sv SignedValue) CoSign(s Signer) SignedValue {
	return SignedValue{Value: sv.Value, Chain: Append(s, ValueBody(sv.Value), sv.Chain)}
}

// Verify checks the chain cryptographically and that it is non-empty.
func (sv SignedValue) Verify(v Verifier) error {
	if len(sv.Chain) == 0 {
		return ErrEmptyChain
	}
	return sv.Chain.Verify(v, ValueBody(sv.Value))
}

// Encode appends the canonical encoding of sv to w.
func (sv SignedValue) Encode(w *wire.Writer) {
	w.Value(sv.Value)
	sv.Chain.Encode(w)
}

// DecodeSignedValue reads a SignedValue previously written with Encode.
func DecodeSignedValue(r *wire.Reader) SignedValue {
	v := r.Value()
	c := DecodeChain(r)
	return SignedValue{Value: v, Chain: c}
}

// Marshal returns the standalone canonical encoding of sv.
func (sv SignedValue) Marshal() []byte {
	w := wire.NewWriter(16 + len(sv.Chain)*48)
	sv.Encode(w)
	return w.Bytes()
}

// UnmarshalSignedValue decodes a standalone encoding produced by Marshal.
func UnmarshalSignedValue(b []byte) (SignedValue, error) {
	r := wire.NewReader(b)
	sv := DecodeSignedValue(r)
	if err := r.Finish(); err != nil {
		return SignedValue{}, err
	}
	return sv, nil
}
