// Package sig implements the authentication substrate assumed by the paper:
// a signature scheme in which every processor can sign its messages so that
// every receiver recognizes the signature, nobody can undetectably alter a
// signed message, and faulty processors may collude (pool their keys) but
// can never produce a signature of a correct processor.
//
// Three schemes are provided behind a common interface:
//
//   - HMAC: per-processor secret keys under a trusted registry, signatures
//     are HMAC-SHA256 tags. Fast; the default for simulations.
//   - Ed25519: real public-key signatures from crypto/ed25519, demonstrating
//     the system over an actual asymmetric scheme (the paper cites
//     Diffie-Hellman and RSA for this role).
//   - Plain: the unauthenticated model of Corollary 1 — every message
//     carries exactly the identity of its immediate sender and nothing can
//     be forwarded verifiably. Signing is free; verification only checks
//     the claimed sender tag.
//
// Unforgeability in the simulation is enforced structurally: the engine
// hands each node only its own Signer, and hands the adversary the Signers
// of the corrupted processors. Byzantine code can emit arbitrary bytes, but
// Verify rejects anything not produced through a Signer.
package sig

import (
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	mrand "math/rand"

	"byzex/internal/ident"
)

// Errors returned by chain and scheme validation.
var (
	// ErrBadSignature indicates a signature failed verification.
	ErrBadSignature = errors.New("sig: signature verification failed")
	// ErrUnknownSigner indicates a signer identity outside the registry.
	ErrUnknownSigner = errors.New("sig: unknown signer")
)

// Signer produces signatures for exactly one processor identity.
type Signer interface {
	// ID returns the identity this signer signs for.
	ID() ident.ProcID
	// Sign returns a signature over msg.
	Sign(msg []byte) []byte
}

// Verifier checks signatures against claimed signer identities.
type Verifier interface {
	// Verify reports whether sigBytes is a valid signature by id over msg.
	Verify(id ident.ProcID, msg, sigBytes []byte) bool
}

// Scheme is a complete signature scheme for a fixed population of
// processors: it can mint per-processor signers and verify any signature.
type Scheme interface {
	Verifier
	// Name identifies the scheme in reports ("hmac", "ed25519", "plain").
	Name() string
	// N returns the population size the scheme was instantiated for.
	N() int
	// Signer returns the signing handle for id.
	Signer(id ident.ProcID) (Signer, error)
	// SigLen returns the byte length of signatures (0 if variable).
	SigLen() int
}

// ---------------------------------------------------------------------------
// HMAC scheme

// HMACScheme signs with per-processor secret keys under a trusted registry.
// Verification recomputes the tag using the registry's copy of the key, so
// only code holding a Signer (i.e. the processor itself, or the adversary
// for corrupted processors) can produce valid signatures.
type HMACScheme struct {
	keys [][]byte
}

var _ Scheme = (*HMACScheme)(nil)

// NewHMAC creates an HMAC scheme for n processors. The seed makes key
// generation deterministic for reproducible runs; distinct seeds yield
// independent key sets.
func NewHMAC(n int, seed int64) *HMACScheme {
	rng := mrand.New(mrand.NewSource(seed))
	keys := make([][]byte, n)
	for i := range keys {
		k := make([]byte, 32)
		// math/rand Read never fails.
		_, _ = rng.Read(k)
		keys[i] = k
	}
	return &HMACScheme{keys: keys}
}

// Name implements Scheme.
func (s *HMACScheme) Name() string { return "hmac" }

// N implements Scheme.
func (s *HMACScheme) N() int { return len(s.keys) }

// SigLen implements Scheme.
func (s *HMACScheme) SigLen() int { return sha256.Size }

// Signer implements Scheme.
func (s *HMACScheme) Signer(id ident.ProcID) (Signer, error) {
	if int(id) < 0 || int(id) >= len(s.keys) {
		return nil, fmt.Errorf("%w: %v", ErrUnknownSigner, id)
	}
	return &hmacSigner{id: id, key: s.keys[id]}, nil
}

// Verify implements Verifier.
func (s *HMACScheme) Verify(id ident.ProcID, msg, sigBytes []byte) bool {
	if int(id) < 0 || int(id) >= len(s.keys) {
		return false
	}
	return hmac.Equal(hmacTag(s.keys[id], id, msg), sigBytes)
}

type hmacSigner struct {
	id  ident.ProcID
	key []byte
}

func (h *hmacSigner) ID() ident.ProcID { return h.id }

func (h *hmacSigner) Sign(msg []byte) []byte { return hmacTag(h.key, h.id, msg) }

// hmacTag binds the tag to the signer identity so that two processors that
// somehow shared a key still could not pass each other's signatures off.
func hmacTag(key []byte, id ident.ProcID, msg []byte) []byte {
	mac := hmac.New(sha256.New, key)
	var idb [4]byte
	binary.BigEndian.PutUint32(idb[:], uint32(id))
	mac.Write(idb[:])
	mac.Write(msg)
	return mac.Sum(nil)
}

// ---------------------------------------------------------------------------
// Ed25519 scheme

// Ed25519Scheme signs with real public-key signatures. Private keys are held
// by the signers; the scheme retains only public keys for verification.
type Ed25519Scheme struct {
	pub  []ed25519.PublicKey
	priv []ed25519.PrivateKey
}

var _ Scheme = (*Ed25519Scheme)(nil)

// NewEd25519 creates an Ed25519 scheme for n processors using rand as the
// entropy source (pass nil for crypto/rand).
func NewEd25519(n int, rand io.Reader) (*Ed25519Scheme, error) {
	s := &Ed25519Scheme{
		pub:  make([]ed25519.PublicKey, n),
		priv: make([]ed25519.PrivateKey, n),
	}
	for i := 0; i < n; i++ {
		pub, priv, err := ed25519.GenerateKey(rand)
		if err != nil {
			return nil, fmt.Errorf("sig: generating ed25519 key %d: %w", i, err)
		}
		s.pub[i], s.priv[i] = pub, priv
	}
	return s, nil
}

// Name implements Scheme.
func (s *Ed25519Scheme) Name() string { return "ed25519" }

// N implements Scheme.
func (s *Ed25519Scheme) N() int { return len(s.pub) }

// SigLen implements Scheme.
func (s *Ed25519Scheme) SigLen() int { return ed25519.SignatureSize }

// Signer implements Scheme.
func (s *Ed25519Scheme) Signer(id ident.ProcID) (Signer, error) {
	if int(id) < 0 || int(id) >= len(s.priv) {
		return nil, fmt.Errorf("%w: %v", ErrUnknownSigner, id)
	}
	return &edSigner{id: id, key: s.priv[id]}, nil
}

// Verify implements Verifier.
func (s *Ed25519Scheme) Verify(id ident.ProcID, msg, sigBytes []byte) bool {
	if int(id) < 0 || int(id) >= len(s.pub) {
		return false
	}
	if len(sigBytes) != ed25519.SignatureSize {
		return false
	}
	return ed25519.Verify(s.pub[id], msg, sigBytes)
}

type edSigner struct {
	id  ident.ProcID
	key ed25519.PrivateKey
}

func (e *edSigner) ID() ident.ProcID { return e.id }

func (e *edSigner) Sign(msg []byte) []byte { return ed25519.Sign(e.key, msg) }

// ---------------------------------------------------------------------------
// Plain (unauthenticated) scheme

// PlainScheme models the unauthenticated setting of Corollary 1: a
// "signature" is just the sender's identity tag. Any processor can fabricate
// any other processor's tag, so forwarded information is never verifiable —
// a receiver can only trust the identity of the immediate sender, which the
// transport guarantees independently. Protocols that require unforgeable
// chains must not be run under this scheme; it exists so the unauthenticated
// baselines pay the same bookkeeping costs.
type PlainScheme struct {
	n int
}

var _ Scheme = (*PlainScheme)(nil)

// NewPlain creates a plain scheme for n processors.
func NewPlain(n int) *PlainScheme { return &PlainScheme{n: n} }

// Name implements Scheme.
func (s *PlainScheme) Name() string { return "plain" }

// N implements Scheme.
func (s *PlainScheme) N() int { return s.n }

// SigLen implements Scheme.
func (s *PlainScheme) SigLen() int { return 4 }

// Signer implements Scheme.
func (s *PlainScheme) Signer(id ident.ProcID) (Signer, error) {
	if int(id) < 0 || int(id) >= s.n {
		return nil, fmt.Errorf("%w: %v", ErrUnknownSigner, id)
	}
	return plainSigner{id: id}, nil
}

// Verify implements Verifier. It accepts any correctly formatted tag for id:
// plain tags are forgeable by construction.
func (s *PlainScheme) Verify(id ident.ProcID, _ []byte, sigBytes []byte) bool {
	if int(id) < 0 || int(id) >= s.n {
		return false
	}
	return len(sigBytes) == 4 && binary.BigEndian.Uint32(sigBytes) == uint32(id)
}

type plainSigner struct {
	id ident.ProcID
}

func (p plainSigner) ID() ident.ProcID { return p.id }

func (p plainSigner) Sign(_ []byte) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(p.id))
	return b[:]
}
