package sig_test

import (
	"strconv"
	"testing"

	"byzex/internal/ident"
	"byzex/internal/sig"
)

func BenchmarkHMACSign(b *testing.B) {
	scheme := sig.NewHMAC(8, 1)
	signer, _ := scheme.Signer(0)
	msg := make([]byte, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = signer.Sign(msg)
	}
}

func BenchmarkHMACVerify(b *testing.B) {
	scheme := sig.NewHMAC(8, 1)
	signer, _ := scheme.Signer(0)
	msg := make([]byte, 128)
	tag := signer.Sign(msg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !scheme.Verify(0, msg, tag) {
			b.Fatal("verify failed")
		}
	}
}

func BenchmarkEd25519Sign(b *testing.B) {
	scheme, err := sig.NewEd25519(2, nil)
	if err != nil {
		b.Fatal(err)
	}
	signer, _ := scheme.Signer(0)
	msg := make([]byte, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = signer.Sign(msg)
	}
}

func BenchmarkEd25519Verify(b *testing.B) {
	scheme, err := sig.NewEd25519(2, nil)
	if err != nil {
		b.Fatal(err)
	}
	signer, _ := scheme.Signer(0)
	msg := make([]byte, 128)
	tag := signer.Sign(msg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !scheme.Verify(0, msg, tag) {
			b.Fatal("verify failed")
		}
	}
}

// BenchmarkChainVerify measures the cost of validating a chain of k links
// (the dominant cost inside Algorithm 5's report processing).
func BenchmarkChainVerify(b *testing.B) {
	for _, k := range []int{1, 4, 16, 64} {
		b.Run(name("links", k), func(b *testing.B) {
			scheme := sig.NewHMAC(k+1, 1)
			body := sig.ValueBody(ident.V1)
			var c sig.Chain
			for i := 0; i < k; i++ {
				s, _ := scheme.Signer(ident.ProcID(i))
				c = sig.Append(s, body, c)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Verify(scheme, body); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkChainVerifyCached is the same workload through a CachedVerifier:
// after the first verification every re-check of the chain is pure hashing
// against the verified-prefix cache (the path core.Run uses for every node).
func BenchmarkChainVerifyCached(b *testing.B) {
	for _, k := range []int{1, 4, 16, 64} {
		b.Run(name("links", k), func(b *testing.B) {
			scheme := sig.NewHMAC(k+1, 1)
			body := sig.ValueBody(ident.V1)
			var c sig.Chain
			for i := 0; i < k; i++ {
				s, _ := scheme.Signer(ident.ProcID(i))
				c = sig.Append(s, body, c)
			}
			cv := sig.NewCachedVerifier(scheme)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Verify(cv, body); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkChainAppend(b *testing.B) {
	scheme := sig.NewHMAC(8, 1)
	s0, _ := scheme.Signer(0)
	s1, _ := scheme.Signer(1)
	body := sig.ValueBody(ident.V1)
	base := sig.Append(s0, body, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sig.Append(s1, body, base)
	}
}

func BenchmarkSignedValueMarshalRoundTrip(b *testing.B) {
	scheme := sig.NewHMAC(8, 1)
	s0, _ := scheme.Signer(0)
	sv := sig.NewSignedValue(s0, ident.V1)
	for i := 1; i < 8; i++ {
		s, _ := scheme.Signer(ident.ProcID(i))
		sv = sv.CoSign(s)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := sv.Marshal()
		if _, err := sig.UnmarshalSignedValue(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func name(k string, v int) string {
	return k + "=" + strconv.Itoa(v)
}
