package sig_test

import (
	"bytes"
	"testing"
	"testing/quick"

	"byzex/internal/ident"
	"byzex/internal/sig"
)

func schemes(t *testing.T, n int) map[string]sig.Scheme {
	t.Helper()
	ed, err := sig.NewEd25519(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]sig.Scheme{
		"hmac":    sig.NewHMAC(n, 7),
		"ed25519": ed,
	}
}

func TestSignVerify(t *testing.T) {
	for name, s := range schemes(t, 4) {
		t.Run(name, func(t *testing.T) {
			signer, err := s.Signer(1)
			if err != nil {
				t.Fatal(err)
			}
			msg := []byte("message")
			tag := signer.Sign(msg)
			if !s.Verify(1, msg, tag) {
				t.Fatal("genuine signature rejected")
			}
			if s.Verify(2, msg, tag) {
				t.Fatal("signature accepted for wrong signer")
			}
			if s.Verify(1, []byte("other"), tag) {
				t.Fatal("signature accepted for wrong message")
			}
			tampered := append([]byte(nil), tag...)
			tampered[0] ^= 1
			if s.Verify(1, msg, tampered) {
				t.Fatal("tampered signature accepted")
			}
			if s.Verify(1, msg, nil) {
				t.Fatal("empty signature accepted")
			}
		})
	}
}

func TestSignerOutOfRange(t *testing.T) {
	for name, s := range schemes(t, 3) {
		t.Run(name, func(t *testing.T) {
			if _, err := s.Signer(3); err == nil {
				t.Fatal("out-of-range signer granted")
			}
			if _, err := s.Signer(-1); err == nil {
				t.Fatal("negative signer granted")
			}
			if s.Verify(99, []byte("m"), []byte("sig")) {
				t.Fatal("out-of-range verify accepted")
			}
		})
	}
}

func TestHMACDeterministicPerSeed(t *testing.T) {
	a, b := sig.NewHMAC(3, 1), sig.NewHMAC(3, 1)
	sa, _ := a.Signer(0)
	sb, _ := b.Signer(0)
	if !bytes.Equal(sa.Sign([]byte("x")), sb.Sign([]byte("x"))) {
		t.Fatal("same seed produced different keys")
	}
	c := sig.NewHMAC(3, 2)
	sc, _ := c.Signer(0)
	if bytes.Equal(sa.Sign([]byte("x")), sc.Sign([]byte("x"))) {
		t.Fatal("different seeds produced identical keys")
	}
}

func TestPlainSchemeIsForgeable(t *testing.T) {
	// The unauthenticated model: any processor can fabricate any tag.
	s := sig.NewPlain(4)
	signer, err := s.Signer(2)
	if err != nil {
		t.Fatal(err)
	}
	tag := signer.Sign([]byte("whatever"))
	if !s.Verify(2, []byte("anything-else"), tag) {
		t.Fatal("plain tag should verify for any message")
	}
	// Forged tag for another identity verifies too — by design.
	forged := []byte{0, 0, 0, 3}
	if !s.Verify(3, nil, forged) {
		t.Fatal("plain tags must be forgeable")
	}
	if s.Verify(2, nil, forged) {
		t.Fatal("tag for id 3 accepted for id 2")
	}
}

func TestChainAppendVerify(t *testing.T) {
	for name, s := range schemes(t, 5) {
		t.Run(name, func(t *testing.T) {
			body := []byte("chain body")
			var c sig.Chain
			for i := 0; i < 5; i++ {
				signer, _ := s.Signer(ident.ProcID(i))
				c = sig.Append(signer, body, c)
			}
			if err := c.Verify(s, body); err != nil {
				t.Fatalf("genuine chain rejected: %v", err)
			}
			if err := c.Verify(s, []byte("other body")); err == nil {
				t.Fatal("chain accepted for wrong body")
			}
			if !c.Distinct() {
				t.Fatal("distinct chain reported duplicate")
			}
			if c.DistinctCount() != 5 {
				t.Fatalf("distinct count %d != 5", c.DistinctCount())
			}
		})
	}
}

func TestChainTruncationDetected(t *testing.T) {
	s := sig.NewHMAC(4, 3)
	body := []byte("body")
	var c sig.Chain
	for i := 0; i < 3; i++ {
		signer, _ := s.Signer(ident.ProcID(i))
		c = sig.Append(signer, body, c)
	}
	// Dropping a middle link breaks later signatures (they sign the
	// prefix).
	cut := append(sig.Chain{}, c[0], c[2])
	if err := cut.Verify(s, body); err == nil {
		t.Fatal("chain with removed middle link accepted")
	}
	// Reordering breaks it too.
	swapped := append(sig.Chain{}, c[1], c[0], c[2])
	if err := swapped.Verify(s, body); err == nil {
		t.Fatal("reordered chain accepted")
	}
}

func TestChainLinkReuseAcrossPrefixesRejected(t *testing.T) {
	// A signature produced over prefix P cannot be replayed on top of a
	// different prefix P'.
	s := sig.NewHMAC(4, 3)
	body := []byte("body")
	s0, _ := s.Signer(0)
	s1, _ := s.Signer(1)
	s2, _ := s.Signer(2)

	c01 := sig.Append(s1, body, sig.Append(s0, body, nil))
	c2 := sig.Append(s2, body, nil)
	// Graft s1's link (signed over prefix [s0]) onto prefix [s2].
	grafted := append(c2.Clone(), c01[1])
	if err := grafted.Verify(s, body); err == nil {
		t.Fatal("grafted link accepted under a different prefix")
	}
}

func TestChainEncodeDecode(t *testing.T) {
	s := sig.NewHMAC(6, 9)
	s0, _ := s.Signer(0)
	sv := sig.NewSignedValue(s0, ident.V1)
	for i := 1; i < 4; i++ {
		signer, _ := s.Signer(ident.ProcID(i))
		sv = sv.CoSign(signer)
	}
	decoded, err := sig.UnmarshalSignedValue(sv.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Value != sv.Value || len(decoded.Chain) != len(sv.Chain) {
		t.Fatal("round trip mismatch")
	}
	if err := decoded.Verify(s); err != nil {
		t.Fatalf("decoded chain invalid: %v", err)
	}
}

func TestSignedValueTamperDetected(t *testing.T) {
	s := sig.NewHMAC(3, 1)
	s0, _ := s.Signer(0)
	sv := sig.NewSignedValue(s0, ident.V1)
	bad := sv
	bad.Value = ident.V0
	if err := bad.Verify(s); err == nil {
		t.Fatal("value swap accepted")
	}
}

func TestSignedBytesRoundTrip(t *testing.T) {
	s := sig.NewHMAC(3, 1)
	s0, _ := s.Signer(0)
	s1, _ := s.Signer(1)
	sb := sig.NewSignedBytes(s0, []byte("payload")).CoSign(s1)
	decoded, err := sig.UnmarshalSignedBytes(sb.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if err := decoded.Verify(s); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(decoded.Body, []byte("payload")) {
		t.Fatal("body mismatch")
	}
	if len(decoded.Chain) != 2 {
		t.Fatal("chain length mismatch")
	}
}

func TestEmptyChainRejected(t *testing.T) {
	s := sig.NewHMAC(2, 1)
	if err := (sig.SignedValue{Value: ident.V1}).Verify(s); err == nil {
		t.Fatal("empty chain accepted")
	}
	if err := (sig.SignedBytes{Body: []byte("x")}).Verify(s); err == nil {
		t.Fatal("empty bytes chain accepted")
	}
}

func TestQuickChainRoundTripAndForgery(t *testing.T) {
	scheme := sig.NewHMAC(8, 5)
	f := func(body []byte, signerIdx []uint8, flip uint16) bool {
		if len(body) == 0 || len(signerIdx) == 0 || len(signerIdx) > 8 {
			return true
		}
		var c sig.Chain
		for _, si := range signerIdx {
			signer, err := scheme.Signer(ident.ProcID(int(si) % 8))
			if err != nil {
				return false
			}
			c = sig.Append(signer, body, c)
		}
		if c.Verify(scheme, body) != nil {
			return false
		}
		// Round trip through the wire encoding.
		sb := sig.SignedBytes{Body: body, Chain: c}
		decoded, err := sig.UnmarshalSignedBytes(sb.Marshal())
		if err != nil || decoded.Verify(scheme) != nil {
			return false
		}
		// Any single bit flip in a signature must invalidate the chain.
		link := int(flip) % len(c)
		byteIdx := (int(flip) / len(c)) % len(c[link].Sig)
		c[link].Sig[byteIdx] ^= 1
		defer func() { c[link].Sig[byteIdx] ^= 1 }()
		return c.Verify(scheme, body) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
