package service_test

import (
	"context"
	"net"
	"testing"
	"time"

	"byzex/internal/service"
)

// TestPoissonScheduleDeterministic is the replayability acceptance: a fixed
// seed reproduces the arrival schedule exactly, and the schedule has the
// shape a Poisson process must have (strictly within the window, ascending,
// mean inter-arrival near 1/rate).
func TestPoissonScheduleDeterministic(t *testing.T) {
	const (
		seed     = 42
		rate     = 5000.0
		duration = 2 * time.Second
	)
	a := service.PoissonSchedule(seed, rate, duration)
	b := service.PoissonSchedule(seed, rate, duration)
	if len(a) == 0 {
		t.Fatal("empty schedule")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverges at arrival %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := service.PoissonSchedule(seed+1, rate, duration)
	diff := len(c) != len(a)
	for i := 0; !diff && i < len(a); i++ {
		diff = a[i] != c[i]
	}
	if !diff {
		t.Fatal("different seeds produced identical schedules")
	}

	prev := time.Duration(-1)
	for i, at := range a {
		if at <= prev {
			t.Fatalf("arrival %d not ascending: %v after %v", i, at, prev)
		}
		if at < 0 || at >= duration {
			t.Fatalf("arrival %d outside window: %v", i, at)
		}
		prev = at
	}
	// Expected arrivals = rate * seconds; 10k samples put the observed count
	// well within 10% at this seed count.
	want := rate * duration.Seconds()
	if got := float64(len(a)); got < 0.9*want || got > 1.1*want {
		t.Fatalf("arrival count %v, want within 10%% of %v", got, want)
	}

	if got := service.PoissonSchedule(seed, 0, duration); got != nil {
		t.Fatalf("zero rate: got %d arrivals, want none", len(got))
	}
	if got := service.PoissonSchedule(seed, rate, 0); got != nil {
		t.Fatalf("zero duration: got %d arrivals, want none", len(got))
	}
}

// TestOpenLoadAgainstService drives an open-loop run end to end over the
// wire: every scheduled arrival is accounted for (submitted or shed, never
// lost), latencies are measured per success, and the amortized-cost
// aggregation carries over from the closed-loop path.
func TestOpenLoadAgainstService(t *testing.T) {
	ctx := context.Background()
	svc, err := service.New(ctx, service.Config{
		Template:    multiTemplate(23),
		MaxInFlight: 8,
		QueueDepth:  64,
		BatchSize:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveCtx, stopServe := context.WithCancel(ctx)
	serveDone := make(chan error, 1)
	go func() { serveDone <- service.Serve(serveCtx, ln, svc) }()
	defer func() {
		stopServe()
		if err := <-serveDone; err != nil {
			t.Error(err)
		}
		svc.Close()
	}()

	stats, err := service.RunOpenLoad(ctx, service.OpenLoadConfig{
		Addr:     ln.Addr().String(),
		Conns:    8,
		Rate:     400,
		Duration: 500 * time.Millisecond,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Offered != len(service.PoissonSchedule(7, 400, 500*time.Millisecond)) {
		t.Fatalf("offered %d does not match the seeded schedule", stats.Offered)
	}
	if stats.Offered == 0 {
		t.Fatal("no arrivals offered")
	}
	if stats.Submitted+stats.Rejected != stats.Offered {
		t.Fatalf("arrivals lost: submitted %d + rejected %d != offered %d",
			stats.Submitted, stats.Rejected, stats.Offered)
	}
	if stats.Submitted == 0 {
		t.Fatal("nothing submitted")
	}
	if len(stats.Latencies) != stats.Submitted {
		t.Fatalf("%d latencies for %d submissions", len(stats.Latencies), stats.Submitted)
	}
	for i := 1; i < len(stats.Latencies); i++ {
		if stats.Latencies[i] < stats.Latencies[i-1] {
			t.Fatal("latencies not sorted")
		}
	}
	if p50, p99 := stats.Percentile(50), stats.Percentile(99); p50 <= 0 || p99 < p50 {
		t.Fatalf("percentiles inconsistent: p50=%v p99=%v", p50, p99)
	}
	if stats.ValuesServed == 0 || stats.AmortizedMsgsPerValue() <= 0 {
		t.Fatalf("amortized accounting missing: values=%d msgs/value=%v",
			stats.ValuesServed, stats.AmortizedMsgsPerValue())
	}
	// The server's own books must agree with the client's.
	st := svc.Stats()
	if st.Submitted != uint64(stats.Submitted) {
		t.Fatalf("server admitted %d, client submitted %d", st.Submitted, stats.Submitted)
	}
}

// TestOpenLoadShedsUnderOverload pins the open-loop property the SLO gate
// relies on: against a tiny queue, offered load does not slow down — excess
// arrivals are rejected and counted, not retried into a closed loop.
func TestOpenLoadShedsUnderOverload(t *testing.T) {
	ctx := context.Background()
	svc, err := service.New(ctx, service.Config{
		Template:    multiTemplate(29),
		MaxInFlight: 1,
		QueueDepth:  1,
		BatchSize:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveCtx, stopServe := context.WithCancel(ctx)
	serveDone := make(chan error, 1)
	go func() { serveDone <- service.Serve(serveCtx, ln, svc) }()
	defer func() {
		stopServe()
		<-serveDone
		svc.Close()
	}()

	// A fast machine can occasionally drain the single slot quicker than a
	// fixed offered rate fills it, so escalate until something sheds: the
	// property under test is that overload rejects rather than queues, not
	// that any particular rate constitutes overload.
	for attempt, rate := 0, float64(2000); ; attempt, rate = attempt+1, rate*4 {
		stats, err := service.RunOpenLoad(ctx, service.OpenLoadConfig{
			Addr:     ln.Addr().String(),
			Conns:    4,
			Rate:     rate,
			Duration: 300 * time.Millisecond,
			Seed:     11,
		})
		if err != nil {
			t.Fatal(err)
		}
		if stats.Submitted+stats.Rejected != stats.Offered {
			t.Fatalf("arrivals lost under overload: %d + %d != %d",
				stats.Submitted, stats.Rejected, stats.Offered)
		}
		if stats.Rejected > 0 {
			break
		}
		if attempt == 2 {
			t.Fatalf("overloaded single-slot service rejected nothing at %v/s (offered %d)",
				rate, stats.Offered)
		}
	}
}
