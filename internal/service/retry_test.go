package service_test

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"byzex/internal/service"
)

// alwaysFullServer speaks just enough of the line protocol to reject every
// submission with backpressure, forcing clients into their retry loop.
func alwaysFullServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer func() { _ = c.Close() }()
				br := bufio.NewReader(c)
				for {
					if _, err := br.ReadString('\n'); err != nil {
						return
					}
					if _, err := fmt.Fprintln(c, "ERR full"); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// TestLoadRetryHonorsCancel is the regression test for the load client's
// queue-full retry: the wait used to be a bare time.Sleep, so cancelling the
// run mid-backoff still blocked for the full RetryWait. With a 10s RetryWait
// the old code turns this test into a 10s hang; the ctx-aware wait returns
// within milliseconds of the cancel.
func TestLoadRetryHonorsCancel(t *testing.T) {
	addr := alwaysFullServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(50*time.Millisecond, cancel)

	start := time.Now()
	stats, err := service.RunLoad(ctx, service.LoadConfig{
		Addr:      addr,
		Conns:     3,
		Requests:  1,
		RetryWait: 10 * time.Second,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("load run ignored cancellation for %v", elapsed)
	}
	if stats.Rejected == 0 {
		t.Fatal("no rejections recorded; the retry path was never exercised")
	}
	if stats.Submitted != 0 {
		t.Fatalf("%d submissions against an always-full server", stats.Submitted)
	}
}
