package service_test

import (
	"context"
	"sync"
	"testing"

	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/service"
)

// countingSubstrate records which shards were opened and closed, delegating
// execution to the in-memory engine.
type countingSubstrate struct {
	mu     sync.Mutex
	opened []int
	closed []int
}

func (c *countingSubstrate) Open(shard int) service.RunFunc {
	c.mu.Lock()
	c.opened = append(c.opened, shard)
	c.mu.Unlock()
	return service.RunSim
}

func (c *countingSubstrate) Close(shard int) {
	c.mu.Lock()
	c.closed = append(c.closed, shard)
	c.mu.Unlock()
}

// TestSubstrateLifecycle pins the Substrate contract: Open is called once
// per shard at construction, Close once per shard during Service.Close
// (idempotently — a second Close must not re-close shards).
func TestSubstrateLifecycle(t *testing.T) {
	sub := &countingSubstrate{}
	svc, err := service.New(context.Background(), service.Config{
		Template:  multiTemplate(3),
		Shards:    3,
		Substrate: sub,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sub.opened); got != 3 {
		t.Fatalf("opened %d shards at construction, want 3", got)
	}
	if res, err := svc.SubmitWait(context.Background(), 7); err != nil || res.Decided != 7 {
		t.Fatalf("submit through substrate: %v (decided %v)", err, res.Decided)
	}
	svc.Close()
	svc.Close() // idempotent
	sub.mu.Lock()
	defer sub.mu.Unlock()
	if len(sub.closed) != 3 {
		t.Fatalf("closed %d shards, want 3 (exactly once each): %v", len(sub.closed), sub.closed)
	}
	seen := map[int]bool{}
	for _, sh := range sub.closed {
		if seen[sh] {
			t.Fatalf("shard %d closed twice: %v", sh, sub.closed)
		}
		seen[sh] = true
	}
}

// TestDeprecatedShardHooks is the one remaining caller of the legacy
// Config.NewShardRun/CloseShardRun pair: the shim must keep the old hook
// semantics — per-shard handles at startup, per-shard teardown on Close —
// for one release while callers migrate to Config.Substrate.
func TestDeprecatedShardHooks(t *testing.T) {
	var mu sync.Mutex
	opened, closed := []int{}, []int{}
	svc, err := service.New(context.Background(), service.Config{
		Template: multiTemplate(5),
		Shards:   2,
		NewShardRun: func(shard int) service.RunFunc {
			mu.Lock()
			opened = append(opened, shard)
			mu.Unlock()
			return service.RunSim
		},
		CloseShardRun: func(shard int) {
			mu.Lock()
			closed = append(closed, shard)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := svc.SubmitWait(context.Background(), 9); err != nil || res.Decided != 9 {
		t.Fatalf("submit through deprecated hooks: %v (decided %v)", err, res.Decided)
	}
	svc.Close()
	mu.Lock()
	defer mu.Unlock()
	if len(opened) != 2 || len(closed) != 2 {
		t.Fatalf("hooks fired opened=%v closed=%v, want 2 shards each", opened, closed)
	}
}

// TestDeprecatedCloseHookAlone pins the half-configured legacy shape:
// CloseShardRun without NewShardRun must still fire (shards fall back to
// Run), matching the old Config semantics.
func TestDeprecatedCloseHookAlone(t *testing.T) {
	var mu sync.Mutex
	closed := 0
	svc, err := service.New(context.Background(), service.Config{
		Template: multiTemplate(7),
		Shards:   2,
		Run: func(ctx context.Context, cfg core.Config) (service.Outcome, error) {
			return service.RunSim(ctx, cfg)
		},
		CloseShardRun: func(int) { mu.Lock(); closed++; mu.Unlock() },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.SubmitWait(context.Background(), ident.Value(1)); err != nil {
		t.Fatal(err)
	}
	svc.Close()
	mu.Lock()
	defer mu.Unlock()
	if closed != 2 {
		t.Fatalf("CloseShardRun fired %d times, want 2", closed)
	}
}

// TestSubstrateHookConflict rejects configs that set both the new interface
// and the deprecated hooks — silently preferring one would hide a migration
// bug.
func TestSubstrateHookConflict(t *testing.T) {
	_, err := service.New(context.Background(), service.Config{
		Template:    multiTemplate(1),
		Substrate:   service.SharedRun(service.RunSim),
		NewShardRun: func(int) service.RunFunc { return service.RunSim },
	})
	if err == nil {
		t.Fatal("Substrate + deprecated NewShardRun accepted")
	}
}
