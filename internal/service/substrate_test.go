package service_test

import (
	"context"
	"sync"
	"testing"

	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/service"
)

// countingSubstrate records which shards were opened and closed, delegating
// execution to the in-memory engine.
type countingSubstrate struct {
	mu     sync.Mutex
	opened []int
	closed []int
}

func (c *countingSubstrate) Open(shard int) service.RunFunc {
	c.mu.Lock()
	c.opened = append(c.opened, shard)
	c.mu.Unlock()
	return service.RunSim
}

func (c *countingSubstrate) Close(shard int) {
	c.mu.Lock()
	c.closed = append(c.closed, shard)
	c.mu.Unlock()
}

// TestSubstrateLifecycle pins the Substrate contract: Open is called once
// per shard at construction, Close once per shard during Service.Close
// (idempotently — a second Close must not re-close shards).
func TestSubstrateLifecycle(t *testing.T) {
	sub := &countingSubstrate{}
	svc, err := service.New(context.Background(), service.Config{
		Template:  multiTemplate(3),
		Shards:    3,
		Substrate: sub,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sub.opened); got != 3 {
		t.Fatalf("opened %d shards at construction, want 3", got)
	}
	if res, err := svc.SubmitWait(context.Background(), 7); err != nil || res.Decided != 7 {
		t.Fatalf("submit through substrate: %v (decided %v)", err, res.Decided)
	}
	svc.Close()
	svc.Close() // idempotent
	sub.mu.Lock()
	defer sub.mu.Unlock()
	if len(sub.closed) != 3 {
		t.Fatalf("closed %d shards, want 3 (exactly once each): %v", len(sub.closed), sub.closed)
	}
	seen := map[int]bool{}
	for _, sh := range sub.closed {
		if seen[sh] {
			t.Fatalf("shard %d closed twice: %v", sh, sub.closed)
		}
		seen[sh] = true
	}
}

// TestSubstrateNilOpenFallsBack pins the construction contract folded into
// the Substrate path: a substrate whose Open returns nil leaves the shard on
// the config's shared Run instead of a nil handle.
func TestSubstrateNilOpenFallsBack(t *testing.T) {
	var mu sync.Mutex
	ran := 0
	svc, err := service.New(context.Background(), service.Config{
		Template: multiTemplate(7),
		Shards:   2,
		Run: func(ctx context.Context, cfg core.Config) (service.Outcome, error) {
			mu.Lock()
			ran++
			mu.Unlock()
			return service.RunSim(ctx, cfg)
		},
		Substrate: nilOpenSubstrate{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.SubmitWait(context.Background(), ident.Value(1)); err != nil {
		t.Fatal(err)
	}
	svc.Close()
	mu.Lock()
	defer mu.Unlock()
	if ran == 0 {
		t.Fatal("shared Run never executed behind a nil Open")
	}
}

// nilOpenSubstrate declines to supply per-shard handles.
type nilOpenSubstrate struct{}

func (nilOpenSubstrate) Open(int) service.RunFunc { return nil }
func (nilOpenSubstrate) Close(int)                {}
