package service

import (
	"context"

	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/metrics"
	"byzex/internal/sim"
	"byzex/internal/transport"
)

// Outcome is the substrate-independent result of one agreement instance:
// the raw decision map, the information-exchange accounting and the faulty
// set, exactly the quantities core.CheckDecisions and the amortized-cost
// reporting need.
type Outcome struct {
	Decisions map[ident.ProcID]sim.Decision
	Report    metrics.Report
	Faulty    ident.Set
}

// RunFunc executes one fully-resolved instance configuration. The service
// calls it from executor workers, so implementations must be safe for
// concurrent use with distinct configs. RunSim and RunTCP adapt the two
// existing substrates; tests inject failures through custom RunFuncs.
type RunFunc func(ctx context.Context, cfg core.Config) (Outcome, error)

// RunSim executes the instance on the in-memory synchronous engine — the
// substrate behind `basim -transport memory` and the default for a Service.
func RunSim(ctx context.Context, cfg core.Config) (Outcome, error) {
	res, err := core.Run(ctx, cfg)
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{Decisions: res.Sim.Decisions, Report: res.Sim.Report, Faulty: res.Faulty}, nil
}

// RunTCP returns a RunFunc executing each instance over a localhost TCP
// mesh (transport.RunCluster) with the given network knobs. Every instance
// gets a fresh mesh; this is the high-fidelity, high-cost substrate.
func RunTCP(netCfg transport.Net) RunFunc {
	return func(ctx context.Context, cfg core.Config) (Outcome, error) {
		res, err := transport.RunCluster(ctx, cfg, netCfg)
		if err != nil {
			return Outcome{}, err
		}
		return Outcome{Decisions: res.Decisions, Report: res.Report, Faulty: res.Faulty}, nil
	}
}
