package service

import (
	"context"
	"sync"

	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/metrics"
	"byzex/internal/sim"
	"byzex/internal/transport"
)

// Outcome is the substrate-independent result of one agreement instance:
// the raw decision map, the information-exchange accounting and the faulty
// set, exactly the quantities core.CheckDecisions and the amortized-cost
// reporting need.
type Outcome struct {
	Decisions map[ident.ProcID]sim.Decision
	Report    metrics.Report
	Faulty    ident.Set
}

// RunFunc executes one fully-resolved instance configuration. The service
// calls it from executor workers, so implementations must be safe for
// concurrent use with distinct configs. RunSim and RunTCP adapt the two
// existing substrates; tests inject failures through custom RunFuncs.
type RunFunc func(ctx context.Context, cfg core.Config) (Outcome, error)

// RunSim executes the instance on the in-memory synchronous engine — the
// substrate behind `basim -transport memory` and the default for a Service.
func RunSim(ctx context.Context, cfg core.Config) (Outcome, error) {
	res, err := core.Run(ctx, cfg)
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{Decisions: res.Sim.Decisions, Report: res.Sim.Report, Faulty: res.Faulty}, nil
}

// RunTCP returns a RunFunc executing each instance over a localhost TCP
// mesh (transport.RunCluster) with the given network knobs. Every instance
// gets a fresh mesh; WarmTCP amortizes the mesh across a shard's instances.
func RunTCP(netCfg transport.Net) RunFunc {
	return func(ctx context.Context, cfg core.Config) (Outcome, error) {
		res, err := transport.RunCluster(ctx, cfg, netCfg)
		if err != nil {
			return Outcome{}, err
		}
		return Outcome{Decisions: res.Decisions, Report: res.Report, Faulty: res.Faulty}, nil
	}
}

// WarmTCP is a per-shard pool of warm transport meshes: each shard dials its
// n×(n-1) localhost mesh once (lazily, on its first instance) and reuses it
// for every subsequent instance, paying only the per-epoch frame traffic.
// Wire it into a service with NewShardRun/CloseShard:
//
//	pool := service.NewWarmTCP(n, netCfg)
//	cfg.NewShardRun = pool.NewShardRun
//	cfg.CloseShardRun = pool.CloseShard
//
// A mesh is built for one cluster size; instances with a different N fall
// back to a cold per-instance mesh rather than failing.
type WarmTCP struct {
	n      int
	netCfg transport.Net

	mu     sync.Mutex
	meshes map[int]*transport.Mesh
}

// NewWarmTCP returns a pool of warm meshes for clusters of n processors.
func NewWarmTCP(n int, netCfg transport.Net) *WarmTCP {
	return &WarmTCP{n: n, netCfg: netCfg, meshes: make(map[int]*transport.Mesh)}
}

// NewShardRun returns the RunFunc for one shard. The shard's mesh is dialed
// on its first instance and owned exclusively by that shard, so Run never
// contends on a mesh (the service guarantees one instance per shard at a
// time).
func (p *WarmTCP) NewShardRun(shard int) RunFunc {
	return func(ctx context.Context, cfg core.Config) (Outcome, error) {
		if cfg.N != p.n {
			return RunTCP(p.netCfg)(ctx, cfg)
		}
		m, err := p.mesh(ctx, shard)
		if err != nil {
			return Outcome{}, err
		}
		res, err := m.Run(ctx, cfg)
		if err != nil {
			return Outcome{}, err
		}
		return Outcome{Decisions: res.Decisions, Report: res.Report, Faulty: res.Faulty}, nil
	}
}

func (p *WarmTCP) mesh(ctx context.Context, shard int) (*transport.Mesh, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if m, ok := p.meshes[shard]; ok {
		return m, nil
	}
	m, err := transport.NewMesh(ctx, p.n, p.netCfg)
	if err != nil {
		return nil, err
	}
	p.meshes[shard] = m
	return m, nil
}

// CloseShard tears down one shard's mesh; the service calls it from Close
// once the shard is idle. A shard that never ran an instance has no mesh.
func (p *WarmTCP) CloseShard(shard int) {
	p.mu.Lock()
	m := p.meshes[shard]
	delete(p.meshes, shard)
	p.mu.Unlock()
	if m != nil {
		m.Close()
	}
}

// Close tears down every remaining mesh, for callers that bypass the
// service's CloseShardRun hook.
func (p *WarmTCP) Close() {
	p.mu.Lock()
	meshes := p.meshes
	p.meshes = make(map[int]*transport.Mesh)
	p.mu.Unlock()
	for _, m := range meshes {
		m.Close()
	}
}
