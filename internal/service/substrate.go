package service

import (
	"context"
	"sync"

	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/metrics"
	"byzex/internal/sim"
	"byzex/internal/transport"
)

// Outcome is the substrate-independent result of one agreement instance:
// the raw decision map, the information-exchange accounting and the faulty
// set, exactly the quantities core.CheckDecisions and the amortized-cost
// reporting need.
type Outcome struct {
	Decisions map[ident.ProcID]sim.Decision
	Report    metrics.Report
	Faulty    ident.Set
}

// RunFunc executes one fully-resolved instance configuration. The service
// calls it from executor workers, so implementations must be safe for
// concurrent use with distinct configs. RunSim and RunTCP adapt the two
// existing substrates; tests inject failures through custom RunFuncs.
type RunFunc func(ctx context.Context, cfg core.Config) (Outcome, error)

// Substrate supplies each shard worker its execution handle — the single
// interface behind Config.Substrate, replacing the paired
// NewShardRun/CloseShardRun function hooks.
//
// Open is called once per shard at service construction and returns the
// RunFunc that shard uses for every instance it executes; the service
// guarantees the returned handle is only ever called from its own shard,
// one instance at a time, so implementations may keep per-handle mutable
// state (connection meshes, caches) without locking. Close is called once
// per shard during Service.Close, after every instance has been delivered,
// so the handle is guaranteed idle; implementations release whatever Open
// acquired. Stateless substrates (the in-memory engine) make Close a no-op
// — see SharedRun.
type Substrate interface {
	Open(shard int) RunFunc
	Close(shard int)
}

// SharedRun adapts a single concurrency-safe RunFunc — the in-memory path
// (RunSim), the cold per-instance mesh (RunTCP), or a test stub — into a
// Substrate: every shard shares run, and Close is a no-op because a shared
// stateless handle owns nothing per shard.
func SharedRun(run RunFunc) Substrate { return sharedRun{run: run} }

type sharedRun struct{ run RunFunc }

func (s sharedRun) Open(int) RunFunc { return s.run }
func (sharedRun) Close(int)          {}

// RunSim executes the instance on the in-memory synchronous engine — the
// substrate behind `basim -transport memory` and the default for a Service.
func RunSim(ctx context.Context, cfg core.Config) (Outcome, error) {
	res, err := core.Run(ctx, cfg)
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{Decisions: res.Sim.Decisions, Report: res.Sim.Report, Faulty: res.Faulty}, nil
}

// RunTCP returns a RunFunc executing each instance over a localhost TCP
// mesh (transport.RunCluster) with the given network knobs. Every instance
// gets a fresh mesh; WarmTCP amortizes the mesh across a shard's instances.
func RunTCP(netCfg transport.Net) RunFunc {
	return func(ctx context.Context, cfg core.Config) (Outcome, error) {
		res, err := transport.RunCluster(ctx, cfg, netCfg)
		if err != nil {
			return Outcome{}, err
		}
		return Outcome{Decisions: res.Decisions, Report: res.Report, Faulty: res.Faulty}, nil
	}
}

// WarmTCP is a per-shard pool of warm transport meshes: each shard dials its
// n×(n-1) localhost mesh once (lazily, on its first instance) and reuses it
// for every subsequent instance, paying only the per-epoch frame traffic.
// It implements Substrate, so wiring it into a service is one assignment:
//
//	cfg.Substrate = service.NewWarmTCP(n, netCfg)
//
// A mesh is built for one cluster size; instances with a different N fall
// back to a cold per-instance mesh rather than failing.
type WarmTCP struct {
	n      int
	netCfg transport.Net

	mu     sync.Mutex
	meshes map[int]*transport.Mesh
}

// NewWarmTCP returns a pool of warm meshes for clusters of n processors.
func NewWarmTCP(n int, netCfg transport.Net) *WarmTCP {
	return &WarmTCP{n: n, netCfg: netCfg, meshes: make(map[int]*transport.Mesh)}
}

// Open returns the RunFunc for one shard (Substrate). The shard's mesh is
// dialed on its first instance and owned exclusively by that shard, so Run
// never contends on a mesh (the service guarantees one instance per shard
// at a time).
func (p *WarmTCP) Open(shard int) RunFunc {
	return func(ctx context.Context, cfg core.Config) (Outcome, error) {
		if cfg.N != p.n {
			return RunTCP(p.netCfg)(ctx, cfg)
		}
		m, err := p.mesh(ctx, shard)
		if err != nil {
			return Outcome{}, err
		}
		res, err := m.Run(ctx, cfg)
		if err != nil {
			return Outcome{}, err
		}
		return Outcome{Decisions: res.Decisions, Report: res.Report, Faulty: res.Faulty}, nil
	}
}

func (p *WarmTCP) mesh(ctx context.Context, shard int) (*transport.Mesh, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if m, ok := p.meshes[shard]; ok {
		return m, nil
	}
	m, err := transport.NewMesh(ctx, p.n, p.netCfg)
	if err != nil {
		return nil, err
	}
	p.meshes[shard] = m
	return m, nil
}

// Close tears down one shard's mesh (Substrate); the service calls it from
// Service.Close once the shard is idle. A shard that never ran an instance
// has no mesh.
func (p *WarmTCP) Close(shard int) {
	p.mu.Lock()
	m := p.meshes[shard]
	delete(p.meshes, shard)
	p.mu.Unlock()
	if m != nil {
		m.Close()
	}
}

// CloseAll tears down every remaining mesh, for callers that drive the pool
// outside a Service (which closes shard by shard).
func (p *WarmTCP) CloseAll() {
	p.mu.Lock()
	meshes := p.meshes
	p.meshes = make(map[int]*transport.Mesh)
	p.mu.Unlock()
	for _, m := range meshes {
		m.Close()
	}
}
