package service

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"byzex/internal/ident"
)

// Open-loop load generation. RunLoad (client.go) is a closed loop: each
// connection submits, waits, submits again, so offered load collapses to
// whatever the server sustains and latency numbers hide overload entirely.
// An open loop models a population of independent users: arrivals follow a
// Poisson process at a fixed rate whether or not earlier requests have
// completed, and each request's latency is measured from its *scheduled*
// arrival — a request that waited behind a backed-up connection pool pays
// that wait. This is the coordinated-omission-free measurement an SLO gate
// needs: under overload, p99 explodes instead of quietly disappearing.

// PoissonSchedule returns the arrival offsets (from the run's start) of a
// Poisson process with the given rate (arrivals per second) over the given
// duration. It is a pure function of its arguments: a fixed seed reproduces
// the schedule exactly, which makes open-loop runs replayable — the
// determinism contract the baload tests pin.
func PoissonSchedule(seed int64, rate float64, duration time.Duration) []time.Duration {
	if rate <= 0 || duration <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	var out []time.Duration
	at := time.Duration(0)
	for {
		// Inter-arrival gaps of a Poisson process are exponential with mean
		// 1/rate.
		at += time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
		if at >= duration {
			return out
		}
		out = append(out, at)
	}
}

// OpenLoadConfig parameterizes an open-loop run.
type OpenLoadConfig struct {
	// Addr is the serving address.
	Addr string
	// Conns is the connection fan-out: arrivals are dispatched to the first
	// free connection, so Conns bounds in-flight requests without changing
	// the arrival schedule (arrivals beyond it queue, and their queue wait
	// counts against latency).
	Conns int
	// Rate is the Poisson arrival rate in submissions per second.
	Rate float64
	// Duration is the arrival window; the run then drains in-flight work.
	Duration time.Duration
	// Seed fixes the arrival schedule (see PoissonSchedule).
	Seed int64
	// ValueFor picks the value of the i-th arrival (default: a
	// deterministic function of i).
	ValueFor func(i int) ident.Value
}

// RunOpenLoad drives an open-loop load: PoissonSchedule(Seed, Rate,
// Duration) arrivals fan out over Conns connections, queue-full rejections
// are shed (counted, never retried — an open loop does not slow down), and
// every latency is measured from the request's scheduled arrival time.
// The returned stats carry Offered alongside the closed-loop fields, so an
// SLO gate can verify the intended load was actually offered.
func RunOpenLoad(ctx context.Context, cfg OpenLoadConfig) (*LoadStats, error) {
	if cfg.Conns < 1 {
		cfg.Conns = 1
	}
	if cfg.Rate <= 0 {
		return nil, errors.New("service: open-loop rate must be positive")
	}
	if cfg.Duration <= 0 {
		return nil, errors.New("service: open-loop duration must be positive")
	}
	if cfg.ValueFor == nil {
		cfg.ValueFor = func(i int) ident.Value { return ident.Value(i%2 + i%3) }
	}
	sched := PoissonSchedule(cfg.Seed, cfg.Rate, cfg.Duration)
	stats := &LoadStats{
		Instances: make(map[uint64]Reply),
		Offered:   len(sched),
	}

	// The dispatcher never blocks on workers: the jobs channel holds the
	// whole schedule, so a backed-up connection pool delays service, not
	// arrivals — the definition of an open loop.
	jobs := make(chan int, len(sched))
	start := time.Now()
	dispatchErr := make(chan error, 1)
	go func() {
		defer close(jobs)
		timer := time.NewTimer(0)
		defer timer.Stop()
		<-timer.C
		for i, off := range sched {
			if wait := time.Until(start.Add(off)); wait > 0 {
				timer.Reset(wait)
				select {
				case <-ctx.Done():
					dispatchErr <- ctx.Err()
					return
				case <-timer.C:
				}
			}
			jobs <- i
		}
		dispatchErr <- nil
	}()

	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	errs := make([]error, cfg.Conns)
	for c := 0; c < cfg.Conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			errs[c] = openLoadConn(ctx, cfg, sched, start, jobs, stats, &mu)
		}(c)
	}
	wg.Wait()
	stats.Elapsed = time.Since(start)
	if err := <-dispatchErr; err != nil {
		return stats, err
	}
	for _, err := range errs {
		if err != nil {
			return stats, err
		}
	}
	sort.Slice(stats.Latencies, func(i, j int) bool { return stats.Latencies[i] < stats.Latencies[j] })
	for _, r := range stats.Instances {
		if r.Committed {
			stats.ValuesServed += r.Batch
			stats.MsgsTotal += r.Msgs
			stats.SigsTotal += r.Sigs
		}
	}
	return stats, nil
}

func openLoadConn(ctx context.Context, cfg OpenLoadConfig, sched []time.Duration, start time.Time, jobs <-chan int, stats *LoadStats, mu *sync.Mutex) error {
	cl, err := DialClient(cfg.Addr)
	if err != nil {
		return err
	}
	defer func() { _ = cl.Close() }()
	for i := range jobs {
		if err := ctx.Err(); err != nil {
			return err
		}
		reply, err := cl.Submit(cfg.ValueFor(i))
		// Latency from the scheduled arrival, not the Submit call: time an
		// arrival spent queued behind the connection pool is real user wait.
		lat := time.Since(start.Add(sched[i]))
		switch {
		case errors.Is(err, ErrQueueFull) || errors.Is(err, ErrDraining):
			mu.Lock()
			stats.Rejected++
			mu.Unlock()
		case err != nil:
			return fmt.Errorf("open-loop arrival %d: %w", i, err)
		default:
			mu.Lock()
			stats.Submitted++
			stats.Latencies = append(stats.Latencies, lat)
			stats.Instances[reply.InstanceID] = reply
			mu.Unlock()
		}
	}
	return nil
}
