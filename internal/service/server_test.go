package service_test

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/service"
)

// startServer runs a Service behind the line protocol on an ephemeral port.
func startServer(t *testing.T, cfg service.Config) (*service.Service, string, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	svc, err := service.New(ctx, cfg)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- service.Serve(ctx, ln, svc) }()
	stop := func() {
		svc.Close()
		cancel()
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	}
	return svc, ln.Addr().String(), stop
}

// TestServeLoad100ConcurrentInstances is the acceptance scenario: the sim
// substrate serving alg1 n=7 t=3, a closed-loop load of 100 concurrent
// connections, and every observed instance re-executed serially with
// core.Run on the same seed — decisions must match byte for byte.
func TestServeLoad100ConcurrentInstances(t *testing.T) {
	if testing.Short() {
		t.Skip("100-connection load run")
	}
	tmpl := template(17)
	svc, addr, stop := startServer(t, service.Config{
		Template:    tmpl,
		MaxInFlight: 100,
		QueueDepth:  256,
	})

	ctx := context.Background()
	load, err := service.RunLoad(ctx, service.LoadConfig{
		Addr:     addr,
		Conns:    100,
		Requests: 3,
		ValueFor: func(c, i int) ident.Value { return ident.Value((c + i) % 2) },
	})
	if err != nil {
		t.Fatal(err)
	}
	stop()

	if load.Submitted != 300 {
		t.Fatalf("submitted %d, want 300", load.Submitted)
	}
	if len(load.Instances) < 100 {
		t.Fatalf("observed %d instances, want >= 100", len(load.Instances))
	}
	if load.Percentile(50) <= 0 || load.Percentile(99) < load.Percentile(50) {
		t.Fatalf("latency percentiles inconsistent: p50=%v p99=%v", load.Percentile(50), load.Percentile(99))
	}
	if load.AmortizedMsgsPerValue() <= 0 {
		t.Fatal("no amortized message accounting")
	}

	// Verify every instance against a serial run of the same seed — the
	// reply carries (seed, packed value); the template is shared.
	var wg sync.WaitGroup
	sem := make(chan struct{}, 8)
	for id, reply := range load.Instances {
		wg.Add(1)
		go func(id uint64, reply service.Reply) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			cfg := tmpl
			cfg.Value = reply.Packed
			cfg.Seed = reply.Seed
			serial, err := core.Run(ctx, cfg)
			if err != nil {
				t.Errorf("instance %d serial: %v", id, err)
				return
			}
			decided, err := serial.Decision(cfg.Transmitter, cfg.Value)
			if err != nil {
				t.Errorf("instance %d serial decision: %v", id, err)
				return
			}
			if decided != reply.Decided || !reply.Committed {
				t.Errorf("instance %d: served %v committed=%v, serial %v", id, reply.Decided, reply.Committed, decided)
			}
			if serial.Sim.Report.MessagesCorrect != reply.Msgs || serial.Sim.Report.SignaturesCorrect != reply.Sigs {
				t.Errorf("instance %d: served msgs/sigs %d/%d, serial %d/%d", id,
					reply.Msgs, reply.Sigs, serial.Sim.Report.MessagesCorrect, serial.Sim.Report.SignaturesCorrect)
			}
		}(id, reply)
	}
	wg.Wait()

	if st := svc.Stats(); st.ValuesDecided != 300 {
		t.Fatalf("service stats: %s", st.String())
	}
}

// TestServeBatchingOverWire checks the wire protocol reports shared
// instances for batched submissions and that uncommitted batches never
// happen with a correct transmitter.
func TestServeBatchingOverWire(t *testing.T) {
	_, addr, stop := startServer(t, service.Config{
		Template:    multiTemplate(23),
		MaxInFlight: 2,
		QueueDepth:  64,
		BatchSize:   8,
		Linger:      2 * time.Millisecond,
	})
	defer stop()

	load, err := service.RunLoad(context.Background(), service.LoadConfig{
		Addr:     addr,
		Conns:    16,
		Requests: 4,
		ValueFor: func(c, i int) ident.Value { return ident.Value(c*100 + i) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if load.Submitted != 64 {
		t.Fatalf("submitted %d, want 64", load.Submitted)
	}
	batched := false
	for id, reply := range load.Instances {
		if !reply.Committed {
			t.Fatalf("instance %d not committed", id)
		}
		if reply.Batch > 1 {
			batched = true
		}
	}
	if !batched {
		t.Fatal("no instance carried a batch > 1 despite a saturated 2-wide executor")
	}
	if load.ValuesServed != 64 {
		t.Fatalf("values served %d, want 64", load.ValuesServed)
	}
}

// TestServeRejectsAndStats checks the wire mapping of typed errors and the
// stats query.
func TestServeRejectsAndStats(t *testing.T) {
	release := make(chan struct{})
	slow := func(ctx context.Context, cfg core.Config) (service.Outcome, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return service.RunSim(ctx, cfg)
	}
	svc, addr, stop := startServer(t, service.Config{
		Template:    template(29),
		Run:         slow,
		MaxInFlight: 1,
		QueueDepth:  1,
	})
	defer stop()

	// Saturate in-process (Submit never blocks) until the queue is full:
	// 1 executing + 1 staged by the batcher + 1 queued. Nothing drains
	// until release, so the wire probe below sees a full queue for sure.
	var chans []<-chan service.Result
	fullStreak := 0
	for i := 0; i < 5000 && fullStreak < 3; i++ {
		ch, err := svc.Submit(1)
		switch {
		case err == nil:
			chans = append(chans, ch)
			fullStreak = 0
		case errors.Is(err, service.ErrQueueFull):
			// Wait for the batcher to settle: only a stable streak of
			// rejections means the pipeline is pinned end to end.
			fullStreak++
			time.Sleep(2 * time.Millisecond)
		default:
			t.Fatal(err)
		}
	}
	if fullStreak < 3 {
		t.Fatal("queue never filled")
	}

	probe, err := service.DialClient(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = probe.Close() }()
	if _, err := probe.Submit(0); !errors.Is(err, service.ErrQueueFull) {
		t.Fatalf("wire probe got %v, want ErrQueueFull", err)
	}
	// The wire stats are a typed snapshot: the probe's rejection above must
	// already be visible in it, no string-matching required.
	wireStats, err := probe.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if wireStats.RejectedFull < 1 {
		t.Fatalf("wire stats missed the probe's rejection: %+v", wireStats)
	}
	if wireStats.Shards != svc.Stats().Shards {
		t.Fatalf("wire stats shards %d, want %d", wireStats.Shards, svc.Stats().Shards)
	}

	close(release)
	for _, ch := range chans {
		if res := <-ch; res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	if st := svc.Stats(); st.RejectedFull < 2 {
		t.Fatalf("rejections not recorded on both paths: %s", st.String())
	}
}
