// The adaptive batching controller: batching trades latency for amortized
// information exchange (one instance's Ω(nt) signatures and Ω(n+t²) messages
// serve k values instead of one), so the right batch size depends on load.
// The controller lives on the sequencer goroutine and moves a target batch
// size inside a configured window — doubling under backlog, halving when the
// admission queue runs idle — so a bursty workload pays near-zero added
// latency when traffic is light (singletons, no linger) and approaches the
// max-pack amortization floor when a backlog builds.

package service

import (
	"fmt"
	"sync"
	"time"
)

// defaultAdaptiveLinger caps how long an adaptive batch waits for stragglers
// when the caller did not configure a Linger bound.
const defaultAdaptiveLinger = 2 * time.Millisecond

// decision is one controller verdict for a forming batch.
type decision struct {
	// size is the batch-size target to fill toward; linger bounds how long
	// the sequencer may wait for it.
	size   int
	linger time.Duration
	// moved reports the target changed this decision; prev/grew describe
	// the move for the stats and the batch-adapt trace event.
	moved bool
	grew  bool
	prev  int
}

// batchController owns the target batch size. plan is called only from the
// sequencer goroutine, but observe is fed from the delivery path, so the
// mutable state is guarded by a mutex.
//
// The policy is deliberately simple and deterministic given the observed
// queue depths: grow (double, clamped to max) when the queue holds at least
// a full target beyond the value in hand — the backlog signal; shrink
// (halve, clamped to min) when the queue is empty at formation time — the
// idle signal. Singleton targets skip the linger entirely (the k=1 fast
// path), and larger targets bound their linger by half the EWMA instance
// latency: waiting longer than that for stragglers would cost more latency
// than the batch saves.
type batchController struct {
	min, max int
	adaptive bool
	fixedLin time.Duration // configured Linger (fixed mode uses it as-is)
	lingCap  time.Duration // adaptive linger ceiling

	mu     sync.Mutex
	target int
	ewma   time.Duration // smoothed instance execution time
}

// newBatchController resolves the Config batching knobs into a controller.
// Precedence: an explicit BatchMin/BatchMax window wins; otherwise BatchSize
// fixes the size (min = max); otherwise singletons.
func newBatchController(cfg Config) (*batchController, error) {
	min, max := cfg.BatchMin, cfg.BatchMax
	if max < 1 {
		if min > 1 {
			return nil, fmt.Errorf("service: BatchMin %d without BatchMax", min)
		}
		max = cfg.BatchSize
		if max < 1 {
			max = 1
		}
		min = max // fixed size
	}
	if min < 1 {
		min = 1
	}
	if min > max {
		return nil, fmt.Errorf("service: BatchMin %d exceeds BatchMax %d", min, max)
	}
	target := cfg.BatchTarget
	if target < min {
		target = min
	}
	if target > max {
		target = max
	}
	lingCap := cfg.Linger
	if lingCap <= 0 {
		lingCap = defaultAdaptiveLinger
	}
	return &batchController{
		min:      min,
		max:      max,
		adaptive: max > min,
		fixedLin: cfg.Linger,
		lingCap:  lingCap,
		target:   target,
	}, nil
}

// plan decides the size and linger bound for the batch now forming, given
// the admission-queue depth observed by the sequencer (not counting the
// value already in hand).
func (b *batchController) plan(queued int) decision {
	b.mu.Lock()
	defer b.mu.Unlock()
	d := decision{size: b.target}
	if b.adaptive {
		switch {
		case queued >= b.target && b.target < b.max:
			// Backlog: at least a full further batch is already waiting.
			d.prev, d.moved, d.grew = b.target, true, true
			b.target *= 2
			if b.target > b.max {
				b.target = b.max
			}
		case queued == 0 && b.target > b.min:
			// Idle: nothing waiting beyond the value in hand.
			d.prev, d.moved, d.grew = b.target, true, false
			b.target /= 2
			if b.target < b.min {
				b.target = b.min
			}
		}
		d.size = b.target
	}
	d.linger = b.lingerFor(d.size, queued)
	return d
}

// lingerFor bounds the straggler wait (callers hold b.mu).
func (b *batchController) lingerFor(size, queued int) time.Duration {
	if !b.adaptive {
		return b.fixedLin
	}
	if size <= 1 || queued+1 >= size {
		// Singleton fast path, or the batch can already be filled from the
		// queue without waiting.
		return 0
	}
	l := b.lingCap
	if b.ewma > 0 && b.ewma/2 < l {
		l = b.ewma / 2
	}
	return l
}

// observe feeds one instance's execution time into the latency EWMA
// (weight 1/4 on the new sample).
func (b *batchController) observe(d time.Duration) {
	if d <= 0 {
		return
	}
	b.mu.Lock()
	if b.ewma == 0 {
		b.ewma = d
	} else {
		b.ewma = (3*b.ewma + d) / 4
	}
	b.mu.Unlock()
}

// snapshot returns the current target (for tests and stats).
func (b *batchController) snapshot() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.target
}
