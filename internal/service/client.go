package service

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"byzex/internal/ident"
)

// Reply is the parsed OK response to one submission: enough to re-execute
// the instance serially (Seed, Packed) and to account amortized costs
// (Batch, Msgs, Sigs). Replies of the same batch share an InstanceID.
type Reply struct {
	InstanceID uint64
	Seed       int64
	Batch      int
	Packed     ident.Value
	Decided    ident.Value
	Committed  bool
	Msgs       int
	Sigs       int
}

// Client is one connection to a Service's line protocol (see Serve).
// Requests on a client are sequential; open several clients for
// concurrency. Not safe for concurrent use.
type Client struct {
	conn net.Conn
	br   *bufio.Reader
}

// DialClient connects to a serving address.
func DialClient(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, br: bufio.NewReader(conn)}, nil
}

// Close releases the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Submit sends one value and waits for its reply. Backpressure rejections
// come back as the service's own typed errors (ErrQueueFull, ErrDraining),
// so callers retry or shed exactly as an in-process submitter would.
func (c *Client) Submit(v ident.Value) (Reply, error) {
	if _, err := fmt.Fprintf(c.conn, "%d\n", int64(v)); err != nil {
		return Reply{}, err
	}
	line, err := c.br.ReadString('\n')
	if err != nil {
		return Reply{}, err
	}
	return parseReply(strings.TrimSpace(line))
}

// Stats fetches the server's stats snapshot as a typed struct (the reply is
// one line of JSON; see the wire protocol in server.go), so remote callers —
// baload's SLO checks, the tests — compare counters instead of string-matching
// the human-readable Stats.String line.
func (c *Client) Stats() (Stats, error) {
	if _, err := fmt.Fprintln(c.conn, "stats"); err != nil {
		return Stats{}, err
	}
	line, err := c.br.ReadString('\n')
	if err != nil {
		return Stats{}, err
	}
	payload, ok := strings.CutPrefix(strings.TrimSpace(line), "STATS ")
	if !ok {
		return Stats{}, fmt.Errorf("service: malformed stats reply %q", strings.TrimSpace(line))
	}
	var st Stats
	if err := json.Unmarshal([]byte(payload), &st); err != nil {
		return Stats{}, fmt.Errorf("service: malformed stats reply %q: %w", payload, err)
	}
	return st, nil
}

func parseReply(line string) (Reply, error) {
	switch {
	case line == "ERR full":
		return Reply{}, ErrQueueFull
	case line == "ERR draining":
		return Reply{}, ErrDraining
	case strings.HasPrefix(line, "ERR "):
		return Reply{}, fmt.Errorf("service: server error: %s", strings.TrimPrefix(line, "ERR "))
	}
	fields := strings.Fields(line)
	if len(fields) != 9 || fields[0] != "OK" {
		return Reply{}, fmt.Errorf("service: malformed reply %q", line)
	}
	var (
		r    Reply
		errs [8]error
	)
	r.InstanceID, errs[0] = strconv.ParseUint(fields[1], 10, 64)
	r.Seed, errs[1] = strconv.ParseInt(fields[2], 10, 64)
	var batch, committed int64
	batch, errs[2] = strconv.ParseInt(fields[3], 10, 32)
	var packed, decided int64
	packed, errs[3] = strconv.ParseInt(fields[4], 10, 64)
	decided, errs[4] = strconv.ParseInt(fields[5], 10, 64)
	committed, errs[5] = strconv.ParseInt(fields[6], 10, 8)
	var msgs, sigs int64
	msgs, errs[6] = strconv.ParseInt(fields[7], 10, 64)
	sigs, errs[7] = strconv.ParseInt(fields[8], 10, 64)
	for _, err := range errs {
		if err != nil {
			return Reply{}, fmt.Errorf("service: malformed reply %q: %w", line, err)
		}
	}
	r.Batch = int(batch)
	r.Packed = ident.Value(packed)
	r.Decided = ident.Value(decided)
	r.Committed = committed == 1
	r.Msgs = int(msgs)
	r.Sigs = int(sigs)
	return r, nil
}

// LoadConfig parameterizes a closed-loop load run.
type LoadConfig struct {
	// Addr is the serving address.
	Addr string
	// Conns is the number of concurrent connections (closed loop: each
	// connection has exactly one request outstanding).
	Conns int
	// Requests is the number of successful submissions per connection.
	Requests int
	// ValueFor picks the value connection c submits as its i-th request
	// (default: a deterministic mix of c and i).
	ValueFor func(c, i int) ident.Value
	// RetryWait is the backoff after an ErrQueueFull rejection before the
	// same value is retried (default 200µs).
	RetryWait time.Duration
}

// LoadStats aggregates a load run (closed loop: RunLoad; open loop:
// RunOpenLoad).
type LoadStats struct {
	// Offered counts scheduled arrivals (open-loop runs only; 0 for
	// closed-loop runs, where offered load is defined by completions).
	Offered int
	// Submitted counts successful submissions; Rejected counts
	// ErrQueueFull rejections — retried in a closed loop, shed in an
	// open loop.
	Submitted int
	Rejected  int
	// Elapsed is the wall time of the whole run.
	Elapsed time.Duration
	// Latencies holds one client-observed round-trip per successful
	// submission, ascending.
	Latencies []time.Duration
	// Instances indexes the distinct instances observed, by id.
	Instances map[uint64]Reply
	// ValuesServed sums batch sizes over distinct committed instances;
	// MsgsTotal / SigsTotal sum their correct-sender costs. The quotient
	// is the client-observed amortized cost per value.
	ValuesServed int
	MsgsTotal    int
	SigsTotal    int
}

// Throughput returns successful submissions per second.
func (ls *LoadStats) Throughput() float64 {
	if ls.Elapsed <= 0 {
		return 0
	}
	return float64(ls.Submitted) / ls.Elapsed.Seconds()
}

// Percentile returns the p-th latency percentile (0 < p <= 100) using the
// nearest-rank (ceiling) definition: the smallest recorded latency that at
// least p percent of samples do not exceed. With two samples, p=90 is the
// max, not the min — small-sample tails stay conservative.
func (ls *LoadStats) Percentile(p float64) time.Duration {
	n := len(ls.Latencies)
	if n == 0 {
		return 0
	}
	idx := int(math.Ceil(p/100*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return ls.Latencies[idx]
}

// AmortizedMsgsPerValue returns the client-observed correct-sender messages
// per served value.
func (ls *LoadStats) AmortizedMsgsPerValue() float64 {
	if ls.ValuesServed == 0 {
		return 0
	}
	return float64(ls.MsgsTotal) / float64(ls.ValuesServed)
}

// RunLoad drives a closed-loop load against a serving address: Conns
// connections each submit Requests values sequentially, retrying
// backpressure rejections. The returned stats carry latency percentiles,
// throughput and the amortized per-value costs of every distinct instance
// observed.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadStats, error) {
	if cfg.Conns < 1 {
		cfg.Conns = 1
	}
	if cfg.Requests < 1 {
		cfg.Requests = 1
	}
	if cfg.ValueFor == nil {
		cfg.ValueFor = func(c, i int) ident.Value { return ident.Value(c*1000 + i) }
	}
	if cfg.RetryWait <= 0 {
		cfg.RetryWait = 200 * time.Microsecond
	}

	stats := &LoadStats{Instances: make(map[uint64]Reply)}
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make([]error, cfg.Conns)
	start := time.Now()
	for c := 0; c < cfg.Conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			errs[c] = loadConn(ctx, cfg, c, stats, &mu)
		}(c)
	}
	wg.Wait()
	stats.Elapsed = time.Since(start)
	for _, err := range errs {
		if err != nil {
			return stats, err
		}
	}
	sort.Slice(stats.Latencies, func(i, j int) bool { return stats.Latencies[i] < stats.Latencies[j] })
	for _, r := range stats.Instances {
		if r.Committed {
			stats.ValuesServed += r.Batch
			stats.MsgsTotal += r.Msgs
			stats.SigsTotal += r.Sigs
		}
	}
	return stats, nil
}

func loadConn(ctx context.Context, cfg LoadConfig, c int, stats *LoadStats, mu *sync.Mutex) error {
	cl, err := DialClient(cfg.Addr)
	if err != nil {
		return err
	}
	defer func() { _ = cl.Close() }()
	// Per-connection rng decorrelates the retry waits: with a fixed sleep,
	// every connection rejected by the same full queue retried in lock-step
	// and slammed the queue again as one synchronized wave.
	rng := rand.New(rand.NewSource(int64(c)*0x9e3779b9 + 1))
	for i := 0; i < cfg.Requests; i++ {
		v := cfg.ValueFor(c, i)
		for {
			if err := ctx.Err(); err != nil {
				return err
			}
			begin := time.Now()
			reply, err := cl.Submit(v)
			if errors.Is(err, ErrQueueFull) {
				mu.Lock()
				stats.Rejected++
				mu.Unlock()
				if err := sleepJittered(ctx, cfg.RetryWait, rng); err != nil {
					return err
				}
				continue
			}
			if err != nil {
				return fmt.Errorf("conn %d request %d: %w", c, i, err)
			}
			lat := time.Since(begin)
			mu.Lock()
			stats.Submitted++
			stats.Latencies = append(stats.Latencies, lat)
			stats.Instances[reply.InstanceID] = reply
			mu.Unlock()
			break
		}
	}
	return nil
}

// sleepJittered waits base/2 + U[0, base) — mean base, decorrelated across
// connections — and returns early with ctx's error when the load run is
// cancelled, so a long RetryWait cannot pin a shutdown.
func sleepJittered(ctx context.Context, base time.Duration, rng *rand.Rand) error {
	wait := base/2 + time.Duration(rng.Int63n(int64(base)))
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}
