package service_test

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"byzex/internal/core"
	"byzex/internal/faultnet"
	"byzex/internal/ident"
	"byzex/internal/service"
	"byzex/internal/trace"
	"byzex/internal/transport"
)

// runWorkload drives `values` sequential submissions through a fresh service
// built from cfg and returns the results in submission order plus the final
// stats and the recorded trace. Submissions are sequential so admission
// order — and therefore instance ids and seeds — is identical across runs.
func runWorkload(t *testing.T, cfg service.Config, values int) ([]service.Result, service.Stats, []trace.Event) {
	t.Helper()
	buf := trace.NewBuffer()
	cfg.Trace = buf
	cfg.TraceInstances = true
	svc, err := service.New(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]service.Result, values)
	chans := make([]<-chan service.Result, values)
	for i := 0; i < values; i++ {
		ch, err := svc.Submit(ident.Value(i))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		chans[i] = ch
	}
	for i, ch := range chans {
		results[i] = <-ch
	}
	svc.Close()
	return results, svc.Stats(), buf.Events()
}

// deterministicEvents drops the admission-scoped events (enqueue, reject,
// batch-adapt — they carry live queue gauges) and keeps the instance-scoped
// stream that the sharding contract promises is byte-identical at any shard
// count.
func deterministicEvents(events []trace.Event) []trace.Event {
	out := make([]trace.Event, 0, len(events))
	for _, e := range events {
		if !e.Kind.AdmissionScoped() {
			out = append(out, e)
		}
	}
	return out
}

// TestShardingDeterministic is the tentpole's core contract: the same
// workload served at 1 shard and at 4 shards produces identical decisions,
// identical information-exchange metrics and a byte-identical instance-scoped
// trace — sharding changes wall-clock behavior only.
func TestShardingDeterministic(t *testing.T) {
	const values = 40
	base := service.Config{
		Template:   multiTemplate(7),
		QueueDepth: values,
	}

	cfg1 := base
	cfg1.Shards = 1
	res1, stats1, ev1 := runWorkload(t, cfg1, values)

	cfg4 := base
	cfg4.Shards = 4
	res4, stats4, ev4 := runWorkload(t, cfg4, values)

	if stats4.Shards != 4 || len(stats4.ShardInstances) != 4 {
		t.Fatalf("shard gauges not wired: %+v", stats4)
	}
	for i := range res1 {
		a, b := res1[i], res4[i]
		if a.Err != nil || b.Err != nil {
			t.Fatalf("value %d failed: %v / %v", i, a.Err, b.Err)
		}
		if a.Decided != b.Decided || a.Committed != b.Committed {
			t.Fatalf("value %d diverged: 1-shard (%v,%v) vs 4-shard (%v,%v)",
				i, a.Decided, a.Committed, b.Decided, b.Committed)
		}
		if a.Instance.ID != b.Instance.ID || a.Instance.Config.Seed != b.Instance.Config.Seed {
			t.Fatalf("value %d instance identity diverged: id %d seed %d vs id %d seed %d",
				i, a.Instance.ID, a.Instance.Config.Seed, b.Instance.ID, b.Instance.Config.Seed)
		}
	}
	if stats1.MessagesCorrect != stats4.MessagesCorrect ||
		stats1.SignaturesCorrect != stats4.SignaturesCorrect ||
		stats1.ValuesDecided != stats4.ValuesDecided {
		t.Fatalf("metrics diverged:\n1 shard: %s\n4 shards: %s", stats1, stats4)
	}

	var buf1, buf4 bytes.Buffer
	if err := trace.WriteJSONL(&buf1, deterministicEvents(ev1)); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteJSONL(&buf4, deterministicEvents(ev4)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf4.Bytes()) {
		t.Fatalf("instance-scoped trace not byte-identical across shard counts (%d vs %d bytes)",
			buf1.Len(), buf4.Len())
	}
}

// TestShardingFaultPlanDeterministic extends the contract to fault
// injection: an in-budget fault plan produces the same decisions and the
// same fault counters whether instances run on 1 shard or concurrently on 4.
func TestShardingFaultPlanDeterministic(t *testing.T) {
	const values = 12
	tmpl := multiTemplate(11)
	tmpl.Faults = faultnet.MustParse("crash=6@3;drop=2->4@1-2/0.5", tmpl.Seed)
	if err := tmpl.Faults.CheckBudget(tmpl.N, tmpl.T); err != nil {
		t.Fatalf("fault plan out of budget: %v", err)
	}
	tmpl.FaultyOverride = tmpl.Faults.Affected(tmpl.N)
	base := service.Config{Template: tmpl, QueueDepth: values}

	cfg1, cfg4 := base, base
	cfg1.Shards = 1
	cfg4.Shards = 4
	res1, _, ev1 := runWorkload(t, cfg1, values)
	res4, _, ev4 := runWorkload(t, cfg4, values)

	for i := range res1 {
		if res1[i].Err != nil || res4[i].Err != nil {
			t.Fatalf("value %d failed under faults: %v / %v", i, res1[i].Err, res4[i].Err)
		}
		if res1[i].Decided != res4[i].Decided {
			t.Fatalf("value %d decided %v at 1 shard, %v at 4", i, res1[i].Decided, res4[i].Decided)
		}
	}
	s1 := trace.Summarize(deterministicEvents(ev1))
	s4 := trace.Summarize(deterministicEvents(ev4))
	if s1.FaultDrops != s4.FaultDrops || s1.FaultCrashes != s4.FaultCrashes {
		t.Fatalf("fault counters diverged: drops %d/%d crashes %d/%d",
			s1.FaultDrops, s4.FaultDrops, s1.FaultCrashes, s4.FaultCrashes)
	}
}

// TestServiceDrainUnderLoad closes the service while instances are mid-run
// on several shards: every admitted value must still resolve, submissions
// after Close must reject with ErrDraining, and Close must not return before
// the in-flight work is delivered.
func TestServiceDrainUnderLoad(t *testing.T) {
	release := make(chan struct{})
	var started sync.WaitGroup
	started.Add(1)
	var once sync.Once
	svc, err := service.New(context.Background(), service.Config{
		Template:   multiTemplate(5),
		Shards:     2,
		QueueDepth: 16,
		Run: func(ctx context.Context, cfg core.Config) (service.Outcome, error) {
			once.Do(started.Done)
			<-release
			return service.RunSim(ctx, cfg)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const values = 8
	chans := make([]<-chan service.Result, 0, values)
	for i := 0; i < values; i++ {
		ch, err := svc.Submit(ident.Value(i))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		chans = append(chans, ch)
	}
	started.Wait() // at least one instance is mid-run on a shard

	closed := make(chan struct{})
	go func() { svc.Close(); close(closed) }()
	// Close is draining; probes racing the flip may still be admitted (and
	// count toward the drain), but the loop must end with the typed
	// ErrDraining rejection, never ErrQueueFull.
	extra := 0
	deadline := time.After(5 * time.Second)
	for {
		_, err := svc.Submit(99)
		if err == nil {
			extra++
		} else if errors.Is(err, service.ErrDraining) {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("never saw ErrDraining, last err %v", err)
		case <-time.After(time.Millisecond):
		}
	}
	close(release) // let the gated instances finish
	for i, ch := range chans {
		select {
		case res := <-ch:
			if res.Err != nil {
				t.Fatalf("admitted value %d failed during drain: %v", i, res.Err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("admitted value %d never resolved", i)
		}
	}
	select {
	case <-closed:
	case <-time.After(30 * time.Second):
		t.Fatal("Close never returned")
	}
	stats := svc.Stats()
	if stats.ValuesDecided != uint64(values+extra) {
		t.Fatalf("drained service decided %d values, want %d", stats.ValuesDecided, values+extra)
	}
	if stats.RejectedDraining == 0 {
		t.Fatal("no draining rejections counted")
	}
}

// TestPercentileSmallSamples pins the nearest-rank (ceiling) percentile
// semantics at the sample counts a short load run actually produces.
func TestPercentileSmallSamples(t *testing.T) {
	ms := func(d int) time.Duration { return time.Duration(d) * time.Millisecond }
	cases := []struct {
		lats []time.Duration
		p    float64
		want time.Duration
	}{
		{[]time.Duration{ms(5)}, 50, ms(5)},
		{[]time.Duration{ms(5)}, 99, ms(5)},
		{[]time.Duration{ms(1), ms(9)}, 50, ms(1)},
		{[]time.Duration{ms(1), ms(9)}, 90, ms(9)}, // ceil: p90 of 2 samples is the max
		{[]time.Duration{ms(1), ms(9)}, 100, ms(9)},
		{[]time.Duration{ms(1), ms(2), ms(3), ms(4)}, 25, ms(1)},
		{[]time.Duration{ms(1), ms(2), ms(3), ms(4)}, 26, ms(2)},
		{[]time.Duration{ms(1), ms(2), ms(3), ms(4)}, 75, ms(3)},
		{[]time.Duration{ms(1), ms(2), ms(3), ms(4)}, 99, ms(4)},
	}
	for _, c := range cases {
		ls := &service.LoadStats{Latencies: c.lats}
		if got := ls.Percentile(c.p); got != c.want {
			t.Errorf("p%.0f of %v = %v, want %v", c.p, c.lats, got, c.want)
		}
	}
}

// TestAdaptiveBatchingUnderBacklog gates the shards so a backlog builds,
// then releases it: the controller must grow the target (batch-adapt grow
// events, amortization visible as fewer instances than values), and once the
// queue runs dry it must shrink back toward the minimum.
func TestAdaptiveBatchingUnderBacklog(t *testing.T) {
	release := make(chan struct{})
	buf := trace.NewBuffer()
	svc, err := service.New(context.Background(), service.Config{
		Template:   multiTemplate(9),
		Shards:     1,
		QueueDepth: 64,
		BatchMin:   1,
		BatchMax:   8,
		Run: func(ctx context.Context, cfg core.Config) (service.Outcome, error) {
			<-release
			return service.RunSim(ctx, cfg)
		},
		Trace: buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	const values = 32
	chans := make([]<-chan service.Result, 0, values)
	for i := 0; i < values; i++ {
		ch, err := svc.Submit(ident.Value(i))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		chans = append(chans, ch)
	}
	close(release)
	for i, ch := range chans {
		res := <-ch
		if res.Err != nil {
			t.Fatalf("value %d: %v", i, res.Err)
		}
		if res.Decided != res.Value && !res.Committed {
			t.Fatalf("value %d not committed", i)
		}
	}
	svc.Close()

	stats := svc.Stats()
	if stats.BatchGrows == 0 {
		t.Fatalf("controller never grew under backlog: %s", stats)
	}
	if stats.Instances >= values {
		t.Fatalf("no amortization: %d instances for %d values", stats.Instances, values)
	}
	sum := trace.Summarize(buf.Events())
	if sum.BatchGrows != int(stats.BatchGrows) || sum.BatchShrinks != int(stats.BatchShrinks) {
		t.Fatalf("trace (%d/%d) and stats (%d/%d) disagree on adapt moves",
			sum.BatchGrows, sum.BatchShrinks, stats.BatchGrows, stats.BatchShrinks)
	}
	if sum.BatchTargetPeak < 2 {
		t.Fatalf("peak target %d, want >= 2", sum.BatchTargetPeak)
	}
}

// TestAdaptiveConfigValidation pins the window-resolution errors.
func TestAdaptiveConfigValidation(t *testing.T) {
	if _, err := service.New(context.Background(), service.Config{
		Template: multiTemplate(1),
		BatchMin: 8, BatchMax: 4,
	}); err == nil {
		t.Fatal("BatchMin > BatchMax accepted")
	}
	if _, err := service.New(context.Background(), service.Config{
		Template: multiTemplate(1),
		BatchMin: 4,
	}); err == nil {
		t.Fatal("BatchMin without BatchMax accepted")
	}
	if _, err := errSvc(service.New(context.Background(), service.Config{
		Template: template(1), // binary protocol
		BatchMin: 1, BatchMax: 4,
	})); !errors.Is(err, service.ErrBatchingUnsupported) {
		t.Fatalf("adaptive window on binary protocol: got %v, want ErrBatchingUnsupported", err)
	}
}

func errSvc(s *service.Service, err error) (*service.Service, error) { return s, err }

// TestShardingDeterministicWarmTCP extends the determinism contract to the
// warm-mesh substrate: the same workload served over warm TCP meshes at 1
// shard and at 3 shards must yield identical decisions, metrics and a
// byte-identical instance-scoped trace. This also exercises epoch reset —
// every shard's mesh runs many instances back to back — and the service's
// per-shard Substrate.Close teardown.
func TestShardingDeterministicWarmTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("real TCP meshes under -short")
	}
	const values = 12
	tmpl := multiTemplate(19)
	netCfg := transport.Net{PhaseTimeout: 10 * time.Second}

	run := func(shards int) ([]service.Result, service.Stats, []trace.Event) {
		cfg := service.Config{
			Template:   tmpl,
			QueueDepth: values,
			Shards:     shards,
			Substrate:  service.NewWarmTCP(tmpl.N, netCfg),
		}
		return runWorkload(t, cfg, values)
	}

	res1, stats1, ev1 := run(1)
	res3, stats3, ev3 := run(3)

	for i := range res1 {
		if res1[i].Err != nil || res3[i].Err != nil {
			t.Fatalf("value %d failed over warm TCP: %v / %v", i, res1[i].Err, res3[i].Err)
		}
		if res1[i].Decided != res3[i].Decided || res1[i].Committed != res3[i].Committed {
			t.Fatalf("value %d diverged: 1-shard (%v,%v) vs 3-shard (%v,%v)",
				i, res1[i].Decided, res1[i].Committed, res3[i].Decided, res3[i].Committed)
		}
	}
	if stats1.MessagesCorrect != stats3.MessagesCorrect ||
		stats1.SignaturesCorrect != stats3.SignaturesCorrect ||
		stats1.ValuesDecided != stats3.ValuesDecided {
		t.Fatalf("metrics diverged over warm TCP:\n1 shard: %s\n3 shards: %s", stats1, stats3)
	}

	var buf1, buf3 bytes.Buffer
	if err := trace.WriteJSONL(&buf1, deterministicEvents(ev1)); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteJSONL(&buf3, deterministicEvents(ev3)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf3.Bytes()) {
		t.Fatalf("warm-TCP instance trace not byte-identical across shard counts (%d vs %d bytes)",
			buf1.Len(), buf3.Len())
	}
}
