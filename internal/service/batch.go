package service

import (
	"hash/fnv"

	"byzex/internal/ident"
	"byzex/internal/wire"
)

// PackValues maps a batch of submitted values onto the single value one
// agreement instance decides. Byzantine Agreement decides one value per
// execution; batching amortizes the per-instance Ω(nt) signature and
// Ω(n+t²) message costs by letting k submissions share one execution, in
// the style of block-based replication: the processors agree on a canonical
// digest of the batch, and the service — which formed the batch and knows
// its contents — resolves each member against the decided digest.
//
// A singleton batch packs to the value itself, so a batch-size-1 service is
// observationally identical to running core.Run per submission (the
// property the determinism tests and `baload -verify` pin down). Larger
// batches pack to an FNV-1a digest of the canonical wire encoding of the
// value vector; the encoding is injective and the digest deterministic, so
// every correct processor of an instance is handed the same packed value.
func PackValues(vs []ident.Value) ident.Value {
	if len(vs) == 1 {
		return vs[0]
	}
	w := wire.NewWriter(2 + 9*len(vs))
	w.Uint(uint64(len(vs)))
	for _, v := range vs {
		w.Value(v)
	}
	h := fnv.New64a()
	_, _ = h.Write(w.Bytes())
	return ident.Value(h.Sum64())
}
