package service

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"

	"byzex/internal/ident"
)

// The serving wire protocol is deliberately minimal: newline-delimited text
// so a load generator (cmd/baload), netcat or a test can drive it without a
// codec. One request per line:
//
//	<value>\n   submit the integer value, wait for its instance, reply
//	stats\n     reply with a Stats snapshot
//
// Replies:
//
//	OK <instance-id> <seed> <batch-size> <packed> <decided> <committed> <msgs-correct> <sigs-correct>\n
//	ERR full\n | ERR draining\n | ERR <message>\n
//	STATS <stats-json>\n
//
// The stats reply is one line of JSON (the Stats struct), so Client.Stats
// returns a typed snapshot and load generators (baload's SLO checks, the
// tests) compare counters instead of string-matching a display line.
//
// The OK reply carries everything needed to re-execute the instance
// serially (seed, packed value, and the template the operator already
// knows) and to account amortized costs (batch size, correct-sender message
// and signature counts) — the contract `baload -verify` checks.

// Serve accepts connections on ln and serves svc's line protocol until ctx
// is done or ln is closed; it returns nil on graceful shutdown. Each
// connection is handled by its own goroutine; requests on one connection
// are served sequentially (a closed loop), so concurrency is the number of
// connections.
func Serve(ctx context.Context, ln net.Listener, svc *Service) error {
	if ctx.Done() != nil {
		stop := context.AfterFunc(ctx, func() { _ = ln.Close() })
		defer stop()
	}
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { _ = conn.Close() }()
			serveConn(ctx, conn, svc)
		}()
	}
}

func serveConn(ctx context.Context, conn net.Conn, svc *Service) {
	sc := bufio.NewScanner(conn)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		reply := handleLine(ctx, svc, line)
		if _, err := w.WriteString(reply + "\n"); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

func handleLine(ctx context.Context, svc *Service, line string) string {
	if strings.EqualFold(line, "stats") {
		b, err := json.Marshal(svc.Stats())
		if err != nil {
			return "ERR stats: " + err.Error()
		}
		return "STATS " + string(b)
	}
	v, err := strconv.ParseInt(line, 10, 64)
	if err != nil {
		return "ERR bad request: " + line
	}
	res, err := svc.SubmitWait(ctx, ident.Value(v))
	switch {
	case errors.Is(err, ErrQueueFull):
		return "ERR full"
	case errors.Is(err, ErrDraining):
		return "ERR draining"
	case err != nil && !errors.Is(err, ErrNotCommitted):
		// Run or agreement failures are errors; a decided-but-uncommitted
		// instance still gets an OK reply with committed=0 so the client
		// sees what was agreed.
		return "ERR " + err.Error()
	}
	inst := res.Instance
	committed := 0
	if res.Committed {
		committed = 1
	}
	return fmt.Sprintf("OK %d %d %d %d %d %d %d %d",
		inst.ID, inst.Config.Seed, len(inst.Values), int64(inst.Config.Value),
		int64(res.Decided), committed, inst.Report.MessagesCorrect, inst.Report.SignaturesCorrect)
}
