package service_test

import (
	"context"
	"fmt"

	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/protocols/alg1"
	"byzex/internal/service"
)

// ExampleService_SubmitWait serves a single value synchronously: one
// submission becomes one agreement instance (seed = template seed +
// instance id), and the result reports what the correct processors decided.
func ExampleService_SubmitWait() {
	ctx := context.Background()
	svc, err := service.New(ctx, service.Config{
		Template: core.Config{Protocol: alg1.MultiProtocol{}, N: 7, T: 3, Seed: 42},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer svc.Close()

	res, err := svc.SubmitWait(ctx, 7)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("decided %d committed %v instance %d seed %d\n",
		res.Decided, res.Committed, res.Instance.ID, res.Instance.Config.Seed)
	// Output:
	// decided 7 committed true instance 0 seed 42
}

// ExampleService_Submit pipelines several values without blocking between
// submissions: each returned channel resolves when its value's instance is
// delivered. Instance ids are assigned in admission order, so sequential
// submissions map to dense, deterministic ids.
func ExampleService_Submit() {
	ctx := context.Background()
	svc, err := service.New(ctx, service.Config{
		Template:   core.Config{Protocol: alg1.MultiProtocol{}, N: 7, T: 3, Seed: 1},
		QueueDepth: 8,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer svc.Close()

	var chans []<-chan service.Result
	for v := ident.Value(1); v <= 3; v++ {
		ch, err := svc.Submit(v)
		if err != nil {
			fmt.Println(err)
			return
		}
		chans = append(chans, ch)
	}
	for _, ch := range chans {
		res := <-ch
		if res.Err != nil {
			fmt.Println(res.Err)
			return
		}
		fmt.Printf("value %d -> instance %d decided %d\n", res.Value, res.Instance.ID, res.Decided)
	}
	// Output:
	// value 1 -> instance 0 decided 1
	// value 2 -> instance 1 decided 2
	// value 3 -> instance 2 decided 3
}
