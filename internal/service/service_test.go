package service_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/protocols/alg1"
	"byzex/internal/service"
	"byzex/internal/trace"
)

// template is the acceptance-criteria instance shape: alg1 (binary), n=7,
// t=3 — submitted values must stay in {0, 1}.
func template(seed int64) core.Config {
	return core.Config{Protocol: alg1.Protocol{}, N: 7, T: 3, Seed: seed}
}

// multiTemplate swaps in the multi-valued alg1 variant for tests that
// submit arbitrary values or batch (batching packs to an int64 digest).
func multiTemplate(seed int64) core.Config {
	return core.Config{Protocol: alg1.MultiProtocol{}, N: 7, T: 3, Seed: seed}
}

// TestServiceMatchesSerialRuns is the determinism contract: every instance
// the service executed concurrently must be byte-identical — full decision
// map, faulty set, message/signature/byte counters — to a serial core.Run
// of the instance's own Config.
func TestServiceMatchesSerialRuns(t *testing.T) {
	const values = 120
	ctx := context.Background()
	svc, err := service.New(ctx, service.Config{
		Template:    template(7),
		MaxInFlight: 8,
		QueueDepth:  values,
	})
	if err != nil {
		t.Fatal(err)
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		results []service.Result
	)
	for i := 0; i < values; i++ {
		ch, err := svc.Submit(ident.Value(i % 2))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			res := <-ch
			mu.Lock()
			results = append(results, res)
			mu.Unlock()
		}()
	}
	wg.Wait()
	svc.Close()

	if len(results) != values {
		t.Fatalf("resolved %d of %d", len(results), values)
	}
	seen := make(map[uint64]bool)
	for _, res := range results {
		if res.Err != nil {
			t.Fatalf("value %v: %v", res.Value, res.Err)
		}
		if !res.Committed || res.Decided != res.Value {
			t.Fatalf("value %v: decided %v committed=%v", res.Value, res.Decided, res.Committed)
		}
		inst := res.Instance
		if seen[inst.ID] {
			continue // batchmates share the instance
		}
		seen[inst.ID] = true

		serial, err := core.Run(ctx, inst.Config)
		if err != nil {
			t.Fatalf("instance %d serial run: %v", inst.ID, err)
		}
		if len(serial.Sim.Decisions) != len(inst.Decisions) {
			t.Fatalf("instance %d: decision map sizes differ", inst.ID)
		}
		for id, d := range serial.Sim.Decisions {
			if got := inst.Decisions[id]; got != d {
				t.Fatalf("instance %d: decision of %v differs (service %+v, serial %+v)", inst.ID, id, got, d)
			}
		}
		sr, ir := serial.Sim.Report, inst.Report
		if sr.MessagesCorrect != ir.MessagesCorrect || sr.SignaturesCorrect != ir.SignaturesCorrect || sr.BytesCorrect != ir.BytesCorrect {
			t.Fatalf("instance %d: reports differ (service %s, serial %s)", inst.ID, ir.String(), sr.String())
		}
	}

	st := svc.Stats()
	if st.Submitted != values || st.ValuesDecided != values {
		t.Fatalf("stats: %s", st.String())
	}
	if st.AmortizedMessagesPerValue() <= 0 {
		t.Fatalf("amortized messages per value not recorded: %s", st.String())
	}
}

// TestServiceBatchingAmortizesCost pins the batching semantics: with batch
// size k and a linger, k values share one instance, the packed value is
// PackValues of the batch, and the amortized per-value message cost drops
// by ~k versus unbatched serving.
func TestServiceBatchingAmortizesCost(t *testing.T) {
	const batch, waves = 4, 6
	ctx := context.Background()
	svc, err := service.New(ctx, service.Config{
		Template:    multiTemplate(11),
		MaxInFlight: 2,
		QueueDepth:  batch * waves,
		BatchSize:   batch,
		Linger:      50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	var chans []<-chan service.Result
	for i := 0; i < batch*waves; i++ {
		ch, err := svc.Submit(ident.Value(100 + i))
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	results := make([]service.Result, len(chans))
	for i, ch := range chans {
		results[i] = <-ch
	}
	svc.Close()

	instances := make(map[uint64]*service.InstanceResult)
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("request %d: %v", i, res.Err)
		}
		if !res.Committed {
			t.Fatalf("request %d not committed", i)
		}
		instances[res.Instance.ID] = res.Instance
	}
	// All instances must carry full batches (the linger window is generous
	// and submissions outpace the 2-wide executor).
	for id, inst := range instances {
		if len(inst.Values) != batch {
			t.Fatalf("instance %d: batch %d, want %d", id, len(inst.Values), batch)
		}
		if got := service.PackValues(inst.Values); inst.Config.Value != got {
			t.Fatalf("instance %d: packed %v, want %v", id, inst.Config.Value, got)
		}
		if inst.Decided != inst.Config.Value {
			t.Fatalf("instance %d: decided %v, want packed %v", id, inst.Decided, inst.Config.Value)
		}
	}
	if len(instances) != waves {
		t.Fatalf("%d instances for %d values, want %d", len(instances), batch*waves, waves)
	}

	st := svc.Stats()
	perValue := st.AmortizedMessagesPerValue()
	// One instance's cost serves `batch` values: amortized must be the
	// unbatched per-instance cost divided by the batch size.
	serial, err := core.Run(ctx, results[0].Instance.Config)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(serial.Sim.Report.MessagesCorrect) / float64(batch)
	if perValue != want {
		t.Fatalf("amortized msgs/value = %v, want %v", perValue, want)
	}
}

// TestServiceBackpressure fills the pipeline with a slow substrate and
// checks the typed rejection plus the queue-depth stats.
func TestServiceBackpressure(t *testing.T) {
	release := make(chan struct{})
	slow := func(ctx context.Context, cfg core.Config) (service.Outcome, error) {
		<-release
		return service.RunSim(ctx, cfg)
	}
	ctx := context.Background()
	svc, err := service.New(ctx, service.Config{
		Template:    template(3),
		Run:         slow,
		MaxInFlight: 1,
		QueueDepth:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 1 in the executor (+ up to 1 held by the batcher) + 2 queued: the
	// queue is certainly full after 4 admitted submissions.
	var chans []<-chan service.Result
	deadline := time.After(5 * time.Second)
	for len(chans) < 4 {
		ch, err := svc.Submit(ident.Value(len(chans) % 2))
		if err != nil {
			select {
			case <-deadline:
				t.Fatal("queue never filled")
			case <-time.After(time.Millisecond):
			}
			continue
		}
		chans = append(chans, ch)
	}
	// The queue now holds 2 and nothing completes: the next submission
	// must be rejected with the typed error.
	var rejected bool
	for i := 0; i < 100; i++ {
		if _, err := svc.Submit(1); errors.Is(err, service.ErrQueueFull) {
			rejected = true
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !rejected {
		t.Fatal("no ErrQueueFull under sustained overload")
	}
	close(release)
	for _, ch := range chans {
		if res := <-ch; res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	svc.Close()
	st := svc.Stats()
	if st.RejectedFull == 0 {
		t.Fatalf("stats did not record rejections: %s", st.String())
	}
	if st.QueueHighWater < 2 {
		t.Fatalf("queue high water %d, want >= 2", st.QueueHighWater)
	}
}

// TestServiceDrain checks Close semantics: submissions after Close are
// rejected with ErrDraining, while work admitted before Close still
// completes.
func TestServiceDrain(t *testing.T) {
	ctx := context.Background()
	svc, err := service.New(ctx, service.Config{Template: template(5), QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := svc.Submit(1)
	if err != nil {
		t.Fatal(err)
	}
	svc.Close()
	if _, err := svc.Submit(2); !errors.Is(err, service.ErrDraining) {
		t.Fatalf("got %v, want ErrDraining", err)
	}
	res := <-ch
	if res.Err != nil || res.Decided != 1 {
		t.Fatalf("drained request: %+v", res)
	}
	if st := svc.Stats(); st.RejectedDraining != 1 {
		t.Fatalf("stats: %s", st.String())
	}
}

// TestServiceContextCancelDrains checks the graceful-drain-on-cancel path:
// cancelling New's context stops admission and resolves every future.
func TestServiceContextCancelDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	svc, err := service.New(ctx, service.Config{Template: template(9), QueueDepth: 16})
	if err != nil {
		t.Fatal(err)
	}
	var chans []<-chan service.Result
	for i := 0; i < 8; i++ {
		ch, err := svc.Submit(ident.Value(i % 2))
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	cancel()
	svc.Close() // must not deadlock; also exercises idempotence with the watcher
	for i, ch := range chans {
		select {
		case <-ch:
			// Either a decision (run won the race) or a ctx error — the
			// future must resolve either way.
		case <-time.After(10 * time.Second):
			t.Fatalf("request %d never resolved after cancel", i)
		}
	}
	if _, err := svc.Submit(1); !errors.Is(err, service.ErrDraining) {
		t.Fatalf("got %v, want ErrDraining after cancel", err)
	}
}

// TestServiceTraceEvents checks the serving-layer events land in the sink
// with the documented field reuse, and instance-internal events appear in
// instance order when TraceInstances is set.
func TestServiceTraceEvents(t *testing.T) {
	buf := trace.NewBuffer()
	ctx := context.Background()
	svc, err := service.New(ctx, service.Config{
		Template:       multiTemplate(13),
		MaxInFlight:    4,
		QueueDepth:     32,
		Trace:          buf,
		TraceInstances: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	const values = 10
	var chans []<-chan service.Result
	for i := 0; i < values; i++ {
		ch, err := svc.Submit(ident.Value(i))
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	for _, ch := range chans {
		if res := <-ch; res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	svc.Close()

	sum := trace.Summarize(buf.Events())
	if sum.Enqueued != values {
		t.Fatalf("enqueued %d, want %d", sum.Enqueued, values)
	}
	if sum.InstancesStarted != sum.InstancesDone {
		t.Fatalf("starts %d != dones %d", sum.InstancesStarted, sum.InstancesDone)
	}
	if sum.ValuesDecided != values {
		t.Fatalf("values decided %d, want %d", sum.ValuesDecided, values)
	}
	// instance-done events arrive in instance-id order (delivery order),
	// and TraceInstances must interleave per-instance sends before each.
	lastDone := -1
	sends := 0
	for _, e := range buf.Events() {
		switch e.Kind {
		case trace.KindInstanceDone:
			if e.Signers <= lastDone {
				t.Fatalf("instance-done out of order: %d after %d", e.Signers, lastDone)
			}
			lastDone = e.Signers
		case trace.KindSend:
			sends++
		}
	}
	if sends == 0 {
		t.Fatal("TraceInstances produced no instance-internal events")
	}
	if got := sum.Totals().MessagesCorrect; got != int(svc.Stats().MessagesCorrect) {
		t.Fatalf("trace counts %d correct messages, stats %d", got, svc.Stats().MessagesCorrect)
	}
}

// TestBatchingRequiresMultiValuedProtocol pins the "where the protocol
// permits" gate: a binary protocol cannot carry a packed batch digest, so a
// BatchSize > 1 config must be rejected at construction with the typed
// error.
func TestBatchingRequiresMultiValuedProtocol(t *testing.T) {
	_, err := service.New(context.Background(), service.Config{
		Template:  template(1),
		BatchSize: 4,
	})
	if !errors.Is(err, service.ErrBatchingUnsupported) {
		t.Fatalf("got %v, want ErrBatchingUnsupported", err)
	}
	svc, err := service.New(context.Background(), service.Config{
		Template:  multiTemplate(1),
		BatchSize: 4,
	})
	if err != nil {
		t.Fatalf("multi-valued template rejected: %v", err)
	}
	svc.Close()
}

// TestPackValues pins the packing contract: singleton batches are identity
// (the serial-equivalence hinge), larger batches are deterministic and
// order-sensitive.
func TestPackValues(t *testing.T) {
	if got := service.PackValues([]ident.Value{42}); got != 42 {
		t.Fatalf("singleton packed to %v", got)
	}
	a := service.PackValues([]ident.Value{1, 2, 3})
	b := service.PackValues([]ident.Value{1, 2, 3})
	c := service.PackValues([]ident.Value{3, 2, 1})
	if a != b {
		t.Fatal("packing is not deterministic")
	}
	if a == c {
		t.Fatal("packing ignores order")
	}
}
