// Package service is the multi-instance Byzantine Agreement serving layer:
// a long-running Service multiplexes many concurrent agreement instances
// over one shared execution substrate (the in-memory engine or the TCP
// mesh), amortizing the paper's per-instance information-exchange costs —
// Ω(nt) signatures (Theorem 1), Ω(n+t²) messages (Theorems 2–4) — across a
// stream of submitted values.
//
// The pipeline has three bounded stages:
//
//	Submit → admission queue → batcher → executor → in-order delivery
//
// Admission is a bounded queue with typed rejections (ErrQueueFull,
// ErrDraining) — the backpressure surface. The batcher (one goroutine, so
// instance ids are assigned deterministically in admission order) coalesces
// up to BatchSize values into one Instance, waiting at most Linger for a
// batch to fill; each instance agrees on the packed batch value (see
// PackValues). The executor is a runner.Stream on a bounded pool: at most
// MaxInFlight instances execute concurrently, and results are delivered in
// instance-id order regardless of scheduling, the same submission-order
// determinism contract runner.Map gives the evaluation sweeps. Close (or
// cancellation of the context passed to New) drains gracefully: admission
// stops, buffered requests are still dispatched, and Close returns only
// after every in-flight instance has been delivered.
//
// Each instance derives its seed as Template.Seed + instance id, so any
// instance the service ran can be re-executed serially with core.Run and
// must produce byte-identical decisions — the property `baload -verify` and
// the determinism tests check.
package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/metrics"
	"byzex/internal/protocol"
	"byzex/internal/runner"
	"byzex/internal/sim"
	"byzex/internal/trace"
)

// Typed admission rejections — the backpressure surface callers program
// against (retry, shed, or block).
var (
	// ErrQueueFull rejects a submission because the bounded admission
	// queue is at capacity.
	ErrQueueFull = errors.New("service: admission queue full")
	// ErrDraining rejects a submission because the service is shutting
	// down and no longer admits work.
	ErrDraining = errors.New("service: draining, not admitting")
	// ErrNotCommitted reports that an instance reached agreement on a
	// value other than the packed batch value (possible only when the
	// template corrupts the transmitter): the submission's value was not
	// served, even though the instance itself is a valid agreement.
	ErrNotCommitted = errors.New("service: instance decided a different value")
	// ErrBatchingUnsupported rejects a BatchSize > 1 configuration whose
	// protocol only carries binary values: a packed batch digest is an
	// arbitrary int64, so batching requires one of the multi-valued
	// protocol variants (alg1-multi, alg4, dolev-strong, ...).
	ErrBatchingUnsupported = errors.New("service: batching requires a multi-valued protocol")
)

// Config parameterizes a Service.
type Config struct {
	// Template is the per-instance run description: Protocol, N, T,
	// Transmitter, Scheme, Adversary, Rushing are used as-is; Value is
	// replaced by the packed batch value, Seed becomes the base seed
	// (instance i runs with Template.Seed + i), and Trace is ignored in
	// favor of the service-level sink below.
	Template core.Config
	// Run executes one instance (default RunSim).
	Run RunFunc
	// MaxInFlight bounds how many instances execute concurrently; values
	// below one select runtime.GOMAXPROCS(0) (see runner.New).
	MaxInFlight int
	// QueueDepth bounds the admission queue (default 64, minimum 1).
	QueueDepth int
	// BatchSize is the maximum number of submitted values coalesced into
	// one instance (default 1 = no batching).
	BatchSize int
	// Linger bounds how long the batcher waits for a partial batch to
	// fill once it holds at least one value. Zero means "don't wait":
	// a batch is whatever is already queued, up to BatchSize.
	Linger time.Duration
	// Trace receives the serving-layer events (enqueue, reject,
	// instance-start, instance-done). Emissions are serialized internally,
	// so any sink works. Instance-internal events are only recorded when
	// TraceInstances is also set.
	Trace trace.Sink
	// TraceInstances additionally runs every instance with a private
	// trace buffer drained into Trace at delivery time — instance events
	// therefore appear in instance-id order, bracketed by that instance's
	// instance-done event, no matter how the executor interleaved the
	// runs.
	TraceInstances bool
}

// Instance is one scheduled agreement execution: the identity, the resolved
// run configuration, and the batch of submitted values it serves.
type Instance struct {
	// ID is the instance's dense sequence number in admission order.
	ID uint64
	// Config is the fully-resolved core configuration the substrate ran:
	// Value is the packed batch value and Seed is Template.Seed + ID.
	Config core.Config
	// Values are the submitted values the instance serves, in admission
	// order. len(Values) is the batch size; Config.Value == PackValues(Values).
	Values []ident.Value
}

// InstanceResult is the outcome of one instance, shared by every Result of
// its batch.
type InstanceResult struct {
	Instance
	// Decided is the common decision of the correct processors.
	Decided ident.Value
	// Committed reports that Decided equals the packed batch value, i.e.
	// the submitted values were actually served.
	Committed bool
	// Decisions, Report and Faulty are the substrate outcome (see
	// Outcome); Decisions lets callers compare a served instance
	// byte-for-byte against a serial core.Run of the same Config.
	Decisions map[ident.ProcID]sim.Decision
	Report    metrics.Report
	Faulty    ident.Set
	// Err is the run or agreement-check failure, nil on success.
	Err error
}

// Result resolves one submitted value.
type Result struct {
	// Value is the submitted value.
	Value ident.Value
	// Decided is the instance's common decision; equals Value when
	// Committed (the usual case: correct transmitter).
	Decided ident.Value
	// Committed reports the batch containing Value was served.
	Committed bool
	// Instance is the shared outcome of the batch's instance.
	Instance *InstanceResult
	// Latency is the submit-to-delivery wall time.
	Latency time.Duration
	// Err is non-nil when the instance failed or did not commit.
	Err error
}

// Stats is a snapshot of the service counters.
type Stats struct {
	// Submitted counts admitted values; RejectedFull / RejectedDraining
	// count the two typed rejections.
	Submitted        uint64
	RejectedFull     uint64
	RejectedDraining uint64
	// Instances / InstancesFailed count delivered instances; ValuesDecided
	// counts values resolved by committed instances.
	Instances       uint64
	InstancesFailed uint64
	ValuesDecided   uint64
	// QueueHighWater is the deepest the admission queue has been.
	QueueHighWater int
	// MessagesCorrect / SignaturesCorrect / BytesCorrect sum the
	// per-instance metrics.Report counters over delivered instances — the
	// numerators of the amortized per-value costs.
	MessagesCorrect   uint64
	SignaturesCorrect uint64
	BytesCorrect      uint64
	// MaxLatency / TotalLatency aggregate submit-to-delivery wall time
	// over resolved values (TotalLatency / ValuesDecided is the mean).
	MaxLatency   time.Duration
	TotalLatency time.Duration
}

// AmortizedMessagesPerValue returns correct-sender messages per decided
// value — the serving-layer form of the paper's per-instance Ω(n+t²) bound.
func (s Stats) AmortizedMessagesPerValue() float64 {
	if s.ValuesDecided == 0 {
		return 0
	}
	return float64(s.MessagesCorrect) / float64(s.ValuesDecided)
}

// AmortizedSignaturesPerValue returns correct-sender signatures per decided
// value (per-instance bound: Ω(nt), Theorem 1).
func (s Stats) AmortizedSignaturesPerValue() float64 {
	if s.ValuesDecided == 0 {
		return 0
	}
	return float64(s.SignaturesCorrect) / float64(s.ValuesDecided)
}

// String renders a compact single-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("submitted=%d rejected=%d/%d instances=%d(failed %d) values=%d qhw=%d msgs/value=%.1f sigs/value=%.1f",
		s.Submitted, s.RejectedFull, s.RejectedDraining, s.Instances, s.InstancesFailed,
		s.ValuesDecided, s.QueueHighWater, s.AmortizedMessagesPerValue(), s.AmortizedSignaturesPerValue())
}

// request is one queued submission.
type request struct {
	value ident.Value
	enq   time.Time
	ch    chan Result // buffered(1); exactly one send per request
}

// completed pairs an instance outcome with the requests it resolves, so the
// stream delivery callback can complete the futures in instance order.
type completed struct {
	inst *InstanceResult
	reqs []*request
	buf  *trace.Buffer // per-instance trace (nil unless TraceInstances)
}

// Service is the long-running serving layer. Construct with New; a Service
// is safe for concurrent Submit from any number of goroutines.
type Service struct {
	cfg    Config
	ctx    context.Context
	queue  chan *request
	stream *runner.Stream[*completed]
	sink   trace.Sink // serialized; nil when tracing is disabled

	draining    chan struct{} // closed by Close
	drainOnce   sync.Once
	batcherDone chan struct{}

	mu           sync.Mutex
	stats        Stats
	nextInstance uint64
}

// New starts a Service. ctx governs the instances' execution and triggers a
// graceful drain when cancelled: admission stops, already-admitted work is
// still dispatched (instances then observe the cancelled context and fail
// fast), and Close waits for every delivery.
func New(ctx context.Context, cfg Config) (*Service, error) {
	if cfg.Template.Protocol == nil {
		return nil, errors.New("service: template has no protocol")
	}
	if err := cfg.Template.Protocol.Check(cfg.Template.N, cfg.Template.T); err != nil {
		return nil, err
	}
	if cfg.Run == nil {
		cfg.Run = RunSim
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 64
	}
	if cfg.BatchSize < 1 {
		cfg.BatchSize = 1
	}
	if cfg.BatchSize > 1 {
		// Batching packs a batch into an arbitrary int64 digest; probe the
		// protocol with a non-binary value so a binary-only protocol is
		// rejected here, with a typed error, instead of failing every
		// multi-value instance at run time.
		probe := cfg.Template
		probe.Value = 2
		probe.Adversary = nil
		probe.FaultyOverride = nil
		probe.Trace = nil
		if _, err := core.NewSetup(probe); err != nil {
			if errors.Is(err, protocol.ErrBadParams) {
				return nil, fmt.Errorf("%w: %v", ErrBatchingUnsupported, err)
			}
			return nil, err
		}
	}
	s := &Service{
		cfg:         cfg,
		ctx:         ctx,
		queue:       make(chan *request, cfg.QueueDepth),
		draining:    make(chan struct{}),
		batcherDone: make(chan struct{}),
	}
	if cfg.Trace != nil {
		s.sink = &lockedSink{dst: cfg.Trace}
	}
	s.stream = runner.NewStream[*completed](runner.New(cfg.MaxInFlight), s.deliver)
	go s.batcher()
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				s.Close()
			case <-s.draining:
			}
		}()
	}
	return s, nil
}

// Submit admits one value. It never blocks: when the admission queue is at
// capacity the submission is rejected with ErrQueueFull, and once the
// service drains with ErrDraining — backpressure is explicit so callers can
// choose to retry, shed or block. On success the returned channel receives
// exactly one Result when the value's instance is delivered.
func (s *Service) Submit(v ident.Value) (<-chan Result, error) {
	select {
	case <-s.draining:
		s.reject(true)
		return nil, ErrDraining
	default:
	}
	req := &request{value: v, enq: time.Now(), ch: make(chan Result, 1)}
	select {
	case s.queue <- req:
	default:
		s.reject(false)
		return nil, ErrQueueFull
	}
	depth := len(s.queue)
	s.mu.Lock()
	s.stats.Submitted++
	if depth > s.stats.QueueHighWater {
		s.stats.QueueHighWater = depth
	}
	s.mu.Unlock()
	if s.sink != nil {
		s.sink.Emit(trace.Event{Kind: trace.KindEnqueue, From: ident.None, To: ident.None, Sigs: depth, Value: v})
	}
	return req.ch, nil
}

// SubmitWait submits v and blocks until its Result (or ctx is done, or the
// submission is rejected).
func (s *Service) SubmitWait(ctx context.Context, v ident.Value) (Result, error) {
	ch, err := s.Submit(v)
	if err != nil {
		return Result{}, err
	}
	select {
	case res := <-ch:
		return res, res.Err
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
}

func (s *Service) reject(draining bool) {
	depth := len(s.queue)
	s.mu.Lock()
	if draining {
		s.stats.RejectedDraining++
	} else {
		s.stats.RejectedFull++
	}
	s.mu.Unlock()
	if s.sink != nil {
		s.sink.Emit(trace.Event{Kind: trace.KindReject, From: ident.None, To: ident.None, Sigs: depth, Flag: draining})
	}
}

// Stats returns a snapshot of the counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close drains the service: admission stops (Submit returns ErrDraining),
// every already-admitted value is still batched and dispatched, and Close
// returns once all instances have been delivered. Idempotent and safe to
// call concurrently; also triggered by cancellation of New's context.
func (s *Service) Close() {
	s.drainOnce.Do(func() { close(s.draining) })
	<-s.batcherDone
	s.stream.Close()
}

// batcher is the single goroutine that forms batches and dispatches
// instances; being alone on this path makes instance ids (and therefore
// seeds) deterministic in admission order.
func (s *Service) batcher() {
	defer close(s.batcherDone)
	for {
		var first *request
		select {
		case first = <-s.queue:
		case <-s.draining:
			// Drain: flush whatever is still queued, then stop.
			for {
				select {
				case req := <-s.queue:
					s.dispatch(s.fill(req, false))
				default:
					return
				}
			}
		}
		s.dispatch(s.fill(first, true))
	}
}

// fill grows a batch starting at first up to BatchSize, lingering for
// stragglers when allowed and configured.
func (s *Service) fill(first *request, mayLinger bool) []*request {
	batch := []*request{first}
	if s.cfg.BatchSize == 1 {
		return batch
	}
	var lingerC <-chan time.Time
	if mayLinger && s.cfg.Linger > 0 {
		timer := time.NewTimer(s.cfg.Linger)
		defer timer.Stop()
		lingerC = timer.C
	}
	for len(batch) < s.cfg.BatchSize {
		if lingerC == nil {
			// No linger: take only what is already queued.
			select {
			case req := <-s.queue:
				batch = append(batch, req)
			default:
				return batch
			}
			continue
		}
		select {
		case req := <-s.queue:
			batch = append(batch, req)
		case <-lingerC:
			return batch
		case <-s.draining:
			return batch
		}
	}
	return batch
}

// dispatch assigns the next instance id, resolves the template and submits
// the run to the executor; Submit blocks when MaxInFlight instances are
// already executing, which is what lets the admission queue fill and
// reject — bounded end to end.
func (s *Service) dispatch(batch []*request) {
	s.mu.Lock()
	id := s.nextInstance
	s.nextInstance++
	s.mu.Unlock()

	values := make([]ident.Value, len(batch))
	for i, req := range batch {
		values[i] = req.value
	}
	packed := PackValues(values)

	cfg := s.cfg.Template
	cfg.Value = packed
	cfg.Seed = s.cfg.Template.Seed + int64(id)
	cfg.Trace = nil

	inst := Instance{ID: id, Config: cfg, Values: values}
	if s.sink != nil {
		s.sink.Emit(trace.Event{
			Kind: trace.KindInstanceStart, From: ident.None, To: ident.None,
			Signers: int(id), Sigs: len(values), Value: packed,
		})
	}

	// Submission must not race with the service context: drain dispatches
	// every admitted value even after cancellation (the run itself then
	// fails fast on the cancelled context), so the executor slot wait uses
	// the background context and the run uses the service one.
	_, err := s.stream.Submit(context.Background(), func(context.Context) (*completed, error) {
		return s.runInstance(inst, batch), nil
	})
	if err != nil {
		// Only possible after stream.Close, which Close orders strictly
		// after the batcher exits — keep the requests from hanging anyway.
		s.fail(batch, inst, err)
	}
}

// runInstance executes one instance on the substrate and packages the
// outcome; it runs on an executor worker.
func (s *Service) runInstance(inst Instance, reqs []*request) *completed {
	cfg := inst.Config
	var buf *trace.Buffer
	if s.sink != nil && s.cfg.TraceInstances {
		buf = trace.NewBuffer()
		cfg.Trace = buf
	}
	res := &InstanceResult{Instance: inst}
	out, err := s.cfg.Run(s.ctx, cfg)
	if err != nil {
		res.Err = err
		return &completed{inst: res, reqs: reqs, buf: buf}
	}
	res.Decisions = out.Decisions
	res.Report = out.Report
	res.Faulty = out.Faulty
	decided, err := core.CheckDecisions(out.Decisions, out.Faulty, cfg.Transmitter, cfg.Value)
	if err != nil {
		res.Err = err
		return &completed{inst: res, reqs: reqs, buf: buf}
	}
	res.Decided = decided
	res.Committed = decided == cfg.Value
	return &completed{inst: res, reqs: reqs, buf: buf}
}

// deliver runs on the executor in strict instance-id order (runner.Stream's
// contract): it folds the outcome into the stats, drains the instance's
// private trace, emits instance-done and resolves the batch's futures.
func (s *Service) deliver(_ uint64, c *completed, _ error) {
	inst := c.inst
	now := time.Now()

	s.mu.Lock()
	s.stats.Instances++
	if inst.Err != nil {
		s.stats.InstancesFailed++
	} else {
		s.stats.MessagesCorrect += uint64(inst.Report.MessagesCorrect)
		s.stats.SignaturesCorrect += uint64(inst.Report.SignaturesCorrect)
		s.stats.BytesCorrect += uint64(inst.Report.BytesCorrect)
		if inst.Committed {
			s.stats.ValuesDecided += uint64(len(inst.Values))
		}
	}
	for _, req := range c.reqs {
		lat := now.Sub(req.enq)
		s.stats.TotalLatency += lat
		if lat > s.stats.MaxLatency {
			s.stats.MaxLatency = lat
		}
	}
	s.mu.Unlock()

	if s.sink != nil {
		if c.buf != nil {
			c.buf.DrainTo(s.sink)
		}
		s.sink.Emit(trace.Event{
			Kind: trace.KindInstanceDone, From: ident.None, To: ident.None,
			Signers: int(inst.ID), Sigs: len(inst.Values),
			Bytes: inst.Report.MessagesCorrect, Value: inst.Decided, Flag: inst.Err == nil,
		})
	}

	for _, req := range c.reqs {
		res := Result{
			Value:     req.value,
			Decided:   inst.Decided,
			Committed: inst.Committed,
			Instance:  inst,
			Latency:   now.Sub(req.enq),
			Err:       inst.Err,
		}
		if res.Err == nil && !res.Committed {
			res.Err = fmt.Errorf("%w: decided %v, batch packed %v", ErrNotCommitted, inst.Decided, inst.Config.Value)
		}
		req.ch <- res
	}
}

// fail resolves a batch whose instance could not even be scheduled.
func (s *Service) fail(batch []*request, inst Instance, err error) {
	res := &InstanceResult{Instance: inst, Err: err}
	now := time.Now()
	s.mu.Lock()
	s.stats.Instances++
	s.stats.InstancesFailed++
	s.mu.Unlock()
	for _, req := range batch {
		req.ch <- Result{Value: req.value, Instance: res, Latency: now.Sub(req.enq), Err: err}
	}
}

// lockedSink serializes emissions from concurrent submitters and executor
// workers onto one underlying sink.
type lockedSink struct {
	mu  sync.Mutex
	dst trace.Sink
}

func (l *lockedSink) Emit(e trace.Event) {
	l.mu.Lock()
	l.dst.Emit(e)
	l.mu.Unlock()
}
