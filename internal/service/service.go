// Package service is the multi-instance Byzantine Agreement serving layer:
// a long-running Service multiplexes many concurrent agreement instances
// over one shared execution substrate (the in-memory engine or the TCP
// mesh), amortizing the paper's per-instance information-exchange costs —
// Ω(nt) signatures (Theorem 1), Ω(n+t²) messages (Theorems 2–4) — across a
// stream of submitted values.
//
// The pipeline has three bounded stages:
//
//	Submit → admission queue → sequencer/batcher → shard workers → in-order delivery
//
// Admission is a bounded queue with typed rejections (ErrQueueFull,
// ErrDraining) — the backpressure surface. The sequencer (one goroutine, so
// instance ids are assigned deterministically in admission order) coalesces
// queued values into one Instance per batch; batch size is either fixed
// (BatchSize) or governed by the adaptive controller (BatchMin/BatchMax),
// which grows the target under backlog and shrinks it when the queue runs
// idle. Formed instances are handed to a pool of Shards identified workers
// (runner.Shards): each shard runs instances concurrently with its own
// substrate handle and its own reusable trace buffer, and results are
// delivered in instance-id order regardless of which shard finished first —
// the same submission-order determinism contract runner.Map gives the
// evaluation sweeps. Close (or cancellation of the context passed to New)
// drains gracefully: admission stops, buffered requests are still
// dispatched, and Close returns only after every in-flight instance has
// been delivered.
//
// Each instance derives its seed as Template.Seed + instance id, so any
// instance the service ran can be re-executed serially with core.Run and
// must produce byte-identical decisions — the property `baload -verify` and
// the determinism tests check. Because ids are assigned by the single
// sequencer and delivery is id-ordered, the instance-scoped trace events
// (instance-start, per-instance internals, instance-done) are byte-identical
// at any shard count too; only the admission-scoped events (enqueue, reject,
// batch-adapt) reflect live load (see trace.Kind.AdmissionScoped).
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/metrics"
	"byzex/internal/protocol"
	"byzex/internal/runner"
	"byzex/internal/sim"
	"byzex/internal/trace"
)

// Typed admission rejections — the backpressure surface callers program
// against (retry, shed, or block).
var (
	// ErrQueueFull rejects a submission because the bounded admission
	// queue is at capacity.
	ErrQueueFull = errors.New("service: admission queue full")
	// ErrDraining rejects a submission because the service is shutting
	// down and no longer admits work.
	ErrDraining = errors.New("service: draining, not admitting")
	// ErrNotCommitted reports that an instance reached agreement on a
	// value other than the packed batch value (possible only when the
	// template corrupts the transmitter): the submission's value was not
	// served, even though the instance itself is a valid agreement.
	ErrNotCommitted = errors.New("service: instance decided a different value")
	// ErrBatchingUnsupported rejects a batch window above 1 whose
	// protocol only carries binary values: a packed batch digest is an
	// arbitrary int64, so batching requires one of the multi-valued
	// protocol variants (alg1-multi, alg4, dolev-strong, ...).
	ErrBatchingUnsupported = errors.New("service: batching requires a multi-valued protocol")
)

// Config parameterizes a Service.
type Config struct {
	// Template is the per-instance run description: Protocol, N, T,
	// Transmitter, Scheme, Adversary, Rushing, Faults are used as-is; Value
	// is replaced by the packed batch value, Seed becomes the base seed
	// (instance i runs with Template.Seed + i), and Trace is ignored in
	// favor of the service-level sink below.
	Template core.Config
	// Run executes one instance (default RunSim). Implementations must be
	// safe for concurrent use from distinct shards. Ignored when Substrate
	// is set (a Substrate decides per shard what runs).
	Run RunFunc
	// Substrate, when set, supplies each shard worker its own substrate
	// handle: Open(shard) is called once per shard at startup, and
	// Close(shard) once per shard during Service.Close after every instance
	// has been delivered. Use this for substrates that keep per-handle
	// state (warm connection meshes, caches) — NewWarmTCP implements it —
	// and SharedRun to adapt a plain RunFunc. When nil, every shard shares
	// Run.
	Substrate Substrate
	// Journal, when set, receives every admission before its instance is
	// handed to a shard (Admit, called from the single sequencer goroutine,
	// so records land in instance-id order) and one checkpoint during Close
	// after the last delivery (Checkpoint). An Admit error fails the batch
	// instead of running it: an instance the journal did not capture must
	// never execute, or a crash would lose it. The journal package
	// implements this.
	Journal Journal
	// FirstInstance seeds the instance-id sequencer. A recovered service
	// sets it to the journal's watermark so a restarted server never reuses
	// an instance id — and therefore never reuses a seed
	// (seed = Template.Seed + id). Zero starts fresh.
	FirstInstance uint64
	// BaseStats, when set, seeds the monotone counters (submissions,
	// instances, values, message/signature/byte sums, latency aggregates,
	// batch moves, queue high-water) from a recovered checkpoint so the
	// stats surface spans restarts. Live gauges (queue depth, shard
	// instances, batch target) always start fresh; after a recovery,
	// Instances therefore no longer equals the sum of ShardInstances.
	BaseStats *Stats
	// Shards is the number of identified shard workers executing instances
	// concurrently; values below one select runtime.GOMAXPROCS(0).
	Shards int
	// MaxInFlight is the deprecated name for Shards, honored when Shards
	// is zero so existing callers keep their concurrency bound.
	//
	// Deprecated: set Shards.
	MaxInFlight int
	// QueueDepth bounds the admission queue (default 64, minimum 1).
	QueueDepth int
	// BatchSize fixes the batch size when no adaptive window is configured
	// (default 1 = no batching): every instance packs up to BatchSize
	// values.
	BatchSize int
	// BatchMin / BatchMax open the adaptive batching window: when
	// BatchMax > max(BatchMin, 1), a controller on the sequencer moves the
	// target batch size inside [max(BatchMin,1), BatchMax] — doubling under
	// backlog (queue depth at or above the target when a batch forms),
	// halving when the queue runs idle, dispatching singletons immediately
	// on the idle fast path. Decisions are emitted as batch-adapt trace
	// events and counted in Stats.
	BatchMin, BatchMax int
	// BatchTarget seeds the controller's initial target (clamped into the
	// window; default BatchMin).
	BatchTarget int
	// Linger bounds how long the sequencer waits for a partial batch to
	// fill once it holds at least one value. Zero means "don't wait" for
	// fixed-size batching; under an adaptive window it means "derive the
	// bound from observed instance latency" (capped at 2ms).
	Linger time.Duration
	// Trace receives the serving-layer events (enqueue, reject, batch-adapt,
	// instance-start, instance-done). Emissions are serialized internally,
	// so any sink works. Instance-internal events are only recorded when
	// TraceInstances is also set.
	Trace trace.Sink
	// TraceInstances additionally runs every instance against its shard's
	// private trace buffer, drained into Trace at delivery time — instance
	// events therefore appear in instance-id order, bracketed by that
	// instance's instance-start and instance-done events, no matter which
	// shard ran it or how the shards interleaved.
	TraceInstances bool
}

// Instance is one scheduled agreement execution: the identity, the resolved
// run configuration, and the batch of submitted values it serves.
type Instance struct {
	// ID is the instance's dense sequence number in admission order.
	ID uint64
	// Config is the fully-resolved core configuration the substrate ran:
	// Value is the packed batch value and Seed is Template.Seed + ID.
	Config core.Config
	// Values are the submitted values the instance serves, in admission
	// order. len(Values) is the batch size; Config.Value == PackValues(Values).
	Values []ident.Value
}

// InstanceResult is the outcome of one instance, shared by every Result of
// its batch.
type InstanceResult struct {
	Instance
	// Decided is the common decision of the correct processors.
	Decided ident.Value
	// Committed reports that Decided equals the packed batch value, i.e.
	// the submitted values were actually served.
	Committed bool
	// Decisions, Report and Faulty are the substrate outcome (see
	// Outcome); Decisions lets callers compare a served instance
	// byte-for-byte against a serial core.Run of the same Config.
	Decisions map[ident.ProcID]sim.Decision
	Report    metrics.Report
	Faulty    ident.Set
	// Shard is the shard worker that executed the instance. It is an
	// operational detail — which shard runs which instance depends on
	// scheduling — and is deliberately absent from the trace, which stays
	// byte-identical across shard counts.
	Shard int
	// Err is the run or agreement-check failure, nil on success.
	Err error
}

// Result resolves one submitted value.
type Result struct {
	// Value is the submitted value.
	Value ident.Value
	// Decided is the instance's common decision; equals Value when
	// Committed (the usual case: correct transmitter).
	Decided ident.Value
	// Committed reports the batch containing Value was served.
	Committed bool
	// Instance is the shared outcome of the batch's instance.
	Instance *InstanceResult
	// Latency is the submit-to-delivery wall time.
	Latency time.Duration
	// Err is non-nil when the instance failed or did not commit.
	Err error
}

// Stats is a snapshot of the service counters.
type Stats struct {
	// Submitted counts admitted values; RejectedFull / RejectedDraining
	// count the two typed rejections.
	Submitted        uint64
	RejectedFull     uint64
	RejectedDraining uint64
	// Instances / InstancesFailed count delivered instances; ValuesDecided
	// counts values resolved by committed instances.
	Instances       uint64
	InstancesFailed uint64
	ValuesDecided   uint64
	// QueueDepth is the admission queue's depth at snapshot time — the
	// only live gauge in the struct; everything else is monotone or
	// high-water. QueueHighWater is the deepest the queue has been.
	QueueDepth     int
	QueueHighWater int
	// MessagesCorrect / SignaturesCorrect / BytesCorrect sum the
	// per-instance metrics.Report counters over delivered instances — the
	// numerators of the amortized per-value costs.
	MessagesCorrect   uint64
	SignaturesCorrect uint64
	BytesCorrect      uint64
	// MaxLatency / TotalLatency aggregate submit-to-delivery wall time
	// over resolved values (TotalLatency / ValuesDecided is the mean).
	MaxLatency   time.Duration
	TotalLatency time.Duration
	// Shards is the configured shard-worker count; ShardInstances counts
	// delivered instances per shard (index = shard id) — the load-balance
	// gauge.
	Shards         int
	ShardInstances []uint64
	// BatchTarget is the controller's current target batch size (the fixed
	// size when no adaptive window is configured); BatchGrows / BatchShrinks
	// count its adaptive moves.
	BatchTarget  int
	BatchGrows   uint64
	BatchShrinks uint64
}

// AmortizedMessagesPerValue returns correct-sender messages per decided
// value — the serving-layer form of the paper's per-instance Ω(n+t²) bound.
func (s Stats) AmortizedMessagesPerValue() float64 {
	if s.ValuesDecided == 0 {
		return 0
	}
	return float64(s.MessagesCorrect) / float64(s.ValuesDecided)
}

// AmortizedSignaturesPerValue returns correct-sender signatures per decided
// value (per-instance bound: Ω(nt), Theorem 1).
func (s Stats) AmortizedSignaturesPerValue() float64 {
	if s.ValuesDecided == 0 {
		return 0
	}
	return float64(s.SignaturesCorrect) / float64(s.ValuesDecided)
}

// String renders a compact single-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("submitted=%d rejected=%d/%d instances=%d(failed %d) values=%d qhw=%d shards=%d batch=%d(+%d/-%d) msgs/value=%.1f sigs/value=%.1f",
		s.Submitted, s.RejectedFull, s.RejectedDraining, s.Instances, s.InstancesFailed,
		s.ValuesDecided, s.QueueHighWater, s.Shards, s.BatchTarget, s.BatchGrows, s.BatchShrinks,
		s.AmortizedMessagesPerValue(), s.AmortizedSignaturesPerValue())
}

// Journal is the durability hook a Service writes through: Admit persists
// one admission before its instance runs (called from the single sequencer
// goroutine, in instance-id order), and Checkpoint persists the admission
// watermark plus a stats snapshot when the service drains. Implementations
// decide the sync policy; an Admit error vetoes the instance.
type Journal interface {
	Admit(inst Instance) error
	Checkpoint(watermark uint64, stats Stats) error
}

// CompactingJournal is the optional live-compaction hook a Journal may also
// implement (discovered by type assertion at New): the service calls
// MaybeCheckpoint from its delivery goroutine after each in-order delivery,
// passing the *delivered watermark* — the lowest undelivered admission id —
// and a stats snapshot taken in the same critical section. Because delivery
// is strictly instance-id ordered, the watermark never clears an in-flight
// admission, so the implementation may checkpoint at it and prune covered
// segments while the service keeps serving. The implementation decides
// whether a checkpoint is due (record budget, timer); it returns whether one
// was attempted, and the write error if it failed. Calls never overlap
// (runner.Shards serializes delivery) but do run concurrently with Admit
// from the sequencer.
type CompactingJournal interface {
	Journal
	MaybeCheckpoint(watermark uint64, stats Stats) (bool, error)
}

// request is one queued submission.
type request struct {
	value ident.Value
	enq   time.Time
	ch    chan Result // buffered(1); exactly one send per request
}

// dispatched is one formed instance on its way to a shard worker.
type dispatched struct {
	inst   Instance
	reqs   []*request
	replay bool // re-submitted from the journal during recovery
}

// completed pairs an instance outcome with the requests it resolves, so the
// delivery stage can complete the futures in instance order.
type completed struct {
	inst   *InstanceResult
	reqs   []*request
	events []trace.Event // per-instance trace (nil unless TraceInstances)
	runDur time.Duration // substrate execution time, feeds the controller
	replay bool
}

// shardState is the per-worker state pinned to one shard: its substrate
// handle and, when per-instance tracing is on, its reusable trace buffer.
// Only the owning shard touches it, so no locking is needed.
type shardState struct {
	run RunFunc
	buf *trace.Buffer
}

// Service is the long-running serving layer. Construct with New; a Service
// is safe for concurrent Submit from any number of goroutines.
type Service struct {
	cfg       Config
	ctx       context.Context
	queue     chan *request
	exec      *runner.Shards[*dispatched, *completed]
	shards    []shardState
	substrate Substrate
	policy    *batchController
	sink      trace.Sink // serialized; nil when tracing is disabled

	draining       chan struct{} // closed by Close
	drainOnce      sync.Once
	batcherDone    chan struct{}
	checkpointOnce sync.Once // writes the drain checkpoint exactly once
	releaseOnce    sync.Once // runs Substrate.Close per shard exactly once

	// compactor is cfg.Journal's optional live-compaction side, resolved
	// once at New; compactStats is the delivery goroutine's reusable
	// snapshot holder — deliver invocations never overlap (runner.Shards'
	// contract), so no lock guards it.
	compactor    CompactingJournal
	compactStats Stats

	mu           sync.Mutex
	stats        Stats
	nextInstance uint64
	delivered    uint64 // lowest undelivered instance id (the delivered watermark)
}

// New starts a Service. ctx governs the instances' execution and triggers a
// graceful drain when cancelled: admission stops, already-admitted work is
// still dispatched (instances then observe the cancelled context and fail
// fast), and Close waits for every delivery.
func New(ctx context.Context, cfg Config) (*Service, error) {
	if cfg.Template.Protocol == nil {
		return nil, errors.New("service: template has no protocol")
	}
	if err := cfg.Template.Protocol.Check(cfg.Template.N, cfg.Template.T); err != nil {
		return nil, err
	}
	if cfg.Run == nil {
		cfg.Run = RunSim
	}
	substrate := cfg.Substrate
	if substrate == nil {
		substrate = SharedRun(cfg.Run)
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 64
	}
	shards := cfg.Shards
	if shards < 1 {
		shards = cfg.MaxInFlight
	}
	if shards < 1 {
		shards = runtime.GOMAXPROCS(0)
	}
	policy, err := newBatchController(cfg)
	if err != nil {
		return nil, err
	}
	if policy.max > 1 {
		// Batching packs a batch into an arbitrary int64 digest; probe the
		// protocol with a non-binary value so a binary-only protocol is
		// rejected here, with a typed error, instead of failing every
		// multi-value instance at run time.
		probe := cfg.Template
		probe.Value = 2
		probe.Adversary = nil
		probe.FaultyOverride = nil
		probe.Trace = nil
		if _, err := core.NewSetup(probe); err != nil {
			if errors.Is(err, protocol.ErrBadParams) {
				return nil, fmt.Errorf("%w: %v", ErrBatchingUnsupported, err)
			}
			return nil, err
		}
	}
	s := &Service{
		cfg:         cfg,
		ctx:         ctx,
		queue:       make(chan *request, cfg.QueueDepth),
		substrate:   substrate,
		policy:      policy,
		draining:    make(chan struct{}),
		batcherDone: make(chan struct{}),
	}
	s.nextInstance = cfg.FirstInstance
	s.delivered = cfg.FirstInstance
	if cj, ok := cfg.Journal.(CompactingJournal); ok {
		s.compactor = cj
	}
	if cfg.BaseStats != nil {
		// Carry the monotone counters across the restart; the live gauges
		// (queue depth, per-shard instance counts, batch target) describe
		// this process and start fresh.
		b := cfg.BaseStats
		s.stats.Submitted = b.Submitted
		s.stats.RejectedFull = b.RejectedFull
		s.stats.RejectedDraining = b.RejectedDraining
		s.stats.Instances = b.Instances
		s.stats.InstancesFailed = b.InstancesFailed
		s.stats.ValuesDecided = b.ValuesDecided
		s.stats.QueueHighWater = b.QueueHighWater
		s.stats.MessagesCorrect = b.MessagesCorrect
		s.stats.SignaturesCorrect = b.SignaturesCorrect
		s.stats.BytesCorrect = b.BytesCorrect
		s.stats.MaxLatency = b.MaxLatency
		s.stats.TotalLatency = b.TotalLatency
		s.stats.BatchGrows = b.BatchGrows
		s.stats.BatchShrinks = b.BatchShrinks
	}
	s.stats.Shards = shards
	s.stats.ShardInstances = make([]uint64, shards)
	s.stats.BatchTarget = policy.target
	if cfg.Trace != nil {
		s.sink = &lockedSink{dst: cfg.Trace}
	}
	s.shards = make([]shardState, shards)
	for i := range s.shards {
		s.shards[i].run = substrate.Open(i)
		if s.shards[i].run == nil {
			s.shards[i].run = cfg.Run
		}
		if s.sink != nil && cfg.TraceInstances {
			s.shards[i].buf = trace.NewBuffer()
		}
	}
	s.exec = runner.NewShards(shards, s.runOnShard, s.deliver)
	go s.batcher()
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				s.Close()
			case <-s.draining:
			}
		}()
	}
	return s, nil
}

// Submit admits one value. It never blocks: when the admission queue is at
// capacity the submission is rejected with ErrQueueFull, and once the
// service drains with ErrDraining — backpressure is explicit so callers can
// choose to retry, shed or block. On success the returned channel receives
// exactly one Result when the value's instance is delivered.
func (s *Service) Submit(v ident.Value) (<-chan Result, error) {
	select {
	case <-s.draining:
		s.reject(true)
		return nil, ErrDraining
	default:
	}
	req := &request{value: v, enq: time.Now(), ch: make(chan Result, 1)}
	select {
	case s.queue <- req:
	default:
		s.reject(false)
		return nil, ErrQueueFull
	}
	depth := len(s.queue)
	s.mu.Lock()
	s.stats.Submitted++
	if depth > s.stats.QueueHighWater {
		s.stats.QueueHighWater = depth
	}
	s.mu.Unlock()
	if s.sink != nil {
		s.sink.Emit(trace.Event{Kind: trace.KindEnqueue, From: ident.None, To: ident.None, Sigs: depth, Value: v})
	}
	return req.ch, nil
}

// SubmitWait submits v and blocks until its Result (or ctx is done, or the
// submission is rejected).
func (s *Service) SubmitWait(ctx context.Context, v ident.Value) (Result, error) {
	ch, err := s.Submit(v)
	if err != nil {
		return Result{}, err
	}
	select {
	case res := <-ch:
		return res, res.Err
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
}

func (s *Service) reject(draining bool) {
	depth := len(s.queue)
	s.mu.Lock()
	if draining {
		s.stats.RejectedDraining++
	} else {
		s.stats.RejectedFull++
	}
	s.mu.Unlock()
	if s.sink != nil {
		s.sink.Emit(trace.Event{Kind: trace.KindReject, From: ident.None, To: ident.None, Sigs: depth, Flag: draining})
	}
}

// Stats returns a snapshot of the counters.
func (s *Service) Stats() Stats {
	var out Stats
	s.StatsInto(&out)
	return out
}

// StatsInto snapshots the counters into out, reusing out.ShardInstances'
// storage: after the first call a fixed holder makes every subsequent
// snapshot allocation-free — the metrics scrape path's contract. The whole
// snapshot is taken under the service's single stats mutex, so a scrape
// observes a consistent cut (e.g. Instances == sum of ShardInstances once
// quiescent), exactly what an in-process Stats caller sees.
func (s *Service) StatsInto(out *Stats) {
	depth := len(s.queue)
	s.mu.Lock()
	s.snapshotLocked(out)
	s.mu.Unlock()
	out.QueueDepth = depth
}

// snapshotLocked copies the counters into out, reusing out.ShardInstances'
// storage. Callers hold s.mu — the checkpoint paths use it so a checkpoint's
// watermark and stats come from one critical section and can never disagree.
// QueueDepth (a channel read, safe anywhere) is the caller's to fill.
func (s *Service) snapshotLocked(out *Stats) {
	shardInstances := out.ShardInstances
	*out = s.stats
	out.ShardInstances = append(shardInstances[:0], s.stats.ShardInstances...)
}

// Close drains the service: admission stops (Submit returns ErrDraining),
// every already-admitted value is still batched and dispatched, and Close
// returns once all instances have been delivered. When a Journal is
// configured, a checkpoint (admission watermark + final stats) is written
// after the last delivery, so a clean shutdown leaves nothing to replay; a
// checkpoint failure is swallowed here — the journal counts it
// (journal.Stats.CheckpointFailures), the trace records it (the checkpoint
// event's Flag), and the journal's own Close reports it — because the drain
// must still complete.
// Idempotent and safe to call concurrently; also triggered by cancellation
// of New's context.
func (s *Service) Close() {
	s.drainOnce.Do(func() { close(s.draining) })
	<-s.batcherDone
	s.exec.Close()
	if s.cfg.Journal != nil {
		s.checkpointOnce.Do(func() {
			// One critical section for the whole checkpoint payload: the
			// watermark and the stats snapshot describe the same instant, so
			// a checkpoint can never pair a watermark with counters from a
			// different cut (the drain is quiescent here, but the invariant
			// is what recovery's BaseStats arithmetic relies on).
			var snap Stats
			depth := len(s.queue)
			s.mu.Lock()
			watermark := s.nextInstance
			s.snapshotLocked(&snap)
			s.mu.Unlock()
			snap.QueueDepth = depth
			// The drain must complete even if the checkpoint write fails; the
			// journal counts the failure (Stats.CheckpointFailures) and
			// surfaces it on its own Close, and the trace event's Flag
			// records the outcome.
			err := s.cfg.Journal.Checkpoint(watermark, snap)
			if s.sink != nil {
				s.sink.Emit(trace.Event{
					Kind: trace.KindCheckpoint, From: ident.None, To: ident.None,
					Signers: int(watermark), Sigs: int(snap.Instances), Flag: err == nil,
				})
			}
		})
	}
	s.releaseOnce.Do(func() {
		for i := range s.shards {
			s.substrate.Close(i)
		}
	})
}

// batcher is the single sequencer goroutine that forms batches and
// dispatches instances; being alone on this path makes instance ids (and
// therefore seeds) deterministic in admission order, and makes the adaptive
// controller's reads of the queue depth consistent.
func (s *Service) batcher() {
	defer close(s.batcherDone)
	for {
		var first *request
		select {
		case first = <-s.queue:
		case <-s.draining:
			// Drain: flush whatever is still queued, then stop.
			for {
				select {
				case req := <-s.queue:
					s.dispatch(s.fill(req, false), false)
				default:
					return
				}
			}
		}
		s.dispatch(s.fill(first, true), false)
	}
}

// fill grows a batch starting at first up to the controller's current
// target, lingering for stragglers when allowed and configured.
func (s *Service) fill(first *request, mayLinger bool) []*request {
	size, linger := s.plan(len(s.queue))
	batch := []*request{first}
	if size <= 1 {
		return batch
	}
	var lingerC <-chan time.Time
	if mayLinger && linger > 0 {
		timer := time.NewTimer(linger)
		defer timer.Stop()
		lingerC = timer.C
	}
	for len(batch) < size {
		if lingerC == nil {
			// No linger: take only what is already queued.
			select {
			case req := <-s.queue:
				batch = append(batch, req)
			default:
				return batch
			}
			continue
		}
		select {
		case req := <-s.queue:
			batch = append(batch, req)
		case <-lingerC:
			return batch
		case <-s.draining:
			return batch
		}
	}
	return batch
}

// plan consults the batch controller with the observed queue depth, records
// any target move in the stats, and emits it as a batch-adapt event.
func (s *Service) plan(queued int) (size int, linger time.Duration) {
	dec := s.policy.plan(queued)
	if dec.moved {
		s.mu.Lock()
		s.stats.BatchTarget = dec.size
		if dec.grew {
			s.stats.BatchGrows++
		} else {
			s.stats.BatchShrinks++
		}
		s.mu.Unlock()
		if s.sink != nil {
			s.sink.Emit(trace.Event{
				Kind: trace.KindBatchAdapt, From: ident.None, To: ident.None,
				Signers: dec.prev, Sigs: dec.size, Bytes: queued, Flag: dec.grew,
			})
		}
	}
	return dec.size, dec.linger
}

// dispatch assigns the next instance id, resolves the template, journals the
// admission and hands the instance to the shard pool; Submit blocks when
// every shard is busy, which is what lets the admission queue fill and
// reject — bounded end to end. The journal write happens before exec.Submit:
// an instance the journal did not capture never runs, so a crash at any
// point either lost the admission before it executed (the client saw no
// result) or journaled it (recovery replays it).
func (s *Service) dispatch(batch []*request, replay bool) uint64 {
	s.mu.Lock()
	id := s.nextInstance
	s.nextInstance++
	s.mu.Unlock()

	values := make([]ident.Value, len(batch))
	for i, req := range batch {
		values[i] = req.value
	}
	packed := PackValues(values)

	cfg := s.cfg.Template
	cfg.Value = packed
	cfg.Seed = s.cfg.Template.Seed + int64(id)
	cfg.Trace = nil

	inst := Instance{ID: id, Config: cfg, Values: values}
	if s.cfg.Journal != nil {
		if err := s.cfg.Journal.Admit(inst); err != nil {
			s.fail(batch, inst, err)
			return id
		}
	}
	if _, err := s.exec.Submit(&dispatched{inst: inst, reqs: batch, replay: replay}); err != nil {
		// Only possible after exec.Close, which Close orders strictly after
		// the batcher exits — keep the requests from hanging anyway.
		s.fail(batch, inst, err)
	}
	return id
}

// Replay re-submits one journaled admission — the batch's original values,
// in their original order — through the normal dispatch path: the instance
// gets the next sequential id, is journaled again (which is what makes
// checkpoint pruning and a second crash during recovery safe), runs on a
// shard and is delivered in order. Because recovery seeds FirstInstance with
// the journal watermark and replays pending admissions in id order, each
// replayed instance reruns under its original id and seed, byte-identically.
//
// Replay must only be called before live Submit traffic starts (the journal
// recovery path in cmd/baserve runs it before the listener opens): it shares
// the single-producer dispatch path with the sequencer, which is idle while
// the admission queue is empty. One Result per value is delivered on the
// returned channel (buffered to the batch size).
func (s *Service) Replay(values []ident.Value) (<-chan Result, error) {
	select {
	case <-s.draining:
		return nil, ErrDraining
	default:
	}
	if len(values) == 0 {
		return nil, errors.New("service: replay of an empty batch")
	}
	ch := make(chan Result, len(values))
	batch := make([]*request, len(values))
	now := time.Now()
	for i, v := range values {
		batch[i] = &request{value: v, enq: now, ch: ch}
	}
	if s.cfg.BaseStats == nil {
		// Submitted counts admissions. When recovering from a checkpointed
		// journal, BaseStats already includes the pending values' original
		// admissions (checkpoints are cut at delivery, after the submit that
		// queued each pending value), so re-counting them here would double
		// them. Without a checkpoint there is no carried count, and the
		// replayed values are this process's only record of those admissions.
		s.mu.Lock()
		s.stats.Submitted += uint64(len(values))
		s.mu.Unlock()
	}
	s.dispatch(batch, true)
	return ch, nil
}

// runOnShard executes one instance on its shard's substrate handle and
// packages the outcome; it runs on the shard's worker goroutine, so the
// shard state is touched without locking.
func (s *Service) runOnShard(shard int, d *dispatched) *completed {
	st := &s.shards[shard]
	cfg := d.inst.Config
	if st.buf != nil {
		cfg.Trace = st.buf
	}
	res := &InstanceResult{Instance: d.inst, Shard: shard}
	start := time.Now()
	out, err := st.run(s.ctx, cfg)
	c := &completed{inst: res, reqs: d.reqs, runDur: time.Since(start), replay: d.replay}
	if st.buf != nil {
		// Snapshot the shard buffer: delivery may happen after this shard
		// has moved on to its next instance and reset the buffer.
		c.events = append([]trace.Event(nil), st.buf.Events()...)
		st.buf.Reset()
	}
	if err != nil {
		res.Err = err
		return c
	}
	res.Decisions = out.Decisions
	res.Report = out.Report
	res.Faulty = out.Faulty
	decided, err := core.CheckDecisions(out.Decisions, out.Faulty, cfg.Transmitter, cfg.Value)
	if err != nil {
		res.Err = err
		return c
	}
	res.Decided = decided
	res.Committed = decided == cfg.Value
	return c
}

// deliver runs in strict instance-id order (runner.Shards' contract): it
// folds the outcome into the stats, feeds the controller's latency signal,
// emits the instance-scoped trace (start, internals, done) and resolves the
// batch's futures. Everything emitted here is deterministic for a given
// template and admission order, whatever the shard count.
func (s *Service) deliver(_ uint64, c *completed) {
	inst := c.inst
	now := time.Now()
	s.policy.observe(c.runDur)

	depth := len(s.queue)
	s.mu.Lock()
	// Delivery is strictly id-ordered, so after this instance the lowest
	// undelivered id is exactly inst.ID+1 — the delivered watermark live
	// compaction checkpoints at. The batch-failure path (fail) never
	// advances it: a journaled admission that was not delivered must stay
	// above any checkpoint.
	s.delivered = inst.ID + 1
	s.stats.Instances++
	if inst.Shard >= 0 && inst.Shard < len(s.stats.ShardInstances) {
		s.stats.ShardInstances[inst.Shard]++
	}
	if inst.Err != nil {
		s.stats.InstancesFailed++
	} else {
		s.stats.MessagesCorrect += uint64(inst.Report.MessagesCorrect)
		s.stats.SignaturesCorrect += uint64(inst.Report.SignaturesCorrect)
		s.stats.BytesCorrect += uint64(inst.Report.BytesCorrect)
		if inst.Committed {
			s.stats.ValuesDecided += uint64(len(inst.Values))
		}
	}
	for _, req := range c.reqs {
		lat := now.Sub(req.enq)
		s.stats.TotalLatency += lat
		if lat > s.stats.MaxLatency {
			s.stats.MaxLatency = lat
		}
	}
	watermark := s.delivered
	if s.compactor != nil {
		// Snapshot in the same critical section as the watermark, into the
		// delivery goroutine's scratch holder (deliver never overlaps), so
		// the checkpoint write below happens outside the stats mutex.
		s.snapshotLocked(&s.compactStats)
	}
	s.mu.Unlock()

	if s.sink != nil {
		s.sink.Emit(trace.Event{
			Kind: trace.KindInstanceStart, From: ident.None, To: ident.None,
			Signers: int(inst.ID), Sigs: len(inst.Values), Value: inst.Config.Value,
		})
		for _, e := range c.events {
			s.sink.Emit(e)
		}
		s.sink.Emit(trace.Event{
			Kind: trace.KindInstanceDone, From: ident.None, To: ident.None,
			Signers: int(inst.ID), Sigs: len(inst.Values),
			Bytes: inst.Report.MessagesCorrect, Value: inst.Decided, Flag: inst.Err == nil,
		})
		if c.replay {
			s.sink.Emit(trace.Event{
				Kind: trace.KindReplay, From: ident.None, To: ident.None,
				Signers: int(inst.ID), Sigs: len(inst.Values), Flag: inst.Err == nil,
			})
		}
	}

	for _, req := range c.reqs {
		res := Result{
			Value:     req.value,
			Decided:   inst.Decided,
			Committed: inst.Committed,
			Instance:  inst,
			Latency:   now.Sub(req.enq),
			Err:       inst.Err,
		}
		if res.Err == nil && !res.Committed {
			res.Err = fmt.Errorf("%w: decided %v, batch packed %v", ErrNotCommitted, inst.Decided, inst.Config.Value)
		}
		req.ch <- res
	}

	// Live compaction, after the batch's futures resolve so a checkpoint
	// fsync never adds to this batch's latency. The journal decides dueness
	// (record budget / timer); a checkpoint at the delivered watermark can
	// prune every segment whose admissions are all delivered. Checkpoints
	// driven only by deliveries is sufficient: the watermark cannot advance
	// without one, and a checkpoint without watermark progress frees nothing.
	if s.compactor != nil {
		s.compactStats.QueueDepth = depth
		if wrote, err := s.compactor.MaybeCheckpoint(watermark, s.compactStats); wrote && s.sink != nil {
			s.sink.Emit(trace.Event{
				Kind: trace.KindCheckpoint, From: ident.None, To: ident.None,
				Signers: int(watermark), Sigs: int(s.compactStats.Instances), Flag: err == nil,
			})
		}
	}
}

// fail resolves a batch whose instance could not even be scheduled.
func (s *Service) fail(batch []*request, inst Instance, err error) {
	res := &InstanceResult{Instance: inst, Shard: -1, Err: err}
	now := time.Now()
	s.mu.Lock()
	s.stats.Instances++
	s.stats.InstancesFailed++
	s.mu.Unlock()
	for _, req := range batch {
		req.ch <- Result{Value: req.value, Instance: res, Latency: now.Sub(req.enq), Err: err}
	}
}

// lockedSink serializes emissions from concurrent submitters and shard
// workers onto one underlying sink.
type lockedSink struct {
	mu  sync.Mutex
	dst trace.Sink
}

func (l *lockedSink) Emit(e trace.Event) {
	l.mu.Lock()
	l.dst.Emit(e)
	l.mu.Unlock()
}
