package service_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/protocols/alg1"
	"byzex/internal/service"
)

// BenchmarkServiceThroughput measures decided values per second through the
// full serving pipeline (admission queue → batcher → bounded executor) on
// the in-memory substrate, and reports the amortized correct-sender message
// and signature cost per decided value. Batching is the lever the paper's
// per-instance lower bounds leave open: Ω(nt) signatures and Ω(n+t²)
// messages are paid per agreement instance, so k values per instance divide
// the constant by k — visible here as msgs/value falling with batch size.
func BenchmarkServiceThroughput(b *testing.B) {
	for _, batch := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			ctx := context.Background()
			cfg := service.Config{
				Template:   core.Config{Protocol: alg1.MultiProtocol{}, N: 7, T: 3, Seed: 99},
				BatchSize:  batch,
				QueueDepth: 1024,
			}
			if batch > 1 {
				cfg.Linger = 100 * time.Microsecond
			}
			svc, err := service.New(ctx, cfg)
			if err != nil {
				b.Fatal(err)
			}
			// A closed loop needs enough outstanding submitters to fill a
			// batch regardless of GOMAXPROCS (the loop blocks in SubmitWait,
			// so the goroutines cost scheduling, not CPU).
			b.SetParallelism(2 * 16)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					v := ident.Value(i % 251)
					i++
					for {
						_, err := svc.SubmitWait(ctx, v)
						if errors.Is(err, service.ErrQueueFull) {
							time.Sleep(50 * time.Microsecond)
							continue
						}
						if err != nil {
							b.Error(err)
						}
						break
					}
				}
			})
			b.StopTimer()
			svc.Close()
			st := svc.Stats()
			if st.ValuesDecided < uint64(b.N) {
				b.Fatalf("decided %d of %d values", st.ValuesDecided, b.N)
			}
			b.ReportMetric(st.AmortizedMessagesPerValue(), "msgs/value")
			b.ReportMetric(st.AmortizedSignaturesPerValue(), "sigs/value")
			b.ReportMetric(float64(st.ValuesDecided)/float64(st.Instances), "values/instance")
		})
	}
}
