package service_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/protocols/alg1"
	"byzex/internal/service"
	"byzex/internal/transport"
)

// BenchmarkServiceThroughput measures decided values per second through the
// full serving pipeline (admission queue → batcher → bounded executor) on
// the in-memory substrate, and reports the amortized correct-sender message
// and signature cost per decided value. Batching is the lever the paper's
// per-instance lower bounds leave open: Ω(nt) signatures and Ω(n+t²)
// messages are paid per agreement instance, so k values per instance divide
// the constant by k — visible here as msgs/value falling with batch size.
func BenchmarkServiceThroughput(b *testing.B) {
	for _, batch := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			ctx := context.Background()
			cfg := service.Config{
				Template:   core.Config{Protocol: alg1.MultiProtocol{}, N: 7, T: 3, Seed: 99},
				BatchSize:  batch,
				QueueDepth: 1024,
			}
			if batch > 1 {
				cfg.Linger = 100 * time.Microsecond
			}
			svc, err := service.New(ctx, cfg)
			if err != nil {
				b.Fatal(err)
			}
			// A closed loop needs enough outstanding submitters to fill a
			// batch regardless of GOMAXPROCS (the loop blocks in SubmitWait,
			// so the goroutines cost scheduling, not CPU).
			b.SetParallelism(2 * 16)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					v := ident.Value(i % 251)
					i++
					for {
						_, err := svc.SubmitWait(ctx, v)
						if errors.Is(err, service.ErrQueueFull) {
							time.Sleep(50 * time.Microsecond)
							continue
						}
						if err != nil {
							b.Error(err)
						}
						break
					}
				}
			})
			b.StopTimer()
			svc.Close()
			st := svc.Stats()
			if st.ValuesDecided < uint64(b.N) {
				b.Fatalf("decided %d of %d values", st.ValuesDecided, b.N)
			}
			b.ReportMetric(st.AmortizedMessagesPerValue(), "msgs/value")
			b.ReportMetric(st.AmortizedSignaturesPerValue(), "sigs/value")
			b.ReportMetric(float64(st.ValuesDecided)/float64(st.Instances), "values/instance")
		})
	}
}

// latencyModeledRun wraps the in-memory substrate with a fixed per-instance
// delay, modeling the regime the TCP mesh actually serves in: instance time
// dominated by network round trips (phases × RTT), not local CPU. In that
// regime sharding overlaps the waits, so throughput scales with the shard
// count even on a single core — which is the scaling BenchmarkServiceSharded
// measures. (A pure-CPU instance on one core cannot scale by sharding; the
// fixed/1-shard rows double as that baseline.)
func latencyModeledRun(d time.Duration) service.RunFunc {
	return func(ctx context.Context, cfg core.Config) (service.Outcome, error) {
		timer := time.NewTimer(d)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return service.Outcome{}, ctx.Err()
		}
		return service.RunSim(ctx, cfg)
	}
}

// BenchmarkServiceSharded sweeps shard count × batching policy over the
// latency-modeled substrate: values/s should rise roughly linearly with
// shards (the tentpole's ≥2x-at-4-shards criterion), and the adaptive
// policy should cut msgs/value versus fixed k=1 under the same backlog by
// packing batches once the queue builds. Emitted as BENCH_004.json by
// `make bench-service`.
// BenchmarkServiceWarmTCP sweeps shard count over the real warm-TCP
// substrate: every shard owns one long-lived mesh, so the per-instance cost
// is frame traffic only. Net.LinkDelay models WAN one-way latency (loopback
// is unrealistically fast), putting instances in the regime a deployment is
// in — wall clock dominated by network waits, which sharding overlaps.
// values/s is the headline metric for BENCH_005 (`make bench-transport`),
// expected to rise monotonically from 1 to 8 shards.
func BenchmarkServiceWarmTCP(b *testing.B) {
	netCfg := transport.Net{PhaseTimeout: 10 * time.Second, LinkDelay: 2 * time.Millisecond}
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			ctx := context.Background()
			tmpl := core.Config{Protocol: alg1.MultiProtocol{}, N: 7, T: 3, Seed: 99}
			pool := service.NewWarmTCP(tmpl.N, netCfg)
			cfg := service.Config{
				Template:   tmpl,
				Shards:     shards,
				QueueDepth: 1024,
				BatchSize:  1,
				Substrate:  pool,
			}
			svc, err := service.New(ctx, cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.SetParallelism(4 * 8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					v := ident.Value(i % 251)
					i++
					for {
						_, err := svc.SubmitWait(ctx, v)
						if errors.Is(err, service.ErrQueueFull) {
							time.Sleep(50 * time.Microsecond)
							continue
						}
						if err != nil {
							b.Error(err)
						}
						break
					}
				}
			})
			b.StopTimer()
			svc.Close()
			st := svc.Stats()
			if st.ValuesDecided < uint64(b.N) {
				b.Fatalf("decided %d of %d values", st.ValuesDecided, b.N)
			}
			if elapsed := b.Elapsed(); elapsed > 0 {
				b.ReportMetric(float64(st.ValuesDecided)/elapsed.Seconds(), "values/s")
			}
			b.ReportMetric(st.AmortizedMessagesPerValue(), "msgs/value")
		})
	}
}

func BenchmarkServiceSharded(b *testing.B) {
	const instLatency = 2 * time.Millisecond
	type policy struct {
		name string
		cfg  func(*service.Config)
	}
	policies := []policy{
		{"fixed1", func(c *service.Config) { c.BatchSize = 1 }},
		{"adaptive", func(c *service.Config) { c.BatchMin, c.BatchMax = 1, 16 }},
	}
	for _, shards := range []int{1, 2, 4, 8} {
		for _, pol := range policies {
			b.Run(fmt.Sprintf("shards=%d/%s", shards, pol.name), func(b *testing.B) {
				ctx := context.Background()
				cfg := service.Config{
					Template:   core.Config{Protocol: alg1.MultiProtocol{}, N: 7, T: 3, Seed: 99},
					Run:        latencyModeledRun(instLatency),
					Shards:     shards,
					QueueDepth: 1024,
				}
				pol.cfg(&cfg)
				svc, err := service.New(ctx, cfg)
				if err != nil {
					b.Fatal(err)
				}
				// Enough closed-loop submitters to keep every shard busy and
				// a backlog queued (so the adaptive controller sees pressure).
				b.SetParallelism(4 * 8)
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					i := 0
					for pb.Next() {
						v := ident.Value(i % 251)
						i++
						for {
							_, err := svc.SubmitWait(ctx, v)
							if errors.Is(err, service.ErrQueueFull) {
								time.Sleep(50 * time.Microsecond)
								continue
							}
							if err != nil {
								b.Error(err)
							}
							break
						}
					}
				})
				b.StopTimer()
				svc.Close()
				st := svc.Stats()
				if st.ValuesDecided < uint64(b.N) {
					b.Fatalf("decided %d of %d values", st.ValuesDecided, b.N)
				}
				elapsed := b.Elapsed()
				if elapsed > 0 {
					b.ReportMetric(float64(st.ValuesDecided)/elapsed.Seconds(), "values/s")
				}
				b.ReportMetric(st.AmortizedMessagesPerValue(), "msgs/value")
				b.ReportMetric(float64(st.ValuesDecided)/float64(st.Instances), "values/instance")
				b.ReportMetric(float64(st.BatchGrows), "grows")
			})
		}
	}
}

// BenchmarkServiceOpenLoop measures the serving pipeline under open-loop
// (Poisson) load over the real wire: b.N arrivals at a fixed rate fan out
// over a connection pool, rejections shed. The headline metrics are the
// coordinated-omission-free latency percentiles — measured from each
// arrival's scheduled time — and the shed fraction, the numbers `make slo`
// gates on. Archived as BENCH_006.json by `make bench-ops`.
func BenchmarkServiceOpenLoop(b *testing.B) {
	const rate = 2000.0
	ctx := context.Background()
	svc, err := service.New(ctx, service.Config{
		Template:   core.Config{Protocol: alg1.MultiProtocol{}, N: 7, T: 3, Seed: 99},
		Shards:     4,
		QueueDepth: 1024,
		BatchMin:   1,
		BatchMax:   16,
	})
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	serveCtx, stopServe := context.WithCancel(ctx)
	served := make(chan error, 1)
	go func() { served <- service.Serve(serveCtx, ln, svc) }()
	defer func() {
		stopServe()
		<-served
		svc.Close()
	}()

	// Scale the arrival window so the schedule offers roughly b.N arrivals
	// at the fixed rate (an open loop is defined by rate, not count).
	duration := time.Duration(float64(b.N) / rate * float64(time.Second))
	if duration < 50*time.Millisecond {
		duration = 50 * time.Millisecond
	}
	b.ResetTimer()
	stats, err := service.RunOpenLoad(ctx, service.OpenLoadConfig{
		Addr:     ln.Addr().String(),
		Conns:    32,
		Rate:     rate,
		Duration: duration,
		Seed:     99,
		ValueFor: func(i int) ident.Value { return ident.Value(i % 251) },
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if stats.Submitted == 0 {
		b.Fatal("nothing submitted")
	}
	b.ReportMetric(float64(stats.Offered)/duration.Seconds(), "offered/s")
	b.ReportMetric(stats.Throughput(), "values/s")
	b.ReportMetric(float64(stats.Percentile(50))/1e6, "p50-ms")
	b.ReportMetric(float64(stats.Percentile(99))/1e6, "p99-ms")
	b.ReportMetric(float64(stats.Rejected)/float64(stats.Offered), "shed-frac")
}
