package adversary

import (
	"fmt"
	mrand "math/rand"

	"byzex/internal/ident"
	"byzex/internal/protocol"
	"byzex/internal/sig"
	"byzex/internal/sim"
)

// State is the shared collusion state for one run's faulty coalition.
type State struct {
	// Faulty is the corrupted set.
	Faulty ident.Set
	// Signers holds the signing handles of every corrupted processor.
	Signers map[ident.ProcID]sig.Signer
	// Rng is the adversary's private randomness (deterministic per seed).
	Rng *mrand.Rand
	// Scratch is free-form shared memory for coordinated strategies.
	Scratch map[string]interface{}
}

// NewState builds collusion state for the given faulty set, collecting the
// corrupted processors' signers from the scheme.
func NewState(faulty ident.Set, scheme sig.Scheme, seed int64) (*State, error) {
	st := &State{
		Faulty:  faulty.Clone(),
		Signers: make(map[ident.ProcID]sig.Signer, faulty.Len()),
		Rng:     mrand.New(mrand.NewSource(seed)),
		Scratch: make(map[string]interface{}),
	}
	for id := range faulty {
		s, err := scheme.Signer(id)
		if err != nil {
			return nil, fmt.Errorf("adversary: collecting signer for %v: %w", id, err)
		}
		st.Signers[id] = s
	}
	return st, nil
}

// Env gives a strategy what it needs to build Byzantine nodes: the protocol
// under attack (so wrappers can embed correct inner nodes) and the shared
// collusion state.
type Env struct {
	Protocol protocol.Protocol
	State    *State
}

// Adversary selects corruptions and builds Byzantine nodes.
type Adversary interface {
	// Name identifies the strategy in reports.
	Name() string
	// Corrupt returns the set of processors to corrupt for an (n, t) run.
	// Implementations must return at most t identities.
	Corrupt(n, t int, transmitter ident.ProcID, rng *mrand.Rand) ident.Set
	// NewNode builds the Byzantine state machine for one corrupted
	// processor.
	NewNode(cfg protocol.NodeConfig, env *Env) (sim.Node, error)
}

// ---------------------------------------------------------------------------
// Silent: corrupted processors never send anything (crash-from-start).

// Silent corrupts up to t non-transmitter processors that then never send.
type Silent struct{}

var _ Adversary = Silent{}

// Name implements Adversary.
func (Silent) Name() string { return "silent" }

// Corrupt implements Adversary: the last t processors (never the
// transmitter) go silent.
func (Silent) Corrupt(n, t int, transmitter ident.ProcID, _ *mrand.Rand) ident.Set {
	return lastNonTransmitter(n, t, transmitter)
}

// NewNode implements Adversary.
func (Silent) NewNode(protocol.NodeConfig, *Env) (sim.Node, error) {
	return &silentNode{}, nil
}

type silentNode struct{}

func (*silentNode) Step(*sim.Context, []sim.Envelope) error { return nil }

func (*silentNode) Decide() (ident.Value, bool) { return 0, false }

// ---------------------------------------------------------------------------
// Crash: behave correctly, then stop forever after a given phase.

// Crash runs the real protocol until CrashAfter, then goes silent. With
// CrashAfter=0 the victims are silent from the start but still *receive*.
type Crash struct {
	// CrashAfter is the last phase during which victims behave correctly.
	CrashAfter int
}

var _ Adversary = Crash{}

// Name implements Adversary.
func (c Crash) Name() string { return fmt.Sprintf("crash@%d", c.CrashAfter) }

// Corrupt implements Adversary.
func (Crash) Corrupt(n, t int, transmitter ident.ProcID, _ *mrand.Rand) ident.Set {
	return lastNonTransmitter(n, t, transmitter)
}

// NewNode implements Adversary.
func (c Crash) NewNode(cfg protocol.NodeConfig, env *Env) (sim.Node, error) {
	inner, err := env.Protocol.NewNode(cfg)
	if err != nil {
		return nil, err
	}
	return &crashNode{inner: inner, after: c.CrashAfter}, nil
}

type crashNode struct {
	inner sim.Node
	after int
}

func (c *crashNode) Step(ctx *sim.Context, inbox []sim.Envelope) error {
	if ctx.Phase() > c.after {
		return nil
	}
	return c.inner.Step(ctx, inbox)
}

func (c *crashNode) Decide() (ident.Value, bool) { return 0, false }

// ---------------------------------------------------------------------------
// SplitBrain: the corrupted transmitter (and optionally co-conspirators)
// runs two correct inner nodes, one initialized with value 0 and one with
// value 1, and routes their traffic so processors below the split point see
// the 0-execution and the rest see the 1-execution. This is the classical
// equivocation that Theorem 1's proof formalizes.

// SplitBrain corrupts the transmitter only.
type SplitBrain struct {
	// LowValue/HighValue are the two personalities' initial values.
	LowValue, HighValue ident.Value
	// SplitAt: processors with id < SplitAt see the LowValue personality.
	SplitAt ident.ProcID
}

var _ Adversary = SplitBrain{}

// Name implements Adversary.
func (s SplitBrain) Name() string { return "split-brain" }

// Corrupt implements Adversary: only the transmitter.
func (SplitBrain) Corrupt(_, t int, transmitter ident.ProcID, _ *mrand.Rand) ident.Set {
	if t < 1 {
		return make(ident.Set)
	}
	return ident.NewSet(transmitter)
}

// NewNode implements Adversary.
func (s SplitBrain) NewNode(cfg protocol.NodeConfig, env *Env) (sim.Node, error) {
	lowCfg, highCfg := cfg, cfg
	lowCfg.Value = s.LowValue
	highCfg.Value = s.HighValue
	low, err := env.Protocol.NewNode(lowCfg)
	if err != nil {
		return nil, err
	}
	high, err := env.Protocol.NewNode(highCfg)
	if err != nil {
		return nil, err
	}
	return &splitBrainNode{low: low, high: high, splitAt: s.SplitAt}, nil
}

type splitBrainNode struct {
	low, high sim.Node
	splitAt   ident.ProcID
}

func (s *splitBrainNode) Step(ctx *sim.Context, inbox []sim.Envelope) error {
	// Run both personalities on the same inbox; filter each one's sends so
	// that only its own audience receives them.
	lowCtx := ctx.WithSendFilter(func(to ident.ProcID) bool { return to < s.splitAt })
	if err := s.low.Step(lowCtx, inbox); err != nil {
		return fmt.Errorf("split-brain low personality: %w", err)
	}
	highCtx := ctx.WithSendFilter(func(to ident.ProcID) bool { return to >= s.splitAt })
	if err := s.high.Step(highCtx, inbox); err != nil {
		return fmt.Errorf("split-brain high personality: %w", err)
	}
	return nil
}

func (s *splitBrainNode) Decide() (ident.Value, bool) { return 0, false }

// ---------------------------------------------------------------------------
// MultiFaced: the k-way generalization of SplitBrain for multi-valued
// domains — the corrupted transmitter maintains one correct personality per
// value and shows each personality to its own slice of the audience.

// MultiFaced corrupts the transmitter and equivocates between len(Values)
// personalities.
type MultiFaced struct {
	// Values are the personalities' initial values; audience slice i (of
	// n/len(Values) processors, the last slice taking the remainder) sees
	// personality i.
	Values []ident.Value
}

var _ Adversary = MultiFaced{}

// Name implements Adversary.
func (m MultiFaced) Name() string { return fmt.Sprintf("multi-faced(%d)", len(m.Values)) }

// Corrupt implements Adversary: only the transmitter.
func (MultiFaced) Corrupt(_, t int, transmitter ident.ProcID, _ *mrand.Rand) ident.Set {
	if t < 1 {
		return make(ident.Set)
	}
	return ident.NewSet(transmitter)
}

// NewNode implements Adversary.
func (m MultiFaced) NewNode(cfg protocol.NodeConfig, env *Env) (sim.Node, error) {
	if len(m.Values) == 0 {
		return nil, fmt.Errorf("adversary: multi-faced needs at least one value")
	}
	node := &multiFacedNode{k: len(m.Values), n: cfg.N}
	for _, v := range m.Values {
		pcfg := cfg
		pcfg.Value = v
		inner, err := env.Protocol.NewNode(pcfg)
		if err != nil {
			return nil, err
		}
		node.faces = append(node.faces, inner)
	}
	return node, nil
}

type multiFacedNode struct {
	faces []sim.Node
	k, n  int
}

func (m *multiFacedNode) Step(ctx *sim.Context, inbox []sim.Envelope) error {
	slice := (m.n + m.k - 1) / m.k
	for i, face := range m.faces {
		lo := ident.ProcID(i * slice)
		hi := ident.ProcID((i + 1) * slice)
		last := i == m.k-1
		fctx := ctx.WithSendFilter(func(to ident.ProcID) bool {
			return to >= lo && (last || to < hi)
		})
		if err := face.Step(fctx, inbox); err != nil {
			return fmt.Errorf("multi-faced personality %d: %w", i, err)
		}
	}
	return nil
}

func (m *multiFacedNode) Decide() (ident.Value, bool) { return 0, false }

// ---------------------------------------------------------------------------
// StarveB: the Theorem 2 construction. The corrupted set B behaves like
// correct processors except that each member (i) never sends to other B
// members and (ii) ignores the first IgnoreFirst messages it receives from
// outside B.

// StarveB corrupts an explicit set B with the starvation behaviour.
type StarveB struct {
	// B is the corrupted set (size ⌊1+t/2⌋ in the proof).
	B ident.Set
	// IgnoreFirst is how many incoming messages from outside B each member
	// discards (⌈t/2⌉ in the proof).
	IgnoreFirst int
}

var _ Adversary = StarveB{}

// Name implements Adversary.
func (s StarveB) Name() string { return "starve-b" }

// Corrupt implements Adversary.
func (s StarveB) Corrupt(int, int, ident.ProcID, *mrand.Rand) ident.Set { return s.B.Clone() }

// NewNode implements Adversary.
func (s StarveB) NewNode(cfg protocol.NodeConfig, env *Env) (sim.Node, error) {
	inner, err := env.Protocol.NewNode(cfg)
	if err != nil {
		return nil, err
	}
	return &starveNode{inner: inner, b: s.B, remaining: s.IgnoreFirst}, nil
}

type starveNode struct {
	inner     sim.Node
	b         ident.Set
	remaining int
}

func (s *starveNode) Step(ctx *sim.Context, inbox []sim.Envelope) error {
	// Discard the first `remaining` messages from outside B; also discard
	// everything from inside B (B members send nothing to each other in the
	// construction, but a defensive filter keeps the behaviour exact even
	// if another strategy shares the run).
	kept := inbox[:0:0]
	for _, e := range inbox {
		if s.b.Has(e.From) {
			continue
		}
		if s.remaining > 0 {
			s.remaining--
			continue
		}
		kept = append(kept, e)
	}
	fctx := ctx.WithSendFilter(func(to ident.ProcID) bool { return !s.b.Has(to) })
	return s.inner.Step(fctx, kept)
}

func (s *starveNode) Decide() (ident.Value, bool) { return s.inner.Decide() }

// ---------------------------------------------------------------------------
// Garbage: stress strategy that sprays malformed payloads and forged
// signature material at random recipients every phase. Protocols must
// discard all of it; agreement must still hold.

// Garbage corrupts up to t processors (never the transmitter).
type Garbage struct {
	// PerPhase is how many junk messages each corrupted node sends per
	// phase (default 3 when zero).
	PerPhase int
}

var _ Adversary = Garbage{}

// Name implements Adversary.
func (Garbage) Name() string { return "garbage" }

// Corrupt implements Adversary.
func (Garbage) Corrupt(n, t int, transmitter ident.ProcID, _ *mrand.Rand) ident.Set {
	return lastNonTransmitter(n, t, transmitter)
}

// NewNode implements Adversary.
func (g Garbage) NewNode(cfg protocol.NodeConfig, env *Env) (sim.Node, error) {
	per := g.PerPhase
	if per <= 0 {
		per = 3
	}
	return &garbageNode{id: cfg.ID, n: cfg.N, per: per, rng: env.State.Rng}, nil
}

type garbageNode struct {
	id  ident.ProcID
	n   int
	per int
	rng *mrand.Rand
}

func (g *garbageNode) Step(ctx *sim.Context, _ []sim.Envelope) error {
	for i := 0; i < g.per; i++ {
		to := ident.ProcID(g.rng.Intn(g.n))
		if to == g.id {
			continue
		}
		payload := make([]byte, 1+g.rng.Intn(64))
		_, _ = g.rng.Read(payload)
		// Errors from junk sends (e.g. after the last phase) are part of
		// the game; the adversary does not get to abort the run.
		_ = ctx.Send(to, payload, nil, 0)
	}
	return nil
}

func (g *garbageNode) Decide() (ident.Value, bool) { return 0, false }

// ---------------------------------------------------------------------------
// Replay: the Theorem 1 indistinguishability attack. Each corrupted
// processor replays, toward the victim p, exactly the labels it sent in
// recorded history H, and toward everyone else the labels it sent in
// recorded history G.

// ReplaySchedule is the per-sender script extracted from two recorded
// histories. Build it with lowerbound.BuildReplay.
type ReplaySchedule struct {
	// Victim is the processor that must see history H.
	Victim ident.ProcID
	// ToVictim[phase] are the labels this sender sent to the victim in H.
	ToVictim map[int][]ReplayEdge
	// ToOthers[phase] are the labels this sender sent to everyone else in G.
	ToOthers map[int][]ReplayEdge
}

// ReplayEdge is one scripted send.
type ReplayEdge struct {
	To       ident.ProcID
	Label    []byte
	Signers  []ident.ProcID
	SigTotal int
}

// Replay corrupts an explicit set and plays per-sender scripts.
type Replay struct {
	// FaultySet is the corrupted coalition A(p).
	FaultySet ident.Set
	// Schedules maps each corrupted sender to its script.
	Schedules map[ident.ProcID]*ReplaySchedule
}

var _ Adversary = Replay{}

// Name implements Adversary.
func (Replay) Name() string { return "replay" }

// Corrupt implements Adversary.
func (r Replay) Corrupt(int, int, ident.ProcID, *mrand.Rand) ident.Set {
	return r.FaultySet.Clone()
}

// NewNode implements Adversary.
func (r Replay) NewNode(cfg protocol.NodeConfig, _ *Env) (sim.Node, error) {
	sched, ok := r.Schedules[cfg.ID]
	if !ok {
		return nil, fmt.Errorf("adversary: no replay schedule for %v", cfg.ID)
	}
	return &replayNode{sched: sched}, nil
}

type replayNode struct {
	sched *ReplaySchedule
}

func (r *replayNode) Step(ctx *sim.Context, _ []sim.Envelope) error {
	ph := ctx.Phase()
	for _, e := range r.sched.ToVictim[ph] {
		if err := ctx.Send(e.To, e.Label, e.Signers, e.SigTotal); err != nil {
			return err
		}
	}
	for _, e := range r.sched.ToOthers[ph] {
		if err := ctx.Send(e.To, e.Label, e.Signers, e.SigTotal); err != nil {
			return err
		}
	}
	return nil
}

func (r *replayNode) Decide() (ident.Value, bool) { return 0, false }

// ---------------------------------------------------------------------------
// helpers

// lastNonTransmitter corrupts the t highest identities, skipping the
// transmitter.
func lastNonTransmitter(n, t int, transmitter ident.ProcID) ident.Set {
	out := make(ident.Set)
	for id := n - 1; id >= 0 && out.Len() < t; id-- {
		p := ident.ProcID(id)
		if p == transmitter {
			continue
		}
		out.Add(p)
	}
	return out
}
