// Chaos: a seeded randomized Byzantine strategy. Where the named adversaries
// (split-brain, silent, rushing) each target one proof's worst case, chaos
// samples the strategy space — random corruption choices, random equivocation
// and omission — to sweep for agreement violations the structured attacks
// miss. Deterministic per seed, so any violation it finds replays exactly.

package adversary

import (
	mrand "math/rand"

	"byzex/internal/ident"
	"byzex/internal/protocol"
	"byzex/internal/sig"
	"byzex/internal/sim"
)

// Chaos is a randomized Byzantine strategy designed to explore the fault
// space: each corrupted processor keeps a correct inner node and, every
// phase, independently chooses to (a) behave correctly, (b) stay silent,
// (c) behave correctly toward a random subset only, (d) replay previously
// received genuine payloads to random recipients, or (e) spray garbage.
// All choices draw from the shared deterministic Rng, so a seed fully
// reproduces a run. Used by the randomized sweep tests: no seed may ever
// produce disagreement among correct processors.
type Chaos struct{}

var _ Adversary = Chaos{}

// Name implements Adversary.
func (Chaos) Name() string { return "chaos" }

// Corrupt implements Adversary.
func (Chaos) Corrupt(n, t int, transmitter ident.ProcID, rng *mrand.Rand) ident.Set {
	// Random subset of size t, possibly including the transmitter.
	out := make(ident.Set)
	perm := rng.Perm(n)
	for _, idx := range perm {
		if out.Len() >= t {
			break
		}
		out.Add(ident.ProcID(idx))
	}
	return out
}

// NewNode implements Adversary.
func (c Chaos) NewNode(cfg protocol.NodeConfig, env *Env) (sim.Node, error) {
	inner, err := env.Protocol.NewNode(cfg)
	if err != nil {
		return nil, err
	}
	return &chaosNode{
		cfg:   cfg,
		inner: inner,
		rng:   env.State.Rng,
		st:    env.State,
	}, nil
}

type chaosNode struct {
	cfg   protocol.NodeConfig
	inner sim.Node
	rng   *mrand.Rand
	st    *State

	// seen buffers genuine payloads received so far, fuel for replays.
	seen []sim.Envelope
}

func (c *chaosNode) Step(ctx *sim.Context, inbox []sim.Envelope) error {
	c.seen = append(c.seen, inbox...)
	if len(c.seen) > 256 {
		c.seen = c.seen[len(c.seen)-256:]
	}

	switch c.rng.Intn(5) {
	case 0: // behave correctly this phase
		return c.inner.Step(ctx, inbox)
	case 1: // silence
		return nil
	case 2: // correct logic, but only toward a random half of the system
		keep := make(ident.Set)
		for id := 0; id < ctx.N(); id++ {
			if c.rng.Intn(2) == 0 {
				keep.Add(ident.ProcID(id))
			}
		}
		fctx := ctx.WithSendFilter(func(to ident.ProcID) bool { return keep.Has(to) })
		return c.inner.Step(fctx, inbox)
	case 3: // replay stored genuine payloads at random recipients
		for i := 0; i < 3 && len(c.seen) > 0; i++ {
			e := c.seen[c.rng.Intn(len(c.seen))]
			to := ident.ProcID(c.rng.Intn(ctx.N()))
			if to == ctx.ID() {
				continue
			}
			// Replayed envelopes keep their original signer accounting.
			_ = ctx.Send(to, e.Payload, e.Signers, e.SigTotal)
		}
		return nil
	default: // garbage, possibly with colluding-signer material mixed in
		for i := 0; i < 2; i++ {
			to := ident.ProcID(c.rng.Intn(ctx.N()))
			if to == ctx.ID() {
				continue
			}
			payload := c.forgedPayload()
			_ = ctx.Send(to, payload, nil, 0)
		}
		return nil
	}
}

// forgedPayload builds junk that sometimes embeds a genuine signature by a
// colluding faulty processor over a random value — stressing validators
// that might trust a single signature too much.
func (c *chaosNode) forgedPayload() []byte {
	if c.rng.Intn(2) == 0 || len(c.st.Signers) == 0 {
		buf := make([]byte, 1+c.rng.Intn(48))
		_, _ = c.rng.Read(buf)
		return buf
	}
	// Pick an arbitrary colluding signer deterministically.
	ids := make([]int, 0, len(c.st.Signers))
	for id := range c.st.Signers {
		ids = append(ids, int(id))
	}
	// Sort-free deterministic pick: min id (map order is random).
	min := ids[0]
	for _, id := range ids[1:] {
		if id < min {
			min = id
		}
	}
	signer := c.st.Signers[ident.ProcID(min)]
	sv := sig.NewSignedValue(signer, ident.Value(c.rng.Int63n(4)))
	return sv.Marshal()
}

func (c *chaosNode) Decide() (ident.Value, bool) { return 0, false }

// ---------------------------------------------------------------------------
// BitFlipper: runs the correct protocol but flips one bit in every outgoing
// payload. Under an unforgeable signature scheme all of its messages must
// be rejected, making it behaviourally equivalent to a silent processor —
// a mutation-robustness check on every protocol's validation path.

// BitFlipper corrupts up to t non-transmitter processors.
type BitFlipper struct{}

var _ Adversary = BitFlipper{}

// Name implements Adversary.
func (BitFlipper) Name() string { return "bit-flipper" }

// Corrupt implements Adversary.
func (BitFlipper) Corrupt(n, t int, transmitter ident.ProcID, _ *mrand.Rand) ident.Set {
	return lastNonTransmitter(n, t, transmitter)
}

// NewNode implements Adversary.
func (BitFlipper) NewNode(cfg protocol.NodeConfig, env *Env) (sim.Node, error) {
	inner, err := env.Protocol.NewNode(cfg)
	if err != nil {
		return nil, err
	}
	return &bitFlipNode{inner: inner, rng: env.State.Rng}, nil
}

type bitFlipNode struct {
	inner sim.Node
	rng   *mrand.Rand
}

func (b *bitFlipNode) Step(ctx *sim.Context, inbox []sim.Envelope) error {
	// Intercept sends and corrupt one bit per payload.
	fctx := sim.NewContext(ctx.ID(), ctx.N(), ctx.T(), ctx.Transmitter(), ctx.Phase(), ctx.Phase()+1,
		func(e sim.Envelope) {
			if len(e.Payload) > 0 {
				mutated := append([]byte(nil), e.Payload...)
				idx := b.rng.Intn(len(mutated))
				mutated[idx] ^= 1 << uint(b.rng.Intn(8))
				e.Payload = mutated
			}
			_ = ctx.Send(e.To, e.Payload, e.Signers, e.SigTotal)
		})
	return b.inner.Step(fctx, inbox)
}

func (b *bitFlipNode) Decide() (ident.Value, bool) { return 0, false }
