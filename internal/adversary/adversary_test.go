package adversary_test

import (
	"context"
	"testing"

	"byzex/internal/adversary"
	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/protocol"
	"byzex/internal/protocols/dolevstrong"
	"byzex/internal/sig"
	"byzex/internal/sim"
)

func TestCorruptSelections(t *testing.T) {
	if got := (adversary.Silent{}).Corrupt(7, 3, 0, nil); got.Len() != 3 || got.Has(0) {
		t.Fatalf("silent corrupt %v", got.Sorted())
	}
	if got := (adversary.Silent{}).Corrupt(7, 0, 0, nil); got.Len() != 0 {
		t.Fatal("t=0 corrupted someone")
	}
	// The transmitter is skipped even when it would be in the tail.
	if got := (adversary.Crash{}).Corrupt(4, 3, 3, nil); got.Has(3) || got.Len() != 3 {
		t.Fatalf("crash corrupt %v", got.Sorted())
	}
	if got := (adversary.SplitBrain{}).Corrupt(9, 2, 5, nil); got.Len() != 1 || !got.Has(5) {
		t.Fatalf("split-brain corrupt %v", got.Sorted())
	}
	if got := (adversary.SplitBrain{}).Corrupt(9, 0, 0, nil); got.Len() != 0 {
		t.Fatal("split-brain with t=0 corrupted transmitter")
	}
	b := ident.NewSet(3, 4)
	if got := (adversary.StarveB{B: b}).Corrupt(9, 4, 0, nil); got.Len() != 2 {
		t.Fatal("starve corrupt wrong")
	}
}

func TestNewStateCollectsSigners(t *testing.T) {
	scheme := sig.NewHMAC(5, 1)
	st, err := adversary.NewState(ident.NewSet(1, 3), scheme, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Signers) != 2 {
		t.Fatalf("signers %d", len(st.Signers))
	}
	if st.Signers[1].ID() != 1 || st.Signers[3].ID() != 3 {
		t.Fatal("wrong signers")
	}
	if _, err := adversary.NewState(ident.NewSet(99), scheme, 9); err == nil {
		t.Fatal("out-of-range corruption accepted")
	}
}

func TestSilentNodeSendsNothing(t *testing.T) {
	nd, err := adversary.Silent{}.NewNode(cfgFor(t, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	sent := 0
	ctx := sim.NewContext(1, 3, 1, 0, 1, 5, func(sim.Envelope) { sent++ })
	if err := nd.Step(ctx, nil); err != nil {
		t.Fatal(err)
	}
	if sent != 0 {
		t.Fatal("silent node sent")
	}
	if _, decided := nd.Decide(); decided {
		t.Fatal("silent node decided")
	}
}

func TestReplayNodePlaysSchedule(t *testing.T) {
	sched := &adversary.ReplaySchedule{
		Victim: 2,
		ToVictim: map[int][]adversary.ReplayEdge{
			1: {{To: 2, Label: []byte("h"), SigTotal: 1}},
		},
		ToOthers: map[int][]adversary.ReplayEdge{
			1: {{To: 1, Label: []byte("g"), SigTotal: 1}},
			2: {{To: 1, Label: []byte("g2"), SigTotal: 0}},
		},
	}
	adv := adversary.Replay{FaultySet: ident.NewSet(0), Schedules: map[ident.ProcID]*adversary.ReplaySchedule{0: sched}}
	nd, err := adv.NewNode(cfgFor(t, 0), nil)
	if err != nil {
		t.Fatal(err)
	}
	var sent []sim.Envelope
	step := func(phase int) {
		ctx := sim.NewContext(0, 3, 1, 0, phase, 5, func(e sim.Envelope) { sent = append(sent, e) })
		if err := nd.Step(ctx, nil); err != nil {
			t.Fatal(err)
		}
	}
	step(1)
	step(2)
	step(3)
	if len(sent) != 3 {
		t.Fatalf("sent %d envelopes", len(sent))
	}
	if string(sent[0].Payload) != "h" || sent[0].To != 2 {
		t.Fatal("victim label wrong")
	}
	if string(sent[1].Payload) != "g" || string(sent[2].Payload) != "g2" {
		t.Fatal("other labels wrong")
	}

	// Missing schedule is an error.
	if _, err := adv.NewNode(cfgFor(t, 1), nil); err == nil {
		t.Fatal("node without schedule accepted")
	}
}

func TestStarveIgnoresFirstK(t *testing.T) {
	// The starve wrapper must drop exactly the first K messages from
	// outside B and everything from inside B.
	inner := &captureNode{}
	b := ident.NewSet(1, 5)
	adv := adversary.StarveB{B: b, IgnoreFirst: 2}
	env := &adversary.Env{Protocol: captureProtocol{inner}, State: nil}
	nd, err := adv.NewNode(cfgFor(t, 1), env)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(from ident.ProcID) sim.Envelope { return sim.Envelope{From: from, To: 1, Phase: 1} }
	ctx := sim.NewContext(1, 6, 2, 0, 1, 5, func(sim.Envelope) {})
	inbox := []sim.Envelope{mk(0), mk(5), mk(2), mk(3), mk(4)}
	if err := nd.Step(ctx, inbox); err != nil {
		t.Fatal(err)
	}
	// from-5 dropped (in B); 0 and 2 dropped (first two from outside B);
	// 3 and 4 delivered.
	if len(inner.got) != 2 || inner.got[0].From != 3 || inner.got[1].From != 4 {
		t.Fatalf("delivered %v", inner.got)
	}
}

// captureNode records its inbox.
type captureNode struct {
	got []sim.Envelope
}

func (c *captureNode) Step(_ *sim.Context, inbox []sim.Envelope) error {
	c.got = append(c.got, inbox...)
	return nil
}

func (c *captureNode) Decide() (ident.Value, bool) { return 0, true }

// captureProtocol hands out a fixed node.
type captureProtocol struct {
	node sim.Node
}

func (captureProtocol) Name() string         { return "capture" }
func (captureProtocol) Check(int, int) error { return nil }
func (captureProtocol) Phases(int, int) int  { return 1 }
func (p captureProtocol) NewNode(protocol.NodeConfig) (sim.Node, error) {
	return p.node, nil
}

func cfgFor(t *testing.T, id ident.ProcID) protocol.NodeConfig {
	t.Helper()
	scheme := sig.NewHMAC(8, 2)
	signer, err := scheme.Signer(id)
	if err != nil {
		t.Fatal(err)
	}
	return protocol.NodeConfig{
		ID: id, N: 8, T: 2, Transmitter: 0, Signer: signer, Verifier: scheme,
	}
}

func TestGarbageNodeFloodsButTolerated(t *testing.T) {
	// End-to-end: garbage nodes don't break Dolev-Strong and their traffic
	// is accounted as faulty.
	res, _, err := core.RunAndCheck(context.Background(), core.Config{
		Protocol: dolevstrong.Protocol{}, N: 7, T: 2, Value: ident.V1,
		Adversary: adversary.Garbage{PerPhase: 4}, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sim.Report.MessagesFaulty == 0 {
		t.Fatal("garbage traffic not recorded")
	}
}
