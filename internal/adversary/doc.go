// Package adversary implements Byzantine fault strategies. An Adversary
// chooses which processors to corrupt and supplies the state machines that
// replace them. Faulty processors may collude: every strategy has access to
// the shared State, which pools the signers of all corrupted processors —
// exactly the paper's power ("every message that contains only signatures of
// faulty processors can be produced by them") — but can never sign for a
// correct processor because it never holds a correct processor's signer.
//
// # The strategy registry
//
// The strategies include the constructions used by the paper's lower-bound
// proofs — the split-brain transmitter (SplitBrain, and its k-way
// generalization MultiFaced) and history-replay adversary (Replay) of
// Theorem 1, and the ignore-first-⌈t/2⌉ starvation behaviour of Theorem 2
// (StarveB) — plus generic stressors: Silent (crash-from-start), Crash
// (correct until phase k, then silent), Garbage (malformed payloads and
// forged signature material), and BitFlipper (replayed traffic with flipped
// value bits). Every strategy is registered by name in internal/cli
// (cli.Adversary), so basim, baserve and the experiment sweeps can select
// any of them from a flag.
//
// # Chaos and the searched strategies
//
// Chaos is the sampling strategy: each corrupted node re-rolls its
// behaviour every phase (correct, silent, selective, replay-seen, garbage)
// from the run's seeded RNG. It asks "does agreement survive arbitrary
// misbehaviour?" — one random point of the strategy space per run, useful
// as a soak test but blind to structure. The adversary *search*
// (internal/search, surfaced as `baattack -search`) is the directed
// complement: it treats the strategies in this package as the genome of an
// optimizer (strategy × parameter × seed × fault plan), evaluates
// candidates by running the protocol on both transmitter values, and
// minimizes the cost of the surviving execution pair against the paper's
// Theorem 1/2 bounds. Chaos answers "does it break?"; the search answers
// "how cheap can a non-breaking adversary make it, and does that ever
// undercut the proved bound?". Replay is the one strategy the search does
// not mutate over: its per-processor schedules are bound to one recorded
// history, so it cannot be instantiated for an arbitrary searched faulty
// set — lowerbound.ReplayAttack remains its scripted home.
package adversary
