package adversary

import (
	mrand "math/rand"

	"byzex/internal/ident"
	"byzex/internal/protocol"
	"byzex/internal/sim"
)

// OmitTowards is the omission coalition used by the Theorem 2 style "H”"
// construction: the corrupted processors run the correct protocol but never
// send anything to the victims. Against a protocol that routes a victim's
// only copies of the value through ≤ t processors, this starves the victim
// into the default decision while everybody else proceeds normally —
// breaking agreement.
type OmitTowards struct {
	// FaultySet is the corrupted coalition (e.g. A(p), the processors that
	// send to the victim in the fault-free history).
	FaultySet ident.Set
	// Victims are the processors the coalition withholds all messages from.
	Victims ident.Set
}

var _ Adversary = OmitTowards{}

// Name implements Adversary.
func (OmitTowards) Name() string { return "omit-towards" }

// Corrupt implements Adversary.
func (o OmitTowards) Corrupt(int, int, ident.ProcID, *mrand.Rand) ident.Set {
	return o.FaultySet.Clone()
}

// NewNode implements Adversary.
func (o OmitTowards) NewNode(cfg protocol.NodeConfig, env *Env) (sim.Node, error) {
	inner, err := env.Protocol.NewNode(cfg)
	if err != nil {
		return nil, err
	}
	return &omitNode{inner: inner, victims: o.Victims}, nil
}

type omitNode struct {
	inner   sim.Node
	victims ident.Set
}

func (o *omitNode) Step(ctx *sim.Context, inbox []sim.Envelope) error {
	fctx := ctx.WithSendFilter(func(to ident.ProcID) bool { return !o.victims.Has(to) })
	return o.inner.Step(fctx, inbox)
}

func (o *omitNode) Decide() (ident.Value, bool) { return o.inner.Decide() }
