// The paper's bounds as executable closed forms: the signature lower bound
// of Theorem 1, the message lower bounds of Theorems 2–4 and the upper
// bounds achieved by the constructive algorithms. The evaluation harness and
// the conformance tests compare measured per-instance counts against these
// functions, so every bound claim in ROADMAP.md is checked, not quoted.

package core

import "math"

// SigLowerBound is Theorem 1: any authenticated agreement algorithm
// handling t < n-1 faults has a fault-free history in which correct
// processors send at least n(t+1)/4 signatures.
func SigLowerBound(n, t int) int { return n * (t + 1) / 4 }

// MsgLowerBoundUnauth is Corollary 1: without authentication the Theorem 1
// bound applies to the number of messages.
func MsgLowerBoundUnauth(n, t int) int { return SigLowerBound(n, t) }

// MsgLowerBound is Theorem 2: any agreement algorithm handling t < n-1
// faults has a history in which the correct processors send at least
// max{(n-1)/2, (1+t/2)^2} messages.
func MsgLowerBound(n, t int) int {
	a := (n - 1) / 2
	half := 1 + float64(t)/2
	b := int(half * half)
	if a > b {
		return a
	}
	return b
}

// Alg1MsgUpperBound is Theorem 3: Algorithm 1 (n = 2t+1) sends at most
// 2t^2 + 2t messages.
func Alg1MsgUpperBound(t int) int { return 2*t*t + 2*t }

// Alg1Phases is Theorem 3's phase count for Algorithm 1.
func Alg1Phases(t int) int { return t + 2 }

// Alg2MsgUpperBound is Theorem 4: Algorithm 2 sends at most 5t^2 + 5t
// messages.
func Alg2MsgUpperBound(t int) int { return 5*t*t + 5*t }

// Alg2Phases is Theorem 4's phase count for Algorithm 2.
func Alg2Phases(t int) int { return 3*t + 3 }

// Alg3MsgUpperBound is Lemma 1: Algorithm 3 with set size s sends at most
// 2n + 4tn/s + 3t^2·s messages.
func Alg3MsgUpperBound(n, t, s int) int {
	if s < 1 {
		s = 1
	}
	return 2*n + 4*t*n/s + 3*t*t*s
}

// Alg3Phases is Lemma 1's phase count for Algorithm 3 with set size s.
func Alg3Phases(t, s int) int { return t + 2*s + 3 }

// Alg4MsgUpperBound is Theorem 6: Algorithm 4 on N = m^2 processors sends
// at most 3(m-1)m^2 messages.
func Alg4MsgUpperBound(m int) int { return 3 * (m - 1) * m * m }

// Alg5Alpha returns α, the smallest perfect square strictly greater than 6t
// (the active-set size of Algorithm 5).
func Alg5Alpha(t int) int {
	for m := 1; ; m++ {
		if m*m > 6*t {
			return m * m
		}
	}
}

// Alg5MsgUpperBound is Lemma 5's O(t^2 + nt/s) with an explicit constant
// derived from the paper's accounting (Section 7); the benches check the
// measured counts stay below it. The terms are: Algorithm 2 plus the
// phase-(3t+4) fan-out (≤ 5t^2+5t+(t+1)α), per-block Algorithm 4 runs
// (≤ 3α^1.5·(λ+1)), activation/report traffic (≤ 4αn/s + 4α(2t+1)(λ+1)),
// and intra-tree ping-pong (≤ 2n + 2s·t·log2(3) rounded up).
func Alg5MsgUpperBound(n, t, s int) int {
	if s < 1 {
		s = 1
	}
	alpha := Alg5Alpha(t)
	lam := 1
	for (1<<uint(lam))-1 < s {
		lam++
	}
	root := int(math.Sqrt(float64(alpha)))
	alg4 := 3 * (root - 1) * alpha * (lam + 1)
	activation := 4*alpha*(n/s+1) + 4*alpha*(2*t+1)*(lam+1)
	pingpong := 2*n + 4*s*(t+1)*(lam+1)
	return 5*t*t + 5*t + (t+1)*alpha + alg4 + activation + pingpong
}

// Alg5Phases bounds Algorithm 5's phase count for tree size parameter s.
// The paper states 3t + 4s + 2. Our implementation rounds the tree capacity
// up to s' = 2^λ - 1 (λ = ⌈log2(s+1)⌉) and spends one extra phase per block
// separating the root report from the Algorithm 4 exchange, giving an exact
// schedule of 3t + 4(s'+1) + λ + 1 = O(t + s).
func Alg5Phases(t, s int) int {
	if s < 1 {
		s = 1
	}
	lam := 1
	for (1<<uint(lam))-1 < s {
		lam++
	}
	sCap := (1 << uint(lam)) - 1
	return 3*t + 4*(sCap+1) + lam + 1
}

// DolevStrongPhases is the baseline's t+1 phase count.
func DolevStrongPhases(t int) int { return t + 1 }

// TradeoffPhases is the introduction's phase side of the trade-off: for
// n ≫ t, t + 3 + t/α phases using Algorithm 3 with s = ⌈t/(2α)⌉.
func TradeoffPhases(t, alpha int) int { return t + 3 + (t+alpha-1)/alpha }
