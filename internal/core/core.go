// Package core is the public facade of the library: it wires a protocol, an
// adversary, a signature scheme and the synchronous engine into a single
// Run call, checks the two Byzantine Agreement conditions on the outcome,
// and exposes the closed-form bounds proved by the paper so callers
// (benchmarks, experiments, tests) can compare measured counts against them.
//
// Config is also the unified run description shared with the TCP transport:
// package transport consumes the same struct (via transport.RunCluster) and
// reuses NewSetup and CheckDecisions from here, so the two substrates cannot
// drift in how they default schemes, resolve faulty sets, build nodes or
// judge agreement.
//
// Byzantine Agreement (paper, Section 1):
//
//	(i)  all correctly operating processors agree on the same value;
//	(ii) if the transmitter is correct, all correct processors agree on its
//	     value.
package core

import (
	"context"
	"errors"
	"fmt"

	"byzex/internal/adversary"
	"byzex/internal/faultnet"
	"byzex/internal/history"
	"byzex/internal/ident"
	"byzex/internal/protocol"
	"byzex/internal/sig"
	"byzex/internal/sim"
	"byzex/internal/trace"
)

// Agreement violation errors.
var (
	// ErrNoDecision indicates a correct processor failed to decide.
	ErrNoDecision = errors.New("core: correct processor did not decide")
	// ErrDisagreement indicates two correct processors decided differently
	// (violates condition (i)).
	ErrDisagreement = errors.New("core: correct processors disagree")
	// ErrValidity indicates the correct transmitter's value was not adopted
	// (violates condition (ii)).
	ErrValidity = errors.New("core: decision differs from correct transmitter's value")
)

// Config describes one protocol execution.
type Config struct {
	// Protocol is the agreement algorithm to run.
	Protocol protocol.Protocol
	// N and T are the system size and fault bound.
	N, T int
	// Transmitter defaults to processor 0.
	Transmitter ident.ProcID
	// Value is the transmitter's input value.
	Value ident.Value
	// Scheme is the signature scheme; nil selects HMAC keyed from Seed.
	Scheme sig.Scheme
	// Adversary chooses and drives faulty processors; nil means fault-free.
	Adversary adversary.Adversary
	// FaultyOverride, when non-nil, replaces the adversary's Corrupt choice.
	FaultyOverride ident.Set
	// Seed drives all deterministic randomness in the run.
	Seed int64
	// Record captures the execution as a history.History.
	Record bool
	// Rushing grants the adversary the rushing power (see sim.Config).
	Rushing bool
	// Trace receives structured execution events (see package trace). When
	// nil, Run falls back to the sink carried by the context (if any), so
	// orchestration layers can inject per-worker sinks without plumbing.
	Trace trace.Sink
	// Faults is a compiled fault-injection plan (see package faultnet),
	// honored by both substrates: the in-memory engine applies it on its
	// delivery path, the TCP transport at the frame layer. Processors the
	// plan affects should normally be covered by FaultyOverride (use
	// Plan.Affected) so the agreement judge attributes the injected
	// misbehavior to them; nil injects nothing.
	Faults *faultnet.Plan
}

// Result is the outcome of a Run.
type Result struct {
	// Sim carries decisions and metrics.
	Sim *sim.Result
	// History is the recorded execution (nil unless Config.Record).
	History *history.History
	// Faulty is the corrupted set used in the run.
	Faulty ident.Set
	// Phases is the protocol's scheduled phase count for (n, t).
	Phases int
	// Nodes are the state machines after the run, indexed by processor id.
	// Callers can type-assert protocol-specific interfaces (e.g.
	// alg2.ProofHolder) to extract artifacts such as transferable proofs.
	Nodes []sim.Node
}

// Decision returns the common decision of the correct processors, or an
// agreement violation error. transmitterValue is used for condition (ii)
// when the transmitter was correct.
func (r *Result) Decision(transmitter ident.ProcID, transmitterValue ident.Value) (ident.Value, error) {
	return CheckDecisions(r.Sim.Decisions, r.Faulty, transmitter, transmitterValue)
}

// CheckDecisions verifies both Byzantine Agreement conditions over a raw
// decision map and returns the common decision. It is the single agreement
// judge shared by the in-memory engine, the TCP transport and the
// experiment sweeps: condition (i) is always checked; condition (ii) only
// when the transmitter is outside the faulty set.
func CheckDecisions(decisions map[ident.ProcID]sim.Decision, faulty ident.Set, transmitter ident.ProcID, transmitterValue ident.Value) (ident.Value, error) {
	var (
		got     ident.Value
		haveAny bool
	)
	for id, d := range decisions {
		if faulty.Has(id) {
			continue
		}
		if !d.Decided {
			return 0, fmt.Errorf("%w: %v", ErrNoDecision, id)
		}
		if !haveAny {
			got, haveAny = d.Value, true
			continue
		}
		if d.Value != got {
			return 0, fmt.Errorf("%w: %v vs %v", ErrDisagreement, d.Value, got)
		}
	}
	if !haveAny {
		return 0, fmt.Errorf("%w: no correct processors", ErrNoDecision)
	}
	if !faulty.Has(transmitter) && got != transmitterValue {
		return 0, fmt.Errorf("%w: decided %v, transmitter sent %v", ErrValidity, got, transmitterValue)
	}
	return got, nil
}

// Setup is the prepared state of a run: defaults resolved, faulty set
// chosen, state machines built. It is produced by NewSetup and consumed by
// both execution substrates — Run hands the nodes to the in-memory engine,
// transport.RunCluster hands them to TCP peers.
type Setup struct {
	// Scheme is the resolved signature scheme (defaulted when Config left
	// it nil).
	Scheme sig.Scheme
	// Verifier is the per-run verified-prefix cache every node verifies
	// through. It is safe for concurrent use, so the TCP transport shares
	// it across peer goroutines just as the engine shares it across nodes.
	Verifier *sig.CachedVerifier
	// Faulty is the resolved corrupted set.
	Faulty ident.Set
	// Phases is the protocol's phase schedule for (n, t).
	Phases int
	// Nodes are the per-processor state machines (adversary nodes for
	// corrupted processors, protocol nodes otherwise).
	Nodes []sim.Node
}

// NewSetup validates cfg, resolves defaults (scheme, faulty set) and builds
// the node set — everything a substrate needs before it starts delivering
// messages. Both Run and transport.RunCluster go through here, so scheme
// defaulting, corruption choice and node construction cannot diverge
// between the in-memory engine and the TCP cluster.
func NewSetup(cfg Config) (*Setup, error) {
	if cfg.Protocol == nil {
		return nil, errors.New("core: nil protocol")
	}
	if err := cfg.Protocol.Check(cfg.N, cfg.T); err != nil {
		return nil, err
	}
	scheme := cfg.Scheme
	if scheme == nil {
		scheme = sig.NewHMAC(cfg.N, cfg.Seed^0x5ee_d516)
	}

	// Determine the corrupted set. FaultyOverride wins even without an
	// adversary: fault-injection runs (package faultnet) mark network-
	// affected processors as faulty so the agreement judge discounts them,
	// while the processors themselves keep running correct protocol code —
	// a crash or partition victim is not Byzantine, merely unheard.
	faulty := make(ident.Set)
	var env *adversary.Env
	if cfg.FaultyOverride != nil {
		faulty = cfg.FaultyOverride.Clone()
	} else if cfg.Adversary != nil {
		st, err := adversary.NewState(make(ident.Set), scheme, cfg.Seed)
		if err != nil {
			return nil, err
		}
		faulty = cfg.Adversary.Corrupt(cfg.N, cfg.T, cfg.Transmitter, st.Rng)
	}
	if cfg.Adversary != nil {
		st, err := adversary.NewState(faulty, scheme, cfg.Seed)
		if err != nil {
			return nil, err
		}
		env = &adversary.Env{Protocol: cfg.Protocol, State: st}
	}

	phases := cfg.Protocol.Phases(cfg.N, cfg.T)

	// All nodes verify through one per-run verified-prefix cache: a relayed
	// chain pays cryptography only for links not already checked this run
	// (sound because cache keys commit to the full signing input; see
	// sig.CachedVerifier). Sharing across nodes is free — verification is
	// objective, and the cache is safe for the TCP transport's concurrency.
	verifier := sig.NewCachedVerifier(scheme)

	// Build the node set: protocol nodes for correct processors, adversary
	// nodes for corrupted ones.
	nodes := make([]sim.Node, cfg.N)
	for i := 0; i < cfg.N; i++ {
		id := ident.ProcID(i)
		signer, err := scheme.Signer(id)
		if err != nil {
			return nil, fmt.Errorf("core: signer for %v: %w", id, err)
		}
		ncfg := protocol.NodeConfig{
			ID:          id,
			N:           cfg.N,
			T:           cfg.T,
			Transmitter: cfg.Transmitter,
			Value:       cfg.Value,
			Signer:      signer,
			Verifier:    verifier,
		}
		if faulty.Has(id) && env != nil {
			nodes[i], err = cfg.Adversary.NewNode(ncfg, env)
		} else {
			nodes[i], err = cfg.Protocol.NewNode(ncfg)
		}
		if err != nil {
			return nil, fmt.Errorf("core: building node %v: %w", id, err)
		}
	}
	return &Setup{Scheme: scheme, Verifier: verifier, Faulty: faulty, Phases: phases, Nodes: nodes}, nil
}

// ResolveTrace returns the sink a run should emit to: the explicitly
// configured one, else the sink carried by ctx, else nil (disabled).
func (c Config) ResolveTrace(ctx context.Context) trace.Sink {
	if c.Trace != nil {
		return c.Trace
	}
	return trace.FromContext(ctx)
}

// EmitCorruptions reports the faulty set to sink in ascending id order
// (no-op for a nil sink).
func EmitCorruptions(sink trace.Sink, faulty ident.Set) {
	if sink == nil || faulty.Len() == 0 {
		return
	}
	for _, id := range faulty.Sorted() {
		sink.Emit(trace.Event{Kind: trace.KindCorrupt, From: id, To: ident.None})
	}
}

// Run executes the configured protocol instance to completion.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	setup, err := NewSetup(cfg)
	if err != nil {
		return nil, err
	}
	sink := cfg.ResolveTrace(ctx)
	EmitCorruptions(sink, setup.Faulty)
	setup.Verifier.SetTrace(sink)

	simCfg := sim.Config{
		N:           cfg.N,
		T:           cfg.T,
		Transmitter: cfg.Transmitter,
		Phases:      setup.Phases,
		Faulty:      setup.Faulty,
		Rushing:     cfg.Rushing,
		Trace:       sink,
		Faults:      cfg.Faults,
	}
	var rec *history.Recorder
	if cfg.Record {
		rec = history.NewRecorder(cfg.N, cfg.Transmitter, cfg.Value, setup.Faulty)
		simCfg.Observers = append(simCfg.Observers, rec)
	}

	eng, err := sim.New(simCfg, setup.Nodes)
	if err != nil {
		return nil, err
	}
	res, err := eng.Run(ctx)
	if err != nil {
		return nil, err
	}
	hits, misses := setup.Verifier.Stats()
	res.Report.SigCacheHits = int(hits)
	res.Report.SigCacheMisses = int(misses)
	out := &Result{Sim: res, Faulty: setup.Faulty, Phases: setup.Phases, Nodes: setup.Nodes}
	if rec != nil {
		out.History = rec.History()
	}
	return out, nil
}

// RunAndCheck runs the configuration and verifies both Byzantine Agreement
// conditions, returning the common decision.
func RunAndCheck(ctx context.Context, cfg Config) (*Result, ident.Value, error) {
	res, err := Run(ctx, cfg)
	if err != nil {
		return nil, 0, err
	}
	v, err := res.Decision(cfg.Transmitter, cfg.Value)
	if err != nil {
		return res, 0, err
	}
	return res, v, nil
}
