// Package core is the public facade of the library: it wires a protocol, an
// adversary, a signature scheme and the synchronous engine into a single
// Run call, checks the two Byzantine Agreement conditions on the outcome,
// and exposes the closed-form bounds proved by the paper so callers
// (benchmarks, experiments, tests) can compare measured counts against them.
//
// Byzantine Agreement (paper, Section 1):
//
//	(i)  all correctly operating processors agree on the same value;
//	(ii) if the transmitter is correct, all correct processors agree on its
//	     value.
package core

import (
	"context"
	"errors"
	"fmt"

	"byzex/internal/adversary"
	"byzex/internal/history"
	"byzex/internal/ident"
	"byzex/internal/protocol"
	"byzex/internal/sig"
	"byzex/internal/sim"
)

// Agreement violation errors.
var (
	// ErrNoDecision indicates a correct processor failed to decide.
	ErrNoDecision = errors.New("core: correct processor did not decide")
	// ErrDisagreement indicates two correct processors decided differently
	// (violates condition (i)).
	ErrDisagreement = errors.New("core: correct processors disagree")
	// ErrValidity indicates the correct transmitter's value was not adopted
	// (violates condition (ii)).
	ErrValidity = errors.New("core: decision differs from correct transmitter's value")
)

// Config describes one protocol execution.
type Config struct {
	// Protocol is the agreement algorithm to run.
	Protocol protocol.Protocol
	// N and T are the system size and fault bound.
	N, T int
	// Transmitter defaults to processor 0.
	Transmitter ident.ProcID
	// Value is the transmitter's input value.
	Value ident.Value
	// Scheme is the signature scheme; nil selects HMAC keyed from Seed.
	Scheme sig.Scheme
	// Adversary chooses and drives faulty processors; nil means fault-free.
	Adversary adversary.Adversary
	// FaultyOverride, when non-nil, replaces the adversary's Corrupt choice.
	FaultyOverride ident.Set
	// Seed drives all deterministic randomness in the run.
	Seed int64
	// Record captures the execution as a history.History.
	Record bool
	// Rushing grants the adversary the rushing power (see sim.Config).
	Rushing bool
}

// Result is the outcome of a Run.
type Result struct {
	// Sim carries decisions and metrics.
	Sim *sim.Result
	// History is the recorded execution (nil unless Config.Record).
	History *history.History
	// Faulty is the corrupted set used in the run.
	Faulty ident.Set
	// Phases is the protocol's scheduled phase count for (n, t).
	Phases int
	// Nodes are the state machines after the run, indexed by processor id.
	// Callers can type-assert protocol-specific interfaces (e.g.
	// alg2.ProofHolder) to extract artifacts such as transferable proofs.
	Nodes []sim.Node
}

// Decision returns the common decision of the correct processors, or an
// agreement violation error. transmitterValue is used for condition (ii)
// when the transmitter was correct.
func (r *Result) Decision(transmitter ident.ProcID, transmitterValue ident.Value) (ident.Value, error) {
	var (
		got     ident.Value
		haveAny bool
	)
	for id, d := range r.Sim.Decisions {
		if r.Faulty.Has(id) {
			continue
		}
		if !d.Decided {
			return 0, fmt.Errorf("%w: %v", ErrNoDecision, id)
		}
		if !haveAny {
			got, haveAny = d.Value, true
			continue
		}
		if d.Value != got {
			return 0, fmt.Errorf("%w: %v vs %v", ErrDisagreement, d.Value, got)
		}
	}
	if !haveAny {
		return 0, fmt.Errorf("%w: no correct processors", ErrNoDecision)
	}
	if !r.Faulty.Has(transmitter) && got != transmitterValue {
		return 0, fmt.Errorf("%w: decided %v, transmitter sent %v", ErrValidity, got, transmitterValue)
	}
	return got, nil
}

// Run executes the configured protocol instance to completion.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Protocol == nil {
		return nil, errors.New("core: nil protocol")
	}
	if err := cfg.Protocol.Check(cfg.N, cfg.T); err != nil {
		return nil, err
	}
	scheme := cfg.Scheme
	if scheme == nil {
		scheme = sig.NewHMAC(cfg.N, cfg.Seed^0x5ee_d516)
	}

	// Determine the corrupted set.
	faulty := make(ident.Set)
	var env *adversary.Env
	if cfg.Adversary != nil {
		if cfg.FaultyOverride != nil {
			faulty = cfg.FaultyOverride.Clone()
		} else {
			st, err := adversary.NewState(make(ident.Set), scheme, cfg.Seed)
			if err != nil {
				return nil, err
			}
			faulty = cfg.Adversary.Corrupt(cfg.N, cfg.T, cfg.Transmitter, st.Rng)
		}
		st, err := adversary.NewState(faulty, scheme, cfg.Seed)
		if err != nil {
			return nil, err
		}
		env = &adversary.Env{Protocol: cfg.Protocol, State: st}
	}

	phases := cfg.Protocol.Phases(cfg.N, cfg.T)

	// All nodes verify through one per-run verified-prefix cache: a relayed
	// chain pays cryptography only for links not already checked this run
	// (sound because cache keys commit to the full signing input; see
	// sig.CachedVerifier). Sharing across nodes is free in the simulation —
	// verification is objective and the engine is single-threaded.
	verifier := sig.NewCachedVerifier(scheme)

	// Build the node set: protocol nodes for correct processors, adversary
	// nodes for corrupted ones.
	nodes := make([]sim.Node, cfg.N)
	for i := 0; i < cfg.N; i++ {
		id := ident.ProcID(i)
		signer, err := scheme.Signer(id)
		if err != nil {
			return nil, fmt.Errorf("core: signer for %v: %w", id, err)
		}
		ncfg := protocol.NodeConfig{
			ID:          id,
			N:           cfg.N,
			T:           cfg.T,
			Transmitter: cfg.Transmitter,
			Value:       cfg.Value,
			Signer:      signer,
			Verifier:    verifier,
		}
		if faulty.Has(id) {
			nodes[i], err = cfg.Adversary.NewNode(ncfg, env)
		} else {
			nodes[i], err = cfg.Protocol.NewNode(ncfg)
		}
		if err != nil {
			return nil, fmt.Errorf("core: building node %v: %w", id, err)
		}
	}

	simCfg := sim.Config{
		N:           cfg.N,
		T:           cfg.T,
		Transmitter: cfg.Transmitter,
		Phases:      phases,
		Faulty:      faulty,
		Rushing:     cfg.Rushing,
	}
	var rec *history.Recorder
	if cfg.Record {
		rec = history.NewRecorder(cfg.N, cfg.Transmitter, cfg.Value, faulty)
		simCfg.Observers = append(simCfg.Observers, rec)
	}

	eng, err := sim.New(simCfg, nodes)
	if err != nil {
		return nil, err
	}
	res, err := eng.Run(ctx)
	if err != nil {
		return nil, err
	}
	hits, misses := verifier.Stats()
	res.Report.SigCacheHits = int(hits)
	res.Report.SigCacheMisses = int(misses)
	out := &Result{Sim: res, Faulty: faulty, Phases: phases, Nodes: nodes}
	if rec != nil {
		out.History = rec.History()
	}
	return out, nil
}

// RunAndCheck runs the configuration and verifies both Byzantine Agreement
// conditions, returning the common decision.
func RunAndCheck(ctx context.Context, cfg Config) (*Result, ident.Value, error) {
	res, err := Run(ctx, cfg)
	if err != nil {
		return nil, 0, err
	}
	v, err := res.Decision(cfg.Transmitter, cfg.Value)
	if err != nil {
		return res, 0, err
	}
	return res, v, nil
}
