package core_test

import (
	"context"
	"testing"

	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/protocols/alg3"
	"byzex/internal/protocols/alg5"
	"byzex/internal/runner"
)

// TestScaleLarge drives the general-n algorithms at fleet sizes to confirm
// the bounds and linear-in-n behaviour hold beyond toy systems. Skipped in
// -short mode.
func TestScaleLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in -short mode")
	}
	cases := []struct {
		name  string
		n, t  int
		run   func(n, tt int) (*core.Result, error)
		bound func(n, tt int) int
	}{
		{
			name: "alg3-n4096-t8",
			n:    4096, t: 8,
			run: func(n, tt int) (*core.Result, error) {
				res, _, err := core.RunAndCheck(context.Background(), core.Config{
					Protocol: alg3.Protocol{S: 4 * tt}, N: n, T: tt, Value: ident.V1, Seed: 1,
				})
				return res, err
			},
			bound: func(n, tt int) int { return core.Alg3MsgUpperBound(n, tt, 4*tt) },
		},
		{
			name: "alg5-n2048-t8",
			n:    2048, t: 8,
			run: func(n, tt int) (*core.Result, error) {
				res, _, err := core.RunAndCheck(context.Background(), core.Config{
					Protocol: alg5.Protocol{S: tt}, N: n, T: tt, Value: ident.V1, Seed: 1,
				})
				return res, err
			},
			bound: func(n, tt int) int { return core.Alg5MsgUpperBound(n, tt, tt) },
		},
	}
	// The fleet-size runs are independent and slow; execute them on the
	// pool, then assert serially.
	results, err := runner.Map(context.Background(), runner.New(0), len(cases), func(ctx context.Context, i int) (*core.Result, error) {
		return cases[i].run(cases[i].n, cases[i].t)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := results[i]
			if got, bound := res.Sim.Report.MessagesCorrect, tc.bound(tc.n, tc.t); got > bound {
				t.Fatalf("%d messages > bound %d", got, bound)
			}
			t.Logf("%s: %s", tc.name, res.Sim.Report.String())
		})
	}
}
