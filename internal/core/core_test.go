package core_test

import (
	"context"
	"errors"
	"testing"

	"byzex/internal/adversary"
	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/protocols/alg1"
	"byzex/internal/protocols/dolevstrong"
	"byzex/internal/sig"
)

var bg = context.Background()

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := core.Run(bg, core.Config{}); err == nil {
		t.Fatal("nil protocol accepted")
	}
	if _, err := core.Run(bg, core.Config{Protocol: alg1.Protocol{}, N: 6, T: 2}); err == nil {
		t.Fatal("alg1 with n != 2t+1 accepted")
	}
}

func TestRecordProducesHistory(t *testing.T) {
	res, _, err := core.RunAndCheck(bg, core.Config{
		Protocol: alg1.Protocol{}, N: 5, T: 2, Value: ident.V1, Record: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.History == nil {
		t.Fatal("no history recorded")
	}
	if res.History.Messages() != res.Sim.Report.MessagesCorrect {
		t.Fatalf("history/metrics disagree: %d vs %d",
			res.History.Messages(), res.Sim.Report.MessagesCorrect)
	}
	if res.History.Value != ident.V1 {
		t.Fatal("history value wrong")
	}
}

func TestNoRecordByDefault(t *testing.T) {
	res, err := core.Run(bg, core.Config{Protocol: alg1.Protocol{}, N: 5, T: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.History != nil {
		t.Fatal("history recorded without Record")
	}
}

func TestDecisionErrors(t *testing.T) {
	// Manufacture results and check the classification.
	res := &core.Result{
		Sim:    nil,
		Faulty: ident.NewSet(),
	}
	_ = res
	// Validity violation: run a protocol that ignores the transmitter by
	// corrupting everyone's view — simplest is checking the error kinds
	// returned by a real disagreement, which the lowerbound tests already
	// exercise. Here check ErrNoDecision via an undecided faulty-free run
	// is impossible for our protocols, so check sentinel wrapping only.
	if !errors.Is(errWrap(core.ErrDisagreement), core.ErrDisagreement) {
		t.Fatal("sentinel wrapping broken")
	}
}

func errWrap(err error) error { return &wrapped{err} }

type wrapped struct{ inner error }

func (w *wrapped) Error() string { return "wrap: " + w.inner.Error() }
func (w *wrapped) Unwrap() error { return w.inner }

func TestFaultyOverrideWins(t *testing.T) {
	want := ident.NewSet(3)
	res, err := core.Run(bg, core.Config{
		Protocol: dolevstrong.Protocol{}, N: 6, T: 2, Value: ident.V1,
		Adversary: adversary.Silent{}, FaultyOverride: want,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Faulty.Len() != 1 || !res.Faulty.Has(3) {
		t.Fatalf("faulty %v, want {3}", res.Faulty.Sorted())
	}
}

func TestExplicitSchemeUsed(t *testing.T) {
	// Ed25519 end-to-end through a protocol run.
	scheme, err := sig.NewEd25519(5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := core.RunAndCheck(bg, core.Config{
		Protocol: alg1.Protocol{}, N: 5, T: 2, Value: ident.V1, Scheme: scheme,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicRunsSameSeed(t *testing.T) {
	run := func() int {
		res, err := core.Run(bg, core.Config{
			Protocol: dolevstrong.Protocol{}, N: 7, T: 2, Value: ident.V1,
			Adversary: adversary.Garbage{}, Seed: 77,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Sim.Report.MessagesTotal()
	}
	if run() != run() {
		t.Fatal("same seed, different traffic")
	}
}

func TestNodesExposed(t *testing.T) {
	res, err := core.Run(bg, core.Config{Protocol: alg1.Protocol{}, N: 5, T: 2, Value: ident.V1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 5 {
		t.Fatalf("nodes %d", len(res.Nodes))
	}
	for i, nd := range res.Nodes {
		if nd == nil {
			t.Fatalf("node %d nil", i)
		}
	}
}

func TestTransmitterFaultyValidityWaived(t *testing.T) {
	adv := adversary.SplitBrain{LowValue: ident.V0, HighValue: ident.V1, SplitAt: 3}
	res, err := core.Run(bg, core.Config{
		Protocol: dolevstrong.Protocol{}, N: 7, T: 2, Value: ident.V1, Adversary: adv,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Decision() must not demand condition (ii) when the transmitter is
	// faulty: with id 0 in Faulty the call uses only condition (i).
	if _, err := res.Decision(0, ident.V1); err != nil {
		t.Fatalf("decision check failed despite faulty transmitter: %v", err)
	}
}
