package core_test

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"byzex/internal/adversary"
	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/protocol"
	"byzex/internal/protocols/alg1"
	"byzex/internal/protocols/alg2"
	"byzex/internal/protocols/alg3"
	"byzex/internal/protocols/alg5"
	"byzex/internal/protocols/dolevstrong"
	"byzex/internal/protocols/lsp"
	"byzex/internal/runner"
	"byzex/internal/sig"
)

// checkAgreementConditions asserts condition (i) always, and condition (ii)
// when the transmitter is correct.
func checkAgreementConditions(t *testing.T, label string, res *core.Result, txValue ident.Value) {
	t.Helper()
	var first ident.Value
	seen := false
	for id, d := range res.Sim.Decisions {
		if res.Faulty.Has(id) {
			continue
		}
		if !d.Decided {
			t.Fatalf("%s: %v undecided", label, id)
		}
		if !seen {
			first, seen = d.Value, true
		} else if d.Value != first {
			t.Fatalf("%s: disagreement %v vs %v", label, d.Value, first)
		}
	}
	if !res.Faulty.Has(0) && seen && first != txValue {
		t.Fatalf("%s: validity violated (%v != %v)", label, first, txValue)
	}
}

// agreementErr is checkAgreementConditions as an error for use inside
// runner jobs (t.Fatalf must not be called off the test goroutine).
func agreementErr(label string, res *core.Result, txValue ident.Value) error {
	var first ident.Value
	seen := false
	for id, d := range res.Sim.Decisions {
		if res.Faulty.Has(id) {
			continue
		}
		if !d.Decided {
			return fmt.Errorf("%s: %v undecided", label, id)
		}
		if !seen {
			first, seen = d.Value, true
		} else if d.Value != first {
			return fmt.Errorf("%s: disagreement %v vs %v", label, d.Value, first)
		}
	}
	if !res.Faulty.Has(0) && seen && first != txValue {
		return fmt.Errorf("%s: validity violated (%v != %v)", label, first, txValue)
	}
	return nil
}

// TestExhaustiveFaultySetsAlg1 enumerates EVERY faulty subset of size ≤ t
// for a small Algorithm 1 system under the omission-flavoured adversary
// space (silent coalitions): 2^n subsets filtered to |S| ≤ t, both values.
// The masks are independent runs, so the enumeration goes through the
// worker pool.
func TestExhaustiveFaultySetsAlg1(t *testing.T) {
	const tt = 2
	n := 2*tt + 1
	_, err := runner.Map(context.Background(), runner.New(0), 1<<n, func(ctx context.Context, mask int) (struct{}, error) {
		faulty := make(ident.Set)
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				faulty.Add(ident.ProcID(i))
			}
		}
		if faulty.Len() > tt {
			return struct{}{}, nil
		}
		for _, v := range []ident.Value{ident.V0, ident.V1} {
			res, err := core.Run(ctx, core.Config{
				Protocol: alg1.Protocol{}, N: n, T: tt, Value: v,
				Adversary: adversary.Silent{}, FaultyOverride: faulty, Seed: int64(mask),
			})
			if err != nil {
				return struct{}{}, fmt.Errorf("mask=%b v=%v: %w", mask, v, err)
			}
			if err := agreementErr(fmt.Sprintf("mask=%b v=%v", mask, v), res, v); err != nil {
				return struct{}{}, err
			}
		}
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestExhaustiveSplitPointsAlg2 drives the split-brain transmitter through
// every audience split for Algorithm 2.
func TestExhaustiveSplitPointsAlg2(t *testing.T) {
	const tt = 3
	n := 2*tt + 1
	for split := 0; split <= n; split++ {
		adv := adversary.SplitBrain{LowValue: ident.V0, HighValue: ident.V1, SplitAt: ident.ProcID(split)}
		res, err := core.Run(context.Background(), core.Config{
			Protocol: alg2.Protocol{}, N: n, T: tt, Value: ident.V1,
			Adversary: adv, Seed: int64(split),
		})
		if err != nil {
			t.Fatal(err)
		}
		checkAgreementConditions(t, fmt.Sprintf("split=%d", split), res, ident.V1)
	}
}

// TestChaosSweep runs every protocol under the randomized chaos adversary
// across many seeds: agreement must hold for every seed, both with and
// without rushing.
func TestChaosSweep(t *testing.T) {
	cases := []struct {
		p    protocol.Protocol
		n, t int
	}{
		{alg1.Protocol{}, 7, 3},
		{alg2.Protocol{}, 7, 3},
		{alg3.Protocol{S: 3}, 20, 2},
		{alg5.Protocol{S: 2}, 30, 2},
		{dolevstrong.Protocol{}, 8, 3},
		{lsp.Protocol{}, 7, 2},
	}
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	// Flatten (case, seed, rushing) into independent pool jobs.
	perCase := seeds * 2
	_, err := runner.Map(context.Background(), runner.New(0), len(cases)*perCase, func(ctx context.Context, i int) (struct{}, error) {
		tc := cases[i/perCase]
		seed := (i % perCase) / 2
		rushing := i%2 == 1
		res, err := core.Run(ctx, core.Config{
			Protocol: tc.p, N: tc.n, T: tc.t, Value: ident.V1,
			Adversary: adversary.Chaos{}, Seed: int64(seed), Rushing: rushing,
		})
		if err != nil {
			return struct{}{}, fmt.Errorf("%s seed=%d rushing=%v: %w", tc.p.Name(), seed, rushing, err)
		}
		label := fmt.Sprintf("%s seed=%d rushing=%v", tc.p.Name(), seed, rushing)
		return struct{}{}, agreementErr(label, res, ident.V1)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentRunsIdentical runs the same configuration many times
// concurrently through the pool (exercising the per-run signature cache and
// the engine's buffer recycling under -race) and requires every run to
// produce the identical report — parallel execution must not perturb
// deterministic runs.
func TestConcurrentRunsIdentical(t *testing.T) {
	const copies = 16
	reports, err := runner.Map(context.Background(), runner.New(8), copies, func(ctx context.Context, i int) (string, error) {
		res, err := core.Run(ctx, core.Config{
			Protocol: alg2.Protocol{}, N: 9, T: 4, Value: ident.V1,
			Adversary: adversary.SplitBrain{LowValue: ident.V0, HighValue: ident.V1, SplitAt: 4},
			Seed:      7, Rushing: true,
		})
		if err != nil {
			return "", err
		}
		return res.Sim.Report.String(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < copies; i++ {
		if reports[i] != reports[0] {
			t.Fatalf("run %d diverged:\n%s\nvs\n%s", i, reports[i], reports[0])
		}
	}
	if h := reports[0]; !strings.Contains(h, "sigcache=") {
		t.Fatalf("report missing sigcache counters: %s", h)
	}
}

// TestMultiValuedAgreement: the value-generic protocols must agree on
// values outside {0, 1} (the paper notes the binary restriction is only
// for the lower-bound proofs).
func TestMultiValuedAgreement(t *testing.T) {
	for _, v := range []ident.Value{2, 5, 42, -17, 1 << 40} {
		for _, tc := range []struct {
			p    protocol.Protocol
			n, t int
		}{
			{dolevstrong.Protocol{}, 7, 2},
			{lsp.Protocol{}, 7, 2},
		} {
			res, got, err := core.RunAndCheck(context.Background(), core.Config{
				Protocol: tc.p, N: tc.n, T: tc.t, Value: v, Scheme: schemeFor(tc.p, tc.n),
			})
			if err != nil {
				t.Fatalf("%s v=%v: %v", tc.p.Name(), v, err)
			}
			if got != v {
				t.Fatalf("%s: decided %v, want %v", tc.p.Name(), got, v)
			}
			_ = res
		}
	}
}

func schemeFor(p protocol.Protocol, n int) sig.Scheme {
	if p.Name() == "lsp-om" {
		return sig.NewPlain(n)
	}
	return nil
}

// TestMultiValuedUnderSplitBrain: a transmitter equivocating between two
// non-binary values still yields agreement (on one of them or the
// default).
func TestMultiValuedUnderSplitBrain(t *testing.T) {
	adv := adversary.SplitBrain{LowValue: 7, HighValue: 9, SplitAt: 4}
	res, err := core.Run(context.Background(), core.Config{
		Protocol: dolevstrong.Protocol{}, N: 8, T: 2, Value: 9, Adversary: adv,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkAgreementConditions(t, "multi-split", res, 9)
}
