package core_test

import (
	"context"
	"testing"

	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/protocol"
	"byzex/internal/protocols/alg1"
	"byzex/internal/protocols/alg2"
	"byzex/internal/protocols/alg3"
	"byzex/internal/protocols/alg5"
)

// TestBinaryProtocolsRejectNonBinaryValues: the Algorithm 1-5 family is
// defined over {0,1} (the paper fixes the value domain for those
// constructions); passing another value must fail loudly at construction
// instead of silently deciding the wrong thing.
func TestBinaryProtocolsRejectNonBinaryValues(t *testing.T) {
	cases := []struct {
		p    protocol.Protocol
		n, t int
	}{
		{alg1.Protocol{}, 5, 2},
		{alg2.Protocol{}, 5, 2},
		{alg3.Protocol{S: 2}, 12, 2},
		{alg5.Protocol{S: 2}, 20, 2},
	}
	for _, tc := range cases {
		_, err := core.Run(context.Background(), core.Config{
			Protocol: tc.p, N: tc.n, T: tc.t, Value: ident.Value(7),
		})
		if err == nil {
			t.Errorf("%s accepted value 7", tc.p.Name())
		}
		// Binary values still work.
		if _, _, err := core.RunAndCheck(context.Background(), core.Config{
			Protocol: tc.p, N: tc.n, T: tc.t, Value: ident.V1,
		}); err != nil {
			t.Errorf("%s rejected value 1: %v", tc.p.Name(), err)
		}
	}
}
