package core_test

import (
	"context"
	"testing"

	"byzex/internal/adversary"
	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/protocol"
	"byzex/internal/protocols/alg1"
	"byzex/internal/protocols/alg2"
	"byzex/internal/protocols/alg3"
	"byzex/internal/protocols/alg5"
	"byzex/internal/protocols/dolevstrong"
)

// TestBitFlippedMessagesRejected runs every authenticated protocol with a
// coalition that corrupts one bit in each of its (otherwise correct)
// outgoing payloads. Under an unforgeable scheme every such message must be
// rejected, so the run behaves like one with silent faults: agreement and
// validity intact for both values, across seeds.
func TestBitFlippedMessagesRejected(t *testing.T) {
	cases := []struct {
		p    protocol.Protocol
		n, t int
	}{
		{alg1.Protocol{}, 7, 3},
		{alg2.Protocol{}, 7, 3},
		{alg3.Protocol{S: 3}, 20, 2},
		{alg5.Protocol{S: 2}, 30, 2},
		{dolevstrong.Protocol{}, 8, 3},
	}
	for _, tc := range cases {
		for seed := int64(0); seed < 4; seed++ {
			for _, v := range []ident.Value{ident.V0, ident.V1} {
				res, err := core.Run(context.Background(), core.Config{
					Protocol: tc.p, N: tc.n, T: tc.t, Value: v,
					Adversary: adversary.BitFlipper{}, Seed: seed,
				})
				if err != nil {
					t.Fatalf("%s seed=%d: %v", tc.p.Name(), seed, err)
				}
				checkAgreementConditions(t, tc.p.Name(), res, v)
				for id, d := range res.Sim.Decisions {
					if !res.Faulty.Has(id) && d.Value != v {
						t.Fatalf("%s seed=%d v=%v: corrupted relay changed the outcome",
							tc.p.Name(), seed, v)
					}
				}
			}
		}
	}
}
