package core_test

import (
	"context"
	"fmt"
	"log"

	"byzex/internal/adversary"
	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/protocols/alg1"
	"byzex/internal/protocols/alg5"
)

// ExampleRunAndCheck runs the paper's O(n+t²)-message algorithm with a
// silent Byzantine coalition and prints the common decision.
func ExampleRunAndCheck() {
	res, decision, err := core.RunAndCheck(context.Background(), core.Config{
		Protocol:  alg5.Protocol{S: 2},
		N:         25,
		T:         2,
		Value:     ident.V1,
		Adversary: adversary.Silent{},
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decision: %v, faulty: %v\n", decision, res.Faulty.Sorted())
	// Output:
	// decision: v=1, faulty: [p23 p24]
}

// ExampleRun_splitBrain shows condition (i) surviving an equivocating
// transmitter: the correct processors converge even though the faulty
// transmitter shows different values to different halves of the system.
func ExampleRun_splitBrain() {
	res, err := core.Run(context.Background(), core.Config{
		Protocol: alg1.Protocol{},
		N:        9,
		T:        4,
		Value:    ident.V1,
		Adversary: adversary.SplitBrain{
			LowValue: ident.V0, HighValue: ident.V1, SplitAt: 5,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	values := make(map[ident.Value]int)
	for id, d := range res.Sim.Decisions {
		if !res.Faulty.Has(id) {
			values[d.Value]++
		}
	}
	fmt.Printf("distinct decisions among correct processors: %d\n", len(values))
	// Output:
	// distinct decisions among correct processors: 1
}

// ExampleSigLowerBound evaluates Theorem 1's closed form.
func ExampleSigLowerBound() {
	fmt.Println(core.SigLowerBound(100, 9))
	// Output:
	// 250
}
