package core_test

import (
	"context"
	"testing"

	"byzex/internal/adversary"
	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/protocol"
	"byzex/internal/protocols/alg1"
	"byzex/internal/protocols/dolevstrong"
)

// runCheck executes cfg and fails the test on any violation, returning the
// decision and result.
func runCheck(t *testing.T, cfg core.Config) (*core.Result, ident.Value) {
	t.Helper()
	res, v, err := core.RunAndCheck(context.Background(), cfg)
	if err != nil {
		t.Fatalf("%s n=%d t=%d v=%v adversary=%v: %v",
			cfg.Protocol.Name(), cfg.N, cfg.T, cfg.Value, advName(cfg.Adversary), err)
	}
	return res, v
}

func advName(a adversary.Adversary) string {
	if a == nil {
		return "none"
	}
	return a.Name()
}

func protocols(t int) map[string]protocol.Protocol {
	_ = t
	return map[string]protocol.Protocol{
		"alg1":         alg1.Protocol{},
		"dolev-strong": dolevstrong.Protocol{},
	}
}

func TestSmokeFaultFree(t *testing.T) {
	for name, p := range protocols(2) {
		for _, v := range []ident.Value{ident.V0, ident.V1} {
			res, got := runCheck(t, core.Config{Protocol: p, N: 5, T: 2, Value: v})
			if got != v {
				t.Errorf("%s: decided %v, want %v", name, got, v)
			}
			if res.Sim.Report.MessagesCorrect == 0 {
				t.Errorf("%s: no messages recorded", name)
			}
		}
	}
}

func TestSmokeSplitBrain(t *testing.T) {
	for name, p := range protocols(2) {
		adv := adversary.SplitBrain{LowValue: ident.V0, HighValue: ident.V1, SplitAt: 3}
		res, err := core.Run(context.Background(), core.Config{
			Protocol: p, N: 5, T: 2, Value: ident.V1, Adversary: adv,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Transmitter faulty: only condition (i) applies.
		var first ident.Value
		seen := false
		for id, d := range res.Sim.Decisions {
			if res.Faulty.Has(id) {
				continue
			}
			if !d.Decided {
				t.Fatalf("%s: %v undecided", name, id)
			}
			if !seen {
				first, seen = d.Value, true
			} else if d.Value != first {
				t.Fatalf("%s: disagreement %v vs %v", name, d.Value, first)
			}
		}
	}
}

func TestSmokeAlg1Bound(t *testing.T) {
	for tt := 1; tt <= 8; tt++ {
		n := 2*tt + 1
		res, _ := runCheck(t, core.Config{Protocol: alg1.Protocol{}, N: n, T: tt, Value: ident.V1})
		if got, bound := res.Sim.Report.MessagesCorrect, core.Alg1MsgUpperBound(tt); got > bound {
			t.Errorf("t=%d: %d messages > bound %d", tt, got, bound)
		}
		if res.Phases != core.Alg1Phases(tt) {
			t.Errorf("t=%d: phases %d != %d", tt, res.Phases, core.Alg1Phases(tt))
		}
	}
}
