package core_test

import (
	"testing"
	"testing/quick"

	"byzex/internal/core"
)

func TestClosedForms(t *testing.T) {
	cases := []struct {
		name      string
		got, want int
	}{
		{"SigLowerBound(8,3)", core.SigLowerBound(8, 3), 8},
		{"SigLowerBound(100,9)", core.SigLowerBound(100, 9), 250},
		{"MsgLowerBound small t", core.MsgLowerBound(101, 2), 50},
		{"MsgLowerBound big t", core.MsgLowerBound(10, 8), 25},
		{"Alg1MsgUpperBound(4)", core.Alg1MsgUpperBound(4), 40},
		{"Alg1Phases(4)", core.Alg1Phases(4), 6},
		{"Alg2MsgUpperBound(4)", core.Alg2MsgUpperBound(4), 100},
		{"Alg2Phases(4)", core.Alg2Phases(4), 15},
		{"Alg3MsgUpperBound(100,3,12)", core.Alg3MsgUpperBound(100, 3, 12), 200 + 100 + 324},
		{"Alg3Phases(3,12)", core.Alg3Phases(3, 12), 30},
		{"Alg4MsgUpperBound(4)", core.Alg4MsgUpperBound(4), 144},
		{"Alg5Alpha(1)", core.Alg5Alpha(1), 9},
		{"Alg5Alpha(4)", core.Alg5Alpha(4), 25},
		{"Alg5Alpha(10)", core.Alg5Alpha(10), 64},
		{"DolevStrongPhases(4)", core.DolevStrongPhases(4), 5},
		{"TradeoffPhases(8,2)", core.TradeoffPhases(8, 2), 15},
		{"TradeoffPhases(8,3)", core.TradeoffPhases(8, 3), 14},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
}

func TestMsgLowerBoundTakesMax(t *testing.T) {
	f := func(nRaw, tRaw uint8) bool {
		n := int(nRaw)%500 + 2
		tt := int(tRaw) % n
		got := core.MsgLowerBound(n, tt)
		a := (n - 1) / 2
		half := 1 + float64(tt)/2
		b := int(half * half)
		return got >= a && got >= b && (got == a || got == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAlg5AlphaProperties(t *testing.T) {
	// α is a perfect square, strictly greater than 6t, and minimal.
	f := func(tRaw uint8) bool {
		tt := int(tRaw)%200 + 1
		a := core.Alg5Alpha(tt)
		if a <= 6*tt {
			return false
		}
		r := 0
		for r*r < a {
			r++
		}
		if r*r != a {
			return false
		}
		// Minimality: (r-1)² must not exceed 6t.
		return (r-1)*(r-1) <= 6*tt
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAlg5PhasesMonotone(t *testing.T) {
	// More tolerance or bigger trees never shrink the schedule bound.
	for tt := 1; tt < 8; tt++ {
		for s := 1; s < 16; s++ {
			if core.Alg5Phases(tt+1, s) < core.Alg5Phases(tt, s) {
				t.Fatalf("phases decreased in t at (%d,%d)", tt, s)
			}
			if core.Alg5Phases(tt, s+1) < core.Alg5Phases(tt, s) {
				t.Fatalf("phases decreased in s at (%d,%d)", tt, s)
			}
		}
	}
}

func TestDegenerateParams(t *testing.T) {
	if core.Alg3MsgUpperBound(10, 1, 0) <= 0 {
		t.Fatal("s=0 not normalized")
	}
	if core.Alg5MsgUpperBound(10, 1, 0) <= 0 {
		t.Fatal("alg5 s=0 not normalized")
	}
	if core.Alg5Phases(1, 0) <= 0 {
		t.Fatal("alg5 phases s=0 not normalized")
	}
}
