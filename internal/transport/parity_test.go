package transport_test

import (
	"context"
	"testing"
	"time"

	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/protocol"
	"byzex/internal/protocols/alg1"
	"byzex/internal/protocols/alg2"
	"byzex/internal/protocols/alg3"
	"byzex/internal/protocols/alg5"
	"byzex/internal/protocols/dolevstrong"
	"byzex/internal/sig"
	"byzex/internal/transport"
)

// TestEngineTCPParity runs the same deterministic protocol instance on the
// in-memory engine and over TCP with an identical signature scheme: the
// substrates must produce identical decisions and identical message,
// signature and byte totals (lock-step synchrony means goroutine
// scheduling cannot change what is sent).
func TestEngineTCPParity(t *testing.T) {
	cases := []struct {
		p    protocol.Protocol
		n, t int
	}{
		{alg1.Protocol{}, 7, 3},
		{alg2.Protocol{}, 5, 2},
		{alg3.Protocol{S: 3}, 14, 2},
		{alg5.Protocol{S: 2}, 25, 2},
		{dolevstrong.Protocol{}, 6, 2},
	}
	for _, tc := range cases {
		for _, v := range []ident.Value{ident.V0, ident.V1} {
			scheme := sig.NewHMAC(tc.n, 321)

			engRes, _, err := core.RunAndCheck(context.Background(), core.Config{
				Protocol: tc.p, N: tc.n, T: tc.t, Value: v, Scheme: scheme,
			})
			if err != nil {
				t.Fatalf("%s engine: %v", tc.p.Name(), err)
			}

			tcpRes, err := transport.Run(context.Background(), transport.Config{
				Protocol: tc.p, N: tc.n, T: tc.t, Value: v, Scheme: scheme,
				PhaseTimeout: 10 * time.Second,
			})
			if err != nil {
				t.Fatalf("%s tcp: %v", tc.p.Name(), err)
			}

			for id, ed := range engRes.Sim.Decisions {
				td, ok := tcpRes.Decisions[id]
				if !ok || td != ed {
					t.Fatalf("%s v=%v: decision of %v differs (engine %v, tcp %v)",
						tc.p.Name(), v, id, ed, td)
				}
			}
			er, tr := engRes.Sim.Report, tcpRes.Report
			if er.MessagesCorrect != tr.MessagesCorrect {
				t.Fatalf("%s v=%v: messages differ (engine %d, tcp %d)",
					tc.p.Name(), v, er.MessagesCorrect, tr.MessagesCorrect)
			}
			if er.SignaturesCorrect != tr.SignaturesCorrect {
				t.Fatalf("%s v=%v: signatures differ (engine %d, tcp %d)",
					tc.p.Name(), v, er.SignaturesCorrect, tr.SignaturesCorrect)
			}
			if er.BytesCorrect != tr.BytesCorrect {
				t.Fatalf("%s v=%v: bytes differ (engine %d, tcp %d)",
					tc.p.Name(), v, er.BytesCorrect, tr.BytesCorrect)
			}
		}
	}
}
