package transport_test

import (
	"context"
	"testing"
	"time"

	"byzex/internal/adversary"
	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/protocol"
	"byzex/internal/protocols/alg1"
	"byzex/internal/protocols/alg2"
	"byzex/internal/protocols/alg3"
	"byzex/internal/protocols/alg5"
	"byzex/internal/protocols/dolevstrong"
	"byzex/internal/sig"
	"byzex/internal/trace"
	"byzex/internal/transport"
)

// TestEngineTCPParity runs the same deterministic protocol instance on the
// in-memory engine and over TCP with an identical signature scheme: the
// substrates must produce identical decisions and identical message,
// signature and byte totals (lock-step synchrony means goroutine
// scheduling cannot change what is sent).
func TestEngineTCPParity(t *testing.T) {
	cases := []struct {
		p    protocol.Protocol
		n, t int
	}{
		{alg1.Protocol{}, 7, 3},
		{alg2.Protocol{}, 5, 2},
		{alg3.Protocol{S: 3}, 14, 2},
		{alg5.Protocol{S: 2}, 25, 2},
		{dolevstrong.Protocol{}, 6, 2},
	}
	for _, tc := range cases {
		for _, v := range []ident.Value{ident.V0, ident.V1} {
			scheme := sig.NewHMAC(tc.n, 321)

			engRes, _, err := core.RunAndCheck(context.Background(), core.Config{
				Protocol: tc.p, N: tc.n, T: tc.t, Value: v, Scheme: scheme,
			})
			if err != nil {
				t.Fatalf("%s engine: %v", tc.p.Name(), err)
			}

			tcpRes, err := transport.Run(context.Background(), transport.Config{
				Protocol: tc.p, N: tc.n, T: tc.t, Value: v, Scheme: scheme,
				PhaseTimeout: 10 * time.Second,
			})
			if err != nil {
				t.Fatalf("%s tcp: %v", tc.p.Name(), err)
			}

			for id, ed := range engRes.Sim.Decisions {
				td, ok := tcpRes.Decisions[id]
				if !ok || td != ed {
					t.Fatalf("%s v=%v: decision of %v differs (engine %v, tcp %v)",
						tc.p.Name(), v, id, ed, td)
				}
			}
			er, tr := engRes.Sim.Report, tcpRes.Report
			if er.MessagesCorrect != tr.MessagesCorrect {
				t.Fatalf("%s v=%v: messages differ (engine %d, tcp %d)",
					tc.p.Name(), v, er.MessagesCorrect, tr.MessagesCorrect)
			}
			if er.SignaturesCorrect != tr.SignaturesCorrect {
				t.Fatalf("%s v=%v: signatures differ (engine %d, tcp %d)",
					tc.p.Name(), v, er.SignaturesCorrect, tr.SignaturesCorrect)
			}
			if er.BytesCorrect != tr.BytesCorrect {
				t.Fatalf("%s v=%v: bytes differ (engine %d, tcp %d)",
					tc.p.Name(), v, er.BytesCorrect, tr.BytesCorrect)
			}
		}
	}
}

// TestRunClusterSharedConfig drives the unified Run API: the SAME
// core.Config value runs on both substrates, decisions are judged by the
// shared Result.Decision methods, and the cluster's execution trace must
// agree with its metrics report exactly as the engine's does.
func TestRunClusterSharedConfig(t *testing.T) {
	cases := []struct {
		name string
		cfg  core.Config
	}{
		{"fault-free", core.Config{
			Protocol: alg1.Protocol{}, N: 7, T: 3, Value: ident.V1,
			Scheme: sig.NewHMAC(7, 55), Seed: 55,
		}},
		{"silent-coalition", core.Config{
			Protocol: dolevstrong.Protocol{}, N: 8, T: 2, Value: ident.V1,
			Scheme: sig.NewHMAC(8, 56), Seed: 56,
			Adversary: adversary.Silent{}, FaultyOverride: ident.NewSet(6, 7),
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			engRes, err := core.Run(context.Background(), tc.cfg)
			if err != nil {
				t.Fatalf("engine: %v", err)
			}
			engDec, err := engRes.Decision(tc.cfg.Transmitter, tc.cfg.Value)
			if err != nil {
				t.Fatalf("engine decision: %v", err)
			}

			clCfg := tc.cfg
			buf := trace.NewBuffer()
			clCfg.Trace = buf
			clRes, err := transport.RunCluster(context.Background(), clCfg,
				transport.Net{PhaseTimeout: 10 * time.Second})
			if err != nil {
				t.Fatalf("cluster: %v", err)
			}
			clDec, err := clRes.Decision(tc.cfg.Transmitter, tc.cfg.Value)
			if err != nil {
				t.Fatalf("cluster decision: %v", err)
			}
			if engDec != clDec {
				t.Fatalf("decisions differ: engine %v, cluster %v", engDec, clDec)
			}
			if engRes.Faulty.Len() != clRes.Faulty.Len() ||
				engRes.Faulty.Intersect(clRes.Faulty).Len() != engRes.Faulty.Len() {
				t.Fatalf("faulty sets differ: engine %v, cluster %v",
					engRes.Faulty.Sorted(), clRes.Faulty.Sorted())
			}
			if engRes.Sim.Report.MessagesCorrect != clRes.Report.MessagesCorrect {
				t.Fatalf("messages differ: engine %d, cluster %d",
					engRes.Sim.Report.MessagesCorrect, clRes.Report.MessagesCorrect)
			}

			// The cluster's merged trace must agree with its own metrics.
			sum := trace.Summarize(buf.Events())
			if err := sum.CheckReport(clRes.Report); err != nil {
				t.Fatalf("cluster trace vs report: %v", err)
			}
			if sum.Decided+sum.Undecided != tc.cfg.N {
				t.Fatalf("%d decision events, want %d", sum.Decided+sum.Undecided, tc.cfg.N)
			}
			if sum.Corrupted != clRes.Faulty.Len() {
				t.Fatalf("%d corrupt events, faulty set has %d", sum.Corrupted, clRes.Faulty.Len())
			}
		})
	}
}

// TestRunClusterTraceDeterministic pins the merge order: two identical
// cluster runs — goroutine scheduling aside — must produce byte-identical
// JSONL traces.
func TestRunClusterTraceDeterministic(t *testing.T) {
	run := func() []trace.Event {
		buf := trace.NewBuffer()
		_, err := transport.RunCluster(context.Background(), core.Config{
			Protocol: alg2.Protocol{}, N: 5, T: 2, Value: ident.V1,
			Scheme: sig.NewHMAC(5, 77), Seed: 77,
			Adversary: adversary.Silent{}, FaultyOverride: ident.NewSet(4),
			Trace: buf,
		}, transport.Net{PhaseTimeout: 10 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		return buf.Events()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no events recorded")
	}
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
