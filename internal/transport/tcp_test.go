package transport_test

import (
	"context"
	"testing"
	"time"

	"byzex/internal/adversary"
	"byzex/internal/ident"
	"byzex/internal/protocols/alg1"
	"byzex/internal/protocols/alg2"
	"byzex/internal/protocols/alg3"
	"byzex/internal/protocols/alg5"
	"byzex/internal/protocols/dolevstrong"
	"byzex/internal/transport"
)

func checkAgreement(t *testing.T, res *transport.Result, transmitterValue ident.Value, transmitterFaulty bool) {
	t.Helper()
	var first ident.Value
	seen := false
	for id, d := range res.Decisions {
		if res.Faulty.Has(id) {
			continue
		}
		if !d.Decided {
			t.Fatalf("%v undecided", id)
		}
		if !seen {
			first, seen = d.Value, true
		} else if d.Value != first {
			t.Fatalf("disagreement: %v vs %v", d.Value, first)
		}
	}
	if !transmitterFaulty && first != transmitterValue {
		t.Fatalf("decided %v, transmitter sent %v", first, transmitterValue)
	}
}

func TestAlg1OverTCP(t *testing.T) {
	for _, v := range []ident.Value{ident.V0, ident.V1} {
		res, err := transport.Run(context.Background(), transport.Config{
			N: 7, T: 3, Value: v, Protocol: alg1.Protocol{},
			PhaseTimeout: 10 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		checkAgreement(t, res, v, false)
		if res.Report.MessagesCorrect == 0 {
			t.Fatal("no messages counted")
		}
	}
}

func TestDolevStrongOverTCPWithSplitBrain(t *testing.T) {
	adv := adversary.SplitBrain{LowValue: ident.V0, HighValue: ident.V1, SplitAt: 4}
	res, err := transport.Run(context.Background(), transport.Config{
		N: 7, T: 2, Value: ident.V1, Protocol: dolevstrong.Protocol{},
		Adversary: adv, Faulty: ident.NewSet(0),
		PhaseTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkAgreement(t, res, ident.V1, true)
}

func TestAlg3OverTCPWithCrash(t *testing.T) {
	adv := adversary.Crash{CrashAfter: 3}
	res, err := transport.Run(context.Background(), transport.Config{
		N: 16, T: 2, Value: ident.V1, Protocol: alg3.Protocol{S: 3},
		Adversary: adv, Faulty: ident.NewSet(14, 15),
		PhaseTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkAgreement(t, res, ident.V1, false)
}

func TestAlg5OverTCP(t *testing.T) {
	// The most intricate protocol (three-mode schedule, embedded Algorithm
	// 2 and per-block Algorithm 4 instances) must run unmodified over real
	// sockets.
	for _, v := range []ident.Value{ident.V0, ident.V1} {
		res, err := transport.Run(context.Background(), transport.Config{
			N: 30, T: 2, Value: v, Protocol: alg5.Protocol{S: 2},
			PhaseTimeout: 10 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		checkAgreement(t, res, v, false)
	}
}

func TestContextCancellationAborts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := transport.Run(ctx, transport.Config{
		N: 4, T: 1, Value: ident.V1, Protocol: dolevstrong.Protocol{},
		PhaseTimeout: time.Second,
	})
	if err == nil {
		t.Fatal("cancelled run completed")
	}
}

func TestMutedPeerTimeoutPath(t *testing.T) {
	// A processor whose frames never arrive (dead machine, sockets still
	// open) forces everybody through the per-phase timeout; agreement must
	// survive because the silence is indistinguishable from a crash fault.
	mute := ident.NewSet(3)
	res, err := transport.Run(context.Background(), transport.Config{
		N: 4, T: 1, Value: ident.V1, Protocol: dolevstrong.Protocol{},
		Adversary: adversary.Silent{}, Faulty: mute, Mute: mute,
		PhaseTimeout: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkAgreement(t, res, ident.V1, false)
}

func TestAlg2OverTCPMatchesEngineCounts(t *testing.T) {
	// The TCP substrate must deliver exactly the same protocol behaviour as
	// the in-memory engine: same decisions, same message totals.
	res, err := transport.Run(context.Background(), transport.Config{
		N: 7, T: 3, Value: ident.V1, Protocol: alg2.Protocol{},
		PhaseTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkAgreement(t, res, ident.V1, false)
	// Worst-case fault-free Algorithm 2 count, from the engine runs in the
	// alg2 tests: for t=3 the engine sends a deterministic total; here we
	// only require the Theorem 4 bound because goroutine scheduling cannot
	// change counts (lock-step phases), but keep the check independent.
	if got, bound := res.Report.MessagesCorrect, 5*3*3+5*3; got > bound {
		t.Fatalf("%d msgs > Theorem 4 bound %d", got, bound)
	}
}
