// Package transport runs a protocol instance over a real network stack:
// every processor is a goroutine with a TCP listener on localhost, the full
// mesh is wired with length-prefixed frames, and lock-step synchrony is
// enforced by the classical α-synchronizer pattern — each processor sends
// exactly one frame (possibly empty) to every peer per phase and advances
// once it holds the previous phase's frame from every peer (or the
// per-phase timeout fires, which tolerates crashed peers).
//
// The same sim.Node state machines that drive the in-memory engine run
// unmodified over TCP; only the delivery substrate changes. Runs are
// described by the same core.Config the engine consumes — RunCluster reuses
// core.NewSetup for defaulting, corruption choice and node construction, and
// core.CheckDecisions for judging agreement, so the two substrates cannot
// drift. The network-specific knobs (phase timeout, muted processors) live
// in Net.
package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"byzex/internal/adversary"
	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/metrics"
	"byzex/internal/protocol"
	"byzex/internal/sig"
	"byzex/internal/sim"
	"byzex/internal/trace"
	"byzex/internal/wire"
)

// Errors.
var (
	// ErrStalled indicates a processor gave up waiting for a phase.
	ErrStalled = errors.New("transport: phase stalled beyond timeout")
)

// maxFrame bounds a single frame on the wire (16 MiB).
const maxFrame = 16 << 20

// ErrFrameTooLarge is returned by the frame reader when a peer announces a
// body larger than maxFrame. The oversized body is never allocated or read:
// a hostile or corrupt length header costs the receiver 4 bytes, not 4 GiB.
var ErrFrameTooLarge = errors.New("transport: frame exceeds size limit")

// Net carries the network-substrate knobs of a cluster run — everything a
// TCP execution needs beyond the protocol description in core.Config.
type Net struct {
	// PhaseTimeout is the per-phase wait for missing peers (default 5s).
	PhaseTimeout time.Duration

	// Mute lists processors whose frames are never flushed — simulating a
	// machine that died without closing its sockets. Peers fall back to
	// the phase timeout when waiting on a muted processor, so runs with
	// Mute processors take ≈ phases × PhaseTimeout; keep the timeout small
	// in tests. Muted processors should also be in the faulty set: a
	// correct processor cannot be muted without violating the synchrony
	// assumption the protocols rely on.
	Mute ident.Set
}

// Config describes a TCP cluster run with a transport-private options
// struct.
//
// Deprecated: Config duplicated core.Config field by field and let the two
// substrates drift in how they defaulted schemes and resolved faulty sets.
// New code should call RunCluster with a core.Config plus Net; Config and
// Run remain as thin shims with the historical defaults.
type Config struct {
	// N, T, Transmitter, Value, Protocol, Scheme: as in core.Config.
	N           int
	T           int
	Transmitter ident.ProcID
	Value       ident.Value
	Protocol    protocol.Protocol
	Scheme      sig.Scheme

	// Adversary and Faulty select Byzantine processors (optional). Unlike
	// core.Config, Faulty is always explicit: the adversary's Corrupt
	// method is never consulted.
	Adversary adversary.Adversary
	Faulty    ident.Set

	// PhaseTimeout and Mute: as in Net.
	PhaseTimeout time.Duration
	Mute         ident.Set

	// Seed drives deterministic randomness (scheme and adversary).
	Seed int64
}

// Result mirrors sim.Result for a cluster run.
type Result struct {
	Decisions map[ident.ProcID]sim.Decision
	Report    metrics.Report
	Faulty    ident.Set
}

// Decision returns the common decision of the correct processors, or an
// agreement violation error, using the same judge as the in-memory engine
// (core.CheckDecisions).
func (r *Result) Decision(transmitter ident.ProcID, transmitterValue ident.Value) (ident.Value, error) {
	return core.CheckDecisions(r.Decisions, r.Faulty, transmitter, transmitterValue)
}

// Run executes the configured protocol over localhost TCP.
//
// Deprecated: use RunCluster. Run adapts the legacy Config onto it,
// preserving the historical default-scheme seed and the never-call-Corrupt
// faulty semantics.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	scheme := cfg.Scheme
	if scheme == nil && cfg.N > 0 {
		scheme = sig.NewHMAC(cfg.N, cfg.Seed^0x7cb)
	}
	fo := cfg.Faulty
	if cfg.Adversary != nil && fo == nil {
		// The legacy API never consulted Adversary.Corrupt; pin the
		// (empty) explicit set so NewSetup doesn't either.
		fo = make(ident.Set)
	}
	return RunCluster(ctx, core.Config{
		Protocol:       cfg.Protocol,
		N:              cfg.N,
		T:              cfg.T,
		Transmitter:    cfg.Transmitter,
		Value:          cfg.Value,
		Scheme:         scheme,
		Adversary:      cfg.Adversary,
		FaultyOverride: fo,
		Seed:           cfg.Seed,
	}, Net{PhaseTimeout: cfg.PhaseTimeout, Mute: cfg.Mute})
}

// RunCluster executes cfg over localhost TCP: every processor is a
// goroutine with its own listener, wired into a full mesh. Setup (scheme
// defaulting, corruption, node construction) is shared with core.Run via
// core.NewSetup.
//
// Tracing: the sink is resolved exactly as in core.Run (cfg.Trace, else the
// context's). Each peer records its events privately, bucketed by wall
// phase; after the run the per-peer streams are merged in (wall phase, peer
// id, emission order) order, with PhaseStart/PhaseEnd markers synthesized
// around each wall phase — so the trace is deterministic even though peers
// execute concurrently. Signature-cache events and cache statistics are not
// recorded here: peers share one verifier, so the hit/miss split depends on
// goroutine interleaving.
func RunCluster(ctx context.Context, cfg core.Config, netCfg Net) (*Result, error) {
	setup, err := core.NewSetup(cfg)
	if err != nil {
		return nil, err
	}
	if netCfg.PhaseTimeout <= 0 {
		netCfg.PhaseTimeout = 5 * time.Second
	}
	sink := cfg.ResolveTrace(ctx)
	core.EmitCorruptions(sink, setup.Faulty)

	collector := metrics.NewCollector(setup.Faulty)
	var collectorMu sync.Mutex
	onSend := func(phase int, from ident.ProcID, sigTotal, signers, bytes int) {
		collectorMu.Lock()
		defer collectorMu.Unlock()
		collector.OnSend(phase, from, sigTotal, signers, bytes)
	}

	// Build listeners around the prepared nodes.
	wallPhases := setup.Phases + 1
	peers := make([]*peer, cfg.N)
	for i, node := range setup.Nodes {
		id := ident.ProcID(i)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("transport: listen: %w", err)
		}
		var rec *phaseRecorder
		if sink != nil {
			rec = newPhaseRecorder(wallPhases)
		}
		peers[i] = newPeer(peerConfig{
			id: id, n: cfg.N, t: cfg.T, transmitter: cfg.Transmitter,
			phases: setup.Phases, timeout: netCfg.PhaseTimeout,
			muted: netCfg.Mute.Has(id), faulty: setup.Faulty,
		}, node, ln, rec, onSend)
	}
	addrs := make([]string, cfg.N)
	for i, p := range peers {
		addrs[i] = p.ln.Addr().String()
	}

	// Run all peers.
	var wg sync.WaitGroup
	errs := make([]error, cfg.N)
	for i, p := range peers {
		wg.Add(1)
		go func(i int, p *peer) {
			defer wg.Done()
			errs[i] = p.run(ctx, addrs)
		}(i, p)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil && !setup.Faulty.Has(ident.ProcID(i)) {
			return nil, fmt.Errorf("transport: processor %d: %w", i, err)
		}
	}

	// Merge the per-peer trace streams deterministically.
	if sink != nil {
		for ph := 1; ph <= wallPhases; ph++ {
			sink.Emit(trace.Event{Kind: trace.KindPhaseStart, Phase: ph, From: ident.None, To: ident.None})
			for _, p := range peers {
				for _, e := range p.rec.buckets[ph] {
					sink.Emit(e)
				}
			}
			sink.Emit(trace.Event{Kind: trace.KindPhaseEnd, Phase: ph, From: ident.None, To: ident.None})
		}
	}

	res := &Result{
		Decisions: make(map[ident.ProcID]sim.Decision, cfg.N),
		Faulty:    setup.Faulty.Clone(),
	}
	collectorMu.Lock()
	res.Report = collector.Report()
	collectorMu.Unlock()
	for i, p := range peers {
		v, ok := p.node.Decide()
		if sink != nil {
			sink.Emit(trace.Event{
				Kind: trace.KindDecide, Phase: wallPhases,
				From: ident.ProcID(i), To: ident.None, Value: v, Flag: ok,
			})
		}
		res.Decisions[ident.ProcID(i)] = sim.Decision{Value: v, Decided: ok}
	}
	return res, nil
}

// phaseRecorder is a per-peer trace sink. Each peer goroutine owns exactly
// one recorder (so emission needs no locking), bucketing events by the wall
// phase in which they occurred; RunCluster drains the buckets after all
// goroutines have joined.
type phaseRecorder struct {
	buckets [][]trace.Event // indexed by wall phase; index 0 unused
	cur     int
}

func newPhaseRecorder(wallPhases int) *phaseRecorder {
	return &phaseRecorder{buckets: make([][]trace.Event, wallPhases+1), cur: 1}
}

// Emit implements trace.Sink for the owning peer's goroutine.
func (r *phaseRecorder) Emit(e trace.Event) {
	r.buckets[r.cur] = append(r.buckets[r.cur], e)
}

// peerConfig is the per-processor slice of a cluster run's configuration.
type peerConfig struct {
	id          ident.ProcID
	n, t        int
	transmitter ident.ProcID
	phases      int
	timeout     time.Duration
	muted       bool
	faulty      ident.Set
}

// peer is one processor's runtime: listener, outbound connections, inbound
// frame buffers keyed by phase.
type peer struct {
	cfg     peerConfig
	node    sim.Node
	ln      net.Listener
	rec     *phaseRecorder // nil when tracing is disabled
	onSend  func(phase int, from ident.ProcID, sigTotal, signers, bytes int)
	mu      sync.Mutex
	cond    *sync.Cond
	inbound map[int]map[ident.ProcID][]sim.Envelope // phase -> sender -> msgs
	arrived map[int]ident.Set                       // phase -> senders heard from
}

func newPeer(cfg peerConfig, node sim.Node, ln net.Listener, rec *phaseRecorder,
	onSend func(int, ident.ProcID, int, int, int)) *peer {
	p := &peer{
		cfg: cfg, node: node, ln: ln, rec: rec, onSend: onSend,
		inbound: make(map[int]map[ident.ProcID][]sim.Envelope),
		arrived: make(map[int]ident.Set),
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

func (p *peer) noteFrame(phase int, from ident.ProcID, msgs []sim.Envelope) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.inbound[phase] == nil {
		p.inbound[phase] = make(map[ident.ProcID][]sim.Envelope)
	}
	p.inbound[phase][from] = append(p.inbound[phase][from], msgs...)
	if p.arrived[phase] == nil {
		p.arrived[phase] = make(ident.Set)
	}
	p.arrived[phase].Add(from)
	p.cond.Broadcast()
}

// waitPhase blocks until frames for the phase arrived from all peers or the
// timeout fires; it returns the inbox.
func (p *peer) waitPhase(phase int) []sim.Envelope {
	deadline := time.Now().Add(p.cfg.timeout)
	timer := time.AfterFunc(p.cfg.timeout, func() {
		p.mu.Lock()
		defer p.mu.Unlock()
		p.cond.Broadcast()
	})
	defer timer.Stop()

	p.mu.Lock()
	defer p.mu.Unlock()
	want := p.cfg.n - 1
	for p.arrived[phase].Len() < want && time.Now().Before(deadline) {
		p.cond.Wait()
	}
	var inbox []sim.Envelope
	for _, msgs := range p.inbound[phase] {
		inbox = append(inbox, msgs...)
	}
	delete(p.inbound, phase)
	delete(p.arrived, phase)
	return inbox
}

func (p *peer) acceptLoop(done <-chan struct{}) {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		go func(c net.Conn) {
			defer func() { _ = c.Close() }()
			for {
				select {
				case <-done:
					return
				default:
				}
				phase, from, msgs, err := readFrame(c, p.cfg.id)
				if err != nil {
					return
				}
				p.noteFrame(phase, from, msgs)
			}
		}(conn)
	}
}

func (p *peer) run(ctx context.Context, addrs []string) error {
	done := make(chan struct{})
	defer close(done)
	defer func() { _ = p.ln.Close() }()
	go p.acceptLoop(done)

	// Dial the mesh.
	conns := make([]net.Conn, len(addrs))
	for i, addr := range addrs {
		if ident.ProcID(i) == p.cfg.id {
			continue
		}
		var err error
		for attempt := 0; attempt < 50; attempt++ {
			conns[i], err = net.Dial("tcp", addr)
			if err == nil {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if err != nil {
			return fmt.Errorf("dial %s: %w", addr, err)
		}
	}
	defer func() {
		for _, c := range conns {
			if c != nil {
				_ = c.Close()
			}
		}
	}()

	for phase := 1; phase <= p.cfg.phases+1; phase++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if p.rec != nil {
			p.rec.cur = phase
		}
		var inbox []sim.Envelope
		if phase > 1 {
			inbox = p.waitPhase(phase - 1)
		}
		sortInbox(inbox)
		if p.rec != nil {
			// Mirror the engine: one Deliver event per envelope handed to
			// Step, stamped with the wall phase of the delivery.
			for i := range inbox {
				p.rec.Emit(trace.Event{
					Kind: trace.KindDeliver, Phase: phase, From: inbox[i].From, To: inbox[i].To,
					Sigs: inbox[i].SigTotal, Signers: len(inbox[i].Signers), Bytes: len(inbox[i].Payload),
				})
			}
		}

		// Buffer sends per recipient for this phase.
		outgoing := make(map[ident.ProcID][]sim.Envelope)
		nctx := sim.NewContext(p.cfg.id, p.cfg.n, p.cfg.t, p.cfg.transmitter, phase, p.cfg.phases, func(e sim.Envelope) {
			p.onSend(e.Phase, e.From, e.SigTotal, len(e.Signers), len(e.Payload))
			if p.rec != nil {
				p.rec.Emit(trace.Event{
					Kind: trace.KindSend, Phase: e.Phase, From: e.From, To: e.To,
					Sigs: e.SigTotal, Signers: len(e.Signers), Bytes: len(e.Payload),
					Flag: p.cfg.faulty.Has(e.From),
				})
			}
			outgoing[e.To] = append(outgoing[e.To], e)
		})
		if p.rec != nil {
			// Route adversary send-filter drops (KindOmit) to the recorder.
			nctx = nctx.WithTrace(p.rec)
		}
		if err := p.node.Step(nctx, inbox); err != nil {
			return fmt.Errorf("phase %d: %w", phase, err)
		}

		// Flush one frame (possibly empty) to every peer.
		if phase <= p.cfg.phases && !p.cfg.muted {
			for i, conn := range conns {
				if conn == nil {
					continue
				}
				if err := writeFrame(conn, phase, p.cfg.id, outgoing[ident.ProcID(i)]); err != nil {
					return fmt.Errorf("phase %d send to %d: %w", phase, i, err)
				}
			}
		}
	}
	return nil
}

func sortInbox(in []sim.Envelope) {
	for i := 1; i < len(in); i++ {
		for j := i; j > 0 && in[j].From < in[j-1].From; j-- {
			in[j], in[j-1] = in[j-1], in[j]
		}
	}
}

// Frame wire format: u32 length, then body: uvarint phase, sender, count,
// then per message: payload bytes, signer list, sigTotal.
func writeFrame(conn net.Conn, phase int, from ident.ProcID, msgs []sim.Envelope) error {
	w := wire.NewWriter(64)
	w.Uint(uint64(phase))
	w.Proc(from)
	w.Uint(uint64(len(msgs)))
	for _, m := range msgs {
		w.BytesField(m.Payload)
		w.Procs(m.Signers)
		w.Uint(uint64(m.SigTotal))
	}
	body := w.Bytes()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := conn.Write(hdr[:]); err != nil {
		return err
	}
	_, err := conn.Write(body)
	return err
}

func readFrame(conn net.Conn, to ident.ProcID) (int, ident.ProcID, []sim.Envelope, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return 0, 0, nil, fmt.Errorf("%w: %d bytes > %d", ErrFrameTooLarge, n, maxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(conn, body); err != nil {
		return 0, 0, nil, err
	}
	r := wire.NewReader(body)
	phase := int(r.Uint())
	from := r.Proc()
	cnt := r.Len()
	if r.Err() != nil {
		return 0, 0, nil, r.Err()
	}
	msgs := make([]sim.Envelope, 0, cnt)
	for i := 0; i < cnt; i++ {
		payload := append([]byte(nil), r.BytesField()...)
		signers := r.Procs()
		sigTotal := int(r.Uint())
		if r.Err() != nil {
			return 0, 0, nil, r.Err()
		}
		msgs = append(msgs, sim.Envelope{
			From: from, To: to, Phase: phase,
			Payload: payload, Signers: signers, SigTotal: sigTotal,
		})
	}
	if err := r.Finish(); err != nil {
		return 0, 0, nil, err
	}
	return phase, from, msgs, nil
}
