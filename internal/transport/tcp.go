// Package transport runs a protocol instance over a real network stack:
// every processor is a goroutine with a TCP listener on localhost, the full
// mesh is wired with length-prefixed frames, and lock-step synchrony is
// enforced by the classical α-synchronizer pattern — each processor sends
// exactly one frame (possibly empty) to every peer per phase and advances
// once it holds the previous phase's frame from every peer (or the
// per-phase timeout fires, which tolerates crashed peers).
//
// The same sim.Node state machines that drive the in-memory engine run
// unmodified over TCP; only the delivery substrate changes.
package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"byzex/internal/adversary"
	"byzex/internal/ident"
	"byzex/internal/metrics"
	"byzex/internal/protocol"
	"byzex/internal/sig"
	"byzex/internal/sim"
	"byzex/internal/wire"
)

// Errors.
var (
	// ErrStalled indicates a processor gave up waiting for a phase.
	ErrStalled = errors.New("transport: phase stalled beyond timeout")
)

// maxFrame bounds a single frame on the wire (16 MiB).
const maxFrame = 16 << 20

// Config describes a TCP cluster run.
type Config struct {
	// N, T, Transmitter, Value, Protocol, Scheme: as in core.Config.
	N           int
	T           int
	Transmitter ident.ProcID
	Value       ident.Value
	Protocol    protocol.Protocol
	Scheme      sig.Scheme

	// Adversary and Faulty select Byzantine processors (optional).
	Adversary adversary.Adversary
	Faulty    ident.Set

	// PhaseTimeout is the per-phase wait for missing peers (default 5s).
	PhaseTimeout time.Duration

	// Mute lists processors whose frames are never flushed — simulating a
	// machine that died without closing its sockets. Peers fall back to
	// the phase timeout when waiting on a muted processor, so runs with
	// Mute processors take ≈ phases × PhaseTimeout; keep the timeout small
	// in tests. Muted processors should also be in Faulty: a correct
	// processor cannot be muted without violating the synchrony assumption
	// the protocols rely on.
	Mute ident.Set

	// Seed drives deterministic randomness (scheme and adversary).
	Seed int64
}

// Result mirrors sim.Result for a cluster run.
type Result struct {
	Decisions map[ident.ProcID]sim.Decision
	Report    metrics.Report
	Faulty    ident.Set
}

// Run executes the configured protocol over localhost TCP.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Protocol == nil {
		return nil, errors.New("transport: nil protocol")
	}
	if err := cfg.Protocol.Check(cfg.N, cfg.T); err != nil {
		return nil, err
	}
	scheme := cfg.Scheme
	if scheme == nil {
		scheme = sig.NewHMAC(cfg.N, cfg.Seed^0x7cb)
	}
	if cfg.PhaseTimeout <= 0 {
		cfg.PhaseTimeout = 5 * time.Second
	}
	faulty := cfg.Faulty
	if faulty == nil {
		faulty = make(ident.Set)
	}
	var env *adversary.Env
	if cfg.Adversary != nil && faulty.Len() > 0 {
		st, err := adversary.NewState(faulty, scheme, cfg.Seed)
		if err != nil {
			return nil, err
		}
		env = &adversary.Env{Protocol: cfg.Protocol, State: st}
	}

	phases := cfg.Protocol.Phases(cfg.N, cfg.T)
	collector := metrics.NewCollector(faulty)
	var collectorMu sync.Mutex

	// Build nodes and listeners.
	peers := make([]*peer, cfg.N)
	for i := 0; i < cfg.N; i++ {
		id := ident.ProcID(i)
		signer, err := scheme.Signer(id)
		if err != nil {
			return nil, err
		}
		ncfg := protocol.NodeConfig{
			ID: id, N: cfg.N, T: cfg.T,
			Transmitter: cfg.Transmitter, Value: cfg.Value,
			Signer: signer, Verifier: scheme,
		}
		var node sim.Node
		if faulty.Has(id) && env != nil {
			node, err = cfg.Adversary.NewNode(ncfg, env)
		} else {
			node, err = cfg.Protocol.NewNode(ncfg)
		}
		if err != nil {
			return nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("transport: listen: %w", err)
		}
		peers[i] = newPeer(id, cfg, node, ln, phases, func(phase int, from ident.ProcID, sigTotal, signers, bytes int) {
			collectorMu.Lock()
			defer collectorMu.Unlock()
			collector.OnSend(phase, from, sigTotal, signers, bytes)
		})
	}
	addrs := make([]string, cfg.N)
	for i, p := range peers {
		addrs[i] = p.ln.Addr().String()
	}

	// Run all peers.
	var wg sync.WaitGroup
	errs := make([]error, cfg.N)
	for i, p := range peers {
		wg.Add(1)
		go func(i int, p *peer) {
			defer wg.Done()
			errs[i] = p.run(ctx, addrs)
		}(i, p)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil && !faulty.Has(ident.ProcID(i)) {
			return nil, fmt.Errorf("transport: processor %d: %w", i, err)
		}
	}

	res := &Result{
		Decisions: make(map[ident.ProcID]sim.Decision, cfg.N),
		Faulty:    faulty.Clone(),
	}
	collectorMu.Lock()
	res.Report = collector.Report()
	collectorMu.Unlock()
	for i, p := range peers {
		v, ok := p.node.Decide()
		res.Decisions[ident.ProcID(i)] = sim.Decision{Value: v, Decided: ok}
	}
	return res, nil
}

// peer is one processor's runtime: listener, outbound connections, inbound
// frame buffers keyed by phase.
type peer struct {
	id      ident.ProcID
	cfg     Config
	node    sim.Node
	ln      net.Listener
	phases  int
	onSend  func(phase int, from ident.ProcID, sigTotal, signers, bytes int)
	mu      sync.Mutex
	cond    *sync.Cond
	inbound map[int]map[ident.ProcID][]sim.Envelope // phase -> sender -> msgs
	arrived map[int]ident.Set                       // phase -> senders heard from
}

func newPeer(id ident.ProcID, cfg Config, node sim.Node, ln net.Listener, phases int,
	onSend func(int, ident.ProcID, int, int, int)) *peer {
	p := &peer{
		id: id, cfg: cfg, node: node, ln: ln, phases: phases, onSend: onSend,
		inbound: make(map[int]map[ident.ProcID][]sim.Envelope),
		arrived: make(map[int]ident.Set),
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

func (p *peer) noteFrame(phase int, from ident.ProcID, msgs []sim.Envelope) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.inbound[phase] == nil {
		p.inbound[phase] = make(map[ident.ProcID][]sim.Envelope)
	}
	p.inbound[phase][from] = append(p.inbound[phase][from], msgs...)
	if p.arrived[phase] == nil {
		p.arrived[phase] = make(ident.Set)
	}
	p.arrived[phase].Add(from)
	p.cond.Broadcast()
}

// waitPhase blocks until frames for the phase arrived from all peers or the
// timeout fires; it returns the inbox.
func (p *peer) waitPhase(phase int) []sim.Envelope {
	deadline := time.Now().Add(p.cfg.PhaseTimeout)
	timer := time.AfterFunc(p.cfg.PhaseTimeout, func() {
		p.mu.Lock()
		defer p.mu.Unlock()
		p.cond.Broadcast()
	})
	defer timer.Stop()

	p.mu.Lock()
	defer p.mu.Unlock()
	want := p.cfg.N - 1
	for p.arrived[phase].Len() < want && time.Now().Before(deadline) {
		p.cond.Wait()
	}
	var inbox []sim.Envelope
	for _, msgs := range p.inbound[phase] {
		inbox = append(inbox, msgs...)
	}
	delete(p.inbound, phase)
	delete(p.arrived, phase)
	return inbox
}

func (p *peer) acceptLoop(done <-chan struct{}) {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		go func(c net.Conn) {
			defer func() { _ = c.Close() }()
			for {
				select {
				case <-done:
					return
				default:
				}
				phase, from, msgs, err := readFrame(c, p.id)
				if err != nil {
					return
				}
				p.noteFrame(phase, from, msgs)
			}
		}(conn)
	}
}

func (p *peer) run(ctx context.Context, addrs []string) error {
	done := make(chan struct{})
	defer close(done)
	defer func() { _ = p.ln.Close() }()
	go p.acceptLoop(done)

	// Dial the mesh.
	conns := make([]net.Conn, len(addrs))
	for i, addr := range addrs {
		if ident.ProcID(i) == p.id {
			continue
		}
		var err error
		for attempt := 0; attempt < 50; attempt++ {
			conns[i], err = net.Dial("tcp", addr)
			if err == nil {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if err != nil {
			return fmt.Errorf("dial %s: %w", addr, err)
		}
	}
	defer func() {
		for _, c := range conns {
			if c != nil {
				_ = c.Close()
			}
		}
	}()

	for phase := 1; phase <= p.phases+1; phase++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		var inbox []sim.Envelope
		if phase > 1 {
			inbox = p.waitPhase(phase - 1)
		}
		sortInbox(inbox)

		// Buffer sends per recipient for this phase.
		outgoing := make(map[ident.ProcID][]sim.Envelope)
		nctx := sim.NewContext(p.id, p.cfg.N, p.cfg.T, p.cfg.Transmitter, phase, p.phases, func(e sim.Envelope) {
			p.onSend(e.Phase, e.From, e.SigTotal, len(e.Signers), len(e.Payload))
			outgoing[e.To] = append(outgoing[e.To], e)
		})
		if err := p.node.Step(nctx, inbox); err != nil {
			return fmt.Errorf("phase %d: %w", phase, err)
		}

		// Flush one frame (possibly empty) to every peer.
		if phase <= p.phases && !p.cfg.Mute.Has(p.id) {
			for i, conn := range conns {
				if conn == nil {
					continue
				}
				if err := writeFrame(conn, phase, p.id, outgoing[ident.ProcID(i)]); err != nil {
					return fmt.Errorf("phase %d send to %d: %w", phase, i, err)
				}
			}
		}
	}
	return nil
}

func sortInbox(in []sim.Envelope) {
	for i := 1; i < len(in); i++ {
		for j := i; j > 0 && in[j].From < in[j-1].From; j-- {
			in[j], in[j-1] = in[j-1], in[j]
		}
	}
}

// Frame wire format: u32 length, then body: uvarint phase, sender, count,
// then per message: payload bytes, signer list, sigTotal.
func writeFrame(conn net.Conn, phase int, from ident.ProcID, msgs []sim.Envelope) error {
	w := wire.NewWriter(64)
	w.Uint(uint64(phase))
	w.Proc(from)
	w.Uint(uint64(len(msgs)))
	for _, m := range msgs {
		w.BytesField(m.Payload)
		w.Procs(m.Signers)
		w.Uint(uint64(m.SigTotal))
	}
	body := w.Bytes()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := conn.Write(hdr[:]); err != nil {
		return err
	}
	_, err := conn.Write(body)
	return err
}

func readFrame(conn net.Conn, to ident.ProcID) (int, ident.ProcID, []sim.Envelope, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return 0, 0, nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(conn, body); err != nil {
		return 0, 0, nil, err
	}
	r := wire.NewReader(body)
	phase := int(r.Uint())
	from := r.Proc()
	cnt := r.Len()
	if r.Err() != nil {
		return 0, 0, nil, r.Err()
	}
	msgs := make([]sim.Envelope, 0, cnt)
	for i := 0; i < cnt; i++ {
		payload := append([]byte(nil), r.BytesField()...)
		signers := r.Procs()
		sigTotal := int(r.Uint())
		if r.Err() != nil {
			return 0, 0, nil, r.Err()
		}
		msgs = append(msgs, sim.Envelope{
			From: from, To: to, Phase: phase,
			Payload: payload, Signers: signers, SigTotal: sigTotal,
		})
	}
	if err := r.Finish(); err != nil {
		return 0, 0, nil, err
	}
	return phase, from, msgs, nil
}
