// Package transport runs a protocol instance over a real network stack:
// every processor is a goroutine with a TCP listener on localhost, the full
// mesh is wired with length-prefixed frames, and lock-step synchrony is
// enforced by the classical α-synchronizer pattern — each processor sends
// exactly one frame (possibly empty) to every peer per phase and advances
// once it holds the previous phase's frame from every peer (or the
// per-phase timeout fires, which tolerates crashed peers).
//
// The same sim.Node state machines that drive the in-memory engine run
// unmodified over TCP; only the delivery substrate changes. Runs are
// described by the same core.Config the engine consumes — RunCluster reuses
// core.NewSetup for defaulting, corruption choice and node construction, and
// core.CheckDecisions for judging agreement, so the two substrates cannot
// drift. The network-specific knobs (phase timeout, muted processors) live
// in Net.
//
// Fault injection: a compiled faultnet.Plan in core.Config.Faults is applied
// at the frame layer — drop/delay/dup/reorder/partition verdicts transform
// an inbound frame's content in noteFrame (the frame still counts as an
// arrival, so lock-step progress never waits out a timeout for an injected
// fault), and crash-at-phase-k halts the peer's run loop with ErrPeerCrashed
// before it consumes phase k. The plan is a pure function of its seed, so
// every peer evaluates the same schedule independently and fault runs replay
// byte-identically. A receiver whose per-phase information gap (frames
// physically missing plus frames the plan withheld) exceeds t returns
// ErrStalled instead of risking a divergent decision.
package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"byzex/internal/adversary"
	"byzex/internal/core"
	"byzex/internal/faultnet"
	"byzex/internal/ident"
	"byzex/internal/metrics"
	"byzex/internal/protocol"
	"byzex/internal/sig"
	"byzex/internal/sim"
	"byzex/internal/trace"
	"byzex/internal/wire"
)

// Errors.
var (
	// ErrStalled indicates a processor gave up on a phase: the frames it
	// never received plus the frames the fault plan withheld exceed the
	// fault bound t, so deciding would risk disagreement. Over-budget fault
	// scenarios surface as this error (or ErrPeerCrashed), never as a
	// divergent decision.
	ErrStalled = errors.New("transport: phase stalled beyond timeout")
	// ErrPeerCrashed reports a processor halted by a crash-at-phase-k rule
	// of the run's fault plan (see faultnet.Rule). RunCluster tolerates it
	// only for processors inside the faulty set.
	ErrPeerCrashed = errors.New("transport: peer crashed by fault plan")
)

// maxFrame bounds a single frame on the wire (16 MiB).
const maxFrame = 16 << 20

// ErrFrameTooLarge is returned by the frame reader when a peer announces a
// body larger than maxFrame. The oversized body is never allocated or read:
// a hostile or corrupt length header costs the receiver 4 bytes, not 4 GiB.
var ErrFrameTooLarge = errors.New("transport: frame exceeds size limit")

// Net carries the network-substrate knobs of a cluster run — everything a
// TCP execution needs beyond the protocol description in core.Config.
type Net struct {
	// PhaseTimeout is the per-phase wait for missing peers (default 5s).
	PhaseTimeout time.Duration

	// Mute lists processors whose frames are never flushed — simulating a
	// machine that died without closing its sockets. Peers fall back to
	// the phase timeout when waiting on a muted processor, so runs with
	// Mute processors take ≈ phases × PhaseTimeout; keep the timeout small
	// in tests. Muted processors should also be in the faulty set: a
	// correct processor cannot be muted without violating the synchrony
	// assumption the protocols rely on.
	Mute ident.Set

	// LinkDelay models one-way network latency: each processor holds its
	// phase flush for this long before writing, so an instance's wall
	// clock is ≈ phases × LinkDelay while its CPU sits idle — the regime a
	// real deployment is in, where loopback is unrealistically fast. The
	// delay is applied once per phase (links are traversed in parallel),
	// never affects determinism, and zero disables it.
	LinkDelay time.Duration

	// WireVersion selects the frame version this cluster's peers emit
	// (zero means wire.FrameVersion, the newest this build knows). Receivers
	// always accept the whole compatibility window
	// [wire.FrameVersionMin, wire.FrameVersion] regardless of this setting —
	// pinning the emitted version one release back is how a mesh rolls
	// through an encoding change (see Mesh.SetPeerWireVersion for per-peer
	// mixed-version drills).
	WireVersion byte
}

// Config describes a TCP cluster run with a transport-private options
// struct.
//
// Deprecated: Config duplicated core.Config field by field and let the two
// substrates drift in how they defaulted schemes and resolved faulty sets.
// New code should call RunCluster with a core.Config plus Net; Config and
// Run remain as thin shims with the historical defaults.
type Config struct {
	// N, T, Transmitter, Value, Protocol, Scheme: as in core.Config.
	N           int
	T           int
	Transmitter ident.ProcID
	Value       ident.Value
	Protocol    protocol.Protocol
	Scheme      sig.Scheme

	// Adversary and Faulty select Byzantine processors (optional). Unlike
	// core.Config, Faulty is always explicit: the adversary's Corrupt
	// method is never consulted.
	Adversary adversary.Adversary
	Faulty    ident.Set

	// PhaseTimeout and Mute: as in Net.
	PhaseTimeout time.Duration
	Mute         ident.Set

	// Seed drives deterministic randomness (scheme and adversary).
	Seed int64
}

// Result mirrors sim.Result for a cluster run.
type Result struct {
	Decisions map[ident.ProcID]sim.Decision
	Report    metrics.Report
	Faulty    ident.Set
}

// Decision returns the common decision of the correct processors, or an
// agreement violation error, using the same judge as the in-memory engine
// (core.CheckDecisions).
func (r *Result) Decision(transmitter ident.ProcID, transmitterValue ident.Value) (ident.Value, error) {
	return core.CheckDecisions(r.Decisions, r.Faulty, transmitter, transmitterValue)
}

// Run executes the configured protocol over localhost TCP.
//
// Deprecated: use RunCluster. Run adapts the legacy Config onto it,
// preserving the historical default-scheme seed and the never-call-Corrupt
// faulty semantics.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	scheme := cfg.Scheme
	if scheme == nil && cfg.N > 0 {
		scheme = sig.NewHMAC(cfg.N, cfg.Seed^0x7cb)
	}
	fo := cfg.Faulty
	if cfg.Adversary != nil && fo == nil {
		// The legacy API never consulted Adversary.Corrupt; pin the
		// (empty) explicit set so NewSetup doesn't either.
		fo = make(ident.Set)
	}
	return RunCluster(ctx, core.Config{
		Protocol:       cfg.Protocol,
		N:              cfg.N,
		T:              cfg.T,
		Transmitter:    cfg.Transmitter,
		Value:          cfg.Value,
		Scheme:         scheme,
		Adversary:      cfg.Adversary,
		FaultyOverride: fo,
		Seed:           cfg.Seed,
	}, Net{PhaseTimeout: cfg.PhaseTimeout, Mute: cfg.Mute})
}

// RunCluster executes cfg over localhost TCP: every processor is a
// goroutine with its own listener, wired into a full mesh. Setup (scheme
// defaulting, corruption, node construction) is shared with core.Run via
// core.NewSetup.
//
// RunCluster is a single-epoch mesh: it dials a fresh Mesh, runs one
// instance and tears the sockets down again. Callers running many
// instances should hold a Mesh and call Run per instance — the warm path
// the serving layer uses (see service.NewWarmTCP).
//
// Tracing: the sink is resolved exactly as in core.Run (cfg.Trace, else the
// context's). Each peer records its events privately, bucketed by wall
// phase; after the run the per-peer streams are merged in (wall phase, peer
// id, emission order) order, with PhaseStart/PhaseEnd markers synthesized
// around each wall phase — so the trace is deterministic even though peers
// execute concurrently. Signature-cache events and cache statistics are not
// recorded here: peers share one verifier, so the hit/miss split depends on
// goroutine interleaving.
func RunCluster(ctx context.Context, cfg core.Config, netCfg Net) (*Result, error) {
	m, err := NewMesh(ctx, cfg.N, netCfg)
	if err != nil {
		return nil, err
	}
	defer m.Close()
	return m.Run(ctx, cfg)
}

// phaseRecorder is a per-peer trace sink. Each peer goroutine owns exactly
// one recorder (so emission needs no locking), bucketing events by the wall
// phase in which they occurred; RunCluster drains the buckets after all
// goroutines have joined.
type phaseRecorder struct {
	buckets [][]trace.Event // indexed by wall phase; index 0 unused
	cur     int
}

func newPhaseRecorder(wallPhases int) *phaseRecorder {
	return &phaseRecorder{buckets: make([][]trace.Event, wallPhases+1), cur: 1}
}

// Emit implements trace.Sink for the owning peer's goroutine.
func (r *phaseRecorder) Emit(e trace.Event) {
	r.buckets[r.cur] = append(r.buckets[r.cur], e)
}

// peerConfig is the per-processor slice of a cluster run's configuration.
type peerConfig struct {
	id          ident.ProcID
	n, t        int
	transmitter ident.ProcID
	phases      int
	timeout     time.Duration
	linkDelay   time.Duration
	muted       bool
	faulty      ident.Set
	faults      *faultnet.Plan // nil injects nothing (all methods nil-safe)
}

// peer is one processor's per-epoch runtime: the node state machine and the
// inbound frame buffers keyed by phase. Sockets belong to the Mesh (they
// outlive the epoch); frames reach the peer through the mesh's readers.
type peer struct {
	cfg     peerConfig
	node    sim.Node
	rec     *phaseRecorder // nil when tracing is disabled
	onSend  func(phase int, from ident.ProcID, sigTotal, signers, bytes int)
	mu      sync.Mutex
	cond    *sync.Cond
	inbound map[int]map[ident.ProcID][]sim.Envelope // phase -> sender -> msgs
	arrived map[int]ident.Set                       // phase -> senders heard from
	delayed map[int][]sim.Envelope                  // phase -> plan-delayed msgs due then
	done    int                                     // highest phase waitPhase has closed out
}

func newPeer(cfg peerConfig, node sim.Node, rec *phaseRecorder,
	onSend func(int, ident.ProcID, int, int, int)) *peer {
	p := &peer{
		cfg: cfg, node: node, rec: rec, onSend: onSend,
		inbound: make(map[int]map[ident.ProcID][]sim.Envelope),
		arrived: make(map[int]ident.Set),
		delayed: make(map[int][]sim.Envelope),
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// noteFrame records a frame that arrived from a peer, applying the fault
// plan's verdict for the link first: drop empties the frame, delay stashes
// its content for redelivery, dup doubles it, reorder reverses it. Every
// verdict still marks the sender as arrived — the synchronizer observed the
// frame; only its content was mangled — so injected faults never push a
// receiver onto the timeout path. Frames for a phase waitPhase has already
// closed out are discarded: appending to the deleted per-phase maps would
// resurrect them and leak an entry per late frame for the rest of the run.
func (p *peer) noteFrame(phase int, from ident.ProcID, msgs []sim.Envelope) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if phase <= p.done {
		return
	}
	switch act := p.cfg.faults.FrameAction(phase, from, p.cfg.id); act.Kind {
	case faultnet.ActDrop:
		msgs = nil
	case faultnet.ActDelay:
		if len(msgs) > 0 {
			due := phase + act.Delay
			p.delayed[due] = append(p.delayed[due], msgs...)
		}
		msgs = nil
	case faultnet.ActDup:
		msgs = append(msgs, msgs...)
	case faultnet.ActReorder:
		for i, j := 0, len(msgs)-1; i < j; i, j = i+1, j-1 {
			msgs[i], msgs[j] = msgs[j], msgs[i]
		}
	}
	if p.inbound[phase] == nil {
		p.inbound[phase] = make(map[ident.ProcID][]sim.Envelope)
	}
	p.inbound[phase][from] = append(p.inbound[phase][from], msgs...)
	if p.arrived[phase] == nil {
		p.arrived[phase] = make(ident.Set)
	}
	p.arrived[phase].Add(from)
	p.cond.Broadcast()
}

// waitPhase blocks until frames for the phase arrived from all peers that
// can still send (plan-crashed processors are not waited for) or the timeout
// fires; it returns the inbox, including any plan-delayed content due this
// phase. It fails with ErrStalled when the receiver's information gap —
// frames physically missing plus live frames the plan withheld — exceeds
// the fault bound t: deciding on that little information could diverge.
func (p *peer) waitPhase(phase int) ([]sim.Envelope, error) {
	deadline := time.Now().Add(p.cfg.timeout)
	timer := time.AfterFunc(p.cfg.timeout, func() {
		p.mu.Lock()
		defer p.mu.Unlock()
		p.cond.Broadcast()
	})
	defer timer.Stop()

	p.mu.Lock()
	defer p.mu.Unlock()
	want := p.cfg.n - 1 - p.cfg.faults.CrashSilent(phase, p.cfg.id, p.cfg.n)
	for p.arrived[phase].Len() < want && time.Now().Before(deadline) {
		p.cond.Wait()
	}
	missing := p.cfg.n - 1 - p.arrived[phase].Len() // crashed peers count as missing
	var inbox []sim.Envelope
	for _, msgs := range p.inbound[phase] {
		inbox = append(inbox, msgs...)
	}
	// Merge plan-delayed frames due now. They sort after the current-phase
	// messages of the same sender: the map segment above holds one slice per
	// sender, the late segment is appended behind it, and sortInbox is
	// stable — the same order the engine's merge produces.
	inbox = append(inbox, p.delayed[phase]...)
	delete(p.delayed, phase)
	delete(p.inbound, phase)
	delete(p.arrived, phase)
	p.done = phase
	if gap := missing + p.cfg.faults.Veiled(phase, p.cfg.id, p.cfg.n); gap > p.cfg.t {
		return nil, fmt.Errorf("phase %d: %w: %d frames missing or withheld > t=%d",
			phase, ErrStalled, gap, p.cfg.t)
	}
	return inbox, nil
}

// run executes the peer's phase loop for one mesh epoch. The mesh's
// inbound readers outlive an early peer exit on purpose: closing inbound
// links the moment a peer stalls or crashes would turn its neighbors'
// in-flight writes into broken pipes and cascade one typed failure into
// untyped ones. Frames arriving after the peer stopped consuming are
// discarded by noteFrame's late-phase guard (or by the mesh's epoch tag,
// once the next instance starts).
func (p *peer) run(ctx context.Context, ep *endpoint, epoch uint64) error {
	for phase := 1; phase <= p.cfg.phases+1; phase++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if p.rec != nil {
			p.rec.cur = phase
		}
		if p.cfg.faults.CrashPhase(p.cfg.id) == phase {
			// Halt before consuming phase-1's frames: the crashed processor
			// neither steps nor sends from here on. Its sockets stay open
			// until RunCluster's teardown so live peers keep their links.
			if p.rec != nil {
				p.rec.Emit(trace.Event{Kind: trace.KindFaultCrash, Phase: phase, From: p.cfg.id, To: ident.None})
			}
			return fmt.Errorf("phase %d: %w", phase, ErrPeerCrashed)
		}
		var inbox []sim.Envelope
		if phase > 1 {
			var err error
			if inbox, err = p.waitPhase(phase - 1); err != nil {
				return err
			}
			p.emitFaultEvents(phase - 1)
		}
		sortInbox(inbox)
		if p.rec != nil {
			// Mirror the engine: one Deliver event per envelope handed to
			// Step, stamped with the wall phase of the delivery.
			for i := range inbox {
				p.rec.Emit(trace.Event{
					Kind: trace.KindDeliver, Phase: phase, From: inbox[i].From, To: inbox[i].To,
					Sigs: inbox[i].SigTotal, Signers: len(inbox[i].Signers), Bytes: len(inbox[i].Payload),
				})
			}
		}

		// Buffer sends per recipient for this phase.
		outgoing := make(map[ident.ProcID][]sim.Envelope)
		nctx := sim.NewContext(p.cfg.id, p.cfg.n, p.cfg.t, p.cfg.transmitter, phase, p.cfg.phases, func(e sim.Envelope) {
			p.onSend(e.Phase, e.From, e.SigTotal, len(e.Signers), len(e.Payload))
			if p.rec != nil {
				p.rec.Emit(trace.Event{
					Kind: trace.KindSend, Phase: e.Phase, From: e.From, To: e.To,
					Sigs: e.SigTotal, Signers: len(e.Signers), Bytes: len(e.Payload),
					Flag: p.cfg.faulty.Has(e.From),
				})
			}
			outgoing[e.To] = append(outgoing[e.To], e)
		})
		if p.rec != nil {
			// Route adversary send-filter drops (KindOmit) to the recorder.
			nctx = nctx.WithTrace(p.rec)
		}
		if err := p.node.Step(nctx, inbox); err != nil {
			return fmt.Errorf("phase %d: %w", phase, err)
		}

		// Flush one frame (possibly empty) to every peer.
		if phase <= p.cfg.phases && !p.cfg.muted {
			if p.cfg.linkDelay > 0 {
				timer := time.NewTimer(p.cfg.linkDelay)
				select {
				case <-timer.C:
				case <-ctx.Done():
					timer.Stop()
					return ctx.Err()
				}
			}
			for i := 0; i < p.cfg.n; i++ {
				to := ident.ProcID(i)
				if to == p.cfg.id {
					continue
				}
				if p.cfg.faults.Crashed(to, phase+1) {
					// The receiver halts before it would consume this frame.
					continue
				}
				if err := ep.send(ctx, epoch, phase, to, p.cfg.timeout, outgoing[to]); err != nil {
					if p.cfg.faults.CrashPhase(to) != 0 {
						// Best-effort towards a peer that crashes later in
						// the run: a torn-down socket is part of the scenario.
						continue
					}
					return fmt.Errorf("phase %d send to %d: %w", phase, i, err)
				}
			}
		}
	}
	return nil
}

// emitFaultEvents records the plan's verdicts for the frames of sendPhase
// addressed to this peer — one fault-* event per acted-on frame, empty
// frames included (the transport always has a frame on the wire). Events are
// derived from the plan, not from observed arrivals, and emitted from the
// peer's own goroutine into its single-owner recorder in ascending sender
// order, so fault traces are deterministic. Phase carries the sending phase;
// fault-delay carries the hold duration in Sigs.
func (p *peer) emitFaultEvents(sendPhase int) {
	if p.rec == nil || p.cfg.faults.Empty() {
		return
	}
	for s := 0; s < p.cfg.n; s++ {
		from := ident.ProcID(s)
		if from == p.cfg.id || p.cfg.faults.Crashed(from, sendPhase) {
			continue
		}
		act := p.cfg.faults.FrameAction(sendPhase, from, p.cfg.id)
		if act.Kind == faultnet.ActNone {
			continue
		}
		p.rec.Emit(trace.Event{
			Kind: faultKind(act.Kind), Phase: sendPhase, From: from, To: p.cfg.id, Sigs: act.Delay,
		})
	}
}

// faultKind maps a plan action to its trace event kind.
func faultKind(k faultnet.ActionKind) trace.Kind {
	switch k {
	case faultnet.ActDrop:
		return trace.KindFaultDrop
	case faultnet.ActDelay:
		return trace.KindFaultDelay
	case faultnet.ActDup:
		return trace.KindFaultDup
	case faultnet.ActReorder:
		return trace.KindFaultReorder
	}
	return 0
}

// dialPeer dials addr with capped exponential backoff and jitter, giving up
// promptly when ctx is cancelled. Mesh construction races every peer's
// listener against every other peer's dialer, so early refusals are
// expected; the jittered backoff replaces a fixed-interval retry loop that
// hammered the listen backlog in lock-step across n² dials.
func dialPeer(ctx context.Context, addr string, rng *rand.Rand) (net.Conn, error) {
	var d net.Dialer
	deadline := time.Now().Add(5 * time.Second)
	backoff := 2 * time.Millisecond
	for {
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			return conn, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		// Sleep backoff/2 + U[0, backoff): mean backoff, decorrelated.
		wait := backoff/2 + time.Duration(rng.Int63n(int64(backoff)))
		timer := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			timer.Stop()
			return nil, ctx.Err()
		case <-timer.C:
		}
		if backoff < 100*time.Millisecond {
			backoff *= 2
		}
	}
}

func sortInbox(in []sim.Envelope) {
	for i := 1; i < len(in); i++ {
		for j := i; j > 0 && in[j].From < in[j-1].From; j-- {
			in[j], in[j-1] = in[j-1], in[j]
		}
	}
}

// Frame wire format: u32 length, then body: version byte, uvarint epoch,
// phase, sender, a reserved frame-flags uvarint at v2+ (must be zero),
// count, then per message: payload bytes, signer list, sigTotal. The epoch
// tag is how a warm mesh resets between instances without reconnecting —
// receivers drop frames whose tag is not the current epoch's. The version
// byte leads the body so receivers can reject a frame from outside the
// compatibility window (wire.ErrWireVersion) before trusting any layout
// assumption behind it.
//
// writeFrame encodes into the caller's reusable writer (header placeholder
// patched in place, one Write call) so the steady-state path allocates
// nothing; timeout bounds the whole frame write: a receiver that stopped
// reading while its kernel buffers are full would otherwise block the
// sender's phase loop forever, turning one sick peer into a cluster-wide
// hang. A timeout ≤ 0 leaves the connection unbounded.
func writeFrame(conn net.Conn, w *wire.Writer, timeout time.Duration, ver byte, epoch uint64, phase int, from ident.ProcID, msgs []sim.Envelope) error {
	if ver == 0 {
		ver = wire.FrameVersion
	}
	w.Reset()
	w.Byte(0)
	w.Byte(0)
	w.Byte(0)
	w.Byte(0)
	w.Byte(ver)
	w.Uint(epoch)
	w.Uint(uint64(phase))
	w.Proc(from)
	if ver >= wire.FrameV2 {
		w.Uint(0) // reserved frame flags
	}
	w.Uint(uint64(len(msgs)))
	for _, m := range msgs {
		w.BytesField(m.Payload)
		w.Procs(m.Signers)
		w.Uint(uint64(m.SigTotal))
	}
	buf := w.Bytes()
	binary.BigEndian.PutUint32(buf[:4], uint32(len(buf)-4))
	if timeout > 0 {
		if err := conn.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
			return err
		}
		defer func() { _ = conn.SetWriteDeadline(time.Time{}) }()
	}
	_, err := conn.Write(buf)
	return err
}
