package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/metrics"
	"byzex/internal/sim"
	"byzex/internal/trace"
	"byzex/internal/wire"
)

// ErrMeshBusy rejects a Mesh.Run while a previous instance on the same mesh
// has not finished: a mesh multiplexes epochs sequentially, never
// concurrently (each service shard owns one mesh and runs one instance at a
// time; a second concurrent caller indicates a wiring bug, not load).
var ErrMeshBusy = errors.New("transport: mesh is already running an instance")

// Mesh is a warm, long-lived localhost TCP mesh for n processors: the n
// listeners and the n×(n-1) outbound connections are dialed once and reused
// by every subsequent instance. Each Run is one epoch — frames carry an
// epoch tag, so per-instance state (phase buffers, fault plans, trace
// recorders) is reset by simply installing the next epoch's peer set;
// stragglers from a finished epoch are recognized by their stale tag and
// dropped without touching the new instance. A failed write mid-epoch falls
// back to the ctx-aware backoff dialer (reconnect-on-failure), so a
// restarted peer process rejoins without the mesh being rebuilt.
//
// A Mesh is safe for use from one goroutine at a time: Run rejects
// concurrent instances with ErrMeshBusy, and Close must not race a Run.
type Mesh struct {
	n         int
	netCfg    Net
	listeners []net.Listener
	addrs     []string
	eps       []*endpoint

	// state points at the current epoch's peer set. It is installed by Run
	// before any of the epoch's senders start, so by the time a frame
	// tagged with the new epoch can reach a reader, the reader's load here
	// observes the new state; frames tagged with an older epoch are
	// stragglers and are dropped.
	state   atomic.Pointer[epochState]
	epoch   uint64 // last epoch started; only Run mutates, guarded by running
	running atomic.Bool

	mu      sync.Mutex
	inbound []net.Conn     // accepted connections, closed by Close
	readers []*frameReader // every reader ever attached, drained each epoch
	closed  bool

	wg sync.WaitGroup // accept loops and per-connection readers
}

// epochState is the per-instance routing table: inbound frames tagged with
// this epoch are delivered to these peers.
type epochState struct {
	epoch uint64
	peers []*peer
}

// endpoint is the per-processor half of the mesh that outlives instances:
// the outbound connection row, a reusable frame writer, and the redial
// jitter rng. It is touched only by the processor's peer goroutine (one per
// epoch, epochs are sequential) and by Close.
type endpoint struct {
	id    ident.ProcID
	m     *Mesh
	w     *wire.Writer
	ver   byte // frame version this endpoint emits
	rng   *rand.Rand
	conns []net.Conn // indexed by destination; nil at own index
}

// send writes one frame to `to`, redialing once on failure: a peer that
// restarted keeps its listener address (the mesh owns the listeners), so a
// broken outbound link is replaced in place without disturbing the rest of
// the row.
func (ep *endpoint) send(ctx context.Context, epoch uint64, phase int, to ident.ProcID, timeout time.Duration, msgs []sim.Envelope) error {
	conn := ep.conns[to]
	err := writeFrame(conn, ep.w, timeout, ep.ver, epoch, phase, ep.id, msgs)
	if err == nil {
		return nil
	}
	nc, derr := dialPeer(ctx, ep.m.addrs[to], ep.rng)
	if derr != nil {
		return err
	}
	_ = conn.Close()
	ep.conns[to] = nc
	return writeFrame(nc, ep.w, timeout, ep.ver, epoch, phase, ep.id, msgs)
}

// NewMesh builds the warm mesh: n listeners, the full outbound mesh dialed
// concurrently with jittered backoff, and the accept-side frame readers.
// The mesh holds no instance state until the first Run.
func NewMesh(ctx context.Context, n int, netCfg Net) (*Mesh, error) {
	if n < 1 {
		return nil, fmt.Errorf("transport: mesh needs at least one processor, got %d", n)
	}
	if netCfg.PhaseTimeout <= 0 {
		netCfg.PhaseTimeout = 5 * time.Second
	}
	m := &Mesh{
		n:         n,
		netCfg:    netCfg,
		listeners: make([]net.Listener, n),
		addrs:     make([]string, n),
		eps:       make([]*endpoint, n),
	}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			m.Close()
			return nil, fmt.Errorf("transport: listen: %w", err)
		}
		m.listeners[i] = ln
		m.addrs[i] = ln.Addr().String()
		m.wg.Add(1)
		go m.acceptLoop(ident.ProcID(i), ln)
	}
	ver := netCfg.WireVersion
	if ver == 0 {
		ver = wire.FrameVersion
	}
	if err := wire.CheckFrameVersion(ver); err != nil {
		m.Close()
		return nil, fmt.Errorf("transport: mesh: %w", err)
	}
	for i := 0; i < n; i++ {
		id := ident.ProcID(i)
		m.eps[i] = &endpoint{
			id: id, m: m, w: wire.NewWriter(256), ver: ver,
			rng:   rand.New(rand.NewSource((int64(id) + 1) * 0x9e3779b9)),
			conns: make([]net.Conn, n),
		}
	}
	// Dial every row concurrently: mesh construction races each listener
	// against every dialer, so the jittered backoff in dialPeer does the
	// smoothing, exactly as the per-run dial used to.
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(ep *endpoint) {
			defer wg.Done()
			for j := range ep.conns {
				if ident.ProcID(j) == ep.id {
					continue
				}
				conn, err := dialPeer(ctx, m.addrs[j], ep.rng)
				if err != nil {
					errs[ep.id] = fmt.Errorf("dial %s: %w", m.addrs[j], err)
					return
				}
				ep.conns[j] = conn
			}
		}(m.eps[i])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			m.Close()
			return nil, fmt.Errorf("transport: mesh: %w", err)
		}
	}
	return m, nil
}

// SetPeerWireVersion pins the frame version one processor's endpoint emits —
// the mixed-version drill a rolling upgrade performs: downgrade one peer's
// emitter to wire.FrameVersionMin and the instance must still complete,
// because every receiver accepts the whole window. The scripted fleet roll
// (TestServeRollingUpgrade, `make upgrade`) exercises both granularities:
// whole processes restarted across -wire-version values, and a single peer
// re-versioned between epochs of one warm mesh via this call. Must not race
// a Run.
func (m *Mesh) SetPeerWireVersion(id ident.ProcID, ver byte) error {
	if int(id) < 0 || int(id) >= m.n {
		return fmt.Errorf("transport: no peer %d in a mesh of %d", id, m.n)
	}
	if ver == 0 {
		ver = wire.FrameVersion
	}
	if err := wire.CheckFrameVersion(ver); err != nil {
		return err
	}
	m.eps[id].ver = ver
	return nil
}

// acceptLoop serves one processor's listener for the life of the mesh.
func (m *Mesh) acceptLoop(to ident.ProcID, ln net.Listener) {
	defer m.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		fr := &frameReader{to: to}
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			_ = conn.Close()
			return
		}
		m.inbound = append(m.inbound, conn)
		m.readers = append(m.readers, fr)
		m.wg.Add(1)
		m.mu.Unlock()
		go m.serveConn(conn, fr)
	}
}

// serveConn pumps frames off one accepted connection into the current
// epoch's peer. Frames tagged with a stale epoch are dropped before their
// message section is decoded, so their buffer is reused immediately; frames
// that delivered payload bytes have their buffer retired until the epoch's
// nodes are gone (see frameReader).
func (m *Mesh) serveConn(conn net.Conn, fr *frameReader) {
	defer m.wg.Done()
	defer func() { _ = conn.Close() }()
	for {
		epoch, err := fr.readFrame(conn)
		if err != nil {
			return
		}
		st := m.state.Load()
		if st == nil || epoch != st.epoch {
			continue // straggler from a finished epoch: drop, reuse the buffer
		}
		phase, from, msgs, err := fr.decode()
		if err != nil {
			return
		}
		st.peers[fr.to].noteFrame(phase, from, msgs)
		if len(msgs) > 0 {
			fr.retire()
		}
	}
}

// Run executes one instance (one epoch) over the warm mesh. Setup, tracing
// and result extraction are identical to RunCluster — RunCluster is now a
// single-epoch mesh — but listeners and connections survive for the next
// Run instead of being torn down.
func (m *Mesh) Run(ctx context.Context, cfg core.Config) (*Result, error) {
	if cfg.N != m.n {
		return nil, fmt.Errorf("transport: mesh built for n=%d, config has n=%d", m.n, cfg.N)
	}
	if !m.running.CompareAndSwap(false, true) {
		return nil, ErrMeshBusy
	}
	defer m.running.Store(false)

	// Recycle the previous epoch's frame buffers. This is the earliest safe
	// point: envelope payloads and signer lists alias those buffers, and the
	// last epoch's nodes (which may retain payload slices per the sim.Node
	// contract) became unreachable when its Run returned.
	m.recycle()

	setup, err := core.NewSetup(cfg)
	if err != nil {
		return nil, err
	}
	sink := cfg.ResolveTrace(ctx)
	core.EmitCorruptions(sink, setup.Faulty)

	collector := metrics.NewCollector(setup.Faulty)
	var collectorMu sync.Mutex
	onSend := func(phase int, from ident.ProcID, sigTotal, signers, bytes int) {
		collectorMu.Lock()
		defer collectorMu.Unlock()
		collector.OnSend(phase, from, sigTotal, signers, bytes)
	}

	wallPhases := setup.Phases + 1
	peers := make([]*peer, m.n)
	for i, node := range setup.Nodes {
		id := ident.ProcID(i)
		var rec *phaseRecorder
		if sink != nil {
			rec = newPhaseRecorder(wallPhases)
		}
		peers[i] = newPeer(peerConfig{
			id: id, n: cfg.N, t: cfg.T, transmitter: cfg.Transmitter,
			phases: setup.Phases, timeout: m.netCfg.PhaseTimeout,
			linkDelay: m.netCfg.LinkDelay,
			muted:     m.netCfg.Mute.Has(id), faulty: setup.Faulty,
			faults: cfg.Faults,
		}, node, rec, onSend)
	}

	// Install the epoch's routing state BEFORE launching any sender: every
	// frame tagged with this epoch is written after this store, so a reader
	// that received such a frame observes the new state when it loads.
	m.epoch++
	epoch := m.epoch
	m.state.Store(&epochState{epoch: epoch, peers: peers})

	var wg sync.WaitGroup
	errs := make([]error, m.n)
	for i, p := range peers {
		wg.Add(1)
		go func(i int, p *peer) {
			defer wg.Done()
			errs[i] = p.run(ctx, m.eps[i], epoch)
		}(i, p)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil && !setup.Faulty.Has(ident.ProcID(i)) {
			return nil, fmt.Errorf("transport: processor %d: %w", i, err)
		}
	}

	// Merge the per-peer trace streams deterministically.
	if sink != nil {
		for ph := 1; ph <= wallPhases; ph++ {
			sink.Emit(trace.Event{Kind: trace.KindPhaseStart, Phase: ph, From: ident.None, To: ident.None})
			for _, p := range peers {
				for _, e := range p.rec.buckets[ph] {
					sink.Emit(e)
				}
			}
			sink.Emit(trace.Event{Kind: trace.KindPhaseEnd, Phase: ph, From: ident.None, To: ident.None})
		}
	}

	res := &Result{
		Decisions: make(map[ident.ProcID]sim.Decision, cfg.N),
		Faulty:    setup.Faulty.Clone(),
	}
	collectorMu.Lock()
	res.Report = collector.Report()
	collectorMu.Unlock()
	for i, p := range peers {
		v, ok := p.node.Decide()
		if sink != nil {
			sink.Emit(trace.Event{
				Kind: trace.KindDecide, Phase: wallPhases,
				From: ident.ProcID(i), To: ident.None, Value: v, Flag: ok,
			})
		}
		res.Decisions[ident.ProcID(i)] = sim.Decision{Value: v, Decided: ok}
	}
	return res, nil
}

// recycle drains every reader's spent frame buffers back to the shared
// pools. Called at the start of a Run, when all references into those
// buffers (node-retained payloads, dead peers' inboxes) are unreachable.
func (m *Mesh) recycle() {
	m.mu.Lock()
	readers := m.readers
	m.mu.Unlock()
	for _, fr := range readers {
		fr.recycleSpent()
	}
}

// Close tears the mesh down: listeners, outbound and inbound connections.
// It must not race a Run; stragglers in per-connection readers exit on
// their connection's close. Idempotent.
func (m *Mesh) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	inbound := m.inbound
	m.mu.Unlock()
	for _, ln := range m.listeners {
		if ln != nil {
			_ = ln.Close()
		}
	}
	for _, ep := range m.eps {
		if ep == nil {
			continue
		}
		for _, c := range ep.conns {
			if c != nil {
				_ = c.Close()
			}
		}
	}
	for _, c := range inbound {
		_ = c.Close()
	}
	m.wg.Wait()
}

// Frame-buffer pools, shared by every mesh in the process. Buffers are
// pooled as pointers so Get/Put stay allocation-free on the steady state.
var (
	bodyPool = sync.Pool{New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	}}
	procPool = sync.Pool{New: func() any {
		p := make([]ident.ProcID, 0, arenaChunk)
		return &p
	}}
)

const (
	// arenaChunk is the signer-arena chunk size (ProcIDs per chunk).
	arenaChunk = 1024
	// arenaMin retires a chunk once its free space drops below this many
	// entries, bounding the per-message spill probability.
	arenaMin = 64
)

// frameReader decodes inbound frames with reusable state: a pooled body
// buffer, a reusable wire.Reader, an envelope scratch (safe to reuse per
// frame because noteFrame copies envelope structs out), and a signer arena
// that ProcsInto appends into. Payload and signer slices alias the body and
// arena, so buffers that delivered content are retired to a spent list and
// recycled only between mesh epochs, when nothing can reference them; the
// sim.Node contract ("envelope payloads are never recycled") holds because
// a node never outlives its epoch.
type frameReader struct {
	to   ident.ProcID
	hdr  [4]byte
	body *[]byte // in-hand pooled buffer; nil after retire
	rd   wire.Reader
	ver  byte // version byte of the frame last read
	envs []sim.Envelope

	arena    []ident.ProcID  // len = used, cap = chunk size
	arenaPtr *[]ident.ProcID // pool token for the current chunk

	mu          sync.Mutex // guards the spent lists against epoch recycling
	spentBodies []*[]byte
	spentArenas []*[]ident.ProcID
}

// readFrame reads one length-prefixed frame into the reader's buffer and
// decodes the version byte and epoch tag, leaving the message section for
// decode — callers drop stale-epoch frames without paying for their decode.
// A version outside the compatibility window fails with wire.ErrWireVersion
// before any layout behind the byte is trusted; the caller closes the
// connection rather than guessing where the next frame starts.
func (fr *frameReader) readFrame(conn net.Conn) (uint64, error) {
	if _, err := io.ReadFull(conn, fr.hdr[:]); err != nil {
		return 0, err
	}
	n := binary.BigEndian.Uint32(fr.hdr[:])
	if n > maxFrame {
		return 0, fmt.Errorf("%w: %d bytes > %d", ErrFrameTooLarge, n, maxFrame)
	}
	if fr.body == nil {
		fr.body = bodyPool.Get().(*[]byte)
	}
	buf := *fr.body
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	} else {
		buf = buf[:n]
	}
	*fr.body = buf
	if _, err := io.ReadFull(conn, buf); err != nil {
		return 0, err
	}
	fr.rd.Reset(buf)
	fr.ver = fr.rd.Byte()
	if err := fr.rd.Err(); err != nil {
		return 0, err
	}
	if err := wire.CheckFrameVersion(fr.ver); err != nil {
		return 0, err
	}
	epoch := fr.rd.Uint()
	return epoch, fr.rd.Err()
}

// decode parses the message section of the frame last read. The returned
// envelopes live in the reader's scratch: they are valid until the next
// readFrame, long enough for noteFrame to copy them out.
func (fr *frameReader) decode() (int, ident.ProcID, []sim.Envelope, error) {
	r := &fr.rd
	phase := int(r.Uint())
	from := r.Proc()
	if fr.ver >= wire.FrameV2 {
		// The v2 reserved frame-flags field: no flag is defined yet, so any
		// set bit comes from a future version this build cannot honor.
		if flags := r.Uint(); r.Err() == nil && flags != 0 {
			return 0, 0, nil, fmt.Errorf("%w: unknown frame flags %#x", wire.ErrWireVersion, flags)
		}
	}
	cnt := r.Len()
	if err := r.Err(); err != nil {
		return 0, 0, nil, err
	}
	envs := fr.envs[:0]
	for i := 0; i < cnt; i++ {
		payload := r.BytesField()
		signers := fr.procs(r)
		sigTotal := int(r.Uint())
		if err := r.Err(); err != nil {
			return 0, 0, nil, err
		}
		envs = append(envs, sim.Envelope{
			From: from, To: fr.to, Phase: phase,
			Payload: payload, Signers: signers, SigTotal: sigTotal,
		})
	}
	if err := r.Finish(); err != nil {
		return 0, 0, nil, err
	}
	fr.envs = envs
	return phase, from, envs, nil
}

// procs reads a signer list into the arena: ProcsInto appends into a
// zero-length sub-slice of the chunk's free space, so a list that fits
// costs no allocation; a list that spills lands on its own heap array and
// needs no tracking (the GC reclaims it with the epoch's nodes).
func (fr *frameReader) procs(r *wire.Reader) []ident.ProcID {
	if fr.arenaPtr == nil || cap(fr.arena)-len(fr.arena) < arenaMin {
		fr.retireArena()
	}
	free := fr.arena[len(fr.arena):]
	out := r.ProcsInto(free)
	if n := len(out); n <= cap(free) {
		fr.arena = fr.arena[: len(fr.arena)+n : cap(fr.arena)]
	}
	return out
}

// retire moves the in-hand body to the spent list: its bytes are aliased by
// delivered envelopes and must survive until the epoch tears down.
func (fr *frameReader) retire() {
	fr.mu.Lock()
	fr.spentBodies = append(fr.spentBodies, fr.body)
	fr.mu.Unlock()
	fr.body = nil
}

// retireArena swaps in a fresh signer chunk, keeping the exhausted one
// alive on the spent list for the rest of the epoch.
func (fr *frameReader) retireArena() {
	if fr.arenaPtr != nil {
		*fr.arenaPtr = fr.arena
		fr.mu.Lock()
		fr.spentArenas = append(fr.spentArenas, fr.arenaPtr)
		fr.mu.Unlock()
	}
	fr.arenaPtr = procPool.Get().(*[]ident.ProcID)
	fr.arena = (*fr.arenaPtr)[:0]
}

// recycleSpent returns the spent buffers to the pools. Runs between epochs
// (or on an idle mesh), when no live envelope aliases them; a straggler
// frame decoded concurrently only ever touches the reader's in-hand
// buffers, which are not on the spent lists.
func (fr *frameReader) recycleSpent() {
	fr.mu.Lock()
	for i, b := range fr.spentBodies {
		bodyPool.Put(b)
		fr.spentBodies[i] = nil
	}
	fr.spentBodies = fr.spentBodies[:0]
	for i, a := range fr.spentArenas {
		procPool.Put(a)
		fr.spentArenas[i] = nil
	}
	fr.spentArenas = fr.spentArenas[:0]
	fr.mu.Unlock()
}
