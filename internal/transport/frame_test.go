package transport

import (
	"encoding/binary"
	"errors"
	"net"
	"testing"

	"byzex/internal/ident"
	"byzex/internal/sim"
)

// pipeConn runs writeFrame/readFrame across a real in-memory connection.
func pipeRoundTrip(t *testing.T, phase int, from ident.ProcID, msgs []sim.Envelope) (int, ident.ProcID, []sim.Envelope) {
	t.Helper()
	a, b := net.Pipe()
	defer func() { _ = a.Close() }()
	defer func() { _ = b.Close() }()

	errCh := make(chan error, 1)
	go func() { errCh <- writeFrame(a, 0, phase, from, msgs) }()
	gotPhase, gotFrom, gotMsgs, err := readFrame(b, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	return gotPhase, gotFrom, gotMsgs
}

func TestFrameRoundTrip(t *testing.T) {
	msgs := []sim.Envelope{
		{From: 3, To: 9, Phase: 7, Payload: []byte("alpha"), Signers: []ident.ProcID{1, 2}, SigTotal: 2},
		{From: 3, To: 9, Phase: 7, Payload: nil, SigTotal: 0},
	}
	phase, from, got := pipeRoundTrip(t, 7, 3, msgs)
	if phase != 7 || from != 3 {
		t.Fatalf("header (%d,%v)", phase, from)
	}
	if len(got) != 2 {
		t.Fatalf("%d messages", len(got))
	}
	if string(got[0].Payload) != "alpha" || got[0].SigTotal != 2 || len(got[0].Signers) != 2 {
		t.Fatalf("message 0 mismatch: %+v", got[0])
	}
	if got[0].To != 9 {
		t.Fatal("recipient not rewritten to the reader's identity")
	}
}

func TestFrameEmpty(t *testing.T) {
	phase, from, got := pipeRoundTrip(t, 2, 5, nil)
	if phase != 2 || from != 5 || len(got) != 0 {
		t.Fatalf("empty frame round trip: %d %v %d", phase, from, len(got))
	}
}

func TestFrameOversizeRejected(t *testing.T) {
	a, b := net.Pipe()
	defer func() { _ = a.Close() }()
	defer func() { _ = b.Close() }()
	go func() {
		// Forge a header claiming a frame beyond the limit.
		_, _ = a.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	}()
	_, _, _, err := readFrame(b, 0)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversize frame: got %v, want ErrFrameTooLarge", err)
	}
}

func TestFrameAtLimitNotOversize(t *testing.T) {
	// A header announcing exactly maxFrame must not trip the typed error;
	// it fails later (closed pipe), proving the bound is exclusive.
	a, b := net.Pipe()
	defer func() { _ = b.Close() }()
	go func() {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], maxFrame)
		_, _ = a.Write(hdr[:])
		_ = a.Close()
	}()
	if _, _, _, err := readFrame(b, 0); errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("frame at the limit misclassified: %v", err)
	}
}

func TestFrameGarbageBodyRejected(t *testing.T) {
	a, b := net.Pipe()
	defer func() { _ = a.Close() }()
	defer func() { _ = b.Close() }()
	go func() {
		_, _ = a.Write([]byte{0, 0, 0, 3, 0xFF, 0xFF, 0xFF})
	}()
	if _, _, _, err := readFrame(b, 0); err == nil {
		t.Fatal("garbage body accepted")
	}
}
