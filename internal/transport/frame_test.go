package transport

import (
	"encoding/binary"
	"errors"
	"net"
	"testing"

	"byzex/internal/ident"
	"byzex/internal/sim"
	"byzex/internal/wire"
)

// readOneFrame drives a frameReader through one header+decode cycle, the
// way the mesh's serveConn does for a live-epoch frame.
func readOneFrame(t *testing.T, fr *frameReader, conn net.Conn) (uint64, int, ident.ProcID, []sim.Envelope) {
	t.Helper()
	epoch, err := fr.readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	phase, from, msgs, err := fr.decode()
	if err != nil {
		t.Fatal(err)
	}
	return epoch, phase, from, msgs
}

// pipeRoundTrip runs writeFrame/frameReader across a real in-memory
// connection.
func pipeRoundTrip(t *testing.T, epoch uint64, phase int, from ident.ProcID, msgs []sim.Envelope) (uint64, int, ident.ProcID, []sim.Envelope) {
	t.Helper()
	a, b := net.Pipe()
	defer func() { _ = a.Close() }()
	defer func() { _ = b.Close() }()

	errCh := make(chan error, 1)
	go func() { errCh <- writeFrame(a, wire.NewWriter(64), 0, 0, epoch, phase, from, msgs) }()
	fr := &frameReader{to: 9}
	gotEpoch, gotPhase, gotFrom, gotMsgs := readOneFrame(t, fr, b)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	return gotEpoch, gotPhase, gotFrom, gotMsgs
}

func TestFrameRoundTrip(t *testing.T) {
	msgs := []sim.Envelope{
		{From: 3, To: 9, Phase: 7, Payload: []byte("alpha"), Signers: []ident.ProcID{1, 2}, SigTotal: 2},
		{From: 3, To: 9, Phase: 7, Payload: nil, SigTotal: 0},
	}
	epoch, phase, from, got := pipeRoundTrip(t, 5, 7, 3, msgs)
	if epoch != 5 || phase != 7 || from != 3 {
		t.Fatalf("header (%d,%d,%v)", epoch, phase, from)
	}
	if len(got) != 2 {
		t.Fatalf("%d messages", len(got))
	}
	if string(got[0].Payload) != "alpha" || got[0].SigTotal != 2 || len(got[0].Signers) != 2 {
		t.Fatalf("message 0 mismatch: %+v", got[0])
	}
	if got[0].Signers[0] != 1 || got[0].Signers[1] != 2 {
		t.Fatalf("signers mismatch: %v", got[0].Signers)
	}
	if got[0].To != 9 {
		t.Fatal("recipient not rewritten to the reader's identity")
	}
}

func TestFrameEmpty(t *testing.T) {
	epoch, phase, from, got := pipeRoundTrip(t, 1, 2, 5, nil)
	if epoch != 1 || phase != 2 || from != 5 || len(got) != 0 {
		t.Fatalf("empty frame round trip: %d %d %v %d", epoch, phase, from, len(got))
	}
}

// TestFrameReaderReuse pins the scratch-reuse contract: a reader decoding
// many frames back to back must hand out envelopes that are valid until the
// next read, with each retired body preserved while its payload is aliased.
func TestFrameReaderReuse(t *testing.T) {
	a, b := net.Pipe()
	defer func() { _ = a.Close() }()
	defer func() { _ = b.Close() }()

	const frames = 50
	go func() {
		w := wire.NewWriter(64)
		for i := 0; i < frames; i++ {
			msgs := []sim.Envelope{{
				From: 1, To: 2, Phase: i,
				Payload: []byte{byte(i), byte(i + 1)}, Signers: []ident.ProcID{ident.ProcID(i % 7)}, SigTotal: i,
			}}
			if err := writeFrame(a, w, 0, 0, 3, i, 1, msgs); err != nil {
				return
			}
		}
	}()

	fr := &frameReader{to: 2}
	type kept struct {
		payload []byte
		signer  ident.ProcID
	}
	var retained []kept
	for i := 0; i < frames; i++ {
		epoch, phase, from, msgs := readOneFrame(t, fr, b)
		if epoch != 3 || phase != i || from != 1 || len(msgs) != 1 {
			t.Fatalf("frame %d header: epoch=%d phase=%d from=%v msgs=%d", i, epoch, phase, from, len(msgs))
		}
		// Retain the aliased slices, as a peer's inbound buffer does, and
		// retire the body, as serveConn does for delivered frames.
		retained = append(retained, kept{payload: msgs[0].Payload, signer: msgs[0].Signers[0]})
		fr.retire()
	}
	for i, k := range retained {
		if len(k.payload) != 2 || k.payload[0] != byte(i) || k.payload[1] != byte(i+1) {
			t.Fatalf("frame %d payload corrupted after later reads: %v", i, k.payload)
		}
		if k.signer != ident.ProcID(i%7) {
			t.Fatalf("frame %d signer corrupted: %v", i, k.signer)
		}
	}
	// Recycling the spent bodies must be possible exactly once per retire.
	fr.recycleSpent()
}

func TestFrameOversizeRejected(t *testing.T) {
	a, b := net.Pipe()
	defer func() { _ = a.Close() }()
	defer func() { _ = b.Close() }()
	go func() {
		// Forge a header claiming a frame beyond the limit.
		_, _ = a.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	}()
	fr := &frameReader{to: 0}
	_, err := fr.readFrame(b)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversize frame: got %v, want ErrFrameTooLarge", err)
	}
}

func TestFrameAtLimitNotOversize(t *testing.T) {
	// A header announcing exactly maxFrame must not trip the typed error;
	// it fails later (closed pipe), proving the bound is exclusive.
	a, b := net.Pipe()
	defer func() { _ = b.Close() }()
	go func() {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], maxFrame)
		_, _ = a.Write(hdr[:])
		_ = a.Close()
	}()
	fr := &frameReader{to: 0}
	if _, err := fr.readFrame(b); errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("frame at the limit misclassified: %v", err)
	}
}

func TestFrameGarbageBodyRejected(t *testing.T) {
	a, b := net.Pipe()
	defer func() { _ = a.Close() }()
	defer func() { _ = b.Close() }()
	go func() {
		_, _ = a.Write([]byte{0, 0, 0, 5, wire.FrameV1, 0x01, 0xFF, 0xFF, 0xFF})
	}()
	fr := &frameReader{to: 0}
	if _, err := fr.readFrame(b); err != nil {
		t.Fatalf("epoch tag of garbage frame unreadable: %v", err)
	}
	if _, _, _, err := fr.decode(); err == nil {
		t.Fatal("garbage body accepted")
	}
}

// pipeRoundTripVer is pipeRoundTrip with an explicit emitted frame version.
func pipeRoundTripVer(t *testing.T, ver byte, epoch uint64, phase int, from ident.ProcID, msgs []sim.Envelope) (uint64, int, ident.ProcID, []sim.Envelope) {
	t.Helper()
	a, b := net.Pipe()
	defer func() { _ = a.Close() }()
	defer func() { _ = b.Close() }()
	errCh := make(chan error, 1)
	go func() { errCh <- writeFrame(a, wire.NewWriter(64), 0, ver, epoch, phase, from, msgs) }()
	fr := &frameReader{to: 9}
	gotEpoch, gotPhase, gotFrom, gotMsgs := readOneFrame(t, fr, b)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if fr.ver != ver {
		t.Fatalf("reader saw version %d, frame carried %d", fr.ver, ver)
	}
	return gotEpoch, gotPhase, gotFrom, gotMsgs
}

// TestFrameVersionWindow pins the compatibility window: every version in
// [FrameVersionMin, FrameVersion] round-trips through one reader.
func TestFrameVersionWindow(t *testing.T) {
	msgs := []sim.Envelope{{From: 3, To: 9, Phase: 7, Payload: []byte("v"), Signers: []ident.ProcID{1}, SigTotal: 1}}
	for ver := wire.FrameVersionMin; ver <= wire.FrameVersion; ver++ {
		epoch, phase, from, got := pipeRoundTripVer(t, ver, 5, 7, 3, msgs)
		if epoch != 5 || phase != 7 || from != 3 || len(got) != 1 || string(got[0].Payload) != "v" {
			t.Fatalf("v%d round trip: epoch=%d phase=%d from=%v msgs=%+v", ver, epoch, phase, from, got)
		}
	}
}

// TestFrameFutureVersionRejected pins the typed rejection: a frame one
// version past the window fails readFrame with wire.ErrWireVersion — never a
// misparse of the unknown layout behind it.
func TestFrameFutureVersionRejected(t *testing.T) {
	a, b := net.Pipe()
	defer func() { _ = a.Close() }()
	defer func() { _ = b.Close() }()
	go func() {
		// A well-formed v+1 frame body as far as this build can know it:
		// future version byte, then arbitrary bytes.
		_, _ = a.Write([]byte{0, 0, 0, 4, wire.FrameVersion + 1, 0x01, 0x01, 0x00})
	}()
	fr := &frameReader{to: 0}
	if _, err := fr.readFrame(b); !errors.Is(err, wire.ErrWireVersion) {
		t.Fatalf("future version: got %v, want wire.ErrWireVersion", err)
	}
}

// TestFrameV2UnknownFlagsRejected pins the reserved-flags contract: a v2
// frame with any flag bit set is from a future this build cannot honor and
// fails decode with wire.ErrWireVersion.
func TestFrameV2UnknownFlagsRejected(t *testing.T) {
	a, b := net.Pipe()
	defer func() { _ = a.Close() }()
	defer func() { _ = b.Close() }()
	go func() {
		w := wire.NewWriter(64)
		w.Byte(0)
		w.Byte(0)
		w.Byte(0)
		w.Byte(0)
		w.Byte(wire.FrameV2)
		w.Uint(1)   // epoch
		w.Uint(1)   // phase
		w.Int(1)    // sender
		w.Uint(0x8) // reserved flags: a bit this build does not define
		w.Uint(0)   // message count
		buf := w.Bytes()
		binary.BigEndian.PutUint32(buf[:4], uint32(len(buf)-4))
		_, _ = a.Write(buf)
	}()
	fr := &frameReader{to: 0}
	if _, err := fr.readFrame(b); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := fr.decode(); !errors.Is(err, wire.ErrWireVersion) {
		t.Fatalf("unknown v2 flags: got %v, want wire.ErrWireVersion", err)
	}
}
