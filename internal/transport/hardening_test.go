package transport

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"testing"
	"time"

	"byzex/internal/faultnet"
	"byzex/internal/ident"
	"byzex/internal/sim"
	"byzex/internal/wire"
)

// TestWriteFrameDeadline pins the write-deadline hardening: a receiver that
// never reads must not block the sender's phase loop past the timeout. Before
// writeFrame took a deadline, this write hung forever.
func TestWriteFrameDeadline(t *testing.T) {
	a, b := net.Pipe()
	defer func() { _ = a.Close() }()
	defer func() { _ = b.Close() }()

	// b never reads: net.Pipe is unbuffered, so the very first write blocks
	// until the deadline fires.
	msgs := []sim.Envelope{{From: 1, To: 2, Phase: 1, Payload: []byte("stuck")}}
	start := time.Now()
	err := writeFrame(a, wire.NewWriter(64), 100*time.Millisecond, 0, 1, 1, 1, msgs)
	if err == nil {
		t.Fatal("write to a dead receiver succeeded")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("got %v, want a net timeout error", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("write blocked %v despite the deadline", elapsed)
	}
}

// TestWriteFrameDeadlineReset checks that the deadline is cleared after a
// successful write: a later slow-but-legitimate write on the same connection
// must not inherit a stale deadline.
func TestWriteFrameDeadlineReset(t *testing.T) {
	a, b := net.Pipe()
	defer func() { _ = a.Close() }()
	defer func() { _ = b.Close() }()

	go func() {
		fr := &frameReader{to: 2}
		for {
			if _, err := fr.readFrame(b); err != nil {
				return
			}
			if _, _, _, err := fr.decode(); err != nil {
				return
			}
		}
	}()
	// The warm-mesh path reuses one writer per endpoint across every frame of
	// every epoch, so both writes share it here.
	w := wire.NewWriter(64)
	if err := writeFrame(a, w, 50*time.Millisecond, 0, 1, 1, 1, nil); err != nil {
		t.Fatalf("first write: %v", err)
	}
	// Sleep past the first deadline, then write with no timeout; a leaked
	// deadline would fail this write immediately.
	time.Sleep(80 * time.Millisecond)
	if err := writeFrame(a, w, 0, 0, 1, 2, 1, nil); err != nil {
		t.Fatalf("second write hit a stale deadline: %v", err)
	}
}

// TestWriteFrameWriterReuse pins the zero-alloc writer contract across a warm
// mesh's lifetime: a single endpoint writer must produce byte-identical frames
// whether fresh or reused, including across epoch bumps.
func TestWriteFrameWriterReuse(t *testing.T) {
	capture := func(w *wire.Writer, epoch uint64, phase int, msgs []sim.Envelope) []byte {
		a, b := net.Pipe()
		defer func() { _ = a.Close() }()
		defer func() { _ = b.Close() }()
		got := make(chan []byte, 1)
		go func() {
			buf := make([]byte, maxFrame)
			n, _ := b.Read(buf)
			got <- buf[:n]
		}()
		if err := writeFrame(a, w, 0, 0, epoch, phase, 1, msgs); err != nil {
			t.Fatalf("writeFrame: %v", err)
		}
		return <-got
	}

	msgs := []sim.Envelope{{From: 1, To: 0, Phase: 3, Payload: []byte("payload"), Signers: []ident.ProcID{2}, SigTotal: 1}}
	shared := wire.NewWriter(16)
	first := append([]byte(nil), capture(shared, 4, 3, msgs)...)
	// Interleave an unrelated frame (different epoch/phase) on the same writer.
	_ = capture(shared, 5, 9, nil)
	second := capture(shared, 4, 3, msgs)
	fresh := capture(wire.NewWriter(16), 4, 3, msgs)
	if string(first) != string(second) || string(first) != string(fresh) {
		t.Fatalf("reused writer diverged:\n first %x\nsecond %x\n fresh %x", first, second, fresh)
	}
}

// testPeer builds a bare peer for buffer-logic tests; the node and recorder
// are never touched by noteFrame/waitPhase.
func testPeer(cfg peerConfig) *peer {
	return newPeer(cfg, nil, nil, nil)
}

// TestNoteFrameLateDrop is the regression test for the map-resurrection leak:
// frames for a phase waitPhase has already closed out must be discarded, not
// re-inserted into the per-phase maps (where nothing would ever delete them).
func TestNoteFrameLateDrop(t *testing.T) {
	p := testPeer(peerConfig{id: 0, n: 3, t: 2, timeout: 10 * time.Millisecond})
	p.noteFrame(1, 1, nil)
	p.noteFrame(1, 2, nil)
	if _, err := p.waitPhase(1); err != nil {
		t.Fatal(err)
	}

	// A straggler delivers phase 1 again after the phase was closed out.
	p.noteFrame(1, 2, []sim.Envelope{{From: 2, To: 0, Phase: 1, Payload: []byte("late")}})
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.inbound) != 0 || len(p.arrived) != 0 {
		t.Fatalf("late frame resurrected phase maps: inbound=%v arrived=%v", p.inbound, p.arrived)
	}
}

// TestNoteFrameFaultTransforms drives the four frame-layer verdicts through
// noteFrame directly: drop empties but still arrives, delay stashes for the
// due phase, dup doubles, reorder reverses.
func TestNoteFrameFaultTransforms(t *testing.T) {
	plan := faultnet.MustParse("drop=1->0@1;delay=2->0@1+1;dup=1->0@2;reorder=2->0@2", 7)
	p := testPeer(peerConfig{id: 0, n: 4, t: 3, timeout: 10 * time.Millisecond, faults: plan})

	env := func(from ident.ProcID, phase int, tag string) sim.Envelope {
		return sim.Envelope{From: from, To: 0, Phase: phase, Payload: []byte(tag)}
	}

	// Phase 1: 1->0 dropped, 2->0 delayed one phase, 3->0 untouched.
	p.noteFrame(1, 1, []sim.Envelope{env(1, 1, "dropped")})
	p.noteFrame(1, 2, []sim.Envelope{env(2, 1, "held")})
	p.noteFrame(1, 3, []sim.Envelope{env(3, 1, "clean")})
	inbox, err := p.waitPhase(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(inbox) != 1 || string(inbox[0].Payload) != "clean" {
		t.Fatalf("phase 1 inbox: %+v", inbox)
	}

	// Phase 2: 1->0 duplicated, 2->0 reordered; the held phase-1 message is
	// due now and must sort after sender 2's current traffic.
	p.noteFrame(2, 1, []sim.Envelope{env(1, 2, "twice")})
	p.noteFrame(2, 2, []sim.Envelope{env(2, 2, "b"), env(2, 2, "a")})
	p.noteFrame(2, 3, nil)
	inbox, err = p.waitPhase(2)
	if err != nil {
		t.Fatal(err)
	}
	sortInbox(inbox)
	var got []string
	for _, e := range inbox {
		got = append(got, string(e.Payload))
	}
	want := []string{"twice", "twice", "a", "b", "held"}
	if len(got) != len(want) {
		t.Fatalf("phase 2 inbox %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("phase 2 inbox %v, want %v", got, want)
		}
	}
}

// TestDialPeerCtxCancel pins the ctx-aware dial loop: cancelling the context
// mid-backoff must abort the dial promptly instead of burning the full 5s
// retry budget against a dead address.
func TestDialPeerCtxCancel(t *testing.T) {
	// A just-closed listener's address refuses connections, sending dialPeer
	// into its backoff loop.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()

	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(50*time.Millisecond, cancel)
	start := time.Now()
	conn, err := dialPeer(ctx, addr, rand.New(rand.NewSource(1)))
	if conn != nil {
		_ = conn.Close()
		t.Fatal("dial to a closed listener succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("dial ignored cancellation for %v", elapsed)
	}
}
