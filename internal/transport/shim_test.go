package transport_test

import (
	"context"
	"testing"
	"time"

	"byzex/internal/adversary"
	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/protocols/alg1"
	"byzex/internal/protocols/dolevstrong"
	"byzex/internal/sig"
	"byzex/internal/transport"
)

// assertSameOutcome compares the full decision maps, faulty sets and
// information-exchange totals of two cluster runs.
func assertSameOutcome(t *testing.T, legacy, unified *transport.Result) {
	t.Helper()
	if len(legacy.Decisions) != len(unified.Decisions) {
		t.Fatalf("decision counts differ: legacy %d, unified %d", len(legacy.Decisions), len(unified.Decisions))
	}
	for id, ld := range legacy.Decisions {
		if ud, ok := unified.Decisions[id]; !ok || ud != ld {
			t.Fatalf("decision of %v differs: legacy %+v, unified %+v", id, ld, ud)
		}
	}
	if legacy.Faulty.Len() != unified.Faulty.Len() ||
		legacy.Faulty.Intersect(unified.Faulty).Len() != legacy.Faulty.Len() {
		t.Fatalf("faulty sets differ: legacy %v, unified %v", legacy.Faulty.Sorted(), unified.Faulty.Sorted())
	}
	lr, ur := legacy.Report, unified.Report
	if lr.MessagesCorrect != ur.MessagesCorrect || lr.SignaturesCorrect != ur.SignaturesCorrect ||
		lr.BytesCorrect != ur.BytesCorrect {
		t.Fatalf("reports differ: legacy %s, unified %s", lr.String(), ur.String())
	}
}

// TestDeprecatedRunMatchesRunCluster pins the deprecated Config/Run shim to
// RunCluster: same scheme, same faulty coalition, identical decisions and
// totals. The shim must stay a pure adapter.
func TestDeprecatedRunMatchesRunCluster(t *testing.T) {
	const n, tt = 8, 2
	scheme := sig.NewHMAC(n, 91)
	faulty := ident.NewSet(6, 7)

	legacy, err := transport.Run(context.Background(), transport.Config{
		Protocol: dolevstrong.Protocol{}, N: n, T: tt, Value: ident.V1,
		Scheme: scheme, Adversary: adversary.Silent{}, Faulty: faulty,
		Seed: 91, PhaseTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatalf("legacy: %v", err)
	}
	unified, err := transport.RunCluster(context.Background(), core.Config{
		Protocol: dolevstrong.Protocol{}, N: n, T: tt, Value: ident.V1,
		Scheme: scheme, Adversary: adversary.Silent{}, FaultyOverride: faulty,
		Seed: 91,
	}, transport.Net{PhaseTimeout: 10 * time.Second})
	if err != nil {
		t.Fatalf("unified: %v", err)
	}
	assertSameOutcome(t, legacy, unified)
	if _, err := legacy.Decision(0, ident.V1); err != nil {
		t.Fatalf("legacy agreement: %v", err)
	}
}

// TestDeprecatedRunDefaultScheme pins the shim's historical defaults: a nil
// scheme resolves to HMAC keyed off seed^0x7cb (not core's default), and an
// adversary without an explicit Faulty set corrupts nobody — the legacy API
// never consulted Adversary.Corrupt.
func TestDeprecatedRunDefaultScheme(t *testing.T) {
	const n, tt = 7, 3
	legacy, err := transport.Run(context.Background(), transport.Config{
		Protocol: alg1.Protocol{}, N: n, T: tt, Value: ident.V1,
		Adversary: adversary.Silent{}, // no Faulty: must stay uncorrupted
		Seed:      33, PhaseTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatalf("legacy: %v", err)
	}
	unified, err := transport.RunCluster(context.Background(), core.Config{
		Protocol: alg1.Protocol{}, N: n, T: tt, Value: ident.V1,
		Scheme:    sig.NewHMAC(n, 33^0x7cb),
		Adversary: adversary.Silent{}, FaultyOverride: make(ident.Set),
		Seed: 33,
	}, transport.Net{PhaseTimeout: 10 * time.Second})
	if err != nil {
		t.Fatalf("unified: %v", err)
	}
	if legacy.Faulty.Len() != 0 {
		t.Fatalf("legacy shim consulted Corrupt: faulty=%v", legacy.Faulty.Sorted())
	}
	assertSameOutcome(t, legacy, unified)
}
