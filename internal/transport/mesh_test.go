package transport

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/protocols/alg1"
	"byzex/internal/sim"
	"byzex/internal/wire"
)

func meshConfig(value ident.Value, seed int64) core.Config {
	return core.Config{Protocol: alg1.Protocol{}, N: 3, T: 1, Value: value, Seed: seed}
}

func meshAgreement(t *testing.T, res *Result, want ident.Value) {
	t.Helper()
	for id, d := range res.Decisions {
		if res.Faulty.Has(id) {
			continue
		}
		if !d.Decided || d.Value != want {
			t.Fatalf("%v decided (%v,%v), want %v", id, d.Value, d.Decided, want)
		}
	}
}

// TestMeshMultiEpoch pins the tentpole contract: one warm mesh serves many
// instances back to back, with per-instance state fully reset between epochs
// (different values and seeds must not bleed into each other).
func TestMeshMultiEpoch(t *testing.T) {
	ctx := context.Background()
	m, err := NewMesh(ctx, 3, Net{PhaseTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	values := []ident.Value{ident.V1, ident.V0, ident.V1, ident.V0, ident.V1}
	for i, v := range values {
		res, err := m.Run(ctx, meshConfig(v, int64(100+i)))
		if err != nil {
			t.Fatalf("epoch %d: %v", i+1, err)
		}
		meshAgreement(t, res, v)
		if res.Report.MessagesCorrect == 0 {
			t.Fatalf("epoch %d counted no messages", i+1)
		}
	}
	if m.epoch != uint64(len(values)) {
		t.Fatalf("mesh at epoch %d after %d runs", m.epoch, len(values))
	}
}

// TestMeshReconnectKeepsLiveLinks kills one outbound connection between
// epochs. The next instance must succeed by redialing exactly that link; the
// rest of the warm mesh must be the same sockets as before — reconnection is
// surgical, not a rebuild.
func TestMeshReconnectKeepsLiveLinks(t *testing.T) {
	ctx := context.Background()
	m, err := NewMesh(ctx, 3, Net{PhaseTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	if _, err := m.Run(ctx, meshConfig(ident.V1, 7)); err != nil {
		t.Fatal(err)
	}

	// Sever 1 -> 2 behind the mesh's back, as a crashed-and-restarted peer
	// process would, and snapshot every other socket.
	broken := m.eps[1].conns[2]
	before := make(map[[2]int]net.Conn)
	for i, ep := range m.eps {
		for j, c := range ep.conns {
			if c != nil {
				before[[2]int{i, j}] = c
			}
		}
	}
	_ = broken.Close()

	res, err := m.Run(ctx, meshConfig(ident.V0, 8))
	if err != nil {
		t.Fatalf("epoch after severed link: %v", err)
	}
	meshAgreement(t, res, ident.V0)

	if m.eps[1].conns[2] == broken {
		t.Fatal("severed link was not redialed")
	}
	for key, old := range before {
		if key == [2]int{1, 2} {
			continue
		}
		if m.eps[key[0]].conns[key[1]] != old {
			t.Fatalf("live link %v was replaced during reconnect", key)
		}
	}
}

// TestMeshStaleEpochDropped injects frames tagged with a bogus epoch straight
// into a listener. They must be dropped before the message section is ever
// delivered: the next instance still agrees, untouched by the garbage.
func TestMeshStaleEpochDropped(t *testing.T) {
	ctx := context.Background()
	m, err := NewMesh(ctx, 3, Net{PhaseTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	conn, err := net.Dial("tcp", m.addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	w := wire.NewWriter(64)
	poison := []sim.Envelope{{From: 2, To: 0, Phase: 1, Payload: []byte("stale"), SigTotal: 99}}
	for phase := 1; phase <= 3; phase++ {
		if err := writeFrame(conn, w, time.Second, 0, 999, phase, 2, poison); err != nil {
			t.Fatal(err)
		}
	}

	res, err := m.Run(ctx, meshConfig(ident.V1, 21))
	if err != nil {
		t.Fatal(err)
	}
	meshAgreement(t, res, ident.V1)
}

// TestMeshMixedVersions is the rolling-upgrade drill: one peer emits the
// previous frame version while the rest emit the current one, and agreement
// still completes through one warm mesh — receivers accept the whole
// compatibility window, so an encoding change needs no flag day.
func TestMeshMixedVersions(t *testing.T) {
	ctx := context.Background()
	m, err := NewMesh(ctx, 3, Net{PhaseTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	if err := m.SetPeerWireVersion(1, wire.FrameVersionMin); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		res, err := m.Run(ctx, meshConfig(ident.V1, int64(40+i)))
		if err != nil {
			t.Fatalf("mixed-version epoch %d: %v", i+1, err)
		}
		meshAgreement(t, res, ident.V1)
	}

	if err := m.SetPeerWireVersion(3, wire.FrameVersionMin); err == nil {
		t.Fatal("peer id outside the mesh accepted")
	}
	if err := m.SetPeerWireVersion(1, wire.FrameVersion+1); !errors.Is(err, wire.ErrWireVersion) {
		t.Fatalf("future emit version: got %v, want wire.ErrWireVersion", err)
	}
}

// TestMeshFutureVersionConnRejected injects a v+1 frame straight into a
// listener: the mesh must drop the connection at the version byte (the typed
// wire.ErrWireVersion path pinned in TestFrameFutureVersionRejected) without
// the garbage layout ever reaching an instance.
func TestMeshFutureVersionConnRejected(t *testing.T) {
	ctx := context.Background()
	m, err := NewMesh(ctx, 3, Net{PhaseTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	conn, err := net.Dial("tcp", m.addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	if _, err := conn.Write([]byte{0, 0, 0, 4, wire.FrameVersion + 1, 0x01, 0x01, 0x00}); err != nil {
		t.Fatal(err)
	}
	// The server closes the poisoned connection: the next read sees EOF.
	if err := conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("connection survived a future-version frame")
	}

	res, err := m.Run(ctx, meshConfig(ident.V1, 33))
	if err != nil {
		t.Fatal(err)
	}
	meshAgreement(t, res, ident.V1)
}

// TestMeshBusy rejects a second concurrent instance instead of interleaving
// two epochs on the same sockets.
func TestMeshBusy(t *testing.T) {
	ctx := context.Background()
	m, err := NewMesh(ctx, 3, Net{PhaseTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	m.running.Store(true)
	if _, err := m.Run(ctx, meshConfig(ident.V1, 1)); !errors.Is(err, ErrMeshBusy) {
		t.Fatalf("got %v, want ErrMeshBusy", err)
	}
	m.running.Store(false)
	if _, err := m.Run(ctx, meshConfig(ident.V1, 1)); err != nil {
		t.Fatalf("mesh unusable after busy rejection: %v", err)
	}
}

// TestMeshSizeMismatch rejects configs that do not match the warm topology.
func TestMeshSizeMismatch(t *testing.T) {
	ctx := context.Background()
	m, err := NewMesh(ctx, 3, Net{PhaseTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	cfg := core.Config{Protocol: alg1.Protocol{}, N: 7, T: 3, Value: ident.V1}
	if _, err := m.Run(ctx, cfg); err == nil {
		t.Fatal("mesh for n=3 accepted a config with n=7")
	}
}

// TestMeshCloseIdempotent double-closes, including after traffic flowed.
func TestMeshCloseIdempotent(t *testing.T) {
	ctx := context.Background()
	m, err := NewMesh(ctx, 3, Net{PhaseTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(ctx, meshConfig(ident.V1, 3)); err != nil {
		t.Fatal(err)
	}
	m.Close()
	m.Close()
}
