package transport_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"byzex/internal/cli"
	"byzex/internal/core"
	"byzex/internal/faultnet"
	"byzex/internal/ident"
	"byzex/internal/trace"
	"byzex/internal/transport"
)

// runTCP executes cfg over localhost TCP with a fresh trace buffer.
func runTCP(t *testing.T, cfg core.Config) (*transport.Result, *trace.Buffer) {
	t.Helper()
	buf := trace.NewBuffer()
	cfg.Trace = buf
	res, err := transport.RunCluster(context.Background(), cfg, transport.Net{PhaseTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	return res, buf
}

func sameEvents(a, b []trace.Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func checkFaultCounters(t *testing.T, label string, events []trace.Event, want faultnet.Counters) {
	t.Helper()
	sum := trace.Summarize(events)
	got := faultnet.Counters{
		Drops: sum.FaultDrops, Delays: sum.FaultDelays, Dups: sum.FaultDups,
		Reorders: sum.FaultReorders, Crashes: sum.FaultCrashes,
	}
	if got != want {
		t.Errorf("%s: fault counters %+v, want %+v", label, got, want)
	}
}

// TestScenarioMatrix is the tentpole acceptance test: every numbered
// algorithm of the paper, under every fault family, with the plan kept
// inside the fault budget (Affected ⊆ faulty, |faulty| ≤ t), must still
// reach agreement and validity; two runs of the same seed must produce
// identical decisions and byte-identical traces; and the fault-* counters
// recovered from the trace must equal the plan's own accounting — on both
// substrates, whose decisions must also agree with each other.
func TestScenarioMatrix(t *testing.T) {
	const seed = 42
	algs := []struct {
		name string
		n, t int
		// exchange marks algorithms that are mutual-exchange primitives
		// rather than full agreement protocols (alg4 decides a constant);
		// unanimity and determinism are still asserted, validity is not.
		exchange bool
	}{
		{name: "alg1", n: 5, t: 2},
		{name: "alg2", n: 5, t: 2},
		{name: "alg3", n: 12, t: 2},
		{name: "alg4", n: 16, t: 2, exchange: true},
		{name: "alg5", n: 20, t: 2},
	}
	scenarios := []struct {
		name, spec string
	}{
		{"crash", "crash=1@2;crash=2@3"},
		{"drop-dup", "drop=1->3@2-3;dup=1->4@1;drop=2->*@2/0.6"},
		{"partition", "partition=1,2|3,4@2"},
		{"delay-reorder", "delay=1->*@1-2+1;reorder=2->*@*"},
	}
	for _, alg := range algs {
		proto, err := cli.Protocol(alg.name, cli.Params{N: alg.n, T: alg.t, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		phases := proto.Phases(alg.n, alg.t)
		for _, sc := range scenarios {
			t.Run(alg.name+"/"+sc.name, func(t *testing.T) {
				plan := faultnet.MustParse(sc.spec, seed)
				if err := plan.CheckBudget(alg.n, alg.t); err != nil {
					t.Fatalf("scenario not in budget: %v", err)
				}
				cfg := core.Config{
					Protocol: proto, N: alg.n, T: alg.t, Value: ident.V1,
					FaultyOverride: plan.Affected(alg.n), Seed: seed, Faults: plan,
				}
				want := plan.ExpectedCounters(alg.n, phases)

				res1, buf1 := runTCP(t, cfg)
				checkAgreement(t, res1, ident.V1, alg.exchange)
				checkFaultCounters(t, "tcp", buf1.Events(), want)

				// Same seed, second run: byte-identical trace and decisions.
				res2, buf2 := runTCP(t, cfg)
				if !sameEvents(buf1.Events(), buf2.Events()) {
					t.Error("same-seed reruns produced different traces")
				}
				for id, d := range res1.Decisions {
					if res2.Decisions[id] != d {
						t.Errorf("same-seed reruns diverge at %v: %+v vs %+v", id, d, res2.Decisions[id])
					}
				}

				// The in-memory engine mirrors the frame-layer semantics:
				// identical decisions, identical fault accounting.
				memBuf := trace.NewBuffer()
				memCfg := cfg
				memCfg.Trace = memBuf
				memRes, err := core.Run(context.Background(), memCfg)
				if err != nil {
					t.Fatalf("memory substrate: %v", err)
				}
				checkFaultCounters(t, "memory", memBuf.Events(), want)
				for id, d := range res1.Decisions {
					if got := memRes.Sim.Decisions[id]; got != d {
						t.Errorf("substrates diverge at %v: tcp %+v, memory %+v", id, d, got)
					}
				}
			})
		}
	}
}

// TestCrashAtPhaseK runs every protocol in the registry over TCP with the
// highest-numbered processor crash-halted at phase 2 and judged faulty. The
// crash budget is within t everywhere, so every non-strawman protocol must
// still reach agreement and validity; determinism across same-seed reruns is
// required of all of them, strawmen included.
func TestCrashAtPhaseK(t *testing.T) {
	configs := map[string]struct {
		n, t   int
		scheme string
		// exchange: mutual-exchange primitive (constant Decide) — assert
		// unanimity and determinism but not validity.
		exchange bool
	}{
		"alg1":               {n: 5, t: 2, scheme: "hmac"},
		"alg1-multi":         {n: 5, t: 2, scheme: "hmac"},
		"alg2":               {n: 5, t: 2, scheme: "hmac"},
		"alg3":               {n: 12, t: 2, scheme: "hmac"},
		"alg4":               {n: 16, t: 2, scheme: "hmac", exchange: true},
		"alg4-relay":         {n: 9, t: 2, scheme: "hmac", exchange: true},
		"alg5":               {n: 20, t: 2, scheme: "hmac"},
		"alg5-nopow":         {n: 20, t: 2, scheme: "hmac"},
		"ic":                 {n: 5, t: 1, scheme: "hmac"},
		"dolev-strong":       {n: 6, t: 2, scheme: "hmac"},
		"lsp":                {n: 7, t: 2, scheme: "plain"},
		"phase-king":         {n: 9, t: 2, scheme: "plain"},
		"strawman-broadcast": {n: 5, t: 1, scheme: "hmac"},
		"strawman-thinrelay": {n: 8, t: 2, scheme: "hmac"},
	}
	for _, name := range cli.ProtocolNames() {
		cfg, ok := configs[name]
		if !ok {
			t.Fatalf("no crash-test config for protocol %q", name)
		}
		t.Run(name, func(t *testing.T) {
			params := cli.Params{N: cfg.n, T: cfg.t, Seed: 9}
			proto, err := cli.Protocol(name, params)
			if err != nil {
				t.Fatal(err)
			}
			scheme, err := cli.Scheme(cfg.scheme, params)
			if err != nil {
				t.Fatal(err)
			}
			victim := ident.ProcID(cfg.n - 1)
			plan := faultnet.MustCompile(faultnet.Spec{Rules: []faultnet.Rule{
				{Kind: faultnet.KCrash, Proc: victim, AtPhase: 2},
			}}, 9)
			runCfg := core.Config{
				Protocol: proto, N: cfg.n, T: cfg.t, Value: ident.V1, Scheme: scheme,
				FaultyOverride: ident.NewSet(victim), Seed: 9, Faults: plan,
			}
			res1, _ := runTCP(t, runCfg)
			res2, _ := runTCP(t, runCfg)
			for id, d := range res1.Decisions {
				if res2.Decisions[id] != d {
					t.Errorf("same-seed reruns diverge at %v", id)
				}
			}
			if !strings.HasPrefix(name, "strawman") {
				checkAgreement(t, res1, ident.V1, cfg.exchange)
			}
		})
	}
}

// TestOverBudgetFaultsFailTyped pins the safety side of the budget contract:
// a plan the fault bound cannot absorb must surface as ErrStalled or
// ErrPeerCrashed — a typed refusal, never a divergent decision.
func TestOverBudgetFaultsFailTyped(t *testing.T) {
	proto, err := cli.Protocol("alg1", cli.Params{N: 5, T: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	base := core.Config{Protocol: proto, N: 5, T: 2, Value: ident.V1, Seed: 1}

	t.Run("blanket drop stalls", func(t *testing.T) {
		cfg := base
		cfg.Faults = faultnet.MustParse("drop=*->*@*", 1)
		cfg.FaultyOverride = ident.NewSet(1, 2) // the most t allows; the plan veils 4
		_, err := transport.RunCluster(context.Background(), cfg, transport.Net{PhaseTimeout: 2 * time.Second})
		if !errors.Is(err, transport.ErrStalled) {
			t.Fatalf("got %v, want ErrStalled", err)
		}
	})

	t.Run("unbudgeted crash surfaces", func(t *testing.T) {
		cfg := base
		cfg.Faults = faultnet.MustParse("crash=1@2", 1)
		cfg.FaultyOverride = make(ident.Set) // crash victim not judged faulty
		_, err := transport.RunCluster(context.Background(), cfg, transport.Net{PhaseTimeout: 2 * time.Second})
		if !errors.Is(err, transport.ErrPeerCrashed) {
			t.Fatalf("got %v, want ErrPeerCrashed", err)
		}
	})

	t.Run("crash trio beyond t", func(t *testing.T) {
		cfg := base
		cfg.Faults = faultnet.MustParse("crash=1@2;crash=2@2;crash=3@2", 1)
		cfg.FaultyOverride = ident.NewSet(1, 2)
		_, err := transport.RunCluster(context.Background(), cfg, transport.Net{PhaseTimeout: 2 * time.Second})
		if !errors.Is(err, transport.ErrStalled) && !errors.Is(err, transport.ErrPeerCrashed) {
			t.Fatalf("got %v, want ErrStalled or ErrPeerCrashed", err)
		}
	})
}
