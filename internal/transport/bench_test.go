package transport

import (
	"context"
	"net"
	"testing"
	"time"

	"byzex/internal/ident"
	"byzex/internal/sim"
	"byzex/internal/wire"
)

// BenchmarkMeshWarmVsCold is the headline number for the warm-mesh tentpole:
// one agreement instance per iteration, either over a fresh mesh torn down
// every time (cold, the old RunCluster behaviour) or over a single warm mesh
// reused across iterations. The gap is the dial/teardown tax the warm path
// removes.
func BenchmarkMeshWarmVsCold(b *testing.B) {
	ctx := context.Background()
	netCfg := Net{PhaseTimeout: 10 * time.Second}

	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cfg := meshConfig(ident.V1, int64(i))
			if _, err := RunCluster(ctx, cfg, netCfg); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("warm", func(b *testing.B) {
		m, err := NewMesh(ctx, 3, netCfg)
		if err != nil {
			b.Fatal(err)
		}
		defer m.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cfg := meshConfig(ident.V1, int64(i))
			if _, err := m.Run(ctx, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// loopbackPair returns two ends of a real TCP connection. The benchmarks use
// TCP rather than net.Pipe so the kernel's socket buffer absorbs the write:
// net.Pipe is unbuffered and would serialize writer and reader.
func loopbackPair(tb testing.TB) (net.Conn, net.Conn) {
	tb.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	defer func() { _ = ln.Close() }()
	ch := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			close(ch)
			return
		}
		ch <- c
	}()
	a, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		tb.Fatal(err)
	}
	bConn, ok := <-ch
	if !ok {
		tb.Fatal("accept failed")
	}
	return a, bConn
}

func benchEnvelopes() []sim.Envelope {
	return []sim.Envelope{
		{From: 1, To: 0, Phase: 4, Payload: []byte("value:1|sig-chain-material"), Signers: []ident.ProcID{1, 2, 3}, SigTotal: 3},
		{From: 1, To: 0, Phase: 4, Payload: []byte("value:0|second-message"), Signers: []ident.ProcID{1, 5}, SigTotal: 2},
	}
}

// BenchmarkFramePath measures the zero-alloc frame path end to end on a real
// TCP loopback socket: one encode+write and one read+decode per iteration,
// with the reader in its steady state (empty frames keep the in-hand buffer;
// delivered frames retire and are recycled here as a mesh does per epoch).
func BenchmarkFramePath(b *testing.B) {
	bench := func(b *testing.B, msgs []sim.Envelope) {
		a, c := loopbackPair(b)
		defer func() { _ = a.Close() }()
		defer func() { _ = c.Close() }()
		w := wire.NewWriter(256)
		fr := &frameReader{to: 0}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := writeFrame(a, w, 0, 0, 1, 4, 1, msgs); err != nil {
				b.Fatal(err)
			}
			if _, err := fr.readFrame(c); err != nil {
				b.Fatal(err)
			}
			if _, _, decoded, err := fr.decode(); err != nil {
				b.Fatal(err)
			} else if len(decoded) != len(msgs) {
				b.Fatalf("decoded %d messages, want %d", len(decoded), len(msgs))
			}
			if len(msgs) > 0 {
				fr.retire()
				fr.recycleSpent()
			}
		}
	}
	b.Run("empty", func(b *testing.B) { bench(b, nil) })
	b.Run("signed", func(b *testing.B) { bench(b, benchEnvelopes()) })
}

// TestFramePathAllocsBudget is the regression guard behind BENCH_005: the
// steady-state frame path must stay within a small constant number of
// allocations per frame. The budget is 2 (not 0) to absorb the occasional
// pool refill or arena chunk rotation without flaking.
func TestFramePathAllocsBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting is noisy under -short race wrappers")
	}
	a, c := loopbackPair(t)
	defer func() { _ = a.Close() }()
	defer func() { _ = c.Close() }()
	w := wire.NewWriter(256)
	fr := &frameReader{to: 0}
	msgs := benchEnvelopes()
	roundTrip := func() {
		if err := writeFrame(a, w, 0, 0, 1, 4, 1, msgs); err != nil {
			t.Fatal(err)
		}
		if _, err := fr.readFrame(c); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := fr.decode(); err != nil {
			t.Fatal(err)
		}
		fr.retire()
		fr.recycleSpent()
	}
	// Warm the writer, the reader scratch and the pools out of the measurement.
	for i := 0; i < 100; i++ {
		roundTrip()
	}
	const budget = 2.0
	if avg := testing.AllocsPerRun(200, roundTrip); avg > budget {
		t.Fatalf("frame path allocates %.2f/op, budget %.0f", avg, budget)
	}
}
