package search

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"byzex/internal/cli"
	"byzex/internal/runner"
	"byzex/internal/trace"
)

func mustProtocol(t *testing.T, name string, n, tt int) Config {
	t.Helper()
	params := cli.Params{N: n, T: tt, Seed: 7}
	proto, err := cli.Protocol(name, params)
	if err != nil {
		t.Fatalf("protocol %q: %v", name, err)
	}
	return Config{
		Protocol: proto,
		N:        n,
		T:        tt,
		Class:    ClassOf(name),
	}
}

// TestSearchDeterministic pins the determinism contract: the same seed must
// produce the identical trajectory, best candidate and trace at any
// parallelism level.
func TestSearchDeterministic(t *testing.T) {
	run := func(workers int) (*Result, []trace.Event) {
		cfg := mustProtocol(t, "alg1", 5, 2)
		cfg.Objective = ObjMessages
		cfg.Budget = 40
		cfg.Seed = 42
		cfg.Pool = runner.New(workers)
		buf := &trace.Buffer{}
		cfg.Trace = buf
		res, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatalf("search: %v", err)
		}
		return res, buf.Events()
	}
	serial, serialEvents := run(1)
	parallel, parallelEvents := run(4)

	if serial.Best == nil || parallel.Best == nil {
		t.Fatalf("no feasible candidate found: serial=%v parallel=%v", serial.Best, parallel.Best)
	}
	if got, want := parallel.Best.Cand.Key(), serial.Best.Cand.Key(); got != want {
		t.Errorf("best candidate differs across parallelism: %q vs %q", got, want)
	}
	if got, want := parallel.Best.Cost, serial.Best.Cost; got != want {
		t.Errorf("best cost differs: %d vs %d", got, want)
	}
	if !reflect.DeepEqual(serial.Trajectory, parallel.Trajectory) {
		t.Errorf("trajectories differ:\nserial:   %v\nparallel: %v", serial.Trajectory, parallel.Trajectory)
	}
	if !reflect.DeepEqual(serialEvents, parallelEvents) {
		t.Errorf("trace events differ: %d serial vs %d parallel", len(serialEvents), len(parallelEvents))
	}
	if serial.Evals != 40 {
		t.Errorf("evals = %d, want the full budget 40", serial.Evals)
	}
}

// TestSearchBaselineFeasible checks the anchor of the whole construction:
// the fault-free candidate is feasible and costs what an honest run costs.
func TestSearchBaselineFeasible(t *testing.T) {
	cfg := mustProtocol(t, "alg2", 5, 2)
	cfg.Objective = ObjSignatures
	cfg.Budget = 5
	cfg.Seed = 3
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("search: %v", err)
	}
	if !res.Baseline.Feasible {
		t.Fatalf("fault-free baseline infeasible: violation=%v", res.Baseline.Violation)
	}
	if res.Baseline.Cost <= 0 {
		t.Fatalf("baseline cost = %d, want > 0", res.Baseline.Cost)
	}
}

// TestAtlasGate runs the registry-wide sweep at a small budget and requires
// the gap gate to pass: no correct protocol undercuts its bound or breaks
// agreement, and the search breaks both strawmen.
func TestAtlasGate(t *testing.T) {
	budget := 60
	if testing.Short() {
		budget = 24
	}
	rows, err := RunAtlas(context.Background(), AtlasConfig{Budget: budget, Seed: 1})
	if err != nil {
		t.Fatalf("atlas: %v", err)
	}
	wantRows := 0
	for _, tgt := range Targets() {
		wantRows += 2
		if !tgt.Authenticated() {
			wantRows--
		}
	}
	if len(rows) != wantRows {
		t.Fatalf("got %d rows, want %d", len(rows), wantRows)
	}
	if err := CheckRows(rows); err != nil {
		t.Fatalf("gate: %v\n%s", err, RenderRows(rows))
	}
	t.Logf("\n%s", RenderRows(rows))
}

// TestSearchFindsStrawmanViolations pins the negative controls: a tiny
// budget must suffice for the search to break both strawmen, and CheckRows
// must refuse a strawman row without a violation.
func TestSearchFindsStrawmanViolations(t *testing.T) {
	for _, name := range []string{"strawman-broadcast", "strawman-thinrelay"} {
		tgt := Target{}
		for _, cand := range Targets() {
			if cand.Name == name {
				tgt = cand
			}
		}
		if tgt.Name == "" {
			t.Fatalf("target %q not in registry", name)
		}
		cfg := mustProtocol(t, name, tgt.N, tgt.T)
		cfg.Objective = ObjMessages
		cfg.Budget = 20
		cfg.Seed = 9
		res, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Violations == 0 {
			t.Errorf("%s: no violation found in %d evals", name, res.Evals)
			continue
		}
		v := res.ViolationSamples[0]
		t.Logf("%s broken by %s: %v", name, v.Cand.Provenance(), v.Violation)
	}

	row := Row{Target: Target{Name: "strawman-broadcast", Class: ClassStrawman}, Objective: ObjMessages}
	if err := CheckRows([]Row{row}); !errors.Is(err, ErrGate) {
		t.Errorf("CheckRows accepted a strawman row without violations: %v", err)
	}
}
