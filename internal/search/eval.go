package search

import (
	"context"
	"fmt"
	mrand "math/rand"
	"sort"

	"byzex/internal/core"
	"byzex/internal/faultnet"
	"byzex/internal/ident"
	"byzex/internal/sim"
	"byzex/internal/trace"
)

// Objective selects the quantity the search minimizes — the two costs the
// paper lower-bounds.
type Objective uint8

// The searchable objectives.
const (
	// ObjSignatures minimizes signatures sent by correct processors
	// (Theorem 1, core.SigLowerBound).
	ObjSignatures Objective = iota
	// ObjMessages minimizes messages sent by correct processors
	// (Theorem 2, core.MsgLowerBound).
	ObjMessages
)

// String implements fmt.Stringer.
func (o Objective) String() string {
	if o == ObjSignatures {
		return "sigs"
	}
	return "msgs"
}

// ParseObjective resolves the -objective flag values.
func ParseObjective(s string) (Objective, error) {
	switch s {
	case "sigs", "signatures":
		return ObjSignatures, nil
	case "msgs", "messages":
		return ObjMessages, nil
	default:
		return 0, fmt.Errorf("search: unknown objective %q (known: sigs, msgs)", s)
	}
}

// Class tells the evaluator what a protocol promises, which decides both
// feasibility and what counts as a violation.
type Class uint8

// Protocol classes.
const (
	// ClassAgreement: full Byzantine Agreement — conditions (i) and (ii)
	// must hold for every in-budget candidate; any judge failure is a
	// violation and (for the gate) a bug.
	ClassAgreement Class = iota
	// ClassExchange: the Algorithm 4 information-exchange building blocks.
	// They decide a constant, so only unanimity of correct processors is
	// judged; the theorem bounds do not apply.
	ClassExchange
	// ClassStrawman: deliberately weakened protocols kept as negative
	// controls. Violations are the expected find, not a bug.
	ClassStrawman
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassAgreement:
		return "agreement"
	case ClassExchange:
		return "exchange"
	default:
		return "strawman"
	}
}

// Eval is the outcome of evaluating one candidate: the H-side run (value 0)
// and the G-side run (value 1) under the same adversary, plan and seed.
//
// Feasibility is the search's guard against trivial minima: a candidate
// only scores when both runs reach agreement on their intended value, i.e.
// when the pair of executions actually realizes the two fault-free-looking
// histories H and G the Theorem 1 proof reasons over. An adversary that
// silences or corrupts the transmitter makes the pair infeasible (one run
// cannot decide its intended value) and scores nothing — which is exactly
// why minimizing over feasible candidates can never undercut the bound on
// a correct protocol.
type Eval struct {
	// Cand is the evaluated candidate.
	Cand Candidate
	// Faulty is the combined corrupted set: the strategy's Corrupt choice
	// united with the fault plan's affected processors.
	Faulty ident.Set
	// Skipped marks candidates that were never run, with SkipReason one of
	// "over-budget" (|Faulty| > t) or "bad-spec" (plan failed to compile).
	Skipped    bool
	SkipReason string
	// Feasible marks candidates whose cost counts (see above). CostH and
	// CostG are the per-run objective costs; Cost is their maximum — the
	// worse side of the (H, G) pair, matching how the theorems bound the
	// costlier history.
	Feasible     bool
	Cost         int
	CostH, CostG int
	// Violation is non-nil when either run broke the class's agreement
	// promise. A violating candidate is never feasible.
	Violation error
}

// evaluator runs candidates for one search target. It is safe for
// concurrent use: evaluation touches no shared mutable state.
type evaluator struct {
	cfg         *Config
	transmitter ident.ProcID
}

// evaluate runs the candidate's (value 0, value 1) pair and judges both
// runs. Only infrastructure failures return an error; everything a
// candidate can legitimately cause is folded into the Eval.
func (ev *evaluator) evaluate(ctx context.Context, cand Candidate) (Eval, error) {
	cfg := ev.cfg
	out := Eval{Cand: cand}

	adv := cand.adversaryFor(cfg.N, cfg.T, ev.transmitter)
	faulty := make(ident.Set)
	if adv != nil {
		// Replicate NewSetup's corruption draw so the budget check sees the
		// same set the run will use.
		rng := mrand.New(mrand.NewSource(cand.Seed))
		faulty = adv.Corrupt(cfg.N, cfg.T, ev.transmitter, rng)
	}
	var plan *faultnet.Plan
	if len(cand.Spec.Rules) > 0 {
		var err error
		plan, err = faultnet.Compile(cand.Spec, cand.Seed)
		if err != nil {
			out.Skipped, out.SkipReason = true, "bad-spec"
			return out, nil
		}
		faulty = faulty.Union(plan.Affected(cfg.N))
	}
	out.Faulty = faulty
	if faulty.Len() > cfg.T {
		out.Skipped, out.SkipReason = true, "over-budget"
		return out, nil
	}
	var override ident.Set
	if faulty.Len() > 0 || adv != nil {
		override = faulty
	}

	feasible := true
	for _, v := range []ident.Value{ident.V0, ident.V1} {
		res, err := core.Run(ctx, core.Config{
			Protocol:       cfg.Protocol,
			N:              cfg.N,
			T:              cfg.T,
			Transmitter:    ev.transmitter,
			Value:          v,
			Scheme:         cfg.Scheme,
			Adversary:      adv,
			FaultyOverride: override,
			Seed:           cand.Seed,
			Rushing:        cand.Rushing,
			Faults:         plan,
			Trace:          trace.Nop{},
		})
		if err != nil {
			return out, fmt.Errorf("search: candidate %s value %v: %w", cand.Key(), v, err)
		}
		decided, verr := judgeDecisions(res.Sim.Decisions, res.Faulty, ev.transmitter, v, cfg.Class)
		if verr != nil {
			if out.Violation == nil {
				out.Violation = verr
			}
			feasible = false
		}
		cost := res.Sim.Report.MessagesCorrect
		if cfg.Objective == ObjSignatures {
			cost = res.Sim.Report.SignaturesCorrect
		}
		if v == ident.V0 {
			out.CostH = cost
		} else {
			out.CostG = cost
		}
		// Feasibility additionally demands the run decided its intended
		// value, so the pair really is an (H, G) pair. For agreement-class
		// protocols condition (ii) delivers that exactly when the
		// transmitter is correct; exchange protocols decide a constant, so
		// the value requirement is waived.
		if cfg.Class != ClassExchange && (res.Faulty.Has(ev.transmitter) || (verr == nil && decided != v)) {
			feasible = false
		}
	}
	out.Feasible = feasible && out.Violation == nil
	out.Cost = out.CostH
	if out.CostG > out.Cost {
		out.Cost = out.CostG
	}
	return out, nil
}

// judgeDecisions is the search's agreement judge. It mirrors
// core.CheckDecisions — condition (i) always, condition (ii) only when the
// transmitter is correct, unanimity only for the exchange class — but
// iterates processors in id order so its error strings are deterministic:
// atlas output must be byte-identical run to run, and a map-order judge
// would leak iteration order into the violation sample it archives.
func judgeDecisions(decisions map[ident.ProcID]sim.Decision, faulty ident.Set, transmitter ident.ProcID, transmitterValue ident.Value, class Class) (ident.Value, error) {
	ids := make([]ident.ProcID, 0, len(decisions))
	for id := range decisions {
		if !faulty.Has(id) {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var (
		got     ident.Value
		haveAny bool
	)
	for _, id := range ids {
		d := decisions[id]
		if !d.Decided {
			return 0, fmt.Errorf("%w: %v", core.ErrNoDecision, id)
		}
		if !haveAny {
			got, haveAny = d.Value, true
			continue
		}
		if d.Value != got {
			return 0, fmt.Errorf("%w: %v vs %v", core.ErrDisagreement, d.Value, got)
		}
	}
	if !haveAny {
		return 0, fmt.Errorf("%w: no correct processors", core.ErrNoDecision)
	}
	if class != ClassExchange && !faulty.Has(transmitter) && got != transmitterValue {
		return 0, fmt.Errorf("%w: decided %v, transmitter sent %v", core.ErrValidity, got, transmitterValue)
	}
	return got, nil
}
