package search

import (
	"fmt"
	mrand "math/rand"
	"strconv"
	"strings"

	"byzex/internal/adversary"
	"byzex/internal/faultnet"
	"byzex/internal/ident"
)

// StrategyID names one point on the adversary-strategy axis of the search
// space. The set mirrors the registry in package adversary, minus Replay
// (whose schedules are bound to one specific recorded history, so it cannot
// be instantiated for an arbitrary searched faulty set) and MultiFaced
// (subsumed by SplitBrain on the binary domain the bounds are stated over).
type StrategyID uint8

// The searchable strategies.
const (
	// StratNone runs no adversary: faults come only from the candidate's
	// fault plan. With an empty plan this is the fault-free baseline.
	StratNone StrategyID = iota
	StratSilent
	StratCrash
	StratStarve
	StratGarbage
	StratChaos
	StratBitFlip
	StratSplitBrain
	numStrategies
)

var strategyNames = [numStrategies]string{
	"none", "silent", "crash", "starve", "garbage", "chaos", "bit-flipper", "split-brain",
}

// String implements fmt.Stringer.
func (s StrategyID) String() string {
	if int(s) < len(strategyNames) {
		return strategyNames[s]
	}
	return "unknown"
}

// Candidate is one point of the strategy × seed × fault-plan space: an
// adversary strategy with its integer parameter, the rushing switch, the
// seed driving the run's randomness, and a fault-injection spec. A
// candidate fully determines both executions of its evaluation (see eval.go)
// — re-evaluating one is a pure function.
type Candidate struct {
	// Strategy selects the adversary; Param is its knob (crash phase,
	// ignore-first count, junk volume, split point — see adversaryFor).
	Strategy StrategyID
	Param    int
	// Rushing grants the adversary the rushing power.
	Rushing bool
	// Seed drives the runs' deterministic randomness and the fault plan's
	// probability coins.
	Seed int64
	// Spec is the fault-injection half of the candidate, mutated with
	// faultnet.MutateSpec.
	Spec faultnet.Spec
}

// Key is a canonical string form of the candidate, used for memoization and
// for the determinism contract (equal keys ⇔ equal evaluations).
func (c Candidate) Key() string {
	var b strings.Builder
	b.WriteString(c.Strategy.String())
	b.WriteByte('/')
	b.WriteString(strconv.Itoa(c.Param))
	if c.Rushing {
		b.WriteString("/rush")
	}
	b.WriteString("/s")
	b.WriteString(strconv.FormatInt(c.Seed, 10))
	if len(c.Spec.Rules) > 0 {
		b.WriteByte('/')
		b.WriteString(faultnet.FormatSpec(c.Spec))
	}
	return b.String()
}

// Provenance renders the candidate for atlas rows and logs: everything
// needed to re-run it by hand with baattack.
func (c Candidate) Provenance() string {
	out := fmt.Sprintf("%s(param=%d) seed=%d", c.Strategy, c.Param, c.Seed)
	if c.Rushing {
		out += " rushing"
	}
	if len(c.Spec.Rules) > 0 {
		out += " faults=" + faultnet.FormatSpec(c.Spec)
	}
	return out
}

// adversaryFor materializes the candidate's adversary strategy for a system
// of n processors with fault bound t. StratNone returns nil (fault-plan
// faults only).
func (c Candidate) adversaryFor(n, t int, transmitter ident.ProcID) adversary.Adversary {
	switch c.Strategy {
	case StratSilent:
		return adversary.Silent{}
	case StratCrash:
		return adversary.Crash{CrashAfter: max(0, c.Param)}
	case StratStarve:
		return adversary.StarveB{B: starveSet(n, t, transmitter), IgnoreFirst: max(0, c.Param)}
	case StratGarbage:
		return adversary.Garbage{PerPhase: 1 + abs(c.Param)%4}
	case StratChaos:
		return adversary.Chaos{}
	case StratBitFlip:
		return adversary.BitFlipper{}
	case StratSplitBrain:
		split := c.Param
		if split < 1 {
			split = 1
		}
		if split > n-1 {
			split = n - 1
		}
		return adversary.SplitBrain{LowValue: ident.V0, HighValue: ident.V1, SplitAt: ident.ProcID(split)}
	default:
		return nil
	}
}

// starveSet is the Theorem 2 victim set: the last ⌊1+t/2⌋ processor ids,
// skipping the transmitter — the same shape lowerbound.StarvationAudit uses.
func starveSet(n, t int, transmitter ident.ProcID) ident.Set {
	b := 1 + t/2
	if b > t {
		b = t
	}
	out := make(ident.Set)
	for id := n - 1; id >= 0 && out.Len() < b; id-- {
		if ident.ProcID(id) == transmitter {
			continue
		}
		out.Add(ident.ProcID(id))
	}
	return out
}

// defaultParam is the canonical knob setting a strategy starts from: the
// values the paper's constructions use (crash after phase 1, ignore the
// first ⌈t/2⌉ messages, split the audience in half).
func defaultParam(s StrategyID, n, t int) int {
	switch s {
	case StratCrash:
		return 1
	case StratStarve:
		return (t + 1) / 2
	case StratGarbage:
		return 2
	case StratSplitBrain:
		return (n + 1) / 2
	default:
		return 0
	}
}

// paramRange bounds the strategy knob for mutation. hi is inclusive.
func paramRange(s StrategyID, n, t, phases int) (lo, hi int) {
	switch s {
	case StratCrash:
		return 0, phases
	case StratStarve:
		return 0, 2*t + 1
	case StratGarbage:
		return 0, 3
	case StratSplitBrain:
		return 1, n - 1
	default:
		return 0, 0
	}
}

// mutate draws one random neighbor of c. The move distribution favors the
// cheap refinements (reseed, knob tweak, plan edit) over the disruptive
// ones (strategy switch, plan reset); every move is valid by construction,
// though the result may be over the fault budget — evaluation skips those.
func (c Candidate) mutate(rng *mrand.Rand, n, t, phases int) Candidate {
	out := c
	switch rng.Intn(10) {
	case 0, 1: // reseed
		out.Seed = rng.Int63()
	case 2, 3: // tweak the strategy knob
		lo, hi := paramRange(out.Strategy, n, t, phases)
		if hi > lo {
			out.Param = lo + rng.Intn(hi-lo+1)
		} else {
			out.Seed = rng.Int63()
		}
	case 4, 5, 6: // edit the fault plan
		out.Spec = faultnet.MutateSpec(out.Spec, rng, n, phases)
	case 7: // switch strategy
		out.Strategy = StrategyID(rng.Intn(int(numStrategies)))
		out.Param = defaultParam(out.Strategy, n, t)
	case 8: // toggle rushing
		out.Rushing = !out.Rushing
	default: // drop the fault plan (recovers feasibility after bad edits)
		out.Spec = faultnet.Spec{}
	}
	return out
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
