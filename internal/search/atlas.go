package search

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"byzex/internal/cli"
	"byzex/internal/core"
	"byzex/internal/runner"
	"byzex/internal/trace"
)

// ErrGate is the loud failure of the gap-to-bound gate: an agreement-class
// protocol was broken or undercut the theorem bound, or a strawman survived
// the search unbroken.
var ErrGate = errors.New("search: gap gate violated")

// Target is one atlas row's subject: a registry protocol at the small
// (n, t) the conformance suites pin down, with its signature scheme and
// agreement class.
type Target struct {
	Name string
	// N, T size the system; S is the alg3/alg5 threshold knob (0 = default
	// to T, as everywhere in the cli).
	N, T, S int
	// Scheme is the cli scheme name ("hmac" or "plain"). Plain targets are
	// unauthenticated: the signatures objective is skipped for them (their
	// Theorem 1 analogue is Corollary 1, which is about messages).
	Scheme string
	Class  Class
}

// Authenticated reports whether the target's runs carry real signatures.
func (t Target) Authenticated() bool { return t.Scheme != "plain" }

// ClassOf classifies a registry protocol by name: the Algorithm 4
// information-exchange building blocks promise unanimity only, the strawmen
// are negative controls, everything else is full Byzantine Agreement.
func ClassOf(name string) Class {
	switch {
	case strings.HasPrefix(name, "strawman-"):
		return ClassStrawman
	case name == "alg4" || name == "alg4-relay":
		return ClassExchange
	default:
		return ClassAgreement
	}
}

// Targets returns the atlas registry: all 14 protocols at the same small
// configurations the fault-scenario conformance tests use, in name order.
func Targets() []Target {
	names := []struct {
		name string
		n, t int
	}{
		{"alg1", 5, 2},
		{"alg1-multi", 5, 2},
		{"alg2", 5, 2},
		{"alg3", 12, 2},
		{"alg4", 16, 2},
		{"alg4-relay", 9, 2},
		{"alg5", 20, 2},
		{"alg5-nopow", 20, 2},
		{"dolev-strong", 6, 2},
		{"ic", 5, 1},
		{"lsp", 7, 2},
		{"phase-king", 9, 2},
		{"strawman-broadcast", 5, 1},
		{"strawman-thinrelay", 8, 2},
	}
	out := make([]Target, 0, len(names))
	for _, e := range names {
		out = append(out, Target{Name: e.name, N: e.n, T: e.t, Scheme: SchemeFor(e.name), Class: ClassOf(e.name)})
	}
	return out
}

// SchemeFor returns a registry protocol's canonical scheme name: plain for
// the unauthenticated protocols, hmac for everything else.
func SchemeFor(name string) string {
	if name == "lsp" || name == "phase-king" {
		return "plain"
	}
	return "hmac"
}

// AtlasConfig parameterizes a registry-wide search sweep.
type AtlasConfig struct {
	// Objectives defaults to both (signatures then messages).
	Objectives []Objective
	// Budget is the evaluation budget per row; Seed fixes the whole table
	// byte-identically. Pool and Trace are shared across rows (rows run
	// serially; parallelism lives inside each search).
	Budget int
	Seed   int64
	Pool   *runner.Pool
	Trace  trace.Sink
}

// Row is one atlas entry: the best cost the search could force for one
// (protocol, objective) pair, against the theorem bound.
type Row struct {
	Target    Target
	Objective Objective
	// Bound is the applicable lower bound: core.SigLowerBound for the
	// signatures objective, core.MsgLowerBound for messages; 0 for the
	// exchange class, where the agreement bounds do not apply.
	Bound int
	// Baseline is the fault-free cost; Best is the cheapest feasible cost
	// found (-1 when nothing feasible scored). BestCand reproduces it.
	Baseline int
	Best     int
	BestCand Candidate
	// Evals / Skipped account for the spent budget; Violations counts
	// agreement breaks, with ViolationSample holding the first one's
	// provenance and error.
	Evals           int
	Skipped         int
	Violations      int
	ViolationSample string
}

// GapRatio is Best/Bound — how far above the theorem bound the cheapest
// found execution pair sits. 0 when the bound does not apply or nothing
// feasible was found.
func (r Row) GapRatio() float64 {
	if r.Bound <= 0 || r.Best < 0 {
		return 0
	}
	return float64(r.Best) / float64(r.Bound)
}

// RunAtlas sweeps the full target registry — see RunTargets.
func RunAtlas(ctx context.Context, cfg AtlasConfig) ([]Row, error) {
	return RunTargets(ctx, Targets(), cfg)
}

// RunTargets searches every (target, objective) pair and returns one row
// each, skipping the signatures objective for unauthenticated targets. Rows
// are deterministic in cfg.Seed: targets run serially in the given order,
// each row's search seeded from (Seed, row index).
func RunTargets(ctx context.Context, targets []Target, cfg AtlasConfig) ([]Row, error) {
	objectives := cfg.Objectives
	if len(objectives) == 0 {
		objectives = []Objective{ObjSignatures, ObjMessages}
	}
	pool := cfg.Pool
	if pool == nil {
		pool = runner.New(0)
	}
	var rows []Row
	rowIdx := 0
	for _, tgt := range targets {
		for _, obj := range objectives {
			rowIdx++
			if obj == ObjSignatures && !tgt.Authenticated() {
				continue
			}
			params := cli.Params{N: tgt.N, T: tgt.T, S: tgt.S, Seed: cfg.Seed}
			proto, err := cli.Protocol(tgt.Name, params)
			if err != nil {
				return nil, err
			}
			scheme, err := cli.Scheme(tgt.Scheme, params)
			if err != nil {
				return nil, err
			}
			res, err := Run(ctx, Config{
				Protocol:  proto,
				N:         tgt.N,
				T:         tgt.T,
				Scheme:    scheme,
				Class:     tgt.Class,
				Objective: obj,
				Budget:    cfg.Budget,
				Seed:      cfg.Seed + int64(rowIdx)*7919,
				Pool:      pool,
				Trace:     cfg.Trace,
			})
			if err != nil {
				return nil, fmt.Errorf("search: atlas %s/%s: %w", tgt.Name, obj, err)
			}
			rows = append(rows, buildRow(tgt, obj, res))
		}
	}
	return rows, nil
}

func buildRow(tgt Target, obj Objective, res *Result) Row {
	row := Row{
		Target:    tgt,
		Objective: obj,
		Baseline:  res.Baseline.Cost,
		Best:      -1,
		Evals:     res.Evals,
		Skipped:   res.Skipped,
	}
	if tgt.Class != ClassExchange {
		if obj == ObjSignatures {
			row.Bound = core.SigLowerBound(tgt.N, tgt.T)
		} else {
			row.Bound = core.MsgLowerBound(tgt.N, tgt.T)
		}
	}
	if res.Best != nil {
		row.Best = res.Best.Cost
		row.BestCand = res.Best.Cand
	}
	row.Violations = res.Violations
	if len(res.ViolationSamples) > 0 {
		v := res.ViolationSamples[0]
		row.ViolationSample = fmt.Sprintf("%s: %v", v.Cand.Provenance(), v.Violation)
	}
	return row
}

// CheckRows is the gap gate. For agreement-class rows any violation, any
// missing feasible candidate, or a best-found below the bound fails; for
// exchange-class rows a unanimity break fails; for strawman rows the search
// *failing to find* a violation fails. A nil error means every row behaved
// exactly as the theorems (and the strawmen's known defects) predict.
func CheckRows(rows []Row) error {
	for _, r := range rows {
		id := fmt.Sprintf("%s/%s", r.Target.Name, r.Objective)
		switch r.Target.Class {
		case ClassAgreement:
			if r.Violations > 0 {
				return fmt.Errorf("%w: %s: %d agreement violations from in-budget candidates (first: %s)",
					ErrGate, id, r.Violations, r.ViolationSample)
			}
			if r.Best < 0 {
				return fmt.Errorf("%w: %s: no feasible candidate found (baseline should be feasible)", ErrGate, id)
			}
			if r.Best < r.Bound {
				return fmt.Errorf("%w: %s: best-found %d below bound %d (candidate: %s)",
					ErrGate, id, r.Best, r.Bound, r.BestCand.Provenance())
			}
		case ClassExchange:
			if r.Violations > 0 {
				return fmt.Errorf("%w: %s: %d unanimity violations (first: %s)",
					ErrGate, id, r.Violations, r.ViolationSample)
			}
		case ClassStrawman:
			if r.Violations == 0 {
				return fmt.Errorf("%w: %s: search found no violation in %d evals — the strawman's defect went undetected",
					ErrGate, id, r.Evals)
			}
		}
	}
	return nil
}

// RenderRows formats the atlas as an aligned text table.
func RenderRows(rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %-9s %5s %3s %3s %8s %8s %8s %6s %6s  %s\n",
		"protocol", "class", "obj", "n", "t", "baseline", "best", "bound", "gap", "viol", "best candidate")
	for _, r := range rows {
		bound, gap := "n/a", "n/a"
		if r.Bound > 0 {
			bound = fmt.Sprintf("%d", r.Bound)
			gap = fmt.Sprintf("%.2f", r.GapRatio())
		}
		best := "-"
		if r.Best >= 0 {
			best = fmt.Sprintf("%d", r.Best)
		}
		detail := r.BestCand.Provenance()
		if r.Target.Class == ClassStrawman && r.ViolationSample != "" {
			detail = "BROKEN " + r.ViolationSample
		}
		fmt.Fprintf(&b, "%-18s %-9s %5s %3d %3d %8d %8s %8s %6s %6d  %s\n",
			r.Target.Name, r.Target.Class, r.Objective, r.Target.N, r.Target.T,
			r.Baseline, best, bound, gap, r.Violations, detail)
	}
	return b.String()
}

// BenchLines renders the atlas in `go test -bench` output format so
// cmd/benchjson can archive it (BENCH_009): one line per row, evaluation
// count in the iterations column, best/bound/baseline/gap-ratio/violations
// as custom metrics.
func BenchLines(rows []Row) string {
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "BenchmarkSearchGap/%s/%s %d %d best %d bound %d baseline %.3f gap-ratio %d violations\n",
			r.Target.Name, r.Objective, r.Evals, r.Best, r.Bound, r.Baseline, r.GapRatio(), r.Violations)
	}
	return b.String()
}
