// Package search is the adversary-search optimizer: it hunts, per protocol,
// for the cheapest pair of executions a budget-respecting adversary can
// force, and compares the best-found cost against the paper's lower bounds
// (core.SigLowerBound, core.MsgLowerBound).
//
// A candidate is one point of the strategy × seed × fault-plan space
// (Candidate). Evaluating it runs the protocol twice — transmitter value 0
// and value 1 — under the same adversary and plan; the candidate is
// feasible only when both runs reach agreement on their intended value,
// and its cost is the *worse* side of the pair (eval.go). That is the
// executable form of the Theorem 1 proof shape: the adversary must leave
// both histories H and G intact, and the theorems bound the costlier one.
// Minimizing over feasible candidates therefore can never undercut the
// bounds on a correct protocol — best-found below bound, or any agreement
// violation from an in-budget candidate, is a bug and fails the gate
// loudly (CheckRows).
//
// The optimizer is a successive-halving bandit over a deterministic seed
// population (strategies × canonical fault plans), whose survivor seeds a
// simulated-annealing walk with restarts. Candidate batches are generated
// serially from one seeded RNG, evaluated in parallel on a runner.Pool
// (runner.Map preserves submission order), and folded back serially — so a
// fixed Config.Seed reproduces the identical trajectory, best candidate
// and trace at any parallelism level.
package search

import (
	"context"
	"errors"
	"fmt"
	"math"
	mrand "math/rand"

	"byzex/internal/faultnet"
	"byzex/internal/protocol"
	"byzex/internal/runner"
	"byzex/internal/sig"
	"byzex/internal/trace"
)

// ErrBadConfig reports an invalid search configuration.
var ErrBadConfig = errors.New("search: bad config")

// Config describes one search: a protocol target and the optimizer knobs.
type Config struct {
	// Protocol is the algorithm under attack; N and T size the system.
	Protocol protocol.Protocol
	N, T     int
	// Scheme is the signature scheme shared by every evaluation (nil
	// selects HMAC keyed from Seed, like core.Run). One scheme across the
	// whole search keeps costs comparable between candidates.
	Scheme sig.Scheme
	// Class selects the agreement promise candidates are judged against.
	Class Class
	// Objective is the minimized cost.
	Objective Objective
	// Budget caps candidate evaluations (each is two protocol runs).
	// Defaults to 200.
	Budget int
	// Seed drives the optimizer; a fixed seed reproduces the identical
	// trajectory at any parallelism.
	Seed int64
	// Pool evaluates candidate batches; nil builds a GOMAXPROCS pool.
	Pool *runner.Pool
	// Trace receives search-progress events (search-eval, search-best,
	// search-violation); nil discards them.
	Trace trace.Sink
	// MaxViolations caps the violating evaluations retained in the result
	// (the count is always exact). Defaults to 8.
	MaxViolations int
}

// BestPoint is one step of the improvement trajectory: after EvalIndex
// evaluations the incumbent cost was Cost.
type BestPoint struct {
	EvalIndex int
	Cost      int
}

// Result is the outcome of one search.
type Result struct {
	// Baseline is the fault-free evaluation (candidate "none", empty plan)
	// — the protocol's honest cost, always evaluated first.
	Baseline Eval
	// Best is the cheapest feasible evaluation found, nil when none was
	// (which the gate treats as an error for correct protocols: the
	// baseline itself is feasible for them).
	Best *Eval
	// Evals counts candidate evaluations actually run; Skipped counts
	// candidates discarded before running (over budget or bad spec).
	Evals   int
	Skipped int
	// Violations counts candidates that broke the agreement promise;
	// ViolationSamples retains up to MaxViolations of them in evaluation
	// order.
	Violations       int
	ViolationSamples []Eval
	// Trajectory records every incumbent improvement in order.
	Trajectory []BestPoint
}

// optimizer carries one search's mutable state; all mutation happens on the
// coordinating goroutine.
type optimizer struct {
	cfg    *Config
	ev     *evaluator
	rng    *mrand.Rand
	pool   *runner.Pool
	sink   trace.Sink
	seen   map[string]Eval
	res    *Result
	phases int
}

// Run executes one adversary search to budget exhaustion and returns the
// best-found result. The only error sources are configuration problems,
// context cancellation and engine-level failures — never candidate
// behavior.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	switch {
	case cfg.Protocol == nil:
		return nil, fmt.Errorf("%w: nil protocol", ErrBadConfig)
	case cfg.N < 2 || cfg.T < 0 || cfg.T >= cfg.N:
		return nil, fmt.Errorf("%w: n=%d t=%d", ErrBadConfig, cfg.N, cfg.T)
	}
	if cfg.Budget <= 0 {
		cfg.Budget = 200
	}
	if cfg.MaxViolations <= 0 {
		cfg.MaxViolations = 8
	}
	if cfg.Scheme == nil {
		cfg.Scheme = sig.NewHMAC(cfg.N, cfg.Seed^0x5ee_d516)
	}
	pool := cfg.Pool
	if pool == nil {
		pool = runner.New(0)
	}
	sink := cfg.Trace
	if sink == nil {
		sink = trace.Nop{}
	}
	opt := &optimizer{
		cfg:    &cfg,
		ev:     &evaluator{cfg: &cfg, transmitter: 0},
		rng:    mrand.New(mrand.NewSource(cfg.Seed)),
		pool:   pool,
		sink:   sink,
		seen:   make(map[string]Eval),
		res:    &Result{},
		phases: cfg.Protocol.Phases(cfg.N, cfg.T),
	}
	if opt.phases < 1 {
		opt.phases = 1
	}

	// Fault-free baseline first: it anchors the incumbent and measures the
	// protocol's honest cost for the gap table.
	base, err := opt.evalBatch(ctx, []Candidate{{Strategy: StratNone, Seed: cfg.Seed}})
	if err != nil {
		return nil, err
	}
	opt.res.Baseline = base[0]

	survivor, err := opt.halving(ctx)
	if err != nil {
		return nil, err
	}
	if err := opt.anneal(ctx, survivor); err != nil {
		return nil, err
	}
	return opt.res, nil
}

// evalBatch evaluates a candidate batch through the pool and folds the
// outcomes into the search state in submission order. Previously seen
// candidates are served from the memo without spending budget.
func (o *optimizer) evalBatch(ctx context.Context, cands []Candidate) ([]Eval, error) {
	keys := make([]string, len(cands))
	fresh := make([]int, 0, len(cands))
	for i, c := range cands {
		keys[i] = c.Key()
		if _, ok := o.seen[keys[i]]; !ok {
			o.seen[keys[i]] = Eval{} // claims the key; overwritten below
			fresh = append(fresh, i)
		}
	}
	evals, err := runner.Map(ctx, o.pool, len(fresh), func(ctx context.Context, i int) (Eval, error) {
		return o.ev.evaluate(ctx, cands[fresh[i]])
	})
	if err != nil {
		return nil, err
	}
	for j, e := range evals {
		o.seen[keys[fresh[j]]] = e
		o.observe(e)
	}
	out := make([]Eval, len(cands))
	for i := range cands {
		out[i] = o.seen[keys[i]]
	}
	return out, nil
}

// observe folds one fresh evaluation into the result: budget accounting,
// violation records, incumbent updates and the trace events.
func (o *optimizer) observe(e Eval) {
	if e.Skipped {
		o.res.Skipped++
		return
	}
	o.res.Evals++
	idx := o.res.Evals
	cost := 0
	if e.Feasible {
		cost = e.Cost
	}
	o.sink.Emit(trace.Event{Kind: trace.KindSearchEval, Signers: idx, Sigs: cost, Flag: e.Feasible})
	if e.Violation != nil {
		o.res.Violations++
		if len(o.res.ViolationSamples) < o.cfg.MaxViolations {
			o.res.ViolationSamples = append(o.res.ViolationSamples, e)
		}
		o.sink.Emit(trace.Event{Kind: trace.KindSearchViolation, Signers: idx})
	}
	if e.Feasible && (o.res.Best == nil || e.Cost < o.res.Best.Cost) {
		best := e
		o.res.Best = &best
		o.res.Trajectory = append(o.res.Trajectory, BestPoint{EvalIndex: idx, Cost: e.Cost})
		o.sink.Emit(trace.Event{Kind: trace.KindSearchBest, Signers: idx, Sigs: e.Cost})
	}
}

// remaining is the unspent evaluation budget.
func (o *optimizer) remaining() int { return o.cfg.Budget - o.res.Evals }

// halvingArm is one bandit arm: a strategy/plan template whose seed
// dimension the rungs sample ever more densely.
type halvingArm struct {
	cand     Candidate // template; Seed is redrawn per pull
	score    int       // best feasible cost seen
	feasible bool
}

// halving runs the successive-halving bandit over the deterministic seed
// population: every strategy at its canonical knob plus canonical
// single-fault plans (crash / drop templates). Each rung pulls every
// surviving arm with twice as many fresh seeds, then keeps the better half
// by best-feasible cost. Returns the surviving arm's best candidate (or the
// global best when the survivor never scored).
func (o *optimizer) halving(ctx context.Context) (Candidate, error) {
	arms := o.seedArms()
	budget := o.cfg.Budget * 2 / 5
	spent := 0
	for pulls := 1; len(arms) > 1 && spent < budget && o.remaining() > 0; pulls *= 2 {
		var batch []Candidate
		owner := make([]int, 0, len(arms)*pulls)
		for ai := range arms {
			for p := 0; p < pulls; p++ {
				c := arms[ai].cand
				c.Seed = o.rng.Int63()
				batch = append(batch, c)
				owner = append(owner, ai)
			}
		}
		if lim := o.remaining(); len(batch) > lim {
			batch, owner = batch[:lim], owner[:lim]
		}
		evals, err := o.evalBatch(ctx, batch)
		if err != nil {
			return Candidate{}, err
		}
		spent += len(batch)
		for i, e := range evals {
			a := &arms[owner[i]]
			if e.Feasible && (!a.feasible || e.Cost < a.score) {
				a.feasible, a.score, a.cand = true, e.Cost, e.Cand
			}
		}
		// Keep the better half, by (feasible, score); insertion order breaks
		// ties so the cut is deterministic.
		next := make([]halvingArm, 0, (len(arms)+1)/2)
		for range (len(arms) + 1) / 2 {
			bi := -1
			for i := range arms {
				if bi < 0 || armLess(&arms[i], &arms[bi]) {
					bi = i
				}
			}
			next = append(next, arms[bi])
			arms = append(arms[:bi], arms[bi+1:]...)
		}
		arms = next
	}
	if o.res.Best != nil {
		return o.res.Best.Cand, nil
	}
	return arms[0].cand, nil
}

// armLess orders arms best-first: feasible before not, then lower score.
func armLess(a, b *halvingArm) bool {
	if a.feasible != b.feasible {
		return a.feasible
	}
	return a.feasible && a.score < b.score
}

// seedArms builds the deterministic arm population: every strategy at its
// canonical knob (empty plan), plus plan-only arms for the canonical
// single-fault shapes — crash one early sender, sever one sender's links.
// The population always includes the constructions the paper's proofs use
// (split-brain, starve), so tiny budgets already visit them; that is what
// lets the strawman regression find its violation within a handful of
// evaluations.
func (o *optimizer) seedArms() []halvingArm {
	n, t := o.cfg.N, o.cfg.T
	arms := make([]halvingArm, 0, 16)
	for s := StratSilent; s < numStrategies; s++ {
		arms = append(arms, halvingArm{cand: Candidate{Strategy: s, Param: defaultParam(s, n, t)}})
	}
	for p := 1; p < n && p <= 3; p++ {
		arms = append(arms,
			halvingArm{cand: Candidate{Strategy: StratNone, Spec: crashSpec(p)}},
			halvingArm{cand: Candidate{Strategy: StratNone, Spec: dropSpec(p)}},
		)
	}
	return arms
}

func crashSpec(p int) faultnet.Spec { return mustSpec(fmt.Sprintf("crash=%d@1", p)) }
func dropSpec(p int) faultnet.Spec  { return mustSpec(fmt.Sprintf("drop=%d->*@*", p)) }

// mustSpec parses a literal spec; the literals above are valid by
// construction.
func mustSpec(s string) faultnet.Spec {
	spec, err := faultnet.ParseSpec(s)
	if err != nil {
		panic(err)
	}
	return spec
}

// anneal walks the neighborhood graph from the halving survivor: batches of
// fixed width (independent of the pool size, for determinism) of mutations
// of the current point, greedy acceptance of improvements, Metropolis
// acceptance of regressions under a geometric temperature schedule, and a
// restart to the incumbent (alternating with a fresh random strategy) when
// the walk cools out or stalls.
func (o *optimizer) anneal(ctx context.Context, start Candidate) error {
	const (
		width    = 4
		tempInit = 0.35
		cooling  = 0.92
		tempMin  = 0.02
		maxStall = 6
	)
	n, t := o.cfg.N, o.cfg.T
	cur, curCost := start, math.MaxInt
	if o.res.Best != nil {
		cur, curCost = o.res.Best.Cand, o.res.Best.Cost
	}
	temp, stall, restarts := tempInit, 0, 0
	for o.remaining() > 0 {
		w := min(width, o.remaining())
		batch := make([]Candidate, w)
		for i := range batch {
			batch[i] = cur.mutate(o.rng, n, t, o.phases)
		}
		evals, err := o.evalBatch(ctx, batch)
		if err != nil {
			return err
		}
		pick := -1
		for i, e := range evals {
			if e.Feasible && (pick < 0 || e.Cost < evals[pick].Cost) {
				pick = i
			}
		}
		switch {
		case pick < 0:
			stall++
		case evals[pick].Cost <= curCost:
			if evals[pick].Cost < curCost {
				stall = 0
			}
			cur, curCost = evals[pick].Cand, evals[pick].Cost
		default:
			stall++
			rel := float64(evals[pick].Cost-curCost) / float64(max(1, curCost))
			if o.rng.Float64() < math.Exp(-rel/temp) {
				cur, curCost = evals[pick].Cand, evals[pick].Cost
			}
		}
		temp *= cooling
		if temp < tempMin || stall > maxStall {
			restarts++
			temp, stall = tempInit, 0
			if restarts%2 == 1 && o.res.Best != nil {
				cur, curCost = o.res.Best.Cand, o.res.Best.Cost
			} else {
				s := StrategyID(o.rng.Intn(int(numStrategies)))
				cur = Candidate{Strategy: s, Param: defaultParam(s, n, t), Seed: o.rng.Int63()}
				curCost = math.MaxInt
			}
		}
	}
	return nil
}
