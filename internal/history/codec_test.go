package history_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"byzex/internal/core"
	"byzex/internal/history"
	"byzex/internal/ident"
	"byzex/internal/protocols/alg1"
)

func TestExportImportRoundTrip(t *testing.T) {
	res, _, err := core.RunAndCheck(context.Background(), core.Config{
		Protocol: alg1.Protocol{}, N: 7, T: 3, Value: ident.V1, Record: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.History.Export(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := history.Import(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N != res.History.N || back.Value != res.History.Value {
		t.Fatal("header mismatch")
	}
	if back.NumPhases() != res.History.NumPhases() {
		t.Fatalf("phases %d != %d", back.NumPhases(), res.History.NumPhases())
	}
	if back.Messages() != res.History.Messages() || back.Signatures() != res.History.Signatures() {
		t.Fatal("counts mismatch after round trip")
	}
	for ph := 1; ph <= back.NumPhases(); ph++ {
		a, b := res.History.PhaseEdges(ph), back.PhaseEdges(ph)
		if len(a) != len(b) {
			t.Fatalf("phase %d: %d vs %d edges", ph, len(a), len(b))
		}
		for i := range a {
			if a[i].From != b[i].From || a[i].To != b[i].To || !bytes.Equal(a[i].Label, b[i].Label) {
				t.Fatalf("phase %d edge %d differs", ph, i)
			}
		}
	}
	// A(p) computations agree on the imported copy.
	pa, sa, _ := history.MinAP(res.History)
	pb, sb, _ := history.MinAP(back)
	if pa != pb || sa.Len() != sb.Len() {
		t.Fatal("A(p) differs after round trip")
	}
}

func TestImportRejectsGarbage(t *testing.T) {
	if _, err := history.Import(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage imported")
	}
	if _, err := history.Import(strings.NewReader(`{"n":0}`)); err == nil {
		t.Fatal("n=0 imported")
	}
	if _, err := history.Import(strings.NewReader(`{"n":2,"phases":[[{"from":5,"to":0}]]}`)); err == nil {
		t.Fatal("out-of-range edge imported")
	}
}
