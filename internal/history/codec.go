package history

import (
	"encoding/json"
	"fmt"
	"io"

	"byzex/internal/ident"
)

// JSON transcript format for tooling: `basim -dump` writes it, external
// analysis (or a later Import) reads it. Labels serialize as base64 via
// encoding/json's []byte handling.

type jsonEdge struct {
	From     ident.ProcID   `json:"from"`
	To       ident.ProcID   `json:"to"`
	Label    []byte         `json:"label,omitempty"`
	Signers  []ident.ProcID `json:"signers,omitempty"`
	SigTotal int            `json:"sigTotal,omitempty"`
}

type jsonHistory struct {
	N           int            `json:"n"`
	Transmitter ident.ProcID   `json:"transmitter"`
	Value       ident.Value    `json:"value"`
	Faulty      []ident.ProcID `json:"faulty,omitempty"`
	Phases      [][]jsonEdge   `json:"phases"`
}

// Export writes the history as an indented JSON transcript.
func (h *History) Export(w io.Writer) error {
	out := jsonHistory{
		N:           h.N,
		Transmitter: h.Transmitter,
		Value:       h.Value,
		Faulty:      h.Faulty.Sorted(),
		Phases:      make([][]jsonEdge, 0, h.NumPhases()),
	}
	for ph := 1; ph <= h.NumPhases(); ph++ {
		edges := make([]jsonEdge, 0, len(h.Phases[ph]))
		for _, e := range h.Phases[ph] {
			edges = append(edges, jsonEdge{
				From: e.From, To: e.To, Label: e.Label,
				Signers: e.Signers, SigTotal: e.SigTotal,
			})
		}
		out.Phases = append(out.Phases, edges)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("history: export: %w", err)
	}
	return nil
}

// Import reads a transcript produced by Export.
func Import(r io.Reader) (*History, error) {
	var in jsonHistory
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("history: import: %w", err)
	}
	if in.N < 1 {
		return nil, fmt.Errorf("history: import: n=%d", in.N)
	}
	h := New(in.N, in.Transmitter, in.Value)
	for _, f := range in.Faulty {
		h.Faulty.Add(f)
	}
	for i, edges := range in.Phases {
		for _, e := range edges {
			if int(e.From) < 0 || int(e.From) >= in.N || int(e.To) < 0 || int(e.To) >= in.N {
				return nil, fmt.Errorf("history: import: edge %v->%v out of range", e.From, e.To)
			}
			h.Append(i+1, Edge{
				From: e.From, To: e.To, Label: e.Label,
				Signers: e.Signers, SigTotal: e.SigTotal,
			})
		}
	}
	return h, nil
}
