package history_test

import (
	"context"
	"testing"

	"byzex/internal/adversary"
	"byzex/internal/core"
	"byzex/internal/history"
	"byzex/internal/ident"
	"byzex/internal/protocols/alg1"
	"byzex/internal/protocols/dolevstrong"
	"byzex/internal/sig"
)

func TestConformanceFaultFree(t *testing.T) {
	// Every processor of a fault-free run conforms at every phase.
	scheme := sig.NewHMAC(5, 3)
	res, _, err := core.RunAndCheck(context.Background(), core.Config{
		Protocol: alg1.Protocol{}, N: 5, T: 2, Value: ident.V1,
		Scheme: scheme, Record: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	conf, err := history.Conformance(res.History, alg1.Protocol{}, scheme, 2)
	if err != nil {
		t.Fatal(err)
	}
	for p, firstDeviation := range conf {
		if firstDeviation != 0 {
			t.Errorf("%v flagged at phase %d in a fault-free run", p, firstDeviation)
		}
	}
}

func TestConformanceDetectsSplitBrain(t *testing.T) {
	// The equivocating transmitter must be the only processor flagged.
	scheme := sig.NewHMAC(7, 3)
	adv := adversary.SplitBrain{LowValue: ident.V0, HighValue: ident.V1, SplitAt: 4}
	res, err := core.Run(context.Background(), core.Config{
		Protocol: dolevstrong.Protocol{}, N: 7, T: 2, Value: ident.V1,
		Scheme: scheme, Adversary: adv, Record: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	conf, err := history.Conformance(res.History, dolevstrong.Protocol{}, scheme, 2)
	if err != nil {
		t.Fatal(err)
	}
	if conf[0] == 0 {
		t.Error("split-brain transmitter not detected")
	}
	for p, dev := range conf {
		if p != 0 && dev != 0 {
			t.Errorf("correct %v flagged at phase %d", p, dev)
		}
	}
}

func TestConformanceDetectsSilentCoalition(t *testing.T) {
	// Silent processors deviate at their first mandatory send. In
	// Dolev-Strong every non-transmitter's first mandatory send is the
	// phase-2 relay.
	scheme := sig.NewHMAC(7, 3)
	res, err := core.Run(context.Background(), core.Config{
		Protocol: dolevstrong.Protocol{}, N: 7, T: 2, Value: ident.V1,
		Scheme: scheme, Adversary: adversary.Silent{}, Record: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	conf, err := history.Conformance(res.History, dolevstrong.Protocol{}, scheme, 2)
	if err != nil {
		t.Fatal(err)
	}
	for p := range res.Faulty {
		if conf[p] == 0 {
			t.Errorf("silent %v not detected", p)
		}
	}
	for id := 0; id < 7; id++ {
		p := ident.ProcID(id)
		if !res.Faulty.Has(p) && conf[p] != 0 {
			t.Errorf("correct %v flagged at phase %d", p, conf[p])
		}
	}
}
