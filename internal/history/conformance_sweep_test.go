package history_test

import (
	"context"
	"fmt"
	"testing"

	"byzex/internal/adversary"
	"byzex/internal/core"
	"byzex/internal/history"
	"byzex/internal/ident"
	"byzex/internal/protocol"
	"byzex/internal/protocols/alg1"
	"byzex/internal/protocols/alg2"
	"byzex/internal/protocols/dolevstrong"
	"byzex/internal/sig"
)

// TestConformanceSweep applies the Section 2 correctness checker across
// protocols and adversaries: correct processors are never flagged (no
// false positives), and every adversary that *must* deviate observably —
// sending something a correct processor would not, or omitting a mandatory
// send — is flagged (detection). Chaos may behave correctly by chance in a
// given run, so it is only checked for false positives.
func TestConformanceSweep(t *testing.T) {
	protos := []protocol.Protocol{
		alg1.Protocol{},
		alg2.Protocol{},
		dolevstrong.Protocol{},
	}
	type advCase struct {
		adv        adversary.Adversary
		mustDetect bool
	}
	advs := []advCase{
		{adversary.Silent{}, true}, // omits mandatory sends
		{adversary.SplitBrain{LowValue: ident.V0, HighValue: ident.V1, SplitAt: 4}, true},
		{adversary.Chaos{}, false}, // may mimic correctness on some seeds
	}
	for _, p := range protos {
		n, tt := 7, 3
		if p.Check(n, tt) != nil {
			n, tt = 7, 2
		}
		for _, ac := range advs {
			label := fmt.Sprintf("%s/%s", p.Name(), ac.adv.Name())
			scheme := sig.NewHMAC(n, 77)
			res, err := core.Run(context.Background(), core.Config{
				Protocol: p, N: n, T: tt, Value: ident.V1,
				Scheme: scheme, Adversary: ac.adv, Seed: 5, Record: true,
			})
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			conf, err := history.Conformance(res.History, p, scheme, tt)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			detected := 0
			for id, dev := range conf {
				if res.Faulty.Has(id) {
					if dev != 0 {
						detected++
					}
					continue
				}
				if dev != 0 {
					t.Errorf("%s: correct %v flagged at phase %d", label, id, dev)
				}
			}
			if ac.mustDetect && res.Faulty.Len() > 0 && detected == 0 {
				t.Errorf("%s: no faulty processor detected", label)
			}
		}
	}
}
