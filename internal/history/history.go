// Package history implements the formal model of Section 2 of the paper:
// a history is a finite sequence of phases, each a labelled directed graph
// over the processors; phase 0 is the single inedge carrying the
// transmitter's value; the individual subhistory pH consists of the edges
// with target p; and a processor is correct in a history if each of its
// outedges carries the label its correctness rule prescribes given its
// individual subhistory so far.
//
// The package provides the data structure, a recorder that captures an
// engine run as a History, and the queries the lower-bound constructions
// need: individual subhistories, the signature-exchange sets A(p) of
// Theorem 1, and message/signature counts restricted to correct senders.
package history

import (
	"fmt"
	"sort"

	"byzex/internal/ident"
	"byzex/internal/sim"
)

// Edge is one labelled edge of a phase graph: a message From -> To with its
// label (payload bytes) and signature accounting.
type Edge struct {
	From  ident.ProcID
	To    ident.ProcID
	Label []byte

	// Signers are the distinct identities whose signatures appear in the
	// label; SigTotal counts signature links with multiplicity.
	Signers  []ident.ProcID
	SigTotal int
}

// Phase is the edge set of one phase, in send order.
type Phase []Edge

// History is a recorded execution: the phase-0 value plus the labelled
// phase graphs. Phases are 1-based; Phases[0] is unused padding so that
// Phases[k] is phase k.
type History struct {
	N           int
	Transmitter ident.ProcID
	Value       ident.Value
	Phases      []Phase
	// Faulty records which processors were faulty during the recorded run
	// (empty for the fault-free histories H and G of the proofs).
	Faulty ident.Set
}

// New creates an empty history for n processors with the phase-0 inedge
// labelled v.
func New(n int, transmitter ident.ProcID, v ident.Value) *History {
	return &History{
		N:           n,
		Transmitter: transmitter,
		Value:       v,
		Phases:      []Phase{nil},
		Faulty:      make(ident.Set),
	}
}

// NumPhases returns the highest recorded phase number.
func (h *History) NumPhases() int { return len(h.Phases) - 1 }

// Append records an edge in the given phase, extending the phase list as
// needed.
func (h *History) Append(phase int, e Edge) {
	for len(h.Phases) <= phase {
		h.Phases = append(h.Phases, nil)
	}
	h.Phases[phase] = append(h.Phases[phase], e)
}

// PhaseEdges returns the edges of phase k (nil if beyond the recording).
func (h *History) PhaseEdges(k int) Phase {
	if k < 0 || k >= len(h.Phases) {
		return nil
	}
	return h.Phases[k]
}

// Individual returns the individual subhistory pH_k for processor p: for
// each phase 1..k, the edges with target p, in recorded order. Index 0 of
// the result is unused padding, mirroring History.Phases.
func (h *History) Individual(p ident.ProcID, k int) []Phase {
	if k > h.NumPhases() {
		k = h.NumPhases()
	}
	out := make([]Phase, k+1)
	for ph := 1; ph <= k; ph++ {
		for _, e := range h.Phases[ph] {
			if e.To == p {
				out[ph] = append(out[ph], e)
			}
		}
	}
	return out
}

// SentBy returns, per phase, the edges with source p. Index 0 is padding.
func (h *History) SentBy(p ident.ProcID) []Phase {
	out := make([]Phase, h.NumPhases()+1)
	for ph := 1; ph <= h.NumPhases(); ph++ {
		for _, e := range h.Phases[ph] {
			if e.From == p {
				out[ph] = append(out[ph], e)
			}
		}
	}
	return out
}

// Messages counts edges whose source is not in the faulty set.
func (h *History) Messages() int {
	n := 0
	for _, ph := range h.Phases {
		for _, e := range ph {
			if !h.Faulty.Has(e.From) {
				n++
			}
		}
	}
	return n
}

// Signatures counts signature links on edges whose source is not faulty —
// the Theorem 1 quantity.
func (h *History) Signatures() int {
	n := 0
	for _, ph := range h.Phases {
		for _, e := range ph {
			if !h.Faulty.Has(e.From) {
				n += e.SigTotal
			}
		}
	}
	return n
}

// ReceivedCount returns the number of edges with target p.
func (h *History) ReceivedCount(p ident.ProcID) int {
	n := 0
	for _, ph := range h.Phases {
		for _, e := range ph {
			if e.To == p {
				n++
			}
		}
	}
	return n
}

// APSet computes the Theorem 1 set A(p) over one or more histories: the set
// of processors that either receive the signature of p or whose signature p
// receives, in at least one of the histories. Following the paper's
// technical assumption ("every message in an authenticated algorithm
// carries at least the signature of its sender" — and Corollary 1's reading
// of unauthenticated messages as carrying exactly the last sender's
// signature), every edge counts its immediate sender as an implicit signer
// in addition to the signers embedded in the label. p itself is excluded;
// callers that follow the proof exactly can remove the transmitter
// themselves.
func APSet(p ident.ProcID, hists ...*History) ident.Set {
	out := make(ident.Set)
	for _, h := range hists {
		for _, ph := range h.Phases {
			for _, e := range ph {
				if e.To == p {
					// p receives the signatures of every signer in the
					// label, plus the immediate sender's.
					out.Add(e.From)
					for _, s := range e.Signers {
						out.Add(s)
					}
					continue
				}
				if e.From == p {
					// e carries p's implicit sender signature.
					out.Add(e.To)
					continue
				}
				// Does e carry p's embedded signature to e.To?
				for _, s := range e.Signers {
					if s == p {
						out.Add(e.To)
						break
					}
				}
			}
		}
	}
	out.Remove(p)
	return out
}

// MinAP returns the processor (excluding the transmitter) with the smallest
// A(p) over the given histories, together with that set. The proofs of
// Theorems 1 and 2 pick their victim this way.
func MinAP(hists ...*History) (ident.ProcID, ident.Set, error) {
	if len(hists) == 0 {
		return ident.None, nil, fmt.Errorf("history: no histories")
	}
	n := hists[0].N
	tr := hists[0].Transmitter
	best := ident.None
	var bestSet ident.Set
	for id := 0; id < n; id++ {
		p := ident.ProcID(id)
		if p == tr {
			continue
		}
		s := APSet(p, hists...)
		if best == ident.None || s.Len() < bestSet.Len() {
			best, bestSet = p, s
		}
	}
	return best, bestSet, nil
}

// SignatureExchanges counts, over the history, the total number of
// (message, signer) incidences from correct senders — the quantity summed in
// the proof of Theorem 1. It equals Signatures() when chains have distinct
// signers.
func (h *History) SignatureExchanges() int { return h.Signatures() }

// Recorder captures an engine run as a History. It implements sim.Observer.
type Recorder struct {
	hist *History
}

var _ sim.Observer = (*Recorder)(nil)

// NewRecorder creates a recorder producing a history with the given phase-0
// value.
func NewRecorder(n int, transmitter ident.ProcID, v ident.Value, faulty ident.Set) *Recorder {
	h := New(n, transmitter, v)
	h.Faulty = faulty.Clone()
	return &Recorder{hist: h}
}

// OnSend implements sim.Observer.
func (r *Recorder) OnSend(e sim.Envelope) {
	r.hist.Append(e.Phase, Edge{
		From:     e.From,
		To:       e.To,
		Label:    append([]byte(nil), e.Payload...),
		Signers:  append([]ident.ProcID(nil), e.Signers...),
		SigTotal: e.SigTotal,
	})
}

// History returns the recorded history.
func (r *Recorder) History() *History { return r.hist }

// Summary renders per-phase edge counts, for debugging and reports.
func (h *History) Summary() string {
	var out string
	for ph := 1; ph <= h.NumPhases(); ph++ {
		out += fmt.Sprintf("phase %d: %d edges\n", ph, len(h.Phases[ph]))
	}
	return out
}

// EdgesBetween returns the labels sent from -> to in the given phase, in
// recorded order.
func (h *History) EdgesBetween(phase int, from, to ident.ProcID) []Edge {
	var out []Edge
	for _, e := range h.PhaseEdges(phase) {
		if e.From == from && e.To == to {
			out = append(out, e)
		}
	}
	return out
}

// Senders returns the sorted set of processors that sent at least one
// message in the history.
func (h *History) Senders() []ident.ProcID {
	set := make(ident.Set)
	for _, ph := range h.Phases {
		for _, e := range ph {
			set.Add(e.From)
		}
	}
	ids := set.Sorted()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
