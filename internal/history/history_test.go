package history_test

import (
	"testing"
	"testing/quick"

	"byzex/internal/history"
	"byzex/internal/ident"
	"byzex/internal/sim"
)

func edge(from, to ident.ProcID, signers ...ident.ProcID) history.Edge {
	return history.Edge{
		From: from, To: to,
		Label:    []byte{byte(from), byte(to)},
		Signers:  signers,
		SigTotal: len(signers),
	}
}

func TestAppendAndQuery(t *testing.T) {
	h := history.New(4, 0, ident.V1)
	h.Append(1, edge(0, 1, 0))
	h.Append(1, edge(0, 2, 0))
	h.Append(2, edge(1, 2, 0, 1))

	if h.NumPhases() != 2 {
		t.Fatalf("phases %d", h.NumPhases())
	}
	if len(h.PhaseEdges(1)) != 2 || len(h.PhaseEdges(2)) != 1 {
		t.Fatal("edge counts wrong")
	}
	if h.PhaseEdges(3) != nil || h.PhaseEdges(-1) != nil {
		t.Fatal("out-of-range phases should be nil")
	}
	if h.Messages() != 3 {
		t.Fatalf("messages %d", h.Messages())
	}
	if h.Signatures() != 4 {
		t.Fatalf("signatures %d", h.Signatures())
	}
	if h.ReceivedCount(2) != 2 {
		t.Fatalf("received by p2: %d", h.ReceivedCount(2))
	}
}

func TestFaultySendersExcluded(t *testing.T) {
	h := history.New(3, 0, ident.V0)
	h.Faulty.Add(1)
	h.Append(1, edge(0, 2, 0))
	h.Append(1, edge(1, 2, 1, 1))
	if h.Messages() != 1 {
		t.Fatalf("messages %d, want 1 (faulty excluded)", h.Messages())
	}
	if h.Signatures() != 1 {
		t.Fatalf("signatures %d, want 1", h.Signatures())
	}
}

func TestIndividualSubhistory(t *testing.T) {
	h := history.New(4, 0, ident.V1)
	h.Append(1, edge(0, 1))
	h.Append(1, edge(0, 2))
	h.Append(2, edge(2, 1))
	h.Append(3, edge(3, 1))

	ind := h.Individual(1, 2)
	if len(ind) != 3 { // phases 0..2
		t.Fatalf("individual length %d", len(ind))
	}
	if len(ind[1]) != 1 || ind[1][0].From != 0 {
		t.Fatal("phase 1 edge wrong")
	}
	if len(ind[2]) != 1 || ind[2][0].From != 2 {
		t.Fatal("phase 2 edge wrong")
	}
	// Phase 3 excluded by the k cutoff.
	full := h.Individual(1, 99)
	if len(full) != 4 || len(full[3]) != 1 {
		t.Fatal("full individual wrong")
	}
}

func TestSentBy(t *testing.T) {
	h := history.New(3, 0, ident.V0)
	h.Append(1, edge(0, 1))
	h.Append(2, edge(0, 2))
	h.Append(2, edge(1, 2))
	sent := h.SentBy(0)
	if len(sent[1]) != 1 || len(sent[2]) != 1 {
		t.Fatal("SentBy(0) wrong")
	}
	if len(h.SentBy(2)[1])+len(h.SentBy(2)[2]) != 0 {
		t.Fatal("SentBy(2) should be empty")
	}
}

func TestAPSetDirectAndCarried(t *testing.T) {
	// p receives q's signature via a relay r: q ∈ A(p) even though q never
	// messaged p directly.
	h := history.New(4, 0, ident.V0)
	h.Append(1, edge(1, 3, 1))    // q=1 signs to r=3
	h.Append(2, edge(3, 2, 1, 3)) // r=3 relays (carrying 1's signature) to p=2

	ap := history.APSet(2, h)
	if !ap.Has(1) || !ap.Has(3) {
		t.Fatalf("A(p2) = %v, want {1,3}", ap.Sorted())
	}
	// And symmetric: 2 receives 1's signature, so 2 ∈ A(p1).
	ap1 := history.APSet(1, h)
	if !ap1.Has(3) || !ap1.Has(2) {
		t.Fatalf("A(p1) = %v, want {2,3}", ap1.Sorted())
	}
}

func TestAPSetExcludesSelf(t *testing.T) {
	h := history.New(3, 0, ident.V0)
	h.Append(1, edge(1, 2, 1))
	if history.APSet(1, h).Has(1) {
		t.Fatal("A(p) contains p")
	}
}

func TestMinAP(t *testing.T) {
	h := history.New(4, 0, ident.V0)
	// p1 exchanges with 2 partners; p2 and p3 with 1 each.
	h.Append(1, edge(2, 1, 2))
	h.Append(1, edge(3, 1, 3))
	p, set, err := history.MinAP(h)
	if err != nil {
		t.Fatal(err)
	}
	// p2 and p3 each have |A| = 1; p1 has 2. The transmitter (0) is
	// excluded from the min.
	if set.Len() != 1 || (p != 2 && p != 3) {
		t.Fatalf("min A(%v) = %v", p, set.Sorted())
	}
	if _, _, err := history.MinAP(); err == nil {
		t.Fatal("MinAP with no histories should fail")
	}
}

func TestRecorder(t *testing.T) {
	rec := history.NewRecorder(3, 0, ident.V1, ident.NewSet(2))
	rec.OnSend(sim.Envelope{From: 0, To: 1, Phase: 1, Payload: []byte("x"), Signers: []ident.ProcID{0}, SigTotal: 1})
	rec.OnSend(sim.Envelope{From: 2, To: 1, Phase: 2, Payload: []byte("y"), SigTotal: 0})
	h := rec.History()
	if h.Value != ident.V1 || h.N != 3 {
		t.Fatal("header wrong")
	}
	if !h.Faulty.Has(2) {
		t.Fatal("faulty set not recorded")
	}
	if h.Messages() != 1 { // faulty sender excluded
		t.Fatalf("messages %d", h.Messages())
	}
	if got := h.EdgesBetween(1, 0, 1); len(got) != 1 || string(got[0].Label) != "x" {
		t.Fatal("EdgesBetween wrong")
	}
	if s := h.Senders(); len(s) != 2 {
		t.Fatalf("senders %v", s)
	}
}

func TestRecorderCopiesBuffers(t *testing.T) {
	rec := history.NewRecorder(2, 0, ident.V0, nil)
	payload := []byte{1, 2, 3}
	rec.OnSend(sim.Envelope{From: 0, To: 1, Phase: 1, Payload: payload})
	payload[0] = 99
	if rec.History().PhaseEdges(1)[0].Label[0] == 99 {
		t.Fatal("recorder aliases caller's payload")
	}
}

func TestQuickMessageCountMatchesEdges(t *testing.T) {
	// Property: Messages() over a fault-free history equals the number of
	// appended edges, regardless of phases used.
	f := func(spec []uint8) bool {
		h := history.New(8, 0, ident.V0)
		count := 0
		for i, b := range spec {
			from := ident.ProcID(b % 8)
			to := ident.ProcID((b / 8) % 8)
			if from == to {
				continue
			}
			h.Append(1+i%5, edge(from, to, from))
			count++
		}
		return h.Messages() == count && h.Signatures() == count
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAPSymmetry(t *testing.T) {
	// Property: for single-signer edges, q ∈ A(p) whenever an edge carries
	// q's signature to p, and then p ∈ A(q) symmetrically... APSet is
	// defined symmetrically ("either receive the signature of p or p
	// receives their signatures"), so membership must be mutual.
	f := func(spec []uint8) bool {
		h := history.New(8, 0, ident.V0)
		for _, b := range spec {
			from := ident.ProcID(b % 8)
			to := ident.ProcID((b / 8) % 8)
			if from == to {
				continue
			}
			h.Append(1, edge(from, to, from))
		}
		for p := ident.ProcID(0); p < 8; p++ {
			for q := range history.APSet(p, h) {
				if !history.APSet(q, h).Has(p) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
