package history

import (
	"fmt"
	"sort"

	"byzex/internal/ident"
	"byzex/internal/protocol"
	"byzex/internal/sig"
	"byzex/internal/sim"
)

// Conformance implements Section 2's correctness definition executably: a
// processor p is *correct at phase k* of history h if each of its phase-k
// outedges carries exactly the label the protocol's correctness rule
// prescribes when applied to p's individual subhistory of the first k-1
// phases. A processor is correct in h if it is correct at every phase.
//
// The checker replays each processor's deterministic state machine against
// its individual subhistory and compares the emitted labels against the
// recorded ones, returning for every processor the first phase at which it
// deviated (0 if it conformed throughout). It requires the signature
// scheme the history was recorded under (both provided schemes sign
// deterministically, so re-signing reproduces identical labels).
//
// This turns fault detection into a query on the recorded object: after a
// split-brain run, Conformance pinpoints exactly the equivocating
// processor.
func Conformance(h *History, proto protocol.Protocol, scheme sig.Scheme, t int) (map[ident.ProcID]int, error) {
	if err := proto.Check(h.N, t); err != nil {
		return nil, err
	}
	out := make(map[ident.ProcID]int, h.N)
	for id := 0; id < h.N; id++ {
		p := ident.ProcID(id)
		deviation, err := replayOne(h, proto, scheme, t, p)
		if err != nil {
			return nil, fmt.Errorf("history: replaying %v: %w", p, err)
		}
		out[p] = deviation
	}
	return out, nil
}

// replayOne replays processor p and returns the first deviating phase (0
// for full conformance).
func replayOne(h *History, proto protocol.Protocol, scheme sig.Scheme, t int, p ident.ProcID) (int, error) {
	signer, err := scheme.Signer(p)
	if err != nil {
		return 0, err
	}
	node, err := proto.NewNode(protocol.NodeConfig{
		ID:          p,
		N:           h.N,
		T:           t,
		Transmitter: h.Transmitter,
		Value:       h.Value,
		Signer:      signer,
		Verifier:    scheme,
	})
	if err != nil {
		return 0, err
	}

	individual := h.Individual(p, h.NumPhases())
	sent := h.SentBy(p)
	lastPhase := proto.Phases(h.N, t)

	for phase := 1; phase <= h.NumPhases()+1; phase++ {
		var emitted []Edge
		ctx := sim.NewContext(p, h.N, t, h.Transmitter, phase, lastPhase, func(e sim.Envelope) {
			emitted = append(emitted, Edge{From: e.From, To: e.To, Label: e.Payload})
		})
		var inbox []sim.Envelope
		if phase-1 >= 1 && phase-1 < len(individual) {
			for _, e := range individual[phase-1] {
				inbox = append(inbox, sim.Envelope{
					From: e.From, To: p, Phase: phase - 1,
					Payload: e.Label, Signers: e.Signers, SigTotal: e.SigTotal,
				})
			}
		}
		if err := node.Step(ctx, inbox); err != nil {
			return 0, err
		}
		var recorded Phase
		if phase < len(sent) {
			recorded = sent[phase]
		}
		if !sameLabels(emitted, recorded) {
			return phase, nil
		}
	}
	return 0, nil
}

// sameLabels compares two edge sets as multisets of (to, label).
func sameLabels(a []Edge, b Phase) bool {
	if len(a) != len(b) {
		return false
	}
	keyed := func(edges []Edge) []string {
		out := make([]string, len(edges))
		for i, e := range edges {
			out[i] = fmt.Sprintf("%d|%x", e.To, e.Label)
		}
		sort.Strings(out)
		return out
	}
	ka, kb := keyed(a), keyed([]Edge(b))
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}
