package cli

import "flag"

// SearchFlags is the adversary-search flag surface shared by the commands
// that run the optimizer (today cmd/baattack; tests and future tools reuse
// it so the knobs stay in one place, mirroring RegisterServeFlags).
type SearchFlags struct {
	// Search toggles search mode.
	Search *bool
	// Objective is "sigs", "msgs" or "both" (see search.ParseObjective).
	Objective *string
	// Budget is the candidate-evaluation budget per protocol × objective.
	Budget *int
	// Parallel sizes the evaluation worker pool (0 = GOMAXPROCS). The
	// result is independent of this value — it only changes wall-clock.
	Parallel *int
	// Bench switches output to `go test -bench` lines for cmd/benchjson.
	Bench *bool
}

// RegisterSearchFlags declares the adversary-search surface on fs and
// returns the bound values.
func RegisterSearchFlags(fs *flag.FlagSet) *SearchFlags {
	sf := &SearchFlags{}
	sf.Search = fs.Bool("search", false, "run the adversary search (minimize cost vs the Theorem 1/2 bounds) instead of a single attack")
	sf.Objective = fs.String("objective", "both", "search objective: sigs|msgs|both")
	sf.Budget = fs.Int("budget", 240, "search: candidate evaluations per protocol x objective (each is two runs)")
	sf.Parallel = fs.Int("parallel", 0, "search: evaluation workers (0 = GOMAXPROCS); does not change results, only wall-clock")
	sf.Bench = fs.Bool("bench", false, "search: print go-bench formatted gap lines (for cmd/benchjson) instead of the table")
	return sf
}
