package cli_test

import (
	"context"
	"errors"
	"testing"

	"byzex/internal/cli"
	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/protocols/alg3"
	"byzex/internal/protocols/alg5"
)

func TestEveryProtocolNameResolvesAndRuns(t *testing.T) {
	// Each named protocol must resolve and complete a small run without a
	// protocol error (agreement semantics differ per protocol; exchange
	// primitives and strawmen are exempt from the BA check).
	configs := map[string]struct {
		n, t  int
		plain bool
		ba    bool // assert full Byzantine Agreement conditions
	}{
		"alg1":               {5, 2, false, true},
		"alg1-multi":         {5, 2, false, true},
		"alg2":               {5, 2, false, true},
		"alg3":               {12, 2, false, true},
		"alg4":               {16, 2, false, false},
		"alg4-relay":         {9, 2, false, false},
		"alg5":               {20, 2, false, true},
		"alg5-nopow":         {20, 2, false, true},
		"ic":                 {5, 1, false, true},
		"dolev-strong":       {6, 2, false, true},
		"lsp":                {7, 2, true, true},
		"phase-king":         {9, 2, true, true},
		"strawman-broadcast": {5, 1, false, true},
		"strawman-thinrelay": {8, 2, false, true},
	}
	for _, name := range cli.ProtocolNames() {
		cfg, ok := configs[name]
		if !ok {
			t.Fatalf("no test config for protocol %q", name)
		}
		params := cli.Params{N: cfg.n, T: cfg.t, Seed: 1}
		proto, err := cli.Protocol(name, params)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		schemeName := "hmac"
		if cfg.plain {
			schemeName = "plain"
		}
		scheme, err := cli.Scheme(schemeName, params)
		if err != nil {
			t.Fatal(err)
		}
		runCfg := core.Config{
			Protocol: proto, N: cfg.n, T: cfg.t, Value: ident.V1, Scheme: scheme,
		}
		if cfg.ba {
			if _, _, err := core.RunAndCheck(context.Background(), runCfg); err != nil {
				t.Errorf("%s: %v", name, err)
			}
		} else {
			if _, err := core.Run(context.Background(), runCfg); err != nil {
				t.Errorf("%s: %v", name, err)
			}
		}
	}
}

func TestSParameterDefaulting(t *testing.T) {
	cases := []struct {
		name    string
		params  cli.Params
		wantS   int
		wantErr bool
	}{
		{"zero-defaults-to-T", cli.Params{N: 12, T: 4, S: 0}, 4, false},
		{"zero-with-zero-T-floors-to-1", cli.Params{N: 5, T: 0, S: 0}, 1, false},
		{"explicit-wins", cli.Params{N: 12, T: 4, S: 7}, 7, false},
		{"explicit-one", cli.Params{N: 12, T: 4, S: 1}, 1, false},
		{"negative-rejected", cli.Params{N: 12, T: 4, S: -1}, 0, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			proto, err := cli.Protocol("alg3", tc.params)
			if tc.wantErr {
				if !errors.Is(err, cli.ErrBadParams) {
					t.Fatalf("err = %v, want ErrBadParams", err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if got := proto.(alg3.Protocol).S; got != tc.wantS {
				t.Fatalf("resolved S = %d, want %d", got, tc.wantS)
			}
			// The same resolution must apply to alg5.
			p5, err := cli.Protocol("alg5", tc.params)
			if err != nil {
				t.Fatal(err)
			}
			if got := p5.(alg5.Protocol).S; got != tc.wantS {
				t.Fatalf("alg5 resolved S = %d, want %d", got, tc.wantS)
			}
		})
	}
}

func TestProtocolsResolvesFullRegistry(t *testing.T) {
	protos, err := cli.Protocols(cli.Params{N: 9, T: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(protos) != len(cli.ProtocolNames()) {
		t.Fatalf("Protocols() has %d entries, names list %d", len(protos), len(cli.ProtocolNames()))
	}
	for _, name := range cli.ProtocolNames() {
		if protos[name] == nil {
			t.Fatalf("Protocols() missing %q", name)
		}
	}
	if _, err := cli.Protocols(cli.Params{N: 9, T: 2, S: -3}); !errors.Is(err, cli.ErrBadParams) {
		t.Fatalf("Protocols with bad S: err = %v, want ErrBadParams", err)
	}
}

func TestEveryAdversaryNameResolves(t *testing.T) {
	for _, name := range cli.AdversaryNames() {
		adv, err := cli.Adversary(name, cli.Params{N: 9, T: 2})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if name == "none" && adv != nil {
			t.Fatal("none resolved to a real adversary")
		}
		if name != "none" && adv == nil {
			t.Fatalf("%s resolved to nil", name)
		}
	}
	if _, err := cli.Adversary("bogus", cli.Params{}); err == nil {
		t.Fatal("bogus adversary accepted")
	}
}

func TestUnknownNamesRejected(t *testing.T) {
	if _, err := cli.Protocol("bogus", cli.Params{}); err == nil {
		t.Fatal("bogus protocol accepted")
	}
	if _, err := cli.Scheme("bogus", cli.Params{N: 2}); err == nil {
		t.Fatal("bogus scheme accepted")
	}
}

func TestFaultPlan(t *testing.T) {
	plan, err := cli.FaultPlan("crash=1@2;drop=0->2@1-3", 7)
	if err != nil {
		t.Fatal(err)
	}
	if plan == nil || plan.Empty() {
		t.Fatal("non-empty spec compiled to an inert plan")
	}
	if got := plan.CrashPhase(1); got != 2 {
		t.Fatalf("crash phase %d, want 2", got)
	}

	// The empty spec is "no injection": a nil plan, usable as-is.
	plan, err = cli.FaultPlan("", 7)
	if err != nil {
		t.Fatal(err)
	}
	if plan != nil {
		t.Fatalf("empty spec yielded %v, want nil", plan)
	}
	if !plan.Empty() || plan.CrashPhase(1) != 0 {
		t.Fatal("nil plan is not inert")
	}

	if _, err := cli.FaultPlan("drop=1->1@2", 7); err == nil {
		t.Fatal("self-link spec accepted")
	}
	if _, err := cli.FaultPlan("explode=all", 7); err == nil {
		t.Fatal("unknown directive accepted")
	}
}

func TestSchemeDefaults(t *testing.T) {
	s, err := cli.Scheme("", cli.Params{N: 4, Seed: 9})
	if err != nil || s.Name() != "hmac" {
		t.Fatalf("default scheme: %v %v", s, err)
	}
	ed, err := cli.Scheme("ed25519", cli.Params{N: 2})
	if err != nil || ed.Name() != "ed25519" {
		t.Fatalf("ed25519: %v", err)
	}
	pl, err := cli.Scheme("plain", cli.Params{N: 2})
	if err != nil || pl.Name() != "plain" {
		t.Fatalf("plain: %v", err)
	}
}
