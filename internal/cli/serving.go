// Template resolution shared by the serving commands: baserve and baload
// both describe an instance template with the same set of string flags
// (protocol, adversary, scheme, fault spec) and numeric parameters; Resolve
// turns one such description into a ready core.Config exactly once, so the
// server and the load generator's -verify mode cannot drift apart in how
// they interpret the flags.

package cli

import (
	"byzex/internal/core"
	"byzex/internal/ident"
)

// Template is the flag-level description of a per-instance run
// configuration, as accepted by baserve and baload.
type Template struct {
	// Protocol, Adversary, Scheme name the registry entries (see Protocol,
	// Adversary, Scheme); Faults is a faultnet spec string (empty = none).
	Protocol  string
	Adversary string
	Scheme    string
	Faults    string
	// N is the processor count (0 = default 2T+1); T the fault bound; S the
	// set/tree size parameter of alg3/alg5 (0 = default T).
	N, T, S int
	// Seed is the base seed: instance i runs with Seed + i.
	Seed int64
}

// Resolve builds the core.Config template. When a fault plan is present and
// no adversary is configured, the plan's affected processors become the
// faulty set (FaultyOverride), matching how the scenario tests budget
// faults; a plan that exceeds the t budget still resolves, but warn carries
// a non-empty explanation the caller should surface (instances may stall
// rather than decide).
func (tp Template) Resolve() (cfg core.Config, warn string, err error) {
	n := tp.N
	if n == 0 {
		n = 2*tp.T + 1
	}
	params := Params{N: n, T: tp.T, S: tp.S, Seed: tp.Seed}
	proto, err := Protocol(tp.Protocol, params)
	if err != nil {
		return core.Config{}, "", err
	}
	adv, err := Adversary(tp.Adversary, params)
	if err != nil {
		return core.Config{}, "", err
	}
	scheme, err := Scheme(tp.Scheme, params)
	if err != nil {
		return core.Config{}, "", err
	}
	plan, err := FaultPlan(tp.Faults, tp.Seed)
	if err != nil {
		return core.Config{}, "", err
	}
	var faultyOverride ident.Set
	if plan != nil {
		if adv == nil {
			faultyOverride = plan.Affected(n)
		}
		if budgetErr := plan.CheckBudget(n, tp.T); budgetErr != nil {
			warn = budgetErr.Error() + " — expect instances to stall or crash, not decide"
		}
	}
	return core.Config{
		Protocol: proto, N: n, T: tp.T,
		Scheme: scheme, Adversary: adv, Seed: tp.Seed,
		Faults: plan, FaultyOverride: faultyOverride,
	}, warn, nil
}
