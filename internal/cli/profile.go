// Shared pprof plumbing for the CLI tools: every command that can run hot
// (basim, baserve, baexp) exposes the same -cpuprofile/-memprofile pair and
// delegates the lifecycle — start CPU profiling before the run, write the
// heap snapshot after — to one Profiler instead of reimplementing it.

package cli

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profiler drives the pprof flags (-cpuprofile / -memprofile) shared by the
// CLI tools: StartProfiles begins CPU profiling immediately, Stop finalizes
// the CPU profile and snapshots the heap. Both paths are optional (empty
// string disables).
type Profiler struct {
	cpu     *os.File
	memPath string
}

// StartProfiles starts CPU profiling to cpuPath and remembers memPath for
// the heap snapshot Stop will take. A nil Profiler is returned (with no
// error) when both paths are empty, and Stop on it is a no-op.
func StartProfiles(cpuPath, memPath string) (*Profiler, error) {
	if cpuPath == "" && memPath == "" {
		return nil, nil
	}
	p := &Profiler{memPath: memPath}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cli: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			_ = f.Close()
			return nil, fmt.Errorf("cli: cpu profile: %w", err)
		}
		p.cpu = f
	}
	return p, nil
}

// Stop finalizes the CPU profile (if one was started) and writes a heap
// profile (if a path was given). Safe on a nil receiver.
func (p *Profiler) Stop() error {
	if p == nil {
		return nil
	}
	if p.cpu != nil {
		pprof.StopCPUProfile()
		if err := p.cpu.Close(); err != nil {
			return fmt.Errorf("cli: cpu profile: %w", err)
		}
		p.cpu = nil
	}
	if p.memPath != "" {
		f, err := os.Create(p.memPath)
		if err != nil {
			return fmt.Errorf("cli: mem profile: %w", err)
		}
		runtime.GC() // settle the heap so the snapshot reflects live objects
		if err := pprof.WriteHeapProfile(f); err != nil {
			_ = f.Close()
			return fmt.Errorf("cli: mem profile: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("cli: mem profile: %w", err)
		}
	}
	return nil
}
