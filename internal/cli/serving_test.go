package cli_test

import (
	"strings"
	"testing"

	"byzex/internal/cli"
	"byzex/internal/ident"
)

func TestTemplateResolveDefaults(t *testing.T) {
	cfg, warn, err := cli.Template{
		Protocol: "alg1", Adversary: "none", Scheme: "hmac", T: 2, Seed: 9,
	}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if warn != "" {
		t.Fatalf("unexpected warning %q", warn)
	}
	if cfg.N != 5 || cfg.T != 2 || cfg.Seed != 9 {
		t.Fatalf("resolved n=%d t=%d seed=%d, want 5/2/9", cfg.N, cfg.T, cfg.Seed)
	}
	if cfg.Protocol == nil || cfg.Scheme == nil {
		t.Fatal("protocol or scheme not resolved")
	}
	if cfg.Adversary != nil {
		t.Fatal("adversary 'none' resolved to non-nil")
	}
}

func TestTemplateResolveFaultsCoverAffected(t *testing.T) {
	cfg, warn, err := cli.Template{
		Protocol: "alg1", Adversary: "none", Scheme: "hmac", T: 3,
		Faults: "crash=1@2;drop=2->4@1-3",
	}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if warn != "" {
		t.Fatalf("in-budget plan warned: %q", warn)
	}
	if cfg.Faults == nil {
		t.Fatal("fault plan not compiled")
	}
	want := ident.NewSet(1, 2)
	if len(cfg.FaultyOverride) != len(want) || !cfg.FaultyOverride.Has(1) || !cfg.FaultyOverride.Has(2) {
		t.Fatalf("FaultyOverride %v, want %v", cfg.FaultyOverride.Sorted(), want.Sorted())
	}
}

func TestTemplateResolveOverBudgetWarns(t *testing.T) {
	_, warn, err := cli.Template{
		Protocol: "alg1", Adversary: "none", Scheme: "hmac", T: 2,
		Faults: "crash=0@2;crash=1@2;crash=2@2",
	}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(warn, "stall") {
		t.Fatalf("over-budget plan resolved without a warning (warn=%q)", warn)
	}
}

func TestTemplateResolveErrors(t *testing.T) {
	if _, _, err := (cli.Template{Protocol: "no-such", Adversary: "none", Scheme: "hmac", T: 2}).Resolve(); err == nil {
		t.Fatal("unknown protocol resolved")
	}
	if _, _, err := (cli.Template{Protocol: "alg1", Adversary: "none", Scheme: "hmac", T: 2, Faults: "bogus"}).Resolve(); err == nil {
		t.Fatal("bad fault spec resolved")
	}
}
