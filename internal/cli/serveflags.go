package cli

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"byzex/internal/core"
	"byzex/internal/journal"
	"byzex/internal/service"
	"byzex/internal/trace"
	"byzex/internal/transport"
	"byzex/internal/wire"
)

// ServeFlags is the serving flag surface shared by baserve and baload's
// selfhost mode: the instance template (protocol, n, t, adversary, faults,
// scheme, seed), the substrate (-transport, -warm-mesh, -link-delay), the
// pipeline knobs (-shards, -queue, -batch and the adaptive window,
// -linger), and the ops plane (-metrics-addr, -trace, -trace-ring). The two
// binaries previously declared overlapping subsets of these by hand and had
// started to drift (baload's selfhost silently lacked -linger, -link-delay
// and -faults defaults matched only by accident); RegisterServeFlags
// declares each flag exactly once, so the surfaces cannot diverge again.
type ServeFlags struct {
	// Template flags (see Template).
	Protocol  *string
	Adversary *string
	Scheme    *string
	Faults    *string
	N, T, S   *int
	Seed      *int64

	// Substrate flags.
	Transport *string
	WarmMesh  *bool
	LinkDelay *time.Duration

	// Pipeline flags.
	Shards   *int
	Inflight *int
	Queue    *int
	Batch    *int
	Adaptive *bool
	BatchMin *int
	BatchMax *int
	Linger   *time.Duration

	// Ops-plane flags.
	MetricsAddr *string
	TracePath   *string
	TraceRing   *int

	// Durability flags.
	JournalDir         *string
	Fsync              *string
	CheckpointEvery    *int
	CheckpointInterval *time.Duration

	// Wire flags.
	WireVersion *int
}

// RegisterServeFlags declares the shared serving surface on fs and returns
// the bound values. Command-specific flags (-addr, -c, -rate, ...) stay with
// their command.
func RegisterServeFlags(fs *flag.FlagSet) *ServeFlags {
	sf := &ServeFlags{}
	sf.Protocol = fs.String("protocol", "alg1", "protocol: "+strings.Join(ProtocolNames(), "|"))
	sf.N = fs.Int("n", 0, "number of processors (default 2t+1)")
	sf.T = fs.Int("t", 2, "fault bound")
	sf.S = fs.Int("s", 0, "set/tree size parameter for alg3/alg5 (default t)")
	sf.Adversary = fs.String("adversary", "none", "adversary: "+strings.Join(AdversaryNames(), "|"))
	sf.Faults = fs.String("faults", "", `fault-injection spec applied to every instance, e.g. "crash=1@2" (see internal/faultnet)`)
	sf.Scheme = fs.String("scheme", "hmac", "signature scheme: hmac|ed25519|plain")
	sf.Seed = fs.Int64("seed", 1, "base seed; instance i runs with seed+i")

	sf.Transport = fs.String("transport", "memory", "substrate per instance: memory|tcp")
	sf.WarmMesh = fs.Bool("warm-mesh", false, "with -transport tcp: one long-lived mesh per shard, reused across instances")
	sf.LinkDelay = fs.Duration("link-delay", 0, "with -transport tcp: modeled one-way link latency per phase")

	sf.Shards = fs.Int("shards", 0, "shard workers executing instances concurrently (default GOMAXPROCS)")
	sf.Inflight = fs.Int("inflight", 0, "deprecated alias for -shards")
	sf.Queue = fs.Int("queue", 64, "admission queue depth")
	sf.Batch = fs.Int("batch", 1, "max values coalesced into one instance (fixed batching)")
	sf.Adaptive = fs.Bool("adaptive", false, "adaptive batching inside [-batch-min, -batch-max] instead of fixed -batch")
	sf.BatchMin = fs.Int("batch-min", 1, "adaptive window lower bound")
	sf.BatchMax = fs.Int("batch-max", 0, "adaptive window upper bound (default -batch, or 16)")
	sf.Linger = fs.Duration("linger", 0, "how long to wait for a batch to fill")

	sf.MetricsAddr = fs.String("metrics-addr", "", "serve Prometheus text metrics on this address (e.g. 127.0.0.1:9441); empty = off")
	sf.TracePath = fs.String("trace", "", "spool the service execution trace (JSONL) to this file; instance events flush at delivery")
	sf.TraceRing = fs.Int("trace-ring", 4096, "with -trace: admission-scoped events retained (older ones are dropped and counted)")

	sf.JournalDir = fs.String("journal-dir", "", "write-ahead journal directory; admissions are journaled before execution and replayed on restart; empty = no durability")
	sf.Fsync = fs.String("fsync", "always", `journal sync policy: "always" (sync every admission) or a group-commit interval like "2ms"`)
	sf.CheckpointEvery = fs.Int("checkpoint-every", 5000, "with -journal-dir: write a mid-run checkpoint every N journaled admissions, pruning delivered segments (0 = only at drain)")
	sf.CheckpointInterval = fs.Duration("checkpoint-interval", 30*time.Second, "with -journal-dir: also checkpoint after this much time since the last one (0 = no timer)")

	sf.WireVersion = fs.Int("wire-version", 0, "with -transport tcp: frame version to emit (0 = current; receivers accept the whole compatibility window)")
	return sf
}

// Template packs the template flags for Resolve.
func (sf *ServeFlags) Template() Template {
	return Template{
		Protocol: *sf.Protocol, Adversary: *sf.Adversary, Scheme: *sf.Scheme,
		Faults: *sf.Faults, N: *sf.N, T: *sf.T, S: *sf.S, Seed: *sf.Seed,
	}
}

// ServiceConfig turns the pipeline and substrate flags into a service
// config over the resolved template. The trace sink is not wired here —
// callers attach OpenSpool's spool (or any sink) to the returned config.
func (sf *ServeFlags) ServiceConfig(tmpl core.Config) (service.Config, error) {
	cfg := service.Config{
		Template:    tmpl,
		Shards:      *sf.Shards,
		MaxInFlight: *sf.Inflight,
		QueueDepth:  *sf.Queue,
		BatchSize:   *sf.Batch,
		Linger:      *sf.Linger,
	}
	switch *sf.Transport {
	case "memory":
		if *sf.WarmMesh {
			return cfg, errors.New("-warm-mesh requires -transport tcp")
		}
	case "tcp":
		netCfg := transport.Net{LinkDelay: *sf.LinkDelay, WireVersion: byte(*sf.WireVersion)}
		if netCfg.WireVersion != 0 {
			if err := wire.CheckFrameVersion(netCfg.WireVersion); err != nil {
				return cfg, err
			}
		}
		if *sf.WarmMesh {
			cfg.Substrate = service.NewWarmTCP(tmpl.N, netCfg)
		} else {
			cfg.Run = service.RunTCP(netCfg)
		}
	default:
		return cfg, fmt.Errorf("unknown transport %q", *sf.Transport)
	}
	if *sf.WireVersion != 0 && *sf.Transport != "tcp" {
		return cfg, errors.New("-wire-version requires -transport tcp")
	}
	if *sf.Adaptive {
		bmax := *sf.BatchMax
		if bmax < 1 {
			bmax = *sf.Batch
		}
		if bmax < 2 {
			bmax = 16
		}
		cfg.BatchMin, cfg.BatchMax = *sf.BatchMin, bmax
	}
	return cfg, nil
}

// OpenJournal opens the -journal-dir write-ahead journal over the resolved
// template. It returns (nil, nil, nil) when -journal-dir is unset; otherwise
// the caller wires the writer into service.Config.Journal, seeds
// FirstInstance/BaseStats from the recovery, replays rec.Pending before
// taking live traffic, and closes the writer after the service drains.
func (sf *ServeFlags) OpenJournal(tmpl core.Config) (*journal.Writer, *journal.Recovery, error) {
	if *sf.JournalDir == "" {
		return nil, nil, nil
	}
	fsync, err := journal.ParseFsync(*sf.Fsync)
	if err != nil {
		return nil, nil, err
	}
	return journal.Open(*sf.JournalDir, journal.Options{
		Template:           tmpl,
		Fsync:              fsync,
		CheckpointEvery:    *sf.CheckpointEvery,
		CheckpointInterval: *sf.CheckpointInterval,
	})
}

// OpenSpool creates the -trace spool over its output file. It returns
// (nil, nil, nil) when -trace is unset; otherwise the caller attaches the
// spool as the service's trace sink and invokes close() after the service
// drains (it appends the admission ring, flushes and closes the file).
func (sf *ServeFlags) OpenSpool() (sp *trace.Spool, close func() error, err error) {
	if *sf.TracePath == "" {
		return nil, nil, nil
	}
	f, err := os.Create(*sf.TracePath)
	if err != nil {
		return nil, nil, err
	}
	sp = trace.NewSpool(f, *sf.TraceRing)
	return sp, func() error {
		err := sp.Close()
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		return err
	}, nil
}
