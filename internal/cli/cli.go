// Package cli maps command-line names to protocols, adversaries and
// signature schemes — shared by cmd/basim, cmd/baattack and tests so the
// tools stay consistent and the mapping is testable.
package cli

import (
	"fmt"
	"sort"

	"byzex/internal/adversary"
	"byzex/internal/ident"
	"byzex/internal/protocol"
	"byzex/internal/protocols/alg1"
	"byzex/internal/protocols/alg2"
	"byzex/internal/protocols/alg3"
	"byzex/internal/protocols/alg4"
	"byzex/internal/protocols/alg5"
	"byzex/internal/protocols/dolevstrong"
	"byzex/internal/protocols/ic"
	"byzex/internal/protocols/lsp"
	"byzex/internal/protocols/phaseking"
	"byzex/internal/protocols/strawman"
	"byzex/internal/sig"
)

// Params carries the numeric knobs some constructors need.
type Params struct {
	N, T, S int
	// Seed drives deterministic scheme generation.
	Seed int64
}

// Protocol resolves a protocol name. S defaults to T when zero.
func Protocol(name string, p Params) (protocol.Protocol, error) {
	s := p.S
	if s == 0 {
		s = p.T
	}
	if s < 1 {
		s = 1
	}
	switch name {
	case "alg1":
		return alg1.Protocol{}, nil
	case "alg1-multi":
		return alg1.MultiProtocol{}, nil
	case "alg2":
		return alg2.Protocol{}, nil
	case "alg3":
		return alg3.Protocol{S: s}, nil
	case "alg4":
		return alg4.Protocol{}, nil
	case "alg4-relay":
		return alg4.RelayProtocol{}, nil
	case "alg5":
		return alg5.Protocol{S: s}, nil
	case "alg5-nopow":
		return alg5.Protocol{S: s, DisablePoW: true}, nil
	case "ic":
		return ic.Protocol{Base: dolevstrong.Protocol{}}, nil
	case "dolev-strong":
		return dolevstrong.Protocol{}, nil
	case "lsp":
		return lsp.Protocol{}, nil
	case "phase-king":
		return phaseking.Protocol{}, nil
	case "strawman-broadcast":
		return strawman.Broadcast{}, nil
	case "strawman-thinrelay":
		width := p.T - 1
		if width < 1 {
			width = 1
		}
		return strawman.ThinRelay{RelayWidth: width}, nil
	default:
		return nil, fmt.Errorf("cli: unknown protocol %q (known: %v)", name, ProtocolNames())
	}
}

// ProtocolNames lists the recognized protocol names, sorted.
func ProtocolNames() []string {
	names := []string{
		"alg1", "alg1-multi", "alg2", "alg3", "alg4", "alg4-relay",
		"alg5", "alg5-nopow", "ic", "dolev-strong", "lsp", "phase-king",
		"strawman-broadcast", "strawman-thinrelay",
	}
	sort.Strings(names)
	return names
}

// Adversary resolves an adversary name ("none" and "" yield nil).
func Adversary(name string, p Params) (adversary.Adversary, error) {
	switch name {
	case "", "none":
		return nil, nil
	case "silent":
		return adversary.Silent{}, nil
	case "crash":
		return adversary.Crash{CrashAfter: 2}, nil
	case "split-brain":
		return adversary.SplitBrain{LowValue: ident.V0, HighValue: ident.V1, SplitAt: ident.ProcID(p.N / 2)}, nil
	case "multi-faced":
		return adversary.MultiFaced{Values: []ident.Value{0, 1, 2}}, nil
	case "garbage":
		return adversary.Garbage{}, nil
	case "chaos":
		return adversary.Chaos{}, nil
	case "bit-flipper":
		return adversary.BitFlipper{}, nil
	default:
		return nil, fmt.Errorf("cli: unknown adversary %q (known: %v)", name, AdversaryNames())
	}
}

// AdversaryNames lists the recognized adversary names, sorted.
func AdversaryNames() []string {
	names := []string{"none", "silent", "crash", "split-brain", "multi-faced", "garbage", "chaos", "bit-flipper"}
	sort.Strings(names)
	return names
}

// Scheme resolves a signature scheme name.
func Scheme(name string, p Params) (sig.Scheme, error) {
	switch name {
	case "", "hmac":
		return sig.NewHMAC(p.N, p.Seed), nil
	case "ed25519":
		return sig.NewEd25519(p.N, nil)
	case "plain":
		return sig.NewPlain(p.N), nil
	default:
		return nil, fmt.Errorf("cli: unknown scheme %q (known: hmac, ed25519, plain)", name)
	}
}
