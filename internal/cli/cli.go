// Package cli maps command-line names to protocols, adversaries and
// signature schemes — shared by cmd/basim, cmd/baattack and tests so the
// tools stay consistent and the mapping is testable.
package cli

import (
	"errors"
	"fmt"
	"sort"

	"byzex/internal/adversary"
	"byzex/internal/faultnet"
	"byzex/internal/ident"
	"byzex/internal/protocol"
	"byzex/internal/protocols/alg1"
	"byzex/internal/protocols/alg2"
	"byzex/internal/protocols/alg3"
	"byzex/internal/protocols/alg4"
	"byzex/internal/protocols/alg5"
	"byzex/internal/protocols/dolevstrong"
	"byzex/internal/protocols/ic"
	"byzex/internal/protocols/lsp"
	"byzex/internal/protocols/phaseking"
	"byzex/internal/protocols/strawman"
	"byzex/internal/sig"
)

// ErrBadParams reports numeric parameters outside their valid range.
var ErrBadParams = errors.New("cli: bad parameters")

// Params carries the numeric knobs some constructors need.
type Params struct {
	// N and T are the system size and fault bound.
	N, T int
	// S is the signature-count threshold used by the threshold protocols
	// (alg3, alg5). Zero means "default to T" — the paper's canonical
	// choice — with a floor of 1; negative values are rejected with
	// ErrBadParams.
	S int
	// Seed drives deterministic scheme generation.
	Seed int64
}

// Protocol resolves a protocol name. S defaults to T when zero (floor 1);
// negative S is rejected with ErrBadParams.
func Protocol(name string, p Params) (protocol.Protocol, error) {
	if p.S < 0 {
		return nil, fmt.Errorf("%w: S=%d (must be >= 0; 0 means default to T)", ErrBadParams, p.S)
	}
	s := p.S
	if s == 0 {
		s = p.T
	}
	if s < 1 {
		s = 1
	}
	switch name {
	case "alg1":
		return alg1.Protocol{}, nil
	case "alg1-multi":
		return alg1.MultiProtocol{}, nil
	case "alg2":
		return alg2.Protocol{}, nil
	case "alg3":
		return alg3.Protocol{S: s}, nil
	case "alg4":
		return alg4.Protocol{}, nil
	case "alg4-relay":
		return alg4.RelayProtocol{}, nil
	case "alg5":
		return alg5.Protocol{S: s}, nil
	case "alg5-nopow":
		return alg5.Protocol{S: s, DisablePoW: true}, nil
	case "ic":
		return ic.Protocol{Base: dolevstrong.Protocol{}}, nil
	case "dolev-strong":
		return dolevstrong.Protocol{}, nil
	case "lsp":
		return lsp.Protocol{}, nil
	case "phase-king":
		return phaseking.Protocol{}, nil
	case "strawman-broadcast":
		return strawman.Broadcast{}, nil
	case "strawman-thinrelay":
		width := p.T - 1
		if width < 1 {
			width = 1
		}
		return strawman.ThinRelay{RelayWidth: width}, nil
	default:
		return nil, fmt.Errorf("cli: unknown protocol %q (known: %v)", name, ProtocolNames())
	}
}

// Protocols resolves every recognized protocol name against p, keyed by
// name. Conformance tests use this to sweep the full protocol registry
// without hard-coding the name list; iterate ProtocolNames() for a
// deterministic order.
func Protocols(p Params) (map[string]protocol.Protocol, error) {
	out := make(map[string]protocol.Protocol)
	for _, name := range ProtocolNames() {
		proto, err := Protocol(name, p)
		if err != nil {
			return nil, err
		}
		out[name] = proto
	}
	return out, nil
}

// ProtocolNames lists the recognized protocol names, sorted.
func ProtocolNames() []string {
	names := []string{
		"alg1", "alg1-multi", "alg2", "alg3", "alg4", "alg4-relay",
		"alg5", "alg5-nopow", "ic", "dolev-strong", "lsp", "phase-king",
		"strawman-broadcast", "strawman-thinrelay",
	}
	sort.Strings(names)
	return names
}

// Adversary resolves an adversary name ("none" and "" yield nil).
func Adversary(name string, p Params) (adversary.Adversary, error) {
	switch name {
	case "", "none":
		return nil, nil
	case "silent":
		return adversary.Silent{}, nil
	case "crash":
		return adversary.Crash{CrashAfter: 2}, nil
	case "split-brain":
		return adversary.SplitBrain{LowValue: ident.V0, HighValue: ident.V1, SplitAt: ident.ProcID(p.N / 2)}, nil
	case "multi-faced":
		return adversary.MultiFaced{Values: []ident.Value{0, 1, 2}}, nil
	case "garbage":
		return adversary.Garbage{}, nil
	case "chaos":
		return adversary.Chaos{}, nil
	case "bit-flipper":
		return adversary.BitFlipper{}, nil
	default:
		return nil, fmt.Errorf("cli: unknown adversary %q (known: %v)", name, AdversaryNames())
	}
}

// AdversaryNames lists the recognized adversary names, sorted.
func AdversaryNames() []string {
	names := []string{"none", "silent", "crash", "split-brain", "multi-faced", "garbage", "chaos", "bit-flipper"}
	sort.Strings(names)
	return names
}

// FaultPlan compiles a fault-injection spec string (the faultnet DSL, e.g.
// "crash=1@2;drop=0->2@1-3;delay=3->*@2+1/0.5") into a plan seeded by seed.
// The empty string means no fault injection and yields a nil plan, which every
// faultnet method treats as inert — callers can pass the result straight into
// core.Config.Faults without a nil check of their own.
func FaultPlan(spec string, seed int64) (*faultnet.Plan, error) {
	if spec == "" {
		return nil, nil
	}
	parsed, err := faultnet.ParseSpec(spec)
	if err != nil {
		return nil, fmt.Errorf("cli: fault spec: %w", err)
	}
	plan, err := faultnet.Compile(parsed, seed)
	if err != nil {
		return nil, fmt.Errorf("cli: fault spec: %w", err)
	}
	return plan, nil
}

// Scheme resolves a signature scheme name.
func Scheme(name string, p Params) (sig.Scheme, error) {
	switch name {
	case "", "hmac":
		return sig.NewHMAC(p.N, p.Seed), nil
	case "ed25519":
		return sig.NewEd25519(p.N, nil)
	case "plain":
		return sig.NewPlain(p.N), nil
	default:
		return nil, fmt.Errorf("cli: unknown scheme %q (known: hmac, ed25519, plain)", name)
	}
}
