// Package tree implements the complete-binary-tree partition of passive
// processors used by Algorithm 5. The passive processors are divided into
// trees of capacity s = 2^λ - 1 (the last tree may hold fewer members).
// Positions use 0-based heap indexing: the children of position i are 2i+1
// and 2i+2; the root is position 0 at level 0; leaves sit at level λ-1.
//
// The paper speaks of subtrees "whose leaves are the leaves of the original
// binary tree": these are exactly the subtrees rooted at some position and
// containing all of its descendants. A subtree rooted at level k has depth
// λ-k and at most l(λ-k) = 2^(λ-k) - 1 members. Block x of Algorithm 5
// processes the depth-x subtrees, i.e. those rooted at level λ-x.
package tree

import (
	"fmt"
	"math/bits"

	"byzex/internal/ident"
)

// Ref addresses one node of a forest: tree index plus heap position.
type Ref struct {
	Tree int
	Pos  int
}

// Level returns the level of a heap position (root = 0).
func Level(pos int) int { return bits.Len(uint(pos)+1) - 1 }

// Cap returns l(x) = 2^x - 1, the capacity of a depth-x complete tree.
func Cap(x int) int { return (1 << uint(x)) - 1 }

// LambdaFor returns the smallest λ with 2^λ - 1 ≥ s, i.e. the depth of the
// smallest complete binary tree holding s members (λ ≥ 1).
func LambdaFor(s int) int {
	if s < 1 {
		s = 1
	}
	lam := 1
	for Cap(lam) < s {
		lam++
	}
	return lam
}

// Tree is one binary tree of processors in heap order.
type Tree struct {
	Members []ident.ProcID
}

// Children returns the existing child positions of pos.
func (t Tree) Children(pos int) []int {
	out := make([]int, 0, 2)
	for _, c := range []int{2*pos + 1, 2*pos + 2} {
		if c < len(t.Members) {
			out = append(out, c)
		}
	}
	return out
}

// Subtree returns the existing positions of the subtree rooted at pos, in
// BFS order starting with pos itself.
func (t Tree) Subtree(pos int) []int {
	if pos >= len(t.Members) {
		return nil
	}
	out := []int{pos}
	for i := 0; i < len(out); i++ {
		out = append(out, t.Children(out[i])...)
	}
	return out
}

// Forest is the partition of a processor list into binary trees.
type Forest struct {
	// Lambda is the tree depth; every tree holds at most Cap(Lambda)
	// members.
	Lambda int
	// Trees holds the trees in partition order.
	Trees []Tree

	locate map[ident.ProcID]Ref
}

// NewForest partitions the given processors (in order) into trees of depth
// lambda.
func NewForest(procs []ident.ProcID, lambda int) (*Forest, error) {
	if lambda < 1 {
		return nil, fmt.Errorf("tree: lambda %d < 1", lambda)
	}
	f := &Forest{Lambda: lambda, locate: make(map[ident.ProcID]Ref, len(procs))}
	s := Cap(lambda)
	for len(procs) > 0 {
		k := s
		if k > len(procs) {
			k = len(procs)
		}
		tr := Tree{Members: append([]ident.ProcID(nil), procs[:k]...)}
		for pos, id := range tr.Members {
			if _, dup := f.locate[id]; dup {
				return nil, fmt.Errorf("tree: duplicate processor %v", id)
			}
			f.locate[id] = Ref{Tree: len(f.Trees), Pos: pos}
		}
		f.Trees = append(f.Trees, tr)
		procs = procs[k:]
	}
	return f, nil
}

// Size returns the total number of processors in the forest.
func (f *Forest) Size() int { return len(f.locate) }

// Locate returns the position of a processor, if it is in the forest.
func (f *Forest) Locate(id ident.ProcID) (Ref, bool) {
	r, ok := f.locate[id]
	return r, ok
}

// At returns the processor at a position.
func (f *Forest) At(r Ref) ident.ProcID { return f.Trees[r.Tree].Members[r.Pos] }

// RootsOfDepth returns the refs of all existing roots of depth-x subtrees,
// i.e. the positions at level Lambda-x, across all trees.
func (f *Forest) RootsOfDepth(x int) []Ref {
	if x < 1 || x > f.Lambda {
		return nil
	}
	level := f.Lambda - x
	lo, hi := Cap(level), Cap(level+1) // positions at `level` are [2^level-1, 2^(level+1)-1)
	var out []Ref
	for ti, tr := range f.Trees {
		for pos := lo; pos < hi && pos < len(tr.Members); pos++ {
			out = append(out, Ref{Tree: ti, Pos: pos})
		}
	}
	return out
}

// SubtreeMembers returns the processors of the subtree rooted at r, in BFS
// order starting with the root.
func (f *Forest) SubtreeMembers(r Ref) []ident.ProcID {
	tr := f.Trees[r.Tree]
	ps := tr.Subtree(r.Pos)
	out := make([]ident.ProcID, len(ps))
	for i, p := range ps {
		out[i] = tr.Members[p]
	}
	return out
}

// BlockRoot returns the processor acting as q's root during block x: q's
// ancestor at level Lambda-x (which may be q itself when q sits exactly at
// that level). ok is false if q is above the block level (its subtree was
// processed in an earlier block).
func (f *Forest) BlockRoot(q ident.ProcID, x int) (ident.ProcID, bool) {
	r, ok := f.locate[q]
	if !ok {
		return ident.None, false
	}
	level := f.Lambda - x
	pos := r.Pos
	for Level(pos) > level {
		pos = (pos - 1) / 2
	}
	if Level(pos) != level {
		return ident.None, false
	}
	return f.Trees[r.Tree].Members[pos], true
}
