package tree_test

import (
	"testing"
	"testing/quick"

	"byzex/internal/ident"
	"byzex/internal/tree"
)

func TestLevelAndCap(t *testing.T) {
	wantLevels := []int{0, 1, 1, 2, 2, 2, 2, 3}
	for pos, want := range wantLevels {
		if got := tree.Level(pos); got != want {
			t.Errorf("Level(%d) = %d, want %d", pos, got, want)
		}
	}
	for x, want := range map[int]int{0: 0, 1: 1, 2: 3, 3: 7, 4: 15} {
		if got := tree.Cap(x); got != want {
			t.Errorf("Cap(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestLambdaFor(t *testing.T) {
	for s, want := range map[int]int{0: 1, 1: 1, 2: 2, 3: 2, 4: 3, 7: 3, 8: 4, 15: 4, 16: 5} {
		if got := tree.LambdaFor(s); got != want {
			t.Errorf("LambdaFor(%d) = %d, want %d", s, got, want)
		}
	}
}

func TestForestPartition(t *testing.T) {
	procs := ident.Range(20) // capacity 7 per tree at λ=3 -> 2 full + 1 of 6
	f, err := tree.NewForest(procs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Trees) != 3 {
		t.Fatalf("trees %d", len(f.Trees))
	}
	if len(f.Trees[0].Members) != 7 || len(f.Trees[2].Members) != 6 {
		t.Fatalf("tree sizes %d/%d", len(f.Trees[0].Members), len(f.Trees[2].Members))
	}
	if f.Size() != 20 {
		t.Fatalf("size %d", f.Size())
	}
	// Locate round-trips.
	for _, p := range procs {
		ref, ok := f.Locate(p)
		if !ok {
			t.Fatalf("%v not located", p)
		}
		if f.At(ref) != p {
			t.Fatalf("At(Locate(%v)) = %v", p, f.At(ref))
		}
	}
	if _, ok := f.Locate(99); ok {
		t.Fatal("located a stranger")
	}
}

func TestForestRejectsBadInput(t *testing.T) {
	if _, err := tree.NewForest(ident.Range(3), 0); err == nil {
		t.Fatal("lambda 0 accepted")
	}
	if _, err := tree.NewForest([]ident.ProcID{1, 1}, 2); err == nil {
		t.Fatal("duplicate accepted")
	}
}

func TestChildrenAndSubtree(t *testing.T) {
	f, _ := tree.NewForest(ident.Range(7), 3)
	tr := f.Trees[0]
	if kids := tr.Children(0); len(kids) != 2 || kids[0] != 1 || kids[1] != 2 {
		t.Fatalf("children(0) = %v", kids)
	}
	if kids := tr.Children(3); len(kids) != 0 {
		t.Fatalf("leaf children = %v", kids)
	}
	sub := tr.Subtree(1)
	want := []int{1, 3, 4}
	if len(sub) != 3 {
		t.Fatalf("subtree(1) = %v", sub)
	}
	for i := range want {
		if sub[i] != want[i] {
			t.Fatalf("subtree(1) = %v, want %v", sub, want)
		}
	}
	if whole := tr.Subtree(0); len(whole) != 7 {
		t.Fatalf("whole subtree %d", len(whole))
	}
	if tr.Subtree(99) != nil {
		t.Fatal("subtree of missing position")
	}
}

func TestTruncatedSubtree(t *testing.T) {
	f, _ := tree.NewForest(ident.Range(5), 3) // positions 0..4
	tr := f.Trees[0]
	if sub := tr.Subtree(1); len(sub) != 3 { // 1,3,4
		t.Fatalf("subtree(1) = %v", sub)
	}
	if sub := tr.Subtree(2); len(sub) != 1 { // 2 alone: 5,6 missing
		t.Fatalf("subtree(2) = %v", sub)
	}
}

func TestRootsOfDepth(t *testing.T) {
	f, _ := tree.NewForest(ident.Range(14), 3) // two trees of 7
	if roots := f.RootsOfDepth(3); len(roots) != 2 {
		t.Fatalf("depth-3 roots %d", len(roots))
	}
	if roots := f.RootsOfDepth(2); len(roots) != 4 {
		t.Fatalf("depth-2 roots %d", len(roots))
	}
	if roots := f.RootsOfDepth(1); len(roots) != 8 {
		t.Fatalf("depth-1 roots (leaves) %d", len(roots))
	}
	if f.RootsOfDepth(0) != nil || f.RootsOfDepth(4) != nil {
		t.Fatal("out-of-range depths")
	}
}

func TestBlockRoot(t *testing.T) {
	f, _ := tree.NewForest(ident.Range(7), 3)
	// Tree: 0 at level 0; 1,2 level 1; 3..6 level 2.
	// Block 3 (depth-3 subtrees): root is position 0 for everyone.
	for _, q := range ident.Range(7) {
		root, ok := f.BlockRoot(q, 3)
		if !ok || root != 0 {
			t.Fatalf("BlockRoot(%v, 3) = %v, %v", q, root, ok)
		}
	}
	// Block 2: level-1 ancestors.
	if r, ok := f.BlockRoot(3, 2); !ok || r != 1 {
		t.Fatalf("BlockRoot(3,2) = %v", r)
	}
	if r, ok := f.BlockRoot(6, 2); !ok || r != 2 {
		t.Fatalf("BlockRoot(6,2) = %v", r)
	}
	// A node above the block level has no block root.
	if _, ok := f.BlockRoot(0, 2); ok {
		t.Fatal("root has a block-2 root")
	}
	if _, ok := f.BlockRoot(0, 1); ok {
		t.Fatal("root has a block-1 root")
	}
	// Leaves are their own block-1 roots.
	if r, ok := f.BlockRoot(4, 1); !ok || r != 4 {
		t.Fatalf("BlockRoot(4,1) = %v", r)
	}
	if _, ok := f.BlockRoot(99, 1); ok {
		t.Fatal("stranger has a block root")
	}
}

func TestSubtreeMembersOrder(t *testing.T) {
	f, _ := tree.NewForest(ident.Range(7), 3)
	members := f.SubtreeMembers(tree.Ref{Tree: 0, Pos: 0})
	if len(members) != 7 || members[0] != 0 {
		t.Fatalf("members %v", members)
	}
	// BFS order: root, its children, then grandchildren.
	want := []ident.ProcID{0, 1, 2, 3, 4, 5, 6}
	for i := range want {
		if members[i] != want[i] {
			t.Fatalf("members %v", members)
		}
	}
}

func TestQuickPartitionComplete(t *testing.T) {
	// Property: every processor appears in exactly one tree at a valid
	// position, trees respect the capacity, and Subtree(0) enumerates each
	// tree completely.
	f := func(nRaw, lamRaw uint8) bool {
		n := int(nRaw)%60 + 1
		lam := int(lamRaw)%4 + 1
		procs := ident.Range(n)
		forest, err := tree.NewForest(procs, lam)
		if err != nil {
			return false
		}
		seen := make(ident.Set)
		capacity := tree.Cap(lam)
		for ti, tr := range forest.Trees {
			if len(tr.Members) > capacity {
				return false
			}
			if ti < len(forest.Trees)-1 && len(tr.Members) != capacity {
				return false // only the last tree may be short
			}
			for _, pos := range tr.Subtree(0) {
				if !seen.Add(tr.Members[pos]) {
					return false
				}
			}
		}
		return seen.Len() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBlockRootIsAncestorAtRightLevel(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw)%40 + 1
		forest, err := tree.NewForest(ident.Range(n), 3)
		if err != nil {
			return false
		}
		for _, q := range ident.Range(n) {
			ref, _ := forest.Locate(q)
			for x := 1; x <= 3; x++ {
				root, ok := forest.BlockRoot(q, x)
				if tree.Level(ref.Pos) < 3-x {
					if ok {
						return false
					}
					continue
				}
				if !ok {
					return false
				}
				rootRef, _ := forest.Locate(root)
				if rootRef.Tree != ref.Tree || tree.Level(rootRef.Pos) != 3-x {
					return false
				}
				// root's subtree must contain q.
				found := false
				for _, m := range forest.SubtreeMembers(rootRef) {
					if m == q {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
