package wire_test

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"byzex/internal/ident"
	"byzex/internal/wire"
)

func TestRoundTripScalars(t *testing.T) {
	w := wire.NewWriter(64)
	w.Uint(0)
	w.Uint(math.MaxUint64)
	w.Int(0)
	w.Int(-1)
	w.Int(math.MaxInt64)
	w.Int(math.MinInt64)
	w.Byte(0xAB)
	w.Proc(ident.ProcID(42))
	w.Proc(ident.None)
	w.Value(ident.V1)

	r := wire.NewReader(w.Bytes())
	if got := r.Uint(); got != 0 {
		t.Errorf("uint 0: got %d", got)
	}
	if got := r.Uint(); got != math.MaxUint64 {
		t.Errorf("uint max: got %d", got)
	}
	for _, want := range []int64{0, -1, math.MaxInt64, math.MinInt64} {
		if got := r.Int(); got != want {
			t.Errorf("int %d: got %d", want, got)
		}
	}
	if got := r.Byte(); got != 0xAB {
		t.Errorf("byte: got %x", got)
	}
	if got := r.Proc(); got != 42 {
		t.Errorf("proc: got %v", got)
	}
	if got := r.Proc(); got != ident.None {
		t.Errorf("none proc: got %v", got)
	}
	if got := r.Value(); got != ident.V1 {
		t.Errorf("value: got %v", got)
	}
	if err := r.Finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}
}

func TestRoundTripBytesAndStrings(t *testing.T) {
	cases := [][]byte{nil, {}, {0}, []byte("hello"), bytes.Repeat([]byte{0xFF}, 1000)}
	for _, c := range cases {
		w := wire.NewWriter(8)
		w.BytesField(c)
		r := wire.NewReader(w.Bytes())
		got := r.BytesField()
		if err := r.Finish(); err != nil {
			t.Fatalf("finish: %v", err)
		}
		if !bytes.Equal(got, c) {
			t.Errorf("round trip %q -> %q", c, got)
		}
	}
}

func TestRoundTripProcs(t *testing.T) {
	cases := [][]ident.ProcID{nil, {}, {0}, {1, 2, 3}, ident.Range(500)}
	for _, c := range cases {
		w := wire.NewWriter(8)
		w.Procs(c)
		r := wire.NewReader(w.Bytes())
		got := r.Procs()
		if err := r.Finish(); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(c) {
			t.Fatalf("len %d != %d", len(got), len(c))
		}
		for i := range c {
			if got[i] != c[i] {
				t.Errorf("elem %d: %v != %v", i, got[i], c[i])
			}
		}
	}
}

func TestProcsInto(t *testing.T) {
	cases := [][]ident.ProcID{nil, {}, {0}, {1, 2, 3}, ident.Range(500)}
	scratch := make([]ident.ProcID, 0, 8)
	for _, c := range cases {
		w := wire.NewWriter(8)
		w.Procs(c)
		r := wire.NewReader(w.Bytes())
		got := r.ProcsInto(scratch[:0])
		if err := r.Finish(); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(c) {
			t.Fatalf("len %d != %d", len(got), len(c))
		}
		for i := range c {
			if got[i] != c[i] {
				t.Errorf("elem %d: %v != %v", i, got[i], c[i])
			}
		}
	}
}

func TestProcsIntoAppends(t *testing.T) {
	// ProcsInto must extend dst, not restart it: an arena allocator hands it
	// a zero-length sub-slice of free space and relies on pure append
	// semantics.
	w := wire.NewWriter(8)
	w.Procs([]ident.ProcID{7, 8})
	dst := []ident.ProcID{1, 2, 3}
	r := wire.NewReader(w.Bytes())
	got := r.ProcsInto(dst)
	if len(got) != 5 || got[0] != 1 || got[2] != 3 || got[3] != 7 || got[4] != 8 {
		t.Fatalf("append semantics broken: %v", got)
	}
}

func TestProcsIntoTruncatedKeepsDst(t *testing.T) {
	// A decode failure mid-list must leave the visible dst untouched and the
	// reader's sticky error set.
	w := wire.NewWriter(8)
	w.Uint(3) // claims three elements
	w.Proc(5) // delivers one
	dst := make([]ident.ProcID, 0, 4)
	r := wire.NewReader(w.Bytes())
	got := r.ProcsInto(dst)
	if len(got) != 0 {
		t.Fatalf("truncated list extended dst: %v", got)
	}
	if r.Err() == nil {
		t.Fatal("truncated list decoded without error")
	}
}

func TestWriterReset(t *testing.T) {
	w := wire.NewWriter(4)
	w.Uint(1)
	w.BytesField([]byte("first"))
	first := append([]byte(nil), w.Bytes()...)
	w.Reset()
	if w.Len() != 0 {
		t.Fatalf("reset writer has %d bytes", w.Len())
	}
	w.Uint(1)
	w.BytesField([]byte("first"))
	if !bytes.Equal(w.Bytes(), first) {
		t.Fatalf("re-encoding after Reset differs: %x vs %x", w.Bytes(), first)
	}
}

func TestReaderReset(t *testing.T) {
	w := wire.NewWriter(8)
	w.Uint(42)
	var r wire.Reader
	r.Reset(nil)
	_ = r.Uint() // fails: empty buffer
	if r.Err() == nil {
		t.Fatal("expected error on empty buffer")
	}
	// Reset must clear the sticky error and rewind onto the new buffer.
	r.Reset(w.Bytes())
	if got := r.Uint(); got != 42 || r.Finish() != nil {
		t.Fatalf("reader after Reset: got %d, err %v", got, r.Finish())
	}
}

func TestTruncatedInputs(t *testing.T) {
	w := wire.NewWriter(16)
	w.Uint(300)
	w.BytesField([]byte("payload"))
	full := w.Bytes()

	for cut := 0; cut < len(full); cut++ {
		r := wire.NewReader(full[:cut])
		r.Uint()
		r.BytesField()
		if r.Finish() == nil {
			t.Errorf("cut at %d: no error", cut)
		}
	}
}

func TestOversizeLengthRejected(t *testing.T) {
	w := wire.NewWriter(8)
	w.Uint(uint64(wire.MaxElem) + 1)
	r := wire.NewReader(w.Bytes())
	r.BytesField()
	if r.Err() == nil {
		t.Fatal("oversize length accepted")
	}
}

func TestLengthBeyondBufferRejected(t *testing.T) {
	w := wire.NewWriter(8)
	w.Uint(1000) // length prefix with no content behind it
	r := wire.NewReader(w.Bytes())
	r.BytesField()
	if r.Err() == nil {
		t.Fatal("length beyond buffer accepted")
	}
}

func TestErrorsSticky(t *testing.T) {
	r := wire.NewReader(nil)
	_ = r.Uint() // fails
	first := r.Err()
	if first == nil {
		t.Fatal("expected error")
	}
	_ = r.Byte()
	_ = r.BytesField()
	if r.Err() != first {
		t.Fatal("error replaced after first failure")
	}
}

func TestTrailingBytesDetected(t *testing.T) {
	w := wire.NewWriter(8)
	w.Uint(1)
	w.Byte(0xEE)
	r := wire.NewReader(w.Bytes())
	r.Uint()
	if err := r.Finish(); err == nil {
		t.Fatal("trailing byte not detected")
	}
}

func TestQuickIntRoundTrip(t *testing.T) {
	f := func(v int64) bool {
		w := wire.NewWriter(16)
		w.Int(v)
		r := wire.NewReader(w.Bytes())
		return r.Int() == v && r.Finish() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUintRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		w := wire.NewWriter(16)
		w.Uint(v)
		r := wire.NewReader(w.Bytes())
		return r.Uint() == v && r.Finish() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMixedSequenceRoundTrip(t *testing.T) {
	f := func(a uint64, b int64, payload []byte, s string) bool {
		if len(payload) > wire.MaxElem || len(s) > wire.MaxElem {
			return true
		}
		w := wire.NewWriter(32)
		w.Uint(a)
		w.BytesField(payload)
		w.Int(b)
		w.String(s)
		r := wire.NewReader(w.Bytes())
		if r.Uint() != a {
			return false
		}
		if !bytes.Equal(r.BytesField(), payload) {
			return false
		}
		if r.Int() != b {
			return false
		}
		if r.String() != s {
			return false
		}
		return r.Finish() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickGarbageNeverPanics(t *testing.T) {
	f := func(garbage []byte) bool {
		r := wire.NewReader(garbage)
		_ = r.Uint()
		_ = r.BytesField()
		_ = r.Procs()
		_ = r.Int()
		_ = r.Finish()
		return true // only checking for absence of panics
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
