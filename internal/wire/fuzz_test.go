package wire_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/protocols/alg1"
	"byzex/internal/sim"
	"byzex/internal/wire"
)

// envelopeCapture records every envelope the engine accepts, giving the
// fuzzer a seed corpus of real protocol traffic rather than hand-written
// bytes.
type envelopeCapture struct {
	envs []sim.Envelope
}

func (c *envelopeCapture) OnSend(e sim.Envelope) { c.envs = append(c.envs, e) }

// captureFrameBodies runs one alg1 instance (n=7, t=3) on the in-memory
// engine and encodes the observed envelopes exactly the way the TCP
// transport frames them: version byte, uvarint mesh epoch, phase, sender,
// the reserved v2 flags field, count, then per message a length-prefixed
// payload, the signer list and the running signature total.
func captureFrameBodies(tb testing.TB) [][]byte {
	tb.Helper()
	cfg := core.Config{Protocol: alg1.Protocol{}, N: 7, T: 3, Value: 1, Seed: 42}
	setup, err := core.NewSetup(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	cap := &envelopeCapture{}
	eng, err := sim.New(sim.Config{
		N: cfg.N, T: cfg.T, Transmitter: cfg.Transmitter,
		Phases: setup.Phases, Faulty: setup.Faulty,
		Observers: []sim.Observer{cap},
	}, setup.Nodes)
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := eng.Run(context.Background()); err != nil {
		tb.Fatal(err)
	}
	if len(cap.envs) == 0 {
		tb.Fatal("run produced no envelopes to seed from")
	}

	encode := func(ver byte, phase int, from ident.ProcID, msgs []sim.Envelope) []byte {
		w := wire.NewWriter(64)
		w.Byte(ver)
		w.Uint(1) // mesh epoch
		w.Uint(uint64(phase))
		w.Proc(from)
		if ver >= wire.FrameV2 {
			w.Uint(0) // reserved frame flags
		}
		w.Uint(uint64(len(msgs)))
		for _, m := range msgs {
			w.BytesField(m.Payload)
			w.Procs(m.Signers)
			w.Uint(uint64(m.SigTotal))
		}
		return append([]byte(nil), w.Bytes()...)
	}

	var bodies [][]byte
	for _, e := range cap.envs {
		bodies = append(bodies, encode(wire.FrameVersion, e.Phase, e.From, []sim.Envelope{e}))
	}
	// One multi-message frame, as a sender's per-phase flush produces, at
	// every version the compatibility window accepts — plus one past the
	// window, which must fail typed (ErrWireVersion), never misparse.
	k := len(cap.envs)
	if k > 8 {
		k = 8
	}
	for ver := wire.FrameVersionMin; ver <= wire.FrameVersion+1; ver++ {
		bodies = append(bodies, encode(ver, cap.envs[0].Phase, cap.envs[0].From, cap.envs[:k]))
	}
	return bodies
}

type fuzzMsg struct {
	payload  []byte
	signers  []ident.ProcID
	sigTotal uint64
}

// decodeBody mirrors the transport's frame-body decode sequence: the version
// byte first (checked against the compatibility window before any layout
// behind it is trusted), the epoch tag (read before the transport decides
// whether the frame belongs to the live mesh run), the reserved v2 flags
// field, then the message section.
func decodeBody(body []byte) (ver byte, epoch, phase uint64, from ident.ProcID, msgs []fuzzMsg, err error) {
	r := wire.NewReader(body)
	ver = r.Byte()
	if r.Err() == nil {
		if err := wire.CheckFrameVersion(ver); err != nil {
			return ver, 0, 0, 0, nil, err
		}
	}
	epoch = r.Uint()
	phase = r.Uint()
	from = r.Proc()
	if ver >= wire.FrameV2 {
		if flags := r.Uint(); r.Err() == nil && flags != 0 {
			return ver, 0, 0, 0, nil, fmt.Errorf("%w: unknown frame flags %#x", wire.ErrWireVersion, flags)
		}
	}
	cnt := r.Len()
	for i := 0; i < cnt && r.Err() == nil; i++ {
		msgs = append(msgs, fuzzMsg{
			payload:  append([]byte(nil), r.BytesField()...),
			signers:  r.Procs(),
			sigTotal: r.Uint(),
		})
	}
	return ver, epoch, phase, from, msgs, r.Finish()
}

// FuzzFrameBodyDecode feeds arbitrary bytes through the exact read sequence
// the TCP transport uses on a frame body. Invariants: decoding never
// panics, a version byte outside [FrameVersionMin, FrameVersion] always
// fails with ErrWireVersion (never a misparse of the layout behind it), a
// failed reader is sticky (all later reads yield zero values), and any body
// that decodes cleanly survives a re-encode/re-decode round trip with
// identical values.
func FuzzFrameBodyDecode(f *testing.F) {
	for _, body := range captureFrameBodies(f) {
		f.Add(body)
		if len(body) > 2 {
			f.Add(body[:len(body)/2]) // truncation seed
		}
	}
	f.Add([]byte{})
	f.Add([]byte{wire.FrameV1, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}) // 10-byte uvarint
	f.Add([]byte{0x00})                                                                     // below the window
	f.Add([]byte{wire.FrameVersion + 1})                                                    // above the window
	f.Add([]byte{wire.FrameV2, 1, 1, 2, 1})                                                 // v2 with nonzero reserved flags

	f.Fuzz(func(t *testing.T, body []byte) {
		ver, epoch, phase, from, msgs, err := decodeBody(body)
		if len(body) > 0 && wire.CheckFrameVersion(body[0]) != nil {
			// Out-of-window version: the failure must be the typed sentinel,
			// raised before any field behind the version byte is interpreted.
			if !errors.Is(err, wire.ErrWireVersion) {
				t.Fatalf("version %d accepted: err=%v", body[0], err)
			}
			return
		}
		if err != nil {
			// Sticky-error contract: after a failure every read is a no-op
			// returning the zero value.
			r := wire.NewReader(body)
			for i := 0; i <= len(body) && r.Err() == nil; i++ {
				r.Uint()
			}
			if r.Err() != nil {
				if v := r.Uint(); v != 0 {
					t.Fatalf("read after error returned %d, want 0", v)
				}
				if b := r.BytesField(); b != nil {
					t.Fatalf("read after error returned %d bytes, want nil", len(b))
				}
			}
			return
		}

		// Clean decode: re-encoding the decoded values must produce a body
		// that decodes to the same values (canonical round trip).
		w := wire.NewWriter(len(body))
		w.Byte(ver)
		w.Uint(epoch)
		w.Uint(phase)
		w.Proc(from)
		if ver >= wire.FrameV2 {
			w.Uint(0)
		}
		w.Uint(uint64(len(msgs)))
		for _, m := range msgs {
			w.BytesField(m.payload)
			w.Procs(m.signers)
			w.Uint(m.sigTotal)
		}
		ver2, epoch2, phase2, from2, msgs2, err := decodeBody(w.Bytes())
		if err != nil {
			t.Fatalf("re-encoding of a clean decode fails to decode: %v", err)
		}
		if ver2 != ver || epoch2 != epoch || phase2 != phase || from2 != from || len(msgs2) != len(msgs) {
			t.Fatalf("round trip header: (v%d,%d,%d,%v,%d) != (v%d,%d,%d,%v,%d)",
				ver2, epoch2, phase2, from2, len(msgs2), ver, epoch, phase, from, len(msgs))
		}
		for i := range msgs {
			if !bytes.Equal(msgs[i].payload, msgs2[i].payload) ||
				msgs[i].sigTotal != msgs2[i].sigTotal ||
				len(msgs[i].signers) != len(msgs2[i].signers) {
				t.Fatalf("round trip message %d: %+v != %+v", i, msgs2[i], msgs[i])
			}
			for j := range msgs[i].signers {
				if msgs[i].signers[j] != msgs2[i].signers[j] {
					t.Fatalf("round trip message %d signer %d", i, j)
				}
			}
		}
	})
}

// FuzzReaderPrimitives checks the primitive decoders against arbitrary
// input: no panics, Len never admits more than the remaining buffer, and
// zigzag integers survive a round trip.
func FuzzReaderPrimitives(f *testing.F) {
	f.Add([]byte{0x00})
	f.Add([]byte{0x80, 0x01, 0x03, 'a', 'b', 'c'})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := wire.NewReader(data)
		v := r.Int()
		if r.Err() == nil {
			w := wire.NewWriter(10)
			w.Int(v)
			if got := wire.NewReader(w.Bytes()).Int(); got != v {
				t.Fatalf("zigzag round trip: %d != %d", got, v)
			}
		}
		n := r.Len()
		if r.Err() == nil && n > len(r.Rest()) {
			t.Fatalf("Len admitted %d with only %d bytes left", n, len(r.Rest()))
		}
		_ = r.BytesField()
		_ = r.Procs()
		_ = r.String()
	})
}
