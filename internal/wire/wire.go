// Package wire implements the canonical binary encoding shared by the
// in-memory and TCP transports and by the signature chains.
//
// Protocol messages must serialize identically on every processor: a
// signature is computed over the canonical bytes, so any ambiguity in the
// encoding would let a faulty processor present the "same" message in two
// forms. The encoding is deliberately simple and deterministic:
//
//   - unsigned integers as uvarint
//   - signed integers as zigzag uvarint
//   - byte strings as uvarint length prefix + raw bytes
//   - lists as uvarint count + elements
//
// The Reader methods record the first error and make all subsequent reads
// no-ops, so decoding code can chain reads and check the error once
// ("handle errors once", per the style guide).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"byzex/internal/ident"
)

// ErrTruncated indicates the buffer ended before a complete value was read.
var ErrTruncated = errors.New("wire: truncated input")

// ErrWireVersion indicates a frame carried a version byte outside the
// compatibility window [FrameVersionMin, FrameVersion]. Receivers reject the
// frame (and close the connection) rather than guessing at the layout; the
// typed sentinel lets operators distinguish a version skew from corruption.
var ErrWireVersion = errors.New("wire: unsupported frame version")

// Frame versions. Every transport frame body starts with one version byte;
// the compatibility window [FrameVersionMin, FrameVersion] is what a receiver
// accepts, which is how a warm mesh rolls peers through an encoding change
// without a flag day: a rolled-out binary accepts both versions, so peers can
// be upgraded one at a time and emitters flipped once every receiver is new
// (transport.Net.WireVersion pins the emitted version during the roll).
const (
	// FrameV1 is the original framed layout: version byte, uvarint epoch,
	// uvarint phase, zigzag sender, uvarint message count, messages.
	FrameV1 byte = 1
	// FrameV2 adds a reserved frame-flags uvarint (must be zero) after the
	// sender field — the extension point the version window exists for.
	FrameV2 byte = 2

	// FrameVersion is the newest version this build understands (and the
	// highest it can emit).
	FrameVersion = FrameV2
	// FrameVersionMin is the oldest version this build still accepts.
	FrameVersionMin = FrameV1
)

// CheckFrameVersion validates a received frame's version byte against the
// compatibility window, returning an error wrapping ErrWireVersion outside
// it.
func CheckFrameVersion(v byte) error {
	if v < FrameVersionMin || v > FrameVersion {
		return fmt.Errorf("%w: got v%d, accept [v%d, v%d]", ErrWireVersion, v, FrameVersionMin, FrameVersion)
	}
	return nil
}

// ErrOversize indicates a length prefix exceeded the reader's limit; it
// guards against maliciously crafted payloads allocating huge buffers.
var ErrOversize = errors.New("wire: length prefix exceeds limit")

// MaxElem bounds any single length prefix (bytes of a string or elements of
// a list). 1 MiB is far above anything the protocols in this module send for
// a single field while still preventing pathological allocations.
const MaxElem = 1 << 20

// Writer accumulates a canonical encoding. The zero value is ready to use.
type Writer struct {
	buf []byte
}

// NewWriter returns a writer with capacity preallocated for n bytes.
func NewWriter(n int) *Writer { return &Writer{buf: make([]byte, 0, n)} }

// Bytes returns the encoded bytes. The slice aliases the writer's internal
// buffer; callers that keep writing must copy it first.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Reset empties the writer, keeping its buffer for reuse. Slices previously
// returned by Bytes alias that buffer and are overwritten by later writes —
// Reset is for hot paths that fully consume each encoding before the next
// (the TCP transport's frame writer).
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// Uint appends an unsigned integer.
func (w *Writer) Uint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }

// Int appends a signed integer using zigzag encoding.
func (w *Writer) Int(v int64) { w.buf = binary.AppendUvarint(w.buf, zigzag(v)) }

// Byte appends a single raw byte.
func (w *Writer) Byte(b byte) { w.buf = append(w.buf, b) }

// BytesField appends a length-prefixed byte string.
func (w *Writer) BytesField(b []byte) {
	w.Uint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Proc appends a processor identity.
func (w *Writer) Proc(p ident.ProcID) { w.Int(int64(p)) }

// Procs appends a count-prefixed list of processor identities.
func (w *Writer) Procs(ps []ident.ProcID) {
	w.Uint(uint64(len(ps)))
	for _, p := range ps {
		w.Proc(p)
	}
}

// Value appends an agreement value.
func (w *Writer) Value(v ident.Value) { w.Int(int64(v)) }

// Reader decodes a canonical encoding produced by Writer. Construct with
// NewReader. After any failure, Err returns the first error and every
// subsequent read returns the zero value.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps buf for decoding. The reader does not copy buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Reset rewinds the reader onto a new buffer, clearing any sticky error —
// the zero-allocation alternative to NewReader for per-frame decoders that
// keep a Reader value alive across frames.
func (r *Reader) Reset(buf []byte) { r.buf, r.off, r.err = buf, 0, nil }

// Err returns the first decoding error, or nil.
func (r *Reader) Err() error { return r.err }

// Rest returns the unread remainder of the buffer.
func (r *Reader) Rest() []byte { return r.buf[r.off:] }

// Done reports whether the whole buffer was consumed without error.
func (r *Reader) Done() bool { return r.err == nil && r.off == len(r.buf) }

// Finish returns an error unless the buffer was fully and cleanly consumed.
func (r *Reader) Finish() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("wire: %d trailing bytes", len(r.buf)-r.off)
	}
	return nil
}

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Uint reads an unsigned integer.
func (r *Reader) Uint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail(ErrTruncated)
		return 0
	}
	r.off += n
	return v
}

// Int reads a signed integer.
func (r *Reader) Int() int64 { return unzigzag(r.Uint()) }

// Byte reads a single raw byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.buf) {
		r.fail(ErrTruncated)
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

// Len reads a length prefix and validates it against MaxElem and the
// remaining buffer size (for byte-granular lengths the latter is exact; for
// element counts it is a conservative lower bound of one byte per element).
func (r *Reader) Len() int {
	n := r.Uint()
	if r.err != nil {
		return 0
	}
	if n > MaxElem || int(n) > len(r.buf)-r.off {
		r.fail(ErrOversize)
		return 0
	}
	return int(n)
}

// BytesField reads a length-prefixed byte string. The result aliases the
// underlying buffer.
func (r *Reader) BytesField() []byte {
	n := r.Len()
	if r.err != nil {
		return nil
	}
	out := r.buf[r.off : r.off+n]
	r.off += n
	return out
}

// String reads a length-prefixed string.
func (r *Reader) String() string { return string(r.BytesField()) }

// Proc reads a processor identity.
func (r *Reader) Proc() ident.ProcID { return ident.ProcID(r.Int()) }

// Procs reads a count-prefixed list of processor identities.
func (r *Reader) Procs() []ident.ProcID {
	n := r.Len()
	if r.err != nil {
		return nil
	}
	out := make([]ident.ProcID, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.Proc())
	}
	if r.err != nil {
		return nil
	}
	return out
}

// ProcsInto reads a count-prefixed list of processor identities, appending
// into dst and returning the extended slice — the allocation-free variant of
// Procs for decode hot paths that own a reusable scratch (append only
// allocates when dst's capacity is exceeded). On a decoding error the
// reader's sticky error is set and dst is returned unchanged.
func (r *Reader) ProcsInto(dst []ident.ProcID) []ident.ProcID {
	n := r.Len()
	if r.err != nil {
		return dst
	}
	out := dst
	for i := 0; i < n; i++ {
		out = append(out, r.Proc())
	}
	if r.err != nil {
		return dst
	}
	return out
}

// Value reads an agreement value.
func (r *Reader) Value() ident.Value { return ident.Value(r.Int()) }

func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
