package runner

import (
	"context"
	"errors"
	"sync"
)

// ErrStreamClosed indicates a Submit after Close.
var ErrStreamClosed = errors.New("runner: stream closed")

// Stream is the open-ended counterpart of Map: jobs are submitted over time
// rather than as a fixed index range, execute with the pool's concurrency
// bound, and their results are delivered strictly in submission order. A
// long-running orchestrator (the agreement serving layer) therefore observes
// exactly the outcomes of the serial loop regardless of how the scheduler
// interleaves the jobs — the same determinism contract Map gives sweeps.
//
// Submit blocks while all worker slots are busy, which propagates the
// executor's capacity upstream (the caller's own admission queue fills and
// starts rejecting) instead of letting an unbounded number of goroutines
// pile up.
type Stream[T any] struct {
	deliver func(seq uint64, v T, err error)
	slots   chan struct{}

	mu      sync.Mutex
	nextSub uint64 // next sequence number to assign
	nextDel uint64 // next sequence number to deliver
	pending map[uint64]streamResult[T]
	wg      sync.WaitGroup
	closed  bool
}

type streamResult[T any] struct {
	v   T
	err error
}

// NewStream builds a stream executor on p's concurrency bound. deliver is
// invoked exactly once per submitted job, in submission order, from whichever
// worker goroutine completes the next deliverable sequence; invocations never
// overlap, so deliver needs no internal locking, but it must not call back
// into Submit or Close.
func NewStream[T any](p *Pool, deliver func(seq uint64, v T, err error)) *Stream[T] {
	return &Stream[T]{
		deliver: deliver,
		slots:   make(chan struct{}, p.workers),
		pending: make(map[uint64]streamResult[T]),
	}
}

// Submit schedules fn and returns its sequence number. It blocks until a
// worker slot is free (backpressure) or ctx is done; a job observes the ctx
// passed to its own Submit call.
func (s *Stream[T]) Submit(ctx context.Context, fn func(ctx context.Context) (T, error)) (uint64, error) {
	select {
	case s.slots <- struct{}{}:
	case <-ctx.Done():
		return 0, ctx.Err()
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.slots
		return 0, ErrStreamClosed
	}
	seq := s.nextSub
	s.nextSub++
	s.wg.Add(1)
	s.mu.Unlock()

	go func() {
		defer s.wg.Done()
		v, err := fn(ctx)
		<-s.slots
		s.complete(seq, v, err)
	}()
	return seq, nil
}

// complete records a finished job and flushes every consecutive result that
// is now deliverable, preserving submission order.
func (s *Stream[T]) complete(seq uint64, v T, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pending[seq] = streamResult[T]{v: v, err: err}
	for {
		r, ok := s.pending[s.nextDel]
		if !ok {
			return
		}
		delete(s.pending, s.nextDel)
		s.deliver(s.nextDel, r.v, r.err)
		s.nextDel++
	}
}

// Close stops accepting new jobs and blocks until every submitted job has
// executed and been delivered. It is idempotent.
func (s *Stream[T]) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.wg.Wait()
}

// InFlight reports how many submitted jobs have not yet been delivered.
func (s *Stream[T]) InFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int(s.nextSub - s.nextDel)
}
