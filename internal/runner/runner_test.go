package runner_test

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"byzex/internal/runner"
)

// TestMapOrdering: results come back indexed by submission order at every
// parallelism level, identical to the serial loop.
func TestMapOrdering(t *testing.T) {
	ctx := context.Background()
	want := make([]int, 100)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{1, 2, 4, 8, 33} {
		got, err := runner.Map(ctx, runner.New(workers), len(want), func(ctx context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

// TestMapLowestIndexError: when several jobs fail, the reported error is the
// one with the lowest index — the same error the serial loop would hit first.
func TestMapLowestIndexError(t *testing.T) {
	ctx := context.Background()
	for _, workers := range []int{1, 4} {
		_, err := runner.Map(ctx, runner.New(workers), 16, func(ctx context.Context, i int) (int, error) {
			if i >= 3 {
				return 0, fmt.Errorf("job %d failed", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "job 3 failed" {
			t.Fatalf("workers=%d: got %v, want job 3's error", workers, err)
		}
	}
}

// TestMapErrorStopsScheduling: after a failure no new indices start (modulo
// the jobs already in flight).
func TestMapErrorStopsScheduling(t *testing.T) {
	const n = 1000
	var started atomic.Int64
	boom := errors.New("boom")
	_, err := runner.Map(context.Background(), runner.New(2), n, func(ctx context.Context, i int) (int, error) {
		started.Add(1)
		if i == 0 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	if s := started.Load(); s == n {
		t.Fatalf("all %d jobs started despite early failure", n)
	}
}

// TestMapCancellation: cancelling the context mid-sweep returns promptly with
// ctx.Err() instead of draining the remaining jobs.
func TestMapCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	var ran atomic.Int64
	done := make(chan error, 1)
	go func() {
		_, err := runner.Map(ctx, runner.New(4), 1000, func(ctx context.Context, i int) (int, error) {
			ran.Add(1)
			select {
			case <-release:
			case <-ctx.Done():
			}
			return i, nil
		})
		done <- err
	}()
	// Let a few jobs start, then cancel while the rest are still queued.
	for ran.Load() < 4 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Map did not return promptly after cancellation")
	}
	if r := ran.Load(); r >= 1000 {
		t.Fatalf("sweep ran to completion (%d jobs) despite cancellation", r)
	}
	close(release)
}

// TestMapBoundsConcurrency: no more than Workers() jobs are ever in flight.
func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	_, err := runner.Map(context.Background(), runner.New(workers), 64, func(ctx context.Context, i int) (int, error) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent jobs, pool bound is %d", p, workers)
	}
}

// TestNewDefaults: values below one select GOMAXPROCS.
func TestNewDefaults(t *testing.T) {
	if w := runner.New(0).Workers(); w < 1 {
		t.Fatalf("New(0).Workers() = %d", w)
	}
	if w := runner.New(-5).Workers(); w < 1 {
		t.Fatalf("New(-5).Workers() = %d", w)
	}
	if w := runner.New(7).Workers(); w != 7 {
		t.Fatalf("New(7).Workers() = %d, want 7", w)
	}
}

// TestRun: the heterogeneous-job wrapper shares Map's semantics.
func TestRun(t *testing.T) {
	var a, b int
	err := runner.Run(context.Background(), runner.New(2),
		func(ctx context.Context) error { a = 1; return nil },
		func(ctx context.Context) error { b = 2; return nil },
	)
	if err != nil || a != 1 || b != 2 {
		t.Fatalf("err=%v a=%d b=%d", err, a, b)
	}
	boom := errors.New("boom")
	err = runner.Run(context.Background(), runner.New(2),
		func(ctx context.Context) error { return nil },
		func(ctx context.Context) error { return boom },
	)
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	if err := runner.Run(context.Background(), runner.New(2)); err != nil {
		t.Fatalf("empty Run: %v", err)
	}
}
