package runner

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestStreamDeliversInSubmissionOrder submits jobs that finish in a
// scrambled order and asserts delivery happens strictly by sequence.
func TestStreamDeliversInSubmissionOrder(t *testing.T) {
	const jobs = 100
	var (
		mu     sync.Mutex
		seqs   []uint64
		values []int
	)
	s := NewStream(New(8), func(seq uint64, v int, err error) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			t.Errorf("job %d: %v", seq, err)
		}
		seqs = append(seqs, seq)
		values = append(values, v)
	})
	rng := rand.New(rand.NewSource(42))
	ctx := context.Background()
	for i := 0; i < jobs; i++ {
		delay := time.Duration(rng.Intn(3)) * time.Millisecond
		i := i
		seq, err := s.Submit(ctx, func(context.Context) (int, error) {
			time.Sleep(delay)
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i) {
			t.Fatalf("submit %d got seq %d", i, seq)
		}
	}
	s.Close()
	if len(seqs) != jobs {
		t.Fatalf("delivered %d of %d", len(seqs), jobs)
	}
	for i, seq := range seqs {
		if seq != uint64(i) {
			t.Fatalf("delivery %d carried seq %d", i, seq)
		}
		if values[i] != i*i {
			t.Fatalf("delivery %d carried value %d", i, values[i])
		}
	}
	if s.InFlight() != 0 {
		t.Fatalf("in-flight after close: %d", s.InFlight())
	}
}

// TestStreamErrorsAreDeliveredInOrder checks job errors flow through deliver
// without disturbing ordering.
func TestStreamErrorsAreDeliveredInOrder(t *testing.T) {
	boom := errors.New("boom")
	var (
		mu   sync.Mutex
		errs []error
	)
	s := NewStream(New(4), func(seq uint64, _ struct{}, err error) {
		mu.Lock()
		defer mu.Unlock()
		errs = append(errs, err)
	})
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		i := i
		if _, err := s.Submit(ctx, func(context.Context) (struct{}, error) {
			if i%3 == 0 {
				return struct{}{}, boom
			}
			return struct{}{}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	for i, err := range errs {
		want := i%3 == 0
		if got := errors.Is(err, boom); got != want {
			t.Fatalf("job %d: err=%v", i, err)
		}
	}
}

// TestStreamSubmitAfterCloseRejected pins the typed error.
func TestStreamSubmitAfterCloseRejected(t *testing.T) {
	s := NewStream(New(1), func(uint64, int, error) {})
	s.Close()
	if _, err := s.Submit(context.Background(), func(context.Context) (int, error) { return 0, nil }); !errors.Is(err, ErrStreamClosed) {
		t.Fatalf("got %v, want ErrStreamClosed", err)
	}
}

// TestStreamSubmitBackpressure verifies Submit blocks when all slots are
// busy and unblocks via context cancellation.
func TestStreamSubmitBackpressure(t *testing.T) {
	s := NewStream(New(1), func(uint64, int, error) {})
	release := make(chan struct{})
	ctx := context.Background()
	if _, err := s.Submit(ctx, func(context.Context) (int, error) {
		<-release
		return 0, nil
	}); err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	if _, err := s.Submit(cctx, func(context.Context) (int, error) { return 0, nil }); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want deadline exceeded while slots are busy", err)
	}
	close(release)
	s.Close()
}
