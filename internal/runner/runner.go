// Package runner provides a bounded worker pool for executing independent
// simulation runs in parallel. The paper's evaluation is a grid of
// independent worst-case executions (protocol × adversary × parameters ×
// seed); every cell is deterministic on its own, so the only requirements on
// the executor are that concurrency is bounded, cancellation propagates
// promptly, and results come back in submission order so that parallel and
// serial sweeps produce byte-identical tables.
package runner

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool bounds how many jobs execute concurrently. The zero value is not
// usable; construct pools with New. A Pool carries no per-run state and may
// be shared by any number of Map/Run calls.
type Pool struct {
	workers int
}

// New returns a pool that runs at most `workers` jobs at once. Values below
// one select runtime.GOMAXPROCS(0): the runs are CPU-bound, so there is
// nothing to gain from oversubscribing the scheduler.
func New(workers int) *Pool {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// Map executes fn(ctx, i) for every i in [0, n) on the pool and returns the
// results ordered by index — the caller observes exactly the output of the
// serial loop regardless of scheduling. If any invocation fails, the error
// with the lowest index is returned and no further indices are started
// (already-started jobs run to completion). Cancelling ctx stops scheduling
// immediately and is also surfaced if no job error takes precedence.
func Map[T any](ctx context.Context, p *Pool, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, ctx.Err()
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		// Serial fast path: identical semantics, no goroutines.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			v, err := fn(ctx, i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	errs := make([]error, n)
	var failed atomic.Bool
	indices := make(chan int)
	var wg sync.WaitGroup
	go func() {
		defer close(indices)
		for i := 0; i < n; i++ {
			if failed.Load() {
				return
			}
			select {
			case indices <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range indices {
				v, err := fn(ctx, i)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					continue
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Run executes heterogeneous independent jobs on the pool and returns the
// lowest-index error, mirroring Map's semantics for sweeps whose steps do
// not share a result type.
func Run(ctx context.Context, p *Pool, jobs ...func(ctx context.Context) error) error {
	_, err := Map(ctx, p, len(jobs), func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, jobs[i](ctx)
	})
	return err
}
