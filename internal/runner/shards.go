// Shards is the identified-worker counterpart of Stream: a fixed pool of
// workers with stable shard ids, so callers can pin per-worker state (a
// substrate handle, a reusable trace buffer) to the worker rather than the
// job, while keeping Stream's in-order delivery contract.

package runner

import (
	"errors"
	"sync"
)

// ErrShardsClosed indicates a Submit after Close.
var ErrShardsClosed = errors.New("runner: shards closed")

// Shards executes jobs on a fixed set of identified workers. Each worker is
// a dedicated goroutine with a stable shard id in [0, Workers()); exec runs
// on exactly one worker at a time per shard, so per-shard state passed to
// exec needs no locking. Results are delivered strictly in submission order
// through the same reorder buffer Stream uses: the caller observes exactly
// the outcomes of the serial loop no matter which shard ran which job or in
// what order they finished.
//
// Submit blocks once every worker is busy and the one-slot handoff channel
// is full — the pool's capacity propagates upstream as backpressure, exactly
// like Stream.Submit. Submit is
// intended for a single producer goroutine (the serving layer's admission
// sequencer); concurrent producers would race for submission order, which is
// the thing Shards exists to pin down. Close must not race a blocked Submit.
type Shards[J, R any] struct {
	exec    func(shard int, j J) R
	deliver func(seq uint64, r R)
	jobs    chan shardJob[J]
	workers int
	wg      sync.WaitGroup

	mu      sync.Mutex
	nextSub uint64
	nextDel uint64
	pending map[uint64]R
	closed  bool
}

type shardJob[J any] struct {
	seq uint64
	j   J
}

// NewShards starts `workers` dedicated worker goroutines (values below one
// select one worker). exec runs a job on the worker whose shard id it is
// handed; deliver is invoked exactly once per job, in submission order, from
// whichever worker completes the next deliverable sequence. Invocations of
// deliver never overlap, so it needs no internal locking, but it must not
// call back into Submit or Close.
func NewShards[J, R any](workers int, exec func(shard int, j J) R, deliver func(seq uint64, r R)) *Shards[J, R] {
	if workers < 1 {
		workers = 1
	}
	s := &Shards[J, R]{
		exec:    exec,
		deliver: deliver,
		jobs:    make(chan shardJob[J], 1),
		workers: workers,
		pending: make(map[uint64]R),
	}
	s.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go s.worker(w)
	}
	return s
}

// Workers returns the number of shard workers.
func (s *Shards[J, R]) Workers() int { return s.workers }

// Submit hands j to the next free worker and returns its sequence number.
// One job may park in the handoff channel while every worker is busy; beyond
// that Submit blocks (backpressure). After Close it returns ErrShardsClosed
// without running the job.
func (s *Shards[J, R]) Submit(j J) (uint64, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, ErrShardsClosed
	}
	seq := s.nextSub
	s.nextSub++
	s.mu.Unlock()
	s.jobs <- shardJob[J]{seq: seq, j: j}
	return seq, nil
}

// Close stops accepting jobs and blocks until every submitted job has
// executed and been delivered. It is idempotent, but must not be called
// while a Submit is in flight (single-producer contract).
func (s *Shards[J, R]) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.jobs)
	s.wg.Wait()
}

// InFlight reports how many submitted jobs have not yet been delivered.
func (s *Shards[J, R]) InFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int(s.nextSub - s.nextDel)
}

// worker is the loop of one shard: take a job, run it with this shard's id,
// flush the reorder buffer.
func (s *Shards[J, R]) worker(shard int) {
	defer s.wg.Done()
	for job := range s.jobs {
		r := s.exec(shard, job.j)
		s.complete(job.seq, r)
	}
}

// complete parks a finished job and delivers every consecutive result that
// is now deliverable, preserving submission order.
func (s *Shards[J, R]) complete(seq uint64, r R) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pending[seq] = r
	for {
		v, ok := s.pending[s.nextDel]
		if !ok {
			return
		}
		delete(s.pending, s.nextDel)
		s.deliver(s.nextDel, v)
		s.nextDel++
	}
}
