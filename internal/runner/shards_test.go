package runner_test

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"byzex/internal/runner"
)

// TestShardsDeliversInSubmissionOrder scrambles completion order with random
// per-job sleeps and checks delivery still follows submission order, with
// every job delivered exactly once.
func TestShardsDeliversInSubmissionOrder(t *testing.T) {
	const jobs = 200
	rng := rand.New(rand.NewSource(42))
	delays := make([]time.Duration, jobs)
	for i := range delays {
		delays[i] = time.Duration(rng.Intn(300)) * time.Microsecond
	}
	var (
		mu        sync.Mutex
		delivered []int
	)
	s := runner.NewShards(4,
		func(_ int, j int) int {
			time.Sleep(delays[j])
			return j * 10
		},
		func(seq uint64, r int) {
			mu.Lock()
			delivered = append(delivered, r)
			mu.Unlock()
			if int(seq)*10 != r {
				t.Errorf("seq %d delivered %d", seq, r)
			}
		})
	for i := 0; i < jobs; i++ {
		seq, err := s.Submit(i)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i) {
			t.Fatalf("submission %d got seq %d", i, seq)
		}
	}
	s.Close()
	if len(delivered) != jobs {
		t.Fatalf("delivered %d of %d", len(delivered), jobs)
	}
	for i, r := range delivered {
		if r != i*10 {
			t.Fatalf("position %d delivered %d, want %d", i, r, i*10)
		}
	}
}

// TestShardsIdentity checks the per-shard execution contract: shard ids stay
// in range, and jobs on the same shard never overlap (per-shard state needs
// no locking).
func TestShardsIdentity(t *testing.T) {
	const workers, jobs = 3, 60
	var (
		mu      sync.Mutex
		running [workers]bool
		counts  [workers]int
	)
	s := runner.NewShards(workers,
		func(shard int, j int) struct{} {
			if shard < 0 || shard >= workers {
				t.Errorf("shard id %d out of range", shard)
				return struct{}{}
			}
			mu.Lock()
			if running[shard] {
				t.Errorf("shard %d ran two jobs at once", shard)
			}
			running[shard] = true
			counts[shard]++
			mu.Unlock()
			time.Sleep(100 * time.Microsecond)
			mu.Lock()
			running[shard] = false
			mu.Unlock()
			return struct{}{}
		},
		func(uint64, struct{}) {})
	for i := 0; i < jobs; i++ {
		if _, err := s.Submit(i); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != jobs {
		t.Fatalf("shards ran %d jobs, want %d", total, jobs)
	}
}

// TestShardsBackpressure: with every worker blocked, Submit must block
// rather than buffer unboundedly, and unblock once a worker frees up.
func TestShardsBackpressure(t *testing.T) {
	release := make(chan struct{})
	s := runner.NewShards(2,
		func(int, int) int { <-release; return 0 },
		func(uint64, int) {})
	// Two jobs occupy both workers; a third Submit parks in the handoff
	// channel. The fourth must block.
	for i := 0; i < 3; i++ {
		if _, err := s.Submit(i); err != nil {
			t.Fatal(err)
		}
	}
	blocked := make(chan struct{})
	go func() {
		if _, err := s.Submit(3); err != nil {
			t.Error(err)
		}
		close(blocked)
	}()
	select {
	case <-blocked:
		t.Fatal("Submit did not block with all workers busy")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	select {
	case <-blocked:
	case <-time.After(5 * time.Second):
		t.Fatal("Submit never unblocked")
	}
	s.Close()
	if got := s.InFlight(); got != 0 {
		t.Fatalf("in flight after close: %d", got)
	}
}

// TestShardsSubmitAfterClose pins the typed rejection.
func TestShardsSubmitAfterClose(t *testing.T) {
	s := runner.NewShards(1, func(int, int) int { return 0 }, func(uint64, int) {})
	s.Close()
	if _, err := s.Submit(1); err != runner.ErrShardsClosed {
		t.Fatalf("got %v, want ErrShardsClosed", err)
	}
	s.Close() // idempotent
}
