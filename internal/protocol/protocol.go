// Package protocol defines the interface every Byzantine Agreement
// algorithm in this module implements, plus small helpers shared by the
// protocol implementations (signature-aware send, broadcast).
//
// A Protocol is a factory for per-processor state machines (sim.Node). The
// same factories drive the in-memory engine, the TCP transport, the
// adversary wrappers, and the history/replay machinery.
package protocol

import (
	"errors"
	"fmt"

	"byzex/internal/ident"
	"byzex/internal/sig"
	"byzex/internal/sim"
)

// ErrBadParams indicates n/t (or protocol-specific parameters) are outside
// the protocol's domain.
var ErrBadParams = errors.New("protocol: invalid parameters")

// NodeConfig carries everything a processor needs at construction time:
// its identity, the system parameters, its private signer, and the public
// verifier. Value is the initial value and is meaningful only for the
// transmitter (phase 0 of the paper's model: the single inedge labeled v).
type NodeConfig struct {
	ID          ident.ProcID
	N           int
	T           int
	Transmitter ident.ProcID
	Value       ident.Value
	Signer      sig.Signer
	Verifier    sig.Verifier
}

// Validate checks structural consistency of the configuration.
func (c NodeConfig) Validate() error {
	switch {
	case c.N < 1:
		return fmt.Errorf("%w: n=%d", ErrBadParams, c.N)
	case c.T < 0:
		return fmt.Errorf("%w: t=%d", ErrBadParams, c.T)
	case int(c.ID) < 0 || int(c.ID) >= c.N:
		return fmt.Errorf("%w: id %v out of range", ErrBadParams, c.ID)
	case int(c.Transmitter) < 0 || int(c.Transmitter) >= c.N:
		return fmt.Errorf("%w: transmitter %v out of range", ErrBadParams, c.Transmitter)
	case c.Signer == nil:
		return fmt.Errorf("%w: nil signer", ErrBadParams)
	case c.Verifier == nil:
		return fmt.Errorf("%w: nil verifier", ErrBadParams)
	case c.Signer.ID() != c.ID:
		return fmt.Errorf("%w: signer for %v given to %v", ErrBadParams, c.Signer.ID(), c.ID)
	}
	return nil
}

// IsTransmitter reports whether this configuration belongs to the
// transmitter.
func (c NodeConfig) IsTransmitter() bool { return c.ID == c.Transmitter }

// RequireBinaryValue rejects transmitter inputs outside {0, 1}. The paper's
// Algorithms 1-5 are stated for the binary domain ("the values the
// transmitter may send are 0 or 1"); protocols built on correct 1-messages
// must refuse other inputs instead of silently misdeciding. Multi-valued
// variants (alg1.MultiProtocol, dolevstrong, lsp, phaseking, ic) accept any
// value.
func (c NodeConfig) RequireBinaryValue() error {
	if c.IsTransmitter() && c.Value != 0 && c.Value != 1 {
		return fmt.Errorf("%w: binary protocol cannot carry value %v (use the multi-valued variants)", ErrBadParams, c.Value)
	}
	return nil
}

// Protocol is a Byzantine Agreement algorithm: a factory for processor
// state machines plus its phase schedule.
type Protocol interface {
	// Name identifies the protocol in reports ("alg1", "dolev-strong", ...).
	Name() string
	// Check validates that the protocol supports the given n and t.
	Check(n, t int) error
	// Phases returns the last phase during which the protocol sends
	// messages, for the given parameters.
	Phases(n, t int) int
	// NewNode builds the state machine for one processor.
	NewNode(cfg NodeConfig) (sim.Node, error)
}

// Send transmits payload to a single recipient, deriving the envelope's
// signature accounting from the chains embedded in the payload. Protocols
// must pass every chain the payload carries so Theorem 1 accounting and the
// A(p) sets remain exact.
func Send(ctx *sim.Context, to ident.ProcID, payload []byte, chains ...sig.Chain) error {
	signers, total := summarize(chains)
	return ctx.Send(to, payload, signers, total)
}

// Broadcast sends payload to every processor except the sender.
func Broadcast(ctx *sim.Context, payload []byte, chains ...sig.Chain) error {
	signers, total := summarize(chains)
	for id := 0; id < ctx.N(); id++ {
		pid := ident.ProcID(id)
		if pid == ctx.ID() {
			continue
		}
		if err := ctx.Send(pid, payload, signers, total); err != nil {
			return err
		}
	}
	return nil
}

// SendToAll sends payload to each listed recipient (skipping the sender if
// present).
func SendToAll(ctx *sim.Context, to []ident.ProcID, payload []byte, chains ...sig.Chain) error {
	signers, total := summarize(chains)
	for _, pid := range to {
		if pid == ctx.ID() {
			continue
		}
		if err := ctx.Send(pid, payload, signers, total); err != nil {
			return err
		}
	}
	return nil
}

func summarize(chains []sig.Chain) ([]ident.ProcID, int) {
	total := 0
	set := make(ident.Set)
	for _, c := range chains {
		total += len(c)
		for _, l := range c {
			set.Add(l.Signer)
		}
	}
	return set.Sorted(), total
}
