package protocol_test

import (
	"testing"

	"byzex/internal/ident"
	"byzex/internal/protocol"
	"byzex/internal/sig"
	"byzex/internal/sim"
)

func validCfg(t *testing.T) protocol.NodeConfig {
	t.Helper()
	scheme := sig.NewHMAC(4, 1)
	signer, err := scheme.Signer(1)
	if err != nil {
		t.Fatal(err)
	}
	return protocol.NodeConfig{
		ID: 1, N: 4, T: 1, Transmitter: 0, Value: ident.V1,
		Signer: signer, Verifier: scheme,
	}
}

func TestNodeConfigValidate(t *testing.T) {
	good := validCfg(t)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	mutations := []func(*protocol.NodeConfig){
		func(c *protocol.NodeConfig) { c.N = 0 },
		func(c *protocol.NodeConfig) { c.T = -1 },
		func(c *protocol.NodeConfig) { c.ID = 9 },
		func(c *protocol.NodeConfig) { c.Transmitter = 9 },
		func(c *protocol.NodeConfig) { c.Signer = nil },
		func(c *protocol.NodeConfig) { c.Verifier = nil },
	}
	for i, mut := range mutations {
		c := validCfg(t)
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	// Signer for the wrong identity.
	c := validCfg(t)
	scheme := sig.NewHMAC(4, 1)
	wrong, _ := scheme.Signer(2)
	c.Signer = wrong
	if err := c.Validate(); err == nil {
		t.Error("mismatched signer accepted")
	}
}

func TestIsTransmitter(t *testing.T) {
	c := validCfg(t)
	if c.IsTransmitter() {
		t.Fatal("non-transmitter misreported")
	}
	c.ID = 0
	if !c.IsTransmitter() {
		t.Fatal("transmitter misreported")
	}
}

func TestSendHelpersAccounting(t *testing.T) {
	scheme := sig.NewHMAC(4, 1)
	s0, _ := scheme.Signer(0)
	s1, _ := scheme.Signer(1)
	body := sig.ValueBody(ident.V1)
	chain := sig.Append(s1, body, sig.Append(s0, body, nil))

	var sent []sim.Envelope
	ctx := sim.NewContext(0, 4, 1, 0, 1, 3, func(e sim.Envelope) { sent = append(sent, e) })

	if err := protocol.Send(ctx, 2, []byte("x"), chain); err != nil {
		t.Fatal(err)
	}
	if len(sent) != 1 {
		t.Fatalf("sent %d", len(sent))
	}
	if sent[0].SigTotal != 2 || len(sent[0].Signers) != 2 {
		t.Fatalf("accounting %d/%d", sent[0].SigTotal, len(sent[0].Signers))
	}

	sent = nil
	if err := protocol.Broadcast(ctx, []byte("y"), chain, chain); err != nil {
		t.Fatal(err)
	}
	if len(sent) != 3 { // everyone but self
		t.Fatalf("broadcast sent %d", len(sent))
	}
	// Two copies of the chain: 4 links total, 2 distinct signers.
	if sent[0].SigTotal != 4 || len(sent[0].Signers) != 2 {
		t.Fatalf("multi-chain accounting %d/%d", sent[0].SigTotal, len(sent[0].Signers))
	}

	sent = nil
	if err := protocol.SendToAll(ctx, []ident.ProcID{0, 1, 3}, []byte("z")); err != nil {
		t.Fatal(err)
	}
	if len(sent) != 2 { // self (0) skipped
		t.Fatalf("sendToAll sent %d", len(sent))
	}
	if sent[0].SigTotal != 0 || len(sent[0].Signers) != 0 {
		t.Fatal("chainless accounting wrong")
	}
}
