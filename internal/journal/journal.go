// Package journal is the durability layer under the serving stack: a
// segmented, CRC-framed write-ahead log of admissions plus checkpoint
// records, and the recovery path that turns a journal directory back into a
// running service after a crash.
//
// The write path implements service.Journal: the service's sequencer calls
// Admit before an instance is handed to a shard, so every instance that ever
// executes has a durable record first (write-ahead, not write-behind), and
// Checkpoint once during drain, marking every earlier admission delivered.
// Because the service derives each instance entirely from (template, id,
// values) — seed = template seed + id, packed value = PackValues(values) —
// an admission record is the complete recipe for re-executing its instance
// byte-identically; the journal never needs to store outcomes.
//
// On disk a journal is a directory of numbered segment files. Each segment
// opens with an 8-byte magic and holds length-prefixed records framed with a
// CRC-32C: a torn tail (the crash case) is detected by checksum and cut at
// the last whole record; corruption anywhere *before* the tail is refused
// loudly (ErrCorrupt) instead of silently replaying a damaged history. Every
// boot starts a fresh segment, so only the final segment of a generation can
// ever be torn. A checkpoint makes every older segment garbage — recovery
// needs only admissions at or above the checkpoint watermark, and those are
// always in the checkpoint's own segment or later — so Checkpoint prunes
// them, bounding directory growth by one generation of traffic.
//
// Durability is a knob, not a policy: Fsync 0 syncs every record before
// Admit returns (an admitted value survives any crash), a positive Fsync
// groups commits on that interval (bounded loss window, an order of
// magnitude more admissions per second — BENCH_007 quantifies the gap).
// Checkpoints always sync regardless of the knob.
package journal

import (
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"
	"time"

	"byzex/internal/core"
	"byzex/internal/service"
	"byzex/internal/wire"
)

// Typed failures callers program against.
var (
	// ErrCorrupt reports a journal whose non-tail contents fail validation
	// (bad magic, bad CRC before the last record, unknown record kind, a gap
	// in the admission id sequence). Recovery refuses to guess.
	ErrCorrupt = errors.New("journal: corrupt journal")
	// ErrClosed rejects writes through a closed Writer.
	ErrClosed = errors.New("journal: writer closed")
	// ErrMismatch reports a replay attempted under a different template or
	// fault plan than the journal was written with — re-executing would not
	// reproduce the original instances, so recovery stops.
	ErrMismatch = errors.New("journal: journal does not match the serving configuration")
)

// segMagic opens every segment file: "BXJL" plus a format version. Bump the
// version byte on any incompatible record-layout change.
var segMagic = [8]byte{'B', 'X', 'J', 'L', 0, 0, 0, 1}

const (
	// DefaultSegmentBytes rotates segments at 4 MiB.
	DefaultSegmentBytes = 4 << 20
	// minSegmentBytes keeps rotation sane under test-sized configs.
	minSegmentBytes = 512
)

// Options parameterizes Open.
type Options struct {
	// Template is the per-instance run template the owning service uses.
	// The journal stores only its fingerprint (TemplateHash) and the fault
	// plan's digest; both are re-verified before any replay.
	Template core.Config
	// Fsync is the group-commit interval: 0 syncs every record before Admit
	// returns; a positive duration batches syncs on that cadence, trading a
	// bounded loss window for throughput. Checkpoints always sync.
	Fsync time.Duration
	// SegmentBytes rotates to a new segment once the current one reaches
	// this size (default DefaultSegmentBytes, minimum 512).
	SegmentBytes int64
}

// ParseFsync parses the -fsync flag surface: "always" means sync every
// record (0), anything else must be a positive Go duration giving the
// group-commit interval.
func ParseFsync(s string) (time.Duration, error) {
	if s == "" || s == "always" {
		return 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("journal: bad fsync policy %q: %v", s, err)
	}
	if d <= 0 {
		return 0, fmt.Errorf("journal: fsync interval %v must be positive (or \"always\")", d)
	}
	return d, nil
}

// FsyncString renders a policy the way ParseFsync accepts it.
func FsyncString(d time.Duration) string {
	if d == 0 {
		return "always"
	}
	return d.String()
}

// Stats is a snapshot of the writer's counters, exported on /metrics by
// obs.JournalCollector.
type Stats struct {
	// Records / Checkpoints count appended records by kind; Bytes is the
	// total framed bytes written (headers included).
	Records     uint64
	Checkpoints uint64
	Bytes       uint64
	// Syncs counts fsync calls; under group commit, Records/Syncs is the
	// realized commit batch size.
	Syncs uint64
	// Segments is the live segment-file count; Pruned counts segment files
	// deleted by checkpoints over the writer's lifetime.
	Segments uint64
	Pruned   uint64
	// Replayed counts instances re-executed from this journal at the last
	// recovery (set once by the recovery path, then constant).
	Replayed uint64
}

// TemplateHash returns a stable 64-bit fingerprint of the run-template
// fields that determine instance execution: protocol identity, system size
// and fault bound, transmitter, base seed, and the concrete types of the
// signature scheme and adversary. Value is excluded (it is replaced per
// batch) and the fault plan is fingerprinted separately (faultnet's
// Plan.Digest), so a journal can distinguish "different template" from
// "different fault scenario" at recovery.
func TemplateHash(cfg core.Config) uint64 {
	h := fnv.New64a()
	name := ""
	if cfg.Protocol != nil {
		name = cfg.Protocol.Name()
	}
	fmt.Fprintf(h, "%s|%d|%d|%d|%d|%T|%T",
		name, cfg.N, cfg.T, cfg.Transmitter, cfg.Seed, cfg.Scheme, cfg.Adversary)
	return h.Sum64()
}

// Writer is the append side of a journal: it implements service.Journal, so
// wiring durability into a service is one assignment (Config.Journal).
// Admit and Checkpoint are called from the service's single sequencer /
// close path, but Writer serializes internally anyway so a flusher goroutine
// (group commit) can share the file safely.
type Writer struct {
	dir      string
	opts     Options
	tmplHash uint64
	digest   uint64

	mu      sync.Mutex
	f       *os.File
	seg     uint64 // current segment index
	segSize int64  // bytes written to the current segment
	pending []byte // buffered frames awaiting flush (group commit)
	enc     *wire.Writer
	stats   Stats
	err     error // sticky: first write/sync failure poisons the writer
	closed  bool

	flushStop chan struct{}
	flushDone chan struct{}
}

// Open scans dir (creating it if needed), recovers its state, and starts a
// fresh segment for this generation's appends. The returned Recovery holds
// the watermark, the checkpointed stats and the pending admissions the
// caller must replay (see Recovery.Replay) before serving live traffic; the
// returned Writer is ready to be handed to service.Config.Journal.
func Open(dir string, opts Options) (*Writer, *Recovery, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: %v", err)
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.SegmentBytes < minSegmentBytes {
		opts.SegmentBytes = minSegmentBytes
	}
	rec, err := scan(dir, true)
	if err != nil {
		return nil, nil, err
	}
	w := &Writer{
		dir:      dir,
		opts:     opts,
		tmplHash: TemplateHash(opts.Template),
		digest:   opts.Template.Faults.Digest(),
		enc:      wire.NewWriter(256),
	}
	w.stats.Segments = uint64(len(rec.segments))
	if err := w.rotate(rec.nextSegment()); err != nil {
		return nil, nil, err
	}
	if opts.Fsync > 0 {
		w.flushStop = make(chan struct{})
		w.flushDone = make(chan struct{})
		go w.flushLoop(opts.Fsync)
	}
	return w, rec, nil
}

// rotate closes the current segment (flushing and syncing it) and opens the
// segment numbered seg. Callers hold mu or own the writer exclusively.
func (w *Writer) rotate(seg uint64) error {
	if w.f != nil {
		if err := w.flushLocked(true); err != nil {
			return err
		}
		if err := w.f.Close(); err != nil {
			w.err = err
			return err
		}
	}
	name := filepath.Join(w.dir, segmentName(seg))
	f, err := os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		w.err = err
		return fmt.Errorf("journal: %v", err)
	}
	if _, err := f.Write(segMagic[:]); err != nil {
		w.err = err
		_ = f.Close()
		return fmt.Errorf("journal: %v", err)
	}
	w.f = f
	w.seg = seg
	w.segSize = int64(len(segMagic))
	w.stats.Segments++
	w.stats.Bytes += uint64(len(segMagic))
	return nil
}

// Admit journals one admission (service.Journal). Under Fsync 0 the record
// is on disk when Admit returns; under group commit it is buffered and the
// flusher syncs it within one interval. An error vetoes the instance — the
// service fails the batch instead of running work a crash would lose.
func (w *Writer) Admit(inst service.Instance) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if w.err != nil {
		return w.err
	}
	encodeAdmission(w.enc, Admission{
		ID:           inst.ID,
		TemplateHash: w.tmplHash,
		FaultDigest:  w.digest,
		Values:       inst.Values,
	})
	if err := w.append(w.enc.Bytes()); err != nil {
		return err
	}
	w.stats.Records++
	if w.opts.Fsync == 0 {
		return w.flushLocked(true)
	}
	return nil
}

// Checkpoint journals a drain marker (service.Journal), syncs it, and
// prunes every segment older than the current one — recovery only ever
// needs admissions at or above the watermark, and those live at or after
// the checkpoint record.
func (w *Writer) Checkpoint(watermark uint64, stats service.Stats) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if w.err != nil {
		return w.err
	}
	encodeCheckpoint(w.enc, Checkpoint{Watermark: watermark, Stats: stats})
	if err := w.append(w.enc.Bytes()); err != nil {
		return err
	}
	if err := w.flushLocked(true); err != nil {
		return err
	}
	w.stats.Checkpoints++
	w.pruneLocked()
	return nil
}

// append frames body into the pending buffer, rotating first if the current
// segment is full. Callers hold mu.
func (w *Writer) append(body []byte) error {
	need := int64(8 + len(body))
	if w.segSize+int64(len(w.pending))+need > w.opts.SegmentBytes && w.segSize > int64(len(segMagic)) {
		if err := w.rotate(w.seg + 1); err != nil {
			return err
		}
	}
	w.pending = appendRecord(w.pending, body)
	return nil
}

// flushLocked writes the pending buffer to the current segment and, when
// sync is set, fsyncs it. Callers hold mu.
func (w *Writer) flushLocked(sync bool) error {
	if w.err != nil {
		return w.err
	}
	if len(w.pending) > 0 {
		n, err := w.f.Write(w.pending)
		w.segSize += int64(n)
		w.stats.Bytes += uint64(n)
		if err != nil {
			w.err = err
			return err
		}
		w.pending = w.pending[:0]
	}
	if sync {
		if err := w.f.Sync(); err != nil {
			w.err = err
			return err
		}
		w.stats.Syncs++
	}
	return nil
}

// flushLoop is the group-commit flusher: one fsync per interval covering
// every record buffered since the last.
func (w *Writer) flushLoop(interval time.Duration) {
	defer close(w.flushDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-w.flushStop:
			return
		case <-t.C:
			w.mu.Lock()
			if !w.closed && len(w.pending) > 0 {
				_ = w.flushLocked(true) // sticky w.err surfaces on the next Admit/Close
			}
			w.mu.Unlock()
		}
	}
}

// pruneLocked deletes every segment file older than the current one.
// Callers hold mu; errors are ignored (a leftover segment is re-pruned at
// the next checkpoint and is harmless to recovery).
func (w *Writer) pruneLocked() {
	segs, err := listSegments(w.dir)
	if err != nil {
		return
	}
	for _, s := range segs {
		if s < w.seg {
			if os.Remove(filepath.Join(w.dir, segmentName(s))) == nil {
				w.stats.Pruned++
				if w.stats.Segments > 0 {
					w.stats.Segments--
				}
			}
		}
	}
}

// SetReplayed records the recovery replay count on the stats surface.
func (w *Writer) SetReplayed(n uint64) {
	w.mu.Lock()
	w.stats.Replayed = n
	w.mu.Unlock()
}

// Stats returns a snapshot of the writer's counters.
func (w *Writer) Stats() Stats {
	var s Stats
	w.StatsInto(&s)
	return s
}

// StatsInto snapshots the counters into out without allocating.
func (w *Writer) StatsInto(out *Stats) {
	w.mu.Lock()
	*out = w.stats
	w.mu.Unlock()
}

// Err returns the writer's sticky error, nil while healthy. The service
// swallows Checkpoint errors during drain (delivery must finish); callers
// check Err (or Close) to learn the journal's true final state.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Close flushes, syncs and closes the current segment. Safe to call twice.
// The returned error is the sticky write/sync error if any occurred over the
// writer's lifetime.
func (w *Writer) Close() error {
	w.mu.Lock()
	if w.closed {
		err := w.err
		w.mu.Unlock()
		return err
	}
	w.closed = true
	ferr := w.flushLocked(true)
	if w.f != nil {
		if cerr := w.f.Close(); cerr != nil && w.err == nil {
			w.err = cerr
		}
	}
	stop := w.flushStop
	w.mu.Unlock()
	if stop != nil {
		close(stop)
		<-w.flushDone
	}
	if ferr != nil {
		return ferr
	}
	return w.Err()
}
