// Package journal is the durability layer under the serving stack: a
// segmented, CRC-framed write-ahead log of admissions plus checkpoint
// records, and the recovery path that turns a journal directory back into a
// running service after a crash.
//
// The write path implements service.Journal and service.CompactingJournal:
// the service's sequencer calls Admit before an instance is handed to a
// shard, so every instance that ever executes has a durable record first
// (write-ahead, not write-behind); the delivery path calls MaybeCheckpoint,
// which writes a checkpoint at the delivered watermark when a record budget
// or timer says one is due (live compaction); and Checkpoint writes the
// final drain marker. Because the service derives each instance entirely
// from (template, id, values) — seed = template seed + id, packed value =
// PackValues(values) — an admission record is the complete recipe for
// re-executing its instance byte-identically; the journal never needs to
// store outcomes.
//
// On disk a journal is a directory of numbered segment files. Each segment
// opens with an 8-byte magic and holds length-prefixed records framed with a
// CRC-32C: a torn tail (the crash case) is detected by checksum and cut at
// the last whole record; corruption anywhere *before* the tail is refused
// loudly (ErrCorrupt) instead of silently replaying a damaged history. Every
// boot starts a fresh segment, so only the final segment of a generation can
// ever be torn. A checkpoint makes a segment garbage once its watermark
// clears every admission the segment holds; under live compaction an
// undelivered admission can live in a segment *older* than the checkpoint's
// own, so the writer keeps a per-segment max-admission-id ledger (segMax)
// and pruning deletes exactly the older segments whose max id is below the
// checkpointed watermark — bounding directory growth by the replay window
// (checkpoint budget + in-flight work) instead of a full generation of
// traffic.
//
// Durability is a knob, not a policy: Fsync 0 syncs every record before
// Admit returns (an admitted value survives any crash), a positive Fsync
// groups commits on that interval (bounded loss window, an order of
// magnitude more admissions per second — BENCH_007 quantifies the gap).
// Checkpoints always sync regardless of the knob.
package journal

import (
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"
	"time"

	"byzex/internal/core"
	"byzex/internal/service"
	"byzex/internal/wire"
)

// Typed failures callers program against.
var (
	// ErrCorrupt reports a journal whose non-tail contents fail validation
	// (bad magic, bad CRC before the last record, unknown record kind, a gap
	// in the admission id sequence). Recovery refuses to guess.
	ErrCorrupt = errors.New("journal: corrupt journal")
	// ErrClosed rejects writes through a closed Writer.
	ErrClosed = errors.New("journal: writer closed")
	// ErrMismatch reports a replay attempted under a different template or
	// fault plan than the journal was written with — re-executing would not
	// reproduce the original instances, so recovery stops.
	ErrMismatch = errors.New("journal: journal does not match the serving configuration")
)

// segMagic opens every segment file: "BXJL" plus a format version. Bump the
// version byte on any incompatible record-layout change.
var segMagic = [8]byte{'B', 'X', 'J', 'L', 0, 0, 0, 1}

const (
	// DefaultSegmentBytes rotates segments at 4 MiB.
	DefaultSegmentBytes = 4 << 20
	// minSegmentBytes keeps rotation sane under test-sized configs.
	minSegmentBytes = 512
)

// Options parameterizes Open.
type Options struct {
	// Template is the per-instance run template the owning service uses.
	// The journal stores only its fingerprint (TemplateHash) and the fault
	// plan's digest; both are re-verified before any replay.
	Template core.Config
	// Fsync is the group-commit interval: 0 syncs every record before Admit
	// returns; a positive duration batches syncs on that cadence, trading a
	// bounded loss window for throughput. Checkpoints always sync.
	Fsync time.Duration
	// SegmentBytes rotates to a new segment once the current one reaches
	// this size (default DefaultSegmentBytes, minimum 512).
	SegmentBytes int64
	// CheckpointEvery makes MaybeCheckpoint due once this many admissions
	// have been journaled since the last checkpoint (live compaction's
	// record budget). Zero disables the budget trigger.
	CheckpointEvery int
	// CheckpointInterval makes MaybeCheckpoint due once this much time has
	// passed since the last checkpoint (live compaction's timer). Zero
	// disables the timer trigger. Either trigger still requires the
	// delivered watermark to have advanced — a checkpoint that marks
	// nothing newly delivered would prune nothing.
	CheckpointInterval time.Duration
}

// ParseFsync parses the -fsync flag surface: "always" means sync every
// record (0), anything else must be a positive Go duration giving the
// group-commit interval.
func ParseFsync(s string) (time.Duration, error) {
	if s == "" || s == "always" {
		return 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("journal: bad fsync policy %q: %v", s, err)
	}
	if d <= 0 {
		return 0, fmt.Errorf("journal: fsync interval %v must be positive (or \"always\")", d)
	}
	return d, nil
}

// FsyncString renders a policy the way ParseFsync accepts it.
func FsyncString(d time.Duration) string {
	if d == 0 {
		return "always"
	}
	return d.String()
}

// Stats is a snapshot of the writer's counters, exported on /metrics by
// obs.JournalCollector.
type Stats struct {
	// Records / Checkpoints count appended records by kind; Bytes is the
	// total framed bytes written (headers included).
	Records     uint64
	Checkpoints uint64
	Bytes       uint64
	// Syncs counts fsync calls; under group commit, Records/Syncs is the
	// realized commit batch size.
	Syncs uint64
	// Segments is the live segment-file count; Pruned counts segment files
	// deleted by checkpoints over the writer's lifetime.
	Segments uint64
	Pruned   uint64
	// Replayed counts instances re-executed from this journal at the last
	// recovery (set once by the recovery path, then constant).
	Replayed uint64
	// CheckpointFailures counts checkpoint writes that returned an error —
	// including the drain checkpoint, whose error the service swallows to
	// finish delivery. A non-zero value means the last generation's final
	// state may not be marked delivered and a restart will replay from the
	// last good checkpoint.
	CheckpointFailures uint64
	// PruneFailures counts segment deletions (or prune scans) that failed;
	// failed prunes are retried on the group-commit flusher tick and at the
	// next checkpoint, so a transient failure strands a segment for at most
	// one flush interval, not a full checkpoint budget window.
	PruneFailures uint64
}

// TemplateHash returns a stable 64-bit fingerprint of the run-template
// fields that determine instance execution: protocol identity, system size
// and fault bound, transmitter, base seed, and the concrete types of the
// signature scheme and adversary. Value is excluded (it is replaced per
// batch) and the fault plan is fingerprinted separately (faultnet's
// Plan.Digest), so a journal can distinguish "different template" from
// "different fault scenario" at recovery.
func TemplateHash(cfg core.Config) uint64 {
	h := fnv.New64a()
	name := ""
	if cfg.Protocol != nil {
		name = cfg.Protocol.Name()
	}
	fmt.Fprintf(h, "%s|%d|%d|%d|%d|%T|%T",
		name, cfg.N, cfg.T, cfg.Transmitter, cfg.Seed, cfg.Scheme, cfg.Adversary)
	return h.Sum64()
}

// Writer implements both durability hooks: the mandatory write-ahead one and
// the optional live-compaction one the service discovers by type assertion.
var (
	_ service.Journal           = (*Writer)(nil)
	_ service.CompactingJournal = (*Writer)(nil)
)

// Writer is the append side of a journal: it implements service.Journal, so
// wiring durability into a service is one assignment (Config.Journal).
// Admit and Checkpoint are called from the service's single sequencer /
// close path and MaybeCheckpoint from its delivery goroutine, but Writer
// serializes internally anyway so a flusher goroutine (group commit) can
// share the file safely.
type Writer struct {
	dir      string
	opts     Options
	tmplHash uint64
	digest   uint64

	mu      sync.Mutex
	f       *os.File
	seg     uint64 // current segment index
	segSize int64  // bytes written to the current segment
	pending []byte // buffered frames awaiting flush (group commit)
	enc     *wire.Writer
	stats   Stats
	err     error // sticky: first write/sync failure poisons the writer
	closed  bool

	// Live-compaction state. segMax maps each segment to the highest
	// admission id journaled in it — the prune-safety ledger: a segment may
	// only be deleted once a checkpoint watermark clears every admission it
	// holds (see pruneLocked). sinceCkpt / lastCkptAt drive MaybeCheckpoint's
	// record budget and timer; ckptWatermark is the last checkpointed
	// watermark (pruning clears strictly below it). prunePending marks a
	// failed prune for retry on the flusher tick.
	segMax        map[uint64]uint64
	sinceCkpt     int
	lastCkptAt    time.Time
	ckptWatermark uint64
	prunePending  bool
	removeFile    func(string) error // os.Remove, swappable by tests

	flushStop chan struct{}
	flushDone chan struct{}
}

// Open scans dir (creating it if needed), recovers its state, and starts a
// fresh segment for this generation's appends. The returned Recovery holds
// the watermark, the checkpointed stats and the pending admissions the
// caller must replay (see Recovery.Replay) before serving live traffic; the
// returned Writer is ready to be handed to service.Config.Journal.
func Open(dir string, opts Options) (*Writer, *Recovery, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: %v", err)
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.SegmentBytes < minSegmentBytes {
		opts.SegmentBytes = minSegmentBytes
	}
	rec, err := scan(dir, true)
	if err != nil {
		return nil, nil, err
	}
	w := &Writer{
		dir:        dir,
		opts:       opts,
		tmplHash:   TemplateHash(opts.Template),
		digest:     opts.Template.Faults.Digest(),
		enc:        wire.NewWriter(256),
		segMax:     make(map[uint64]uint64, len(rec.segMax)+1),
		lastCkptAt: time.Now(),
		removeFile: os.Remove,
	}
	// Seed the prune-safety ledger with the prior generations' per-segment
	// max admission ids: a recovered-but-undelivered admission can live in a
	// segment older than any future checkpoint's own, and that segment must
	// survive compaction until the admission is delivered.
	for seg, id := range rec.segMax {
		w.segMax[seg] = id
	}
	if rec.Checkpoint != nil {
		w.ckptWatermark = rec.Checkpoint.Watermark
	}
	w.stats.Segments = uint64(len(rec.segments))
	if err := w.rotate(rec.nextSegment()); err != nil {
		return nil, nil, err
	}
	if opts.Fsync > 0 {
		w.flushStop = make(chan struct{})
		w.flushDone = make(chan struct{})
		go w.flushLoop(opts.Fsync)
	}
	return w, rec, nil
}

// rotate closes the current segment (flushing and syncing it) and opens the
// segment numbered seg. Callers hold mu or own the writer exclusively.
func (w *Writer) rotate(seg uint64) error {
	if w.f != nil {
		if err := w.flushLocked(true); err != nil {
			return err
		}
		if err := w.f.Close(); err != nil {
			w.err = err
			return err
		}
	}
	name := filepath.Join(w.dir, segmentName(seg))
	f, err := os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		w.err = err
		return fmt.Errorf("journal: %v", err)
	}
	if _, err := f.Write(segMagic[:]); err != nil {
		w.err = err
		_ = f.Close()
		return fmt.Errorf("journal: %v", err)
	}
	w.f = f
	w.seg = seg
	w.segSize = int64(len(segMagic))
	w.stats.Segments++
	w.stats.Bytes += uint64(len(segMagic))
	return nil
}

// Admit journals one admission (service.Journal). Under Fsync 0 the record
// is on disk when Admit returns; under group commit it is buffered and the
// flusher syncs it within one interval. An error vetoes the instance — the
// service fails the batch instead of running work a crash would lose.
func (w *Writer) Admit(inst service.Instance) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if w.err != nil {
		return w.err
	}
	encodeAdmission(w.enc, Admission{
		ID:           inst.ID,
		TemplateHash: w.tmplHash,
		FaultDigest:  w.digest,
		Values:       inst.Values,
	})
	if err := w.append(w.enc.Bytes()); err != nil {
		return err
	}
	// append rotates before buffering, so the record lands in w.seg: record
	// the segment's highest admission id for the prune-safety ledger.
	if cur, ok := w.segMax[w.seg]; !ok || inst.ID > cur {
		w.segMax[w.seg] = inst.ID
	}
	w.stats.Records++
	w.sinceCkpt++
	if w.opts.Fsync == 0 {
		return w.flushLocked(true)
	}
	return nil
}

// Checkpoint journals a checkpoint marker (service.Journal), syncs it, and
// prunes every older segment whose admissions the watermark clears. The
// service calls it unconditionally during drain; MaybeCheckpoint is the
// budgeted mid-run form. Failures are counted (Stats.CheckpointFailures) as
// well as returned, because the drain path swallows the error to finish
// delivery.
func (w *Writer) Checkpoint(watermark uint64, stats service.Stats) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.checkpointLocked(watermark, stats)
}

// MaybeCheckpoint writes a checkpoint at the delivered watermark when one is
// due — CheckpointEvery admissions journaled since the last checkpoint, or
// CheckpointInterval elapsed — and the watermark has advanced past the last
// checkpointed one (service.CompactingJournal). The service drives it from
// its delivery path, so the watermark is exactly the lowest undelivered
// admission id: a mid-run checkpoint never marks an in-flight admission
// delivered. It returns whether a checkpoint was attempted; a false return
// with nil error means nothing was due.
func (w *Writer) MaybeCheckpoint(watermark uint64, stats service.Stats) (bool, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.opts.CheckpointEvery <= 0 && w.opts.CheckpointInterval <= 0 {
		return false, nil
	}
	if watermark <= w.ckptWatermark {
		return false, nil // nothing newly delivered: the checkpoint would prune nothing
	}
	due := w.opts.CheckpointEvery > 0 && w.sinceCkpt >= w.opts.CheckpointEvery
	if !due && w.opts.CheckpointInterval > 0 && time.Since(w.lastCkptAt) >= w.opts.CheckpointInterval {
		due = true
	}
	if !due {
		return false, nil
	}
	return true, w.checkpointLocked(watermark, stats)
}

// checkpointLocked is the shared checkpoint body: append + sync the record,
// advance the compaction cursors, prune. Callers hold mu. Every failure is
// counted in Stats.CheckpointFailures, including writes refused because the
// writer is already closed or poisoned.
func (w *Writer) checkpointLocked(watermark uint64, stats service.Stats) error {
	if err := w.writeCheckpointLocked(watermark, stats); err != nil {
		w.stats.CheckpointFailures++
		return err
	}
	return nil
}

func (w *Writer) writeCheckpointLocked(watermark uint64, stats service.Stats) error {
	if w.closed {
		return ErrClosed
	}
	if w.err != nil {
		return w.err
	}
	encodeCheckpoint(w.enc, Checkpoint{Watermark: watermark, Stats: stats})
	if err := w.append(w.enc.Bytes()); err != nil {
		return err
	}
	if err := w.flushLocked(true); err != nil {
		return err
	}
	w.stats.Checkpoints++
	w.sinceCkpt = 0
	w.lastCkptAt = time.Now()
	if watermark > w.ckptWatermark {
		w.ckptWatermark = watermark
	}
	w.pruneLocked()
	return nil
}

// append frames body into the pending buffer, rotating first if the current
// segment is full. The fullness check counts buffered-but-unflushed bytes —
// they land in the current segment (rotate flushes them there first) — so a
// group-commit journal honors SegmentBytes instead of overshooting by a full
// flush interval's traffic; a single record larger than SegmentBytes still
// goes into an otherwise-empty segment rather than rotating forever. Callers
// hold mu.
func (w *Writer) append(body []byte) error {
	need := int64(8 + len(body))
	buffered := w.segSize + int64(len(w.pending))
	if buffered+need > w.opts.SegmentBytes && buffered > int64(len(segMagic)) {
		if err := w.rotate(w.seg + 1); err != nil {
			return err
		}
	}
	w.pending = appendRecord(w.pending, body)
	return nil
}

// flushLocked writes the pending buffer to the current segment and, when
// sync is set, fsyncs it. Callers hold mu.
func (w *Writer) flushLocked(sync bool) error {
	if w.err != nil {
		return w.err
	}
	if len(w.pending) > 0 {
		n, err := w.f.Write(w.pending)
		w.segSize += int64(n)
		w.stats.Bytes += uint64(n)
		if err != nil {
			w.err = err
			return err
		}
		w.pending = w.pending[:0]
	}
	if sync {
		if err := w.f.Sync(); err != nil {
			w.err = err
			return err
		}
		w.stats.Syncs++
	}
	return nil
}

// flushLoop is the group-commit flusher: one fsync per interval covering
// every record buffered since the last.
func (w *Writer) flushLoop(interval time.Duration) {
	defer close(w.flushDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-w.flushStop:
			return
		case <-t.C:
			w.mu.Lock()
			if !w.closed {
				if len(w.pending) > 0 {
					_ = w.flushLocked(true) // sticky w.err surfaces on the next Admit/Close
				}
				if w.prunePending {
					// Retry a failed prune here instead of waiting a full
					// checkpoint budget window for the next pruneLocked.
					w.pruneLocked()
				}
			}
			w.mu.Unlock()
		}
	}
}

// pruneLocked deletes every segment file older than the current one whose
// admissions are all cleared by the last checkpointed watermark: a segment
// survives while it holds any admission id >= ckptWatermark (segMax), because
// recovery still needs those records — under live compaction an undelivered
// admission can sit in a segment *older* than the checkpoint's own. Segments
// with no recorded admissions (checkpoint-only, or fully superseded) are
// always prunable; the current segment never is (it holds the newest
// checkpoint). Callers hold mu; failures are counted and retried on the
// group-commit flusher tick and at the next checkpoint.
func (w *Writer) pruneLocked() {
	w.prunePending = false
	segs, err := listSegments(w.dir)
	if err != nil {
		w.stats.PruneFailures++
		w.prunePending = true
		return
	}
	for _, s := range segs {
		if s >= w.seg {
			continue
		}
		if maxID, ok := w.segMax[s]; ok && maxID >= w.ckptWatermark {
			continue // still holds an admission recovery would need
		}
		if err := w.removeFile(filepath.Join(w.dir, segmentName(s))); err != nil {
			w.stats.PruneFailures++
			w.prunePending = true
			continue
		}
		delete(w.segMax, s)
		w.stats.Pruned++
		if w.stats.Segments > 0 {
			w.stats.Segments--
		}
	}
}

// SetReplayed records the recovery replay count on the stats surface.
func (w *Writer) SetReplayed(n uint64) {
	w.mu.Lock()
	w.stats.Replayed = n
	w.mu.Unlock()
}

// Stats returns a snapshot of the writer's counters.
func (w *Writer) Stats() Stats {
	var s Stats
	w.StatsInto(&s)
	return s
}

// StatsInto snapshots the counters into out without allocating.
func (w *Writer) StatsInto(out *Stats) {
	w.mu.Lock()
	*out = w.stats
	w.mu.Unlock()
}

// Err returns the writer's sticky error, nil while healthy. The service
// swallows Checkpoint errors during drain (delivery must finish); callers
// check Err (or Close) to learn the journal's true final state.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Close flushes, syncs and closes the current segment. Safe to call twice.
// The returned error is the sticky write/sync error if any occurred over the
// writer's lifetime.
func (w *Writer) Close() error {
	w.mu.Lock()
	if w.closed {
		err := w.err
		w.mu.Unlock()
		return err
	}
	w.closed = true
	ferr := w.flushLocked(true)
	if w.f != nil {
		if cerr := w.f.Close(); cerr != nil && w.err == nil {
			w.err = cerr
		}
	}
	stop := w.flushStop
	w.mu.Unlock()
	if stop != nil {
		close(stop)
		<-w.flushDone
	}
	if ferr != nil {
		return ferr
	}
	return w.Err()
}
