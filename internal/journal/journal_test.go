package journal_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"byzex/internal/core"
	"byzex/internal/faultnet"
	"byzex/internal/ident"
	"byzex/internal/journal"
	"byzex/internal/protocols/alg1"
	"byzex/internal/service"
)

// template is the serving shape the drills use: alg1 binary, n=7, t=3.
func template(seed int64) core.Config {
	return core.Config{Protocol: alg1.Protocol{}, N: 7, T: 3, Seed: seed}
}

// admit journals one synthetic admission the way the service sequencer
// would, deriving the instance exactly as the service does.
func admit(t *testing.T, w *journal.Writer, tmpl core.Config, id uint64, values []ident.Value) {
	t.Helper()
	cfg := tmpl
	cfg.Value = service.PackValues(values)
	cfg.Seed = tmpl.Seed + int64(id)
	inst := service.Instance{ID: id, Config: cfg, Values: values}
	if err := w.Admit(inst); err != nil {
		t.Fatalf("admit %d: %v", id, err)
	}
}

// TestJournalRoundTrip pins the basic write/scan contract: admissions go in,
// a crash (no checkpoint, writer just closed) leaves them all pending, and
// the recovered watermark clears every journaled id.
func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tmpl := template(11)
	w, rec, err := journal.Open(dir, journal.Options{Template: tmpl})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Watermark != 0 || len(rec.Pending) != 0 {
		t.Fatalf("fresh journal recovered state: %+v", rec)
	}
	for id := uint64(0); id < 5; id++ {
		admit(t, w, tmpl, id, []ident.Value{ident.Value(id % 2)})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rec2, err := journal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Watermark != 5 {
		t.Fatalf("watermark %d, want 5", rec2.Watermark)
	}
	if len(rec2.Pending) != 5 || rec2.FirstInstance() != 0 {
		t.Fatalf("pending %d first %d, want 5 from 0", len(rec2.Pending), rec2.FirstInstance())
	}
	for i, a := range rec2.Pending {
		if a.ID != uint64(i) || len(a.Values) != 1 || a.Values[0] != ident.Value(i%2) {
			t.Fatalf("pending %d: %+v", i, a)
		}
		if a.TemplateHash != journal.TemplateHash(tmpl) {
			t.Fatalf("pending %d template hash mismatch", i)
		}
	}
}

// TestJournalCheckpointPrunes pins the checkpoint contract: a checkpoint
// marks every earlier admission delivered (nothing pending afterwards),
// carries the stats snapshot for BaseStats, and deletes older segments.
func TestJournalCheckpointPrunes(t *testing.T) {
	dir := t.TempDir()
	tmpl := template(3)
	w, _, err := journal.Open(dir, journal.Options{Template: tmpl, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(0); id < 200; id++ { // enough to rotate several 512-byte segments
		admit(t, w, tmpl, id, []ident.Value{1})
	}
	stats := service.Stats{Submitted: 200, Instances: 200, ValuesDecided: 200, MaxLatency: 5 * time.Millisecond}
	if err := w.Checkpoint(200, stats); err != nil {
		t.Fatal(err)
	}
	js := w.Stats()
	if js.Records != 200 || js.Checkpoints != 1 {
		t.Fatalf("writer stats %+v", js)
	}
	if js.Pruned == 0 {
		t.Fatalf("no segments pruned across %d segments", js.Segments)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := journal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Pending) != 0 {
		t.Fatalf("%d pending after checkpoint", len(rec.Pending))
	}
	if rec.Watermark != 200 || rec.FirstInstance() != 200 {
		t.Fatalf("watermark %d first %d, want 200", rec.Watermark, rec.FirstInstance())
	}
	base := rec.BaseStats()
	if base == nil || base.Submitted != 200 || base.MaxLatency != 5*time.Millisecond {
		t.Fatalf("checkpoint stats not recovered: %+v", base)
	}
	if rec.Segments != 1 {
		t.Fatalf("%d segments survived the prune", rec.Segments)
	}
}

// TestJournalTornTail pins crash semantics: a partial record at the tail of
// the final segment is cut by Open (records before it survive), while the
// read-only Recover merely counts the damage.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	tmpl := template(9)
	w, _, err := journal.Open(dir, journal.Options{Template: tmpl})
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(0); id < 3; id++ {
		admit(t, w, tmpl, id, []ident.Value{0})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: a torn record header, as a crash mid-write leaves.
	segs, err := filepath.Glob(filepath.Join(dir, "*.jrnl"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	last := segs[len(segs)-1]
	f, err := os.OpenFile(last, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0, 0, 0, 99, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := journal.Recover(dir)
	if err != nil {
		t.Fatalf("read-only recover refused a torn tail: %v", err)
	}
	if rec.TruncatedBytes != 6 || len(rec.Pending) != 3 {
		t.Fatalf("torn recover: truncated=%d pending=%d", rec.TruncatedBytes, len(rec.Pending))
	}

	w2, rec2, err := journal.Open(dir, journal.Options{Template: tmpl})
	if err != nil {
		t.Fatalf("open refused a torn tail: %v", err)
	}
	defer func() { _ = w2.Close() }()
	if rec2.TruncatedBytes != 6 || len(rec2.Pending) != 3 || rec2.Watermark != 3 {
		t.Fatalf("repair recover: %+v", rec2)
	}
	// The tear is gone from disk: a fresh read-only scan sees a clean tail.
	rec3, err := journal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec3.TruncatedBytes != 0 {
		t.Fatalf("torn tail survived repair: %d bytes", rec3.TruncatedBytes)
	}
}

// TestJournalCorruptionRefused pins the loud-failure contract: a CRC flip
// anywhere before the tail is ErrCorrupt, not a silent partial replay.
func TestJournalCorruptionRefused(t *testing.T) {
	dir := t.TempDir()
	tmpl := template(1)
	w, _, err := journal.Open(dir, journal.Options{Template: tmpl})
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(0); id < 4; id++ {
		admit(t, w, tmpl, id, []ident.Value{1})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "*.jrnl"))
	buf, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	buf[12] ^= 0xFF // inside the first record, far from the tail
	if err := os.WriteFile(segs[0], buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := journal.Recover(dir); !errors.Is(err, journal.ErrCorrupt) {
		t.Fatalf("corrupt journal recovered: %v", err)
	}
	if _, _, err := journal.Open(dir, journal.Options{Template: tmpl}); !errors.Is(err, journal.ErrCorrupt) {
		t.Fatalf("corrupt journal opened: %v", err)
	}
}

// TestJournalGroupCommitFlushes pins the group-commit policy: records
// buffered between intervals reach disk within one interval without a
// per-record sync, and Close flushes whatever remains.
func TestJournalGroupCommitFlushes(t *testing.T) {
	dir := t.TempDir()
	tmpl := template(5)
	w, _, err := journal.Open(dir, journal.Options{Template: tmpl, Fsync: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(0); id < 50; id++ {
		admit(t, w, tmpl, id, []ident.Value{1})
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		rec, err := journal.Recover(dir)
		if err == nil && len(rec.Pending) == 50 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("group commit never flushed: %v", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	s := w.Stats()
	if s.Syncs >= s.Records {
		t.Fatalf("group commit synced per record: %d syncs for %d records", s.Syncs, s.Records)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestJournalServiceEndToEnd drives the full loop: a journaled service
// serves traffic and drains (checkpoint, nothing pending), then a simulated
// crash (journal with admissions but no checkpoint) recovers through a new
// service and replays byte-identically against serial core.Run.
func TestJournalServiceEndToEnd(t *testing.T) {
	dir := t.TempDir()
	tmpl := template(21)
	ctx := context.Background()

	// Generation 1: clean drain.
	w1, rec1, err := journal.Open(dir, journal.Options{Template: tmpl})
	if err != nil {
		t.Fatal(err)
	}
	svc1, err := service.New(ctx, service.Config{
		Template: tmpl, Journal: w1,
		FirstInstance: rec1.FirstInstance(), BaseStats: rec1.BaseStats(),
		Shards: 4, QueueDepth: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	const n1 = 12
	chs := make([]<-chan service.Result, 0, n1)
	for i := 0; i < n1; i++ {
		ch, err := svc1.Submit(ident.Value(i % 2))
		if err != nil {
			t.Fatal(err)
		}
		chs = append(chs, ch)
	}
	for _, ch := range chs {
		if res := <-ch; res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	svc1.Close()
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}

	// Generation 2: crash — admissions journaled, never delivered, no
	// checkpoint. Simulated by journaling through a raw writer.
	w2, rec2, err := journal.Open(dir, journal.Options{Template: tmpl})
	if err != nil {
		t.Fatal(err)
	}
	if rec2.FirstInstance() != n1 || len(rec2.Pending) != 0 {
		t.Fatalf("gen2 recovery: first=%d pending=%d", rec2.FirstInstance(), len(rec2.Pending))
	}
	lost := [][]ident.Value{{1}, {0}, {1}} // binary template: singleton batches
	id := rec2.FirstInstance()
	for _, values := range lost {
		admit(t, w2, tmpl, id, values)
		id++
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	// Generation 3: recover, replay, verify against serial runs.
	w3, rec3, err := journal.Open(dir, journal.Options{Template: tmpl})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec3.Pending) != len(lost) || rec3.FirstInstance() != n1 {
		t.Fatalf("gen3 recovery: pending=%d first=%d", len(rec3.Pending), rec3.FirstInstance())
	}
	if rec3.Watermark != n1+uint64(len(lost)) {
		t.Fatalf("gen3 watermark %d", rec3.Watermark)
	}
	base := rec3.BaseStats()
	if base == nil || base.Instances != n1 {
		t.Fatalf("gen3 base stats: %+v", base)
	}
	svc3, err := service.New(ctx, service.Config{
		Template: tmpl, Journal: w3,
		FirstInstance: rec3.FirstInstance(), BaseStats: base,
		Shards: 2, QueueDepth: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := rec3.Replay(svc3, tmpl)
	if err != nil {
		t.Fatal(err)
	}
	if replayed != len(lost) {
		t.Fatalf("replayed %d of %d", replayed, len(lost))
	}
	w3.SetReplayed(uint64(replayed))

	// Replay re-admitted the same ids: live traffic continues past them.
	ch, err := svc3.Submit(1)
	if err != nil {
		t.Fatal(err)
	}
	res := <-ch
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Instance.ID != rec3.Watermark {
		t.Fatalf("post-replay instance id %d, want %d", res.Instance.ID, rec3.Watermark)
	}
	svc3.Close()
	if err := w3.Close(); err != nil {
		t.Fatal(err)
	}

	// Every replayed instance must be byte-identical to a serial run of its
	// journaled recipe — the determinism the journal's existence relies on.
	rec4, err := journal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec4.Watermark != n1+uint64(len(lost))+1 || len(rec4.Pending) != 0 {
		t.Fatalf("final journal: watermark=%d pending=%d", rec4.Watermark, len(rec4.Pending))
	}
	if rec4.Checkpoint == nil || rec4.Checkpoint.Stats.Instances != n1+uint64(len(lost))+1 {
		t.Fatalf("final checkpoint: %+v", rec4.Checkpoint)
	}
	for i, values := range lost {
		cfg := tmpl
		cfg.Value = service.PackValues(values)
		cfg.Seed = tmpl.Seed + int64(n1+i)
		serial, err := core.Run(ctx, cfg)
		if err != nil {
			t.Fatalf("serial rerun of replayed instance %d: %v", n1+i, err)
		}
		if dec, err := serial.Decision(cfg.Transmitter, cfg.Value); err != nil || dec != cfg.Value {
			t.Fatalf("replayed instance %d decision: %v %v", n1+i, dec, err)
		}
	}
}

// TestJournalReplayMismatch pins the safety check: a journal written under
// one template or fault plan refuses to replay under another.
func TestJournalReplayMismatch(t *testing.T) {
	dir := t.TempDir()
	tmpl := template(2)
	w, _, err := journal.Open(dir, journal.Options{Template: tmpl})
	if err != nil {
		t.Fatal(err)
	}
	admit(t, w, tmpl, 0, []ident.Value{1})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := journal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}

	other := template(99) // different base seed: different instances
	if _, err := rec.Replay(nil, other); !errors.Is(err, journal.ErrMismatch) {
		t.Fatalf("template mismatch accepted: %v", err)
	}
	faulty := tmpl
	faulty.Faults = faultnet.MustCompile(faultnet.Spec{Rules: []faultnet.Rule{
		{Kind: faultnet.KDrop, From: 1, To: ident.None, First: 1, Last: 2, Prob: 1},
	}}, 7)
	if _, err := rec.Replay(nil, faulty); !errors.Is(err, journal.ErrMismatch) {
		t.Fatalf("fault-plan mismatch accepted: %v", err)
	}
}

// TestTemplateHash pins the fingerprint: stable across calls, sensitive to
// each field that changes instance execution.
func TestTemplateHash(t *testing.T) {
	base := template(7)
	if journal.TemplateHash(base) != journal.TemplateHash(template(7)) {
		t.Fatal("hash not stable")
	}
	for name, mut := range map[string]func(*core.Config){
		"seed":        func(c *core.Config) { c.Seed++ },
		"n":           func(c *core.Config) { c.N++ },
		"t":           func(c *core.Config) { c.T-- },
		"transmitter": func(c *core.Config) { c.Transmitter = 2 },
		"protocol":    func(c *core.Config) { c.Protocol = alg1.MultiProtocol{} },
	} {
		cfg := base
		mut(&cfg)
		if journal.TemplateHash(cfg) == journal.TemplateHash(base) {
			t.Fatalf("%s change not reflected in hash", name)
		}
	}
	// Value is per-batch state, not template identity.
	cfg := base
	cfg.Value = 42
	if journal.TemplateHash(cfg) != journal.TemplateHash(base) {
		t.Fatal("value leaked into the template hash")
	}
}

// TestParseFsync pins the flag surface.
func TestParseFsync(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want time.Duration
		ok   bool
	}{
		{"always", 0, true},
		{"", 0, true},
		{"5ms", 5 * time.Millisecond, true},
		{"2s", 2 * time.Second, true},
		{"-1ms", 0, false},
		{"0", 0, false},
		{"never", 0, false},
	} {
		got, err := journal.ParseFsync(tc.in)
		if tc.ok != (err == nil) || got != tc.want {
			t.Fatalf("ParseFsync(%q) = %v, %v", tc.in, got, err)
		}
		if err == nil {
			if s := journal.FsyncString(got); s != "" {
				if back, err := journal.ParseFsync(s); err != nil || back != got {
					t.Fatalf("FsyncString(%v) = %q does not round trip", got, s)
				}
			}
		}
	}
}
