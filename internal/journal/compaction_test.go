package journal_test

import (
	"context"
	"errors"
	"os"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/journal"
	"byzex/internal/service"
	"byzex/internal/sim"
)

// TestLiveCompactionPrunesDelivered drives the record-budget trigger the way
// the service's delivery path does — MaybeCheckpoint after every delivery,
// watermark = delivered id + 1 — and pins that mid-run checkpoints prune the
// fully-delivered segments while the journal keeps accepting admissions, so
// the recovery scan stays bounded by the budget, not by lifetime traffic.
func TestLiveCompactionPrunesDelivered(t *testing.T) {
	dir := t.TempDir()
	tmpl := template(51)
	w, _, err := journal.Open(dir, journal.Options{
		Template: tmpl, SegmentBytes: 512, CheckpointEvery: 8,
	})
	if err != nil {
		t.Fatal(err)
	}

	const total = 40
	wrote := 0
	var lastWatermark uint64
	for id := uint64(0); id < total; id++ {
		admit(t, w, tmpl, id, []ident.Value{ident.Value(id % 2)})
		// Everything admitted so far is delivered in this drill, so the
		// watermark trails the admission by zero.
		ok, err := w.MaybeCheckpoint(id+1, service.Stats{Instances: id + 1})
		if err != nil {
			t.Fatalf("maybe-checkpoint at %d: %v", id, err)
		}
		if ok {
			wrote++
			lastWatermark = id + 1
		}
	}
	st := w.Stats()
	if wrote == 0 || st.Checkpoints != uint64(wrote) {
		t.Fatalf("mid-run checkpoints: returned %d, stats %d", wrote, st.Checkpoints)
	}
	if st.Pruned == 0 {
		t.Fatalf("live compaction pruned nothing: %+v", st)
	}
	if st.CheckpointFailures != 0 || st.PruneFailures != 0 {
		t.Fatalf("unexpected failures: %+v", st)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := journal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Watermark != total {
		t.Fatalf("watermark %d, want %d", rec.Watermark, total)
	}
	// The pending set is exactly the admissions past the last mid-run
	// checkpoint — the bounded replay window.
	if want := int(total - lastWatermark); len(rec.Pending) != want {
		t.Fatalf("pending %d, want %d (last checkpoint watermark %d)", len(rec.Pending), want, lastWatermark)
	}
	if rec.Records >= total+wrote {
		t.Fatalf("recovery scanned %d records — pruning removed nothing (%d admissions, %d checkpoints)",
			rec.Records, total, wrote)
	}
}

// TestLiveCompactionKeepsInFlightSegments is the prune-safety core: an
// undelivered admission can live in a segment *older* than the one the
// checkpoint record lands in, and such segments must survive compaction. A
// checkpoint at a low watermark over many rotated segments must leave every
// admission at or above the watermark recoverable, dense and intact.
func TestLiveCompactionKeepsInFlightSegments(t *testing.T) {
	dir := t.TempDir()
	tmpl := template(52)
	w, _, err := journal.Open(dir, journal.Options{
		Template: tmpl, SegmentBytes: 512, CheckpointEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	const total = 20
	for id := uint64(0); id < total; id++ {
		admit(t, w, tmpl, id, []ident.Value{ident.Value(id % 2), ident.Value((id + 1) % 2)})
	}
	// Only ids 0..2 are delivered; 3..19 are in flight across many segments.
	const watermark = 3
	if ok, err := w.MaybeCheckpoint(watermark, service.Stats{Instances: watermark}); !ok || err != nil {
		t.Fatalf("due checkpoint: wrote=%v err=%v", ok, err)
	}
	// Same watermark again: nothing newly delivered, nothing due.
	if ok, err := w.MaybeCheckpoint(watermark, service.Stats{}); ok || err != nil {
		t.Fatalf("stalled watermark must not checkpoint: wrote=%v err=%v", ok, err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := journal.Recover(dir)
	if err != nil {
		t.Fatal(err) // a pruned in-flight segment would surface here as ErrCorrupt (id gap)
	}
	if rec.Checkpoint == nil || rec.Checkpoint.Watermark != watermark {
		t.Fatalf("checkpoint %+v, want watermark %d", rec.Checkpoint, watermark)
	}
	if len(rec.Pending) != total-watermark {
		t.Fatalf("pending %d, want %d", len(rec.Pending), total-watermark)
	}
	for i, a := range rec.Pending {
		if a.ID != watermark+uint64(i) {
			t.Fatalf("pending[%d] id %d, want %d", i, a.ID, watermark+uint64(i))
		}
		if len(a.Values) != 2 || a.Values[0] != ident.Value(a.ID%2) {
			t.Fatalf("pending[%d] values %v corrupted", i, a.Values)
		}
	}
}

// TestMaybeCheckpointTimer pins the timer trigger: not due before the
// interval elapses, due after — but only when the watermark advanced.
func TestMaybeCheckpointTimer(t *testing.T) {
	dir := t.TempDir()
	tmpl := template(53)
	w, _, err := journal.Open(dir, journal.Options{
		Template: tmpl, CheckpointInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = w.Close() }()

	admit(t, w, tmpl, 0, []ident.Value{1})
	if ok, err := w.MaybeCheckpoint(1, service.Stats{}); ok || err != nil {
		t.Fatalf("checkpoint before the interval: wrote=%v err=%v", ok, err)
	}
	time.Sleep(50 * time.Millisecond)
	if ok, err := w.MaybeCheckpoint(1, service.Stats{}); !ok || err != nil {
		t.Fatalf("checkpoint after the interval: wrote=%v err=%v", ok, err)
	}
	time.Sleep(50 * time.Millisecond)
	if ok, err := w.MaybeCheckpoint(1, service.Stats{}); ok || err != nil {
		t.Fatalf("timer fired without watermark progress: wrote=%v err=%v", ok, err)
	}
}

// TestCheckpointFailuresCounted pins the drain-path observability fix: a
// checkpoint refused by a closed writer is an error *and* a counted failure,
// so the swallowed drain-checkpoint error still shows on /metrics and in the
// baserve drain banner.
func TestCheckpointFailuresCounted(t *testing.T) {
	dir := t.TempDir()
	tmpl := template(54)
	w, _, err := journal.Open(dir, journal.Options{Template: tmpl, CheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	admit(t, w, tmpl, 0, []ident.Value{1})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Checkpoint(1, service.Stats{}); !errors.Is(err, journal.ErrClosed) {
		t.Fatalf("checkpoint on closed writer: %v", err)
	}
	// MaybeCheckpoint was due (1 admission since the last checkpoint, fresh
	// watermark) — the failed attempt counts too.
	if ok, err := w.MaybeCheckpoint(1, service.Stats{}); !ok || !errors.Is(err, journal.ErrClosed) {
		t.Fatalf("maybe-checkpoint on closed writer: wrote=%v err=%v", ok, err)
	}
	if got := w.Stats().CheckpointFailures; got != 2 {
		t.Fatalf("CheckpointFailures = %d, want 2", got)
	}
}

// TestPruneRetryOnFlusherTick is the regression for the stranded-segment bug:
// pruneLocked used to ignore os.Remove errors, leaving a failed prune to wait
// for the *next* checkpoint — a full budget window under periodic compaction.
// Now the failure is counted and the flusher tick retries it, with no
// additional checkpoint in between.
func TestPruneRetryOnFlusherTick(t *testing.T) {
	dir := t.TempDir()
	tmpl := template(55)
	w, _, err := journal.Open(dir, journal.Options{
		Template: tmpl, Fsync: 5 * time.Millisecond, SegmentBytes: 512, CheckpointEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = w.Close() }()

	var failing atomic.Bool
	failing.Store(true)
	w.SetRemoveFileForTest(func(path string) error {
		if failing.Load() {
			return errors.New("injected remove failure")
		}
		return os.Remove(path)
	})

	const total = 80 // enough to rotate several 512-byte segments
	for id := uint64(0); id < total; id++ {
		admit(t, w, tmpl, id, []ident.Value{ident.Value(id % 2)})
	}
	if ok, err := w.MaybeCheckpoint(total, service.Stats{}); !ok || err != nil {
		t.Fatalf("checkpoint: wrote=%v err=%v", ok, err)
	}
	st := w.Stats()
	if st.Segments < 2 {
		t.Fatalf("load did not rotate segments: %+v", st)
	}
	if st.PruneFailures == 0 || st.Pruned != 0 {
		t.Fatalf("injected failures not observed: %+v", st)
	}
	if !w.PrunePendingForTest() {
		t.Fatal("failed prune not marked for retry")
	}
	checkpointsBefore := st.Checkpoints

	// Heal the filesystem; the group-commit flusher must re-prune within a
	// few ticks, without any new checkpoint.
	failing.Store(false)
	deadline := time.Now().Add(5 * time.Second)
	for {
		st = w.Stats()
		if st.Pruned > 0 && !w.PrunePendingForTest() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("flusher tick never re-pruned: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st.Checkpoints != checkpointsBefore {
		t.Fatalf("retry required a new checkpoint (%d -> %d)", checkpointsBefore, st.Checkpoints)
	}
	if st.Segments != 1 {
		t.Fatalf("segments after re-prune: %d, want 1", st.Segments)
	}
}

// TestServiceLiveCompactionDeterminism is the tentpole correctness drill,
// run under -race by `make check`: a journaled service under concurrent
// submitters takes mid-run checkpoints (live compaction), the writer is
// closed before the drain so the final checkpoint fails (counted, swallowed),
// and a second generation — at a different shard count — must replay exactly
// the post-checkpoint window, reproduce every decision byte-identically
// under the original ids, and end with nothing pending.
func TestServiceLiveCompactionDeterminism(t *testing.T) {
	dir := t.TempDir()
	tmpl := template(56)
	ctx := context.Background()
	open := func() (*journal.Writer, *journal.Recovery) {
		t.Helper()
		w, rec, err := journal.Open(dir, journal.Options{
			Template: tmpl, Fsync: time.Millisecond, SegmentBytes: 1024, CheckpointEvery: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		return w, rec
	}

	// Generation 1: concurrent submitters against a compacting journal. The
	// run function gates instances past `total`, so the trailing extras are
	// journaled but provably undelivered while the writer is closed — a
	// deterministic crash window, whatever the checkpoint timing did.
	const (
		submitters = 4
		perWorker  = 16
		total      = submitters * perWorker
		extras     = 4
	)
	w1, _ := open()
	gate := make(chan struct{})
	svc1, err := service.New(ctx, service.Config{
		Template: tmpl, Journal: w1, Shards: 4, QueueDepth: 64,
		Run: func(ctx context.Context, cfg core.Config) (service.Outcome, error) {
			if cfg.Seed-tmpl.Seed >= total {
				<-gate
			}
			return service.RunSim(ctx, cfg)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var (
		mu        sync.Mutex
		decisions = make(map[uint64]map[ident.ProcID]sim.Decision, total+extras)
		wg        sync.WaitGroup
	)
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				res, err := svc1.SubmitWait(ctx, ident.Value((g+i)%2))
				if err != nil {
					t.Errorf("submitter %d: %v", g, err)
					return
				}
				mu.Lock()
				decisions[res.Instance.ID] = res.Instance.Decisions
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	st1 := w1.Stats()
	if st1.Checkpoints == 0 {
		t.Fatalf("no mid-run checkpoint under load: %+v", st1)
	}
	// The extras: admitted and journaled, then parked behind the gate.
	extraCh := make([]<-chan service.Result, extras)
	for i := range extraCh {
		ch, err := svc1.Submit(ident.Value(i % 2))
		if err != nil {
			t.Fatalf("extra %d: %v", i, err)
		}
		extraCh[i] = ch
	}
	deadline := time.Now().Add(10 * time.Second)
	for w1.Stats().Records < total+extras {
		if time.Now().After(deadline) {
			t.Fatalf("extras never journaled: %+v", w1.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	// Close the writer while the extras are in flight: every later
	// checkpoint attempt — including the drain's — must fail, be counted,
	// and leave the post-checkpoint window pending on disk.
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}
	close(gate)
	for i, ch := range extraCh {
		res := <-ch
		if res.Err != nil {
			t.Fatalf("extra %d failed: %v", i, res.Err)
		}
		mu.Lock()
		decisions[res.Instance.ID] = res.Instance.Decisions
		mu.Unlock()
	}
	svc1.Close()
	if got := w1.Stats().CheckpointFailures; got == 0 {
		t.Fatal("failed drain checkpoint not counted")
	}

	// Generation 2: fewer shards — determinism must not depend on the
	// execution geometry.
	w2, rec := open()
	if rec.Checkpoint == nil {
		t.Fatal("mid-run checkpoint not recovered")
	}
	if len(rec.Pending) < extras || len(rec.Pending) >= total {
		t.Fatalf("pending %d of %d — compaction did not bound the replay window to the crash tail",
			len(rec.Pending), total+extras)
	}
	svc2, err := service.New(ctx, service.Config{
		Template: tmpl, Journal: w2, Shards: 2, QueueDepth: 64,
		FirstInstance: rec.FirstInstance(), BaseStats: rec.BaseStats(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range rec.Pending {
		if a.ID != rec.Pending[0].ID+uint64(i) {
			t.Fatalf("pending ids not dense at %d: %d", i, a.ID)
		}
		ch, err := svc2.Replay(a.Values)
		if err != nil {
			t.Fatalf("replay %d: %v", a.ID, err)
		}
		for range a.Values {
			res := <-ch
			if res.Err != nil {
				t.Fatalf("replayed %d failed: %v", a.ID, res.Err)
			}
			if res.Instance.ID != a.ID {
				t.Fatalf("replayed under id %d, journaled %d", res.Instance.ID, a.ID)
			}
			if !reflect.DeepEqual(res.Instance.Decisions, decisions[a.ID]) {
				t.Fatalf("instance %d decisions diverge across restart:\n gen1: %v\n gen2: %v",
					a.ID, decisions[a.ID], res.Instance.Decisions)
			}
		}
	}
	svc2.Close()
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	final, err := journal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(final.Pending) != 0 || final.Watermark != total+extras {
		t.Fatalf("post-drain: %d pending, watermark %d (want 0, %d)",
			len(final.Pending), final.Watermark, total+extras)
	}
}
