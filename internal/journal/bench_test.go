package journal_test

import (
	"fmt"
	"testing"
	"time"

	"byzex/internal/ident"
	"byzex/internal/journal"
	"byzex/internal/service"
)

// benchAdmit journals one synthetic admission without test plumbing.
func benchAdmit(b *testing.B, w *journal.Writer, id uint64) {
	inst := service.Instance{ID: id, Values: []ident.Value{ident.Value(id % 2)}}
	if err := w.Admit(inst); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkJournalAppend measures admissions/s under the two durability
// policies. fsync=always pays one sync per record — the floor a safe-by-
// default journal imposes; group commit amortizes the sync over an interval,
// and the gap between the two rows is the price of the zero-loss window
// (BENCH_007).
func BenchmarkJournalAppend(b *testing.B) {
	for _, bc := range []struct {
		name  string
		fsync time.Duration
	}{
		{"fsync=always", 0},
		{"fsync=2ms", 2 * time.Millisecond},
	} {
		b.Run(bc.name, func(b *testing.B) {
			w, _, err := journal.Open(b.TempDir(), journal.Options{
				Template: template(7), Fsync: bc.fsync,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer func() { _ = w.Close() }()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchAdmit(b, w, uint64(i))
			}
			b.StopTimer()
			s := w.Stats()
			b.ReportMetric(float64(s.Syncs)/float64(b.N), "syncs/op")
		})
	}
}

// BenchmarkJournalRecover measures the scan side: rebuilding the watermark
// and pending set from a 10k-admission journal (the recovery-replay budget
// for a crashed server is dominated by instance re-execution, not this scan,
// and the row proves it).
func BenchmarkJournalRecover(b *testing.B) {
	const records = 10_000
	dir := b.TempDir()
	w, _, err := journal.Open(dir, journal.Options{
		Template: template(7), Fsync: 100 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < records; i++ {
		benchAdmit(b, w, uint64(i))
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := journal.Recover(dir)
		if err != nil {
			b.Fatal(err)
		}
		if len(rec.Pending) != records {
			b.Fatalf("recovered %d of %d", len(rec.Pending), records)
		}
	}
}

// BenchmarkJournalSegments pins scan cost against segment fragmentation:
// the same 10k admissions spread over many small segments versus few large
// ones.
func BenchmarkJournalSegments(b *testing.B) {
	const records = 10_000
	for _, segBytes := range []int64{16 << 10, 4 << 20} {
		b.Run(fmt.Sprintf("seg=%dKiB", segBytes>>10), func(b *testing.B) {
			dir := b.TempDir()
			w, _, err := journal.Open(dir, journal.Options{
				Template: template(7), Fsync: 100 * time.Millisecond, SegmentBytes: segBytes,
			})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < records; i++ {
				benchAdmit(b, w, uint64(i))
			}
			if err := w.Close(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := journal.Recover(dir); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
