package journal_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"byzex/internal/ident"
	"byzex/internal/journal"
	"byzex/internal/service"
)

// benchAdmit journals one synthetic admission without test plumbing.
func benchAdmit(b *testing.B, w *journal.Writer, id uint64) {
	inst := service.Instance{ID: id, Values: []ident.Value{ident.Value(id % 2)}}
	if err := w.Admit(inst); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkJournalAppend measures admissions/s under the two durability
// policies. fsync=always pays one sync per record — the floor a safe-by-
// default journal imposes; group commit amortizes the sync over an interval,
// and the gap between the two rows is the price of the zero-loss window
// (BENCH_007).
func BenchmarkJournalAppend(b *testing.B) {
	for _, bc := range []struct {
		name  string
		fsync time.Duration
	}{
		{"fsync=always", 0},
		{"fsync=2ms", 2 * time.Millisecond},
	} {
		b.Run(bc.name, func(b *testing.B) {
			w, _, err := journal.Open(b.TempDir(), journal.Options{
				Template: template(7), Fsync: bc.fsync,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer func() { _ = w.Close() }()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchAdmit(b, w, uint64(i))
			}
			b.StopTimer()
			s := w.Stats()
			b.ReportMetric(float64(s.Syncs)/float64(b.N), "syncs/op")
		})
	}
}

// BenchmarkJournalRecover measures the scan side: rebuilding the watermark
// and pending set from a 10k-admission journal (the recovery-replay budget
// for a crashed server is dominated by instance re-execution, not this scan,
// and the row proves it).
func BenchmarkJournalRecover(b *testing.B) {
	const records = 10_000
	dir := b.TempDir()
	w, _, err := journal.Open(dir, journal.Options{
		Template: template(7), Fsync: 100 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < records; i++ {
		benchAdmit(b, w, uint64(i))
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := journal.Recover(dir)
		if err != nil {
			b.Fatal(err)
		}
		if len(rec.Pending) != records {
			b.Fatalf("recovered %d of %d", len(rec.Pending), records)
		}
	}
}

// BenchmarkJournalSegments pins scan cost against segment fragmentation:
// the same 10k admissions spread over many small segments versus few large
// ones.
func BenchmarkJournalSegments(b *testing.B) {
	const records = 10_000
	for _, segBytes := range []int64{16 << 10, 4 << 20} {
		b.Run(fmt.Sprintf("seg=%dKiB", segBytes>>10), func(b *testing.B) {
			dir := b.TempDir()
			w, _, err := journal.Open(dir, journal.Options{
				Template: template(7), Fsync: 100 * time.Millisecond, SegmentBytes: segBytes,
			})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < records; i++ {
				benchAdmit(b, w, uint64(i))
			}
			if err := w.Close(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := journal.Recover(dir); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkJournalCompactedRecover pins the tentpole property of live
// compaction: the recovery scan is bounded by the checkpoint cadence, not by
// the server's lifetime. Each sub-benchmark journals `total` admissions with
// -checkpoint-every 5000 semantics (MaybeCheckpoint driven by a delivered
// watermark that trails admission by a small in-flight window), then times
// Recover over the compacted directory. ns/op stays flat from 10k to 100k
// because pruning keeps the on-disk record count near the checkpoint budget;
// the records-scanned metric makes the bound visible (BENCH_008).
func BenchmarkJournalCompactedRecover(b *testing.B) {
	const (
		every = 5000
		lag   = 64 // in-flight window: watermark trails the newest admission
	)
	for _, total := range []int{10_000, 50_000, 100_000} {
		b.Run(fmt.Sprintf("total=%d", total), func(b *testing.B) {
			dir := b.TempDir()
			w, _, err := journal.Open(dir, journal.Options{
				Template:        template(7),
				Fsync:           100 * time.Millisecond,
				SegmentBytes:    64 << 10,
				CheckpointEvery: every,
			})
			if err != nil {
				b.Fatal(err)
			}
			var stats service.Stats
			for i := 0; i < total; i++ {
				benchAdmit(b, w, uint64(i))
				if i >= lag {
					if _, err := w.MaybeCheckpoint(uint64(i+1-lag), stats); err != nil {
						b.Fatal(err)
					}
				}
			}
			if err := w.Close(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var scanned int
			for i := 0; i < b.N; i++ {
				rec, err := journal.Recover(dir)
				if err != nil {
					b.Fatal(err)
				}
				if len(rec.Pending) > every+lag {
					b.Fatalf("recovery scan not bounded: %d pending > %d", len(rec.Pending), every+lag)
				}
				scanned = rec.Records
			}
			b.StopTimer()
			b.ReportMetric(float64(scanned), "records-scanned")
		})
	}
}

// BenchmarkJournalReplayThroughput measures the other half of the recovery
// budget: re-executing pending admissions through Service.Replay. The scan
// above is microseconds; this row is the instances/s a restarted server
// sustains while working through its backlog, which with the compaction
// bound (≤ checkpoint-every + in-flight records) gives the worst-case
// restart-to-listening time.
func BenchmarkJournalReplayThroughput(b *testing.B) {
	const pending = 256
	dir := b.TempDir()
	tmpl := template(7)
	w, _, err := journal.Open(dir, journal.Options{
		Template: tmpl, Fsync: 100 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < pending; i++ {
		inst := service.Instance{ID: uint64(i), Values: []ident.Value{ident.Value(i % 2)}}
		cfg := tmpl
		cfg.Value = service.PackValues(inst.Values)
		cfg.Seed = tmpl.Seed + int64(i)
		inst.Config = cfg
		if err := w.Admit(inst); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	rec, err := journal.Recover(dir)
	if err != nil {
		b.Fatal(err)
	}
	if len(rec.Pending) != pending {
		b.Fatalf("recovered %d of %d", len(rec.Pending), pending)
	}
	ctx := context.Background()
	svc, err := service.New(ctx, service.Config{
		Template: tmpl, Shards: 4, QueueDepth: pending,
		FirstInstance: rec.FirstInstance(), BaseStats: rec.BaseStats(),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		a := rec.Pending[i%pending]
		ch, err := svc.Replay(a.Values)
		if err != nil {
			b.Fatal(err)
		}
		for range a.Values {
			if res := <-ch; res.Err != nil {
				b.Fatal(res.Err)
			}
		}
	}
	b.StopTimer()
	if sec := time.Since(start).Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "replays/s")
	}
}
