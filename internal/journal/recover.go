package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"byzex/internal/core"
	"byzex/internal/service"
)

// Recovery is the scanned state of a journal directory: the admission
// watermark the next service must start from, the last checkpoint (if any),
// and the pending admissions — journaled but not covered by a checkpoint —
// that must be re-executed before the server takes live traffic.
type Recovery struct {
	// Watermark is the next instance id the journal has ever seen implied:
	// max(checkpoint watermark, highest journaled admission id + 1). A
	// recovered service must never assign an id below it, or it would reuse
	// a seed.
	Watermark uint64
	// Checkpoint is the last checkpoint record, nil on a journal that never
	// drained cleanly.
	Checkpoint *Checkpoint
	// Pending are the admissions at or above the checkpoint watermark, in
	// instance-id order — the in-flight work a crash interrupted. Ids are
	// dense: Pending[i].ID == Pending[0].ID + i.
	Pending []Admission
	// Records counts every valid record scanned; Segments the segment files.
	Records  int
	Segments int
	// TruncatedBytes is the torn tail cut from the final segment (0 on a
	// clean journal). Recover (read-only) counts but does not cut it.
	TruncatedBytes int64

	segments []uint64          // sorted segment indexes present at scan time
	segMax   map[uint64]uint64 // highest admission id per segment (prune-safety ledger)
}

// Recover scans dir read-only: same validation as Open, but a torn tail is
// only measured, never truncated, and no new segment is created. Use it for
// inspection (the crash drills assert watermarks with it) or to examine a
// journal before committing to a recovery.
func Recover(dir string) (*Recovery, error) {
	return scan(dir, false)
}

// FirstInstance is the value for service.Config.FirstInstance: the first
// pending id when there is pending work (replay re-assigns exactly the
// original ids), otherwise the watermark.
func (r *Recovery) FirstInstance() uint64 {
	if len(r.Pending) > 0 {
		return r.Pending[0].ID
	}
	return r.Watermark
}

// BaseStats is the value for service.Config.BaseStats: the checkpointed
// counter snapshot, or nil for a journal with no checkpoint.
func (r *Recovery) BaseStats() *service.Stats {
	if r.Checkpoint == nil {
		return nil
	}
	s := r.Checkpoint.Stats
	return &s
}

// Replay re-executes every pending admission through svc, in id order, and
// returns the count of instances replayed. svc must have been constructed
// with FirstInstance = r.FirstInstance() and must not yet be receiving live
// Submit traffic (the service's dispatch path is single-producer; baserve
// replays before opening its listener). tmpl is the live serving template —
// replay refuses (ErrMismatch) if the journal was written under a different
// template or fault plan, because re-execution would not reproduce the
// original instances.
//
// Replay waits for every replayed instance to be delivered before
// returning, so a successful return means the recovered work is resolved
// and journaled again (each replayed admission re-admits through the
// service's journal hook with its original id). Instance-level failures are
// not replay errors: a deterministic instance that failed before the crash
// fails identically on replay, and that is the faithful outcome.
func (r *Recovery) Replay(svc *service.Service, tmpl core.Config) (int, error) {
	if len(r.Pending) == 0 {
		return 0, nil
	}
	wantTmpl := TemplateHash(tmpl)
	wantFaults := tmpl.Faults.Digest()
	for _, a := range r.Pending {
		if a.TemplateHash != wantTmpl {
			return 0, fmt.Errorf("%w: admission %d written under template %#x, serving %#x",
				ErrMismatch, a.ID, a.TemplateHash, wantTmpl)
		}
		if a.FaultDigest != wantFaults {
			return 0, fmt.Errorf("%w: admission %d written under fault plan %#x, serving %#x",
				ErrMismatch, a.ID, a.FaultDigest, wantFaults)
		}
	}
	type flight struct {
		ch <-chan service.Result
		n  int
	}
	flights := make([]flight, 0, len(r.Pending))
	for _, a := range r.Pending {
		ch, err := svc.Replay(a.Values)
		if err != nil {
			return 0, fmt.Errorf("journal: replay of admission %d: %w", a.ID, err)
		}
		flights = append(flights, flight{ch: ch, n: len(a.Values)})
	}
	for _, f := range flights {
		for i := 0; i < f.n; i++ {
			<-f.ch
		}
	}
	return len(flights), nil
}

// segmentName renders the zero-padded file name of segment i.
func segmentName(i uint64) string { return fmt.Sprintf("%08d.jrnl", i) }

// listSegments returns the sorted segment indexes present in dir.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %v", err)
	}
	var segs []uint64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		var i uint64
		if n, err := fmt.Sscanf(e.Name(), "%08d.jrnl", &i); n == 1 && err == nil && e.Name() == segmentName(i) {
			segs = append(segs, i)
		}
	}
	sort.Slice(segs, func(a, b int) bool { return segs[a] < segs[b] })
	return segs, nil
}

// nextSegment is the index Open's fresh segment takes.
func (r *Recovery) nextSegment() uint64 {
	if len(r.segments) == 0 {
		return 1
	}
	return r.segments[len(r.segments)-1] + 1
}

// scan walks every segment in order, validating magic and per-record CRCs.
// Admissions dedupe by id (last record wins — replays re-journal the same
// ids) and the last checkpoint wins. A torn tail — a partial record at the
// end of the *final* segment — is expected after a crash: with repair set
// (Open) the file is truncated to the last whole record, read-only
// (Recover) it is merely counted. The same damage anywhere else is
// ErrCorrupt: only one generation's tail can legally be torn, because every
// generation starts a fresh segment.
func scan(dir string, repair bool) (*Recovery, error) {
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	rec := &Recovery{segments: segs, Segments: len(segs), segMax: make(map[uint64]uint64)}
	admissions := make(map[uint64]Admission)
	for si, seg := range segs {
		last := si == len(segs)-1
		path := filepath.Join(dir, segmentName(seg))
		buf, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("journal: %v", err)
		}
		if len(buf) < len(segMagic) || [8]byte(buf[:8]) != segMagic {
			if last && len(buf) < len(segMagic) {
				// Crash while creating the segment: nothing was journaled.
				if err := tearAt(path, buf, 0, repair, rec); err != nil {
					return nil, err
				}
				continue
			}
			return nil, fmt.Errorf("%w: segment %s: bad magic", ErrCorrupt, segmentName(seg))
		}
		off := int64(len(segMagic))
		for off < int64(len(buf)) {
			if int64(len(buf))-off < 8 {
				if err := tearAt(path, buf, off, repair && last, rec); err != nil {
					return nil, err
				}
				if !last {
					return nil, fmt.Errorf("%w: segment %s: torn record header before the final segment", ErrCorrupt, segmentName(seg))
				}
				break
			}
			bl := int64(binary.BigEndian.Uint32(buf[off : off+4]))
			sum := binary.BigEndian.Uint32(buf[off+4 : off+8])
			if off+8+bl > int64(len(buf)) {
				if err := tearAt(path, buf, off, repair && last, rec); err != nil {
					return nil, err
				}
				if !last {
					return nil, fmt.Errorf("%w: segment %s: torn record body before the final segment", ErrCorrupt, segmentName(seg))
				}
				break
			}
			body := buf[off+8 : off+8+bl]
			if crc32.Checksum(body, castagnoli) != sum {
				// A checksum failure at the very tail is a torn write; any
				// earlier is silent corruption we refuse to replay around.
				if last && off+8+bl == int64(len(buf)) {
					if err := tearAt(path, buf, off, repair, rec); err != nil {
						return nil, err
					}
					break
				}
				return nil, fmt.Errorf("%w: segment %s: bad CRC at offset %d", ErrCorrupt, segmentName(seg), off)
			}
			kind, adm, ckpt, err := decodeRecord(body)
			if err != nil {
				return nil, fmt.Errorf("segment %s offset %d: %w", segmentName(seg), off, err)
			}
			switch kind {
			case recAdmission:
				admissions[adm.ID] = adm
				if cur, ok := rec.segMax[seg]; !ok || adm.ID > cur {
					rec.segMax[seg] = adm.ID
				}
			case recCheckpoint:
				c := ckpt
				rec.Checkpoint = &c
			}
			rec.Records++
			off += 8 + bl
		}
	}

	var ckptWatermark uint64
	if rec.Checkpoint != nil {
		ckptWatermark = rec.Checkpoint.Watermark
	}
	rec.Watermark = ckptWatermark
	for id, a := range admissions {
		if id+1 > rec.Watermark {
			rec.Watermark = id + 1
		}
		if id >= ckptWatermark {
			rec.Pending = append(rec.Pending, a)
		}
	}
	sort.Slice(rec.Pending, func(a, b int) bool { return rec.Pending[a].ID < rec.Pending[b].ID })
	for i, a := range rec.Pending {
		if a.ID != rec.Pending[0].ID+uint64(i) {
			return nil, fmt.Errorf("%w: admission id gap: %d follows %d", ErrCorrupt, a.ID, rec.Pending[i-1].ID)
		}
	}
	return rec, nil
}

// tearAt handles a torn tail detected at offset off of the segment at path:
// counts the damage and, when repair is set, truncates the file back to the
// last whole record.
func tearAt(path string, buf []byte, off int64, repair bool, rec *Recovery) error {
	rec.TruncatedBytes += int64(len(buf)) - off
	if !repair {
		return nil
	}
	if err := os.Truncate(path, off); err != nil {
		return fmt.Errorf("journal: truncating torn tail of %s: %v", path, err)
	}
	return nil
}
