package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"time"

	"byzex/internal/ident"
	"byzex/internal/service"
	"byzex/internal/wire"
)

// Record kinds. The kind byte leads every record body so a scanner can
// dispatch before interpreting the layout behind it; unknown kinds fail
// typed (ErrCorrupt wraps the detail) rather than misparse.
const (
	recAdmission  byte = 1
	recCheckpoint byte = 2
)

// castagnoli is the CRC-32C polynomial table shared by every record frame.
// Castagnoli rather than IEEE because it detects the short-burst errors a
// torn page produces and has hardware support on the platforms we serve.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Admission is one journaled admission: everything needed to re-execute the
// instance byte-identically after a restart. Values are the raw submitted
// values (the packed instance value is recomputable via service.PackValues),
// TemplateHash fingerprints the run template the server was configured with,
// and FaultDigest fingerprints the compiled fault plan — both are verified
// at replay so a journal is never replayed under a different configuration
// than it was written under.
type Admission struct {
	ID           uint64
	TemplateHash uint64
	FaultDigest  uint64
	Values       []ident.Value
}

// Checkpoint is a drain marker: every admission below Watermark has been
// delivered, and Stats is the service's counter snapshot at that point (the
// seed for Config.BaseStats on the next boot).
type Checkpoint struct {
	Watermark uint64
	Stats     service.Stats
}

// appendRecord frames one encoded body onto buf the way segments store it:
// u32 big-endian body length, u32 big-endian CRC-32C of the body, body.
func appendRecord(buf []byte, body []byte) []byte {
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(body)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.Checksum(body, castagnoli))
	buf = append(buf, hdr[:]...)
	return append(buf, body...)
}

// encodeAdmission writes an admission body with w (reset first).
func encodeAdmission(w *wire.Writer, a Admission) {
	w.Reset()
	w.Byte(recAdmission)
	w.Uint(a.ID)
	w.Uint(a.TemplateHash)
	w.Uint(a.FaultDigest)
	w.Uint(uint64(len(a.Values)))
	for _, v := range a.Values {
		w.Value(v)
	}
}

// encodeCheckpoint writes a checkpoint body with w (reset first). Only the
// monotone counters and aggregates travel — the live gauges (queue depth,
// shard loads, batch target) are meaningless across a restart and are
// rebuilt fresh by the next service.
func encodeCheckpoint(w *wire.Writer, c Checkpoint) {
	w.Reset()
	w.Byte(recCheckpoint)
	w.Uint(c.Watermark)
	s := c.Stats
	w.Uint(s.Submitted)
	w.Uint(s.RejectedFull)
	w.Uint(s.RejectedDraining)
	w.Uint(s.Instances)
	w.Uint(s.InstancesFailed)
	w.Uint(s.ValuesDecided)
	w.Uint(uint64(s.QueueHighWater))
	w.Uint(s.MessagesCorrect)
	w.Uint(s.SignaturesCorrect)
	w.Uint(s.BytesCorrect)
	w.Int(int64(s.MaxLatency))
	w.Int(int64(s.TotalLatency))
	w.Uint(s.BatchGrows)
	w.Uint(s.BatchShrinks)
}

// decodeRecord dispatches one CRC-verified record body. Exactly one of the
// returns is meaningful, selected by kind.
func decodeRecord(body []byte) (kind byte, adm Admission, ckpt Checkpoint, err error) {
	r := wire.NewReader(body)
	kind = r.Byte()
	switch kind {
	case recAdmission:
		adm.ID = r.Uint()
		adm.TemplateHash = r.Uint()
		adm.FaultDigest = r.Uint()
		n := r.Len()
		if r.Err() == nil && n > 0 {
			adm.Values = make([]ident.Value, n)
			for i := 0; i < n && r.Err() == nil; i++ {
				adm.Values[i] = r.Value()
			}
		}
		if r.Err() == nil && n == 0 {
			return kind, adm, ckpt, fmt.Errorf("%w: admission %d with no values", ErrCorrupt, adm.ID)
		}
	case recCheckpoint:
		ckpt.Watermark = r.Uint()
		s := &ckpt.Stats
		s.Submitted = r.Uint()
		s.RejectedFull = r.Uint()
		s.RejectedDraining = r.Uint()
		s.Instances = r.Uint()
		s.InstancesFailed = r.Uint()
		s.ValuesDecided = r.Uint()
		s.QueueHighWater = int(r.Uint())
		s.MessagesCorrect = r.Uint()
		s.SignaturesCorrect = r.Uint()
		s.BytesCorrect = r.Uint()
		s.MaxLatency = time.Duration(r.Int())
		s.TotalLatency = time.Duration(r.Int())
		s.BatchGrows = r.Uint()
		s.BatchShrinks = r.Uint()
	default:
		return kind, adm, ckpt, fmt.Errorf("%w: unknown record kind %d", ErrCorrupt, kind)
	}
	if ferr := r.Finish(); ferr != nil {
		return kind, adm, ckpt, fmt.Errorf("%w: record kind %d: %v", ErrCorrupt, kind, ferr)
	}
	return kind, adm, ckpt, nil
}
