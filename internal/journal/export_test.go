package journal

// SetRemoveFileForTest swaps the function pruneLocked uses to delete segment
// files. The suite runs as root in CI, so permission-based failure injection
// (chmod on the directory) cannot make os.Remove fail; tests inject prune
// failures through this hook instead.
func (w *Writer) SetRemoveFileForTest(fn func(string) error) {
	w.mu.Lock()
	w.removeFile = fn
	w.mu.Unlock()
}

// PrunePendingForTest reports whether a failed prune is awaiting retry on
// the flusher tick.
func (w *Writer) PrunePendingForTest() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.prunePending
}
