package alg3

import (
	"testing"

	"byzex/internal/ident"
)

func TestLayoutPartition(t *testing.T) {
	l := newLayout(33, 3, 4) // actives 0..6, passives 7..32 in sets of 4
	if len(l.actives) != 7 {
		t.Fatalf("actives %d", len(l.actives))
	}
	if len(l.sets) != 7 { // 26 passives / 4 = 6 full + 1 of 2
		t.Fatalf("sets %d", len(l.sets))
	}
	if len(l.sets[6]) != 2 {
		t.Fatalf("last set %d", len(l.sets[6]))
	}
	// Roots are the first member of each set.
	if l.sets[0][0] != 7 || l.sets[1][0] != 11 {
		t.Fatalf("roots %v %v", l.sets[0][0], l.sets[1][0])
	}
}

func TestLocate(t *testing.T) {
	l := newLayout(33, 3, 4)
	// Active id: not locatable.
	if _, _, ok := l.locate(3); ok {
		t.Fatal("active located as passive")
	}
	// First passive is the root of set 0.
	if set, member, ok := l.locate(7); !ok || set != 0 || member != 0 {
		t.Fatalf("locate(7) = (%d,%d,%v)", set, member, ok)
	}
	// Second member of set 1.
	if set, member, ok := l.locate(12); !ok || set != 1 || member != 1 {
		t.Fatalf("locate(12) = (%d,%d,%v)", set, member, ok)
	}
	// Member of the short last set.
	if set, member, ok := l.locate(32); !ok || set != 6 || member != 1 {
		t.Fatalf("locate(32) = (%d,%d,%v)", set, member, ok)
	}
}

func TestLocateCoversEveryPassive(t *testing.T) {
	for _, tc := range []struct{ n, t, s int }{
		{33, 3, 4}, {100, 2, 7}, {10, 4, 1}, {9, 4, 3},
	} {
		l := newLayout(tc.n, tc.t, tc.s)
		seen := make(ident.Set)
		for si, set := range l.sets {
			for mi, id := range set {
				gs, gm, ok := l.locate(id)
				if !ok || gs != si || gm != mi {
					t.Fatalf("n=%d: locate(%v) = (%d,%d,%v), want (%d,%d)", tc.n, id, gs, gm, ok, si, mi)
				}
				if !seen.Add(id) {
					t.Fatalf("n=%d: %v in two sets", tc.n, id)
				}
			}
		}
		if seen.Len() != tc.n-(2*tc.t+1) {
			t.Fatalf("n=%d: covered %d passives, want %d", tc.n, seen.Len(), tc.n-(2*tc.t+1))
		}
	}
}
