// Package alg3 implements Algorithm 3 of the paper (Lemma 1, Theorem 5):
// Byzantine Agreement for general n in t + 2s + 3 phases with at most
// 2n + 4tn/s + 3t²s messages, where s parameterizes the size of the passive
// sets. Choosing s = 4t yields the O(n + t³) bound of Theorem 5; the
// introduction's phase/message trade-off (t + 3 + t/α phases, O(αn)
// messages) is this algorithm with s = ⌈t/(2α)⌉.
//
// The first 2t+1 processors ("active", including the transmitter) run
// Algorithm 1 among themselves. The remaining m = n-(2t+1) "passive"
// processors are split into ⌈m/s⌉ sets of size ≤ s, each with a root:
//
//	Phase t+3:        every active processor sends the agreed value to
//	                  every root; a root adopts the value received from
//	                  ≥ t+1 active processors as m(1).
//	Phases t+4..t+2s+1: the root walks its set: it sends m(j-1) to c(j),
//	                  which signs and returns it; the root accumulates the
//	                  signatures into m(j).
//	Phase t+2s+2:     each root reports m(s) to every active processor.
//	Phase t+2s+3:     each active processor sends the agreed value directly
//	                  to every set member whose signature is missing from
//	                  its root's report.
package alg3

import (
	"fmt"

	"byzex/internal/ident"
	"byzex/internal/protocol"
	"byzex/internal/protocols/alg1"
	"byzex/internal/sig"
	"byzex/internal/sim"
	"byzex/internal/wire"
)

// Message tags.
const (
	tagActiveValue byte = 0x31 // active -> root (phase t+3) / active -> member (last phase)
	tagChainDown   byte = 0x32 // root -> member
	tagChainUp     byte = 0x33 // member -> root
	tagReport      byte = 0x34 // root -> active
)

// Protocol is Algorithm 3 with set-size parameter S.
type Protocol struct {
	// S is the passive set size (1 ≤ S). Theorem 5 uses S = 4t.
	S int
}

var _ protocol.Protocol = Protocol{}

// Name implements protocol.Protocol.
func (p Protocol) Name() string { return fmt.Sprintf("alg3(s=%d)", p.S) }

// Check implements protocol.Protocol.
func (p Protocol) Check(n, t int) error {
	if t < 1 || n < 2*t+1 {
		return fmt.Errorf("%w: alg3 requires n ≥ 2t+1 with t ≥ 1 (got n=%d t=%d)", protocol.ErrBadParams, n, t)
	}
	if p.S < 1 {
		return fmt.Errorf("%w: alg3 requires s ≥ 1 (got %d)", protocol.ErrBadParams, p.S)
	}
	return nil
}

// Phases implements protocol.Protocol: t + 2s + 3.
func (p Protocol) Phases(_, t int) int { return t + 2*p.S + 3 }

// layout computes the deterministic partition of the system.
type layout struct {
	n, t, s int
	actives []ident.ProcID // ids 0..2t
	sets    [][]ident.ProcID
}

func newLayout(n, t, s int) layout {
	l := layout{n: n, t: t, s: s, actives: ident.Range(2*t + 1)}
	passive := make([]ident.ProcID, 0, n-(2*t+1))
	for id := 2*t + 1; id < n; id++ {
		passive = append(passive, ident.ProcID(id))
	}
	for len(passive) > 0 {
		k := s
		if k > len(passive) {
			k = len(passive)
		}
		l.sets = append(l.sets, passive[:k])
		passive = passive[k:]
	}
	return l
}

// locate returns (setIdx, memberIdx) for a passive id; memberIdx 0 is the
// root. ok is false for active ids.
func (l layout) locate(id ident.ProcID) (int, int, bool) {
	if int(id) < 2*l.t+1 {
		return 0, 0, false
	}
	off := int(id) - (2*l.t + 1)
	return off / l.s, off % l.s, true
}

// NewNode implements protocol.Protocol.
func (p Protocol) NewNode(cfg protocol.NodeConfig) (sim.Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.RequireBinaryValue(); err != nil {
		return nil, err
	}
	if cfg.Transmitter != 0 {
		return nil, fmt.Errorf("%w: alg3 assumes transmitter 0", protocol.ErrBadParams)
	}
	l := newLayout(cfg.N, cfg.T, p.S)
	if int(cfg.ID) < len(l.actives) {
		inner, err := alg1.NewCore(l.actives, cfg.T, cfg.ID, cfg.Value, cfg.Signer, cfg.Verifier)
		if err != nil {
			return nil, err
		}
		return &activeNode{cfg: cfg, l: l, inner: inner}, nil
	}
	setIdx, memberIdx, _ := l.locate(cfg.ID)
	if memberIdx == 0 {
		return &rootNode{cfg: cfg, l: l, setIdx: setIdx}, nil
	}
	return &memberNode{cfg: cfg, l: l, setIdx: setIdx, memberIdx: memberIdx}, nil
}

// encodeTagged marshals a tagged SignedValue payload.
func encodeTagged(tag byte, sv sig.SignedValue) []byte {
	w := wire.NewWriter(24 + len(sv.Chain)*48)
	w.Byte(tag)
	sv.Encode(w)
	return w.Bytes()
}

// decodeTagged parses a tagged SignedValue payload; ok is false on any
// mismatch.
func decodeTagged(payload []byte, wantTag byte) (sig.SignedValue, bool) {
	if len(payload) == 0 || payload[0] != wantTag {
		return sig.SignedValue{}, false
	}
	r := wire.NewReader(payload[1:])
	sv := sig.DecodeSignedValue(r)
	if r.Finish() != nil {
		return sig.SignedValue{}, false
	}
	return sv, true
}

// ---------------------------------------------------------------------------
// Active node

type activeNode struct {
	cfg   protocol.NodeConfig
	l     layout
	inner *alg1.Core

	committed    ident.Value
	hasCommitted bool
}

var _ sim.Node = (*activeNode)(nil)

func (a *activeNode) Step(ctx *sim.Context, inbox []sim.Envelope) error {
	t := a.cfg.T
	phase := ctx.Phase()
	if phase <= t+3 {
		if err := a.inner.Step(ctx, inbox, phase); err != nil {
			return err
		}
	}
	switch {
	case phase == t+3:
		// Commit the Algorithm 1 outcome and inform every root.
		a.committed, a.hasCommitted = a.inner.Committed(), true
		sv := sig.NewSignedValue(a.cfg.Signer, a.committed)
		payload := encodeTagged(tagActiveValue, sv)
		for _, set := range a.l.sets {
			if err := protocol.Send(ctx, set[0], payload, sv.Chain); err != nil {
				return err
			}
		}
	case phase == t+2*a.l.s+3:
		// Final phase: cover members whose signature the root's report is
		// missing (or whose root never reported / reported a wrong value).
		reports := make(map[int]sig.SignedValue)
		for _, env := range inbox {
			setIdx, memberIdx, okLoc := a.l.locate(env.From)
			if !okLoc || memberIdx != 0 {
				continue
			}
			sv, ok := decodeTagged(env.Payload, tagReport)
			if !ok {
				continue
			}
			if _, dup := reports[setIdx]; !dup {
				reports[setIdx] = sv
			}
		}
		sv := sig.NewSignedValue(a.cfg.Signer, a.committed)
		payload := encodeTagged(tagActiveValue, sv)
		for setIdx, set := range a.l.sets {
			covered := make(ident.Set)
			members := ident.NewSet(set[1:]...)
			if rep, ok := reports[setIdx]; ok && rep.Value == a.committed &&
				rep.Chain.Verify(a.cfg.Verifier, sig.ValueBody(rep.Value)) == nil {
				for _, signer := range rep.Chain.Signers() {
					if members.Has(signer) {
						covered.Add(signer)
					}
				}
			}
			for _, member := range set[1:] {
				if covered.Has(member) {
					continue
				}
				if err := protocol.Send(ctx, member, payload, sv.Chain); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func (a *activeNode) Decide() (ident.Value, bool) { return a.inner.Decide() }

// ---------------------------------------------------------------------------
// Root node

type rootNode struct {
	cfg    protocol.NodeConfig
	l      layout
	setIdx int

	m       sig.SignedValue // current m(j)
	haveM   bool
	pending int // index of the member we are waiting on (1-based member idx)
}

var _ sim.Node = (*rootNode)(nil)

func (r *rootNode) set() []ident.ProcID { return r.l.sets[r.setIdx] }

func (r *rootNode) Step(ctx *sim.Context, inbox []sim.Envelope) error {
	t, s := r.cfg.T, r.l.s
	phase := ctx.Phase()
	switch {
	case phase == t+4:
		// Collect active values sent at t+3; adopt the value received from
		// ≥ t+1 distinct active processors.
		votes := make(map[ident.Value]ident.Set)
		for _, env := range inbox {
			if int(env.From) >= 2*t+1 {
				continue
			}
			sv, ok := decodeTagged(env.Payload, tagActiveValue)
			if !ok || len(sv.Chain) != 1 || sv.Chain[0].Signer != env.From {
				continue
			}
			if sv.Verify(r.cfg.Verifier) != nil {
				continue
			}
			if votes[sv.Value] == nil {
				votes[sv.Value] = make(ident.Set)
			}
			votes[sv.Value].Add(env.From)
		}
		for v, who := range votes {
			if who.Len() >= t+1 {
				r.m = sig.SignedValue{Value: v}
				r.haveM = true
				break
			}
		}
	case phase > t+4 && phase <= t+2*s+2 && (phase-t)%2 == 0:
		// Phase t+2j+2: process c(j)'s reply (sent during t+2j+1).
		if r.haveM && r.pending > 0 {
			expect := r.set()[r.pending]
			for _, env := range inbox {
				if env.From != expect {
					continue
				}
				sv, ok := decodeTagged(env.Payload, tagChainUp)
				if !ok || sv.Value != r.m.Value || len(sv.Chain) != len(r.m.Chain)+1 {
					continue
				}
				if len(sv.Chain) == 0 || sv.Chain[len(sv.Chain)-1].Signer != expect {
					continue
				}
				if sv.Chain.Verify(r.cfg.Verifier, sig.ValueBody(sv.Value)) != nil {
					continue
				}
				r.m = sv
				break
			}
			r.pending = 0
		}
	}

	// Outgoing schedule. Phase t+2j sends m(j-1) to c(j) (member index
	// j-1 in 0-based terms is set()[j-1]; c(1) is the root itself, so the
	// walk visits set()[1..]).
	if r.haveM {
		switch {
		case phase >= t+4 && phase <= t+2*s && phase%2 == t%2:
			// phase = t+2j  =>  j = (phase-t)/2, target member c(j) for
			// j = 2..s maps to set()[j-1].
			j := (phase - t) / 2
			if j >= 2 && j-1 < len(r.set()) {
				target := r.set()[j-1]
				payload := encodeTagged(tagChainDown, r.m)
				if err := protocol.Send(ctx, target, payload, r.m.Chain); err != nil {
					return err
				}
				r.pending = j - 1
			}
		case phase == t+2*s+2:
			payload := encodeTagged(tagReport, r.m)
			if err := protocol.SendToAll(ctx, r.l.actives, payload, r.m.Chain); err != nil {
				return err
			}
		}
	}
	return nil
}

func (r *rootNode) Decide() (ident.Value, bool) {
	if r.haveM {
		return r.m.Value, true
	}
	return ident.V0, true
}

// ---------------------------------------------------------------------------
// Member node

type memberNode struct {
	cfg       protocol.NodeConfig
	l         layout
	setIdx    int
	memberIdx int // 0-based position in the set; the paper's c(j) has j = memberIdx+1

	fromRoot    ident.Value
	haveRoot    bool
	final       ident.Value
	haveFinal   bool
	replyQueued *sig.SignedValue
}

var _ sim.Node = (*memberNode)(nil)

func (mn *memberNode) root() ident.ProcID { return mn.l.sets[mn.setIdx][0] }

func (mn *memberNode) Step(ctx *sim.Context, inbox []sim.Envelope) error {
	t, s := mn.cfg.T, mn.l.s
	phase := ctx.Phase()
	j := mn.memberIdx + 1 // paper index: we are c(j)

	// Designated chain-down phase for c(j) is t+2j; the reply goes out at
	// t+2j+1, i.e. we observe the root's message in the Step of phase
	// t+2j+1 (it was sent during t+2j).
	if phase == t+2*j+1 {
		var got []sig.SignedValue
		for _, env := range inbox {
			if env.From != mn.root() {
				continue
			}
			if sv, ok := decodeTagged(env.Payload, tagChainDown); ok {
				got = append(got, sv)
			}
		}
		// "Exactly one valid message from its root with possibly some
		// signatures of c(2)..c(j-1) appended."
		if len(got) == 1 && mn.validDown(got[0]) {
			sv := got[0]
			mn.fromRoot, mn.haveRoot = sv.Value, true
			signed := sv.CoSign(mn.cfg.Signer)
			payload := encodeTagged(tagChainUp, signed)
			if err := protocol.Send(ctx, mn.root(), payload, signed.Chain); err != nil {
				return err
			}
		}
	}

	// Final catch-up: the last sending phase is t+2s+3, so its messages
	// arrive at the delivery-only step t+2s+4.
	if phase == t+2*s+4 {
		votes := make(map[ident.Value]ident.Set)
		for _, env := range inbox {
			if int(env.From) >= 2*t+1 {
				continue
			}
			sv, ok := decodeTagged(env.Payload, tagActiveValue)
			if !ok || len(sv.Chain) != 1 || sv.Chain[0].Signer != env.From {
				continue
			}
			if sv.Verify(mn.cfg.Verifier) != nil {
				continue
			}
			if votes[sv.Value] == nil {
				votes[sv.Value] = make(ident.Set)
			}
			votes[sv.Value].Add(env.From)
		}
		for v, who := range votes {
			if who.Len() >= t+1 {
				mn.final, mn.haveFinal = v, true
				break
			}
		}
	}
	return nil
}

// validDown checks a chain-down message: signatures only by our set's
// members with positions strictly between the root and us, cryptographically
// valid over the value.
func (mn *memberNode) validDown(sv sig.SignedValue) bool {
	set := mn.l.sets[mn.setIdx]
	allowed := make(ident.Set)
	for i := 1; i < mn.memberIdx; i++ {
		allowed.Add(set[i])
	}
	for _, l := range sv.Chain {
		if !allowed.Has(l.Signer) {
			return false
		}
	}
	if !sv.Chain.Distinct() {
		return false
	}
	if len(sv.Chain) > 0 && sv.Chain.Verify(mn.cfg.Verifier, sig.ValueBody(sv.Value)) != nil {
		return false
	}
	return true
}

func (mn *memberNode) Decide() (ident.Value, bool) {
	if mn.haveFinal {
		return mn.final, true
	}
	if mn.haveRoot {
		return mn.fromRoot, true
	}
	return ident.V0, true
}
