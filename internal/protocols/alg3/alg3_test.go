package alg3_test

import (
	"context"
	"testing"

	"byzex/internal/adversary"
	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/protocols/alg3"
)

func run(t *testing.T, n, tt, s int, v ident.Value, adv adversary.Adversary, faulty ident.Set) *core.Result {
	t.Helper()
	res, _, err := core.RunAndCheck(context.Background(), core.Config{
		Protocol: alg3.Protocol{S: s}, N: n, T: tt, Value: v,
		Adversary: adv, FaultyOverride: faulty, Seed: 11,
	})
	if err != nil {
		t.Fatalf("n=%d t=%d s=%d v=%v adv=%v: %v", n, tt, s, v, advName(adv), err)
	}
	return res
}

func advName(a adversary.Adversary) string {
	if a == nil {
		return "none"
	}
	return a.Name()
}

func TestFaultFree(t *testing.T) {
	for _, tc := range []struct{ n, t, s int }{
		{7, 2, 1}, {9, 2, 2}, {16, 2, 3}, {33, 3, 4}, {64, 4, 8}, {64, 4, 16}, {100, 3, 12},
	} {
		for _, v := range []ident.Value{ident.V0, ident.V1} {
			res := run(t, tc.n, tc.t, tc.s, v, nil, nil)
			if got, bound := res.Sim.Report.MessagesCorrect, core.Alg3MsgUpperBound(tc.n, tc.t, tc.s); got > bound {
				t.Errorf("n=%d t=%d s=%d: %d msgs > bound %d", tc.n, tc.t, tc.s, got, bound)
			}
			if want := core.Alg3Phases(tc.t, tc.s); res.Phases != want {
				t.Errorf("n=%d t=%d s=%d: phases %d, want %d", tc.n, tc.t, tc.s, res.Phases, want)
			}
		}
	}
}

func TestUnderAdversaries(t *testing.T) {
	advs := []adversary.Adversary{
		adversary.Silent{},
		adversary.Crash{CrashAfter: 4},
		adversary.Garbage{},
	}
	for _, adv := range advs {
		for _, tc := range []struct{ n, t, s int }{
			{9, 2, 2}, {33, 3, 4}, {50, 4, 6},
		} {
			for _, v := range []ident.Value{ident.V0, ident.V1} {
				res := run(t, tc.n, tc.t, tc.s, v, adv, nil)
				if got, bound := res.Sim.Report.MessagesCorrect, core.Alg3MsgUpperBound(tc.n, tc.t, tc.s); got > bound {
					t.Errorf("%s n=%d t=%d s=%d: %d msgs > bound %d", adv.Name(), tc.n, tc.t, tc.s, got, bound)
				}
			}
		}
	}
}

func TestFaultyRoots(t *testing.T) {
	// Corrupt exactly the roots of the first sets: their members must be
	// covered by the active processors' direct sends in the last phase.
	n, tt, s := 33, 3, 4
	faulty := ident.NewSet(7, 11, 15) // roots of sets 0, 1, 2 (actives are 0..6)
	for _, v := range []ident.Value{ident.V0, ident.V1} {
		run(t, n, tt, s, v, adversary.Silent{}, faulty)
	}
}

func TestFaultyMembers(t *testing.T) {
	// Corrupt non-root members: the chain skips them; everyone else still
	// agrees and the message bound holds.
	n, tt, s := 33, 3, 4
	faulty := ident.NewSet(8, 9, 12)
	for _, v := range []ident.Value{ident.V0, ident.V1} {
		res := run(t, n, tt, s, v, adversary.Silent{}, faulty)
		if got, bound := res.Sim.Report.MessagesCorrect, core.Alg3MsgUpperBound(n, tt, s); got > bound {
			t.Errorf("%d msgs > bound %d", got, bound)
		}
	}
}

func TestSplitBrainTransmitter(t *testing.T) {
	// Faulty transmitter equivocates; the actives still agree via
	// Algorithm 1 and distribute a single value.
	for _, tc := range []struct{ n, t, s int }{
		{9, 2, 2}, {33, 3, 4},
	} {
		adv := adversary.SplitBrain{LowValue: ident.V0, HighValue: ident.V1, SplitAt: ident.ProcID(tc.n / 2)}
		res, err := core.Run(context.Background(), core.Config{
			Protocol: alg3.Protocol{S: tc.s}, N: tc.n, T: tc.t, Value: ident.V1, Adversary: adv, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		var first ident.Value
		seen := false
		for id, d := range res.Sim.Decisions {
			if res.Faulty.Has(id) {
				continue
			}
			if !d.Decided {
				t.Fatalf("n=%d: %v undecided", tc.n, id)
			}
			if !seen {
				first, seen = d.Value, true
			} else if d.Value != first {
				t.Fatalf("n=%d: disagreement %v vs %v", tc.n, d.Value, first)
			}
		}
	}
}
