package alg5

import (
	"fmt"

	"byzex/internal/protocol"
	"byzex/internal/sim"
	"byzex/internal/tree"
)

// Protocol is Algorithm 5 with tree-size parameter S (Lemma 5's s; the tree
// capacity is rounded up to the next 2^λ − 1). Theorem 7 uses S = t.
type Protocol struct {
	// S is the binary-tree size parameter, 1 ≤ S. Larger S means fewer
	// phases spent on Algorithm 4 exchanges but longer subtree walks.
	S int

	// DisablePoW is an ablation switch: when set, active processors
	// activate *every* subtree in every block instead of only those with a
	// proof of work, and roots accept activations without checking one.
	// Agreement still holds, but the message count loses the O(t²+nt/s)
	// bound — BenchmarkAblationPoW quantifies exactly what the paper's
	// proof-of-work machinery buys.
	DisablePoW bool
}

var _ protocol.Protocol = Protocol{}

// Name implements protocol.Protocol.
func (p Protocol) Name() string {
	if p.DisablePoW {
		return fmt.Sprintf("alg5(s=%d,nopow)", p.S)
	}
	return fmt.Sprintf("alg5(s=%d)", p.S)
}

// Check implements protocol.Protocol.
func (p Protocol) Check(n, t int) error {
	_, err := newLayout(n, t, p.S, p.DisablePoW)
	return err
}

// Phases implements protocol.Protocol.
func (p Protocol) Phases(n, t int) int {
	ly, err := newLayout(n, t, p.S, p.DisablePoW)
	if err != nil {
		return 0
	}
	return ly.lastPhase
}

// Segment is one contiguous phase range of the Algorithm 5 schedule, for
// per-stage message accounting (experiment E13).
type Segment struct {
	// Name identifies the stage ("alg2", "fan-out", "block 3", ...).
	Name string
	// First and Last are the inclusive engine-phase bounds. Messages sent
	// during [First, Last] belong to the segment.
	First, Last int
}

// Segments returns the schedule decomposition for the given parameters
// (nil if the configuration is invalid).
func (p Protocol) Segments(n, t int) []Segment {
	ly, err := newLayout(n, t, p.S, p.DisablePoW)
	if err != nil {
		return nil
	}
	segs := []Segment{{Name: "alg2", First: 1, Last: 3*t + 3}}
	if ly.mode == modeAlg2Only {
		return segs
	}
	segs = append(segs, Segment{Name: "fan-out", First: 3*t + 4, Last: 3*t + 4})
	if ly.mode == modeFanout {
		return segs
	}
	for x := ly.lambda; x >= 1; x-- {
		start := ly.blockStart[x]
		end := start + 2*tree.Cap(x) + 2
		segs = append(segs, Segment{Name: fmt.Sprintf("block %d", x), First: start, Last: end})
	}
	segs = append(segs, Segment{Name: "block 0 (direct)", First: ly.blockStart[0], Last: ly.blockStart[0]})
	return segs
}

// NewNode implements protocol.Protocol.
func (p Protocol) NewNode(cfg protocol.NodeConfig) (sim.Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.RequireBinaryValue(); err != nil {
		return nil, err
	}
	if cfg.Transmitter != 0 {
		return nil, fmt.Errorf("%w: alg5 assumes transmitter 0", protocol.ErrBadParams)
	}
	ly, err := newLayout(cfg.N, cfg.T, p.S, p.DisablePoW)
	if err != nil {
		return nil, err
	}
	if ly.isActive(cfg.ID) {
		return newActiveNode(cfg, ly)
	}
	return newPassiveNode(cfg, ly)
}
