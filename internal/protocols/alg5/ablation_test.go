package alg5_test

import (
	"context"
	"testing"

	"byzex/internal/adversary"
	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/protocols/alg5"
)

func TestAblationNoPoWStillAgrees(t *testing.T) {
	// Disabling the proof-of-work gate sacrifices the message bound, never
	// correctness.
	for _, tc := range []struct{ n, t, s int }{
		{40, 3, 3}, {100, 4, 4},
	} {
		for _, v := range []ident.Value{ident.V0, ident.V1} {
			if _, _, err := core.RunAndCheck(context.Background(), core.Config{
				Protocol: alg5.Protocol{S: tc.s, DisablePoW: true},
				N:        tc.n, T: tc.t, Value: v, Seed: 8,
			}); err != nil {
				t.Fatalf("n=%d t=%d: %v", tc.n, tc.t, err)
			}
		}
	}
}

func TestAblationNoPoWCostsMoreMessages(t *testing.T) {
	// The whole point of the proof-of-work machinery: without it, the
	// blocks below λ re-activate every subtree and the message count
	// visibly inflates.
	n, tt, s := 200, 3, 3
	run := func(disable bool) int {
		res, _, err := core.RunAndCheck(context.Background(), core.Config{
			Protocol: alg5.Protocol{S: s, DisablePoW: disable},
			N:        n, T: tt, Value: ident.V1, Seed: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Sim.Report.MessagesCorrect
	}
	with, without := run(false), run(true)
	if without <= with {
		t.Fatalf("ablation did not cost messages: with=%d without=%d", with, without)
	}
	// The gated version must stay within the paper bound; the ungated one
	// typically exceeds it (that is the ablation's finding, not a strict
	// requirement at every size).
	if bound := core.Alg5MsgUpperBound(n, tt, s); with > bound {
		t.Fatalf("gated version above bound: %d > %d", with, bound)
	}
	t.Logf("messages: with PoW %d, without %d (%.2fx)", with, without, float64(without)/float64(with))
}

func TestRushingAdversary(t *testing.T) {
	// Rushing gives the adversary intra-phase lookahead; a synchronous
	// authenticated protocol must not care.
	for _, adv := range []adversary.Adversary{
		adversary.SplitBrain{LowValue: ident.V0, HighValue: ident.V1, SplitAt: 20},
		adversary.Silent{},
		adversary.Garbage{PerPhase: 4},
	} {
		res, err := core.Run(context.Background(), core.Config{
			Protocol: alg5.Protocol{S: 3}, N: 40, T: 3, Value: ident.V1,
			Adversary: adv, Seed: 4, Rushing: true,
		})
		if err != nil {
			t.Fatalf("%s: %v", adv.Name(), err)
		}
		var first ident.Value
		seen := false
		for id, d := range res.Sim.Decisions {
			if res.Faulty.Has(id) {
				continue
			}
			if !d.Decided {
				t.Fatalf("%s: %v undecided", adv.Name(), id)
			}
			if !seen {
				first, seen = d.Value, true
			} else if d.Value != first {
				t.Fatalf("%s: disagreement under rushing", adv.Name())
			}
		}
	}
}
