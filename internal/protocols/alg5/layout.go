// Package alg5 implements Algorithm 5 of the paper (Lemma 5, Theorem 7):
// authenticated Byzantine Agreement for any ratio between n and t that
// sends O(t² + nt/s) messages — O(n + t²) for s = t, matching the Theorem 2
// lower bound — in O(t + s) phases.
//
// Structure:
//
//   - α = the smallest perfect square > 6t processors are "active"; the
//     first 2t+1 of them run Algorithm 2 and hand every active processor a
//     transferable *valid message* (the value with ≥ t+1 active signatures).
//   - The remaining passive processors are partitioned into complete binary
//     trees of size 2^λ − 1. Blocks x = λ..1 process the depth-x subtrees:
//     an active processor activates a subtree root only with a *proof of
//     work* — signed evidence that ≥ α−2t active processors believe the
//     root (or witnesses in both child subtrees) still lacks the value. An
//     activated root walks its subtree collecting signatures and reports
//     them back to the active processors.
//   - Between blocks, the α active processors run Algorithm 4 (the
//     O(N^1.5) grid exchange) to agree on the sets F(p, x) of passive
//     processors whose signatures are still missing; these signed
//     [index, list] strings are exactly the proofs of work for the next
//     block.
//   - Block 0 is a final catch-all: actives send the valid message
//     directly to any processor still in B(p, 0).
//
// Everybody decides on the value of the first valid message received —
// faulty processors cannot fabricate one for a wrong value, because any
// t+1 active signatures include a correct processor's, and correct
// processors only sign their committed value.
package alg5

import (
	"fmt"

	"byzex/internal/ident"
	"byzex/internal/protocol"
	"byzex/internal/sig"
	"byzex/internal/tree"
	"byzex/internal/wire"
)

// Alpha returns α, the smallest perfect square strictly greater than 6t.
func Alpha(t int) int {
	for m := 1; ; m++ {
		if m*m > 6*t {
			return m * m
		}
	}
}

// Execution modes: the full algorithm needs n ≥ α; below that the paper
// prescribes cheaper degenerate forms.
type mode int

const (
	// modeAlg2Only: n = 2t+1 — Algorithm 2 alone.
	modeAlg2Only mode = iota + 1
	// modeFanout: 2t+1 < n < α — Algorithm 2 plus one fan-out phase in
	// which the first t+1 processors send their valid message to every
	// passive processor (the paper's "extend the first algorithm by one
	// phase and O(t²) messages").
	modeFanout
	// modeFull: n ≥ α — the full block structure.
	modeFull
)

// layout is the deterministic structure shared by every node: roles, the
// passive forest, and the phase schedule.
type layout struct {
	n, t       int
	mode       mode
	alpha      int
	disablePoW bool

	lambda int // tree depth
	sCap   int // 2^λ − 1

	coreActives []ident.ProcID // ids 0..2t (run Algorithm 2)
	actives     []ident.ProcID // ids 0..α-1 (modeFull) or 0..2t otherwise
	passives    []ident.ProcID
	forest      *tree.Forest // modeFull only

	// blockStart[x] is the first phase of block x (modeFull); blocks run
	// λ, λ-1, ..., 0. Block x>0 spans 2·Cap(x)+3 phases; block 0 spans 1.
	blockStart []int
	lastPhase  int
}

func newLayout(n, t, s int, disablePoW bool) (layout, error) {
	if t < 1 || n < 2*t+1 {
		return layout{}, fmt.Errorf("%w: alg5 requires n ≥ 2t+1 with t ≥ 1 (got n=%d t=%d)", protocol.ErrBadParams, n, t)
	}
	if s < 1 {
		return layout{}, fmt.Errorf("%w: alg5 requires s ≥ 1 (got %d)", protocol.ErrBadParams, s)
	}
	ly := layout{n: n, t: t, alpha: Alpha(t), coreActives: ident.Range(2*t + 1), disablePoW: disablePoW}
	switch {
	case n == 2*t+1:
		ly.mode = modeAlg2Only
		ly.actives = ly.coreActives
		ly.lastPhase = 3*t + 3
		return ly, nil
	case n < ly.alpha:
		ly.mode = modeFanout
		ly.actives = ly.coreActives
		for id := 2*t + 1; id < n; id++ {
			ly.passives = append(ly.passives, ident.ProcID(id))
		}
		ly.lastPhase = 3*t + 4
		return ly, nil
	}

	ly.mode = modeFull
	ly.actives = ident.Range(ly.alpha)
	for id := ly.alpha; id < n; id++ {
		ly.passives = append(ly.passives, ident.ProcID(id))
	}
	ly.lambda = tree.LambdaFor(s)
	ly.sCap = tree.Cap(ly.lambda)
	f, err := tree.NewForest(ly.passives, ly.lambda)
	if err != nil {
		return layout{}, err
	}
	ly.forest = f

	ly.blockStart = make([]int, ly.lambda+1)
	start := 3*t + 5
	for x := ly.lambda; x >= 1; x-- {
		ly.blockStart[x] = start
		start += 2*tree.Cap(x) + 3
	}
	ly.blockStart[0] = start
	ly.lastPhase = start
	return ly, nil
}

// phaseToBlock maps an engine phase to (block, relative offset). ok is
// false outside the block window.
func (ly *layout) phaseToBlock(phase int) (x, rel int, ok bool) {
	if ly.mode != modeFull || phase < ly.blockStart[ly.lambda] {
		return 0, 0, false
	}
	for x = ly.lambda; x >= 1; x-- {
		end := ly.blockStart[x] + 2*tree.Cap(x) + 2
		if phase >= ly.blockStart[x] && phase <= end {
			return x, phase - ly.blockStart[x], true
		}
	}
	if phase == ly.blockStart[0] {
		return 0, 0, true
	}
	return 0, 0, false
}

// isCoreActive reports whether id runs Algorithm 2.
func (ly *layout) isCoreActive(id ident.ProcID) bool { return int(id) < 2*ly.t+1 }

// isActive reports whether id is an active processor.
func (ly *layout) isActive(id ident.ProcID) bool { return int(id) < len(ly.actives) }

// threshold is α − 2t, the number of active endorsements a proof of work
// needs per witness.
func (ly *layout) threshold() int { return ly.alpha - 2*ly.t }

// isValid is the paper's valid-message predicate: a value followed by at
// least t+1 distinct signatures of core active processors (plus possibly
// passive ones), all cryptographically valid.
func (ly *layout) isValid(sv sig.SignedValue, verifier sig.Verifier) bool {
	if len(sv.Chain) == 0 {
		return false
	}
	coreSigners := make(ident.Set)
	for _, l := range sv.Chain {
		if ly.isCoreActive(l.Signer) {
			coreSigners.Add(l.Signer)
		}
	}
	if coreSigners.Len() < ly.t+1 {
		return false
	}
	return sv.Verify(verifier) == nil
}

// ---------------------------------------------------------------------------
// Wire formats

// Message tags.
const (
	tagFanout   byte = 0x51 // valid message alone (fan-out, block-0 direct)
	tagActivate byte = 0x52 // valid message + proof-of-work strings
	tagDown     byte = 0x53 // root -> member chain extension request
	tagUp       byte = 0x54 // member -> root signed reply
	tagReport   byte = 0x55 // root -> active final chain
)

// encodeSV marshals a tagged SignedValue payload.
func encodeSV(tag byte, sv sig.SignedValue) []byte {
	w := wire.NewWriter(32 + len(sv.Chain)*48)
	w.Byte(tag)
	sv.Encode(w)
	return w.Bytes()
}

// decodeSV parses a tagged SignedValue payload.
func decodeSV(payload []byte, wantTag byte) (sig.SignedValue, bool) {
	if len(payload) == 0 || payload[0] != wantTag {
		return sig.SignedValue{}, false
	}
	r := wire.NewReader(payload[1:])
	sv := sig.DecodeSignedValue(r)
	if r.Finish() != nil {
		return sig.SignedValue{}, false
	}
	return sv, true
}

// encodeActivate marshals an activation payload: valid message plus
// proof-of-work strings.
func encodeActivate(sv sig.SignedValue, strings []sig.SignedBytes) []byte {
	w := wire.NewWriter(64 + len(sv.Chain)*48 + len(strings)*64)
	w.Byte(tagActivate)
	sv.Encode(w)
	w.Uint(uint64(len(strings)))
	for _, s := range strings {
		s.Encode(w)
	}
	return w.Bytes()
}

// decodeActivate parses an activation payload.
func decodeActivate(payload []byte) (sig.SignedValue, []sig.SignedBytes, bool) {
	if len(payload) == 0 || payload[0] != tagActivate {
		return sig.SignedValue{}, nil, false
	}
	r := wire.NewReader(payload[1:])
	sv := sig.DecodeSignedValue(r)
	cnt := r.Len()
	if r.Err() != nil {
		return sig.SignedValue{}, nil, false
	}
	strs := make([]sig.SignedBytes, 0, cnt)
	for i := 0; i < cnt; i++ {
		strs = append(strs, sig.DecodeSignedBytes(r))
	}
	if r.Finish() != nil {
		return sig.SignedValue{}, nil, false
	}
	return sv, strs, true
}

// stringBody encodes the Algorithm 4 exchange value [index, procs].
func stringBody(index int, procs []ident.ProcID) []byte {
	w := wire.NewWriter(16 + len(procs)*4)
	w.Uint(uint64(index))
	w.Procs(procs)
	return w.Bytes()
}

// parseStringBody decodes a [index, procs] body.
func parseStringBody(body []byte) (int, []ident.ProcID, error) {
	r := wire.NewReader(body)
	idx := r.Uint()
	procs := r.Procs()
	if err := r.Finish(); err != nil {
		return 0, nil, err
	}
	return int(idx), procs, nil
}

// extractValid pulls a SignedValue out of any payload kind that carries one
// (used by the opportunistic adopt-scan: a valid message is self-certifying
// no matter how it arrived).
func extractValid(payload []byte) (sig.SignedValue, bool) {
	if len(payload) == 0 {
		return sig.SignedValue{}, false
	}
	switch payload[0] {
	case tagFanout, tagDown, tagUp, tagReport:
		return decodeSV(payload, payload[0])
	case tagActivate:
		sv, _, ok := decodeActivate(payload)
		return sv, ok
	default:
		return sig.SignedValue{}, false
	}
}
