package alg5_test

import (
	"context"
	"fmt"
	"testing"

	"byzex/internal/adversary"
	"byzex/internal/core"
	"byzex/internal/history"
	"byzex/internal/ident"
	"byzex/internal/protocols/alg2"
	"byzex/internal/protocols/alg5"
	"byzex/internal/sig"
)

func sigScheme(n int) sig.Scheme { return sig.NewHMAC(n, 123) }

func TestExactlyAlphaProcessors(t *testing.T) {
	// n == α: the full mode with an empty passive forest.
	for _, tt := range []int{1, 2, 3} {
		n := alg5.Alpha(tt)
		for _, v := range []ident.Value{ident.V0, ident.V1} {
			if _, _, err := core.RunAndCheck(context.Background(), core.Config{
				Protocol: alg5.Protocol{S: tt}, N: n, T: tt, Value: v, Seed: 1,
			}); err != nil {
				t.Fatalf("n=α=%d t=%d: %v", n, tt, err)
			}
		}
	}
}

func TestSinglePassive(t *testing.T) {
	// n == α+1: one passive processor, a forest of a single one-member tree.
	for _, tt := range []int{1, 2, 3} {
		n := alg5.Alpha(tt) + 1
		for _, v := range []ident.Value{ident.V0, ident.V1} {
			if _, _, err := core.RunAndCheck(context.Background(), core.Config{
				Protocol: alg5.Protocol{S: tt}, N: n, T: tt, Value: v, Seed: 2,
			}); err != nil {
				t.Fatalf("n=%d t=%d: %v", n, tt, err)
			}
		}
	}
}

func TestBoundaryJustBelowAlpha(t *testing.T) {
	// n == α-1: the fan-out degenerate mode at its upper edge.
	for _, tt := range []int{2, 3, 4} {
		n := alg5.Alpha(tt) - 1
		for _, v := range []ident.Value{ident.V0, ident.V1} {
			if _, _, err := core.RunAndCheck(context.Background(), core.Config{
				Protocol: alg5.Protocol{S: tt}, N: n, T: tt, Value: v, Seed: 3,
			}); err != nil {
				t.Fatalf("n=%d t=%d: %v", n, tt, err)
			}
		}
	}
}

func TestTEqualsOne(t *testing.T) {
	// The smallest tolerant configuration across all three modes.
	for _, n := range []int{3, 5, 8, 9, 10, 30} {
		for _, v := range []ident.Value{ident.V0, ident.V1} {
			if _, _, err := core.RunAndCheck(context.Background(), core.Config{
				Protocol: alg5.Protocol{S: 1}, N: n, T: 1, Value: v, Seed: 4,
			}); err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
		}
	}
}

func TestChaosFaultyTreeNodes(t *testing.T) {
	// Chaos faults placed specifically on passive tree positions (roots and
	// inner nodes): the remaining passives must still converge, across many
	// seeds.
	n, tt, s := 60, 3, 3 // α=25, trees of 3 over 35 passives
	for seed := 0; seed < 10; seed++ {
		faulty := ident.NewSet(25, 28, 31) // roots of the first three trees
		res, err := core.Run(context.Background(), core.Config{
			Protocol: alg5.Protocol{S: s}, N: n, T: tt, Value: ident.V1,
			Adversary: adversary.Chaos{}, FaultyOverride: faulty, Seed: int64(seed),
		})
		if err != nil {
			t.Fatal(err)
		}
		var first ident.Value
		seen := false
		for id, d := range res.Sim.Decisions {
			if res.Faulty.Has(id) {
				continue
			}
			if !d.Decided {
				t.Fatalf("seed=%d: %v undecided", seed, id)
			}
			if !seen {
				first, seen = d.Value, true
			} else if d.Value != first {
				t.Fatalf("seed=%d: disagreement", seed)
			}
		}
		if first != ident.V1 {
			t.Fatalf("seed=%d: validity violated", seed)
		}
	}
}

func TestEveryoneHoldsCertificates(t *testing.T) {
	// Every correct processor — active or passive — ends the run with a
	// transferable valid message: the common value plus ≥ t+1 core-active
	// signatures, externally verifiable through alg2.VerifyProof.
	n, tt, s := 60, 3, 3
	scheme := sigScheme(n)
	res, _, err := core.RunAndCheck(context.Background(), core.Config{
		Protocol: alg5.Protocol{S: s}, N: n, T: tt, Value: ident.V1, Scheme: scheme,
	})
	if err != nil {
		t.Fatal(err)
	}
	for id, nd := range res.Nodes {
		holder, ok := nd.(alg2.ProofHolder)
		if !ok {
			t.Fatalf("node %d exposes no proof", id)
		}
		proof, has := holder.Proof()
		if !has {
			t.Fatalf("node %d holds no certificate", id)
		}
		if proof.Value != ident.V1 {
			t.Fatalf("node %d certificate for %v", id, proof.Value)
		}
		if err := alg2.VerifyProof(proof, ident.Range(n), tt, scheme); err != nil {
			t.Fatalf("node %d certificate rejected: %v", id, err)
		}
	}
}

func TestDeterministicHistories(t *testing.T) {
	// Identical configurations produce bit-identical histories — the
	// foundation of the replay machinery and the experiments' exact
	// reproducibility.
	run := func() *history.History {
		res, err := core.Run(context.Background(), core.Config{
			Protocol: alg5.Protocol{S: 2}, N: 40, T: 2, Value: ident.V1,
			Adversary: adversary.Chaos{}, Seed: 99, Record: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.History
	}
	a, b := run(), run()
	if a.NumPhases() != b.NumPhases() {
		t.Fatalf("phase counts differ: %d vs %d", a.NumPhases(), b.NumPhases())
	}
	for ph := 1; ph <= a.NumPhases(); ph++ {
		ea, eb := a.PhaseEdges(ph), b.PhaseEdges(ph)
		if len(ea) != len(eb) {
			t.Fatalf("phase %d: %d vs %d edges", ph, len(ea), len(eb))
		}
		for i := range ea {
			if ea[i].From != eb[i].From || ea[i].To != eb[i].To ||
				fmt.Sprintf("%x", ea[i].Label) != fmt.Sprintf("%x", eb[i].Label) {
				t.Fatalf("phase %d edge %d differs", ph, i)
			}
		}
	}
}
