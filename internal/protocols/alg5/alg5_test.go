package alg5_test

import (
	"context"
	"testing"

	"byzex/internal/adversary"
	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/protocols/alg5"
)

func run(t *testing.T, n, tt, s int, v ident.Value, adv adversary.Adversary, faulty ident.Set) *core.Result {
	t.Helper()
	res, _, err := core.RunAndCheck(context.Background(), core.Config{
		Protocol: alg5.Protocol{S: s}, N: n, T: tt, Value: v,
		Adversary: adv, FaultyOverride: faulty, Seed: 5,
	})
	if err != nil {
		t.Fatalf("n=%d t=%d s=%d v=%v: %v", n, tt, s, v, err)
	}
	return res
}

func TestAlphaValues(t *testing.T) {
	for _, tc := range []struct{ t, want int }{
		{1, 9}, {2, 16}, {3, 25}, {4, 25}, {5, 36}, {6, 49}, {10, 64}, {16, 100},
	} {
		if got := alg5.Alpha(tc.t); got != tc.want {
			t.Errorf("Alpha(%d) = %d, want %d", tc.t, got, tc.want)
		}
	}
}

func TestModeAlg2Only(t *testing.T) {
	// n = 2t+1 degenerates to Algorithm 2.
	for _, v := range []ident.Value{ident.V0, ident.V1} {
		run(t, 7, 3, 3, v, nil, nil)
	}
}

func TestModeFanout(t *testing.T) {
	// 2t+1 < n < α.
	for _, tc := range []struct{ n, t int }{
		{8, 3}, {20, 3}, {24, 4},
	} {
		for _, v := range []ident.Value{ident.V0, ident.V1} {
			run(t, tc.n, tc.t, 3, v, nil, nil)
		}
	}
}

func TestModeFullFaultFree(t *testing.T) {
	for _, tc := range []struct{ n, t, s int }{
		{16, 2, 1}, {25, 2, 2}, {40, 3, 3}, {64, 3, 3}, {100, 4, 4}, {200, 3, 7}, {60, 2, 2},
	} {
		for _, v := range []ident.Value{ident.V0, ident.V1} {
			res := run(t, tc.n, tc.t, tc.s, v, nil, nil)
			if got, bound := res.Sim.Report.MessagesCorrect, core.Alg5MsgUpperBound(tc.n, tc.t, tc.s); got > bound {
				t.Errorf("n=%d t=%d s=%d: %d msgs > bound %d", tc.n, tc.t, tc.s, got, bound)
			}
			if got, bound := res.Phases, core.Alg5Phases(tc.t, tc.s); got > bound {
				t.Errorf("n=%d t=%d s=%d: %d phases > bound %d", tc.n, tc.t, tc.s, got, bound)
			}
		}
	}
}

func TestModeFullAdversaries(t *testing.T) {
	advs := []adversary.Adversary{
		adversary.Silent{},
		adversary.Crash{CrashAfter: 6},
		adversary.Garbage{},
	}
	for _, adv := range advs {
		for _, tc := range []struct{ n, t, s int }{
			{25, 2, 2}, {40, 3, 3}, {100, 4, 4},
		} {
			for _, v := range []ident.Value{ident.V0, ident.V1} {
				res := run(t, tc.n, tc.t, tc.s, v, adv, nil)
				if got, bound := res.Sim.Report.MessagesCorrect, core.Alg5MsgUpperBound(tc.n, tc.t, tc.s); got > bound {
					t.Errorf("%s n=%d t=%d s=%d: %d msgs > bound %d", adv.Name(), tc.n, tc.t, tc.s, got, bound)
				}
			}
		}
	}
}

func TestFaultyPassives(t *testing.T) {
	// Corrupt passive processors (tree roots and members go silent): the
	// remaining passives must still learn the value via later blocks.
	n, tt, s := 60, 3, 3
	// α = 25 for t=3, so passives start at id 25. Corrupt the root of the
	// first tree (25), an inner node (26) and a leaf (29).
	faulty := ident.NewSet(25, 26, 29)
	for _, v := range []ident.Value{ident.V0, ident.V1} {
		run(t, n, tt, s, v, adversary.Silent{}, faulty)
	}
}

func TestFaultyActivesAndPassives(t *testing.T) {
	n, tt, s := 60, 3, 3
	// One core active, one extended active, one passive root.
	faulty := ident.NewSet(2, 23, 25)
	for _, v := range []ident.Value{ident.V0, ident.V1} {
		run(t, n, tt, s, v, adversary.Silent{}, faulty)
	}
}

func TestSplitBrainTransmitter(t *testing.T) {
	for _, tc := range []struct{ n, t, s int }{
		{25, 2, 2}, {60, 3, 3},
	} {
		adv := adversary.SplitBrain{LowValue: ident.V0, HighValue: ident.V1, SplitAt: ident.ProcID(tc.n / 2)}
		res, err := core.Run(context.Background(), core.Config{
			Protocol: alg5.Protocol{S: tc.s}, N: tc.n, T: tc.t, Value: ident.V1, Adversary: adv, Seed: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		var first ident.Value
		seen := false
		for id, d := range res.Sim.Decisions {
			if res.Faulty.Has(id) {
				continue
			}
			if !d.Decided {
				t.Fatalf("n=%d: %v undecided", tc.n, id)
			}
			if !seen {
				first, seen = d.Value, true
			} else if d.Value != first {
				t.Fatalf("n=%d: disagreement %v vs %v", tc.n, d.Value, first)
			}
		}
	}
}
