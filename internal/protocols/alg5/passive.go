package alg5

import (
	"byzex/internal/ident"
	"byzex/internal/protocol"
	"byzex/internal/sig"
	"byzex/internal/sim"
	"byzex/internal/tree"
)

// passiveNode is the state machine of a passive processor. During block
// x = λ - level(q) it acts as a subtree root; during earlier blocks it is a
// member of its ancestors' subtrees; in modeFanout it only listens.
type passiveNode struct {
	cfg protocol.NodeConfig
	ly  layout

	ref   tree.Ref
	level int

	valid    sig.SignedValue
	hasValid bool

	// Root role (block λ-level).
	activated bool
	m         sig.SignedValue
	queue     []ident.ProcID // our subtree's members in BFS order, minus us

	// Member role: one signed reply per block.
	signedIn map[int]bool
}

var _ sim.Node = (*passiveNode)(nil)

func newPassiveNode(cfg protocol.NodeConfig, ly layout) (sim.Node, error) {
	p := &passiveNode{cfg: cfg, ly: ly, signedIn: make(map[int]bool)}
	if ly.mode == modeFull {
		ref, ok := ly.forest.Locate(cfg.ID)
		if !ok {
			return nil, protocol.ErrBadParams
		}
		p.ref = ref
		p.level = tree.Level(ref.Pos)
		members := ly.forest.SubtreeMembers(ref)
		p.queue = members[1:]
	}
	return p, nil
}

// adoptScan adopts the first valid message in the inbox.
func (p *passiveNode) adoptScan(inbox []sim.Envelope) {
	if p.hasValid {
		return
	}
	for _, env := range inbox {
		if sv, ok := extractValid(env.Payload); ok && p.ly.isValid(sv, p.cfg.Verifier) {
			p.valid, p.hasValid = sv, true
			return
		}
	}
}

func (p *passiveNode) Step(ctx *sim.Context, inbox []sim.Envelope) error {
	p.adoptScan(inbox)
	if p.ly.mode != modeFull {
		return nil
	}

	x, rel, ok := p.ly.phaseToBlock(ctx.Phase())
	if !ok || x == 0 {
		return nil
	}

	rootBlock := p.ly.lambda - p.level
	switch {
	case x == rootBlock:
		return p.stepRoot(ctx, inbox, x, rel)
	case x < rootBlock:
		// Our subtree was already processed; nothing to do in later blocks.
		return nil
	default:
		return p.stepMember(ctx, inbox, x, rel)
	}
}

// stepRoot drives the subtree walk once an activation arrives.
func (p *passiveNode) stepRoot(ctx *sim.Context, inbox []sim.Envelope, x, rel int) error {
	l := tree.Cap(x)

	if rel == 1 {
		// Activation check: a valid message plus a proof of work for our
		// subtree, from an active processor.
		for _, env := range inbox {
			if !p.ly.isActive(env.From) {
				continue
			}
			sv, strs, ok := decodeActivate(env.Payload)
			if !ok || !p.ly.isValid(sv, p.cfg.Verifier) {
				continue
			}
			if !p.ly.disablePoW {
				tbl := p.ly.buildPiTable(strs, x, p.cfg.Verifier)
				if !p.ly.hasProofOfWork(tbl, p.ref, x) {
					continue
				}
			}
			p.activated = true
			p.m = sv
			if !p.hasValid {
				p.valid, p.hasValid = sv, true
			}
			break
		}
	}

	if !p.activated || rel < 1 || rel%2 == 0 {
		return nil
	}

	// Odd rel = 2j+1 (j ≥ 1): absorb the reply of member j (sent at rel
	// 2j). rel 1 is the activation step (j = 0), which only sends.
	if j := (rel - 1) / 2; j >= 1 && j-1 < len(p.queue) {
		expect := p.queue[j-1]
		for _, env := range inbox {
			if env.From != expect {
				continue
			}
			sv, ok := decodeSV(env.Payload, tagUp)
			if !ok || sv.Value != p.m.Value || len(sv.Chain) != len(p.m.Chain)+1 {
				continue
			}
			if sv.Chain[len(sv.Chain)-1].Signer != expect {
				continue
			}
			if sv.Chain.Verify(p.cfg.Verifier, sig.ValueBody(sv.Value)) != nil {
				continue
			}
			p.m = sv
			break
		}
	}

	switch {
	case rel == 2*l-1:
		// Report the accumulated chain to every active processor.
		payload := encodeSV(tagReport, p.m)
		return protocol.SendToAll(ctx, p.ly.actives, payload, p.m.Chain)
	default:
		// rel = 2j+1 with j+1 ≤ len(queue): contact member j+1.
		if j := (rel-1)/2 + 1; j-1 < len(p.queue) {
			payload := encodeSV(tagDown, p.m)
			return protocol.Send(ctx, p.queue[j-1], payload, p.m.Chain)
		}
	}
	return nil
}

// stepMember answers the designated chain-extension request of block x.
func (p *passiveNode) stepMember(ctx *sim.Context, inbox []sim.Envelope, x, rel int) error {
	rootID, ok := p.ly.forest.BlockRoot(p.cfg.ID, x)
	if !ok || rootID == p.cfg.ID {
		return nil
	}
	// Our position j in the block root's member walk: the index in the
	// subtree's BFS order (root excluded). We are contacted at rel 2j-1 and
	// reply at rel 2j.
	rootRef, _ := p.ly.forest.Locate(rootID)
	members := p.ly.forest.SubtreeMembers(rootRef)
	j := 0
	for i, id := range members[1:] {
		if id == p.cfg.ID {
			j = i + 1
			break
		}
	}
	if j == 0 || rel != 2*j || p.signedIn[x] {
		return nil
	}

	// "Exactly one valid message from the root of the depth-x subtree."
	var got []sig.SignedValue
	for _, env := range inbox {
		if env.From != rootID {
			continue
		}
		if sv, ok := decodeSV(env.Payload, tagDown); ok {
			got = append(got, sv)
		}
	}
	if len(got) != 1 || !p.ly.isValid(got[0], p.cfg.Verifier) {
		return nil
	}
	p.signedIn[x] = true
	signed := got[0].CoSign(p.cfg.Signer)
	if !p.hasValid {
		p.valid, p.hasValid = got[0], true
	}
	payload := encodeSV(tagUp, signed)
	return protocol.Send(ctx, rootID, payload, signed.Chain)
}

func (p *passiveNode) Decide() (ident.Value, bool) {
	if p.hasValid {
		return p.valid.Value, true
	}
	return ident.V0, false
}

// Proof returns the valid message this passive processor received — a
// transferable certificate of the common value.
func (p *passiveNode) Proof() (sig.SignedValue, bool) {
	if !p.hasValid {
		return sig.SignedValue{}, false
	}
	return p.valid, true
}
