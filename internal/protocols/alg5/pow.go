package alg5

import (
	"byzex/internal/ident"
	"byzex/internal/sig"
	"byzex/internal/tree"
)

// piTable aggregates the π(M, q, x) counts of the paper: for each passive
// processor q, the set of distinct active processors whose verified string
// with index x lists q.
type piTable struct {
	index   int
	byProc  map[ident.ProcID]ident.Set
	sources []sig.SignedBytes // the verified strings, for forwarding
}

// buildPiTable verifies and aggregates strings for the given index. Strings
// must carry exactly one signature by an active processor and decode to
// [index, procs]; everything else is ignored.
func (ly *layout) buildPiTable(strings []sig.SignedBytes, index int, verifier sig.Verifier) *piTable {
	tbl := &piTable{index: index, byProc: make(map[ident.ProcID]ident.Set)}
	seen := make(ident.Set) // one string per signer
	for _, sb := range strings {
		if len(sb.Chain) != 1 {
			continue
		}
		signer := sb.Chain[0].Signer
		if !ly.isActive(signer) || !seen.Add(signer) {
			continue
		}
		idx, procs, err := parseStringBody(sb.Body)
		if err != nil || idx != index {
			seen.Remove(signer)
			continue
		}
		if sb.Verify(verifier) != nil {
			seen.Remove(signer)
			continue
		}
		tbl.sources = append(tbl.sources, sb)
		for _, q := range procs {
			if tbl.byProc[q] == nil {
				tbl.byProc[q] = make(ident.Set)
			}
			tbl.byProc[q].Add(signer)
		}
	}
	return tbl
}

// pi returns π(M, q, index): the number of distinct active endorsers of q.
func (tbl *piTable) pi(q ident.ProcID) int { return tbl.byProc[q].Len() }

// anyAtLeast reports whether any of the given processors reaches the
// threshold.
func (tbl *piTable) anyAtLeast(procs []ident.ProcID, thr int) bool {
	for _, q := range procs {
		if tbl.pi(q) >= thr {
			return true
		}
	}
	return false
}

// hasProofOfWork evaluates the paper's proof-of-work predicate for the
// depth-x subtree rooted at ref, against the π counts for index x:
//
//	(i)  x = λ: trivially satisfied (every tree is processed in block λ);
//	(ii) x < λ: π(root) ≥ α−2t, or both child subtrees contain a processor
//	     reaching the threshold.
func (ly *layout) hasProofOfWork(tbl *piTable, ref tree.Ref, x int) bool {
	if x == ly.lambda {
		return true
	}
	thr := ly.threshold()
	root := ly.forest.At(ref)
	if tbl.pi(root) >= thr {
		return true
	}
	tr := ly.forest.Trees[ref.Tree]
	kids := tr.Children(ref.Pos)
	if len(kids) < 2 {
		return false
	}
	for _, kid := range kids {
		members := ly.forest.SubtreeMembers(tree.Ref{Tree: ref.Tree, Pos: kid})
		if !tbl.anyAtLeast(members, thr) {
			return false
		}
	}
	return true
}

// powStringsFor selects, from the verified strings, those relevant to the
// given subtree (mentioning the root or any member), which is what an
// active processor attaches to an activation message.
func (ly *layout) powStringsFor(tbl *piTable, ref tree.Ref) []sig.SignedBytes {
	members := ident.NewSet(ly.forest.SubtreeMembers(ref)...)
	var out []sig.SignedBytes
	for _, sb := range tbl.sources {
		_, procs, err := parseStringBody(sb.Body)
		if err != nil {
			continue
		}
		for _, q := range procs {
			if members.Has(q) {
				out = append(out, sb)
				break
			}
		}
	}
	return out
}

// blockRootIDs returns the processors acting as roots in block x.
func (ly *layout) blockRootIDs(x int) ident.Set {
	out := make(ident.Set)
	for _, ref := range ly.forest.RootsOfDepth(x) {
		out.Add(ly.forest.At(ref))
	}
	return out
}
