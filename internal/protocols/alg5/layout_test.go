package alg5

import (
	"testing"

	"byzex/internal/ident"
	"byzex/internal/sig"
	"byzex/internal/tree"
)

func mustLayout(t *testing.T, n, tt, s int) layout {
	t.Helper()
	ly, err := newLayout(n, tt, s, false)
	if err != nil {
		t.Fatal(err)
	}
	return ly
}

func TestLayoutModes(t *testing.T) {
	if ly := mustLayout(t, 7, 3, 3); ly.mode != modeAlg2Only || ly.lastPhase != 12 {
		t.Fatalf("n=2t+1: mode %v last %d", ly.mode, ly.lastPhase)
	}
	if ly := mustLayout(t, 10, 3, 3); ly.mode != modeFanout || ly.lastPhase != 13 {
		t.Fatalf("fanout: mode %v last %d", ly.mode, ly.lastPhase)
	}
	if ly := mustLayout(t, 30, 3, 3); ly.mode != modeFull {
		t.Fatalf("full: mode %v", ly.mode)
	}
	if _, err := newLayout(4, 2, 2, false); err == nil {
		t.Fatal("n < 2t+1 accepted")
	}
	if _, err := newLayout(9, 2, 0, false); err == nil {
		t.Fatal("s=0 accepted")
	}
}

func TestScheduleContiguous(t *testing.T) {
	// Every phase from the first block to lastPhase must map to exactly
	// one (block, rel) pair, blocks in descending order, rels contiguous.
	ly := mustLayout(t, 100, 4, 4)
	phase := ly.blockStart[ly.lambda]
	for x := ly.lambda; x >= 1; x-- {
		for rel := 0; rel <= 2*tree.Cap(x)+2; rel++ {
			gx, grel, ok := ly.phaseToBlock(phase)
			if !ok || gx != x || grel != rel {
				t.Fatalf("phase %d: got (%d,%d,%v), want (%d,%d)", phase, gx, grel, ok, x, rel)
			}
			phase++
		}
	}
	gx, grel, ok := ly.phaseToBlock(phase)
	if !ok || gx != 0 || grel != 0 {
		t.Fatalf("block 0 at phase %d: (%d,%d,%v)", phase, gx, grel, ok)
	}
	if phase != ly.lastPhase {
		t.Fatalf("lastPhase %d != computed %d", ly.lastPhase, phase)
	}
	if _, _, ok := ly.phaseToBlock(phase + 1); ok {
		t.Fatal("phase beyond schedule mapped")
	}
	if _, _, ok := ly.phaseToBlock(ly.blockStart[ly.lambda] - 1); ok {
		t.Fatal("pre-block phase mapped")
	}
}

func TestValidMessagePredicate(t *testing.T) {
	ly := mustLayout(t, 30, 3, 3)
	scheme := sig.NewHMAC(30, 1)

	build := func(v ident.Value, signers ...int) sig.SignedValue {
		sv := sig.SignedValue{Value: v}
		for _, s := range signers {
			signer, _ := scheme.Signer(ident.ProcID(s))
			sv = sv.CoSign(signer)
		}
		return sv
	}
	// t+1 = 4 core-active signers: valid.
	if !ly.isValid(build(ident.V1, 0, 1, 2, 3), scheme) {
		t.Fatal("genuine valid message rejected")
	}
	// Passive signatures do not count toward the threshold.
	if ly.isValid(build(ident.V1, 0, 1, 2, 27, 28, 29), scheme) {
		t.Fatal("passive signers counted as active")
	}
	// Duplicate active signers collapse.
	if ly.isValid(build(ident.V1, 0, 0, 0, 0, 1), scheme) {
		t.Fatal("duplicate signers counted")
	}
	// Tampered value.
	sv := build(ident.V1, 0, 1, 2, 3)
	sv.Value = ident.V0
	if ly.isValid(sv, scheme) {
		t.Fatal("tampered message accepted")
	}
	// Empty chain.
	if ly.isValid(sig.SignedValue{Value: ident.V1}, scheme) {
		t.Fatal("empty chain accepted")
	}
}

func TestPiTableAndPoW(t *testing.T) {
	ly := mustLayout(t, 60, 3, 3) // α=25, λ=2, trees of 3 over 35 passives
	scheme := sig.NewHMAC(60, 2)

	mkString := func(signer int, index int, procs ...ident.ProcID) sig.SignedBytes {
		s, _ := scheme.Signer(ident.ProcID(signer))
		return sig.NewSignedBytes(s, stringBody(index, procs))
	}

	root := ly.forest.At(tree.Ref{Tree: 0, Pos: 0})
	leftChild := ly.forest.At(tree.Ref{Tree: 0, Pos: 1})
	_ = ly.forest.At(tree.Ref{Tree: 0, Pos: 2}) // right child, unused in the λ=2 part

	thr := ly.threshold() // 25 - 6 = 19
	if thr != 19 {
		t.Fatalf("threshold %d", thr)
	}

	// Not enough endorsements: no PoW for a depth-1 subtree.
	var strs []sig.SignedBytes
	for i := 0; i < thr-1; i++ {
		strs = append(strs, mkString(i, 1, leftChild))
	}
	tbl := ly.buildPiTable(strs, 1, scheme)
	if tbl.pi(leftChild) != thr-1 {
		t.Fatalf("pi = %d", tbl.pi(leftChild))
	}
	if ly.hasProofOfWork(tbl, tree.Ref{Tree: 0, Pos: 1}, 1) {
		t.Fatal("PoW with insufficient endorsements")
	}
	// One more endorsement flips it.
	strs = append(strs, mkString(thr-1, 1, leftChild))
	tbl = ly.buildPiTable(strs, 1, scheme)
	if !ly.hasProofOfWork(tbl, tree.Ref{Tree: 0, Pos: 1}, 1) {
		t.Fatal("PoW missing at threshold")
	}

	// Depth-2 subtrees in a λ=3 forest: the witness clause needs one
	// endorsed processor in EACH child subtree.
	ly3 := mustLayout(t, 60, 3, 7) // trees of 7; tree 0 = passives 25..31
	subRoot := tree.Ref{Tree: 0, Pos: 1}
	wLeft := ly3.forest.At(tree.Ref{Tree: 0, Pos: 3})  // left child of pos 1
	wRight := ly3.forest.At(tree.Ref{Tree: 0, Pos: 4}) // right child of pos 1
	var strs2 []sig.SignedBytes
	for i := 0; i < thr; i++ {
		strs2 = append(strs2, mkString(i, 2, wLeft, wRight))
	}
	tbl2 := ly3.buildPiTable(strs2, 2, scheme)
	if !ly3.hasProofOfWork(tbl2, subRoot, 2) {
		t.Fatal("two-witness PoW rejected")
	}
	// Only one child witnessed: rejected (unless the root itself is
	// endorsed).
	var strs3 []sig.SignedBytes
	for i := 0; i < thr; i++ {
		strs3 = append(strs3, mkString(i, 2, wLeft))
	}
	tbl3 := ly3.buildPiTable(strs3, 2, scheme)
	if ly3.hasProofOfWork(tbl3, subRoot, 2) {
		t.Fatal("single-witness PoW accepted")
	}
	// Root endorsement alone suffices.
	var strs4 []sig.SignedBytes
	for i := 0; i < thr; i++ {
		strs4 = append(strs4, mkString(i, 2, ly3.forest.At(subRoot)))
	}
	tbl4 := ly3.buildPiTable(strs4, 2, scheme)
	if !ly3.hasProofOfWork(tbl4, subRoot, 2) {
		t.Fatal("root-endorsed PoW rejected")
	}
	_ = root
	// Block λ needs no strings at all.
	empty := ly.buildPiTable(nil, ly.lambda, scheme)
	if !ly.hasProofOfWork(empty, tree.Ref{Tree: 0, Pos: 0}, ly.lambda) {
		t.Fatal("block-λ PoW not trivial")
	}
}

func TestPiTableRejectsBadStrings(t *testing.T) {
	ly := mustLayout(t, 60, 3, 3)
	scheme := sig.NewHMAC(60, 2)
	q := ly.passives[0]

	s0, _ := scheme.Signer(0)
	good := sig.NewSignedBytes(s0, stringBody(1, []ident.ProcID{q}))

	// Wrong index.
	wrongIdx := sig.NewSignedBytes(s0, stringBody(2, []ident.ProcID{q}))
	// Passive signer.
	sp, _ := scheme.Signer(q)
	passiveSigned := sig.NewSignedBytes(sp, stringBody(1, []ident.ProcID{q}))
	// Two links.
	s1, _ := scheme.Signer(1)
	twoLinks := good.CoSign(s1)
	// Tampered body.
	tampered := good
	tampered.Body = stringBody(1, []ident.ProcID{q, q + 1})

	tbl := ly.buildPiTable([]sig.SignedBytes{good, wrongIdx, passiveSigned, twoLinks, tampered}, 1, scheme)
	if tbl.pi(q) != 1 {
		t.Fatalf("pi(q) = %d, want 1 (only the good string)", tbl.pi(q))
	}
	// Same signer twice: counted once.
	dup := ly.buildPiTable([]sig.SignedBytes{good, good}, 1, scheme)
	if dup.pi(q) != 1 {
		t.Fatalf("duplicate signer counted: %d", dup.pi(q))
	}
}

func TestStringBodyRoundTrip(t *testing.T) {
	procs := []ident.ProcID{3, 99, 7}
	idx, got, err := parseStringBody(stringBody(5, procs))
	if err != nil || idx != 5 || len(got) != 3 || got[1] != 99 {
		t.Fatalf("round trip: %d %v %v", idx, got, err)
	}
	if _, _, err := parseStringBody([]byte{0xFF}); err == nil {
		t.Fatal("garbage body parsed")
	}
}

func TestAlphaMinimality(t *testing.T) {
	for tt := 1; tt <= 64; tt++ {
		a := Alpha(tt)
		if a <= 6*tt {
			t.Fatalf("Alpha(%d) = %d not > 6t", tt, a)
		}
	}
}
