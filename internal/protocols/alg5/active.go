package alg5

import (
	"byzex/internal/ident"
	"byzex/internal/protocol"
	"byzex/internal/protocols/alg2"
	"byzex/internal/protocols/alg4"
	"byzex/internal/sig"
	"byzex/internal/sim"
	"byzex/internal/tree"
)

// activeNode is the state machine of an active processor: the first 2t+1
// ("core") run Algorithm 2; the rest receive the valid message in the
// fan-out phase; all α of them drive the block structure.
type activeNode struct {
	cfg protocol.NodeConfig
	ly  layout

	core *alg2.Core // nil for extended actives

	valid    sig.SignedValue
	hasValid bool

	b        ident.Set   // B(p, x) for the current block
	pendingF ident.Set   // F(p, x-1) contributed to the in-flight Algorithm 4
	g4       *alg4.Group // in-flight Algorithm 4 instance
}

var _ sim.Node = (*activeNode)(nil)

func newActiveNode(cfg protocol.NodeConfig, ly layout) (sim.Node, error) {
	a := &activeNode{cfg: cfg, ly: ly}
	if ly.isCoreActive(cfg.ID) {
		c, err := alg2.NewCore(ly.coreActives, cfg.T, cfg.ID, cfg.Value, cfg.Signer, cfg.Verifier)
		if err != nil {
			return nil, err
		}
		a.core = c
	}
	return a, nil
}

// adoptScan adopts the first valid message found in the inbox (valid
// messages are self-certifying).
func (a *activeNode) adoptScan(inbox []sim.Envelope) {
	if a.hasValid {
		return
	}
	for _, env := range inbox {
		if sv, ok := extractValid(env.Payload); ok && a.ly.isValid(sv, a.cfg.Verifier) {
			a.valid, a.hasValid = sv, true
			return
		}
	}
}

// ownValid turns the Algorithm 2 proof into a valid message, co-signing it
// if our own signature is needed to reach t+1 active signatures.
func (a *activeNode) ownValid() {
	proof, ok := a.core.Proof()
	if !ok {
		return
	}
	if !a.ly.isValid(proof, a.cfg.Verifier) {
		proof = proof.CoSign(a.cfg.Signer)
		if !a.ly.isValid(proof, a.cfg.Verifier) {
			return
		}
	}
	a.valid, a.hasValid = proof, true
}

func (a *activeNode) Step(ctx *sim.Context, inbox []sim.Envelope) error {
	t := a.cfg.T
	phase := ctx.Phase()

	// Phases 1..3t+3 (+ final classification at 3t+4): Algorithm 2 among
	// the core actives.
	if a.core != nil && phase <= 3*t+4 {
		if err := a.core.Step(ctx, inbox, phase); err != nil {
			return err
		}
	}

	switch {
	case phase < 3*t+4:
		return nil
	case phase == 3*t+4:
		if a.core == nil {
			return nil
		}
		a.ownValid()
		if a.ly.mode == modeAlg2Only {
			return nil
		}
		// The first t+1 processors fan the valid message out: to the
		// extended actives (modeFull) or to every passive (modeFanout).
		if int(a.cfg.ID) <= t && a.hasValid {
			var targets []ident.ProcID
			if a.ly.mode == modeFull {
				targets = a.ly.actives[2*t+1:]
			} else {
				targets = a.ly.passives
			}
			payload := encodeSV(tagFanout, a.valid)
			if err := protocol.SendToAll(ctx, targets, payload, a.valid.Chain); err != nil {
				return err
			}
		}
		return nil
	}

	if a.ly.mode != modeFull {
		return nil
	}
	a.adoptScan(inbox)

	x, rel, ok := a.ly.phaseToBlock(phase)
	if !ok {
		return nil
	}
	l := tree.Cap(x)

	switch {
	case rel == 0:
		// Start of block x: settle the previous block's Algorithm 4
		// exchange, derive B(p,x) and C(p,x), and send activations (block
		// x ≥ 1) or the final direct copies (block 0).
		var tbl *piTable
		if x == a.ly.lambda {
			a.b = ident.NewSet(a.ly.passives...)
			tbl = &piTable{index: x, byProc: make(map[ident.ProcID]ident.Set)}
		} else {
			if a.g4 == nil {
				return nil
			}
			if err := a.g4.Step(ctx, inbox, 3); err != nil {
				return err
			}
			strings := collectStrings(a.g4.Output())
			tbl = a.ly.buildPiTable(strings, x, a.cfg.Verifier)
			// B(p,x) = members of our own F(p,x) with enough endorsements.
			b := make(ident.Set)
			for q := range a.pendingF {
				if tbl.pi(q) >= a.ly.threshold() {
					b.Add(q)
				}
			}
			a.b = b
			a.g4 = nil
		}
		if !a.hasValid {
			return nil
		}
		if x == 0 {
			// Block 0: send the valid message directly to everybody left.
			payload := encodeSV(tagFanout, a.valid)
			for _, q := range a.b.Sorted() {
				if err := protocol.Send(ctx, q, payload, a.valid.Chain); err != nil {
					return err
				}
			}
			return nil
		}
		// C(p,x): subtrees with a proof of work; activate their roots. The
		// DisablePoW ablation activates everything unconditionally.
		for _, ref := range a.ly.forest.RootsOfDepth(x) {
			if !a.ly.disablePoW && !a.ly.hasProofOfWork(tbl, ref, x) {
				continue
			}
			strs := a.ly.powStringsFor(tbl, ref)
			payload := encodeActivate(a.valid, strs)
			chains := make([]sig.Chain, 0, len(strs)+1)
			chains = append(chains, a.valid.Chain)
			for _, s := range strs {
				chains = append(chains, s.Chain)
			}
			if err := protocol.Send(ctx, a.ly.forest.At(ref), payload, chains...); err != nil {
				return err
			}
		}

	case x >= 1 && rel == 2*l:
		// Reports from this block's roots arrived: compute F(p, x-1) and
		// kick off the next Algorithm 4 exchange.
		covered := make(ident.Set)
		for _, env := range inbox {
			sv, ok := decodeSV(env.Payload, tagReport)
			if !ok || !a.ly.isValid(sv, a.cfg.Verifier) {
				continue
			}
			for _, signer := range sv.Chain.Signers() {
				if !a.ly.isActive(signer) {
					covered.Add(signer)
				}
			}
		}
		roots := a.ly.blockRootIDs(x)
		f := make(ident.Set)
		for q := range a.b {
			if !covered.Has(q) && !roots.Has(q) {
				f.Add(q)
			}
		}
		a.pendingF = f
		g4, err := alg4.NewGroup(a.ly.actives, a.cfg.ID, stringBody(x-1, f.Sorted()), a.cfg.Signer, a.cfg.Verifier)
		if err != nil {
			return err
		}
		a.g4 = g4
		return a.g4.Step(ctx, inbox, 0)

	case x >= 1 && (rel == 2*l+1 || rel == 2*l+2):
		if a.g4 == nil {
			return nil
		}
		return a.g4.Step(ctx, inbox, rel-2*l)
	}
	return nil
}

// collectStrings flattens an Algorithm 4 output into its entries, in
// signer order — map iteration order must never reach the wire (payload
// bytes, and with them signatures and histories, have to be deterministic
// per seed).
func collectStrings(out map[ident.ProcID]sig.SignedBytes) []sig.SignedBytes {
	ids := make(ident.Set, len(out))
	for id := range out {
		ids.Add(id)
	}
	strs := make([]sig.SignedBytes, 0, len(out))
	for _, id := range ids.Sorted() {
		strs = append(strs, out[id])
	}
	return strs
}

func (a *activeNode) Decide() (ident.Value, bool) {
	if a.core != nil {
		return a.core.Decide()
	}
	if a.hasValid {
		return a.valid.Value, true
	}
	return ident.V0, false
}

// Proof returns the transferable certificate this processor holds: a valid
// message (the common value with ≥ t+1 active signatures). Core actives
// fall back to their Algorithm 2 proof when they never observed their own
// fan-out copy.
func (a *activeNode) Proof() (sig.SignedValue, bool) {
	if a.hasValid {
		return a.valid, true
	}
	if a.core != nil {
		return a.core.Proof()
	}
	return sig.SignedValue{}, false
}
