// Package strawman implements deliberately *incorrect* cheap protocols.
// They exist to make the paper's lower bounds executable: each one beats a
// lower bound's message/signature budget, and the corresponding adversary
// construction from the proof of Theorem 1 or Theorem 2 demonstrably breaks
// it. None of these protocols achieves Byzantine Agreement for t ≥ 1.
package strawman

import (
	"fmt"

	"byzex/internal/ident"
	"byzex/internal/protocol"
	"byzex/internal/sig"
	"byzex/internal/sim"
)

// ---------------------------------------------------------------------------
// Broadcast: the transmitter signs and broadcasts once; everybody decides
// whatever arrived (default 0). n-1 messages, n-1 signatures — far below
// n(t+1)/4 for t ≥ 4 — and a single equivocating transmitter (|A(p)| = 1 ≤ t
// in Theorem 1's construction) splits the system.

// Broadcast is the 1-phase, n-1-message strawman.
type Broadcast struct{}

var _ protocol.Protocol = Broadcast{}

// Name implements protocol.Protocol.
func (Broadcast) Name() string { return "strawman-broadcast" }

// Check implements protocol.Protocol.
func (Broadcast) Check(n, t int) error {
	if n < 2 || t < 0 {
		return fmt.Errorf("%w: n=%d t=%d", protocol.ErrBadParams, n, t)
	}
	return nil
}

// Phases implements protocol.Protocol.
func (Broadcast) Phases(int, int) int { return 1 }

// NewNode implements protocol.Protocol.
func (Broadcast) NewNode(cfg protocol.NodeConfig) (sim.Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &bcastNode{cfg: cfg}, nil
}

type bcastNode struct {
	cfg     protocol.NodeConfig
	got     ident.Value
	decided bool
}

func (b *bcastNode) Step(ctx *sim.Context, inbox []sim.Envelope) error {
	if b.cfg.IsTransmitter() {
		if ctx.Phase() == 1 {
			sv := sig.NewSignedValue(b.cfg.Signer, b.cfg.Value)
			if err := protocol.Broadcast(ctx, sv.Marshal(), sv.Chain); err != nil {
				return err
			}
		}
		return nil
	}
	for _, env := range inbox {
		sv, err := sig.UnmarshalSignedValue(env.Payload)
		if err != nil {
			continue
		}
		if len(sv.Chain) != 1 || sv.Chain[0].Signer != b.cfg.Transmitter {
			continue
		}
		if sv.Verify(b.cfg.Verifier) != nil {
			continue
		}
		b.got, b.decided = sv.Value, true
	}
	return nil
}

func (b *bcastNode) Decide() (ident.Value, bool) {
	if b.cfg.IsTransmitter() {
		return b.cfg.Value, true
	}
	if b.decided {
		return b.got, true
	}
	return ident.V0, true // default when starved — exactly the Theorem 2 weakness
}

// ---------------------------------------------------------------------------
// ThinRelay: the transmitter sends its signed value to a committee of
// RelayWidth processors, which forward it (with the transmitter's signature
// only) to everybody. With RelayWidth ≤ t the committee plus transmitter
// form a coalition of ≤ t+1 whose equivocation splits the system, and each
// processor p outside the committee exchanges signatures with only
// RelayWidth+1 ≤ t+1 others — but receives only committee-relayed copies,
// so |A(p)| ≤ t+1 and the Theorem 1 replay attack applies with coalition
// A(p) minus the transmitter.

// ThinRelay is the committee-relay strawman.
type ThinRelay struct {
	// RelayWidth is the committee size (processors 1..RelayWidth).
	RelayWidth int
}

var _ protocol.Protocol = ThinRelay{}

// Name implements protocol.Protocol.
func (r ThinRelay) Name() string { return fmt.Sprintf("strawman-thinrelay%d", r.RelayWidth) }

// Check implements protocol.Protocol.
func (r ThinRelay) Check(n, t int) error {
	if n < 3 || r.RelayWidth < 1 || r.RelayWidth >= n-1 {
		return fmt.Errorf("%w: thinrelay needs 1 ≤ width < n-1 (n=%d width=%d)", protocol.ErrBadParams, n, r.RelayWidth)
	}
	return nil
}

// Phases implements protocol.Protocol.
func (ThinRelay) Phases(int, int) int { return 2 }

// NewNode implements protocol.Protocol.
func (r ThinRelay) NewNode(cfg protocol.NodeConfig) (sim.Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Transmitter != 0 {
		return nil, fmt.Errorf("%w: thinrelay assumes transmitter 0", protocol.ErrBadParams)
	}
	return &thinNode{cfg: cfg, width: r.RelayWidth}, nil
}

type thinNode struct {
	cfg     protocol.NodeConfig
	width   int
	got     ident.Value
	decided bool
	relay   *sig.SignedValue
}

func (r *thinNode) isCommittee() bool {
	return r.cfg.ID >= 1 && int(r.cfg.ID) <= r.width
}

func (r *thinNode) Step(ctx *sim.Context, inbox []sim.Envelope) error {
	switch {
	case r.cfg.IsTransmitter():
		if ctx.Phase() == 1 {
			sv := sig.NewSignedValue(r.cfg.Signer, r.cfg.Value)
			committee := make([]ident.ProcID, r.width)
			for i := range committee {
				committee[i] = ident.ProcID(i + 1)
			}
			if err := protocol.SendToAll(ctx, committee, sv.Marshal(), sv.Chain); err != nil {
				return err
			}
		}
	case r.isCommittee():
		for _, env := range inbox {
			sv, err := sig.UnmarshalSignedValue(env.Payload)
			if err != nil || len(sv.Chain) != 1 || sv.Chain[0].Signer != r.cfg.Transmitter {
				continue
			}
			if sv.Verify(r.cfg.Verifier) != nil {
				continue
			}
			r.got, r.decided = sv.Value, true
			r.relay = &sv
		}
		if ctx.Phase() == 2 && r.relay != nil {
			if err := protocol.Broadcast(ctx, r.relay.Marshal(), r.relay.Chain); err != nil {
				return err
			}
			r.relay = nil
		}
	default:
		for _, env := range inbox {
			sv, err := sig.UnmarshalSignedValue(env.Payload)
			if err != nil || len(sv.Chain) != 1 || sv.Chain[0].Signer != r.cfg.Transmitter {
				continue
			}
			if sv.Verify(r.cfg.Verifier) != nil {
				continue
			}
			r.got, r.decided = sv.Value, true
		}
	}
	return nil
}

func (r *thinNode) Decide() (ident.Value, bool) {
	if r.cfg.IsTransmitter() {
		return r.cfg.Value, true
	}
	if r.decided {
		return r.got, true
	}
	return ident.V0, true
}
