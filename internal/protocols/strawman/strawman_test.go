package strawman_test

import (
	"context"
	"testing"

	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/protocols/strawman"
)

// The strawmen are deliberately incorrect under Byzantine faults, but they
// must behave sanely on fault-free runs (that is what makes them useful
// attack targets: they look fine until the lower-bound adversary shows up).

func TestBroadcastFaultFree(t *testing.T) {
	for _, v := range []ident.Value{ident.V0, ident.V1} {
		res, got, err := core.RunAndCheck(context.Background(), core.Config{
			Protocol: strawman.Broadcast{}, N: 8, T: 2, Value: v,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Fatalf("decided %v, want %v", got, v)
		}
		// Exactly n-1 messages and n-1 signatures — far below n(t+1)/4 for
		// larger t, which is the whole point.
		if res.Sim.Report.MessagesCorrect != 7 {
			t.Fatalf("messages %d, want 7", res.Sim.Report.MessagesCorrect)
		}
		if res.Sim.Report.SignaturesCorrect != 7 {
			t.Fatalf("signatures %d, want 7", res.Sim.Report.SignaturesCorrect)
		}
	}
}

func TestThinRelayFaultFree(t *testing.T) {
	for _, v := range []ident.Value{ident.V0, ident.V1} {
		_, got, err := core.RunAndCheck(context.Background(), core.Config{
			Protocol: strawman.ThinRelay{RelayWidth: 2}, N: 10, T: 3, Value: v,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Fatalf("decided %v, want %v", got, v)
		}
	}
}

func TestThinRelayCheck(t *testing.T) {
	if err := (strawman.ThinRelay{RelayWidth: 0}).Check(5, 1); err == nil {
		t.Fatal("width 0 accepted")
	}
	if err := (strawman.ThinRelay{RelayWidth: 9}).Check(10, 1); err == nil {
		t.Fatal("width n-1 accepted")
	}
}

func TestBroadcastCheck(t *testing.T) {
	if err := (strawman.Broadcast{}).Check(1, 0); err == nil {
		t.Fatal("n=1 accepted")
	}
	if err := (strawman.Broadcast{}).Check(2, 0); err != nil {
		t.Fatal(err)
	}
}
