package lsp

import (
	"testing"

	"byzex/internal/ident"
)

func TestPathKeyRoundTrip(t *testing.T) {
	cases := [][]ident.ProcID{
		{0},
		{0, 3},
		{0, 5, 2, 9},
	}
	for _, path := range cases {
		got, err := decodePath(pathKey(path))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(path) {
			t.Fatalf("length %d != %d", len(got), len(path))
		}
		for i := range path {
			if got[i] != path[i] {
				t.Fatalf("path %v -> %v", path, got)
			}
		}
	}
	if _, err := decodePath("\xff\xff"); err == nil {
		t.Fatal("garbage key decoded")
	}
}

func TestValidPath(t *testing.T) {
	const tr = ident.ProcID(0)
	cases := []struct {
		name      string
		path      []ident.ProcID
		sentPhase int
		from, me  ident.ProcID
		want      bool
	}{
		{"root report", []ident.ProcID{0}, 1, 0, 3, true},
		{"root report wrong len", []ident.ProcID{0, 1}, 1, 0, 3, false},
		{"relay ok", []ident.ProcID{0}, 2, 1, 3, true},
		{"relay wrong length", []ident.ProcID{0}, 3, 1, 3, false},
		{"not from transmitter root", []ident.ProcID{1}, 2, 2, 3, false},
		{"sender already on path", []ident.ProcID{0, 1}, 3, 1, 3, false},
		{"receiver on path", []ident.ProcID{0, 3}, 3, 1, 3, false},
		{"duplicate on path", []ident.ProcID{0, 2, 2}, 4, 1, 3, false},
		{"long relay ok", []ident.ProcID{0, 2, 4}, 4, 1, 3, true},
		{"self relay", []ident.ProcID{0}, 2, 3, 3, false},
	}
	for _, c := range cases {
		if got := validPath(c.path, c.sentPhase, tr, c.from, c.me); got != c.want {
			t.Errorf("%s: validPath = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestResolveMajority(t *testing.T) {
	// Build a node with a hand-crafted EIG tree: n=4, t=1, me=1.
	scheme := plainSchemeForTest(4)
	signer, _ := scheme.Signer(1)
	nd := &node{
		cfg: configFor(1, 4, 1, signer, scheme),
		tree: map[string]ident.Value{
			pathKey([]ident.ProcID{0}):    ident.V1,
			pathKey([]ident.ProcID{0, 2}): ident.V1,
			pathKey([]ident.ProcID{0, 3}): ident.V0, // one liar
		},
	}
	if v, ok := nd.Decide(); !ok || v != ident.V1 {
		t.Fatalf("decide = %v, %v; want 1", v, ok)
	}

	// Majority flips when both children lie.
	nd.tree[pathKey([]ident.ProcID{0, 2})] = ident.V0
	if v, _ := nd.Decide(); v != ident.V0 {
		t.Fatalf("decide = %v; want 0", v)
	}
}

func TestResolveEmptyTreeDefaults(t *testing.T) {
	scheme := plainSchemeForTest(4)
	signer, _ := scheme.Signer(2)
	nd := &node{cfg: configFor(2, 4, 1, signer, scheme), tree: map[string]ident.Value{}}
	if v, ok := nd.Decide(); !ok || v != ident.V0 {
		t.Fatalf("empty tree decide = %v, %v", v, ok)
	}
}
