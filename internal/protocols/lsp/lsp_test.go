package lsp_test

import (
	"context"
	"testing"

	"byzex/internal/adversary"
	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/protocols/lsp"
	"byzex/internal/sig"
)

func cfg(n, tt int, v ident.Value, adv adversary.Adversary) core.Config {
	return core.Config{
		Protocol: lsp.Protocol{}, N: n, T: tt, Value: v,
		Scheme: sig.NewPlain(n), Adversary: adv, Seed: 13,
	}
}

func TestFaultFree(t *testing.T) {
	for _, tc := range []struct{ n, t int }{
		{4, 1}, {5, 1}, {7, 2}, {10, 3}, {13, 4},
	} {
		for _, v := range []ident.Value{ident.V0, ident.V1} {
			if _, _, err := core.RunAndCheck(context.Background(), cfg(tc.n, tc.t, v, nil)); err != nil {
				t.Errorf("n=%d t=%d v=%v: %v", tc.n, tc.t, v, err)
			}
		}
	}
}

func TestSilentAndCrashFaults(t *testing.T) {
	for _, adv := range []adversary.Adversary{adversary.Silent{}, adversary.Crash{CrashAfter: 1}} {
		for _, tc := range []struct{ n, t int }{
			{4, 1}, {7, 2}, {10, 3},
		} {
			for _, v := range []ident.Value{ident.V0, ident.V1} {
				if _, _, err := core.RunAndCheck(context.Background(), cfg(tc.n, tc.t, v, adv)); err != nil {
					t.Errorf("%s n=%d t=%d v=%v: %v", adv.Name(), tc.n, tc.t, v, err)
				}
			}
		}
	}
}

func TestSplitBrainTransmitter(t *testing.T) {
	// The classical OM(t) scenario: the transmitter lies differently to
	// different processors. All correct lieutenants must still agree.
	for _, tc := range []struct{ n, t int }{
		{4, 1}, {7, 2}, {10, 3},
	} {
		adv := adversary.SplitBrain{LowValue: ident.V0, HighValue: ident.V1, SplitAt: ident.ProcID(tc.n / 2)}
		res, err := core.Run(context.Background(), cfg(tc.n, tc.t, ident.V1, adv))
		if err != nil {
			t.Fatal(err)
		}
		var first ident.Value
		seen := false
		for id, d := range res.Sim.Decisions {
			if res.Faulty.Has(id) {
				continue
			}
			if !d.Decided {
				t.Fatalf("n=%d t=%d: %v undecided", tc.n, tc.t, id)
			}
			if !seen {
				first, seen = d.Value, true
			} else if d.Value != first {
				t.Fatalf("n=%d t=%d: disagreement %v vs %v", tc.n, tc.t, d.Value, first)
			}
		}
	}
}

func TestRejectsBelowRatio(t *testing.T) {
	if err := (lsp.Protocol{}).Check(6, 2); err == nil {
		t.Fatal("accepted n = 3t")
	}
	if err := (lsp.Protocol{}).Check(3, 1); err == nil {
		t.Fatal("accepted n = 3t = 3")
	}
}

func TestMessageCountAboveUnauthBound(t *testing.T) {
	// Corollary 1: any unauthenticated algorithm sends ≥ n(t+1)/4 messages
	// in some fault-free history. LSP's fault-free count must respect it.
	for _, tc := range []struct{ n, t int }{
		{4, 1}, {7, 2}, {10, 3},
	} {
		res, _, err := core.RunAndCheck(context.Background(), cfg(tc.n, tc.t, ident.V1, nil))
		if err != nil {
			t.Fatal(err)
		}
		if got, bound := res.Sim.Report.MessagesCorrect, core.MsgLowerBoundUnauth(tc.n, tc.t); got < bound {
			t.Errorf("n=%d t=%d: %d msgs < lower bound %d", tc.n, tc.t, got, bound)
		}
	}
}
