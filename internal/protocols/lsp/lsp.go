// Package lsp implements the classical unauthenticated oral-messages
// algorithm OM(t) of Lamport, Shostak and Pease (the paper's reference
// [14]) via exponential information gathering (EIG). It is the module's
// unauthenticated baseline for Corollary 1: with n > 3t it reaches
// Byzantine Agreement in t+1 phases while sending Θ(n²·t) messages (each
// phase every processor broadcasts one batched relay message; the paper's
// reference [10] achieves O(nt + t³), but only the Ω(nt) lower bound — the
// reproducible claim — is evaluated against this baseline).
//
// EIG: each processor maintains a tree of reports indexed by paths of
// distinct processor identities starting at the transmitter. In phase 1 the
// transmitter broadcasts its value; in phase k every processor relays every
// path of length k-1 it learned, extending the path by itself at the
// receivers. Decisions take a recursive majority over the tree with default
// 0.
package lsp

import (
	"fmt"
	"sort"

	"byzex/internal/ident"
	"byzex/internal/protocol"
	"byzex/internal/sim"
	"byzex/internal/wire"
)

// Protocol is the OM(t) baseline.
type Protocol struct{}

var _ protocol.Protocol = Protocol{}

// Name implements protocol.Protocol.
func (Protocol) Name() string { return "lsp-om" }

// Check implements protocol.Protocol: oral messages require n > 3t.
func (Protocol) Check(n, t int) error {
	if t < 0 || n <= 3*t || n < 2 {
		return fmt.Errorf("%w: lsp requires n > 3t (got n=%d t=%d)", protocol.ErrBadParams, n, t)
	}
	return nil
}

// Phases implements protocol.Protocol.
func (Protocol) Phases(_, t int) int { return t + 1 }

// NewNode implements protocol.Protocol.
func (Protocol) NewNode(cfg protocol.NodeConfig) (sim.Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &node{
		cfg:  cfg,
		tree: make(map[string]ident.Value),
	}, nil
}

type node struct {
	cfg protocol.NodeConfig
	// tree maps an encoded path (sequence of ProcIDs starting with the
	// transmitter) to the value reported along it.
	tree map[string]ident.Value
	// frontier holds the paths learned in the previous phase, to be
	// relayed this phase.
	frontier []string
}

var _ sim.Node = (*node)(nil)

// pathKey encodes a path of processor ids as a compact string map key.
func pathKey(path []ident.ProcID) string {
	w := wire.NewWriter(len(path) * 2)
	w.Procs(path)
	return string(w.Bytes())
}

// decodePath reverses pathKey.
func decodePath(key string) ([]ident.ProcID, error) {
	r := wire.NewReader([]byte(key))
	ps := r.Procs()
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return ps, nil
}

// report is one (path, value) pair on the wire.
func encodeReports(reports []string, values map[string]ident.Value) []byte {
	w := wire.NewWriter(16 * (len(reports) + 1))
	w.Uint(uint64(len(reports)))
	for _, key := range reports {
		w.BytesField([]byte(key))
		w.Value(values[key])
	}
	return w.Bytes()
}

func (n *node) Step(ctx *sim.Context, inbox []sim.Envelope) error {
	phase := ctx.Phase()
	tr := n.cfg.Transmitter

	if n.cfg.IsTransmitter() {
		if phase == 1 {
			w := wire.NewWriter(8)
			w.Uint(1)
			w.BytesField([]byte(pathKey([]ident.ProcID{tr})))
			w.Value(n.cfg.Value)
			return protocol.Broadcast(ctx, w.Bytes())
		}
		return nil
	}

	// Absorb reports sent during the previous phase: a pair (σ, v) from
	// sender q is stored under σ∘q, provided σ has the right length
	// (phase-1), starts at the transmitter, consists of distinct ids, and
	// does not already contain q or us.
	var learned []string
	for _, env := range inbox {
		r := wire.NewReader(env.Payload)
		cnt := r.Len()
		if r.Err() != nil {
			continue
		}
		for i := 0; i < cnt; i++ {
			key := string(r.BytesField())
			v := r.Value()
			if r.Err() != nil {
				break
			}
			path, err := decodePath(key)
			if err != nil {
				continue
			}
			if !validPath(path, phase-1, tr, env.From, n.cfg.ID) {
				continue
			}
			// The transmitter's own root report [tr] is stored as-is; every
			// relayed path is extended by its sender.
			ext := path
			if !(env.From == tr && len(path) == 1) {
				ext = append(append([]ident.ProcID(nil), path...), env.From)
			}
			extKey := pathKey(ext)
			if _, dup := n.tree[extKey]; dup {
				continue
			}
			n.tree[extKey] = v
			learned = append(learned, extKey)
		}
	}
	sort.Strings(learned)

	// Relay everything learned during the previous phase, within t+1
	// phases.
	n.frontier = learned
	if phase >= 2 && phase <= ctx.T()+1 && len(n.frontier) > 0 {
		return protocol.Broadcast(ctx, encodeReports(n.frontier, n.tree))
	}
	return nil
}

// validPath checks a relayed path: length matches the sending phase, starts
// at the transmitter, all ids distinct, and the extension by the sender
// stays a valid path (sender not already on it, receiver not on it).
//
// Special case: the transmitter's own phase 1 broadcast carries σ = [tr]
// whose extension would duplicate the transmitter; it is accepted as the
// root report when it comes directly from the transmitter.
func validPath(path []ident.ProcID, sentPhase int, tr, from, me ident.ProcID) bool {
	if len(path) == 0 || path[0] != tr {
		return false
	}
	if from == tr && sentPhase == 1 {
		return len(path) == 1
	}
	if len(path) != sentPhase-1 {
		return false
	}
	seen := make(ident.Set, len(path)+2)
	for _, p := range path {
		if !seen.Add(p) {
			return false
		}
	}
	if seen.Has(from) || seen.Has(me) || from == me {
		return false
	}
	return true
}

// Decide resolves the EIG tree by recursive majority with default 0.
func (n *node) Decide() (ident.Value, bool) {
	if n.cfg.IsTransmitter() {
		return n.cfg.Value, true
	}
	return n.resolve([]ident.ProcID{n.cfg.Transmitter}), true
}

// resolve computes the value of a tree node: leaves (paths of length t+1,
// or paths with no recorded children) take their stored value; inner nodes
// take the majority of their children's resolved values, breaking ties and
// absences with the default 0.
func (n *node) resolve(path []ident.ProcID) ident.Value {
	key := pathKey(path)
	stored, ok := n.tree[key]
	if len(path) == n.cfg.T+1 {
		if !ok {
			return ident.V0
		}
		return stored
	}
	onPath := ident.NewSet(path...)
	counts := make(map[ident.Value]int)
	children := 0
	for id := 0; id < n.cfg.N; id++ {
		q := ident.ProcID(id)
		if q == n.cfg.ID || onPath.Has(q) {
			continue
		}
		child := append(append([]ident.ProcID(nil), path...), q)
		counts[n.resolve(child)]++
		children++
	}
	// Strict majority wins; otherwise default. Our own stored value for
	// the path participates as one extra vote (we "heard" it directly).
	if ok {
		counts[stored]++
		children++
	}
	var best ident.Value
	bestCnt := -1
	for _, v := range sortedValues(counts) {
		if counts[v] > bestCnt {
			best, bestCnt = v, counts[v]
		}
	}
	if bestCnt*2 > children {
		return best
	}
	return ident.V0
}

func sortedValues(m map[ident.Value]int) []ident.Value {
	out := make([]ident.Value, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
