package lsp

import (
	"byzex/internal/ident"
	"byzex/internal/protocol"
	"byzex/internal/sig"
)

// Test helpers shared by the white-box tests.

func plainSchemeForTest(n int) sig.Scheme { return sig.NewPlain(n) }

func configFor(id ident.ProcID, n, t int, signer sig.Signer, scheme sig.Scheme) protocol.NodeConfig {
	return protocol.NodeConfig{
		ID: id, N: n, T: t, Transmitter: 0,
		Signer: signer, Verifier: scheme,
	}
}
