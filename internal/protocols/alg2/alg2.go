// Package alg2 implements Algorithm 2 of the paper (Theorem 4): Algorithm 1
// followed by 2t+1 "increasing message" phases, after which every correct
// processor not only agrees on the common value but also *possesses a
// one-message proof for the outside world* — the common value with at least
// t signatures of other processors appended. No processor (faulty or not)
// can hold such a proof for any other value. The whole protocol runs in
// 3t+3 phases and sends at most 5t² + 5t messages.
//
// Processors carry labels 1..2t+1 (group order; the transmitter is label
// 1). A message received by p(j) after phase t+2 is "increasing" if it
// consists of p(j)'s committed value with signatures of processors with
// labels less than j in increasing order. At phase t+2+j processor p(j)
// signs its best increasing message m(j) and sends it to everybody if it
// already carried ≥ t signatures, otherwise to the next t+1 labels.
package alg2

import (
	"fmt"

	"byzex/internal/ident"
	"byzex/internal/protocol"
	"byzex/internal/protocols/alg1"
	"byzex/internal/sig"
	"byzex/internal/sim"
)

// Core is the embeddable per-processor state machine. It wraps an
// alg1.Core; relative phases 1..t+2 drive Algorithm 1 and phases
// t+3..3t+3 the increasing-message rounds.
type Core struct {
	inner    *alg1.Core
	group    []ident.ProcID
	indexOf  map[ident.ProcID]int
	t        int
	me       int
	signer   sig.Signer
	verifier sig.Verifier

	committed    ident.Value
	hasCommitted bool
	best         sig.SignedValue // best increasing message so far
	hasBest      bool
	proof        sig.SignedValue // best proof-grade message so far
	hasProof     bool
	acted        bool
}

// NewCore builds the Algorithm 2 state machine for group member me.
func NewCore(group []ident.ProcID, t int, me ident.ProcID, value ident.Value, signer sig.Signer, verifier sig.Verifier) (*Core, error) {
	inner, err := alg1.NewCore(group, t, me, value, signer, verifier)
	if err != nil {
		return nil, err
	}
	idx := make(map[ident.ProcID]int, len(group))
	for i, id := range group {
		idx[id] = i
	}
	return &Core{
		inner:    inner,
		group:    append([]ident.ProcID(nil), group...),
		indexOf:  idx,
		t:        t,
		me:       idx[me],
		signer:   signer,
		verifier: verifier,
	}, nil
}

// LastPhase returns Algorithm 2's final sending phase, 3t+3.
func LastPhase(t int) int { return 3*t + 3 }

// commit freezes the Algorithm 1 decision once phases 1..t+2 are complete.
func (c *Core) commit() {
	if c.hasCommitted {
		return
	}
	c.committed = c.inner.Committed()
	c.hasCommitted = true
}

// classify inspects an inbound payload during the increasing-message
// rounds, updating the best increasing message and the best proof.
func (c *Core) classify(payload []byte) {
	sv, err := sig.UnmarshalSignedValue(payload)
	if err != nil || sv.Value != c.committed || len(sv.Chain) == 0 {
		return
	}
	if !sv.Chain.Distinct() {
		return
	}
	// All signers must be group members.
	increasing := true
	prev := -1
	others := 0
	for _, l := range sv.Chain {
		idx, ok := c.indexOf[l.Signer]
		if !ok {
			return
		}
		if idx != c.me {
			others++
		}
		if idx <= prev || idx >= c.me {
			increasing = false
		}
		prev = idx
	}
	if sv.Verify(c.verifier) != nil {
		return
	}
	if increasing && (!c.hasBest || len(sv.Chain) > len(c.best.Chain)) {
		c.best, c.hasBest = sv, true
	}
	if others >= c.t && (!c.hasProof || len(sv.Chain) > len(c.proof.Chain)) {
		c.proof, c.hasProof = sv, true
	}
}

// Step advances the state machine at the given relative phase (1-based).
func (c *Core) Step(ctx *sim.Context, inbox []sim.Envelope, phase int) error {
	if phase <= c.t+3 {
		if err := c.inner.Step(ctx, inbox, phase); err != nil {
			return err
		}
	}
	if phase < c.t+3 {
		return nil
	}
	c.commit()

	for _, env := range inbox {
		c.classify(env.Payload)
	}

	// Phase t+2+j, with j = label = index+1: our turn to sign and forward.
	if myTurn := c.t + 3 + c.me; phase == myTurn && !c.acted {
		c.acted = true
		m := sig.SignedValue{Value: c.committed}
		if c.hasBest {
			m = c.best
		}
		wide := len(m.Chain) >= c.t
		signed := m.CoSign(c.signer)
		c.classifyOwn(signed)

		var targets []ident.ProcID
		if wide {
			targets = append(targets, c.group[:c.me]...)
			targets = append(targets, c.group[c.me+1:]...)
		} else {
			for i := c.me + 1; i <= c.me+c.t+1 && i < len(c.group); i++ {
				targets = append(targets, c.group[i])
			}
		}
		if err := protocol.SendToAll(ctx, targets, signed.Marshal(), signed.Chain); err != nil {
			return err
		}
	}
	return nil
}

// classifyOwn lets our own signed message count toward the proof (it
// carries our signature plus the chain we extended).
func (c *Core) classifyOwn(sv sig.SignedValue) {
	others := 0
	for _, l := range sv.Chain {
		if idx, ok := c.indexOf[l.Signer]; ok && idx != c.me {
			others++
		}
	}
	if others >= c.t && (!c.hasProof || len(sv.Chain) > len(c.proof.Chain)) {
		c.proof, c.hasProof = sv, true
	}
}

// Decide returns the Algorithm 1 decision.
func (c *Core) Decide() (ident.Value, bool) { return c.inner.Decide() }

// Committed returns the committed common value (valid once phase t+2 has
// completed).
func (c *Core) Committed() ident.Value {
	c.commit()
	return c.committed
}

// Proof returns a one-message proof of the common value: the value carrying
// at least t signatures of processors other than this one (Theorem 4). The
// second result is false if no proof is held (which, for a correct
// processor after phase 3t+3, would be a protocol-correctness violation).
func (c *Core) Proof() (sig.SignedValue, bool) {
	if !c.hasProof {
		return sig.SignedValue{}, false
	}
	return c.proof, true
}

// VerifyProof checks a proof for the outside world: value v with at least
// t+1 distinct valid signatures of group members. Theorem 4 guarantees no
// such message exists for a value other than the common one.
func VerifyProof(sv sig.SignedValue, group []ident.ProcID, t int, verifier sig.Verifier) error {
	members := ident.NewSet(group...)
	distinct := make(ident.Set)
	for _, l := range sv.Chain {
		if !members.Has(l.Signer) {
			return fmt.Errorf("alg2: proof signer %v not a group member", l.Signer)
		}
		distinct.Add(l.Signer)
	}
	if distinct.Len() < t+1 {
		return fmt.Errorf("alg2: proof has %d distinct signers, need %d", distinct.Len(), t+1)
	}
	if err := sv.Verify(verifier); err != nil {
		return fmt.Errorf("alg2: proof chain invalid: %w", err)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Protocol wrapper (standalone use: the group is the whole system).

// Protocol runs Algorithm 2 over the entire system (n = 2t+1, transmitter
// is processor 0).
type Protocol struct{}

var _ protocol.Protocol = Protocol{}

// Name implements protocol.Protocol.
func (Protocol) Name() string { return "alg2" }

// Check implements protocol.Protocol.
func (Protocol) Check(n, t int) error {
	if t < 1 || n != 2*t+1 {
		return fmt.Errorf("%w: alg2 requires n = 2t+1 with t ≥ 1 (got n=%d t=%d)", protocol.ErrBadParams, n, t)
	}
	return nil
}

// Phases implements protocol.Protocol.
func (Protocol) Phases(_, t int) int { return LastPhase(t) }

// NewNode implements protocol.Protocol.
func (Protocol) NewNode(cfg protocol.NodeConfig) (sim.Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.RequireBinaryValue(); err != nil {
		return nil, err
	}
	if cfg.Transmitter != 0 {
		return nil, fmt.Errorf("%w: alg2 assumes transmitter 0", protocol.ErrBadParams)
	}
	core, err := NewCore(ident.Range(cfg.N), cfg.T, cfg.ID, cfg.Value, cfg.Signer, cfg.Verifier)
	if err != nil {
		return nil, err
	}
	return &node{core: core}, nil
}

// Node is the standalone Algorithm 2 node; exported so tests and examples
// can read the proof after a run.
type node struct {
	core *Core
}

var _ sim.Node = (*node)(nil)

func (n *node) Step(ctx *sim.Context, inbox []sim.Envelope) error {
	return n.core.Step(ctx, inbox, ctx.Phase())
}

func (n *node) Decide() (ident.Value, bool) { return n.core.Decide() }

// Proof exposes the held proof (see Core.Proof).
func (n *node) Proof() (sig.SignedValue, bool) { return n.core.Proof() }

// ProofHolder is implemented by nodes that hold a transferable proof of the
// common value after the run.
type ProofHolder interface {
	Proof() (sig.SignedValue, bool)
}

var _ ProofHolder = (*node)(nil)
