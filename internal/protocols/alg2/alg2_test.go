package alg2_test

import (
	"context"
	"testing"

	"byzex/internal/adversary"
	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/protocols/alg2"
	"byzex/internal/sig"
)

// runAlg2 executes Algorithm 2 and returns the result plus decision checks.
func runAlg2(t *testing.T, tt int, v ident.Value, adv adversary.Adversary) *core.Result {
	t.Helper()
	n := 2*tt + 1
	res, _, err := core.RunAndCheck(context.Background(), core.Config{
		Protocol: alg2.Protocol{}, N: n, T: tt, Value: v, Adversary: adv, Seed: 7,
	})
	if err != nil {
		t.Fatalf("t=%d v=%v: %v", tt, v, err)
	}
	return res
}

func TestFaultFreeBothValues(t *testing.T) {
	for tt := 1; tt <= 6; tt++ {
		for _, v := range []ident.Value{ident.V0, ident.V1} {
			res := runAlg2(t, tt, v, nil)
			if got, bound := res.Sim.Report.MessagesCorrect, core.Alg2MsgUpperBound(tt); got > bound {
				t.Errorf("t=%d v=%v: %d msgs > bound %d", tt, v, got, bound)
			}
			if want := core.Alg2Phases(tt); res.Phases != want {
				t.Errorf("t=%d: phases %d, want %d", tt, res.Phases, want)
			}
		}
	}
}

func TestProofsHeldByAllCorrect(t *testing.T) {
	// Every correct processor must hold a proof with ≥ t other-signatures
	// after 3t+3 phases.
	for tt := 1; tt <= 5; tt++ {
		for _, v := range []ident.Value{ident.V0, ident.V1} {
			n := 2*tt + 1
			scheme := sig.NewHMAC(n, 42)
			res, _, err := core.RunAndCheck(context.Background(), core.Config{
				Protocol: alg2.Protocol{}, N: n, T: tt, Value: v, Scheme: scheme,
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, nd := range res.Nodes {
				ph, ok := nd.(alg2.ProofHolder)
				if !ok {
					t.Fatalf("node %d does not expose proofs", i)
				}
				proof, has := ph.Proof()
				if !has {
					t.Fatalf("t=%d v=%v: node %d holds no proof", tt, v, i)
				}
				if proof.Value != v {
					t.Fatalf("t=%d: node %d proof value %v, want %v", tt, i, proof.Value, v)
				}
				if err := alg2.VerifyProof(proof, ident.Range(n), tt, scheme); err != nil {
					t.Fatalf("t=%d: node %d proof rejected: %v", tt, i, err)
				}
			}
		}
	}
}

func TestVerifyProofRejectsForgery(t *testing.T) {
	n, tt := 7, 3
	scheme := sig.NewHMAC(n, 1)
	// A proof with too few distinct signers must be rejected.
	s0, _ := scheme.Signer(0)
	sv := sig.NewSignedValue(s0, ident.V1)
	if err := alg2.VerifyProof(sv, ident.Range(n), tt, scheme); err == nil {
		t.Fatal("accepted proof with a single signature")
	}
	// A proof with enough signers but a tampered value must be rejected.
	for i := 1; i <= tt; i++ {
		si, _ := scheme.Signer(ident.ProcID(i))
		sv = sv.CoSign(si)
	}
	if err := alg2.VerifyProof(sv, ident.Range(n), tt, scheme); err != nil {
		t.Fatalf("genuine proof rejected: %v", err)
	}
	tampered := sv
	tampered.Value = ident.V0
	if err := alg2.VerifyProof(tampered, ident.Range(n), tt, scheme); err == nil {
		t.Fatal("accepted proof with tampered value")
	}
}
